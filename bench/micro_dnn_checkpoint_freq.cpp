/**
 * @file
 * Section 6.1's DNN checkpointing detail: per-10-iteration compute
 * time vs checkpoint and restore cost, and the total-time benefit of
 * GPM over CAP-fs at different checkpoint frequencies.
 *
 * Paper: ~8.26 ms per 10 training iterations, 0.221 ms to checkpoint,
 * 0.342 ms to restore; total execution improves 61 % / 40 % at
 * every-10 / every-20 checkpointing (19-122 % across workloads).
 */
#include "bench/bench_util.hpp"
#include "gpm/gpm_checkpoint.hpp"
#include "harness/experiments.hpp"
#include "workloads/iterative.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

SimNs
totalTime(const SimConfig &cfg, PlatformKind kind,
          std::uint32_t checkpoint_every)
{
    Machine m(cfg, kind, pmCapacity());
    DnnApp app(dnnParams());
    IterativeParams sched;
    sched.iterations = 40;
    sched.checkpoint_every = checkpoint_every;
    return app.run(m, sched).op_ns;
}

} // namespace

int
main()
{
    SimConfig cfg;

    // Piece costs on GPM.
    Machine m(cfg, PlatformKind::Gpm, pmCapacity());
    DnnApp app(dnnParams());
    app.init();
    const SimNs c0 = m.now();
    for (std::uint32_t i = 0; i < 10; ++i)
        app.computeIteration(m, i);
    const SimNs compute10 = m.now() - c0;

    GpmCheckpoint cp = GpmCheckpoint::create(m, "dnn.freq.cp",
                                             app.stateBytes(), 16, 1);
    app.registerState(cp);
    const SimNs k0 = m.now();
    cp.checkpoint(0);
    const SimNs ckpt = m.now() - k0;
    const SimNs r0 = m.now();
    cp.restore(0);
    const SimNs restore = m.now() - r0;

    Table pieces({"Quantity", "Measured (ms)", "Paper (ms)"});
    pieces.addRow({"10 training iterations",
                   Table::num(toMs(compute10), 3), "8.260"});
    pieces.addRow({"gpmcp_checkpoint", Table::num(toMs(ckpt), 3),
                   "0.221"});
    pieces.addRow({"gpmcp_restore", Table::num(toMs(restore), 3),
                   "0.342"});
    report("DNN checkpoint piece costs on GPM (section 6.1)", pieces);

    Table freq({"Checkpoint every", "CAP-fs (ms)", "GPM (ms)",
                "Total-time improvement"});
    for (const std::uint32_t every : {10u, 20u}) {
        const SimNs cap = totalTime(cfg, PlatformKind::CapFs, every);
        const SimNs gpm = totalTime(cfg, PlatformKind::Gpm, every);
        freq.addRow({std::to_string(every) + " iterations",
                     Table::num(toMs(cap)), Table::num(toMs(gpm)),
                     Table::num(100.0 * (cap - gpm) / gpm, 1) + "%"});
    }
    report("DNN total time vs checkpoint frequency", freq);
    return 0;
}
