/**
 * @file
 * Simulator host-performance benchmark: how fast does the simulation
 * itself run, and how well does it scale across host threads?
 *
 * Unlike the figure benches (which report *modelled* time), simperf
 * times the host wall-clock of three representative stages and emits
 * machine-readable results to BENCH_simperf.json:
 *
 *  1. fig9-cells: the full Figure 9 (workload x platform) matrix,
 *     with independent cells (each its own Machine) swept over
 *     1/2/4/8 host threads by the harness sweep engine — the
 *     coarse-grain parallel lever. The summed ops come from the
 *     canonical-order result slots and must match bitwise across
 *     widths (enforced below).
 *  2. block-engine: GPM cells whose kernels carry the
 *     block_independent marking, re-run with SimConfig::exec_workers
 *     = 1/2/4/8 — the fine-grain parallel executor under test. The
 *     modelled results are bit-identical at every width (enforced by
 *     test_parallel_executor); only host time may change.
 *  3. crash-matrix: a 300-scenario bounded torture sweep (5 workloads
 *     x 3 domains x 4 crash specs x 5 eviction seeds), itself swept
 *     at every width via TortureConfig::jobs; the FNV signature folds
 *     canonical-order slots and must match bitwise across widths
 *     (enforced below).
 *  4. crash-armed: the same bounded matrix at jobs=1 with the
 *     *in-scenario* width swept via TortureConfig::exec_workers =
 *     1/2/4/8 — the parallel crash-armed engine (DESIGN.md decision
 *     #8). The signature must match the crash-matrix stage's bitwise
 *     at every width (enforced below); the speedup lands in the perf
 *     envelope.
 *  5. media-record: the interleaved media backend's recordWrite path
 *     at 1/2/4/8 DIMMs (the Jobs column is the DIMM count) — 16 Ki
 *     warps appending into private granule slabs, record + close
 *     timed end to end. One DIMM must replay the legacy single-table
 *     model bit for bit (tier totals enforced below); wider sets
 *     shard the stream table per DIMM and should raise throughput.
 *
 * --smoke shrinks every stage to a seconds-scale CI gate; the JSON
 * shape is identical so downstream tooling never branches.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/status.hpp"
#include "crashtest/torture_runner.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"
#include "telemetry/json.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct StageRow {
    std::string stage;
    unsigned jobs = 1;
    std::size_t units = 0;   ///< cells or scenarios completed
    double wall_s = 0.0;

    double
    unitsPerSec() const
    {
        return wall_s > 0 ? units / wall_s : 0.0;
    }
};

/**
 * Sweep every cell once across @p jobs host workers (the harness
 * sweep engine) and return wall seconds. ops_sink sums ops_done over
 * the canonical-order result slots, so it is schedule-independent and
 * doubles as the cross-width bit-identity check.
 */
double
runCells(const std::vector<BenchCell> &cells, unsigned jobs,
         int exec_workers, double &ops_sink)
{
    SimConfig cfg;
    cfg.exec_workers = exec_workers;
    const auto t0 = Clock::now();
    const std::vector<WorkloadResult> results =
        runBenchCells(cells, cfg, static_cast<int>(jobs));
    const double wall = secondsSince(t0);
    ops_sink = 0.0;
    for (const WorkloadResult &r : results) {
        if (r.supported)
            ops_sink += r.ops_done;
    }
    return wall;
}

TortureConfig
crashMatrixConfig(bool smoke)
{
    TortureConfig cfg;
    cfg.specs = CrashScheduler::parseList(
        "frac:0.25,frac:0.75,before-fence:1,after-store:2");
    cfg.seeds = smoke ? std::vector<std::uint64_t>{1}
                      : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
    cfg.survive_probs = {0.5};
    return cfg;
}

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const unsigned host_threads =
        std::max(1u, std::thread::hardware_concurrency());

    // The jobs axis never exaggerates: widths beyond the host's
    // actual thread count are reported but cannot speed anything up.
    const std::vector<unsigned> widths =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};

    std::vector<BenchCell> fig9;
    std::vector<BenchCell> engine;
    if (smoke) {
        fig9 = {{Bench::PrefixSum, PlatformKind::Gpm, 1},
                {Bench::Srad, PlatformKind::Gpm, 1}};
        engine = fig9;
    } else {
        for (const Bench b : kAllBenches)
            for (const PlatformKind kind :
                 {PlatformKind::CapFs, PlatformKind::CapMm,
                  PlatformKind::Gpm, PlatformKind::Gpufs})
                fig9.push_back({b, kind, 1});
        // GPM cells whose hot kernels are block_independent (native
        // persistence + checkpointing; see DESIGN.md section 4).
        for (const Bench b :
             {Bench::PrefixSum, Bench::Srad, Bench::DbInsert,
              Bench::Dnn, Bench::Blk, Bench::Hotspot})
            engine.push_back({b, PlatformKind::Gpm, 1});
    }

    std::vector<StageRow> rows;
    double ref_ops = -1.0;

    // Stage 1: cell-level parallelism over the Fig 9 matrix.
    for (const unsigned jobs : widths) {
        double ops = 0.0;
        StageRow r{"fig9-cells", jobs, fig9.size(),
                   runCells(fig9, jobs, /*exec_workers=*/1, ops)};
        if (ref_ops < 0)
            ref_ops = ops;
        GPM_REQUIRE(ops == ref_ops,
                    "fig9 ops diverged across widths: ", ops, " vs ",
                    ref_ops);
        rows.push_back(r);
    }

    // Stage 2: the parallel block engine, cells sequential.
    for (const unsigned workers : widths) {
        double ops = 0.0;
        rows.push_back({"block-engine", workers, engine.size(),
                        runCells(engine, /*jobs=*/1,
                                 static_cast<int>(workers), ops)});
    }

    // Stage 3: the bounded crash matrix, itself swept at each width.
    // The signature folds canonical-order result slots, so it must be
    // bit-identical whatever the worker count.
    TortureConfig tcfg = crashMatrixConfig(smoke);
    TortureReport treport;
    std::uint64_t ref_sig = 0;
    for (const unsigned jobs : widths) {
        tcfg.jobs = static_cast<int>(jobs);
        const auto t0 = Clock::now();
        const TortureReport r = TortureRunner::run(tcfg);
        rows.push_back(
            {"crash-matrix", jobs, r.results.size(), secondsSince(t0)});
        GPM_REQUIRE(r.violations() == 0,
                    "crash matrix reported violations at jobs=", jobs);
        if (jobs == widths.front()) {
            ref_sig = r.signature();
            treport = r;
        }
        GPM_REQUIRE(r.signature() == ref_sig,
                    "crash-matrix signature diverged at jobs=", jobs,
                    ": ", hex(r.signature()), " vs ", hex(ref_sig));
    }

    // Stage 4: the same matrix with in-scenario parallelism instead —
    // crash-armed launches fan out across exec_workers and must still
    // land on the stage-3 signature bit for bit.
    for (const unsigned workers : widths) {
        TortureConfig acfg = crashMatrixConfig(smoke);
        acfg.jobs = 1;
        acfg.exec_workers = static_cast<int>(workers);
        const auto t0 = Clock::now();
        const TortureReport r = TortureRunner::run(acfg);
        rows.push_back({"crash-armed", workers, r.results.size(),
                        secondsSince(t0)});
        GPM_REQUIRE(r.violations() == 0,
                    "crash-armed matrix reported violations at "
                    "exec_workers=",
                    workers);
        GPM_REQUIRE(r.signature() == ref_sig,
                    "crash-armed signature diverged at exec_workers=",
                    workers, ": ", hex(r.signature()), " vs ",
                    hex(ref_sig));
    }

    // Stage 5: the multi-DIMM media backend's recordWrite hot path.
    // Same drive pattern as BM_NvmModelInterleaved: per-warp private
    // granule slabs striped over the DIMM set, streams round-robined
    // so every record resolves through the stream table. Slabs are
    // granule-aligned, so tier totals must be bitwise identical at
    // every width (enforced), and the one-DIMM row IS the legacy
    // model's cost.
    {
        const std::uint64_t writes = smoke ? (1ull << 22)
                                           : (1ull << 25);
        constexpr std::uint64_t kStreams = 16384;
        constexpr std::uint64_t kSlab = 4096;
        NvmTierBytes media_ref{};
        for (const unsigned dimms : {1u, 2u, 4u, 8u}) {
            SimConfig mcfg;
            mcfg.media.kind = MediaKind::Interleaved;
            mcfg.media.dimms = static_cast<int>(dimms);
            const std::unique_ptr<MediaBackend> nvm =
                makeMediaBackend(mcfg);
            std::vector<std::uint64_t> off(kStreams, 0);
            const auto t0 = Clock::now();
            for (std::uint64_t i = 0; i < writes; ++i) {
                const std::uint64_t s = i & (kStreams - 1);
                nvm->recordWrite(s, s * kSlab + off[s], 64);
                off[s] = (off[s] + 64) & (kSlab - 1);
                if ((i & ((1u << 22) - 1)) == (1u << 22) - 1)
                    nvm->closeRuns();
            }
            nvm->closeRuns();
            rows.push_back({"media-record", dimms,
                            static_cast<std::size_t>(writes),
                            secondsSince(t0)});
            if (dimms == 1)
                media_ref = nvm->bytes();
            GPM_REQUIRE(nvm->bytes() == media_ref,
                        "media tier totals diverged at dimms=", dimms);
        }
    }

    // ---- report ---------------------------------------------------------
    Table table({"Stage", "Jobs", "Units", "Wall (s)", "Units/s"});
    for (const StageRow &r : rows)
        table.addRow({r.stage, std::to_string(r.jobs),
                      std::to_string(r.units), Table::num(r.wall_s),
                      Table::num(r.unitsPerSec())});
    report("simperf: host wall-clock of the simulator itself (" +
               std::to_string(host_threads) + " host threads)",
           table);

    const double base = rows.front().wall_s;
    double best = base;
    for (const StageRow &r : rows)
        if (r.stage == "fig9-cells" && r.wall_s < best)
            best = r.wall_s;
    std::cout << "fig9 matrix best speedup: "
              << Table::num(best > 0 ? base / best : 0.0) << "x over "
              << widths.size() << " widths\n";

    // Same keys the hand-rolled emitter used, now through the shared
    // telemetry serializer (one escaping/number policy, validated
    // structure), plus the uniform schema/tool envelope fields.
    {
        std::ofstream js("BENCH_simperf.json", std::ios::trunc);
        telemetry::JsonWriter w(js);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "simperf");
        w.field("host_threads", host_threads);
        w.field("smoke", smoke);
        w.key("stages");
        w.beginArray();
        for (const StageRow &r : rows) {
            w.beginObject();
            w.field("stage", r.stage);
            w.field("jobs", r.jobs);
            w.field("units", std::uint64_t(r.units));
            w.field("wall_s", r.wall_s);
            w.field("units_per_s", r.unitsPerSec());
            w.endObject();
        }
        w.endArray();
        w.key("crash_matrix");
        w.beginObject();
        w.field("scenarios", std::uint64_t(treport.results.size()));
        w.field("violations", std::uint64_t(treport.violations()));
        w.field("signature", hex(treport.signature()));
        w.field("bit_identical_widths",
                std::uint64_t(widths.size()));
        w.endObject();
        w.key("crash_armed");
        w.beginObject();
        {
            double armed_base = 0.0, armed_best = 0.0;
            for (const StageRow &r : rows) {
                if (r.stage != "crash-armed")
                    continue;
                if (r.jobs == 1)
                    armed_base = r.wall_s;
                if (armed_best == 0.0 || r.wall_s < armed_best)
                    armed_best = r.wall_s;
            }
            w.field("scenarios", std::uint64_t(treport.results.size()));
            w.field("signature", hex(ref_sig));
            w.field("bit_identical_widths",
                    std::uint64_t(widths.size()));
            w.field("best_speedup",
                    armed_best > 0 ? armed_base / armed_best : 0.0);
        }
        w.endObject();
        w.field("fig9_best_speedup", best > 0 ? base / best : 0.0);
        {
            double media_base = 0.0, media_best = 0.0;
            for (const StageRow &r : rows) {
                if (r.stage != "media-record")
                    continue;
                if (r.jobs == 1)
                    media_base = r.wall_s;
                if (media_best == 0.0 || r.wall_s < media_best)
                    media_best = r.wall_s;
            }
            w.field("media_record_best_speedup",
                    media_best > 0 ? media_base / media_best : 0.0);
        }
        w.endObject();
        GPM_REQUIRE(w.complete() && js.good(),
                    "failed writing BENCH_simperf.json");
    }
    std::string error;
    GPM_REQUIRE(telemetry::validateJsonFile(
                    "BENCH_simperf.json",
                    {"schema", "tool", "stages", "crash_matrix"}, &error),
                "BENCH_simperf.json failed validation: ", error);
    return 0;
}
