/**
 * @file
 * Ablation: sensitivity of the headline results to the timing model's
 * calibrated mechanisms (DESIGN.md's verification plan).
 *
 * Each row disables or degrades one mechanism and reports the GPM
 * speedup over CAP-fs for the workload most exposed to it:
 *
 *  - WPQ burst absorption     -> BFS (per-level small bursts)
 *  - DIMM-parallel random writes -> gpKVS (scattered SETs)
 *  - PCIe non-posted concurrency -> gpKVS (fence waves)
 *  - MC fence latency          -> gpDB (U) (two fences per update)
 *
 * If a row barely moves, the mechanism is not load-bearing for that
 * claim; large movement shows which physical effect each paper result
 * rests on.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

double
speedup(Bench b, const SimConfig &cfg)
{
    const WorkloadResult cap = runBench(b, PlatformKind::CapFs, cfg);
    const WorkloadResult gpm = runBench(b, PlatformKind::Gpm, cfg);
    return comparableNs(b, cap) / comparableNs(b, gpm);
}

} // namespace

int
main()
{
    const SimConfig base;
    Table table({"Mechanism ablated", "Workload", "Baseline",
                 "Ablated"});

    {
        SimConfig cfg = base;
        cfg.wpq_absorb_bytes = 0;
        table.addRow({"WPQ burst absorption -> off", "BFS",
                      Table::num(speedup(Bench::Bfs, base), 1) + "x",
                      Table::num(speedup(Bench::Bfs, cfg), 1) + "x"});
    }
    {
        SimConfig cfg = base;
        cfg.nvm_gpu_random_boost = 1.0;
        table.addRow({"DIMM-parallel random writes -> off", "gpKVS",
                      Table::num(speedup(Bench::Kvs, base), 1) + "x",
                      Table::num(speedup(Bench::Kvs, cfg), 1) + "x"});
    }
    {
        SimConfig cfg = base;
        cfg.pcie_concurrency = 64;  // 1024 in the baseline (Fig 3b)
        table.addRow({"PCIe non-posted concurrency 1024 -> 64",
                      "gpKVS",
                      Table::num(speedup(Bench::Kvs, base), 1) + "x",
                      Table::num(speedup(Bench::Kvs, cfg), 1) + "x"});
    }
    {
        SimConfig cfg = base;
        cfg.fence_mc_ns = 4 * base.fence_mc_ns;
        table.addRow({"MC fence latency x4", "gpDB (U)",
                      Table::num(speedup(Bench::DbUpdate, base), 1) +
                          "x",
                      Table::num(speedup(Bench::DbUpdate, cfg), 1) +
                          "x"});
    }
    {
        SimConfig cfg = base;
        cfg.fsync_ns = 10000;  // optimistic fsync
        table.addRow({"ext4-DAX fsync 60us -> 10us", "BFS",
                      Table::num(speedup(Bench::Bfs, base), 1) + "x",
                      Table::num(speedup(Bench::Bfs, cfg), 1) + "x"});
    }

    report("Ablation: timing-model mechanism sensitivity", table);
    return 0;
}
