/**
 * @file
 * Table 4: write amplification of CAP over GPM — extraneous bytes
 * persisted because CAP cannot address updates at byte granularity
 * from the GPU.
 *
 * Paper: gpKVS 39.38x, gpDB (I) 1.27x, gpDB (U) 19.88x, all
 * checkpointing and native workloads 1.00x.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"Class", "Workload", "GPM persisted (MiB)",
                 "CAP persisted (MiB)", "WA"});

    for (const Bench b : kAllBenches) {
        const WorkloadResult g = runBench(b, PlatformKind::Gpm, cfg);
        const WorkloadResult c = runBench(b, PlatformKind::CapMm, cfg);
        const double mib = 1024.0 * 1024.0;
        table.addRow(
            {benchClass(b), benchName(b),
             Table::num(g.persisted_payload / mib),
             Table::num(c.persisted_payload / mib),
             Table::num(static_cast<double>(c.persisted_payload) /
                        static_cast<double>(g.persisted_payload)) +
                 "x"});
    }
    report("Table 4: write amplification of CAP over GPM", table);
    return 0;
}
