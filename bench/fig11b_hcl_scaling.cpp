/**
 * @file
 * Figure 11(b): log-insert latency vs number of concurrently logging
 * GPU threads, HCL against conventional distributed logging.
 *
 * Paper shape: conventional latency climbs with thread count (lock
 * serialization per partition); HCL stays near-flat — on average
 * ~3.6x lower.
 *
 * Each (thread count, logging mode) point builds a private Machine,
 * so the 14 points sweep across GPM_EXEC_WORKERS host threads; rows
 * and the average reduce the canonical-order result slots and are
 * bit-identical at any worker count.
 */
#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "gpm/gpm_log.hpp"
#include "gpm/gpm_runtime.hpp"
#include "harness/experiments.hpp"
#include "harness/sweep.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

/** One 24 B entry per thread into a fresh log; returns latency. */
SimNs
logMicro(const SimConfig &cfg, std::uint32_t threads, bool hcl)
{
    Machine m(cfg, PlatformKind::Gpm, 512_MiB);
    gpmPersistBegin(m);
    const std::uint32_t tpb = 256;
    const std::uint32_t blocks =
        static_cast<std::uint32_t>(ceilDiv(threads, tpb));

    GpmLog log = hcl
        ? GpmLog::createHcl(m, "microlog", 24, 1, blocks, tpb)
        : GpmLog::createConv(m, "microlog",
                             ceilDiv(std::uint64_t(threads) * 24, 64) +
                                 4096, 64);

    struct Entry {
        std::uint64_t a, b, c;
    };
    KernelDesc k;
    k.name = "log_micro";
    k.blocks = blocks;
    k.block_threads = tpb;
    k.phases.push_back([&log, threads](ThreadCtx &ctx) {
        if (ctx.globalId() >= threads)
            return;
        const Entry e{ctx.globalId(), ~ctx.globalId(), 42};
        log.insert(ctx, &e, sizeof(e));
    });
    const SimNs t0 = m.now();
    m.runKernel(k);
    m.advance(log.consumeSerializationNs());
    return m.now() - t0;
}

} // namespace

int
main()
{
    SimConfig cfg;
    Table table({"GPU threads", "Conventional (us)", "HCL (us)",
                 "HCL advantage"});

    const std::vector<std::uint32_t> threads = {
        1024u, 4096u, 8192u, 16384u, 24576u, 32768u, 49152u};

    // Canonical cell order: (t0 conv, t0 hcl, t1 conv, t1 hcl, ...).
    SweepOptions opt;
    opt.workers = execWorkersFromEnv(1);
    const std::vector<SimNs> ns = sweep(
        threads.size() * 2,
        [&](SweepLane &, std::size_t i) {
            return logMicro(cfg, threads[i / 2], (i & 1) != 0);
        },
        opt);

    double ratio_sum = 0;
    int rows = 0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const SimNs conv = ns[2 * i];
        const SimNs hcl = ns[2 * i + 1];
        ratio_sum += conv / hcl;
        ++rows;
        table.addRow({std::to_string(threads[i]), Table::num(toUs(conv)),
                      Table::num(toUs(hcl)),
                      Table::num(conv / hcl, 1) + "x"});
    }
    table.addRow({"average", "", "",
                  Table::num(ratio_sum / rows, 1) + "x"});
    report("Figure 11b: log-insert latency vs logging threads", table);
    return 0;
}
