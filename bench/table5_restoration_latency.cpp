/**
 * @file
 * Table 5: restoration latency — the time to run the recovery kernel
 * (or checkpoint restore) after a crash, as a percentage of the
 * workload's operation time. Worst case: the crash lands just before
 * the transaction commits.
 *
 * Paper: gpKVS 18.96 %, gpKVS (95:5) 10.43 %, gpDB (I) 0.01 %,
 * gpDB (U) ~19 %, DNN 0.12 %, CFD 0.30 %, BLK 0.80 %, HS 1.65 %.
 * Native workloads have no separate recovery kernel and are skipped.
 * Checkpointing workloads run a long training/solver schedule here —
 * restoration latency is only meaningful against a realistic
 * operation window.
 */
#include <memory>

#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"
#include "workloads/iterative.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

std::unique_ptr<IterativeApp>
makeApp(Bench b)
{
    switch (b) {
      case Bench::Dnn:
        return std::make_unique<DnnApp>(dnnParams());
      case Bench::Cfd:
        return std::make_unique<CfdApp>(cfdParams());
      case Bench::Blk:
        return std::make_unique<BlackScholesApp>(blkParams());
      default:
        return std::make_unique<HotspotApp>(hotspotParams());
    }
}

/** Long operation window for the checkpointing workloads. */
IterativeParams
longSchedule(Bench b)
{
    IterativeParams p;
    p.checkpoint_every = 10;
    p.iterations = b == Bench::Dnn ? 100 : 200;  // DNN math is costly
    return p;
}

} // namespace

int
main()
{
    SimConfig cfg;
    Table table({"Class", "Workload", "Operation (ms)",
                 "Restoration (ms)", "RL (%)"});

    auto add = [&](Bench b, SimNs op_ns, SimNs recovery_ns) {
        table.addRow({benchClass(b), benchName(b),
                      Table::num(toMs(op_ns)),
                      Table::num(toMs(recovery_ns), 3),
                      Table::num(100.0 * recovery_ns / op_ns)});
    };

    for (const Bench b : {Bench::Kvs, Bench::Kvs95, Bench::DbInsert,
                          Bench::DbUpdate}) {
        const WorkloadResult clean = runBench(b, PlatformKind::Gpm,
                                              cfg);
        const WorkloadResult crash = runBenchWithCrash(b, cfg);
        GPM_REQUIRE(crash.verified, benchName(b),
                    " failed to recover");
        add(b, clean.op_ns, crash.recovery_ns);
    }

    for (const Bench b :
         {Bench::Dnn, Bench::Cfd, Bench::Blk, Bench::Hotspot}) {
        const IterativeParams sched = longSchedule(b);
        SimNs clean_ns = 0;
        {
            Machine m(cfg, PlatformKind::Gpm, pmCapacity());
            clean_ns = makeApp(b)->run(m, sched).op_ns;
        }
        Machine m(cfg, PlatformKind::Gpm, pmCapacity());
        auto app = makeApp(b);
        const WorkloadResult crash = app->runWithCrashRestore(
            m, sched, sched.iterations - 7, /*in_checkpoint=*/false,
            0.0);
        GPM_REQUIRE(crash.verified, benchName(b),
                    " failed to recover");
        add(b, clean_ns, crash.recovery_ns);
    }

    report("Table 5: restoration latency under GPM (worst case)",
           table);
    return 0;
}
