/**
 * @file
 * Figure 9: speedup of CAP-mm, GPM and GPUfs over CAP-fs across the
 * eleven workload configurations, clustered by class.
 *
 * Paper shape: CAP-mm ~2x on gpKVS; GPM 7-8x on gpKVS, 16/8/17/18/11x
 * on the checkpointing group, up to 85x on BFS; GPUfs below 1x where
 * it runs at all and "*" (unsupported) on the fine-grain workloads.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"Class", "Workload", "CAP-fs (ms)", "CAP-mm", "GPM",
                 "GPUfs"});

    for (const Bench b : kAllBenches) {
        const WorkloadResult base_r = runBench(b, PlatformKind::CapFs,
                                               cfg);
        const SimNs base = comparableNs(b, base_r);
        auto speedup = [&](PlatformKind kind) -> std::string {
            const WorkloadResult r = runBench(b, kind, cfg);
            if (!r.supported)
                return "*";
            return Table::num(base / comparableNs(b, r)) + "x";
        };
        table.addRow({benchClass(b), benchName(b),
                      Table::num(toMs(base)),
                      speedup(PlatformKind::CapMm),
                      speedup(PlatformKind::Gpm),
                      speedup(PlatformKind::Gpufs)});
    }
    report("Figure 9: speedup over CAP-fs ('*' = unsupported on GPUfs)",
           table);
    return 0;
}
