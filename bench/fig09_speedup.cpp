/**
 * @file
 * Figure 9: speedup of CAP-mm, GPM and GPUfs over CAP-fs across the
 * eleven workload configurations, clustered by class.
 *
 * Paper shape: CAP-mm ~2x on gpKVS; GPM 7-8x on gpKVS, 16/8/17/18/11x
 * on the checkpointing group, up to 85x on BFS; GPUfs below 1x where
 * it runs at all and "*" (unsupported) on the fine-grain workloads.
 *
 * The 44 (workload, platform) cells are independent worlds, so they
 * are swept across GPM_EXEC_WORKERS host threads via runBenchCells;
 * the table is built from the canonical-order result slots and is
 * bit-identical at any worker count.
 */
#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    // Cells already fan out across GPM_EXEC_WORKERS, so only the media
    // selection (GPM_MEDIA) applies inside each cell's machine.
    SimConfig cfg;
    applyMediaConfig(cfg, mediaFromEnv(cfg.media));
    constexpr PlatformKind kCols[] = {
        PlatformKind::CapFs, PlatformKind::CapMm,
        PlatformKind::Gpm,   PlatformKind::Gpufs,
    };
    std::vector<BenchCell> cells;
    for (const Bench b : kAllBenches)
        for (const PlatformKind kind : kCols)
            cells.push_back({b, kind, 1});
    const std::vector<WorkloadResult> results =
        runBenchCells(cells, cfg, execWorkersFromEnv(1));

    Table table({"Class", "Workload", "CAP-fs (ms)", "CAP-mm", "GPM",
                 "GPUfs"});
    std::size_t i = 0;
    for (const Bench b : kAllBenches) {
        const SimNs base = comparableNs(b, results[i++]);
        auto speedup = [&]() -> std::string {
            const WorkloadResult &r = results[i++];
            if (!r.supported)
                return "*";
            return Table::num(base / comparableNs(b, r)) + "x";
        };
        const std::string cap_mm = speedup();
        const std::string gpm = speedup();
        const std::string gpufs = speedup();
        table.addRow({benchClass(b), benchName(b),
                      Table::num(toMs(base)), cap_mm, gpm, gpufs});
    }
    report("Figure 9: speedup over CAP-fs ('*' = unsupported on GPUfs)",
           table);
    return 0;
}
