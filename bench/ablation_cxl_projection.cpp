/**
 * @file
 * Projection: GPM over CXL-attached PM (section 3.3).
 *
 * The paper argues CXL 2.0's coherent fabric cannot by itself give
 * fine-grain in-kernel persistence (GPF flushes everything and only
 * from the host), but that GPM's design principles extend to
 * CXL-attached PM. This bench quantifies the projection: the same
 * GPM software stack on the Table 3 machine vs the cxl media backend
 * (docs/memsim.md) — a CXL-class interconnect (more bandwidth, lower
 * fence latency, deeper concurrency) in front of a memory expander
 * whose in-device interleaved PM sits behind a 26 GB/s port with a
 * far-memory read hop.
 *
 * Expected shape: fence-bound workloads (transactional, BFS) gain the
 * most; media-bound streaming (checkpointing) barely moves — the
 * media, not the link, is their ceiling.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    const SimConfig pcie;
    // The cxl backend overlays the CXL interconnect preset
    // (SimConfig::cxlAttachedPm) and swaps in the expander media
    // model, so the link and the media change together.
    SimConfig cxl;
    MediaConfig mc;
    mc.kind = MediaKind::Cxl;
    applyMediaConfig(cxl, mc);

    Table table({"Workload", "GPM over PCIe 3.0 (ms)",
                 "GPM over CXL 2.0 (ms)", "CXL gain"});
    for (const Bench b :
         {Bench::Kvs, Bench::DbUpdate, Bench::Dnn, Bench::Bfs,
          Bench::PrefixSum}) {
        const WorkloadResult a = runBench(b, PlatformKind::Gpm, pcie);
        const WorkloadResult c = runBench(b, PlatformKind::Gpm, cxl);
        const SimNs an = comparableNs(b, a), cn = comparableNs(b, c);
        table.addRow({benchName(b), Table::num(toMs(an), 3),
                      Table::num(toMs(cn), 3),
                      Table::num(an / cn) + "x"});
    }
    report("Projection: GPM on CXL-attached PM (section 3.3)", table);
    return 0;
}
