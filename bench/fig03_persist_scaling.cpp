/**
 * @file
 * Figure 3: scaling of persistence (section 3.2's microbenchmark).
 *
 * Writes and persists a buffer from (a) CAP-mm with 1..64 CPU threads
 * and (b) GPM with 32..2048 GPU threads persisting at an 8-byte
 * granularity. Paper shape: CAP plateaus at 1.47x over one thread;
 * GPM dips below 1x at <=128 threads and plateaus near 4x around
 * 1-2 K threads (the PCIe non-posted concurrency bound).
 */
#include "bench/bench_util.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

constexpr std::uint64_t kBytes = 16_MiB;

SimNs
capMicro(const SimConfig &cfg, int threads)
{
    // The persist phase alone (store + CLFLUSHOPT + SFENCE pool) —
    // the part whose thread scaling Fig 3a reports.
    Machine m(cfg, PlatformKind::CapMm, kBytes + 1_MiB);
    const PmRegion r = m.pool().map("micro", kBytes, true);
    std::vector<std::uint8_t> buf(kBytes, 0x5a);
    const SimNs t0 = m.now();
    m.cpuWritePersist(r.offset, buf.data(), kBytes, threads);
    return m.now() - t0;
}

SimNs
gpmMicro(const SimConfig &cfg, std::uint32_t threads)
{
    Machine m(cfg, PlatformKind::Gpm, kBytes + 1_MiB);
    const PmRegion r = m.pool().map("micro", kBytes, true);
    gpmPersistBegin(m);

    const std::uint64_t grains = kBytes / 8;
    const std::uint64_t per_thread = grains / threads;
    const std::uint32_t warp =
        static_cast<std::uint32_t>(cfg.warp_size);
    const std::uint32_t tpb = std::min<std::uint32_t>(threads, 256);

    KernelDesc k;
    k.name = "persist_micro";
    k.blocks = std::max<std::uint32_t>(1, threads / tpb);
    k.block_threads = tpb;
    const std::uint64_t base = r.offset;
    k.phases.push_back([=](ThreadCtx &ctx) {
        // Warp-contiguous layout: lane l writes grain i*32+l of the
        // warp's chunk, then persists — 8 B write + fence per grain.
        const std::uint64_t chunk =
            std::uint64_t(warp) * per_thread;
        const std::uint64_t warp_base =
            base + ctx.globalWarp() * chunk * 8;
        for (std::uint64_t i = 0; i < per_thread; ++i) {
            const std::uint64_t value = i;
            ctx.pmStore(warp_base + (i * warp + ctx.lane()) * 8,
                        value);
            ctx.threadfenceSystem();
        }
    });
    const SimNs t0 = m.now();
    m.runKernel(k);
    return m.now() - t0;
}

} // namespace

int
main()
{
    SimConfig cfg;
    const SimNs cap_1t = capMicro(cfg, 1);

    Table cap({"CPU threads", "Speedup over 1 CPU thread"});
    for (const int t : {1, 2, 4, 6, 16, 32, 64})
        cap.addRow({std::to_string(t),
                    Table::num(cap_1t / capMicro(cfg, t)) + "x"});
    report("Figure 3a: CAP-mm persist scaling", cap);

    Table gpm({"GPU threads", "Speedup over 1-thread CAP-mm"});
    for (const std::uint32_t t : {32u, 64u, 128u, 256u, 512u, 1024u,
                                  2048u})
        gpm.addRow({std::to_string(t),
                    Table::num(cap_1t / gpmMicro(cfg, t)) + "x"});
    report("Figure 3b: GPM persist scaling (8 B grains)", gpm);
    return 0;
}
