/**
 * @file
 * Ablation: why GPM needs parallelism (§4.3's counter-example).
 *
 * Binomial options pricing writes ONE value per threadblock —
 * essentially no parallelism in the persist path — so GPM's advantage
 * over CAP collapses, while Black–Scholes (BLK), which persists one
 * value per *thread*, keeps the full checkpointing-class speedup. The
 * paper uses exactly this contrast to delimit where GPM helps.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"
#include "workloads/binomial.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"Workload", "Persist grain", "CAP-fs (ms)",
                 "GPM (ms)", "GPM speedup"});

    {
        Machine fs(cfg, PlatformKind::CapFs, pmCapacity());
        Machine gpm(cfg, PlatformKind::Gpm, pmCapacity());
        BinomialParams p;
        GpBinomial a(fs, p), b(gpm, p);
        const SimNs cap_ns = a.run().op_ns;
        const SimNs gpm_ns = b.run().op_ns;
        table.addRow({"Binomial options", "1 value / threadblock",
                      Table::num(toMs(cap_ns)),
                      Table::num(toMs(gpm_ns)),
                      Table::num(cap_ns / gpm_ns, 1) + "x"});
    }
    {
        const WorkloadResult cap =
            runBench(Bench::Blk, PlatformKind::CapFs, cfg);
        const WorkloadResult gpm =
            runBench(Bench::Blk, PlatformKind::Gpm, cfg);
        table.addRow({"Black-Scholes (BLK)", "1 value / thread",
                      Table::num(toMs(comparableNs(Bench::Blk, cap))),
                      Table::num(toMs(comparableNs(Bench::Blk, gpm))),
                      Table::num(comparableNs(Bench::Blk, cap) /
                                 comparableNs(Bench::Blk, gpm), 1) +
                          "x"});
    }

    report("Ablation: GPM needs persist parallelism (section 4.3)",
           table);
    return 0;
}
