/**
 * @file
 * Section 6.1's Optane microbenchmark: achievable PM write bandwidth
 * for 256 B-aligned sequential, unaligned sequential, and random
 * accesses. Paper: 12.5 / 3.13 / 0.72 GB/s.
 */
#include "bench/bench_util.hpp"
#include "memsim/nvm_model.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

constexpr std::uint64_t kBytes = 64_MiB;

double
measure(const SimConfig &cfg, int pattern)
{
    NvmModel nvm(cfg);
    const std::uint64_t txn = 256;
    const std::uint64_t txns = kBytes / txn;
    switch (pattern) {
      case 0:  // sequential, 256 B aligned
        for (std::uint64_t i = 0; i < txns; ++i)
            nvm.recordWrite(/*stream=*/0, i * txn, txn);
        break;
      case 1:  // sequential, starting off-alignment
        for (std::uint64_t i = 0; i < txns; ++i)
            nvm.recordWrite(0, 64 + i * txn, txn);
        break;
      default:  // random addresses (stride breaks every run)
        for (std::uint64_t i = 0; i < txns; ++i)
            nvm.recordWrite(0, ((i * 2654435761u) % txns) * txn, txn);
        break;
    }
    nvm.closeRuns();
    return static_cast<double>(kBytes) / nvm.writeTime();
}

} // namespace

int
main()
{
    SimConfig cfg;
    Table table({"Access pattern", "Write BW (GB/s)", "Paper (GB/s)"});
    table.addRow({"sequential, 256B-aligned",
                  Table::num(measure(cfg, 0)), "12.50"});
    table.addRow({"sequential, unaligned", Table::num(measure(cfg, 1)),
                  "3.13"});
    table.addRow({"random", Table::num(measure(cfg, 2)), "0.72"});
    report("Optane write tiering microbenchmark (section 6.1)", table);
    return 0;
}
