/**
 * @file
 * Figure 1(a): throughput of persistent key-value stores — the three
 * CPU PM engines (pmemKV / RocksDB-pmem / MatrixKV analogs) against
 * MegaKV ported onto GPM (batched SETs, 8 B keys and values).
 *
 * Paper shape: GPM-KVS beats them by 5.8x / 3.1x / 2.7x respectively.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"KVS", "Throughput (Mops/s)", "GPM speedup"});

    double cpu_mops[3] = {};
    for (int d = 0; d < 3; ++d) {
        Machine m(cfg, PlatformKind::CpuOnly, pmCapacity());
        CpuPmKvs kvs(m, static_cast<CpuKvsDesign>(d), cpuKvsParams());
        cpu_mops[d] = kvs.run().mops();
    }
    const WorkloadResult gpm = runBench(Bench::Kvs, PlatformKind::Gpm,
                                        cfg);
    const double gpm_mops = gpm.mops();

    for (int d = 0; d < 3; ++d) {
        table.addRow({cpuKvsName(static_cast<CpuKvsDesign>(d)),
                      Table::num(cpu_mops[d]),
                      Table::num(gpm_mops / cpu_mops[d], 1) + "x"});
    }
    table.addRow({"GPM-KVS (MegaKV+GPM)", Table::num(gpm_mops), "1.0x"});

    report("Figure 1a: persistent KVS throughput (batched SETs)",
           table);
    return 0;
}
