/**
 * @file
 * Figure 1(b): speedup of GPM over multi-threaded CPU applications
 * that use PM for persistence (BFS / SRAD / PS).
 *
 * Paper shape: BFS 27x, SRAD 19.2x, PS 2.8x. Also prints the section
 * 6.1 CPU-DB comparison (gpDB I/U vs the OpenMP port: 3.1x / 6.9x).
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"Workload", "CPU+PM (ms)", "GPM (ms)", "Speedup"});

    auto row = [&](const std::string &name, SimNs cpu_ns, SimNs gpm_ns) {
        table.addRow({name, Table::num(toMs(cpu_ns)),
                      Table::num(toMs(gpm_ns)),
                      Table::num(cpu_ns / gpm_ns, 1) + "x"});
    };

    {
        Machine mc(cfg, PlatformKind::CpuOnly, pmCapacity());
        const WorkloadResult rc = runCpuBfs(mc, bfsParams());
        const WorkloadResult rg = runBench(Bench::Bfs,
                                           PlatformKind::Gpm, cfg);
        row("BFS", rc.op_ns, rg.op_ns);
    }
    {
        Machine mc(cfg, PlatformKind::CpuOnly, pmCapacity());
        const WorkloadResult rc = runCpuSrad(mc, sradParams());
        const WorkloadResult rg = runBench(Bench::Srad,
                                           PlatformKind::Gpm, cfg);
        row("SRAD", rc.op_ns, rg.op_ns);
    }
    {
        Machine mc(cfg, PlatformKind::CpuOnly, pmCapacity());
        const WorkloadResult rc = runCpuPrefixSum(mc, psParams());
        const WorkloadResult rg = runBench(Bench::PrefixSum,
                                           PlatformKind::Gpm, cfg);
        row("PS", rc.op_ns, rg.op_ns);
    }
    {
        Machine mc(cfg, PlatformKind::CpuOnly, pmCapacity());
        const WorkloadResult rc =
            runCpuDb(mc, dbParams(), GpDb::TxnKind::Insert);
        const WorkloadResult rg = runBench(Bench::DbInsert,
                                           PlatformKind::Gpm, cfg);
        row("gpDB (I) [sec 6.1]", rc.op_ns, rg.op_ns);
    }
    {
        Machine mc(cfg, PlatformKind::CpuOnly, pmCapacity());
        const WorkloadResult rc =
            runCpuDb(mc, dbParams(), GpDb::TxnKind::Update);
        const WorkloadResult rg = runBench(Bench::DbUpdate,
                                           PlatformKind::Gpm, cfg);
        row("gpDB (U) [sec 6.1]", rc.op_ns, rg.op_ns);
    }

    report("Figure 1b: GPM speedup over CPU applications using PM",
           table);
    return 0;
}
