/**
 * @file
 * Shared output helpers for the figure/table benches.
 *
 * Mirrors the paper artifact's reporting: every bench prints an
 * aligned human-readable table to stdout and the same rows as
 * tab-separated values (the artifact's out_*.txt format) beneath it.
 */
#pragma once

#include <iostream>
#include <string>

#include "common/table.hpp"

namespace gpm::bench {

/** Print the bench banner, the aligned table, then the TSV block. */
inline void
report(const std::string &title, const Table &table)
{
    std::cout << "=== " << title << " ===\n\n";
    table.print(std::cout);
    std::cout << "\n--- TSV ---\n";
    table.printTsv(std::cout);
    std::cout << std::endl;
}

} // namespace gpm::bench
