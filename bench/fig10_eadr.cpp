/**
 * @file
 * Figure 10: GPM-NDP / GPM / GPM-eADR / CAP-eADR speedup over CAP-fs
 * (log-scale bars in the paper).
 *
 * Paper shape: GPM up to 6x over GPM-NDP (direct persistence matters
 * beyond direct access); GPM-eADR up to 13x over GPM on fence-heavy
 * (logging) workloads and ~flat on checkpointing; GPM-eADR ~24x
 * CAP-eADR on average (eADR does not rescue CAP's data movement).
 *
 * The 55 (workload, platform) cells are swept across GPM_EXEC_WORKERS
 * host threads via runBenchCells; the table and geomeans reduce the
 * canonical-order result slots, so every printed number is
 * bit-identical at any worker count.
 */
#include <cmath>

#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    // Cells already fan out across GPM_EXEC_WORKERS, so only the media
    // selection (GPM_MEDIA) applies inside each cell's machine.
    SimConfig cfg;
    applyMediaConfig(cfg, mediaFromEnv(cfg.media));
    constexpr PlatformKind kCols[] = {
        PlatformKind::CapFs, PlatformKind::GpmNdp, PlatformKind::Gpm,
        PlatformKind::GpmEadr, PlatformKind::CapEadr,
    };
    std::vector<BenchCell> cells;
    for (const Bench b : kAllBenches)
        for (const PlatformKind kind : kCols)
            cells.push_back({b, kind, 1});
    const std::vector<WorkloadResult> results =
        runBenchCells(cells, cfg, execWorkersFromEnv(1));

    Table table({"Class", "Workload", "GPM-NDP", "GPM", "GPM-eADR",
                 "CAP-eADR"});
    double geo_gpm_eadr = 0, geo_cap_eadr = 0;
    int count = 0;
    std::size_t i = 0;
    for (const Bench b : kAllBenches) {
        const SimNs base = comparableNs(b, results[i++]);
        auto cell = [&]() { return comparableNs(b, results[i++]); };
        const double ndp = base / cell();
        const double gpm = base / cell();
        const double gpm_eadr = base / cell();
        const double cap_eadr = base / cell();
        geo_gpm_eadr += std::log(gpm_eadr);
        geo_cap_eadr += std::log(cap_eadr);
        ++count;
        table.addRow({benchClass(b), benchName(b),
                      Table::num(ndp) + "x", Table::num(gpm) + "x",
                      Table::num(gpm_eadr) + "x",
                      Table::num(cap_eadr) + "x"});
    }
    table.addRow({"", "geomean", "", "",
                  Table::num(std::exp(geo_gpm_eadr / count)) + "x",
                  Table::num(std::exp(geo_cap_eadr / count)) + "x"});
    report("Figure 10: speedup over CAP-fs (eADR projections)", table);
    return 0;
}
