/**
 * @file
 * Figure 10: GPM-NDP / GPM / GPM-eADR / CAP-eADR speedup over CAP-fs
 * (log-scale bars in the paper).
 *
 * Paper shape: GPM up to 6x over GPM-NDP (direct persistence matters
 * beyond direct access); GPM-eADR up to 13x over GPM on fence-heavy
 * (logging) workloads and ~flat on checkpointing; GPM-eADR ~24x
 * CAP-eADR on average (eADR does not rescue CAP's data movement).
 */
#include <cmath>

#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    SimConfig cfg;
    Table table({"Class", "Workload", "GPM-NDP", "GPM", "GPM-eADR",
                 "CAP-eADR"});

    double geo_gpm_eadr = 0, geo_cap_eadr = 0;
    int count = 0;
    for (const Bench b : kAllBenches) {
        const WorkloadResult base_r = runBench(b, PlatformKind::CapFs,
                                               cfg);
        const SimNs base = comparableNs(b, base_r);
        auto cell = [&](PlatformKind kind) {
            const WorkloadResult r = runBench(b, kind, cfg);
            return comparableNs(b, r);
        };
        const double ndp = base / cell(PlatformKind::GpmNdp);
        const double gpm = base / cell(PlatformKind::Gpm);
        const double gpm_eadr = base / cell(PlatformKind::GpmEadr);
        const double cap_eadr = base / cell(PlatformKind::CapEadr);
        geo_gpm_eadr += std::log(gpm_eadr);
        geo_cap_eadr += std::log(cap_eadr);
        ++count;
        table.addRow({benchClass(b), benchName(b),
                      Table::num(ndp) + "x", Table::num(gpm) + "x",
                      Table::num(gpm_eadr) + "x",
                      Table::num(cap_eadr) + "x"});
    }
    table.addRow({"", "geomean", "", "",
                  Table::num(std::exp(geo_gpm_eadr / count)) + "x",
                  Table::num(std::exp(geo_cap_eadr / count)) + "x"});
    report("Figure 10: speedup over CAP-fs (eADR projections)", table);
    return 0;
}
