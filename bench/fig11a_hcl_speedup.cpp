/**
 * @file
 * Figure 11(a): speedup of HCL over conventional distributed logging
 * for the transactional workloads.
 *
 * Paper shape: gpKVS 3.3x (only one in eight threads logs, limiting
 * HCL's parallelism win); gpDB (U) 6.1x (every thread logs a 60 B+
 * row). gpDB (I) is skipped — it only logs the table size.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

SimNs
kvsRun(const SimConfig &cfg, bool hcl)
{
    Machine m(cfg, PlatformKind::Gpm, pmCapacity());
    GpKvsParams p = kvsParams();
    p.use_hcl = hcl;
    GpKvs w(m, p);
    return w.run().op_ns;
}

SimNs
dbRun(const SimConfig &cfg, bool hcl)
{
    Machine m(cfg, PlatformKind::Gpm, pmCapacity());
    GpDbParams p = dbParams();
    p.use_hcl = hcl;
    GpDb w(m, p);
    return w.run(GpDb::TxnKind::Update).op_ns;
}

} // namespace

int
main()
{
    SimConfig cfg;
    Table table({"Workload", "Conventional (ms)", "HCL (ms)",
                 "HCL speedup"});

    const SimNs kvs_conv = kvsRun(cfg, false);
    const SimNs kvs_hcl = kvsRun(cfg, true);
    table.addRow({"gpKVS", Table::num(toMs(kvs_conv)),
                  Table::num(toMs(kvs_hcl)),
                  Table::num(kvs_conv / kvs_hcl, 1) + "x"});

    const SimNs db_conv = dbRun(cfg, false);
    const SimNs db_hcl = dbRun(cfg, true);
    table.addRow({"gpDB (U)", Table::num(toMs(db_conv)),
                  Table::num(toMs(db_hcl)),
                  Table::num(db_conv / db_hcl, 1) + "x"});

    report("Figure 11a: HCL speedup over conventional logging", table);
    return 0;
}
