/**
 * @file
 * Figure 11(a): speedup of HCL over conventional distributed logging
 * for the transactional workloads.
 *
 * Paper shape: gpKVS 3.3x (only one in eight threads logs, limiting
 * HCL's parallelism win); gpDB (U) 6.1x (every thread logs a 60 B+
 * row). gpDB (I) is skipped — it only logs the table size.
 *
 * The four (workload, logging-mode) runs each build a private
 * Machine, so they sweep across GPM_EXEC_WORKERS host threads; the
 * table reads the canonical-order result slots and is bit-identical
 * at any worker count.
 */
#include "bench/bench_util.hpp"
#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "harness/sweep.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

SimNs
kvsRun(const SimConfig &cfg, bool hcl)
{
    Machine m(cfg, PlatformKind::Gpm, pmCapacity());
    GpKvsParams p = kvsParams();
    p.use_hcl = hcl;
    GpKvs w(m, p);
    return w.run().op_ns;
}

SimNs
dbRun(const SimConfig &cfg, bool hcl)
{
    Machine m(cfg, PlatformKind::Gpm, pmCapacity());
    GpDbParams p = dbParams();
    p.use_hcl = hcl;
    GpDb w(m, p);
    return w.run(GpDb::TxnKind::Update).op_ns;
}

} // namespace

int
main()
{
    SimConfig cfg;
    Table table({"Workload", "Conventional (ms)", "HCL (ms)",
                 "HCL speedup"});

    // Canonical cell order: (kvs conv, kvs hcl, db conv, db hcl).
    SweepOptions opt;
    opt.workers = execWorkersFromEnv(1);
    const std::vector<SimNs> ns = sweep(
        std::size_t(4),
        [&](SweepLane &, std::size_t i) {
            const bool hcl = (i & 1) != 0;
            return i < 2 ? kvsRun(cfg, hcl) : dbRun(cfg, hcl);
        },
        opt);

    table.addRow({"gpKVS", Table::num(toMs(ns[0])),
                  Table::num(toMs(ns[1])),
                  Table::num(ns[0] / ns[1], 1) + "x"});
    table.addRow({"gpDB (U)", Table::num(toMs(ns[2])),
                  Table::num(toMs(ns[3])),
                  Table::num(ns[2] / ns[3], 1) + "x"});

    report("Figure 11a: HCL speedup over conventional logging", table);
    return 0;
}
