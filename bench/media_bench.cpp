/**
 * @file
 * Media-backend characterization bench (BENCH_media.json).
 *
 * Exercises every pluggable media backend (docs/memsim.md) and emits
 * a machine-readable envelope CI schema-validates:
 *
 *  1. interleave: host throughput of the recordWrite + closeRuns hot
 *     path at 1/2/4/8 DIMMs — 16 Ki warps appending into private
 *     granule slabs (the per-warp log-stripe pattern), streams
 *     round-robined so every record resolves through the stream
 *     table. Tier totals must be bitwise identical at every width,
 *     and the one-DIMM backend must reproduce the legacy single-DIMM
 *     NvmModel exactly: same tiers, same transaction count, same
 *     media time with and without the device random boost.
 *  2. cxl: the expander envelope — an aligned streaming burst is
 *     port-bound (26 GB/s beats the four in-device channels' summed
 *     sequential rate), a scattered line set stays media-bound, and
 *     reads pay the far-memory hop.
 *  3. hybrid: DRAM-cache behavior — a working set half the cache
 *     capacity hits after the first pass, double the capacity forces
 *     writeback migration; hit + miss bytes must equal offered bytes.
 *  4. cells: one real fig-grid cell (gpKVS and DNN on GPM) per
 *     backend. interleaved:1 must land on the default backend's
 *     modelled time bit for bit — the whole-workload N=1 equality
 *     gate — and every cell must verify.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/status.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"
#include "telemetry/json.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** The per-warp private-slab append pattern, driven into @p nvm. */
NvmTierBytes
driveSlabs(MediaBackend &nvm, std::uint64_t writes)
{
    constexpr std::uint64_t kStreams = 16384;
    constexpr std::uint64_t kSlab = 4096;
    std::vector<std::uint64_t> off(kStreams, 0);
    for (std::uint64_t i = 0; i < writes; ++i) {
        const std::uint64_t s = i & (kStreams - 1);
        nvm.recordWrite(s, s * kSlab + off[s], 64);
        off[s] = (off[s] + 64) & (kSlab - 1);
        if ((i & ((1u << 22) - 1)) == (1u << 22) - 1)
            nvm.closeRuns();
    }
    nvm.closeRuns();
    return nvm.bytes();
}

std::uint64_t
counter(const MediaBackend &m, const std::string &name)
{
    std::vector<MediaCounter> cs;
    m.appendCounters(cs);
    for (const MediaCounter &c : cs) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

struct InterleaveRow {
    int dimms = 0;
    double wall_s = 0.0;
    double mwrites_per_s = 0.0;
};

struct CellRow {
    std::string media;
    std::string workload;
    SimNs op_ns = 0;
    bool verified = false;
};

} // namespace

int
main()
{
    // ---- 1. interleave sweep --------------------------------------------
    const std::uint64_t kWrites = 1ull << 24;
    std::vector<InterleaveRow> sweep;
    NvmTierBytes tiers_ref{};
    double legacy_time = 0.0, legacy_boost_time = 0.0;
    for (const int dimms : {1, 2, 4, 8}) {
        SimConfig cfg;
        cfg.media.kind = MediaKind::Interleaved;
        cfg.media.dimms = dimms;
        const std::unique_ptr<MediaBackend> nvm = makeMediaBackend(cfg);
        const auto t0 = Clock::now();
        const NvmTierBytes tiers = driveSlabs(*nvm, kWrites);
        const double wall = secondsSince(t0);
        sweep.push_back({dimms, wall,
                         wall > 0 ? kWrites / wall / 1e6 : 0.0});
        if (dimms == 1) {
            tiers_ref = tiers;
            // N=1 equality gate against the legacy model, same drive.
            SimConfig lcfg;
            NvmModel legacy(lcfg);
            const NvmTierBytes lt = driveSlabs(legacy, kWrites);
            GPM_REQUIRE(lt == tiers,
                        "interleaved:1 tier totals diverge from the "
                        "legacy NvmModel");
            GPM_REQUIRE(legacy.writeTxns() == nvm->writeTxns(),
                        "interleaved:1 txn count diverges from legacy");
            legacy_time = legacy.writeTime(lt);
            legacy_boost_time = legacy.writeTime(lt, 1.6);
            GPM_REQUIRE(nvm->writeTime(tiers) == legacy_time &&
                            nvm->writeTime(tiers, 1.6) ==
                                legacy_boost_time,
                        "interleaved:1 media time diverges from legacy");
        }
        GPM_REQUIRE(tiers == tiers_ref,
                    "tier totals diverged at dimms=", dimms);
    }

    // ---- 2. cxl envelope ------------------------------------------------
    SimConfig ccfg;
    ccfg.media.kind = MediaKind::Cxl;
    const std::unique_ptr<MediaBackend> cxl = makeMediaBackend(ccfg);
    const std::uint64_t kBurst = 64_MiB;
    cxl->recordRun(0, kBurst, kBurst / 256);
    const SimNs cxl_seq_ns = cxl->writeTime(cxl->bytes());
    const double cxl_seq_gbps = kBurst / cxl_seq_ns;
    cxl->reset();
    cxl->recordScattered(kBurst, kBurst / 64);
    const SimNs cxl_rnd_ns = cxl->writeTime(cxl->bytes());
    const double cxl_rnd_gbps = kBurst / cxl_rnd_ns;
    // One 64 B line isolates the far-memory hop: at this size the
    // bandwidth term is negligible on both sides, so the delta is the
    // added latency, not the expander's in-device interleave win.
    const SimNs cxl_read_ns = cxl->readTime(64);
    SimConfig ncfg;
    NvmModel plain(ncfg);
    const SimNs plain_read_ns = plain.readTime(64);

    // ---- 3. hybrid cache behavior ---------------------------------------
    SimConfig hcfg;
    hcfg.media.kind = MediaKind::Hybrid;
    hcfg.media.dram_cache_bytes = 4_MiB;
    const std::unique_ptr<MediaBackend> hybrid = makeMediaBackend(hcfg);
    // Two passes over half the cache: pass 2 hits entirely in DRAM.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 2_MiB; a += 256)
            hybrid->recordWrite(1, a, 256);
    hybrid->closeRuns();
    const std::uint64_t warm_hits = counter(*hybrid, "dram_hit_bytes");
    const std::uint64_t warm_miss = counter(*hybrid, "dram_miss_bytes");
    GPM_REQUIRE(warm_hits + warm_miss == 2 * 2_MiB,
                "hybrid hit + miss bytes != offered bytes");
    hybrid->reset();
    // A working set at 2x capacity forces FIFO writeback migration.
    for (std::uint64_t a = 0; a < 8_MiB; a += 256)
        hybrid->recordWrite(1, a, 256);
    hybrid->closeRuns();
    const std::uint64_t spill_wb =
        counter(*hybrid, "dram_writeback_bytes");
    GPM_REQUIRE(spill_wb >= 4_MiB,
                "hybrid writeback below capacity overflow");

    // ---- 4. per-media fig-grid cells ------------------------------------
    std::vector<CellRow> cells;
    SimNs ref_kvs = 0, ref_dnn = 0;
    for (const char *key :
         {"nvm", "interleaved:1", "interleaved:8", "cxl", "hybrid:4"}) {
        const std::optional<MediaConfig> mc = parseMediaConfig(key);
        GPM_REQUIRE(mc.has_value(), "bad media key ", key);
        SimConfig cfg;
        applyMediaConfig(cfg, *mc);
        for (const Bench b : {Bench::Kvs, Bench::Dnn}) {
            const WorkloadResult r = runBench(b, PlatformKind::Gpm, cfg);
            GPM_REQUIRE(r.verified, benchKey(b), " failed to verify on ",
                        key);
            cells.push_back({key, benchKey(b), r.op_ns, r.verified});
            SimNs &ref = b == Bench::Kvs ? ref_kvs : ref_dnn;
            if (std::string(key) == "nvm")
                ref = r.op_ns;
            if (std::string(key) == "interleaved:1")
                GPM_REQUIRE(r.op_ns == ref,
                            "interleaved:1 ", benchKey(b),
                            " modelled time diverges from nvm");
        }
    }

    // ---- report ---------------------------------------------------------
    Table t1({"DIMMs", "Wall (s)", "Mwrites/s"});
    for (const InterleaveRow &r : sweep)
        t1.addRow({std::to_string(r.dimms), Table::num(r.wall_s),
                   Table::num(r.mwrites_per_s)});
    report("media: interleaved recordWrite sweep (16 Ki warp slabs)",
           t1);

    Table t2({"Media", "Workload", "GPM op (ms)"});
    for (const CellRow &c : cells)
        t2.addRow({c.media, c.workload, Table::num(toMs(c.op_ns), 3)});
    report("media: fig-grid cells per backend", t2);

    std::printf("cxl: seq %.2f GB/s (port-bound)  scattered %.2f GB/s "
                "(media-bound)  64 B read %+.0f ns vs local\n",
                cxl_seq_gbps, cxl_rnd_gbps, cxl_read_ns - plain_read_ns);
    std::printf("hybrid: warm hits %.1f%%  overflow writeback %.1f MiB\n",
                100.0 * warm_hits / (warm_hits + warm_miss),
                spill_wb / (1024.0 * 1024.0));

    // ---- BENCH_media.json -----------------------------------------------
    {
        std::ofstream js("BENCH_media.json", std::ios::trunc);
        telemetry::JsonWriter w(js);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "media_bench");
        w.key("interleave");
        w.beginArray();
        for (const InterleaveRow &r : sweep) {
            w.beginObject();
            w.field("dimms", r.dimms);
            w.field("wall_s", r.wall_s);
            w.field("mwrites_per_s", r.mwrites_per_s);
            w.endObject();
        }
        w.endArray();
        w.field("interleave_one_matches_legacy", true);
        w.field("legacy_media_time_ns", legacy_time);
        w.field("legacy_media_time_boost_ns", legacy_boost_time);
        w.key("cxl");
        w.beginObject();
        w.field("seq_gbps", cxl_seq_gbps);
        w.field("scattered_gbps", cxl_rnd_gbps);
        w.field("read_hop_ns", cxl_read_ns - plain_read_ns);
        w.endObject();
        w.key("hybrid");
        w.beginObject();
        w.field("warm_hit_bytes", warm_hits);
        w.field("warm_miss_bytes", warm_miss);
        w.field("overflow_writeback_bytes", spill_wb);
        w.endObject();
        w.key("cells");
        w.beginArray();
        for (const CellRow &c : cells) {
            w.beginObject();
            w.field("media", c.media);
            w.field("workload", c.workload);
            w.field("op_ns", c.op_ns);
            w.field("verified", c.verified);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        GPM_REQUIRE(w.complete() && js.good(),
                    "failed writing BENCH_media.json");
    }
    std::string error;
    GPM_REQUIRE(telemetry::validateJsonFile(
                    "BENCH_media.json",
                    {"schema", "tool", "interleave", "cxl", "hybrid",
                     "cells"},
                    &error),
                "BENCH_media.json failed validation: ", error);
    return 0;
}
