/**
 * @file
 * Disabled-telemetry overhead guard.
 *
 * Every instrumentation site in the sim stack costs, when no session
 * is installed, one relaxed/acquire atomic load (Span construction,
 * telemetry::count) or one plain array add (HotShard). This bench
 * times a representative hot loop — FNV-1a hashing of a 64 B buffer,
 * roughly the per-iteration work of a simulated thread phase — with
 * and without those sites, and asserts the disabled-mode overhead
 * stays under 2 %.
 *
 * Methodology: the two variants alternate for several rounds and the
 * minimum wall time of each is compared (minimum-of-rounds discards
 * scheduler noise; alternation cancels frequency drift). The whole
 * comparison retries a few times before failing so a single noisy CI
 * machine pass cannot produce a flaky red.
 *
 * Results land in BENCH_telemetry_overhead.json through the shared
 * telemetry JSON serializer.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/status.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

using namespace gpm;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

/**
 * The measured loop. Each iteration hashes a 64 B buffer and feeds
 * one byte back, so iterations form a dependency chain the optimizer
 * cannot collapse. When @p kHooked is true the iteration additionally
 * runs the three disabled-telemetry site shapes used on the sim's hot
 * paths: an inert Span, a count(), and a HotShard add.
 */
template <bool kHooked>
std::uint64_t
hotLoop(std::uint64_t iters, telemetry::HotShard &shard)
{
    unsigned char buf[64];
    for (unsigned i = 0; i < 64; ++i)
        buf[i] = static_cast<unsigned char>(i * 37 + 11);

    std::uint64_t h = kFnvBasis;
    for (std::uint64_t it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < 64; ++i) {
            h ^= buf[i];
            h *= kFnvPrime;
        }
        buf[it & 63u] = static_cast<unsigned char>(h);
        if constexpr (kHooked) {
            telemetry::Span span("bench", "hot-iter");  // no session: inert
            telemetry::count("bench.iters");
            shard.add(telemetry::HotCounter::BlocksExecuted, 1);
        }
    }
    return h;
}

double
timeLoop(bool hooked, std::uint64_t iters, telemetry::HotShard &shard,
         std::uint64_t &sink)
{
    const auto t0 = Clock::now();
    sink ^= hooked ? hotLoop<true>(iters, shard)
                   : hotLoop<false>(iters, shard);
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main()
{
    GPM_REQUIRE(!telemetry::enabled(),
                "overhead bench must run without a session installed");

    constexpr std::uint64_t kIters = 2'000'000;
    constexpr int kRounds = 7;
    constexpr int kAttempts = 5;
    constexpr double kLimitPct = 2.0;

    telemetry::HotShard shard;
    std::uint64_t sink = 0;

    double overhead_pct = 0.0;
    double base_s = 0.0, hooked_s = 0.0;
    bool pass = false;
    for (int attempt = 0; attempt < kAttempts && !pass; ++attempt) {
        base_s = 1e30;
        hooked_s = 1e30;
        for (int r = 0; r < kRounds; ++r) {
            base_s = std::min(base_s,
                              timeLoop(false, kIters, shard, sink));
            hooked_s = std::min(hooked_s,
                                timeLoop(true, kIters, shard, sink));
        }
        overhead_pct = 100.0 * (hooked_s - base_s) / base_s;
        pass = overhead_pct < kLimitPct;
        std::printf("attempt %d: base %.4f s, hooked %.4f s, "
                    "overhead %+.3f%%%s\n",
                    attempt + 1, base_s, hooked_s, overhead_pct,
                    pass ? "" : " (retrying)");
    }
    shard.clear();

    {
        std::ofstream js("BENCH_telemetry_overhead.json",
                         std::ios::trunc);
        telemetry::JsonWriter w(js);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "telemetry_overhead");
        w.field("iters", kIters);
        w.field("base_s", base_s);
        w.field("hooked_s", hooked_s);
        w.field("overhead_pct", overhead_pct);
        w.field("limit_pct", kLimitPct);
        w.field("pass", pass);
        w.field("sink", sink);  // defeats whole-loop elision
        w.endObject();
        GPM_REQUIRE(w.complete() && js.good(),
                    "failed writing BENCH_telemetry_overhead.json");
    }

    GPM_REQUIRE(pass, "disabled-telemetry overhead ", overhead_pct,
                "% exceeds the ", kLimitPct, "% budget");
    std::printf("telemetry disabled-mode overhead %.3f%% < %.1f%% "
                "budget\n",
                overhead_pct, kLimitPct);
    return 0;
}
