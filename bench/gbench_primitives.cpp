/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own primitives
 * (host wall time, not simulated time): PmPool store/persist, the
 * warp coalescer, HCL striped inserts and the Optane classifier.
 * These guard the simulator against performance regressions — the
 * figure benches run millions of these operations.
 */
#include <benchmark/benchmark.h>

#include "gpm/gpm_log.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"
#include "pmheap/gpm_map.hpp"

namespace gpm {
namespace {

void
BM_PmPoolDeviceWritePersist(benchmark::State &state)
{
    SimConfig cfg;
    PmPool pool(16_MiB, PersistDomain::McDurable);
    std::uint64_t v = 42, addr = 0;
    for (auto _ : state) {
        pool.deviceWrite(7, addr % 8_MiB, &v, 8);
        pool.persistOwner(7);
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmPoolDeviceWritePersist);

void
BM_NvmClassifierSequential(benchmark::State &state)
{
    SimConfig cfg;
    NvmModel nvm(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        nvm.recordWrite(1, addr, 128);
        addr += 128;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmClassifierSequential);

void
BM_NvmModelSingleStream(benchmark::State &state)
{
    // One warp appending run-sized bursts — the dominant recordWrite
    // pattern. Exercises the last-stream cache: after the first write
    // every iteration must resolve the stream without a table probe.
    SimConfig cfg;
    NvmModel nvm(cfg);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        nvm.recordWrite(3, addr, 64);
        addr += 64;
        if ((addr & ((1u << 20) - 1)) == 0)
            nvm.closeRuns();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmModelSingleStream);

void
BM_NvmModelInterleaved(benchmark::State &state)
{
    // The multi-DIMM recordWrite path, measured end to end (record +
    // closeRuns) so the interleaved backend's deferred per-DIMM drains
    // are priced in, not hidden. 16 Ki warps append 64 B records into
    // private granule-sized slabs (the per-warp log-stripe pattern HCL
    // produces), round-robin across warps — the worst case for the
    // last-stream cache, so every record resolves through the stream
    // table. Slabs stripe across the DIMM set, so each DIMM's private
    // table holds 1/N of the streams: at one DIMM the table is one
    // multi-MiB cache-busting flat table (bit-identical to the legacy
    // model), at 4-8 it shards into cache-resident pieces.
    // Arg = DIMM count.
    SimConfig cfg;
    cfg.media.kind = MediaKind::Interleaved;
    cfg.media.dimms = static_cast<int>(state.range(0));
    const std::unique_ptr<MediaBackend> nvm = makeMediaBackend(cfg);
    constexpr std::uint64_t kStreams = 16384;
    constexpr std::uint64_t kSlab = 4096;  ///< = interleave granule
    std::vector<std::uint64_t> off(kStreams, 0);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t s = i & (kStreams - 1);
        nvm->recordWrite(s, s * kSlab + off[s], 64);
        // Wrap inside the slab: the rewrite merges into the open run,
        // so the stream stays pinned to its DIMM.
        off[s] = (off[s] + 64) & (kSlab - 1);
        if ((++i & ((1u << 22) - 1)) == 0)
            nvm->closeRuns();
    }
    nvm->closeRuns();
    benchmark::DoNotOptimize(nvm->bytes().total());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmModelInterleaved)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_KernelLaunchSmall(benchmark::State &state)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    gpmPersistBegin(m);
    KernelDesc k;
    k.name = "noop";
    k.blocks = 4;
    k.block_threads = 128;
    k.phases.push_back([](ThreadCtx &ctx) { ctx.work(1); });
    for (auto _ : state)
        m.runKernel(k);
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_KernelLaunchSmall);

void
BM_SiteTableManySites(benchmark::State &state)
{
    // One warp issuing stores from 16 distinct program sites, 8 loop
    // occurrences each — the pattern that made the executor's old
    // per-thread site lookup (a linear scan of every site seen so
    // far) quadratic in sites-per-thread. The open-addressed
    // SiteTable keeps each lookup O(1).
    SimConfig cfg;
    PmPool pool(16_MiB, PersistDomain::McDurable);
    NvmModel nvm(cfg);
    GpuExecutor gpu(cfg, pool, nvm);
    KernelDesc k;
    k.name = "many_sites";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([](ThreadCtx &ctx) {
        const std::uint64_t base = ctx.globalId() * 8192;
        const std::uint64_t v = 1;
        for (std::uint64_t i = 0; i < 8; ++i) {
            // Macro-unrolled so every store is a distinct call site.
#define GPM_BM_SITE(n) ctx.pmWrite(base + (n) * 512 + i * 32, &v, 8)
            GPM_BM_SITE(0);
            GPM_BM_SITE(1);
            GPM_BM_SITE(2);
            GPM_BM_SITE(3);
            GPM_BM_SITE(4);
            GPM_BM_SITE(5);
            GPM_BM_SITE(6);
            GPM_BM_SITE(7);
            GPM_BM_SITE(8);
            GPM_BM_SITE(9);
            GPM_BM_SITE(10);
            GPM_BM_SITE(11);
            GPM_BM_SITE(12);
            GPM_BM_SITE(13);
            GPM_BM_SITE(14);
            GPM_BM_SITE(15);
#undef GPM_BM_SITE
        }
    });
    for (auto _ : state)
        gpu.launch(k);
    state.SetItemsProcessed(state.iterations() * 32 * 128);
}
BENCHMARK(BM_SiteTableManySites);

void
BM_KvsMakeBatch(benchmark::State &state)
{
    // Steady-state batch assembly: after batch 0 is cached, makeBatch
    // must rewrite its reused buffer without touching the allocator
    // (the churn the serving engine's hot loop cannot afford).
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpKvsParams p;
    p.batch_ops = static_cast<std::uint32_t>(state.range(0));
    p.get_ratio = 0.5;
    GpKvs kvs(m, p);
    std::uint32_t batch = 1;
    for (auto _ : state) {
        const auto &ops = kvs.makeBatch(batch);
        benchmark::DoNotOptimize(ops.data());
        batch = batch == 1u << 20 ? 1 : batch + 1;
    }
    state.SetItemsProcessed(state.iterations() * p.batch_ops);
}
BENCHMARK(BM_KvsMakeBatch)->Arg(256)->Arg(4096)->Arg(32768);

void
BM_HeapAllocFree(benchmark::State &state)
{
    // Steady-state allocator churn: one redo transaction allocating a
    // batch of mixed-class slots, one transaction freeing them. Pins
    // the cost of the txBegin record write + bitmap delta publication
    // that every GpmMap batch pays.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    gpmPersistBegin(m);
    GpmHeapParams p;
    p.name = "bmheap";
    p.slots_per_class = 64;
    GpmHeap heap(m, p);
    heap.setup(true);
    const std::uint32_t lens[4] = {24, 100, 700, 3000};
    std::uint64_t batch = 1;
    std::vector<std::uint64_t> handles;
    handles.reserve(32);
    for (auto _ : state) {
        handles.clear();
        for (unsigned i = 0; i < 32; ++i)
            handles.push_back(heap.alloc(lens[i % 4]));
        heap.txBegin(GpmHeap::TxMode::Commit, batch++, handles, {});
        heap.txCommit();
        heap.txBegin(GpmHeap::TxMode::Commit, batch++, {}, handles);
        heap.txCommit();
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_HeapAllocFree);

void
BM_MapPut(benchmark::State &state)
{
    // Overwrite-heavy map batches: each iteration re-puts the same 16
    // keys, so every op is alloc + stage + publish + free-old — the
    // serving engine's worst-case per-op persistence cost.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    gpmPersistBegin(m);
    GpmMapParams p;
    p.name = "bmmap";
    p.heap.name = "bmmap";
    p.heap.slots_per_class = 64;
    p.heap.max_tx_blob = 24 * 16;
    GpmMap map(m, p);
    map.setup(true);
    std::vector<MapOp> ops;
    for (std::uint64_t k = 1; k <= 16; ++k)
        ops.push_back({MapOp::Verb::Put, k,
                       static_cast<std::uint32_t>(24 * (1 + k % 4)), k});
    for (auto _ : state) {
        const auto res = map.runBatch(ops);
        benchmark::DoNotOptimize(res.data());
    }
    state.SetItemsProcessed(state.iterations() * ops.size());
}
BENCHMARK(BM_MapPut);

void
BM_HclInsert(benchmark::State &state)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 256_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "bmlog", 24, 4096, 8, 256);
    struct E {
        std::uint64_t a, b, c;
    };
    KernelDesc k;
    k.name = "hcl_insert";
    k.blocks = 8;
    k.block_threads = 256;
    std::uint32_t round = 0;
    k.phases.push_back([&log, &round](ThreadCtx &ctx) {
        const E e{ctx.globalId(), round, 1};
        log.insert(ctx, &e, sizeof(e));
    });
    for (auto _ : state) {
        if (round >= 4094) {
            state.PauseTiming();
            log.clearAll();
            round = 0;
            state.ResumeTiming();
        }
        m.runKernel(k);
        ++round;
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_HclInsert);

} // namespace
} // namespace gpm

BENCHMARK_MAIN();
