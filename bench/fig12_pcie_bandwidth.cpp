/**
 * @file
 * Figure 12: PCIe write bandwidth from GPU to PM under GPM, against
 * the ~13 GB/s achievable link maximum.
 *
 * Paper shape: transactional workloads sit far below the link maximum
 * (0.2-2.6 GB/s — Optane's random/unaligned tiers are the
 * bottleneck); checkpointing workloads stream aligned and run high;
 * BFS writes random addresses and sits lowest; SRAD streams unaligned
 * and lands mid-range.
 */
#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;
using namespace gpm::bench;

int
main()
{
    // benchConfig()'s env knobs minus the executor width: the media
    // selection (GPM_MEDIA) applies to every workload's machine.
    SimConfig cfg;
    applyMediaConfig(cfg, mediaFromEnv(cfg.media));
    Table table({"Class", "Workload", "PM write BW (GB/s)",
                 "Link max (GB/s)"});

    for (const Bench b : kAllBenches) {
        const WorkloadResult r = runBench(b, PlatformKind::Gpm, cfg);
        // Checkpointing traffic only flows while checkpoints run.
        const double gbps = static_cast<double>(r.pcie_write_bytes) /
                            comparableNs(b, r);
        table.addRow({benchClass(b), benchName(b), Table::num(gbps),
                      Table::num(cfg.pcie_gbps, 1)});
    }
    report("Figure 12: PCIe write bandwidth to PM under GPM", table);
    return 0;
}
