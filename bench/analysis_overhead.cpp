/**
 * @file
 * Disabled-recorder overhead guard for the gpmcheck event hooks.
 *
 * Every PmPool hot-path hook (store, fence, flush, crash, recovery
 * read) costs, when no PmEventRecorder is attached, exactly one
 * pointer load and a never-taken branch. This bench times a
 * representative hot loop — FNV-1a hashing of a 64 B buffer, roughly
 * the per-iteration work of a simulated thread phase — with and
 * without those site shapes, and asserts the disabled-mode overhead
 * stays under 2 %.
 *
 * The hooked variant re-reads the recorder pointer through a volatile
 * slot each iteration, modelling the member load the real sites pay
 * (the pointer is not cached across pool calls), then runs the two
 * shapes PmPool uses: the plain `if (rec)` guard (store/fence/flush)
 * and the chained `if (rec && rec->inRecovery())` guard (read path).
 *
 * Methodology matches telemetry_overhead: the two variants alternate
 * for several rounds and the minimum wall time of each is compared
 * (minimum-of-rounds discards scheduler noise; alternation cancels
 * frequency drift). The whole comparison retries a few times before
 * failing so a single noisy CI machine pass cannot produce a flaky
 * red.
 *
 * Results land in BENCH_analysis_overhead.json through the shared
 * telemetry JSON serializer.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/status.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/json.hpp"

using namespace gpm;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

/**
 * Holds the recorder pointer the hooked loop tests. The volatile
 * qualifier forces one real load per iteration — the honest price of
 * the member read PmPool pays at each site — and keeps the optimizer
 * from hoisting the null test out of the loop.
 */
struct RecorderSlot {
    PmEventRecorder *volatile rec = nullptr;
};

/**
 * The measured loop. Each iteration hashes a 64 B buffer and feeds
 * one byte back, so iterations form a dependency chain the optimizer
 * cannot collapse. When @p kHooked is true the iteration additionally
 * runs the disabled-recorder site shapes from PmPool's hot paths.
 */
template <bool kHooked>
std::uint64_t
hotLoop(std::uint64_t iters, RecorderSlot &slot)
{
    unsigned char buf[64];
    for (unsigned i = 0; i < 64; ++i)
        buf[i] = static_cast<unsigned char>(i * 37 + 11);

    std::uint64_t h = kFnvBasis;
    for (std::uint64_t it = 0; it < iters; ++it) {
        for (unsigned i = 0; i < 64; ++i) {
            h ^= buf[i];
            h *= kFnvPrime;
        }
        buf[it & 63u] = static_cast<unsigned char>(h);
        if constexpr (kHooked) {
            // writeCommon / persistOwner shape: one load, one test.
            if (PmEventRecorder *rec = slot.rec)
                rec->store(PersistDomain::McDurable, OwnerId(0), it,
                           8);
            // read-path shape: chained guard, second test unreached.
            if (PmEventRecorder *rec = slot.rec;
                rec && rec->inRecovery())
                rec->recoveryRead(PersistDomain::McDurable, it, 8);
        }
    }
    return h;
}

double
timeLoop(bool hooked, std::uint64_t iters, RecorderSlot &slot,
         std::uint64_t &sink)
{
    const auto t0 = Clock::now();
    sink ^= hooked ? hotLoop<true>(iters, slot)
                   : hotLoop<false>(iters, slot);
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main()
{
    constexpr std::uint64_t kIters = 2'000'000;
    constexpr int kRounds = 7;
    constexpr int kAttempts = 5;
    constexpr double kLimitPct = 2.0;

    RecorderSlot slot;
    std::uint64_t sink = 0;

    double overhead_pct = 0.0;
    double base_s = 0.0, hooked_s = 0.0;
    bool pass = false;
    for (int attempt = 0; attempt < kAttempts && !pass; ++attempt) {
        base_s = 1e30;
        hooked_s = 1e30;
        for (int r = 0; r < kRounds; ++r) {
            base_s = std::min(base_s,
                              timeLoop(false, kIters, slot, sink));
            hooked_s = std::min(hooked_s,
                                timeLoop(true, kIters, slot, sink));
        }
        overhead_pct = 100.0 * (hooked_s - base_s) / base_s;
        pass = overhead_pct < kLimitPct;
        std::printf("attempt %d: base %.4f s, hooked %.4f s, "
                    "overhead %+.3f%%%s\n",
                    attempt + 1, base_s, hooked_s, overhead_pct,
                    pass ? "" : " (retrying)");
    }

    {
        std::ofstream js("BENCH_analysis_overhead.json",
                         std::ios::trunc);
        telemetry::JsonWriter w(js);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "analysis_overhead");
        w.field("iters", kIters);
        w.field("base_s", base_s);
        w.field("hooked_s", hooked_s);
        w.field("overhead_pct", overhead_pct);
        w.field("limit_pct", kLimitPct);
        w.field("pass", pass);
        w.field("sink", sink);  // defeats whole-loop elision
        w.endObject();
        GPM_REQUIRE(w.complete() && js.good(),
                    "failed writing BENCH_analysis_overhead.json");
    }

    GPM_REQUIRE(pass, "disabled-recorder overhead ", overhead_pct,
                "% exceeds the ", kLimitPct, "% budget");
    std::printf("recorder disabled-mode overhead %.3f%% < %.1f%% "
                "budget\n",
                overhead_pct, kLimitPct);
    return 0;
}
