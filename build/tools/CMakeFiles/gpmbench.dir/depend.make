# Empty dependencies file for gpmbench.
# This may be replaced when dependencies are built.
