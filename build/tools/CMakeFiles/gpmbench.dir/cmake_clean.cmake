file(REMOVE_RECURSE
  "CMakeFiles/gpmbench.dir/gpmbench.cpp.o"
  "CMakeFiles/gpmbench.dir/gpmbench.cpp.o.d"
  "gpmbench"
  "gpmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
