# Empty dependencies file for gbench_primitives.
# This may be replaced when dependencies are built.
