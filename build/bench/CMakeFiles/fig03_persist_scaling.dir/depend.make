# Empty dependencies file for fig03_persist_scaling.
# This may be replaced when dependencies are built.
