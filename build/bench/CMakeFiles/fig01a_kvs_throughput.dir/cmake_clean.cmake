file(REMOVE_RECURSE
  "CMakeFiles/fig01a_kvs_throughput.dir/fig01a_kvs_throughput.cpp.o"
  "CMakeFiles/fig01a_kvs_throughput.dir/fig01a_kvs_throughput.cpp.o.d"
  "fig01a_kvs_throughput"
  "fig01a_kvs_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_kvs_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
