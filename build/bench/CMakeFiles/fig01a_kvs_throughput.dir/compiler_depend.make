# Empty compiler generated dependencies file for fig01a_kvs_throughput.
# This may be replaced when dependencies are built.
