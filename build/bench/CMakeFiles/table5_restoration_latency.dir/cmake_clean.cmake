file(REMOVE_RECURSE
  "CMakeFiles/table5_restoration_latency.dir/table5_restoration_latency.cpp.o"
  "CMakeFiles/table5_restoration_latency.dir/table5_restoration_latency.cpp.o.d"
  "table5_restoration_latency"
  "table5_restoration_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_restoration_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
