file(REMOVE_RECURSE
  "CMakeFiles/micro_dnn_checkpoint_freq.dir/micro_dnn_checkpoint_freq.cpp.o"
  "CMakeFiles/micro_dnn_checkpoint_freq.dir/micro_dnn_checkpoint_freq.cpp.o.d"
  "micro_dnn_checkpoint_freq"
  "micro_dnn_checkpoint_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dnn_checkpoint_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
