# Empty dependencies file for micro_dnn_checkpoint_freq.
# This may be replaced when dependencies are built.
