# Empty compiler generated dependencies file for fig11b_hcl_scaling.
# This may be replaced when dependencies are built.
