file(REMOVE_RECURSE
  "CMakeFiles/fig11b_hcl_scaling.dir/fig11b_hcl_scaling.cpp.o"
  "CMakeFiles/fig11b_hcl_scaling.dir/fig11b_hcl_scaling.cpp.o.d"
  "fig11b_hcl_scaling"
  "fig11b_hcl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_hcl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
