# Empty dependencies file for fig01b_gpm_vs_cpu.
# This may be replaced when dependencies are built.
