file(REMOVE_RECURSE
  "CMakeFiles/fig01b_gpm_vs_cpu.dir/fig01b_gpm_vs_cpu.cpp.o"
  "CMakeFiles/fig01b_gpm_vs_cpu.dir/fig01b_gpm_vs_cpu.cpp.o.d"
  "fig01b_gpm_vs_cpu"
  "fig01b_gpm_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_gpm_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
