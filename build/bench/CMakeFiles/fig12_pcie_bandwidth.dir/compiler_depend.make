# Empty compiler generated dependencies file for fig12_pcie_bandwidth.
# This may be replaced when dependencies are built.
