file(REMOVE_RECURSE
  "CMakeFiles/fig12_pcie_bandwidth.dir/fig12_pcie_bandwidth.cpp.o"
  "CMakeFiles/fig12_pcie_bandwidth.dir/fig12_pcie_bandwidth.cpp.o.d"
  "fig12_pcie_bandwidth"
  "fig12_pcie_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pcie_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
