file(REMOVE_RECURSE
  "CMakeFiles/ablation_binomial.dir/ablation_binomial.cpp.o"
  "CMakeFiles/ablation_binomial.dir/ablation_binomial.cpp.o.d"
  "ablation_binomial"
  "ablation_binomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
