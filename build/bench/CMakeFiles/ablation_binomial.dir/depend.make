# Empty dependencies file for ablation_binomial.
# This may be replaced when dependencies are built.
