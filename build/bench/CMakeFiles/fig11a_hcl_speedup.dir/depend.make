# Empty dependencies file for fig11a_hcl_speedup.
# This may be replaced when dependencies are built.
