file(REMOVE_RECURSE
  "CMakeFiles/fig11a_hcl_speedup.dir/fig11a_hcl_speedup.cpp.o"
  "CMakeFiles/fig11a_hcl_speedup.dir/fig11a_hcl_speedup.cpp.o.d"
  "fig11a_hcl_speedup"
  "fig11a_hcl_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_hcl_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
