# Empty compiler generated dependencies file for ablation_cxl_projection.
# This may be replaced when dependencies are built.
