file(REMOVE_RECURSE
  "CMakeFiles/ablation_cxl_projection.dir/ablation_cxl_projection.cpp.o"
  "CMakeFiles/ablation_cxl_projection.dir/ablation_cxl_projection.cpp.o.d"
  "ablation_cxl_projection"
  "ablation_cxl_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cxl_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
