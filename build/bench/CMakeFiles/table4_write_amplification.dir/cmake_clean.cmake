file(REMOVE_RECURSE
  "CMakeFiles/table4_write_amplification.dir/table4_write_amplification.cpp.o"
  "CMakeFiles/table4_write_amplification.dir/table4_write_amplification.cpp.o.d"
  "table4_write_amplification"
  "table4_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
