# Empty dependencies file for table4_write_amplification.
# This may be replaced when dependencies are built.
