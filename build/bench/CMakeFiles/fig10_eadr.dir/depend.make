# Empty dependencies file for fig10_eadr.
# This may be replaced when dependencies are built.
