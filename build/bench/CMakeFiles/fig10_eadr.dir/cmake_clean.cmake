file(REMOVE_RECURSE
  "CMakeFiles/fig10_eadr.dir/fig10_eadr.cpp.o"
  "CMakeFiles/fig10_eadr.dir/fig10_eadr.cpp.o.d"
  "fig10_eadr"
  "fig10_eadr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_eadr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
