# Empty dependencies file for micro_optane_tiering.
# This may be replaced when dependencies are built.
