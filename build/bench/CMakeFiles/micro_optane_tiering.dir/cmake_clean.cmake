file(REMOVE_RECURSE
  "CMakeFiles/micro_optane_tiering.dir/micro_optane_tiering.cpp.o"
  "CMakeFiles/micro_optane_tiering.dir/micro_optane_tiering.cpp.o.d"
  "micro_optane_tiering"
  "micro_optane_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_optane_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
