# Empty compiler generated dependencies file for test_native.
# This may be replaced when dependencies are built.
