file(REMOVE_RECURSE
  "CMakeFiles/test_pm_pool.dir/test_pm_pool.cpp.o"
  "CMakeFiles/test_pm_pool.dir/test_pm_pool.cpp.o.d"
  "test_pm_pool"
  "test_pm_pool.pdb"
  "test_pm_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
