# Empty dependencies file for test_pm_pool.
# This may be replaced when dependencies are built.
