file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_executor.dir/test_gpu_executor.cpp.o"
  "CMakeFiles/test_gpu_executor.dir/test_gpu_executor.cpp.o.d"
  "test_gpu_executor"
  "test_gpu_executor.pdb"
  "test_gpu_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
