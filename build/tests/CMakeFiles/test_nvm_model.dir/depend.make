# Empty dependencies file for test_nvm_model.
# This may be replaced when dependencies are built.
