file(REMOVE_RECURSE
  "CMakeFiles/test_nvm_model.dir/test_nvm_model.cpp.o"
  "CMakeFiles/test_nvm_model.dir/test_nvm_model.cpp.o.d"
  "test_nvm_model"
  "test_nvm_model.pdb"
  "test_nvm_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
