file(REMOVE_RECURSE
  "CMakeFiles/test_cpubaseline.dir/test_cpubaseline.cpp.o"
  "CMakeFiles/test_cpubaseline.dir/test_cpubaseline.cpp.o.d"
  "test_cpubaseline"
  "test_cpubaseline.pdb"
  "test_cpubaseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpubaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
