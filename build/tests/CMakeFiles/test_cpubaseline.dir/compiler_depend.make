# Empty compiler generated dependencies file for test_cpubaseline.
# This may be replaced when dependencies are built.
