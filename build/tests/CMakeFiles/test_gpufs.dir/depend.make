# Empty dependencies file for test_gpufs.
# This may be replaced when dependencies are built.
