file(REMOVE_RECURSE
  "CMakeFiles/test_gpufs.dir/test_gpufs.cpp.o"
  "CMakeFiles/test_gpufs.dir/test_gpufs.cpp.o.d"
  "test_gpufs"
  "test_gpufs.pdb"
  "test_gpufs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
