file(REMOVE_RECURSE
  "CMakeFiles/test_workload_properties.dir/test_workload_properties.cpp.o"
  "CMakeFiles/test_workload_properties.dir/test_workload_properties.cpp.o.d"
  "test_workload_properties"
  "test_workload_properties.pdb"
  "test_workload_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
