file(REMOVE_RECURSE
  "CMakeFiles/test_gpm_log.dir/test_gpm_log.cpp.o"
  "CMakeFiles/test_gpm_log.dir/test_gpm_log.cpp.o.d"
  "test_gpm_log"
  "test_gpm_log.pdb"
  "test_gpm_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpm_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
