# Empty dependencies file for test_gpm_log.
# This may be replaced when dependencies are built.
