file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_kvs_internals.dir/test_cpu_kvs_internals.cpp.o"
  "CMakeFiles/test_cpu_kvs_internals.dir/test_cpu_kvs_internals.cpp.o.d"
  "test_cpu_kvs_internals"
  "test_cpu_kvs_internals.pdb"
  "test_cpu_kvs_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_kvs_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
