# Empty compiler generated dependencies file for test_cpu_kvs_internals.
# This may be replaced when dependencies are built.
