file(REMOVE_RECURSE
  "CMakeFiles/test_kvs.dir/test_kvs.cpp.o"
  "CMakeFiles/test_kvs.dir/test_kvs.cpp.o.d"
  "test_kvs"
  "test_kvs.pdb"
  "test_kvs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
