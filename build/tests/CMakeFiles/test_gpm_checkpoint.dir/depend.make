# Empty dependencies file for test_gpm_checkpoint.
# This may be replaced when dependencies are built.
