file(REMOVE_RECURSE
  "CMakeFiles/test_gpm_checkpoint.dir/test_gpm_checkpoint.cpp.o"
  "CMakeFiles/test_gpm_checkpoint.dir/test_gpm_checkpoint.cpp.o.d"
  "test_gpm_checkpoint"
  "test_gpm_checkpoint.pdb"
  "test_gpm_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpm_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
