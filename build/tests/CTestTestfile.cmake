# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_kvs[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_iterative[1]_include.cmake")
include("/root/repo/build/tests/test_native[1]_include.cmake")
include("/root/repo/build/tests/test_cpubaseline[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_nvm_model[1]_include.cmake")
include("/root/repo/build/tests/test_pm_pool[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_executor[1]_include.cmake")
include("/root/repo/build/tests/test_gpm_log[1]_include.cmake")
include("/root/repo/build/tests/test_gpm_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_binomial[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_gpufs[1]_include.cmake")
include("/root/repo/build/tests/test_workload_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_kvs_internals[1]_include.cmake")
