
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpm/CMakeFiles/gpm_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpm_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/gpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gpm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
