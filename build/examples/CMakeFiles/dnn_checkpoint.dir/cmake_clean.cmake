file(REMOVE_RECURSE
  "CMakeFiles/dnn_checkpoint.dir/dnn_checkpoint.cpp.o"
  "CMakeFiles/dnn_checkpoint.dir/dnn_checkpoint.cpp.o.d"
  "dnn_checkpoint"
  "dnn_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
