# Empty dependencies file for dnn_checkpoint.
# This may be replaced when dependencies are built.
