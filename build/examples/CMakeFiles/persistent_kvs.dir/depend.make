# Empty dependencies file for persistent_kvs.
# This may be replaced when dependencies are built.
