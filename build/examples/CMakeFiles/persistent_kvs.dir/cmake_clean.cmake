file(REMOVE_RECURSE
  "CMakeFiles/persistent_kvs.dir/persistent_kvs.cpp.o"
  "CMakeFiles/persistent_kvs.dir/persistent_kvs.cpp.o.d"
  "persistent_kvs"
  "persistent_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
