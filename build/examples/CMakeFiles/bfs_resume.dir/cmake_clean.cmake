file(REMOVE_RECURSE
  "CMakeFiles/bfs_resume.dir/bfs_resume.cpp.o"
  "CMakeFiles/bfs_resume.dir/bfs_resume.cpp.o.d"
  "bfs_resume"
  "bfs_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
