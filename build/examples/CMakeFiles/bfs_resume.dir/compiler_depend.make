# Empty compiler generated dependencies file for bfs_resume.
# This may be replaced when dependencies are built.
