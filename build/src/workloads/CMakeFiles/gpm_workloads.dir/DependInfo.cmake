
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/binomial.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/binomial.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/binomial.cpp.o.d"
  "/root/repo/src/workloads/blackscholes.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/blackscholes.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/blackscholes.cpp.o.d"
  "/root/repo/src/workloads/cfd.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/cfd.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/cfd.cpp.o.d"
  "/root/repo/src/workloads/db.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/db.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/db.cpp.o.d"
  "/root/repo/src/workloads/dnn.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/dnn.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/dnn.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/iterative.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/iterative.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/iterative.cpp.o.d"
  "/root/repo/src/workloads/kvs.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/kvs.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/kvs.cpp.o.d"
  "/root/repo/src/workloads/prefix_sum.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/prefix_sum.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/prefix_sum.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/workloads/CMakeFiles/gpm_workloads.dir/srad.cpp.o" "gcc" "src/workloads/CMakeFiles/gpm_workloads.dir/srad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpm/CMakeFiles/gpm_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/gpm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpm_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/gpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gpm_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
