file(REMOVE_RECURSE
  "CMakeFiles/gpm_workloads.dir/bfs.cpp.o"
  "CMakeFiles/gpm_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/binomial.cpp.o"
  "CMakeFiles/gpm_workloads.dir/binomial.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/blackscholes.cpp.o"
  "CMakeFiles/gpm_workloads.dir/blackscholes.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/cfd.cpp.o"
  "CMakeFiles/gpm_workloads.dir/cfd.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/db.cpp.o"
  "CMakeFiles/gpm_workloads.dir/db.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/dnn.cpp.o"
  "CMakeFiles/gpm_workloads.dir/dnn.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/gpm_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/iterative.cpp.o"
  "CMakeFiles/gpm_workloads.dir/iterative.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/kvs.cpp.o"
  "CMakeFiles/gpm_workloads.dir/kvs.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/prefix_sum.cpp.o"
  "CMakeFiles/gpm_workloads.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/gpm_workloads.dir/srad.cpp.o"
  "CMakeFiles/gpm_workloads.dir/srad.cpp.o.d"
  "libgpm_workloads.a"
  "libgpm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
