file(REMOVE_RECURSE
  "libgpm_workloads.a"
)
