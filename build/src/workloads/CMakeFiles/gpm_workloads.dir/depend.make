# Empty dependencies file for gpm_workloads.
# This may be replaced when dependencies are built.
