# Empty dependencies file for gpm_lib.
# This may be replaced when dependencies are built.
