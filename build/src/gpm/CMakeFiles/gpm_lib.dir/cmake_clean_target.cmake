file(REMOVE_RECURSE
  "libgpm_lib.a"
)
