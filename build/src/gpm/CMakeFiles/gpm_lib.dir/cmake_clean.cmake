file(REMOVE_RECURSE
  "CMakeFiles/gpm_lib.dir/gpm_checkpoint.cpp.o"
  "CMakeFiles/gpm_lib.dir/gpm_checkpoint.cpp.o.d"
  "CMakeFiles/gpm_lib.dir/gpm_log.cpp.o"
  "CMakeFiles/gpm_lib.dir/gpm_log.cpp.o.d"
  "libgpm_lib.a"
  "libgpm_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
