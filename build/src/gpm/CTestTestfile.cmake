# CMake generated Testfile for 
# Source directory: /root/repo/src/gpm
# Build directory: /root/repo/build/src/gpm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
