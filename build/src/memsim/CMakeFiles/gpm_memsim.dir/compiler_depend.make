# Empty compiler generated dependencies file for gpm_memsim.
# This may be replaced when dependencies are built.
