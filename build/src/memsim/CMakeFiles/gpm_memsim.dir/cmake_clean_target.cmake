file(REMOVE_RECURSE
  "libgpm_memsim.a"
)
