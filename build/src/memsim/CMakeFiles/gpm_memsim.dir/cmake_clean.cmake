file(REMOVE_RECURSE
  "CMakeFiles/gpm_memsim.dir/nvm_model.cpp.o"
  "CMakeFiles/gpm_memsim.dir/nvm_model.cpp.o.d"
  "libgpm_memsim.a"
  "libgpm_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
