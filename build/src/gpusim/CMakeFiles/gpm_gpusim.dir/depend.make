# Empty dependencies file for gpm_gpusim.
# This may be replaced when dependencies are built.
