# Empty compiler generated dependencies file for gpm_gpusim.
# This may be replaced when dependencies are built.
