file(REMOVE_RECURSE
  "CMakeFiles/gpm_gpusim.dir/gpu_executor.cpp.o"
  "CMakeFiles/gpm_gpusim.dir/gpu_executor.cpp.o.d"
  "libgpm_gpusim.a"
  "libgpm_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
