file(REMOVE_RECURSE
  "libgpm_gpusim.a"
)
