# Empty dependencies file for gpm_common.
# This may be replaced when dependencies are built.
