file(REMOVE_RECURSE
  "libgpm_common.a"
)
