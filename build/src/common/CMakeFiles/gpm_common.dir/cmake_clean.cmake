file(REMOVE_RECURSE
  "CMakeFiles/gpm_common.dir/table.cpp.o"
  "CMakeFiles/gpm_common.dir/table.cpp.o.d"
  "libgpm_common.a"
  "libgpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
