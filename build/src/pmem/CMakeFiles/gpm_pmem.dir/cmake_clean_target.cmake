file(REMOVE_RECURSE
  "libgpm_pmem.a"
)
