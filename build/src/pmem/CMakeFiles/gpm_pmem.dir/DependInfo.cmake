
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/pm_pool.cpp" "src/pmem/CMakeFiles/gpm_pmem.dir/pm_pool.cpp.o" "gcc" "src/pmem/CMakeFiles/gpm_pmem.dir/pm_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/gpm_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
