file(REMOVE_RECURSE
  "CMakeFiles/gpm_pmem.dir/pm_pool.cpp.o"
  "CMakeFiles/gpm_pmem.dir/pm_pool.cpp.o.d"
  "libgpm_pmem.a"
  "libgpm_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
