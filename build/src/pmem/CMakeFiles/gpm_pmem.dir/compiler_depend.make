# Empty compiler generated dependencies file for gpm_pmem.
# This may be replaced when dependencies are built.
