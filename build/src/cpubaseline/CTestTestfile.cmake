# CMake generated Testfile for 
# Source directory: /root/repo/src/cpubaseline
# Build directory: /root/repo/build/src/cpubaseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
