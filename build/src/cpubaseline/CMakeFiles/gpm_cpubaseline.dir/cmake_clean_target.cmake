file(REMOVE_RECURSE
  "libgpm_cpubaseline.a"
)
