file(REMOVE_RECURSE
  "CMakeFiles/gpm_cpubaseline.dir/cpu_apps.cpp.o"
  "CMakeFiles/gpm_cpubaseline.dir/cpu_apps.cpp.o.d"
  "CMakeFiles/gpm_cpubaseline.dir/cpu_kvs.cpp.o"
  "CMakeFiles/gpm_cpubaseline.dir/cpu_kvs.cpp.o.d"
  "libgpm_cpubaseline.a"
  "libgpm_cpubaseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_cpubaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
