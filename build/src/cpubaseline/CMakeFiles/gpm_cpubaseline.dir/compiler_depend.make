# Empty compiler generated dependencies file for gpm_cpubaseline.
# This may be replaced when dependencies are built.
