file(REMOVE_RECURSE
  "libgpm_platform.a"
)
