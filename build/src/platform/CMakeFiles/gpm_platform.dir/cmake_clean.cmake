file(REMOVE_RECURSE
  "CMakeFiles/gpm_platform.dir/gpufs_api.cpp.o"
  "CMakeFiles/gpm_platform.dir/gpufs_api.cpp.o.d"
  "CMakeFiles/gpm_platform.dir/machine.cpp.o"
  "CMakeFiles/gpm_platform.dir/machine.cpp.o.d"
  "libgpm_platform.a"
  "libgpm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
