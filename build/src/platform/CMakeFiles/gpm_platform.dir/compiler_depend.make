# Empty compiler generated dependencies file for gpm_platform.
# This may be replaced when dependencies are built.
