file(REMOVE_RECURSE
  "CMakeFiles/gpm_harness.dir/experiments.cpp.o"
  "CMakeFiles/gpm_harness.dir/experiments.cpp.o.d"
  "libgpm_harness.a"
  "libgpm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
