# Empty dependencies file for gpm_harness.
# This may be replaced when dependencies are built.
