file(REMOVE_RECURSE
  "libgpm_harness.a"
)
