/**
 * @file
 * gpmbench — command-line driver for the GPMbench suite.
 *
 * Runs any (workload, platform) cell of the evaluation matrix with
 * the canonical (paper-scaled) configuration and prints the measured
 * simulated time, throughput, persisted payload and PM traffic:
 *
 *     gpmbench [--jobs N] [--media M] list
 *     gpmbench [--jobs N] [--media M] run <workload> <platform> [seed]
 *     gpmbench [--jobs N] [--media M] crash <workload> [seed]
 *     gpmbench [--jobs N] [--media M] matrix  # the full Fig 9 grid
 *
 * Workloads: kvs kvs95 dbi dbu dnn cfd blk hs bfs srad ps
 * Platforms: gpm ndp eadr capfs capmm capeadr gpufs
 *
 * --jobs N sets SimConfig::exec_workers (0 = one per hardware
 * thread); results are bit-identical at any width, only wall-clock
 * changes. Defaults to the GPM_EXEC_WORKERS environment variable.
 * The matrix command spends the same budget one level up: whole
 * (workload, platform) cells are swept over --jobs host workers
 * (each cell's blocks then run sequentially), with rows printed in
 * canonical cell order.
 * --media M selects the PM media backend behind every cell's machine
 * (nvm, interleaved[:dimms], cxl, hybrid[:cache_mib]); defaults to
 * the GPM_MEDIA environment variable, else the single-DIMM paper
 * model. The key tables and the flag grammars live in the harness
 * (benchFromKey/platformFromKey, parseExecWorkers, parseMediaConfig)
 * and are shared with gpmtrace.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

void
printResult(Bench b, PlatformKind kind, const WorkloadResult &r)
{
    if (!r.supported) {
        std::printf("%-14s %-9s unsupported\n",
                    benchName(b).c_str(), platformName(kind).c_str());
        return;
    }
    std::printf("%-14s %-9s %10.3f ms  %8.2f Mops/s  "
                "%8.2f MiB persisted  %7.2f MiB PM traffic  %s\n",
                benchName(b).c_str(), platformName(kind).c_str(),
                toMs(r.op_ns), r.mops(),
                r.persisted_payload / (1024.0 * 1024.0),
                r.pcie_write_bytes / (1024.0 * 1024.0),
                r.verified ? "verified" : "VERIFY-FAILED");
}

int
usage()
{
    std::printf(
        "gpmbench — GPMbench driver (simulated GPM system)\n\n"
        "  gpmbench [--jobs N] [--media M] list\n"
        "  gpmbench [--jobs N] [--media M] run <workload> <platform> "
        "[seed]\n"
        "  gpmbench [--jobs N] [--media M] crash <workload> [seed]\n"
        "  gpmbench [--jobs N] [--media M] matrix\n\n"
        "workloads: kvs kvs95 dbi dbu dnn cfd blk hs bfs srad ps\n"
        "platforms: gpm ndp eadr capfs capmm capeadr gpufs\n"
        "--jobs N:  parallel-executor lanes (0 = hardware threads);\n"
        "           default from GPM_EXEC_WORKERS, else 1\n"
        "--media M: PM media backend (%s);\n"
        "           default from GPM_MEDIA, else nvm\n",
        mediaUsage());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg = bench::benchConfig();
    int argi = 1;
    while (argi + 1 < argc &&
           (std::strcmp(argv[argi], "--jobs") == 0 ||
            std::strcmp(argv[argi], "--media") == 0)) {
        if (std::strcmp(argv[argi], "--jobs") == 0) {
            const std::optional<int> jobs =
                parseExecWorkers(argv[argi + 1]);
            if (!jobs) {
                std::fprintf(stderr,
                             "gpmbench: invalid --jobs value '%s' "
                             "(want an integer in [0, %d])\n",
                             argv[argi + 1], kMaxExecWorkers);
                return 1;
            }
            cfg.exec_workers = *jobs;
        } else {
            const std::optional<MediaConfig> m =
                parseMediaConfig(argv[argi + 1]);
            if (!m) {
                std::fprintf(stderr,
                             "gpmbench: unknown media backend '%s' "
                             "(valid: %s)\n",
                             argv[argi + 1], mediaUsage());
                return 1;
            }
            applyMediaConfig(cfg, *m);
        }
        argi += 2;
    }
    if (argi >= argc)
        return usage();
    const std::string cmd = argv[argi];
    argv += argi - 1;  // commands keep their argv[2..] positions
    argc -= argi - 1;

    if (cmd == "list") {
        for (const BenchKey &n : benchKeys()) {
            std::printf("%-7s %-14s %s\n", n.key,
                        benchName(n.bench).c_str(),
                        benchClass(n.bench).c_str());
        }
        return 0;
    }

    if (cmd == "run") {
        if (argc < 4)
            return usage();
        const auto b = benchFromKey(argv[2]);
        const auto kind = platformFromKey(argv[3]);
        if (!b || !kind) {
            std::fprintf(stderr, "unknown workload or platform\n");
            return 1;
        }
        const std::uint64_t seed =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
        printResult(*b, *kind, runBench(*b, *kind, cfg, seed));
        return 0;
    }

    if (cmd == "crash") {
        if (argc < 3)
            return usage();
        const auto b = benchFromKey(argv[2]);
        if (!b) {
            std::fprintf(stderr, "unknown workload\n");
            return 1;
        }
        const std::uint64_t seed =
            argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
        const WorkloadResult r = runBenchWithCrash(*b, cfg, seed);
        if (r.op_ns == 0 && r.recovery_ns == 0) {
            std::printf("%s embeds its recovery in the application "
                        "itself (native persistence)\n",
                        benchName(*b).c_str());
            return 0;
        }
        std::printf("%-14s recovered=%s  restoration %.3f ms\n",
                    benchName(*b).c_str(), r.verified ? "yes" : "NO",
                    toMs(r.recovery_ns));
        return r.verified ? 0 : 1;
    }

    if (cmd == "matrix") {
        constexpr PlatformKind kMatrixPlatforms[] = {
            PlatformKind::CapFs,
            PlatformKind::CapMm,
            PlatformKind::Gpm,
            PlatformKind::Gpufs,
        };
        std::vector<BenchCell> cells;
        for (const BenchKey &n : benchKeys())
            for (const PlatformKind kind : kMatrixPlatforms)
                cells.push_back({n.bench, kind, 1});
        // For a 44-cell grid the coarse-grain lever wins: distribute
        // whole cells over --jobs workers and run each cell's blocks
        // sequentially. Results are bit-identical either way; rows
        // print in canonical cell order whatever finished first.
        SimConfig cell_cfg = cfg;
        cell_cfg.exec_workers = 1;
        const std::vector<WorkloadResult> results =
            runBenchCells(cells, cell_cfg, cfg.exec_workers);
        for (std::size_t i = 0; i < cells.size(); ++i)
            printResult(cells[i].b, cells[i].kind, results[i]);
        return 0;
    }

    return usage();
}
