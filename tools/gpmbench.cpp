/**
 * @file
 * gpmbench — command-line driver for the GPMbench suite.
 *
 * Runs any (workload, platform) cell of the evaluation matrix with
 * the canonical (paper-scaled) configuration and prints the measured
 * simulated time, throughput, persisted payload and PM traffic:
 *
 *     gpmbench [--jobs N] list
 *     gpmbench [--jobs N] run <workload> <platform> [seed]
 *     gpmbench [--jobs N] crash <workload> [seed]  # crash + recovery
 *     gpmbench [--jobs N] matrix             # the full Fig 9 grid
 *
 * Workloads: kvs kvs95 dbi dbu dnn cfd blk hs bfs srad ps
 * Platforms: gpm ndp eadr capfs capmm capeadr gpufs
 *
 * --jobs N sets SimConfig::exec_workers (0 = one per hardware
 * thread); results are bit-identical at any width, only wall-clock
 * changes. Defaults to the GPM_EXEC_WORKERS environment variable.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "harness/experiments.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

struct Named {
    const char *key;
    Bench bench;
};

constexpr Named kWorkloads[] = {
    {"kvs", Bench::Kvs},        {"kvs95", Bench::Kvs95},
    {"dbi", Bench::DbInsert},   {"dbu", Bench::DbUpdate},
    {"dnn", Bench::Dnn},        {"cfd", Bench::Cfd},
    {"blk", Bench::Blk},        {"hs", Bench::Hotspot},
    {"bfs", Bench::Bfs},        {"srad", Bench::Srad},
    {"ps", Bench::PrefixSum},
};

struct NamedPlatform {
    const char *key;
    PlatformKind kind;
};

constexpr NamedPlatform kPlatforms[] = {
    {"gpm", PlatformKind::Gpm},
    {"ndp", PlatformKind::GpmNdp},
    {"eadr", PlatformKind::GpmEadr},
    {"capfs", PlatformKind::CapFs},
    {"capmm", PlatformKind::CapMm},
    {"capeadr", PlatformKind::CapEadr},
    {"gpufs", PlatformKind::Gpufs},
};

std::optional<Bench>
parseBench(const char *s)
{
    for (const Named &n : kWorkloads) {
        if (std::strcmp(n.key, s) == 0)
            return n.bench;
    }
    return std::nullopt;
}

std::optional<PlatformKind>
parsePlatform(const char *s)
{
    for (const NamedPlatform &n : kPlatforms) {
        if (std::strcmp(n.key, s) == 0)
            return n.kind;
    }
    return std::nullopt;
}

void
printResult(Bench b, PlatformKind kind, const WorkloadResult &r)
{
    if (!r.supported) {
        std::printf("%-14s %-9s unsupported\n",
                    benchName(b).c_str(), platformName(kind).c_str());
        return;
    }
    std::printf("%-14s %-9s %10.3f ms  %8.2f Mops/s  "
                "%8.2f MiB persisted  %7.2f MiB PM traffic  %s\n",
                benchName(b).c_str(), platformName(kind).c_str(),
                toMs(r.op_ns), r.mops(),
                r.persisted_payload / (1024.0 * 1024.0),
                r.pcie_write_bytes / (1024.0 * 1024.0),
                r.verified ? "verified" : "VERIFY-FAILED");
}

int
usage()
{
    std::printf(
        "gpmbench — GPMbench driver (simulated GPM system)\n\n"
        "  gpmbench [--jobs N] list\n"
        "  gpmbench [--jobs N] run <workload> <platform> [seed]\n"
        "  gpmbench [--jobs N] crash <workload> [seed]\n"
        "  gpmbench [--jobs N] matrix\n\n"
        "workloads: kvs kvs95 dbi dbu dnn cfd blk hs bfs srad ps\n"
        "platforms: gpm ndp eadr capfs capmm capeadr gpufs\n"
        "--jobs N: parallel-executor lanes (0 = hardware threads);\n"
        "          default from GPM_EXEC_WORKERS, else 1\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg = bench::benchConfig();
    int argi = 1;
    while (argi + 1 < argc && std::strcmp(argv[argi], "--jobs") == 0) {
        cfg.exec_workers =
            static_cast<int>(std::strtol(argv[argi + 1], nullptr, 10));
        argi += 2;
    }
    if (argi >= argc)
        return usage();
    const std::string cmd = argv[argi];
    argv += argi - 1;  // commands keep their argv[2..] positions
    argc -= argi - 1;

    if (cmd == "list") {
        for (const Named &n : kWorkloads) {
            std::printf("%-7s %-14s %s\n", n.key,
                        benchName(n.bench).c_str(),
                        benchClass(n.bench).c_str());
        }
        return 0;
    }

    if (cmd == "run") {
        if (argc < 4)
            return usage();
        const auto b = parseBench(argv[2]);
        const auto kind = parsePlatform(argv[3]);
        if (!b || !kind) {
            std::fprintf(stderr, "unknown workload or platform\n");
            return 1;
        }
        const std::uint64_t seed =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
        printResult(*b, *kind, runBench(*b, *kind, cfg, seed));
        return 0;
    }

    if (cmd == "crash") {
        if (argc < 3)
            return usage();
        const auto b = parseBench(argv[2]);
        if (!b) {
            std::fprintf(stderr, "unknown workload\n");
            return 1;
        }
        const std::uint64_t seed =
            argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
        const WorkloadResult r = runBenchWithCrash(*b, cfg, seed);
        if (r.op_ns == 0 && r.recovery_ns == 0) {
            std::printf("%s embeds its recovery in the application "
                        "itself (native persistence)\n",
                        benchName(*b).c_str());
            return 0;
        }
        std::printf("%-14s recovered=%s  restoration %.3f ms\n",
                    benchName(*b).c_str(), r.verified ? "yes" : "NO",
                    toMs(r.recovery_ns));
        return r.verified ? 0 : 1;
    }

    if (cmd == "matrix") {
        for (const Named &n : kWorkloads) {
            for (const NamedPlatform &p :
                 {NamedPlatform{"capfs", PlatformKind::CapFs},
                  NamedPlatform{"capmm", PlatformKind::CapMm},
                  NamedPlatform{"gpm", PlatformKind::Gpm},
                  NamedPlatform{"gpufs", PlatformKind::Gpufs}}) {
                printResult(n.bench, p.kind,
                            runBench(n.bench, p.kind, cfg));
            }
        }
        return 0;
    }

    return usage();
}
