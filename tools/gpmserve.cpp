/**
 * @file
 * gpmserve — drive the deterministic KVS serving engine (src/service)
 * and write BENCH_serve.json.
 *
 *     gpmserve [--seed N] [--jobs N] [--exec-workers N]
 *              [--out BENCH_serve.json]
 *
 * Four stages, all on virtual time:
 *
 *  1. amortization — sweep the dynamic batcher's batch_max over
 *     {32, 128, 512, 2048, 8192} under one fixed closed-loop offered
 *     load. The paper's launch+persist amortization argument must show
 *     up as monotone throughput growth, >= 5x from smallest to
 *     largest batch (asserted).
 *  2. load-latency — sweep offered load (client think time) against
 *     shard counts; each cell reports virtual-time p50/p99/p999
 *     request-to-ack latency and throughput, the data behind a
 *     classic throughput-vs-tail-latency serving curve.
 *  3. determinism — run one fixed config at widths 1/2/4/8 for both
 *     --jobs (batch-flush sweep lanes) and --exec-workers (in-kernel
 *     executor) and assert the full report signature and the ack-
 *     stream signature are bit-identical across all widths.
 *  4. crash — arm a mid-traffic power failure, then assert the crash
 *     fired, recovery ran on every shard, and zero acknowledged
 *     writes were lost.
 *
 * The JSON artifact is the uniform gpm-metrics-v1 envelope with the
 * stage tables spliced in, and is schema-validated after writing.
 * Every stage result folds into one bench signature (printed and in
 * the JSON) that is invariant under --jobs / --exec-workers, so CI
 * pins it once and compares across widths.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"
#include "crashtest/crash_scheduler.hpp"
#include "memsim/media_backend.hpp"
#include "service/serve_engine.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

using namespace gpm;

namespace {

struct Options {
    std::uint64_t seed = 42;
    int jobs = 4;
    int exec_workers = 2;
    MediaConfig media{};
    std::string out_path = "BENCH_serve.json";
};

int
usage()
{
    std::printf(
        "gpmserve — KVS serving engine benchmark (BENCH_serve.json)\n\n"
        "  gpmserve [--seed N] [--jobs N] [--exec-workers N]\n"
        "           [--media M] [--out FILE]\n\n"
        "--jobs N:         sweep lanes for parallel batch flushes\n"
        "--exec-workers N: in-kernel parallel executor width\n"
        "--media M:        PM media backend (%s)\n"
        "stages: amortization (batch_max sweep, >=5x asserted),\n"
        "        load-latency (think x shards grid, p50/p99/p999),\n"
        "        determinism (widths 1/2/4/8 bit-identical),\n"
        "        crash (mid-traffic power failure, zero acked loss),\n"
        "        variable-size (GpmHeap values 16 -> 4096 B, oracle-\n"
        "        checked acks, width-pinned, crash + heap recovery)\n",
        mediaUsage());
    return 2;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Bit image of a double for order-stable signature folding. */
std::uint64_t
bitsOf(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** One amortization-stage row. */
struct AmortRow {
    std::uint32_t batch_max = 0;
    ServeReport rep;
};

/** One load-latency-stage row. */
struct LoadRow {
    std::uint32_t shards = 0;
    SimNs think_ns = 0;
    ServeReport rep;
};

/** One variable-size-stage row. */
struct VarRow {
    std::uint32_t value_bytes = 0;
    ServeReport rep;
};

/** Stage 1: fixed offered load, batch_max sweep. */
std::vector<AmortRow>
runAmortization(const Options &opt)
{
    telemetry::Span span("serve", "stage_amortization");
    std::vector<AmortRow> rows;
    for (const std::uint32_t bmax : {32u, 128u, 512u, 2048u, 8192u}) {
        ServeConfig sc;
        // One pipeline: the batch-size axis needs full batches at
        // 8192, and a closed-loop population split across shards
        // drains a single shard's queue below that after each ack
        // wave. Shard scaling is the load-latency stage's axis.
        sc.shards = 1;
        sc.n_sets = 1u << 17;
        sc.clients = 65536;
        sc.requests = 131072;
        sc.batch_max = bmax;
        sc.batch_deadline_ns = 1e6;  // size-dominated closes
        sc.queue_depth = 65536;
        sc.think_ns = 1000;
        // Read-mostly serving mix (the MegaKV regime): GETs are
        // HBM-served and write no PM, so this stage isolates what
        // batching actually amortizes — the per-launch driver +
        // persist overhead — instead of saturating the random NVM
        // write tier (whose WPQ-absorbed head would otherwise favor
        // mid-size batches over large ones).
        sc.get_ratio = 1.0;
        sc.del_ratio = 0.0;
        // Uniform keys over a wide space: the batch-size axis, not
        // same-set conflict deferral, is what this stage measures.
        sc.dist = KeyDistKind::Uniform;
        sc.key_space = 1u << 20;
        sc.seed = opt.seed;
        sc.jobs = opt.jobs;
        sc.exec_workers = opt.exec_workers;
        sc.media = opt.media;
        rows.push_back({bmax, ServiceEngine(sc).run()});
        const ServeReport &r = rows.back().rep;
        std::printf("gpmserve: batch_max=%-5u %8.3f Mops  "
                    "mean batch %7.1f  p99 %9.0f ns  "
                    "(%llu size / %llu deadline closes)\n",
                    bmax, r.throughput_mops, r.batch_size.mean(),
                    r.latency.p99(),
                    static_cast<unsigned long long>(r.size_closes),
                    static_cast<unsigned long long>(r.deadline_closes));
        GPM_REQUIRE(r.oracle_failures == 0,
                    "amortization stage: oracle failures at batch_max ",
                    bmax);
    }
    // The acceptance gate: monotone amortization, >= 5x end to end.
    // Monotonicity tolerates a 2 % dip at saturation: on media fast
    // enough that batching stops being the bottleneck (interleaved:8,
    // cxl), the curve plateaus and the largest batch can sit a hair
    // under the knee without refuting the amortization argument.
    for (std::size_t i = 1; i < rows.size(); ++i)
        GPM_REQUIRE(rows[i].rep.throughput_mops >=
                        0.98 * rows[i - 1].rep.throughput_mops,
                    "throughput not monotone in batch_max: ",
                    rows[i].batch_max, " ops/batch is slower than ",
                    rows[i - 1].batch_max);
    GPM_REQUIRE(rows.back().rep.throughput_mops >=
                    5.0 * rows.front().rep.throughput_mops,
                "batch amortization below 5x: ",
                rows.front().rep.throughput_mops, " -> ",
                rows.back().rep.throughput_mops, " Mops");
    return rows;
}

/** Stage 2: offered-load (think time) x shard-count grid. */
std::vector<LoadRow>
runLoadLatency(const Options &opt)
{
    telemetry::Span span("serve", "stage_load_latency");
    std::vector<LoadRow> rows;
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
        for (const double think : {0.0, 50000.0, 200000.0, 800000.0}) {
            ServeConfig sc;
            sc.shards = shards;
            sc.n_sets = 1u << 13;
            sc.clients = 2048;
            sc.requests = 16384;
            sc.batch_max = 256;
            sc.batch_deadline_ns = 20000;
            sc.queue_depth = 4096;
            sc.think_ns = think;
            // Uniform keys: a zipfian mix pins the whole grid to the
            // hot key's one-op-per-batch serialization (the set-dedup
            // contract), which flattens both axes. Skew effects are
            // the zipfian stages' and tests' subject, not this grid's.
            sc.dist = KeyDistKind::Uniform;
            sc.key_space = 1u << 18;
            sc.seed = opt.seed;
            sc.jobs = opt.jobs;
            sc.exec_workers = opt.exec_workers;
            sc.media = opt.media;
            rows.push_back({shards, think, ServiceEngine(sc).run()});
            GPM_REQUIRE(rows.back().rep.oracle_failures == 0,
                        "load-latency stage: oracle failures at ",
                        shards, " shards, think ", think);
        }
    }
    return rows;
}

/** Stage 3: widths 1/2/4/8 must be bit-identical. */
ServeReport
runDeterminism(const Options &opt, bool *ok)
{
    telemetry::Span span("serve", "stage_determinism");
    ServeReport base;
    *ok = true;
    const int widths[] = {1, 2, 4, 8};
    for (std::size_t i = 0; i < 4; ++i) {
        ServeConfig sc;
        sc.shards = 2;
        sc.n_sets = 1u << 12;
        sc.clients = 512;
        sc.requests = 8192;
        sc.batch_max = 256;
        sc.batch_deadline_ns = 20000;
        sc.queue_depth = 1024;
        sc.think_ns = 2000;
        sc.dist = KeyDistKind::Zipfian;
        sc.key_space = 1u << 16;
        sc.seed = opt.seed;
        sc.jobs = widths[i];
        sc.exec_workers = widths[i];
        sc.media = opt.media;
        const ServeReport r = ServiceEngine(sc).run();
        if (i == 0) {
            base = r;
            continue;
        }
        GPM_REQUIRE(r.ack_signature == base.ack_signature,
                    "ack stream diverged at width ", widths[i], ": ",
                    hex64(r.ack_signature), " != ",
                    hex64(base.ack_signature));
        GPM_REQUIRE(r.signature() == base.signature(),
                    "report signature diverged at width ", widths[i],
                    ": ", hex64(r.signature()), " != ",
                    hex64(base.signature()));
    }
    GPM_REQUIRE(base.oracle_failures == 0,
                "determinism stage: oracle failures");
    return base;
}

/**
 * Stage 5: variable-size values (GpmHeap-backed). One fixed traffic
 * shape, value size swept 16 -> 4096 bytes; every ack is checked
 * against the payload-hash oracle. The amortization claim extends to
 * payload bytes: a 256x payload growth must not cost anywhere near
 * 256x in op throughput (staging rides the same batched launches), so
 * the end-to-end slowdown is asserted under 32x. The 256 B row is
 * re-run at widths 1 and 8 to pin the ack stream across jobs x
 * exec-workers, and a mid-traffic power failure with mixed sizes must
 * lose no acknowledged write through GpmHeap::recover().
 */
std::vector<VarRow>
runVariableSize(const Options &opt, ServeReport *crash_out)
{
    telemetry::Span span("serve", "stage_variable_size");
    std::vector<VarRow> rows;
    for (const std::uint32_t vb : {16u, 64u, 256u, 1024u, 4096u}) {
        ServeConfig sc;
        sc.shards = 2;
        sc.n_sets = 1u << 12;
        sc.clients = 512;
        sc.requests = 8192;
        sc.batch_max = 256;
        sc.batch_deadline_ns = 20000;
        sc.queue_depth = 1024;
        sc.think_ns = 2000;
        sc.get_ratio = 0.5;
        sc.del_ratio = 0.05;
        sc.dist = KeyDistKind::Zipfian;
        sc.key_space = 1u << 16;
        sc.seed = opt.seed;
        sc.jobs = opt.jobs;
        sc.exec_workers = opt.exec_workers;
        sc.media = opt.media;
        sc.value_bytes_min = vb;
        sc.value_bytes_max = vb;
        rows.push_back({vb, ServiceEngine(sc).run()});
        const ServeReport &r = rows.back().rep;
        std::printf("gpmserve: value_bytes=%-5u %8.3f Mops  "
                    "%9.1f MB/s payload  p99 %9.0f ns\n",
                    vb, r.throughput_mops,
                    r.throughput_mops * vb, r.latency.p99());
        GPM_REQUIRE(r.oracle_failures == 0,
                    "variable-size stage: oracle failures at ", vb,
                    " B values");
        if (vb == 256) {
            // Width determinism for the heap-backed path.
            for (const int w : {1, 8}) {
                ServeConfig wc = sc;
                wc.jobs = w;
                wc.exec_workers = w;
                const ServeReport wr = ServiceEngine(wc).run();
                GPM_REQUIRE(wr.ack_signature == r.ack_signature &&
                                wr.signature() == r.signature(),
                            "variable-size ack stream diverged at "
                            "width ", w);
            }
        }
    }
    GPM_REQUIRE(rows.back().rep.throughput_mops * 32.0 >=
                    rows.front().rep.throughput_mops,
                "variable-size amortization broke down: 256x payload "
                "cost more than 32x throughput (",
                rows.front().rep.throughput_mops, " -> ",
                rows.back().rep.throughput_mops, " Mops)");

    // Mixed-size mid-traffic power failure: GpmHeap::recover() must
    // reconcile every shard with zero acknowledged-write loss.
    ServeConfig cc;
    cc.shards = 2;
    cc.n_sets = 1u << 9;
    cc.clients = 512;
    cc.requests = 4096;
    cc.batch_max = 64;
    cc.batch_deadline_ns = 1e6;
    cc.queue_depth = 256;
    cc.think_ns = 0.0;
    cc.get_ratio = 0.3;
    cc.del_ratio = 0.1;
    cc.key_space = 1u << 12;
    cc.seed = opt.seed;
    cc.jobs = opt.jobs;
    cc.exec_workers = opt.exec_workers;
    cc.media = opt.media;
    cc.value_bytes_min = 16;
    cc.value_bytes_max = 4096;
    cc.crash_at_launch = 6;
    CrashSpec spec;
    spec.kind = CrashSpec::Kind::Fraction;
    spec.fraction = 0.6;
    cc.crash_point = spec.materialize(std::uint64_t(cc.batch_max) *
                                      GpKvsParams::kGroup);
    cc.survive_prob = 0.5;
    *crash_out = ServiceEngine(cc).run();
    GPM_REQUIRE(crash_out->crash_fired,
                "variable-size crash: armed point never fired");
    GPM_REQUIRE(crash_out->recovery_ran,
                "variable-size crash: recovery never ran");
    GPM_REQUIRE(crash_out->durable_ok,
                "variable-size crash: acknowledged writes were lost");
    GPM_REQUIRE(crash_out->oracle_failures == 0,
                "variable-size crash: oracle failures");
    return rows;
}

/** Stage 4: mid-traffic power failure, zero acked-write loss. */
ServeReport
runCrashSmoke(const Options &opt)
{
    telemetry::Span span("serve", "stage_crash");
    ServeConfig sc;
    sc.shards = 2;
    sc.n_sets = 1u << 9;
    sc.clients = 512;
    sc.requests = 4096;
    sc.batch_max = 64;
    sc.batch_deadline_ns = 1e6;
    sc.queue_depth = 256;
    sc.think_ns = 0.0;
    sc.get_ratio = 0.3;
    sc.del_ratio = 0.1;
    sc.key_space = 1u << 12;
    sc.seed = opt.seed;
    sc.jobs = opt.jobs;
    sc.exec_workers = opt.exec_workers;
    sc.media = opt.media;
    sc.crash_at_launch = 6;
    CrashSpec spec;
    spec.kind = CrashSpec::Kind::Fraction;
    spec.fraction = 0.6;
    sc.crash_point = spec.materialize(std::uint64_t(sc.batch_max) *
                                      GpKvsParams::kGroup);
    sc.survive_prob = 0.5;
    const ServeReport r = ServiceEngine(sc).run();
    GPM_REQUIRE(r.crash_fired, "crash stage: armed point never fired");
    GPM_REQUIRE(r.recovery_ran, "crash stage: recovery never ran");
    GPM_REQUIRE(r.durable_ok,
                "crash stage: acknowledged writes were lost");
    GPM_REQUIRE(r.oracle_failures == 0, "crash stage: oracle failures");
    return r;
}

void
writeReportFields(telemetry::JsonWriter &w, const ServeReport &r)
{
    w.field("ops_issued", r.ops_issued);
    w.field("ops_acked", r.ops_acked);
    w.field("batches", r.batches);
    w.field("size_closes", r.size_closes);
    w.field("deadline_closes", r.deadline_closes);
    w.field("deferred_conflicts", r.deferred_conflicts);
    w.field("blocked_admissions", r.blocked_admissions);
    w.field("oracle_failures", r.oracle_failures);
    w.field("makespan_ns", r.makespan_ns);
    w.field("throughput_mops", r.throughput_mops);
    w.field("mean_batch_size", r.batch_size.mean());
    w.field("latency_p50_ns", r.latency.p50());
    w.field("latency_p90_ns", r.latency.p90());
    w.field("latency_p99_ns", r.latency.p99());
    w.field("latency_p999_ns", r.latency.p999());
    w.field("latency_mean_ns", r.latency.mean());
    w.field("latency_max_ns", r.latency.max);
    w.field("ack_signature", hex64(r.ack_signature));
}

bool
writeBench(const Options &opt, const std::vector<AmortRow> &amort,
           const std::vector<LoadRow> &load, const ServeReport &det,
           bool det_ok, const ServeReport &crash,
           const std::vector<VarRow> &var, const ServeReport &var_crash,
           std::uint64_t bench_sig, const telemetry::Session &session,
           std::string *error)
{
    {
        std::ofstream os(opt.out_path);
        if (!os) {
            *error = "cannot open " + opt.out_path;
            return false;
        }
        telemetry::JsonWriter w(os);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "gpmserve");
        w.field("seed", opt.seed);
        w.field("jobs", opt.jobs);
        w.field("exec_workers", opt.exec_workers);
        w.field("media", mediaKey(opt.media));
        w.field("bench_signature", hex64(bench_sig));

        w.key("amortization");
        w.beginArray();
        for (const AmortRow &row : amort) {
            w.beginObject();
            w.field("batch_max", row.batch_max);
            writeReportFields(w, row.rep);
            w.endObject();
        }
        w.endArray();
        w.field("amortization_gain",
                amort.front().rep.throughput_mops > 0
                    ? amort.back().rep.throughput_mops /
                          amort.front().rep.throughput_mops
                    : 0.0);

        w.key("load_latency");
        w.beginArray();
        for (const LoadRow &row : load) {
            w.beginObject();
            w.field("shards", row.shards);
            w.field("think_ns", row.think_ns);
            writeReportFields(w, row.rep);
            w.endObject();
        }
        w.endArray();

        w.key("determinism");
        w.beginObject();
        w.field("widths", "1,2,4,8");
        w.field("ok", det_ok);
        w.field("signature", hex64(det.signature()));
        writeReportFields(w, det);
        w.endObject();

        w.key("crash");
        w.beginObject();
        w.field("fired", crash.crash_fired);
        w.field("recovery_ran", crash.recovery_ran);
        w.field("durable_ok", crash.durable_ok);
        w.field("oracle_failures", crash.oracle_failures);
        w.field("state_hash", hex64(crash.state_hash));
        w.field("pool_crashes", crash.pool_crashes);
        w.field("crash_sub_extents", crash.crash_sub_extents);
        w.field("crash_survivors", crash.crash_survivors);
        w.endObject();

        w.key("variable_size");
        w.beginArray();
        for (const VarRow &row : var) {
            w.beginObject();
            w.field("value_bytes", row.value_bytes);
            w.field("payload_mbps",
                    row.rep.throughput_mops * row.value_bytes);
            writeReportFields(w, row.rep);
            w.endObject();
        }
        w.endArray();
        w.field("variable_size_slowdown",
                var.back().rep.throughput_mops > 0
                    ? var.front().rep.throughput_mops /
                          var.back().rep.throughput_mops
                    : 0.0);
        w.key("variable_size_crash");
        w.beginObject();
        w.field("fired", var_crash.crash_fired);
        w.field("recovery_ran", var_crash.recovery_ran);
        w.field("durable_ok", var_crash.durable_ok);
        w.field("oracle_failures", var_crash.oracle_failures);
        w.field("state_hash", hex64(var_crash.state_hash));
        w.endObject();

        session.metrics.snapshot().writeFields(w);
        w.endObject();
    }
    return telemetry::validateJsonFile(
        opt.out_path,
        {"schema", "tool", "amortization", "load_latency",
         "determinism", "crash", "variable_size", "counters",
         "histograms"},
        error);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gpmserve: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed") {
            opt.seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (a == "--jobs") {
            opt.jobs =
                static_cast<int>(std::strtol(next("--jobs"), nullptr, 10));
        } else if (a == "--exec-workers") {
            const char *v = next("--exec-workers");
            const auto ew = parseExecWorkers(v);
            if (!ew) {
                std::fprintf(stderr,
                             "gpmserve: invalid --exec-workers '%s'\n",
                             v);
                return 2;
            }
            opt.exec_workers = *ew;
        } else if (a == "--media") {
            const char *v = next("--media");
            const std::optional<MediaConfig> m = parseMediaConfig(v);
            if (!m) {
                std::fprintf(stderr,
                             "gpmserve: unknown media backend '%s' "
                             "(valid: %s)\n",
                             v, mediaUsage());
                return 2;
            }
            opt.media = *m;
        } else if (a == "--out") {
            opt.out_path = next("--out");
        } else {
            std::fprintf(stderr, "gpmserve: unknown argument '%s'\n",
                         a.c_str());
            return usage();
        }
    }
    if (opt.jobs < 1)
        opt.jobs = 1;
    if (opt.exec_workers < 1)
        opt.exec_workers = 1;

    try {
        telemetry::ScopedSession session;

        const std::vector<AmortRow> amort = runAmortization(opt);
        std::printf("gpmserve: amortization %.3f -> %.3f Mops "
                    "(%.1fx over batch 32 -> 8192)\n",
                    amort.front().rep.throughput_mops,
                    amort.back().rep.throughput_mops,
                    amort.back().rep.throughput_mops /
                        amort.front().rep.throughput_mops);

        const std::vector<LoadRow> load = runLoadLatency(opt);
        for (const LoadRow &row : load)
            std::printf("gpmserve: shards=%u think=%-7.0f "
                        "%8.3f Mops  p50 %8.0f  p99 %8.0f  "
                        "p999 %8.0f ns\n",
                        row.shards, row.think_ns,
                        row.rep.throughput_mops, row.rep.latency.p50(),
                        row.rep.latency.p99(), row.rep.latency.p999());

        bool det_ok = false;
        const ServeReport det = runDeterminism(opt, &det_ok);
        std::printf("gpmserve: determinism widths 1/2/4/8 ok, "
                    "ack-signature %s\n",
                    hex64(det.ack_signature).c_str());

        const ServeReport crash = runCrashSmoke(opt);
        std::printf("gpmserve: crash fired=%d recovered=%d "
                    "durable_ok=%d\n",
                    crash.crash_fired, crash.recovery_ran,
                    crash.durable_ok);

        ServeReport var_crash;
        const std::vector<VarRow> var =
            runVariableSize(opt, &var_crash);
        std::printf("gpmserve: variable-size 16 B -> 4096 B slowdown "
                    "%.1fx, crash fired=%d recovered=%d "
                    "durable_ok=%d\n",
                    var.front().rep.throughput_mops /
                        var.back().rep.throughput_mops,
                    var_crash.crash_fired, var_crash.recovery_ran,
                    var_crash.durable_ok);

        // One order-stable fingerprint over every stage: identical at
        // any --jobs x --exec-workers width, so CI pins it once.
        std::uint64_t sig = kFnvOffset;
        for (const AmortRow &row : amort) {
            sig = fnv1aU64(row.batch_max, sig);
            sig = fnv1aU64(row.rep.signature(), sig);
        }
        for (const LoadRow &row : load) {
            sig = fnv1aU64(row.shards, sig);
            sig = fnv1aU64(bitsOf(row.think_ns), sig);
            sig = fnv1aU64(row.rep.signature(), sig);
        }
        sig = fnv1aU64(det.signature(), sig);
        sig = fnv1aU64(crash.signature(), sig);
        for (const VarRow &row : var) {
            sig = fnv1aU64(row.value_bytes, sig);
            sig = fnv1aU64(row.rep.signature(), sig);
        }
        sig = fnv1aU64(var_crash.signature(), sig);
        std::printf("gpmserve: bench-signature %s\n",
                    hex64(sig).c_str());

        std::string error;
        if (!writeBench(opt, amort, load, det, det_ok, crash, var,
                        var_crash, sig, *session, &error)) {
            std::fprintf(stderr,
                         "gpmserve: artifact validation failed: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("gpmserve: wrote %s\n", opt.out_path.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpmserve: FAILED: %s\n", e.what());
        return 1;
    }
}
