/**
 * @file
 * gpmtrace — run any GPMbench workload under a telemetry session and
 * write a Chrome-trace timeline plus a metrics snapshot.
 *
 *     gpmtrace --workload kvs [--platform gpm] [--seed N] [--jobs N]
 *              [--trace trace.json] [--metrics metrics.json]
 *              [--summary [N]] [--no-crash]
 *     gpmtrace list
 *
 * The run executes the canonical (workload, platform) cell cleanly,
 * then — unless --no-crash, and only for workloads with an explicit
 * recovery path — a crash + recovery pass, so the timeline carries
 * every span category: launch, block, flush, line-commit, log,
 * checkpoint, crash, recovery, scenario. trace.json loads directly in
 * Perfetto (ui.perfetto.dev) or chrome://tracing; metrics.json is the
 * uniform gpm-metrics-v1 envelope (see docs/telemetry.md).
 *
 * Both artifacts are re-validated after writing (strict JSON parse +
 * required-key probe) and the accounting identity
 * pm_line_bytes == pm_line_txns * coalesce granule is asserted, so a
 * malformed or inconsistent artifact fails the run that produced it.
 *
 * --summary prints the top-N hottest kernels by traced wall time, the
 * observed NVM tier-byte breakdown, coalescing efficiency, and
 * per-worker busy time.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "memsim/media_backend.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

using namespace gpm;
using namespace gpm::bench;

namespace {

struct Options {
    std::optional<Bench> workload;
    PlatformKind platform = PlatformKind::Gpm;
    std::uint64_t seed = 1;
    std::string trace_path = "trace.json";
    std::string metrics_path = "metrics.json";
    bool summary = false;
    int summary_top = 10;
    bool crash_pass = true;
};

int
usage()
{
    std::printf(
        "gpmtrace — timeline + metrics for one workload run\n\n"
        "  gpmtrace --workload W [--platform P] [--seed N] [--jobs N]\n"
        "           [--media M] [--trace FILE] [--metrics FILE]\n"
        "           [--summary [N]] [--no-crash]\n"
        "  gpmtrace list\n\n"
        "workloads: kvs kvs95 dbi dbu dnn cfd blk hs bfs srad ps\n"
        "platforms: gpm ndp eadr capfs capmm capeadr gpufs\n"
        "media:     %s\n"
        "--jobs N:   parallel-executor lanes (0 = hardware threads)\n"
        "--no-crash: skip the crash + recovery pass\n"
        "--summary:  print top-N hottest kernels, NVM tier bytes,\n"
        "            coalescing efficiency and worker utilization\n",
        mediaUsage());
    return 2;
}

/** Aggregate of one kernel's "launch" spans. */
struct KernelAgg {
    std::uint64_t launches = 0;
    double wall_us = 0.0;
};

void
printSummary(const Options &opt, const telemetry::Session &session,
             const SimConfig &cfg)
{
    const telemetry::MetricsSnapshot snap = session.metrics.snapshot();
    const std::vector<telemetry::TraceEvent> events =
        session.trace.collect();

    // Hottest kernels by traced wall time.
    std::map<std::string, KernelAgg> kernels;
    std::map<std::uint32_t, double> busy_us;  // tid -> block-span time
    double wall_end_us = 0.0;
    for (const telemetry::TraceEvent &ev : events) {
        wall_end_us = std::max(wall_end_us, ev.ts_us + ev.dur_us);
        if (std::strcmp(ev.cat, "launch") == 0) {
            KernelAgg &k = kernels[ev.name];
            ++k.launches;
            k.wall_us += ev.dur_us;
        } else if (std::strcmp(ev.cat, "block") == 0) {
            busy_us[ev.tid] += ev.dur_us;
        }
    }
    std::vector<std::pair<std::string, KernelAgg>> hot(kernels.begin(),
                                                       kernels.end());
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.second.wall_us > b.second.wall_us;
    });

    std::printf("== gpmtrace summary: %s on %s (seed %llu, jobs %d) ==\n",
                benchName(*opt.workload).c_str(),
                platformName(opt.platform).c_str(),
                static_cast<unsigned long long>(opt.seed),
                cfg.exec_workers);

    std::printf("\nhottest kernels (traced host wall time):\n");
    const int top = std::min<int>(opt.summary_top,
                                  static_cast<int>(hot.size()));
    for (int i = 0; i < top; ++i) {
        std::printf("  %-24s %6llu launches  %10.1f us\n",
                    hot[i].first.c_str(),
                    static_cast<unsigned long long>(
                        hot[i].second.launches),
                    hot[i].second.wall_us);
    }

    const std::uint64_t seq_a = snap.counter("nvm.observed_seq_aligned_bytes");
    const std::uint64_t seq_u =
        snap.counter("nvm.observed_seq_unaligned_bytes");
    const std::uint64_t rnd = snap.counter("nvm.observed_random_bytes");
    const std::uint64_t total = seq_a + seq_u + rnd;
    std::printf("\nNVM tier bytes (observed by the media model):\n");
    std::printf("  seq-aligned   %12llu (%5.1f%%)\n",
                static_cast<unsigned long long>(seq_a),
                total ? 100.0 * seq_a / total : 0.0);
    std::printf("  seq-unaligned %12llu (%5.1f%%)\n",
                static_cast<unsigned long long>(seq_u),
                total ? 100.0 * seq_u / total : 0.0);
    std::printf("  random        %12llu (%5.1f%%)\n",
                static_cast<unsigned long long>(rnd),
                total ? 100.0 * rnd / total : 0.0);
    const std::uint64_t read_bytes =
        snap.counter("nvm.observed_read_bytes");
    const std::uint64_t read_ops = snap.counter("nvm.observed_read_ops");
    std::printf("  reads         %12llu bytes in %llu ops\n",
                static_cast<unsigned long long>(read_bytes),
                static_cast<unsigned long long>(read_ops));

    std::printf("\nmedia backend: %s\n", mediaKey(cfg.media).c_str());
    for (const auto &[name, v] : snap.counters) {
        if (name.rfind("media.", 0) == 0)
            std::printf("  %-28s %12llu\n", name.c_str() + 6,
                        static_cast<unsigned long long>(v));
    }

    const std::uint64_t payload = snap.counter("sim.pm_payload_bytes");
    const std::uint64_t line_bytes = snap.counter("sim.pm_line_bytes");
    const std::uint64_t accesses = snap.counter("exec.flushed_accesses");
    const std::uint64_t txns = snap.counter("exec.coalesced_line_txns");
    std::printf("\ncoalescing efficiency:\n");
    std::printf("  %llu stores -> %llu line txns (%.2f stores/txn)\n",
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(txns),
                txns ? static_cast<double>(accesses) / txns : 0.0);
    std::printf("  %llu payload bytes over %llu line bytes "
                "(%.1f%% of line traffic is payload)\n",
                static_cast<unsigned long long>(payload),
                static_cast<unsigned long long>(line_bytes),
                line_bytes ? 100.0 * payload / line_bytes : 0.0);

    std::printf("\nworker utilization (block-span busy time over %.1f us "
                "traced):\n",
                wall_end_us);
    for (const auto &[tid, us] : busy_us) {
        std::printf("  worker %-3u %10.1f us busy (%5.1f%%)\n", tid, us,
                    wall_end_us > 0 ? 100.0 * us / wall_end_us : 0.0);
    }

    // Tail percentiles of every recorded distribution — the same
    // log2-bin estimator gpmserve's latency accounting uses.
    if (!snap.histograms.empty()) {
        std::printf("\nhistogram percentiles (log2-bin estimates):\n");
        std::printf("  %-32s %8s %10s %10s %10s %10s\n", "name",
                    "count", "mean", "p50", "p99", "p999");
        for (const auto &[name, h] : snap.histograms) {
            std::printf("  %-32s %8llu %10.1f %10.1f %10.1f %10.1f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h.count),
                        h.mean(), h.p50(), h.p99(), h.p999());
        }
    }
}

bool
writeTrace(const std::string &path, const telemetry::Session &session,
           std::string *error)
{
    {
        std::ofstream os(path);
        if (!os) {
            *error = "cannot open " + path;
            return false;
        }
        telemetry::JsonWriter w(os);
        session.trace.writeJson(w);
    }
    return telemetry::validateJsonFile(path, {"traceEvents"}, error);
}

bool
writeMetrics(const std::string &path, const Options &opt,
             const SimConfig &cfg, const telemetry::Session &session,
             bool identities_ok, std::string *error)
{
    const telemetry::MetricsSnapshot snap = session.metrics.snapshot();
    {
        std::ofstream os(path);
        if (!os) {
            *error = "cannot open " + path;
            return false;
        }
        telemetry::JsonWriter w(os);
        w.beginObject();
        w.field("schema", "gpm-metrics-v1");
        w.field("tool", "gpmtrace");
        w.field("workload", benchKey(*opt.workload));
        w.field("platform", platformKey(opt.platform));
        w.field("seed", opt.seed);
        w.field("jobs", cfg.exec_workers);
        w.field("media", mediaKey(cfg.media));
        w.field("identities_ok", identities_ok);
        snap.writeFields(w);
        w.endObject();
    }
    return telemetry::validateJsonFile(
        path, {"schema", "tool", "counters", "gauges", "histograms"},
        error);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    SimConfig cfg = bench::benchConfig();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gpmtrace: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "list") {
            for (const BenchKey &n : benchKeys()) {
                std::printf("%-7s %-14s %s\n", n.key,
                            benchName(n.bench).c_str(),
                            benchClass(n.bench).c_str());
            }
            return 0;
        } else if (a == "--workload") {
            const char *v = next("--workload");
            opt.workload = benchFromKey(v);
            if (!opt.workload) {
                std::fprintf(stderr, "gpmtrace: unknown workload '%s'\n",
                             v);
                return 2;
            }
        } else if (a == "--platform") {
            const char *v = next("--platform");
            const auto kind = platformFromKey(v);
            if (!kind) {
                std::fprintf(stderr, "gpmtrace: unknown platform '%s'\n",
                             v);
                return 2;
            }
            opt.platform = *kind;
        } else if (a == "--seed") {
            opt.seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (a == "--jobs") {
            const char *v = next("--jobs");
            const std::optional<int> jobs = parseExecWorkers(v);
            if (!jobs) {
                std::fprintf(stderr,
                             "gpmtrace: invalid --jobs value '%s' "
                             "(want an integer in [0, %d])\n",
                             v, kMaxExecWorkers);
                return 2;
            }
            cfg.exec_workers = *jobs;
        } else if (a == "--media") {
            const char *v = next("--media");
            const std::optional<MediaConfig> m = parseMediaConfig(v);
            if (!m) {
                std::fprintf(stderr,
                             "gpmtrace: unknown media backend '%s' "
                             "(valid: %s)\n",
                             v, mediaUsage());
                return 2;
            }
            applyMediaConfig(cfg, *m);
        } else if (a == "--trace") {
            opt.trace_path = next("--trace");
        } else if (a == "--metrics") {
            opt.metrics_path = next("--metrics");
        } else if (a == "--summary") {
            opt.summary = true;
            if (i + 1 < argc && argv[i + 1][0] != '-' &&
                std::strtol(argv[i + 1], nullptr, 10) > 0)
                opt.summary_top =
                    static_cast<int>(std::strtol(argv[++i], nullptr, 10));
        } else if (a == "--no-crash") {
            opt.crash_pass = false;
        } else {
            std::fprintf(stderr, "gpmtrace: unknown argument '%s'\n",
                         a.c_str());
            return usage();
        }
    }
    if (!opt.workload)
        return usage();

    telemetry::ScopedSession session;

    WorkloadResult clean;
    {
        telemetry::Span span("scenario", "clean-run");
        clean = runBench(*opt.workload, opt.platform, cfg, opt.seed);
    }
    if (!clean.supported) {
        std::fprintf(stderr, "gpmtrace: %s is unsupported on %s\n",
                     benchName(*opt.workload).c_str(),
                     platformName(opt.platform).c_str());
        return 1;
    }

    bool recovered_ok = true;
    if (opt.crash_pass) {
        // Crash + recovery pass: puts crash and recovery spans on the
        // timeline. Workloads with native persistence report (0, 0)
        // and are skipped, exactly as in gpmbench's crash command.
        telemetry::Span span("scenario", "crash-recovery");
        const WorkloadResult r =
            runBenchWithCrash(*opt.workload, cfg, opt.seed);
        if (r.op_ns != 0 || r.recovery_ns != 0)
            recovered_ok = r.verified;
    }

    // Accounting identity: every coalesced line transaction moves
    // exactly one coalesce granule. Holds across clean and crashed
    // passes because launch counters only record completed launches.
    const telemetry::MetricsSnapshot snap =
        session->metrics.snapshot();
    const bool identities_ok =
        snap.counter("sim.pm_line_bytes") ==
        snap.counter("sim.pm_line_txns") * cfg.coalesce_bytes;

    std::string error;
    if (!writeTrace(opt.trace_path, *session, &error)) {
        std::fprintf(stderr, "gpmtrace: trace validation failed: %s\n",
                     error.c_str());
        return 1;
    }
    if (!writeMetrics(opt.metrics_path, opt, cfg, *session,
                      identities_ok, &error)) {
        std::fprintf(stderr, "gpmtrace: metrics validation failed: %s\n",
                     error.c_str());
        return 1;
    }

    std::printf("gpmtrace: %s on %s: %.3f ms simulated, %s\n",
                benchName(*opt.workload).c_str(),
                platformName(opt.platform).c_str(), toMs(clean.op_ns),
                clean.verified ? "verified" : "VERIFY-FAILED");
    std::printf("gpmtrace: wrote %s (%zu events) and %s\n",
                opt.trace_path.c_str(), session->trace.eventCount(),
                opt.metrics_path.c_str());
    if (!identities_ok)
        std::fprintf(stderr,
                     "gpmtrace: ACCOUNTING IDENTITY FAILED: "
                     "pm_line_bytes != pm_line_txns * %zu\n",
                     cfg.coalesce_bytes);
    if (!recovered_ok)
        std::fprintf(stderr, "gpmtrace: crash pass failed to recover\n");

    if (opt.summary)
        printSummary(opt, *session, cfg);

    return (clean.verified && identities_ok && recovered_ok) ? 0 : 1;
}
