/**
 * @file
 * gpmcheck — the persistency-ordering analyzer CLI.
 *
 * Runs every workload x persist-domain cell once, clean, under an
 * attached event recorder, then proves (or refutes) the declared
 * persist-ordering rules over the captured trace — no crash-point
 * enumeration. Findings can be confirmed dynamically: each carries a
 * minimal CrashSpec witness that --witness replays through the
 * torture machinery.
 *
 *     gpmcheck [flags]
 *
 *     --workloads kvs,db-insert,...   default: all registered
 *     --domains   llc-volatile,mc-durable,llc-durable
 *     --severity  info|warn|error     report + exit floor (default warn)
 *     --witness                       replay finding witnesses
 *     --corpus                        sweep the seeded-bug corpus
 *                                     instead of the real workloads
 *     --jobs      N                   sweep workers (0 = hw threads;
 *                                     default GPM_EXEC_WORKERS, else 1)
 *     --exec-workers N                in-scenario executor width
 *                                     (default 1; 0 = hw threads)
 *     --seed      N                   trace-capture seed (default 1)
 *     --tsv                           tab-separated findings table
 *     --summary-only                  omit the findings table
 *     --list                         print workloads + rule catalog
 *
 * Exit status: 0 = no findings at/above the severity floor, 1 =
 * findings (or a cell error), 2 = usage error.
 *
 * The cells sweep through the harness engine into canonical slots, so
 * the findings, summary, and signature are bit-identical at any
 * --jobs.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/check_runner.hpp"
#include "common/env.hpp"
#include "common/status.hpp"
#include "persistency_bugs/corpus.hpp"

using namespace gpm;

namespace {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
splitList(const char *flag, const std::string &s)
{
    std::vector<std::string> out = splitCommas(s);
    GPM_REQUIRE(!out.empty(), flag, ": empty list");
    return out;
}

void
usage()
{
    std::printf(
        "usage: gpmcheck [--workloads w,...] [--domains d,...]\n"
        "                [--severity info|warn|error] [--witness]\n"
        "                [--corpus] [--jobs n] [--exec-workers n]\n"
        "                [--seed n] [--tsv] [--summary-only] [--list]\n");
}

void
list()
{
    std::printf("workloads:");
    for (const std::string &w : registeredInvariants())
        std::printf(" %s", w.c_str());
    std::printf("\ncorpus:");
    for (const std::string &w : registeredBugs())
        std::printf(" %s", w.c_str());
    std::printf("\ndomains: llc-volatile mc-durable llc-durable\n");
    std::printf(
        "rules:\n"
        "  unpersisted-store  stores in a declared range that never\n"
        "                     became durable\n"
        "  epoch-order        a declared persist-order rule violated\n"
        "                     (out-of-order, same-epoch seal, or\n"
        "                     commit-before-data)\n"
        "  torn-update        one atomic cell persisting across epochs\n"
        "  redundant-fence    fences that drained nothing (perf lint)\n"
        "  redundant-flush    flushes that drained nothing (perf lint)\n"
        "  crash-unreachable  declared ranges no armed launch stores\n"
        "                     to (dead torture coverage)\n"
        "witness grammar: frac:<f> before-fence:<n> after-fence:<n> "
        "after-store:<n>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    CheckConfig cfg;
    cfg.jobs = execWorkersFromEnv(cfg.jobs);
    Severity floor = Severity::Warn;
    bool corpus = false;
    bool tsv = false;
    bool summary_only = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    usage();
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--workloads") {
                cfg.workloads = splitList("--workloads", value());
            } else if (arg == "--domains") {
                for (const std::string &d :
                     splitList("--domains", value()))
                    cfg.domains.push_back(parsePersistDomain(d));
            } else if (arg == "--severity") {
                floor = parseSeverity(value());
            } else if (arg == "--witness") {
                cfg.confirm_witnesses = true;
            } else if (arg == "--corpus") {
                corpus = true;
            } else if (arg == "--jobs") {
                const std::string v = value();
                const std::optional<int> jobs = parseExecWorkers(v);
                GPM_REQUIRE(jobs.has_value(),
                            "--jobs: want an integer in [0, ",
                            kMaxExecWorkers, "], got '", v, "'");
                cfg.jobs = *jobs;
            } else if (arg == "--exec-workers") {
                const std::string v = value();
                const std::optional<int> w = parseExecWorkers(v);
                GPM_REQUIRE(w.has_value(),
                            "--exec-workers: want an integer in [0, ",
                            kMaxExecWorkers, "], got '", v, "'");
                cfg.exec_workers = *w;
            } else if (arg == "--seed") {
                cfg.seed = std::strtoull(value().c_str(), nullptr, 10);
            } else if (arg == "--tsv") {
                tsv = true;
            } else if (arg == "--summary-only") {
                summary_only = true;
            } else if (arg == "--list") {
                list();
                return 0;
            } else {
                usage();
                return 2;
            }
        }

        if (corpus) {
            cfg.factory = makeBugInvariant;
            if (cfg.workloads.empty())
                cfg.workloads = registeredBugs();
        }
        cfg.confirm_floor = floor;

        // Validate names before the sweep starts.
        for (const std::string &w : cfg.workloads)
            (corpus ? makeBugInvariant : makeInvariant)(w);

        CheckConfig counted = cfg;
        counted.applyDefaults();
        std::printf("analyzing %zu workload x domain cells "
                    "(--jobs %d%s)...\n",
                    counted.workloads.size() * counted.domains.size(),
                    cfg.jobs,
                    cfg.confirm_witnesses ? ", witness replay on" : "");

        const auto t0 = std::chrono::steady_clock::now();
        const CheckReport report = runCheck(cfg);
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        if (!summary_only) {
            Table t = report.table(floor);
            if (t.rows() != 0) {
                if (tsv)
                    t.printTsv(std::cout);
                else
                    t.print(std::cout);
                std::printf("\n");
            }
        }
        report.summary().print(std::cout);

        std::size_t errors = 0;
        for (const CheckCell &c : report.cells)
            if (!c.error.empty())
                ++errors;
        const std::size_t flagged = report.findingsAtLeast(floor);
        std::printf("\ncells: %zu  findings>=%s: %zu  confirmed: %zu"
                    "  cell-errors: %zu\n",
                    report.cells.size(), severityName(floor), flagged,
                    report.confirmed(), errors);
        std::printf("signature: %016llx\n",
                    static_cast<unsigned long long>(
                        report.signature()));
        std::printf("check wall: %.3f s  (%zu cells, --jobs %d)\n",
                    wall_s, report.cells.size(), cfg.jobs);

        for (const CheckCell &c : report.cells)
            if (!c.error.empty())
                std::printf("CELL ERROR %s: %s\n",
                            c.scenario.key().c_str(), c.error.c_str());
        return (flagged != 0 || errors != 0) ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpmcheck: %s\n", e.what());
        return 2;
    }
}
