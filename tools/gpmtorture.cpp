/**
 * @file
 * gpmtorture — the crash-matrix torture CLI.
 *
 * Sweeps recovery invariants across crash points x eviction seeds x
 * persist domains and prints the scenario x outcome table, the per
 * workload x domain summary, and the determinism signature. Exits
 * nonzero when any scenario is classified as a violation.
 *
 *     gpmtorture [flags]
 *
 *     --workloads kvs,db-insert,...   default: all registered
 *     --domains   llc-volatile,mc-durable,llc-durable
 *     --points    frac:0.5,before-fence:1,after-fence:2,after-store:3
 *     --seeds     1,2,3               eviction seeds
 *     --survive   0.0,0.5             line-survival probabilities
 *     --jobs      N                   sweep workers (0 = hw threads;
 *                                     default GPM_EXEC_WORKERS, else 1)
 *     --exec-workers N                in-scenario executor width
 *                                     (default 1; 0 = hw threads)
 *     --scale                         CrashGrid::fine() + 12 seeds:
 *                                     the 10k+ scenario grid
 *     --tsv                           tab-separated full table
 *     --summary-only                  omit the full table
 *     --list                          print workloads + grammar
 *
 * Every scenario is a private Machine + PmPool world and the sweep
 * engine lands results in canonical slots, so the report — table
 * order, counts, signature — is bit-identical at any --jobs; only the
 * printed sweep wall-clock changes. --exec-workers parallelizes block
 * execution *inside* each scenario (crash-armed launches included,
 * DESIGN.md decision #8) and is equally signature-invariant, so the
 * two knobs compose into a pure wall-clock trade.
 *
 * Crash-point grammar: frac:<f in [0,1]> | before-fence:<n> |
 * after-fence:<n> | after-store:<n> (event ordinals are 1-based and
 * global to the doomed kernel launch).
 */
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/status.hpp"
#include "crashtest/torture_runner.hpp"
#include "memsim/media_backend.hpp"

using namespace gpm;

namespace {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/**
 * Split a list-valued flag, rejecting an empty value: an empty list
 * would silently fall back to the flag's default axis (for --seeds,
 * the full 1200-scenario sweep), which is never what a caller who
 * passed the flag meant.
 */
std::vector<std::string>
splitList(const char *flag, const std::string &s)
{
    std::vector<std::string> out = splitCommas(s);
    GPM_REQUIRE(!out.empty(), flag, ": empty list");
    return out;
}

void
usage()
{
    std::printf(
        "usage: gpmtorture [--workloads w,...] [--domains d,...]\n"
        "                  [--points p,...] [--seeds s,...]\n"
        "                  [--survive f,...] [--jobs n]\n"
        "                  [--exec-workers n] [--media m] [--scale]\n"
        "                  [--tsv] [--summary-only] [--list]\n");
}

void
list()
{
    std::printf("workloads:");
    for (const std::string &w : registeredInvariants())
        std::printf(" %s", w.c_str());
    std::printf("\nextended workloads (opt-in via --workloads):");
    for (const std::string &w : extendedInvariants())
        std::printf(" %s", w.c_str());
    std::printf("\n");
    std::printf("domains: llc-volatile mc-durable llc-durable\n");
    std::printf("media backends: %s\n", mediaUsage());
    std::printf("crash points: frac:<f> before-fence:<n> "
                "after-fence:<n> after-store:<n>\n");
    std::printf("default grid:");
    for (const CrashSpec &s :
         CrashScheduler::enumerate(CrashGrid::defaults()))
        std::printf(" %s", s.label().c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    TortureConfig cfg;
    cfg.jobs = execWorkersFromEnv(cfg.jobs);
    bool tsv = false;
    bool summary_only = false;
    bool scale = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    usage();
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--workloads") {
                cfg.workloads = splitList("--workloads", value());
            } else if (arg == "--domains") {
                for (const std::string &d :
                     splitList("--domains", value()))
                    cfg.domains.push_back(parsePersistDomain(d));
            } else if (arg == "--points") {
                for (const std::string &p :
                     splitList("--points", value()))
                    cfg.specs.push_back(CrashScheduler::parse(p));
            } else if (arg == "--seeds") {
                for (const std::string &s :
                     splitList("--seeds", value()))
                    cfg.seeds.push_back(std::strtoull(s.c_str(),
                                                      nullptr, 10));
            } else if (arg == "--survive") {
                for (const std::string &s :
                     splitList("--survive", value()))
                    cfg.survive_probs.push_back(
                        std::strtod(s.c_str(), nullptr));
            } else if (arg == "--jobs") {
                const std::string v = value();
                const std::optional<int> jobs = parseExecWorkers(v);
                GPM_REQUIRE(jobs.has_value(),
                            "--jobs: want an integer in [0, ",
                            kMaxExecWorkers, "], got '", v, "'");
                cfg.jobs = *jobs;
            } else if (arg == "--exec-workers") {
                const std::string v = value();
                const std::optional<int> w = parseExecWorkers(v);
                GPM_REQUIRE(w.has_value(),
                            "--exec-workers: want an integer in [0, ",
                            kMaxExecWorkers, "], got '", v, "'");
                cfg.exec_workers = *w;
            } else if (arg == "--media") {
                const std::string v = value();
                const std::optional<MediaConfig> m =
                    parseMediaConfig(v);
                if (!m)
                    fatal("unknown media backend '", v, "' (valid: ",
                          mediaUsage(), ")");
                cfg.media = *m;
            } else if (arg == "--scale") {
                scale = true;
            } else if (arg == "--tsv") {
                tsv = true;
            } else if (arg == "--summary-only") {
                summary_only = true;
            } else if (arg == "--list") {
                list();
                return 0;
            } else {
                usage();
                return 2;
            }
        }

        // --scale widens the spec and seed axes to the 10k+ grid
        // unless the caller pinned them explicitly.
        if (scale) {
            if (cfg.specs.empty())
                cfg.specs =
                    CrashScheduler::enumerate(CrashGrid::fine());
            if (cfg.seeds.empty())
                for (std::uint64_t s = 1; s <= 12; ++s)
                    cfg.seeds.push_back(s);
        }

        // Validate workload names before the sweep starts.
        for (const std::string &w : cfg.workloads)
            makeInvariant(w);

        TortureConfig counted = cfg;
        counted.applyDefaults();
        std::printf("sweeping %zu crash scenarios (--jobs %d, "
                    "--exec-workers %d, --media %s)...\n",
                    counted.scenarioCount(), cfg.jobs,
                    cfg.exec_workers, mediaKey(cfg.media).c_str());

        const auto t0 = std::chrono::steady_clock::now();
        const TortureReport report = TortureRunner::run(cfg);
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (!summary_only) {
            if (tsv)
                report.table().printTsv(std::cout);
            else
                report.table().print(std::cout);
            std::printf("\n");
        }
        report.summary().print(std::cout);
        const std::array<std::size_t, 4> counts =
            report.classCounts();
        std::printf("\nscenarios: %zu  strict-ok: %zu  ddio-trap: %zu"
                    "  not-fired: %zu  violations: %zu\n",
                    report.results.size(),
                    counts[static_cast<int>(OutcomeClass::StrictOk)],
                    counts[static_cast<int>(OutcomeClass::DdioTrap)],
                    counts[static_cast<int>(OutcomeClass::NotFired)],
                    counts[static_cast<int>(OutcomeClass::Violation)]);
        std::printf("signature: %016llx\n",
                    static_cast<unsigned long long>(
                        report.signature()));
        std::printf("sweep wall: %.3f s  (%zu scenarios, --jobs %d, "
                    "%.0f scenarios/s)\n",
                    wall_s, report.results.size(), cfg.jobs,
                    wall_s > 0 ? report.results.size() / wall_s : 0.0);

        if (counts[static_cast<int>(OutcomeClass::Violation)] != 0) {
            for (const TortureResult &r : report.results) {
                if (r.cls == OutcomeClass::Violation)
                    std::printf("VIOLATION %s: %s\n", r.key().c_str(),
                                r.detail.c_str());
            }
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gpmtorture: %s\n", e.what());
        return 2;
    }
}
