/**
 * @file
 * Native persistence: BFS that resumes instead of restarting.
 *
 * Traverses a road-network-like graph while persisting costs and the
 * frontier in-kernel, crashes part-way, and resumes from the durable
 * frontier — the recovery logic is embedded in the traversal itself
 * (section 5.4), no separate recovery kernel required.
 */
#include <cstdio>

#include "workloads/bfs.hpp"

using namespace gpm;

int
main()
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 5);

    BfsParams params;
    params.grid_w = 32;
    params.grid_h = 256;
    params.shortcuts = 8;

    GpBfs bfs(m, params);
    std::printf("traversing %u-node graph, crashing at ~60%% of the "
                "levels...\n", params.nodes());
    const WorkloadResult r =
        bfs.runWithCrash(/*progress_frac=*/0.6, /*survive_prob=*/0.3);

    std::printf("resumed and finished: %s\n",
                r.verified ? "costs match reference BFS" : "MISMATCH");
    std::printf("levels re-executed after the crash: %.0f\n",
                r.ops_done);
    std::printf("durable cost of the far corner: %u hops\n",
                bfs.durableCost(params.nodes() - 1));
    return 0;
}
