/**
 * @file
 * Fault-tolerant DNN training with libGPM checkpointing (Figure 7).
 *
 * Trains the MLP while checkpointing weights+biases every 5 passes,
 * kills the machine mid-training (during a checkpoint, even), then
 * reopens the checkpoint, restores, resumes, and shows the loss curve
 * picking up where the last consistent checkpoint left off.
 */
#include <cstdio>

#include "workloads/dnn.hpp"

using namespace gpm;

int
main()
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 7);

    DnnApp app{DnnParams{}};
    app.init();
    GpmCheckpoint cp = GpmCheckpoint::create(m, "weights.cp",
                                             app.stateBytes(), 8, 1);
    app.registerState(cp);

    std::printf("training with a checkpoint every 5 passes...\n");
    for (std::uint32_t iter = 0; iter < 12; ++iter) {
        app.computeIteration(m, iter);
        std::printf("  iter %2u  loss %.4f\n", iter, app.lastLoss());
        if ((iter + 1) % 5 == 0) {
            cp.checkpoint(0);
            std::printf("  -- checkpoint #%u written\n",
                        cp.sequence(0));
        }
    }

    std::printf("power failure during the next checkpoint!\n");
    app.computeIteration(m, 12);
    cp.armCrashNextCheckpoint(0.5);
    try {
        cp.checkpoint(0);
    } catch (const KernelCrashed &) {
    }
    m.pool().crash(/*survive_prob=*/0.4);

    // Reboot: reopen, re-register in the same order, restore.
    GpmCheckpoint reopened = GpmCheckpoint::open(m, "weights.cp");
    app.init();  // volatile state is gone
    app.registerState(reopened);
    reopened.restore(0);
    const std::uint32_t resume = reopened.sequence(0) * 5;
    std::printf("restored checkpoint #%u -> resuming at iter %u\n",
                reopened.sequence(0), resume);

    for (std::uint32_t iter = resume; iter < 20; ++iter) {
        app.computeIteration(m, iter);
        std::printf("  iter %2u  loss %.4f\n", iter, app.lastLoss());
        if ((iter + 1) % 5 == 0)
            reopened.checkpoint(0);
    }
    std::printf("final training-set accuracy: %.1f %%\n",
                100.0 * app.accuracy());
    return 0;
}
