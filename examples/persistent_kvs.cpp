/**
 * @file
 * A recoverable GPU key-value store, end to end.
 *
 * Runs batched SETs on the PM-resident gpKVS with HCL undo logging,
 * injects a power failure in the middle of a batch, recovers with the
 * Figure 6(b) kernel, and verifies transactional semantics: committed
 * batches survive, the torn batch is rolled back completely. Finally
 * the durable PM image is saved to a file and reloaded, demonstrating
 * recovery across process lifetimes.
 */
#include <cstdio>

#include "workloads/kvs.hpp"

using namespace gpm;

int
main()
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, /*seed=*/2024);

    GpKvsParams params;
    params.n_sets = 1u << 14;
    params.batch_ops = 8192;
    params.batches = 4;

    GpKvs kvs(m, params);
    std::printf("crashing half-way through batch 2 of %u...\n",
                params.batches);
    const WorkloadResult r =
        kvs.runWithCrash(/*crash_batch=*/2, /*frac=*/0.5,
                         /*survive_prob=*/0.35);

    std::printf("recovered: %s\n", r.verified ? "yes" : "NO");
    std::printf("recovery kernel time: %.1f us (vs %.1f us for the "
                "committed batches)\n",
                toUs(r.recovery_ns), toUs(r.op_ns));

    // Committed data is still there.
    std::vector<KvPair> mirror(std::uint64_t(params.n_sets) *
                               GpKvsParams::kWays);
    kvs.applyBatchReference(mirror, 0);
    kvs.applyBatchReference(mirror, 1);
    std::uint64_t checked = 0, value = 0;
    for (const KvPair &pair : mirror) {
        if (pair.key == 0)
            continue;
        if (!kvs.lookup(pair.key, value) || value != pair.value) {
            std::printf("LOST committed key!\n");
            return 1;
        }
        if (++checked == 1000)
            break;
    }
    std::printf("spot-checked %llu committed keys: all present\n",
                static_cast<unsigned long long>(checked));

    // Persist the image to a real file and reload it — the cross-
    // process recovery story.
    m.pool().saveDurable("/tmp/gpm_kvs.img");
    PmPool reloaded = PmPool::loadDurable("/tmp/gpm_kvs.img",
                                          PersistDomain::McDurable);
    const PmRegion store = reloaded.region("gpkvs.data");
    std::printf("reloaded pool: region 'gpkvs.data' at offset %llu, "
                "%llu bytes\n",
                static_cast<unsigned long long>(store.offset),
                static_cast<unsigned long long>(store.size));
    return 0;
}
