/**
 * @file
 * Quickstart: the core GPM flow in ~60 lines of application code.
 *
 *  1. Build a Machine modelling the GPM platform (GPU + Optane + PCIe).
 *  2. gpm_map a PM region into the GPU's address space.
 *  3. Open a persistence window (gpm_persist_begin disables DDIO).
 *  4. Run a kernel that stores results to PM and persists them with
 *     gpm_persist (the system-scope fence).
 *  5. Power-fail the machine and observe that persisted data survived
 *     — and that the same flow WITHOUT the persistence window (the
 *     DDIO trap) loses everything.
 */
#include <cstdio>

#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "platform/machine.hpp"

using namespace gpm;

namespace {

/** Store thread-id squares to PM; persist when @p persist is true. */
std::uint64_t
runSquares(Machine &m, bool persist_in_kernel)
{
    const PmRegion out = gpmMap(m, "squares", 1024 * 8, true);

    if (persist_in_kernel)
        gpmPersistBegin(m);  // DDIO off: fences now reach the media

    KernelDesc k;
    k.name = "squares";
    k.blocks = 4;
    k.block_threads = 256;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        ctx.pmStore(out.offset + i * 8, i * i);
        const bool durable = gpmPersist(ctx);
        (void)durable;  // false when DDIO is still on!
    });
    m.runKernel(k);

    if (persist_in_kernel)
        gpmPersistEnd(m);
    return out.offset;
}

} // namespace

int
main()
{
    SimConfig cfg;

    std::printf("== GPM: the correct flow ==\n");
    {
        Machine m(cfg, PlatformKind::Gpm, 16_MiB);
        const std::uint64_t base = runSquares(m, true);
        m.pool().crash();  // power failure
        std::printf("after crash, squares[42] = %llu (expected %d)\n",
                    static_cast<unsigned long long>(
                        m.pool().loadDurable<std::uint64_t>(base +
                                                            42 * 8)),
                    42 * 42);
        std::printf("simulated kernel time: %.1f us\n",
                    toUs(m.now()));
    }

    std::printf("\n== The DDIO trap: same kernel, no persistence "
                "window ==\n");
    {
        Machine m(cfg, PlatformKind::Gpm, 16_MiB);
        const std::uint64_t base = runSquares(m, false);
        m.pool().crash();
        std::printf("after crash, squares[42] = %llu (the fence only "
                    "reached the volatile LLC)\n",
                    static_cast<unsigned long long>(
                        m.pool().loadDurable<std::uint64_t>(base +
                                                            42 * 8)));
    }
    return 0;
}
