/**
 * @file
 * Cross-module integration tests:
 *
 *  - recovery during recovery (§5.2: "To ensure recoverability during
 *    recovery itself, the log entry is only removed after successfully
 *    updating and persisting" — so a crash mid-recovery must leave a
 *    state from which recovery still succeeds);
 *  - repeated crashes across consecutive batches;
 *  - functional equivalence of every platform's final state;
 *  - durable-image save/load across "process" lifetimes;
 *  - the harness runBench smoke over every (workload, platform) cell.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"

namespace gpm {
namespace {

GpKvsParams
kvsP()
{
    GpKvsParams p;
    p.n_sets = 1u << 10;
    p.batch_ops = 1024;
    p.batches = 3;
    return p;
}

/**
 * A hand-rolled transactional counter array used to exercise crash-
 * during-recovery: kernel adds 1 to every slot under undo logging;
 * recovery restores logged values. We crash the *recovery kernel*
 * itself, then recover again — the final state must be the pre-
 * transaction one.
 */
TEST(Integration, RecoveryIsItselfRecoverable)
{
    SimConfig cfg;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        Machine m(cfg, PlatformKind::Gpm, 32_MiB, seed);
        gpmPersistBegin(m);
        const std::uint32_t n = 1024;
        const PmRegion data = m.pool().map("counters", n * 8, true);

        // Committed baseline: slot i = i (persisted).
        std::vector<std::uint64_t> init(n);
        for (std::uint32_t i = 0; i < n; ++i)
            init[i] = i;
        m.cpuWritePersist(data.offset, init.data(), n * 8, 1);

        GpmLog log = GpmLog::createHcl(m, "counters.log", 8, 2, 4,
                                       256);

        // The doomed transaction: log old value, add 1000, persist —
        // crash part-way.
        KernelDesc txn;
        txn.name = "txn";
        txn.blocks = 4;
        txn.block_threads = 256;
        txn.crash = CrashPoint{300 + seed * 97};
        txn.phases.push_back([&](ThreadCtx &ctx) {
            const std::uint64_t old =
                ctx.pmLoad<std::uint64_t>(data.offset +
                                          ctx.globalId() * 8);
            log.insert(ctx, &old, 8);
            ctx.pmStore(data.offset + ctx.globalId() * 8, old + 1000);
            gpmPersist(ctx);
        });
        EXPECT_THROW(m.runKernel(txn), KernelCrashed);
        m.pool().crash(0.4);

        // First recovery attempt: undo... and crash AGAIN mid-way.
        auto make_recovery = [&](std::uint64_t crash_at) {
            KernelDesc rec;
            rec.name = "recover";
            rec.blocks = 4;
            rec.block_threads = 256;
            if (crash_at)
                rec.crash = CrashPoint{crash_at};
            rec.phases.push_back([&](ThreadCtx &ctx) {
                std::uint64_t old;
                if (!log.read(ctx, &old, 8))
                    return;
                ctx.pmStore(data.offset + ctx.globalId() * 8, old);
                gpmPersist(ctx);
                log.remove(ctx, 8);  // only after the undo is durable
            });
            return rec;
        };
        EXPECT_THROW(m.runKernel(make_recovery(150 + seed * 31)),
                     KernelCrashed);
        m.pool().crash(0.6);

        // Second recovery attempt runs to completion.
        m.runKernel(make_recovery(0));

        // Every slot is back to its committed value.
        for (std::uint32_t i = 0; i < n; ++i) {
            ASSERT_EQ(m.pool().loadDurable<std::uint64_t>(
                          data.offset + i * 8), i)
                << "slot " << i << " seed " << seed;
        }
    }
}

TEST(Integration, ConsecutiveCrashesAcrossBatches)
{
    SimConfig cfg;
    // Crash in batch 1, recover, then the workload continues and we
    // crash again in the NEXT run's batch — state stays consistent.
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 9);
    GpKvs kvs(m, kvsP());
    const WorkloadResult first = kvs.runWithCrash(1, 0.4, 0.5);
    EXPECT_TRUE(first.verified);

    Machine m2(cfg, PlatformKind::Gpm, 64_MiB, 10);
    GpKvs kvs2(m2, kvsP());
    const WorkloadResult second = kvs2.runWithCrash(2, 0.9, 0.0);
    EXPECT_TRUE(second.verified);
}

TEST(Integration, AllPlatformsComputeTheSameKvsContents)
{
    SimConfig cfg;
    // The persistence platform must never change functional results.
    std::vector<KvPair> reference;
    for (PlatformKind kind :
         {PlatformKind::Gpm, PlatformKind::GpmNdp, PlatformKind::GpmEadr,
          PlatformKind::CapFs, PlatformKind::CapMm,
          PlatformKind::CapEadr}) {
        Machine m(cfg, kind, 64_MiB);
        GpKvs kvs(m, kvsP());
        ASSERT_TRUE(kvs.run().verified) << platformName(kind);
        std::vector<KvPair> mirror(
            std::uint64_t(kvsP().n_sets) * GpKvsParams::kWays);
        for (std::uint32_t b = 0; b < kvsP().batches; ++b)
            kvs.applyBatchReference(mirror, b);
        if (reference.empty())
            reference = mirror;
        else
            EXPECT_EQ(reference, mirror) << platformName(kind);
    }
}

TEST(Integration, DurableImageSurvivesSaveLoadWithRecoveryPending)
{
    SimConfig cfg;
    const char *path = "/tmp/gpm_integration.img";
    std::vector<KvPair> reference;
    {
        // Crash mid-batch, save the durable image WITHOUT recovering.
        Machine m(cfg, PlatformKind::Gpm, 64_MiB, 21);
        GpKvsParams p = kvsP();
        GpKvs kvs(m, p);
        reference.assign(std::uint64_t(p.n_sets) * GpKvsParams::kWays,
                         KvPair{});
        kvs.applyBatchReference(reference, 0);
        // Run one clean batch then a crashing one by driving
        // runWithCrash and saving before the in-process recovery...
        // runWithCrash recovers internally, so instead verify the
        // reloaded image matches the recovered reference.
        ASSERT_TRUE(kvs.runWithCrash(1, 0.5, 0.3).verified);
        m.pool().saveDurable(path);
    }
    PmPool pool = PmPool::loadDurable(path, PersistDomain::McDurable);
    const PmRegion store = pool.region("gpkvs.data");
    EXPECT_EQ(0, std::memcmp(pool.visible() + store.offset,
                             reference.data(),
                             reference.size() * sizeof(KvPair)));
    std::remove(path);
}

TEST(Integration, HarnessRunsEveryCellOfFigure9)
{
    // Smoke over the full (workload x platform) matrix with tiny
    // inputs is impractical; instead verify the harness contract on
    // the canonical configs for a representative subset.
    SimConfig cfg;
    for (const bench::Bench b :
         {bench::Bench::Dnn, bench::Bench::Bfs, bench::Bench::Kvs95}) {
        for (const PlatformKind kind :
             {PlatformKind::CapFs, PlatformKind::Gpm,
              PlatformKind::Gpufs}) {
            const WorkloadResult r = bench::runBench(b, kind, cfg);
            if (r.supported) {
                EXPECT_GT(r.op_ns, 0.0)
                    << bench::benchName(b) << platformName(kind);
            }
        }
    }
}

TEST(Integration, CrashRecoveryOfTable5Workloads)
{
    SimConfig cfg;
    for (const bench::Bench b :
         {bench::Bench::Kvs, bench::Bench::DbInsert,
          bench::Bench::DbUpdate, bench::Bench::Cfd}) {
        const WorkloadResult r = bench::runBenchWithCrash(b, cfg, 77);
        EXPECT_TRUE(r.verified) << bench::benchName(b);
    }
}

} // namespace
} // namespace gpm
