/**
 * @file
 * Tests for the iterative checkpointing workloads (DNN, CFD, BLK, HS):
 * functional behaviour, platform coverage, checkpoint/restore/resume
 * correctness and mid-checkpoint crash atomicity.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "workloads/blackscholes.hpp"
#include "workloads/cfd.hpp"
#include "workloads/dnn.hpp"
#include "workloads/hotspot.hpp"

namespace gpm {
namespace {

std::unique_ptr<IterativeApp>
makeApp(int which)
{
    switch (which) {
      case 0: return std::make_unique<DnnApp>(DnnParams{});
      case 1: return std::make_unique<CfdApp>(CfdParams{});
      case 2: return std::make_unique<BlackScholesApp>(BlkParams{});
      default: return std::make_unique<HotspotApp>(HotspotParams{});
    }
}

IterativeParams
schedule()
{
    IterativeParams p;
    p.iterations = 12;
    p.checkpoint_every = 4;
    return p;
}

TEST(Dnn, LossDecreasesWithTraining)
{
    DnnApp app{DnnParams{}};
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    app.init();
    app.computeIteration(m, 0);
    const double first = app.lastLoss();
    for (std::uint32_t i = 1; i < 60; ++i)
        app.computeIteration(m, i);
    EXPECT_LT(app.lastLoss(), 0.7 * first);
    EXPECT_GT(app.accuracy(), 0.5);
}

TEST(Cfd, FieldEvolvesAndStaysFinite)
{
    CfdApp app{CfdParams{}};
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    app.init();
    const double d0 = app.totalDensity();
    for (std::uint32_t i = 0; i < 10; ++i)
        app.computeIteration(m, i);
    const double d1 = app.totalDensity();
    EXPECT_TRUE(std::isfinite(d1));
    EXPECT_NE(d0, d1);  // the pocket advects
    EXPECT_NEAR(d1, d0, 0.2 * d0);  // ... without blowing up
}

TEST(BlackScholes, PutCallParityHolds)
{
    BlackScholesApp app{BlkParams{}};
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    app.init();
    app.computeIteration(m, 0);
    // C - P = S - K e^{-rT} with T = 2y, r = 2 %.
    for (std::uint32_t i = 0; i < 64; ++i) {
        const float c = app.call(i), p = app.put(i);
        EXPECT_NEAR(c, app.referenceCall(i, 0), 1e-4f);
        EXPECT_TRUE(std::isfinite(c) && std::isfinite(p));
        EXPECT_GE(c, -1e-3f);
        EXPECT_GE(p, -1e-3f);
    }
}

TEST(Hotspot, HeatsUpUnderPowerAndSaturates)
{
    HotspotApp app{HotspotParams{}};
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    app.init();
    const float t0 = app.maxTemp();
    for (std::uint32_t i = 0; i < 40; ++i)
        app.computeIteration(m, i);
    EXPECT_GT(app.maxTemp(), t0 + 10.0f);
    EXPECT_LT(app.maxTemp(), 400.0f);
}

class IterativeAllApps : public ::testing::TestWithParam<int>
{
};

TEST_P(IterativeAllApps, RunsOnEveryPlatform)
{
    for (PlatformKind kind :
         {PlatformKind::Gpm, PlatformKind::GpmNdp, PlatformKind::GpmEadr,
          PlatformKind::CapFs, PlatformKind::CapMm,
          PlatformKind::CapEadr, PlatformKind::Gpufs}) {
        auto app = makeApp(GetParam());
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        const WorkloadResult r = app->run(m, schedule());
        if (kind == PlatformKind::Gpufs && GetParam() >= 2) {
            // BLK and HS exceed GPUfs's 2 GB file limit (Fig 9 "*").
            EXPECT_FALSE(r.supported) << app->name();
            continue;
        }
        EXPECT_TRUE(r.supported) << app->name();
        EXPECT_GT(r.op_ns, 0.0) << app->name();
        EXPECT_GT(r.persisted_payload, 0u) << app->name();
    }
}

TEST_P(IterativeAllApps, CheckpointedBytesMatchState)
{
    auto app = makeApp(GetParam());
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    const IterativeParams p = schedule();
    app->run(m, p);
    // Durable consistent buffer equals the live snapshot (the last
    // checkpoint happened on the final iteration).
    GpmCheckpoint cp = GpmCheckpoint::open(m, app->name() + ".cp");
    EXPECT_EQ(cp.sequence(0), p.iterations / p.checkpoint_every);
}

TEST_P(IterativeAllApps, CrashRestoreResumesToSameState)
{
    for (const bool in_checkpoint : {false, true}) {
        auto app = makeApp(GetParam());
        SimConfig cfg;
        Machine m(cfg, PlatformKind::Gpm, 64_MiB, 99);
        const WorkloadResult r = app->runWithCrashRestore(
            m, schedule(), /*crash_iter=*/7, in_checkpoint,
            /*survive_prob=*/0.3);
        EXPECT_TRUE(r.verified)
            << app->name() << " in_checkpoint=" << in_checkpoint;
        EXPECT_GT(r.recovery_ns, 0.0);
    }
}

TEST_P(IterativeAllApps, CheckpointingFasterOnGpmThanCap)
{
    auto a = makeApp(GetParam());
    auto b = makeApp(GetParam());
    SimConfig cfg;
    Machine gpm_m(cfg, PlatformKind::Gpm, 64_MiB);
    Machine cap_m(cfg, PlatformKind::CapFs, 64_MiB);
    const WorkloadResult rg = a->run(gpm_m, schedule());
    const WorkloadResult rc = b->run(cap_m, schedule());
    EXPECT_LT(rg.op_ns, rc.op_ns) << a->name();
    // Checkpoints move identical bytes: write amplification is 1.
    EXPECT_EQ(rg.persisted_payload, rc.persisted_payload);
}

INSTANTIATE_TEST_SUITE_P(Apps, IterativeAllApps,
                         ::testing::Range(0, 4));

} // namespace
} // namespace gpm
