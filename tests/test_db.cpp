/**
 * @file
 * gpDB workload tests: INSERT/UPDATE transactions across platforms,
 * crash recovery for both transaction kinds.
 */
#include <gtest/gtest.h>

#include "workloads/db.hpp"

namespace gpm {
namespace {

GpDbParams
smallParams()
{
    GpDbParams p;
    p.initial_rows = 1u << 14;  // 16 K rows, ~1 MiB
    p.insert_rows = 2048;
    p.update_rows = 1024;
    p.insert_batches = 2;
    p.update_batches = 2;
    p.cap_chunk_bytes = 64_KiB;
    return p;
}

TEST(GpDb, GpmInsertAndUpdateVerify)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpDb db(m, smallParams());
    const WorkloadResult r = db.run();
    EXPECT_TRUE(r.supported);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.op_ns, 0.0);
}

TEST(GpDb, InsertAdvancesDurableRowCount)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpDbParams p = smallParams();
    GpDb db(m, p);
    ASSERT_TRUE(db.run(GpDb::TxnKind::Insert).verified);
    EXPECT_EQ(db.durableRowCount(),
              p.initial_rows + p.insert_batches * p.insert_rows);
}

TEST(GpDb, CapPlatformsVerify)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::CapEadr,
                              PlatformKind::GpmNdp}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpDb db(m, smallParams());
        EXPECT_TRUE(db.run().verified) << platformName(kind);
    }
}

TEST(GpDb, GpufsUnsupported)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 64_MiB);
    GpDb db(m, smallParams());
    EXPECT_FALSE(db.run().supported);
}

TEST(GpDb, UpdateWriteAmplificationShape)
{
    SimConfig cfg;
    Machine gpm_m(cfg, PlatformKind::Gpm, 64_MiB);
    Machine cap_m(cfg, PlatformKind::CapMm, 64_MiB);
    GpDbParams p = smallParams();
    GpDb a(gpm_m, p), b(cap_m, p);
    const WorkloadResult rg = a.run(GpDb::TxnKind::Update);
    const WorkloadResult rc = b.run(GpDb::TxnKind::Update);
    ASSERT_GT(rg.persisted_payload, 0u);
    // CAP persists the whole table per UPDATE batch (~Table 4's 20x).
    EXPECT_GT(rc.persisted_payload, 4 * rg.persisted_payload);
}

TEST(GpDb, InsertWriteAmplificationNearOne)
{
    SimConfig cfg;
    Machine gpm_m(cfg, PlatformKind::Gpm, 64_MiB);
    Machine cap_m(cfg, PlatformKind::CapMm, 64_MiB);
    GpDbParams p = smallParams();
    GpDb a(gpm_m, p), b(cap_m, p);
    const WorkloadResult rg = a.run(GpDb::TxnKind::Insert);
    const WorkloadResult rc = b.run(GpDb::TxnKind::Insert);
    ASSERT_GT(rg.persisted_payload, 0u);
    const double wa = static_cast<double>(rc.persisted_payload) /
                      static_cast<double>(rg.persisted_payload);
    EXPECT_LT(wa, 2.0);  // Table 4: 1.27x
}

TEST(GpDb, SelectScanMatchesHostPredicate)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpDbParams p = smallParams();
    GpDb db(m, p);
    ASSERT_TRUE(db.run(GpDb::TxnKind::Insert).verified);

    const auto [all, all_sum] = db.runSelect(1.0);
    EXPECT_EQ(all, p.initial_rows + p.insert_batches * p.insert_rows);
    EXPECT_GT(all_sum, 0u);

    const auto [none, none_sum] = db.runSelect(0.0);
    EXPECT_EQ(none, 0u);
    EXPECT_EQ(none_sum, 0u);

    const auto [half, half_sum] = db.runSelect(0.5);
    EXPECT_GT(half, all / 3);
    EXPECT_LT(half, 2 * all / 3);
    EXPECT_LT(half_sum, all_sum);
}

TEST(GpDb, SelectGeneratesNoPmTraffic)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpDb db(m, smallParams());
    ASSERT_TRUE(db.run(GpDb::TxnKind::Insert).verified);
    const std::uint64_t pcie0 = m.pcieWriteBytes();
    const SimNs t0 = m.now();
    db.runSelect(0.7);
    EXPECT_EQ(m.pcieWriteBytes(), pcie0);  // HBM-resident scan
    EXPECT_GT(m.now(), t0);                // but not free
}

class GpDbCrash
    : public ::testing::TestWithParam<std::tuple<bool, int, int>>
{
};

TEST_P(GpDbCrash, RecoversToPreBatchState)
{
    const auto [is_update, frac_step, seed] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(seed) + 1);
    GpDbParams p = smallParams();
    p.seed = 40 + static_cast<std::uint64_t>(seed);
    GpDb db(m, p);
    const double frac = 0.15 + 0.25 * frac_step;
    const double survive = (seed % 3) * 0.45;
    const WorkloadResult r = db.runWithCrash(
        is_update ? GpDb::TxnKind::Update : GpDb::TxnKind::Insert,
        /*crash_batch=*/1, frac, survive);
    EXPECT_TRUE(r.verified)
        << (is_update ? "update" : "insert") << " frac=" << frac
        << " survive=" << survive;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpDbCrash,
    ::testing::Combine(::testing::Bool(), ::testing::Range(0, 4),
                       ::testing::Range(0, 4)));

} // namespace
} // namespace gpm
