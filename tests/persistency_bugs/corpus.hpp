/**
 * @file
 * The persistency-bug corpus: deliberately broken kernel variants
 * that gpmcheck must flag, each paired with a "-fixed" twin it must
 * pass clean.
 *
 * Every corpus entry is a RecoveryInvariant, so the same machinery
 * that tortures the real workloads captures its trace (check_runner)
 * and replays its finding witnesses (confirmWitness). The corpus has
 * its own registry — it is deliberately NOT part of
 * registeredInvariants(), so the production torture signature never
 * sees these kernels.
 *
 * Seeded bugs (expected rule in parentheses):
 *
 *   drop-fence        log append bumps the tail with no fence after
 *                     the entry body: one fence seals entry + tail in
 *                     the same persist epoch       (epoch-order, tied)
 *   reorder-flip      checkpoint flips the generation sentinel in the
 *                     phase *before* the data copy (epoch-order,
 *                     commit-before-data)
 *   coalesced-tail    record tail abuts its payload, so the pool
 *                     coalesces both into one extent sealed by one
 *                     fence                        (epoch-order, tied)
 *   torn-value        a 16 B KVS value written as two 8 B stores with
 *                     a fence in between           (torn-update)
 *   double-flush      host flushes a range that is already durable
 *                                                  (redundant-flush)
 *   host-only-commit  a declared commit range no crash-armed launch
 *                     ever stores to               (crash-unreachable)
 *   late-redo         a redo-style allocator publishes its bitmap bits
 *                     before the record that justifies them —
 *                     GpmHeap's host-record-first protocol inverted
 *                                (epoch-order, commit-before-data)
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crashtest/recovery_invariant.hpp"

namespace gpm {

/** Every corpus entry name, broken variant first, then its twin. */
std::vector<std::string> registeredBugs();

/** Instantiate a corpus entry; throws FatalError on unknown names. */
std::unique_ptr<RecoveryInvariant> makeBugInvariant(
    const std::string &name);

} // namespace gpm
