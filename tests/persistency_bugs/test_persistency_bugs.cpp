/**
 * @file
 * The corpus contract: gpmcheck flags every seeded persistency bug
 * with the right rule ID — and for the durability bugs, a witness the
 * torture machinery confirms as a real VIOLATION — while each
 * "-fixed" twin analyzes clean.
 */
#include <gtest/gtest.h>

#include <string>

#include "analysis/check_runner.hpp"
#include "persistency_bugs/corpus.hpp"

namespace gpm {
namespace {

AnalysisReport
checkBug(const std::string &name, bool confirm = true)
{
    CheckConfig cfg;
    cfg.workloads = {name};
    cfg.domains = {PersistDomain::McDurable};
    cfg.factory = makeBugInvariant;
    cfg.confirm_witnesses = confirm;
    const CheckReport rep = runCheck(cfg);
    EXPECT_EQ(rep.cells.size(), 1u);
    EXPECT_EQ(rep.cells.at(0).error, "") << name;
    return rep.cells.at(0).report;
}

const Finding *
findRule(const AnalysisReport &rep, RuleId rule)
{
    for (const Finding &f : rep.findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

void
expectClean(const std::string &name, RuleId absent)
{
    const AnalysisReport rep = checkBug(name, /*confirm=*/false);
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 0u) << name;
    EXPECT_EQ(findRule(rep, absent), nullptr) << name;
}

TEST(PersistencyBugs, DropFenceSealsEntryAndTailTogether)
{
    const AnalysisReport rep = checkBug("drop-fence");
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 1u);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "bug.log.tails");
    EXPECT_NE(f->detail.find("same-epoch"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "before-fence:1");
    EXPECT_EQ(f->witness_survive, 0.5);
    EXPECT_EQ(f->witness, WitnessStatus::Confirmed);
}

TEST(PersistencyBugs, DropFenceFixedIsClean)
{
    expectClean("drop-fence-fixed", RuleId::EpochOrder);
}

TEST(PersistencyBugs, ReorderFlipCommitsBeforeItsData)
{
    const AnalysisReport rep = checkBug("reorder-flip");
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 1u);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_NE(f->detail.find("commit-before-data"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "after-fence:1");
    EXPECT_EQ(f->witness, WitnessStatus::Confirmed);
}

TEST(PersistencyBugs, ReorderFlipFixedIsClean)
{
    expectClean("reorder-flip-fixed", RuleId::EpochOrder);
}

TEST(PersistencyBugs, CoalescedTailMergesIntoOneEpoch)
{
    const AnalysisReport rep = checkBug("coalesced-tail");
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 1u);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->range, "bug.rec.tail");
    EXPECT_NE(f->detail.find("same-epoch"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "before-fence:1");
    EXPECT_EQ(f->witness, WitnessStatus::Confirmed);
}

TEST(PersistencyBugs, CoalescedTailFixedIsClean)
{
    expectClean("coalesced-tail-fixed", RuleId::EpochOrder);
}

TEST(PersistencyBugs, TornValueSplitsTheAtomicCell)
{
    const AnalysisReport rep = checkBug("torn-value");
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 1u);
    const Finding *f = findRule(rep, RuleId::TornUpdate);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "bug.slots");
    EXPECT_EQ(f->witness_spec, "after-fence:1");
    EXPECT_EQ(f->witness, WitnessStatus::Confirmed);
}

TEST(PersistencyBugs, TornValueFixedIsClean)
{
    expectClean("torn-value-fixed", RuleId::TornUpdate);
}

TEST(PersistencyBugs, DoubleFlushIsAPerfLint)
{
    const AnalysisReport rep = checkBug("double-flush");
    const Finding *f = findRule(rep, RuleId::RedundantFlush);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Warn);
    // No crash window exists — the data is already durable — so the
    // lint rightly carries no dynamic witness.
    EXPECT_EQ(f->witness_spec, "");
    EXPECT_EQ(f->witness, WitnessStatus::None);
}

TEST(PersistencyBugs, DoubleFlushFixedIsClean)
{
    expectClean("double-flush-fixed", RuleId::RedundantFlush);
}

TEST(PersistencyBugs, HostOnlyCommitIsDeadTortureCoverage)
{
    const AnalysisReport rep = checkBug("host-only-commit");
    const Finding *f = findRule(rep, RuleId::CrashUnreachable);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Info);
    EXPECT_EQ(f->range, "bug.flag");
}

TEST(PersistencyBugs, HostOnlyCommitFixedIsClean)
{
    expectClean("host-only-commit-fixed", RuleId::CrashUnreachable);
}

TEST(PersistencyBugs, LateRedoPublishesBitsBeforeTheirRecord)
{
    const AnalysisReport rep = checkBug("late-redo");
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 1u);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "bug.heap.bitmap");
    EXPECT_NE(f->detail.find("commit-before-data"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "after-fence:1");
    EXPECT_EQ(f->witness, WitnessStatus::Confirmed);
}

TEST(PersistencyBugs, LateRedoFixedIsClean)
{
    const AnalysisReport rep = checkBug("late-redo-fixed",
                                        /*confirm=*/false);
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 0u);
    EXPECT_EQ(findRule(rep, RuleId::EpochOrder), nullptr);
    // The fixed twin documents GpmHeap's design tradeoff: the host
    // owns the redo record, so no crash-armed launch ever stores to
    // it — an Info-class dead-coverage note, not a durability bug.
    const Finding *f = findRule(rep, RuleId::CrashUnreachable);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Info);
    EXPECT_EQ(f->range, "bug.heap.redo");
}

TEST(PersistencyBugs, EveryBrokenVariantFlagsAndEveryTwinPasses)
{
    for (const std::string &name : registeredBugs()) {
        const bool fixed =
            name.find("-fixed") != std::string::npos;
        const AnalysisReport rep = checkBug(name, /*confirm=*/false);
        // host-only-commit's finding is Info-class by design.
        const Severity floor = name == "host-only-commit"
                                   ? Severity::Info
                                   : Severity::Warn;
        if (fixed)
            EXPECT_EQ(rep.countAtLeast(Severity::Warn), 0u) << name;
        else
            EXPECT_GE(rep.countAtLeast(floor), 1u) << name;
    }
}

TEST(PersistencyBugs, CorpusIsUnchangedUnderParallelExecution)
{
    // Cross-check for the parallel crash-armed engine (DESIGN.md
    // decision #8): the full corpus sweep — trace capture via the
    // event recorder plus dynamic witness confirmation through the
    // crash-armed torture machinery — must produce identical findings,
    // witness statuses and the exact corpus signature at in-scenario
    // width 4 as at width 1 (the CI-pinned configuration).
    auto sweep = [](int exec_workers) {
        CheckConfig cfg;
        cfg.domains = {PersistDomain::McDurable};
        cfg.factory = makeBugInvariant;
        cfg.workloads = registeredBugs();
        cfg.confirm_witnesses = true;
        cfg.jobs = 4;
        cfg.exec_workers = exec_workers;
        return runCheck(cfg);
    };
    const CheckReport seq = sweep(1);
    const CheckReport par = sweep(4);

    EXPECT_EQ(seq.signature(), par.signature());
    EXPECT_EQ(seq.signature(), 0x4ccbff74f931bb0cull)
        << "corpus signature drifted from the CI-pinned value";
    EXPECT_EQ(seq.findingsAtLeast(Severity::Warn), 6u);
    EXPECT_EQ(par.findingsAtLeast(Severity::Warn), 6u);
    EXPECT_EQ(seq.confirmed(), 5u);
    EXPECT_EQ(par.confirmed(), 5u);

    ASSERT_EQ(seq.cells.size(), par.cells.size());
    for (std::size_t i = 0; i < seq.cells.size(); ++i) {
        const CheckCell &a = seq.cells[i];
        const CheckCell &b = par.cells[i];
        EXPECT_EQ(a.scenario.key(), b.scenario.key());
        EXPECT_EQ(a.error, b.error) << a.scenario.key();
        EXPECT_EQ(a.report.stream_hash, b.report.stream_hash)
            << a.scenario.key();
        EXPECT_EQ(a.report.findingsHash(), b.report.findingsHash())
            << a.scenario.key();
        ASSERT_EQ(a.report.findings.size(), b.report.findings.size())
            << a.scenario.key();
        for (std::size_t j = 0; j < a.report.findings.size(); ++j) {
            EXPECT_EQ(a.report.findings[j].witness,
                      b.report.findings[j].witness)
                << a.scenario.key() << " finding " << j;
        }
    }
}

} // namespace
} // namespace gpm
