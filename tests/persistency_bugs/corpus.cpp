#include "persistency_bugs/corpus.hpp"

#include <cstring>
#include <exception>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "platform/machine.hpp"
#include "pmem/pm_events.hpp"
#include "workloads/workload.hpp"

namespace gpm {

namespace {

/** Same adapter boilerplate the production invariants use. */
template <typename Body>
TortureOutcome
runBugScenario(const DomainSetup &setup, std::uint64_t seed, Body &&body)
{
    TortureOutcome o;
    try {
        SimConfig cfg;
        Machine m(cfg, setup.kind, 1_MiB, seed);
        if (setup.recorder)
            m.pool().setRecorder(setup.recorder);
        const CrashOutcome c = body(m);
        o.fired = c.fired;
        o.recovery_ran = c.recovery_ran;
        o.strict_ok = c.strict_ok;
        o.state_hash = c.state_hash;
        const PmPoolStats &st = m.pool().stats();
        o.crashes = st.crashes;
        o.crash_sub_extents = st.crash_sub_extents;
        o.crash_survivors = st.crash_survivors;
    } catch (const std::exception &e) {
        o.error = e.what();
    }
    return o;
}

/**
 * Corpus scaffold: run the doomed kernel under the domain's persist
 * window, crash the pool once, recover under a fresh window inside a
 * recorder recovery scope, and report the invariant verdict.
 */
class BugInvariant : public RecoveryInvariant
{
  public:
    explicit BugInvariant(bool fixed) : fixed_(fixed) {}

    TortureOutcome
    run(const DomainSetup &setup, const CrashPoint &point,
        std::uint64_t seed, double survive_prob) override
    {
        return runBugScenario(setup, seed, [&](Machine &m) {
            CrashOutcome o;
            const bool window = setup.open_persist_window &&
                                m.kind() == PlatformKind::Gpm;
            if (window)
                gpmPersistBegin(m);
            try {
                doomed(m, point);
            } catch (const KernelCrashed &) {
                o.fired = true;
            }
            m.pool().crash(survive_prob);
            // Reboot-time recovery always gets DDIO right, even when
            // the crashed run did not (llc-volatile cells).
            if (!window && m.kind() == PlatformKind::Gpm)
                gpmPersistBegin(m);
            {
                PmRecoveryScope rscope(m.pool().recorder());
                o.strict_ok = recover(m);
            }
            o.recovery_ran = true;
            o.state_hash = stateHash(m);
            if (m.kind() == PlatformKind::Gpm)
                gpmPersistEnd(m);
            return o;
        });
    }

  protected:
    /** Map regions, declare intent, run the armed kernel. */
    virtual void doomed(Machine &m, const CrashPoint &point) = 0;

    /** Durable-state invariant over the post-crash pool. */
    virtual bool recover(Machine &m) = 0;

    virtual std::uint64_t stateHash(Machine &m) const = 0;

    bool fixed_;
};

std::string
suffixed(const char *base, bool fixed)
{
    return fixed ? std::string(base) + "-fixed" : base;
}

// ---- drop-fence --------------------------------------------------------
// GpmLog::insert-style append, minus the fence that seals the entry
// body before the tail bump: one fence drains entry + tail together,
// so the sentinel can survive a crash its entry did not.
class DropFenceBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("drop-fence", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return kThreads; }

  protected:
    static constexpr std::uint32_t kThreads = 8;
    static constexpr std::uint64_t kEntryBytes = 512;

    static std::uint64_t
    entryWord(std::uint32_t t, std::uint64_t i)
    {
        return (std::uint64_t(t + 1) << 32) ^
               (i * 0x9e3779b97f4a7c15ull) ^ 0xbadc0ffeeull;
    }

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        entries_ = gpmMap(m, "bug.log.entries", kThreads * kEntryBytes,
                          true);
        tails_ = gpmMap(m, "bug.log.tails", kThreads * 8, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.log.entries", entries_.offset,
                              kThreads * kEntryBytes, 0,
                              PmRangeKind::Data);
            rec->declareRange("bug.log.tails", tails_.offset,
                              kThreads * 8, 0, PmRangeKind::Commit);
            rec->declareOrder("bug.log.entries", "bug.log.tails",
                              /*strict=*/true);
        }
        KernelDesc k;
        k.name = suffixed("bug_log_append", fixed_);
        k.blocks = 1;
        k.block_threads = kThreads;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            const std::uint32_t t = ctx.threadIdx();
            std::uint64_t words[kEntryBytes / 8];
            for (std::uint64_t i = 0; i < kEntryBytes / 8; ++i)
                words[i] = entryWord(t, i);
            ctx.pmWrite(entries_.offset + t * kEntryBytes, words,
                        kEntryBytes);
            if (fixed_)
                ctx.threadfenceSystem();  // seal entry before the bump
            ctx.pmStore<std::uint64_t>(tails_.offset + t * 8, 1);
            ctx.threadfenceSystem();
        });
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        bool ok = true;
        for (std::uint32_t t = 0; t < kThreads; ++t) {
            if (m.pool().loadDurable<std::uint64_t>(
                    tails_.offset + t * 8) != 1)
                continue;  // never claimed: nothing to check
            for (std::uint64_t i = 0; i < kEntryBytes / 8; ++i)
                if (m.pool().loadDurable<std::uint64_t>(
                        entries_.offset + t * kEntryBytes + i * 8) !=
                    entryWord(t, i))
                    ok = false;
        }
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        std::uint64_t h = fnv1a(m.pool().durable() + entries_.offset,
                                kThreads * kEntryBytes);
        return fnv1a(m.pool().durable() + tails_.offset, kThreads * 8,
                     h);
    }

    PmRegion entries_, tails_;
};

// ---- reorder-flip ------------------------------------------------------
// Checkpoint whose generation flip runs in the phase *before* the
// data copy: the sentinel is durable while the data it claims is not
// even written yet.
class ReorderFlipBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("reorder-flip", fixed_);
    }

    std::uint64_t
    doomedThreadPhases() const override
    {
        return 2ull * kThreads;
    }

  protected:
    static constexpr std::uint32_t kThreads = 4;
    static constexpr std::uint64_t kSliceWords = 32;  // 256 B / thread

    static std::uint64_t
    imageWord(std::uint64_t gen, std::uint64_t w)
    {
        return (gen + 1) * 0x100000001b3ull ^ (w << 7) ^ w;
    }

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        const std::uint64_t bytes = kThreads * kSliceWords * 8;
        data_ = gpmMap(m, "bug.ckpt.data", bytes, true);
        meta_ = gpmMap(m, "bug.ckpt.meta", 8, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.ckpt.data", data_.offset, bytes, 8,
                              PmRangeKind::Data);
            rec->declareRange("bug.ckpt.meta", meta_.offset, 8, 8,
                              PmRangeKind::Commit);
            rec->declareOrder("bug.ckpt.data", "bug.ckpt.meta",
                              /*strict=*/true);
        }
        // Generation 0 image + sentinel, durably in place.
        std::vector<std::uint64_t> img(kThreads * kSliceWords);
        for (std::uint64_t w = 0; w < img.size(); ++w)
            img[w] = imageWord(0, w);
        m.cpuWritePersist(data_.offset, img.data(), bytes, 1);
        const std::uint64_t zero = 0;
        m.cpuWritePersist(meta_.offset, &zero, 8, 1);

        KernelDesc k;
        k.name = suffixed("bug_ckpt", fixed_);
        k.blocks = 1;
        k.block_threads = kThreads;
        k.crash = point;
        const auto copy = [this](ThreadCtx &ctx) {
            const std::uint64_t base =
                std::uint64_t(ctx.threadIdx()) * kSliceWords;
            for (std::uint64_t i = 0; i < kSliceWords; ++i)
                ctx.pmStore<std::uint64_t>(
                    data_.offset + (base + i) * 8,
                    imageWord(1, base + i));
            ctx.threadfenceSystem();
        };
        const auto flip = [this](ThreadCtx &ctx) {
            if (ctx.threadIdx() != 0)
                return;
            ctx.pmStore<std::uint64_t>(meta_.offset, 1);
            ctx.threadfenceSystem();
        };
        if (fixed_) {  // copy, barrier, then flip
            k.phases.push_back(copy);
            k.phases.push_back(flip);
        } else {  // the reorder: flip commits a copy that never ran
            k.phases.push_back(flip);
            k.phases.push_back(copy);
        }
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        const std::uint64_t gen =
            m.pool().loadDurable<std::uint64_t>(meta_.offset);
        if (gen > 1)
            return false;
        bool ok = true;
        for (std::uint64_t w = 0; w < kThreads * kSliceWords; ++w)
            if (m.pool().loadDurable<std::uint64_t>(data_.offset +
                                                    w * 8) !=
                imageWord(gen, w))
                ok = false;
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        std::uint64_t h = fnv1a(m.pool().durable() + data_.offset,
                                kThreads * kSliceWords * 8);
        return fnv1a(m.pool().durable() + meta_.offset, 8, h);
    }

    PmRegion data_, meta_;
};

// ---- coalesced-tail ----------------------------------------------------
// The record's commit tail abuts its payload, so the pool's
// last-extent coalescing merges both into one pending extent; the
// single fence then seals payload and tail in the same epoch, and a
// crash tears the merged extent at 128 B granularity.
class CoalescedTailBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("coalesced-tail", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return 1; }

  protected:
    static constexpr std::uint64_t kPayloadBytes = 512;

    static std::uint64_t
    payloadWord(std::uint64_t i)
    {
        return 0xfeedface00000000ull ^ (i * 0x9e3779b97f4a7c15ull);
    }

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        rec_ = gpmMap(m, "bug.rec", kPayloadBytes + 8, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.rec.payload", rec_.offset,
                              kPayloadBytes, 0, PmRangeKind::Data);
            rec->declareRange("bug.rec.tail",
                              rec_.offset + kPayloadBytes, 8, 0,
                              PmRangeKind::Commit);
            rec->declareOrder("bug.rec.payload", "bug.rec.tail",
                              /*strict=*/true);
        }
        KernelDesc k;
        k.name = suffixed("bug_record_append", fixed_);
        k.blocks = 1;
        k.block_threads = 32;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            if (ctx.threadIdx() != 0)
                return;
            std::uint64_t words[kPayloadBytes / 8];
            for (std::uint64_t i = 0; i < kPayloadBytes / 8; ++i)
                words[i] = payloadWord(i);
            ctx.pmWrite(rec_.offset, words, kPayloadBytes);
            if (fixed_)
                ctx.threadfenceSystem();  // drain before the tail abuts
            ctx.pmStore<std::uint64_t>(rec_.offset + kPayloadBytes, 1);
            ctx.threadfenceSystem();
        });
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        if (m.pool().loadDurable<std::uint64_t>(rec_.offset +
                                                kPayloadBytes) != 1)
            return true;
        bool ok = true;
        for (std::uint64_t i = 0; i < kPayloadBytes / 8; ++i)
            if (m.pool().loadDurable<std::uint64_t>(rec_.offset +
                                                    i * 8) !=
                payloadWord(i))
                ok = false;
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        return fnv1a(m.pool().durable() + rec_.offset,
                     kPayloadBytes + 8);
    }

    PmRegion rec_;
};

// ---- torn-value --------------------------------------------------------
// A 16 B KVS value written as two 8 B stores that persist in
// different epochs: a crash between them leaves a key without its
// value. No undo log protects the slot.
class TornValueBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("torn-value", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return kThreads; }

  protected:
    static constexpr std::uint32_t kThreads = 4;

    static std::uint64_t
    keyOf(std::uint32_t t)
    {
        return 0x1000 + t;
    }

    static std::uint64_t
    valOf(std::uint32_t t)
    {
        return 0xabcd0000 + t;
    }

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        slots_ = gpmMap(m, "bug.slots", kThreads * 16, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.slots", slots_.offset, kThreads * 16,
                              16, PmRangeKind::Data);
        }
        KernelDesc k;
        k.name = suffixed("bug_kvs_put", fixed_);
        k.blocks = 1;
        k.block_threads = kThreads;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            const std::uint32_t t = ctx.threadIdx();
            const std::uint64_t slot = slots_.offset + t * 16ull;
            if (fixed_) {
                const std::uint64_t pair[2] = {keyOf(t), valOf(t)};
                ctx.pmWrite(slot, pair, 16);
                ctx.threadfenceSystem();
            } else {
                ctx.pmStore<std::uint64_t>(slot, keyOf(t));
                ctx.threadfenceSystem();
                ctx.pmStore<std::uint64_t>(slot + 8, valOf(t));
                ctx.threadfenceSystem();
            }
        });
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        bool ok = true;
        for (std::uint32_t t = 0; t < kThreads; ++t) {
            const std::uint64_t k = m.pool().loadDurable<std::uint64_t>(
                slots_.offset + t * 16ull);
            const std::uint64_t v = m.pool().loadDurable<std::uint64_t>(
                slots_.offset + t * 16ull + 8);
            const bool empty = k == 0 && v == 0;
            const bool put = k == keyOf(t) && v == valOf(t);
            if (!empty && !put)
                ok = false;
        }
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        return fnv1a(m.pool().durable() + slots_.offset, kThreads * 16);
    }

    PmRegion slots_;
};

// ---- double-flush ------------------------------------------------------
// The host flushes a range the kernel already drained with its own
// fence: the second flush moves nothing. Pure perf lint; there is no
// crash window, so the finding carries no dynamic witness.
class DoubleFlushBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("double-flush", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return 1; }

  protected:
    static constexpr std::uint64_t kBytes = 256;

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        buf_ = gpmMap(m, "bug.buf", kBytes, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.buf", buf_.offset, kBytes, 0,
                              PmRangeKind::Data);
        }
        KernelDesc k;
        k.name = suffixed("bug_fill", fixed_);
        k.blocks = 1;
        k.block_threads = 32;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            if (ctx.threadIdx() != 0)
                return;
            for (std::uint64_t i = 0; i < kBytes / 8; ++i)
                ctx.pmStore<std::uint64_t>(buf_.offset + i * 8,
                                           0xd00d + i);
            ctx.threadfenceSystem();
        });
        m.runKernel(k);
        if (!fixed_)  // belt-and-braces flush of already-durable data
            m.cpuPersistRange(buf_.offset, kBytes, 1);
    }

    bool
    recover(Machine &m) override
    {
        bool ok = true;
        for (std::uint64_t i = 0; i < kBytes / 8; ++i) {
            const std::uint64_t v = m.pool().loadDurable<std::uint64_t>(
                buf_.offset + i * 8);
            if (v != 0 && v != 0xd00d + i)
                ok = false;
        }
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        return fnv1a(m.pool().durable() + buf_.offset, kBytes);
    }

    PmRegion buf_;
};

// ---- host-only-commit --------------------------------------------------
// A declared commit range only the host ever stores to: no
// crash-armed launch can reach it, so the torture matrix exercises
// none of its ordering. Dead coverage, not a durability bug.
class HostOnlyCommitBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("host-only-commit", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return 1; }

  protected:
    static constexpr std::uint64_t kBytes = 256;

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        data_ = gpmMap(m, "bug.data", kBytes, true);
        flag_ = gpmMap(m, "bug.flag", 8, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.data", data_.offset, kBytes, 0,
                              PmRangeKind::Data);
            rec->declareRange("bug.flag", flag_.offset, 8, 0,
                              PmRangeKind::Commit);
        }
        const std::uint64_t one = 1;
        m.cpuWritePersist(flag_.offset, &one, 8, 1);
        KernelDesc k;
        k.name = suffixed("bug_worker", fixed_);
        k.blocks = 1;
        k.block_threads = 32;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            if (ctx.threadIdx() != 0)
                return;
            for (std::uint64_t i = 0; i < kBytes / 8; ++i)
                ctx.pmStore<std::uint64_t>(data_.offset + i * 8,
                                           0xcafe + i);
            if (fixed_)  // the device owns the commit record too
                ctx.pmStore<std::uint64_t>(flag_.offset, 2);
            ctx.threadfenceSystem();
        });
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        bool ok = true;
        for (std::uint64_t i = 0; i < kBytes / 8; ++i) {
            const std::uint64_t v = m.pool().loadDurable<std::uint64_t>(
                data_.offset + i * 8);
            if (v != 0 && v != 0xcafe + i)
                ok = false;
        }
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        std::uint64_t h =
            fnv1a(m.pool().durable() + data_.offset, kBytes);
        return fnv1a(m.pool().durable() + flag_.offset, 8, h);
    }

    PmRegion data_, flag_;
};

// ---- late-redo ---------------------------------------------------------
// GpmHeap's redo protocol inverted: the kernel publishes allocation
// bitmap bits and only afterwards writes the redo record that
// justifies them. A crash after the publication fence leaves durable
// bits no record explains — leaked slots recovery cannot reconcile.
// The fixed twin is the real heap shape: the *host* persists the
// whole record before the kernel publishes a single bit.
class LateRedoBug : public BugInvariant
{
  public:
    using BugInvariant::BugInvariant;

    std::string
    name() const override
    {
        return suffixed("late-redo", fixed_);
    }

    std::uint64_t doomedThreadPhases() const override { return kSlots; }

  protected:
    static constexpr std::uint32_t kSlots = 8;  ///< one per thread

    void
    doomed(Machine &m, const CrashPoint &point) override
    {
        bitmap_ = gpmMap(m, "bug.heap.bitmap", kSlots * 8, true);
        redo_ = gpmMap(m, "bug.heap.redo", kSlots * 8, true);
        if (PmEventRecorder *rec = m.pool().recorder()) {
            rec->declareRange("bug.heap.bitmap", bitmap_.offset,
                              kSlots * 8, 0, PmRangeKind::Data);
            rec->declareRange("bug.heap.redo", redo_.offset, kSlots * 8,
                              0, PmRangeKind::Commit);
            // The record must be durable before the bits it covers —
            // exactly GpmHeap::setup()'s declaration.
            rec->declareOrder("bug.heap.redo", "bug.heap.bitmap",
                              /*strict=*/false);
        }
        if (fixed_) {
            // Host-written record first (GpmHeap::txBegin's shape).
            std::uint64_t rec_words[kSlots];
            for (std::uint32_t t = 0; t < kSlots; ++t)
                rec_words[t] = 1;
            m.cpuWritePersist(redo_.offset, rec_words, kSlots * 8, 1);
        }
        KernelDesc k;
        k.name = suffixed("bug_heap_alloc", fixed_);
        k.blocks = 1;
        k.block_threads = kSlots;
        k.crash = point;
        k.phases.push_back([this](ThreadCtx &ctx) {
            const std::uint32_t t = ctx.threadIdx();
            ctx.pmStore<std::uint64_t>(bitmap_.offset + t * 8, 1);
            ctx.threadfenceSystem();  // the bit is now durable...
            if (!fixed_) {  // ...and only then does its record follow
                ctx.pmStore<std::uint64_t>(redo_.offset + t * 8, 1);
                ctx.threadfenceSystem();
            }
        });
        m.runKernel(k);
    }

    bool
    recover(Machine &m) override
    {
        // A record without its bit rolls forward (redo semantics); a
        // bit without its record is a leaked slot — the violation.
        bool ok = true;
        for (std::uint32_t t = 0; t < kSlots; ++t) {
            const std::uint64_t bit =
                m.pool().loadDurable<std::uint64_t>(bitmap_.offset +
                                                    t * 8);
            const std::uint64_t rec =
                m.pool().loadDurable<std::uint64_t>(redo_.offset +
                                                    t * 8);
            if (bit > 1 || rec > 1)
                ok = false;
            if (bit == 1 && rec == 0)
                ok = false;
        }
        return ok;
    }

    std::uint64_t
    stateHash(Machine &m) const override
    {
        std::uint64_t h = fnv1a(m.pool().durable() + bitmap_.offset,
                                kSlots * 8);
        return fnv1a(m.pool().durable() + redo_.offset, kSlots * 8, h);
    }

    PmRegion bitmap_, redo_;
};

} // namespace

std::vector<std::string>
registeredBugs()
{
    return {"drop-fence",       "drop-fence-fixed",
            "reorder-flip",     "reorder-flip-fixed",
            "coalesced-tail",   "coalesced-tail-fixed",
            "torn-value",       "torn-value-fixed",
            "double-flush",     "double-flush-fixed",
            "host-only-commit", "host-only-commit-fixed",
            "late-redo",        "late-redo-fixed"};
}

std::unique_ptr<RecoveryInvariant>
makeBugInvariant(const std::string &name)
{
    const bool fixed = name.size() > 6 &&
                       name.compare(name.size() - 6, 6, "-fixed") == 0;
    const std::string base =
        fixed ? name.substr(0, name.size() - 6) : name;
    if (base == "drop-fence")
        return std::make_unique<DropFenceBug>(fixed);
    if (base == "reorder-flip")
        return std::make_unique<ReorderFlipBug>(fixed);
    if (base == "coalesced-tail")
        return std::make_unique<CoalescedTailBug>(fixed);
    if (base == "torn-value")
        return std::make_unique<TornValueBug>(fixed);
    if (base == "double-flush")
        return std::make_unique<DoubleFlushBug>(fixed);
    if (base == "host-only-commit")
        return std::make_unique<HostOnlyCommitBug>(fixed);
    if (base == "late-redo")
        return std::make_unique<LateRedoBug>(fixed);
    fatal("unknown corpus bug '", name, "'");
}

} // namespace gpm
