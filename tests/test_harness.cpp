/**
 * @file
 * Tests for the experiment harness: naming/classification, the
 * comparable-time rule for checkpointing rows, canonical parameter
 * sanity, the CXL preset, and cross-platform speedup directions the
 * figures rely on.
 */
#include <gtest/gtest.h>

#include "harness/experiments.hpp"

namespace gpm {
namespace bench {
namespace {

TEST(Harness, NamesAndClassesMatchThePaper)
{
    EXPECT_EQ(benchName(Bench::Kvs95), "gpKVS (95:5)");
    EXPECT_EQ(benchName(Bench::DbInsert), "gpDB (I)");
    EXPECT_EQ(benchName(Bench::Hotspot), "HS");
    EXPECT_EQ(benchClass(Bench::Kvs), "Transactional");
    EXPECT_EQ(benchClass(Bench::Blk), "Checkpointing");
    EXPECT_EQ(benchClass(Bench::Srad), "Native");
    int transactional = 0, checkpointing = 0, native = 0;
    for (const Bench b : kAllBenches) {
        transactional += benchClass(b) == "Transactional";
        checkpointing += benchClass(b) == "Checkpointing";
        native += benchClass(b) == "Native";
    }
    EXPECT_EQ(transactional, 4);  // gpKVS x2 + gpDB x2
    EXPECT_EQ(checkpointing, 4);  // DNN CFD BLK HS
    EXPECT_EQ(native, 3);         // BFS SRAD PS
}

TEST(Harness, ComparableNsUsesCheckpointTimeForCheckpointing)
{
    WorkloadResult r;
    r.op_ns = 100.0;
    r.persist_ns = 10.0;
    EXPECT_DOUBLE_EQ(comparableNs(Bench::Dnn, r), 10.0);
    EXPECT_DOUBLE_EQ(comparableNs(Bench::Kvs, r), 100.0);
    r.persist_ns = 0.0;  // fall back when not separable
    EXPECT_DOUBLE_EQ(comparableNs(Bench::Cfd, r), 100.0);
}

TEST(Harness, CanonicalParamsFitThePool)
{
    // Every canonical workload must fit the canonical PM capacity.
    EXPECT_LT(kvsParams().storeBytes() * 2, pmCapacity());
    EXPECT_LT(dbParams().tableBytes() * 2, pmCapacity());
    EXPECT_GT(kvsParams().storeBytes(),
              50 * kvsParams().batch_ops * sizeof(KvPair));
    // 95:5 differs from the SET-only config only in the mix.
    EXPECT_EQ(kvs95Params().n_sets, kvsParams().n_sets);
    EXPECT_DOUBLE_EQ(kvs95Params().get_ratio, 0.95);
}

TEST(Harness, CxlPresetIsStrictlyBetterInterconnect)
{
    const SimConfig base;
    const SimConfig cxl = SimConfig::cxlAttachedPm();
    EXPECT_GT(cxl.pcie_gbps, base.pcie_gbps);
    EXPECT_LT(cxl.fence_mc_ns, base.fence_mc_ns);
    EXPECT_GE(cxl.pcie_concurrency, base.pcie_concurrency);
    // The media is the same.
    EXPECT_DOUBLE_EQ(cxl.nvm_random_gbps, base.nvm_random_gbps);
}

TEST(Harness, Figure9DirectionsHold)
{
    // The load-bearing orderings of Fig 9, as regression guards.
    SimConfig cfg;
    for (const Bench b : {Bench::Kvs, Bench::Bfs}) {
        const SimNs capfs = comparableNs(
            b, runBench(b, PlatformKind::CapFs, cfg));
        const SimNs capmm = comparableNs(
            b, runBench(b, PlatformKind::CapMm, cfg));
        const SimNs gpm =
            comparableNs(b, runBench(b, PlatformKind::Gpm, cfg));
        EXPECT_LT(capmm, capfs) << benchName(b);
        EXPECT_LT(gpm, capmm) << benchName(b);
    }
}

TEST(Harness, Figure10DirectionsHold)
{
    SimConfig cfg;
    // eADR helps GPM; NDP hurts it; both stay ahead of CAP-fs.
    const Bench b = Bench::DbUpdate;
    const SimNs capfs =
        comparableNs(b, runBench(b, PlatformKind::CapFs, cfg));
    const SimNs ndp =
        comparableNs(b, runBench(b, PlatformKind::GpmNdp, cfg));
    const SimNs gpm =
        comparableNs(b, runBench(b, PlatformKind::Gpm, cfg));
    const SimNs eadr =
        comparableNs(b, runBench(b, PlatformKind::GpmEadr, cfg));
    EXPECT_LT(eadr, gpm);
    EXPECT_LT(gpm, ndp);
    EXPECT_LT(ndp, capfs);
}

TEST(Harness, SeedsChangeNothingFunctionalButExist)
{
    SimConfig cfg;
    const WorkloadResult a = runBench(Bench::Dnn, PlatformKind::Gpm,
                                      cfg, 1);
    const WorkloadResult b = runBench(Bench::Dnn, PlatformKind::Gpm,
                                      cfg, 999);
    // Timing is seed-independent for a clean (crash-free) run.
    EXPECT_DOUBLE_EQ(a.op_ns, b.op_ns);
}

} // namespace
} // namespace bench
} // namespace gpm
