/**
 * @file
 * GPUfs comparator tests: the block-cooperative file API, the 2 GB
 * file limit, and the per-thread-misuse deadlock the paper reports —
 * the behaviours behind Fig 9's "*" entries.
 */
#include <gtest/gtest.h>

#include "gpusim/kernel.hpp"
#include "platform/gpufs_api.hpp"

namespace gpm {
namespace {

TEST(Gpufs, RequiresGpufsPlatform)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    EXPECT_THROW(GpufsFile(m, "f", 4096), FatalError);
}

TEST(Gpufs, EnforcesTwoGigabyteFileLimit)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 16_MiB);
    EXPECT_THROW(GpufsFile(m, "huge", (std::uint64_t(2) << 30) + 1),
                 FatalError);
}

TEST(Gpufs, BlockCooperativeWriteAndReadBack)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 16_MiB);
    GpufsFile file(m, "data", 64_KiB);

    std::vector<std::uint32_t> chunk(256);
    for (std::size_t i = 0; i < chunk.size(); ++i)
        chunk[i] = static_cast<std::uint32_t>(i * 3);

    // Every thread of every block reaches the call site (the real
    // library barriers internally); block b writes its own 1 KiB.
    KernelDesc k;
    k.name = "gwrite";
    k.blocks = 4;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &ctx) {
        file.gwrite(ctx, std::uint64_t(ctx.blockIdx()) * 1024,
                    chunk.data(), 1024);
    });
    m.runKernel(k);

    std::vector<std::uint32_t> back(256, 0);
    KernelDesc r;
    r.name = "gread";
    r.blocks = 1;
    r.block_threads = 64;
    r.phases.push_back([&](ThreadCtx &ctx) {
        file.gread(ctx, 3 * 1024, back.data(), 1024);
    });
    m.runKernel(r);
    EXPECT_EQ(back, chunk);
    EXPECT_NO_THROW(file.close());

    // Data persisted through the host OS: survives a crash.
    m.pool().crash();
    EXPECT_EQ(m.pool().loadDurable<std::uint32_t>(
                  file.region().offset + 2 * 1024 + 40),
              chunk[10]);
}

TEST(Gpufs, PerThreadMisuseDeadlocks)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 16_MiB);
    GpufsFile file(m, "data", 4096);

    // Fine-grain style: only one thread of the block calls gwrite —
    // exactly how the GPMbench transactional/native workloads would
    // have to use it, and why they fail on GPUfs.
    KernelDesc k;
    k.name = "per_thread_write";
    k.blocks = 2;
    k.block_threads = 32;
    std::uint32_t payload = 7;
    k.phases.push_back([&](ThreadCtx &ctx) {
        if (ctx.threadIdx() == 0)
            file.gwrite(ctx, ctx.blockIdx() * 4, &payload, 4);
    });
    m.runKernel(k);
    EXPECT_THROW(file.close(), GpufsDeadlock);
}

TEST(Gpufs, WriteBeyondEofIsUserError)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 16_MiB);
    GpufsFile file(m, "data", 1024);
    KernelDesc k;
    k.name = "overflow";
    k.blocks = 1;
    k.block_threads = 32;
    std::uint64_t v = 0;
    k.phases.push_back(
        [&](ThreadCtx &ctx) { file.gwrite(ctx, 1020, &v, 8); });
    EXPECT_THROW(m.runKernel(k), FatalError);
}

TEST(Gpufs, RpcCostsMakeItSlowerThanGpmPersists)
{
    SimConfig cfg;
    // The same 64 KiB persisted: GPUfs pays per-block RPCs + the OS
    // write path; GPM streams it from the kernel.
    Machine g(cfg, PlatformKind::Gpufs, 16_MiB);
    GpufsFile file(g, "data", 64_KiB);
    std::vector<std::uint8_t> buf(1024, 1);
    KernelDesc k;
    k.name = "gwrite_all";
    k.blocks = 64;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &ctx) {
        file.gwrite(ctx, std::uint64_t(ctx.blockIdx()) * 1024,
                    buf.data(), 1024);
    });
    const SimNs t0 = g.now();
    g.runKernel(k);
    const SimNs gpufs_ns = g.now() - t0;

    // 64 blocks x 40 us RPC floor.
    EXPECT_GT(gpufs_ns, 64 * cfg.gpufs_call_ns);
}

} // namespace
} // namespace gpm
