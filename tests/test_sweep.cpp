/**
 * @file
 * Sweep-engine tests: canonical-order result slots under adversarial
 * completion order, both error policies, telemetry shard folding,
 * nested-sweep re-entrancy, worker-count edge cases, and the
 * determinism contract that motivates the engine — the crash-torture
 * signature must be bit-identical at 1/2/4/8 sweep workers.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "crashtest/torture_runner.hpp"
#include "harness/sweep.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {
namespace {

TEST(Sweep, ResultsLandInCanonicalSlotsUnderAdversarialCompletion)
{
    // Later items finish first (sleep falls with index), so completion
    // order inverts submission order at any width > 1 — slots must
    // still match their item.
    constexpr std::size_t n = 48;
    for (const int workers : {1, 2, 4, 8}) {
        SweepOptions opt;
        opt.workers = workers;
        const std::vector<std::size_t> out = sweep(
            n,
            [](SweepLane &, std::size_t i) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200 * (n - i)));
                return i * i + 1;
            },
            opt);
        ASSERT_EQ(out.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], i * i + 1) << "workers=" << workers;
    }
}

TEST(Sweep, ItemOverloadMapsItemsToSlots)
{
    const std::vector<std::string> items = {"a", "bb", "ccc", "dddd"};
    SweepOptions opt;
    opt.workers = 4;
    const std::vector<std::size_t> lens = sweep(
        items,
        [](SweepLane &, const std::string &s) { return s.size(); },
        opt);
    ASSERT_EQ(lens.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(lens[i], items[i].size());
}

TEST(Sweep, EdgeCasesEmptyAndClampedWidths)
{
    // Empty sweep: no work, no errors, no slots.
    std::vector<SweepError> errors;
    EXPECT_TRUE(
        sweep(std::size_t(0),
              [](SweepLane &, std::size_t i) { return i; }, {}, &errors)
            .empty());
    EXPECT_TRUE(errors.empty());

    // Width far beyond the item count (clamped) and width 0 (one per
    // hardware thread) both produce the canonical result vector.
    for (const int workers : {0, 64}) {
        SweepOptions opt;
        opt.workers = workers;
        const std::vector<std::size_t> out = sweep(
            std::size_t(3),
            [](SweepLane &, std::size_t i) { return i + 10; }, opt);
        ASSERT_EQ(out.size(), 3u);
        for (std::size_t i = 0; i < 3; ++i)
            EXPECT_EQ(out[i], i + 10);
    }
}

TEST(Sweep, FailFastRethrowsTheFirstErrorOnTheCaller)
{
    for (const int workers : {1, 4}) {
        SweepOptions opt;
        opt.workers = workers;
        std::atomic<std::size_t> ran{0};
        EXPECT_THROW(
            sweep(
                std::size_t(256),
                [&](SweepLane &, std::size_t i) {
                    if (i == 3)
                        throw std::runtime_error("item 3 exploded");
                    ran.fetch_add(1);
                    return i;
                },
                opt),
            std::runtime_error)
            << "workers=" << workers;
        // The abort flag stops remaining claims: far fewer than all
        // 255 surviving items run once the error is seen.
        EXPECT_LT(ran.load(), std::size_t(256)) << "workers=" << workers;
    }
}

TEST(Sweep, CollectAllFinishesAndIndexOrdersErrors)
{
    for (const int workers : {1, 4}) {
        SweepOptions opt;
        opt.workers = workers;
        opt.on_error = SweepOptions::OnError::CollectAll;
        std::vector<SweepError> errors;
        const std::vector<int> out = sweep(
            std::size_t(32),
            [](SweepLane &, std::size_t i) -> int {
                if (i % 10 == 7)
                    throw std::runtime_error("bad " +
                                             std::to_string(i));
                return static_cast<int>(i) + 1;
            },
            opt, &errors);

        ASSERT_EQ(errors.size(), 3u) << "workers=" << workers;
        EXPECT_EQ(errors[0].index, 7u);
        EXPECT_EQ(errors[1].index, 17u);
        EXPECT_EQ(errors[2].index, 27u);
        EXPECT_EQ(errors[0].what, "bad 7");

        // Failed slots stay default-constructed; the rest completed.
        ASSERT_EQ(out.size(), 32u);
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (i % 10 == 7)
                EXPECT_EQ(out[i], 0) << i;
            else
                EXPECT_EQ(out[i], static_cast<int>(i) + 1) << i;
        }
    }
}

TEST(Sweep, TelemetryShardsFoldIntoTheSessionOnce)
{
    telemetry::ScopedSession session;
    SweepOptions opt;
    opt.workers = 4;
    sweep(
        std::size_t(100),
        [](SweepLane &lane, std::size_t i) {
            lane.count("sweep.test.items");
            lane.count("sweep.test.bytes", i);
            return i;
        },
        opt);
    const telemetry::MetricsSnapshot snap = session->metrics.snapshot();
    EXPECT_EQ(snap.counter("sweep.test.items"), 100u);
    EXPECT_EQ(snap.counter("sweep.test.bytes"), 99u * 100u / 2);
}

TEST(Sweep, CountIsDroppedWithoutASession)
{
    SweepOptions opt;
    opt.workers = 2;
    const std::vector<std::size_t> out = sweep(
        std::size_t(8),
        [](SweepLane &lane, std::size_t i) {
            lane.count("sweep.test.ignored");
            return i;
        },
        opt);
    EXPECT_EQ(out.size(), 8u);
}

TEST(Sweep, NestedSweepRunsInlineWithoutDeadlock)
{
    SweepOptions opt;
    opt.workers = 4;
    const std::vector<std::size_t> out = sweep(
        std::size_t(8),
        [](SweepLane &, std::size_t i) {
            // A sweep from inside a sweep item must not wait on the
            // pool it is running on; it falls back to inline.
            const std::vector<std::size_t> inner = sweep(
                std::size_t(4),
                [i](SweepLane &, std::size_t j) { return i * 10 + j; },
                SweepOptions{.workers = 4});
            std::size_t sum = 0;
            for (const std::size_t v : inner)
                sum += v;
            return sum;
        },
        opt);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i * 40 + 6);
}

TEST(Sweep, WorkerIdsStayWithinTheRequestedWidth)
{
    SweepOptions opt;
    opt.workers = 4;
    const std::vector<unsigned> lanes = sweep(
        std::size_t(64),
        [](SweepLane &lane, std::size_t) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            return lane.worker();
        },
        opt);
    for (const unsigned w : lanes)
        EXPECT_LT(w, 4u);
}

// ---- the determinism contract against the torture matrix ---------------

TEST(Sweep, TortureSignatureIsBitIdenticalAtAnyWorkerCount)
{
    TortureConfig cfg;
    cfg.workloads = {"kvs", "prefix-sum"};
    cfg.specs = CrashScheduler::parseList("frac:0.50,after-store:1");
    cfg.seeds = {1, 2};
    cfg.survive_probs = {0.5};

    cfg.jobs = 1;
    const TortureReport ref = TortureRunner::run(cfg);
    ASSERT_GT(ref.results.size(), 0u);

    for (const int jobs : {2, 4, 8}) {
        cfg.jobs = jobs;
        const TortureReport r = TortureRunner::run(cfg);
        ASSERT_EQ(r.results.size(), ref.results.size()) << jobs;
        for (std::size_t i = 0; i < r.results.size(); ++i) {
            EXPECT_EQ(r.results[i].key(), ref.results[i].key());
            EXPECT_EQ(r.results[i].outcome.state_hash,
                      ref.results[i].outcome.state_hash)
                << r.results[i].key() << " at jobs=" << jobs;
            EXPECT_EQ(r.results[i].cls, ref.results[i].cls);
        }
        EXPECT_EQ(r.signature(), ref.signature()) << "jobs=" << jobs;
        EXPECT_EQ(r.classCounts(), ref.classCounts()) << "jobs=" << jobs;
    }
}

} // namespace
} // namespace gpm
