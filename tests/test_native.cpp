/**
 * @file
 * Tests for the native-persistence workloads (BFS, SRAD, PS):
 * functional correctness against host references, platform coverage,
 * and resume-instead-of-restart crash recovery.
 */
#include <gtest/gtest.h>

#include "workloads/bfs.hpp"
#include "workloads/prefix_sum.hpp"
#include "workloads/srad.hpp"

namespace gpm {
namespace {

BfsParams
smallBfs()
{
    BfsParams p;
    p.grid_w = 24;
    p.grid_h = 96;
    p.shortcuts = 32;
    return p;
}

SradParams
smallSrad()
{
    SradParams p;
    p.width = 96;
    p.height = 64;
    p.iterations = 4;
    return p;
}

PsParams
smallPs()
{
    PsParams p;
    p.blocks = 48;
    p.block_threads = 128;
    p.elems_per_thread = 8;
    return p;
}

// ---- BFS --------------------------------------------------------------

TEST(Bfs, GpmMatchesReference)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpBfs bfs(m, smallBfs());
    const WorkloadResult r = bfs.run();
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.op_ns, 0.0);
}

TEST(Bfs, RunsOnCapAndNdp)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::CapEadr,
                              PlatformKind::GpmNdp,
                              PlatformKind::GpmEadr}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpBfs bfs(m, smallBfs());
        EXPECT_TRUE(bfs.run().verified) << platformName(kind);
    }
}

TEST(Bfs, GpufsUnsupported)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 64_MiB);
    GpBfs bfs(m, smallBfs());
    EXPECT_FALSE(bfs.run().supported);
}

TEST(Bfs, PersistentKernelBeatsCapFsByALot)
{
    SimConfig cfg;
    Machine a(cfg, PlatformKind::Gpm, 64_MiB);
    Machine b(cfg, PlatformKind::CapFs, 64_MiB);
    GpBfs g(a, smallBfs()), c(b, smallBfs());
    const WorkloadResult rg = g.run(), rc = c.run();
    // The paper reports up to 85x; at our scale demand at least 10x.
    EXPECT_GT(rc.op_ns, 10.0 * rg.op_ns);
}

class BfsCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(BfsCrash, ResumesFromDurableFrontier)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(GetParam()) + 1);
    BfsParams p = smallBfs();
    p.seed = 100 + static_cast<std::uint64_t>(GetParam());
    GpBfs bfs(m, p);
    const double frac = 0.15 + 0.1 * (GetParam() % 8);
    const double survive = (GetParam() % 3) * 0.4;
    const WorkloadResult r = bfs.runWithCrash(frac, survive);
    EXPECT_TRUE(r.verified) << "frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfsCrash, ::testing::Range(0, 8));

// ---- SRAD -------------------------------------------------------------

TEST(Srad, GpmMatchesReferenceAndDespeckles)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpSrad srad(m, smallSrad());
    const WorkloadResult r = srad.run();
    EXPECT_TRUE(r.verified);
}

TEST(Srad, VarianceFallsAcrossIterations)
{
    SimConfig cfg;
    Machine m1(cfg, PlatformKind::Gpm, 64_MiB);
    SradParams p1 = smallSrad();
    p1.iterations = 1;
    GpSrad one(m1, p1);
    one.run();

    Machine m2(cfg, PlatformKind::Gpm, 64_MiB);
    SradParams p8 = smallSrad();
    p8.iterations = 8;
    GpSrad eight(m2, p8);
    eight.run();
    EXPECT_LT(eight.imageVariance(), one.imageVariance());
}

TEST(Srad, RunsEverywhereIncludingGpufs)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::GpmNdp, PlatformKind::Gpufs,
                              PlatformKind::GpmEadr}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpSrad srad(m, smallSrad());
        const WorkloadResult r = srad.run();
        EXPECT_TRUE(r.supported) << platformName(kind);
        EXPECT_TRUE(r.verified) << platformName(kind);
    }
}

class SradCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(SradCrash, ResumesFromCommittedIteration)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(GetParam()) + 7);
    GpSrad srad(m, smallSrad());
    const WorkloadResult r = srad.runWithCrash(
        /*crash_iter=*/1 + GetParam() % 3,
        /*survive_prob=*/(GetParam() % 2) * 0.5);
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SradCrash, ::testing::Range(0, 6));

// ---- PS ---------------------------------------------------------------

TEST(PrefixSum, GpmMatchesReference)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpPrefixSum ps(m, smallPs());
    EXPECT_TRUE(ps.run().verified);
}

TEST(PrefixSum, RunsOnCapPlatforms)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::GpmNdp,
                              PlatformKind::GpmEadr}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpPrefixSum ps(m, smallPs());
        EXPECT_TRUE(ps.run().supported) << platformName(kind);
    }
}

TEST(PrefixSum, GpufsUnsupported)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 64_MiB);
    GpPrefixSum ps(m, smallPs());
    EXPECT_FALSE(ps.run().supported);
}

class PsCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(PsCrash, SentinelSkipsCompletedBlocks)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(GetParam()) + 3);
    PsParams p = smallPs();
    p.seed = 200 + static_cast<std::uint64_t>(GetParam());
    GpPrefixSum ps(m, p);
    const double frac = 0.2 + 0.1 * GetParam();
    const WorkloadResult r =
        ps.runWithCrash(frac, (GetParam() % 2) * 0.6);
    EXPECT_TRUE(r.verified) << "frac=" << frac;
    if (frac >= 0.4) {
        // A late crash leaves completed blocks the sentinel skips.
        EXPECT_GT(ps.blocksSkipped(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PsCrash, ::testing::Range(0, 6));

} // namespace
} // namespace gpm
