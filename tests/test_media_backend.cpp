/**
 * @file
 * Unit + property tests for the pluggable media backends
 * (memsim/media_backend.hpp): interleaved routing and its N=1
 * bit-equality with the legacy NvmModel, run classification at
 * interleave-boundary straddles, close-order/width invariants, the
 * CXL port envelope, the hybrid DRAM cache's hit/miss/migration
 * accounting, and backend selection (keys, env, config plumbing).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/rng.hpp"
#include "memsim/media_backend.hpp"
#include "memsim/nvm_model.hpp"

namespace gpm {
namespace {

SimConfig
mediaCfg(std::string_view key)
{
    SimConfig cfg;
    const auto m = parseMediaConfig(key);
    EXPECT_TRUE(m.has_value()) << key;
    applyMediaConfig(cfg, *m);
    return cfg;
}

// ---- selection ----------------------------------------------------------

TEST(MediaSelect, ParsesEveryCanonicalKey)
{
    EXPECT_EQ(parseMediaConfig("nvm")->kind, MediaKind::Nvm);
    EXPECT_EQ(parseMediaConfig("cxl")->kind, MediaKind::Cxl);
    const auto i = parseMediaConfig("interleaved");
    EXPECT_EQ(i->kind, MediaKind::Interleaved);
    EXPECT_EQ(i->dimms, 4);
    EXPECT_EQ(parseMediaConfig("interleaved:8")->dimms, 8);
    const auto h = parseMediaConfig("hybrid:16");
    EXPECT_EQ(h->kind, MediaKind::Hybrid);
    EXPECT_EQ(h->dram_cache_bytes, 16_MiB);
}

TEST(MediaSelect, RejectsMalformedKeys)
{
    EXPECT_FALSE(parseMediaConfig("").has_value());
    EXPECT_FALSE(parseMediaConfig("optane").has_value());
    EXPECT_FALSE(parseMediaConfig("interleaved:3").has_value());
    EXPECT_FALSE(parseMediaConfig("interleaved:128").has_value());
    EXPECT_FALSE(parseMediaConfig("interleaved:").has_value());
    EXPECT_FALSE(parseMediaConfig("interleaved:4x").has_value());
    EXPECT_FALSE(parseMediaConfig("hybrid:0").has_value());
    EXPECT_FALSE(parseMediaConfig("hybrid:99999").has_value());
    EXPECT_FALSE(parseMediaConfig("nvm ").has_value());
}

TEST(MediaSelect, KeyRoundTrips)
{
    for (const char *k :
         {"nvm", "interleaved:1", "interleaved:8", "cxl", "hybrid:4",
          "hybrid:64"}) {
        const auto m = parseMediaConfig(k);
        ASSERT_TRUE(m.has_value()) << k;
        EXPECT_EQ(mediaKey(*m), k);
    }
}

TEST(MediaSelect, FactoryBuildsTheSelectedKind)
{
    for (const char *k : {"nvm", "interleaved:4", "cxl", "hybrid"}) {
        SimConfig cfg = mediaCfg(k);
        const auto b = makeMediaBackend(cfg);
        EXPECT_EQ(b->kind(), cfg.media.kind) << k;
    }
}

TEST(MediaSelect, CxlSelectionAppliesInterconnectProjection)
{
    const SimConfig cfg = mediaCfg("cxl");
    const SimConfig cxl = SimConfig::cxlAttachedPm();
    EXPECT_EQ(cfg.pcie_gbps, cxl.pcie_gbps);
    EXPECT_EQ(cfg.fence_mc_ns, cxl.fence_mc_ns);
    EXPECT_EQ(cfg.pcie_concurrency, cxl.pcie_concurrency);
}

TEST(MediaSelect, EnvSelectionDegradesOnGarbage)
{
    ::setenv("GPM_MEDIA", "interleaved:8", 1);
    EXPECT_EQ(mediaFromEnv().dimms, 8);
    ::setenv("GPM_MEDIA", "bogus", 1);
    EXPECT_EQ(mediaFromEnv().kind, MediaKind::Nvm);
    ::unsetenv("GPM_MEDIA");
    EXPECT_EQ(mediaFromEnv().kind, MediaKind::Nvm);
}

// ---- interleaved: N=1 bit-equality and width properties -----------------

/** Drive the same pseudo-random mixed op stream into any backend. */
template <typename Model>
NvmTierBytes
driveMixed(Model &m, std::uint64_t seed, int ops = 4000)
{
    Rng rng(seed);
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(16)) {
          case 0:
            m.recordRun(rng.below(1_MiB) * 64, 64 * (1 + rng.below(64)),
                        1 + rng.below(16));
            break;
          case 1:
            m.recordScattered(64 * (1 + rng.below(32)),
                              1 + rng.below(32));
            break;
          case 2:
            m.closeRuns();
            break;
          default:
            m.recordWrite(rng.below(32), rng.below(1_MiB) * 32,
                          32 * (1 + rng.below(16)));
        }
    }
    m.closeRuns();
    return m.bytes();
}

class MediaSeeds : public ::testing::TestWithParam<int>
{
};

TEST_P(MediaSeeds, InterleavedAtWidthOneIsBitIdenticalToLegacy)
{
    const std::uint64_t seed = 77 + GetParam();
    SimConfig legacy_cfg;
    NvmModel legacy(legacy_cfg);
    const NvmTierBytes want = driveMixed(legacy, seed);

    SimConfig cfg = mediaCfg("interleaved:1");
    const auto b = makeMediaBackend(cfg);
    const NvmTierBytes got = driveMixed(*b, seed);

    EXPECT_EQ(got, want);
    EXPECT_EQ(b->writeTxns(), legacy.writeTxns());
    EXPECT_EQ(b->writeTime(got), legacy.writeTime(want));
    EXPECT_EQ(b->writeTime(got, 1.6), legacy.writeTime(want, 1.6));
    EXPECT_EQ(b->readTime(12345), legacy.readTime(12345));
}

TEST_P(MediaSeeds, TierTotalsInvariantUnderStreamCloseOrder)
{
    // Interleave the close points differently: closing after every op
    // vs once at the end. Totals must agree per tier because classify
    // adds are commutative — on every backend.
    for (const char *k : {"nvm", "interleaved:4", "cxl", "hybrid"}) {
        SimConfig cfg = mediaCfg(k);
        const auto a = makeMediaBackend(cfg);
        const auto b = makeMediaBackend(cfg);
        Rng rng(500 + GetParam());
        // Per-stream bounded regions: streams write disjoint areas so
        // a close boundary only splits runs, never re-forms them
        // across streams.
        for (int i = 0; i < 512; ++i) {
            const std::uint64_t s = rng.below(8);
            const std::uint64_t addr = s * 1_MiB + rng.below(64) * 256;
            a->recordWrite(s, addr, 256);
            b->recordWrite(s, addr, 256);
            if (i % 7 == 0) {
                // a closes often; b only at the end.
                a->closeRuns();
            }
        }
        a->closeRuns();
        b->closeRuns();
        // Close boundaries can split runs (changing the tier of the
        // split bytes) — but the total classified volume and the
        // transaction count can't change.
        EXPECT_EQ(a->bytes().total() > 0, b->bytes().total() > 0) << k;
        EXPECT_EQ(a->writeTxns(), b->writeTxns()) << k;
    }
}

TEST_P(MediaSeeds, GranuleAlignedStreamsClassifyIdenticallyAtAnyWidth)
{
    // Each stream owns one granule-aligned 4 KiB region and fills it
    // sequentially: no run ever straddles a stripe boundary, so the
    // per-tier totals are invariant across interleave widths.
    NvmTierBytes want{};
    bool first = true;
    for (const int w : {1, 2, 4, 8}) {
        SimConfig cfg = mediaCfg("interleaved:" + std::to_string(w));
        const auto b = makeMediaBackend(cfg);
        Rng rng(900 + GetParam());
        for (int round = 0; round < 4; ++round) {
            for (std::uint64_t s = 0; s < 16; ++s) {
                const std::uint64_t base = s * 4096;
                for (std::uint64_t off = 0; off < 4096; off += 256)
                    b->recordWrite(s, base + off, 256);
            }
            b->closeRuns();
        }
        if (first) {
            want = b->bytes();
            first = false;
            EXPECT_EQ(want.seq_aligned, want.total());
        } else {
            EXPECT_EQ(b->bytes(), want) << "width " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediaSeeds, ::testing::Range(0, 6));

TEST(InterleavedNvm, ConservationAtEveryWidth)
{
    for (const int w : {1, 2, 4, 8}) {
        SimConfig cfg = mediaCfg("interleaved:" + std::to_string(w));
        const auto b = makeMediaBackend(cfg);
        const NvmTierBytes t = driveMixed(*b, 1234);
        EXPECT_GE(t.total(), 1u) << w;
        // Classification rounds up (RMW lines) but never loses bytes:
        // payload <= classified.
        const auto legacy_cfg = SimConfig{};
        NvmModel legacy(legacy_cfg);
        const NvmTierBytes lt = driveMixed(legacy, 1234);
        EXPECT_GE(t.total(), lt.total() / 2) << w;  // same order
    }
}

TEST(InterleavedNvm, LongRunStraddlingStripesStaysSequentialPerDimm)
{
    // One warp streams 32 KiB of 256 B-aligned writes across an 8-way
    // interleave: every DIMM sees a locally contiguous aligned run
    // (stripes k and k+8 are adjacent in local space), so the whole
    // payload stays on the fast tier — interleaving does not demote
    // well-formed long streams.
    SimConfig cfg = mediaCfg("interleaved:8");
    const auto b = makeMediaBackend(cfg);
    for (std::uint64_t off = 0; off < 32 * 4096; off += 256)
        b->recordWrite(3, off, 256);
    b->closeRuns();
    EXPECT_EQ(b->bytes().seq_aligned, 32u * 4096);
    EXPECT_EQ(b->bytes().seq_unaligned, 0u);
    EXPECT_EQ(b->bytes().random, 0u);
}

TEST(InterleavedNvm, ShortRunStraddlingAStripeBoundaryIsDemoted)
{
    // A 2-line run that would be seq_aligned on one DIMM splits into
    // two single-txn fragments on different DIMMs when it straddles
    // the stripe boundary: each fragment is below the 2-line
    // write-combining threshold, so the bytes land on the random tier
    // (rounded up to whole XPLines). This is the physical effect: the
    // stripe boundary defeats the XPLine buffer.
    SimConfig cfg = mediaCfg("interleaved:4");
    const auto b = makeMediaBackend(cfg);
    b->recordWrite(1, 4096 - 256, 256);
    b->recordWrite(1, 4096, 256);
    b->closeRuns();
    EXPECT_EQ(b->bytes().random, 512u);
    EXPECT_EQ(b->bytes().seq_aligned, 0u);

    // The same two writes inside one stripe write-combine as usual.
    const auto c = makeMediaBackend(cfg);
    c->recordWrite(1, 8192, 256);
    c->recordWrite(1, 8192 + 256, 256);
    c->closeRuns();
    EXPECT_EQ(c->bytes().seq_aligned, 512u);
}

TEST(InterleavedNvm, SingleTxnStraddleSplitsIntoPerDimmFragments)
{
    // One 300 B write across a stripe boundary becomes two isolated
    // fragments on two DIMMs: 2 RMW lines (512 B) — same cost the
    // legacy model charges a 300 B isolated write, so small-write
    // accounting does not drift with the media axis.
    SimConfig cfg = mediaCfg("interleaved:2");
    const auto b = makeMediaBackend(cfg);
    b->recordWrite(9, 4096 - 100, 300);
    b->closeRuns();
    EXPECT_EQ(b->bytes().random, 512u);
    EXPECT_EQ(b->writeTxns(), 1u);
}

TEST(InterleavedNvm, WriteTimeScalesWithWidthAndMatchesLegacyAtOne)
{
    const NvmTierBytes b{1_MiB, 1_MiB, 1_MiB};
    SimConfig legacy_cfg;
    NvmModel legacy(legacy_cfg);
    SimNs prev = 0.0;
    for (const int w : {1, 2, 4, 8}) {
        SimConfig cfg = mediaCfg("interleaved:" + std::to_string(w));
        const auto m = makeMediaBackend(cfg);
        const SimNs t = m->writeTime(b, 1.6);
        if (w == 1)
            EXPECT_EQ(t, legacy.writeTime(b, 1.6));
        else
            EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(InterleavedNvm, RecordRunSplitsAcrossDimmsWithoutLosingBytes)
{
    SimConfig cfg = mediaCfg("interleaved:4");
    const auto b = makeMediaBackend(cfg);
    // 64 KiB aligned bulk run: still entirely fast-tier after the
    // per-DIMM split (each DIMM's share is one contiguous local run).
    b->recordRun(0, 64_KiB, 1024);
    EXPECT_EQ(b->bytes().seq_aligned, 64_KiB);
    // Unaligned bulk run: whole length demoted, no bytes lost.
    b->recordRun(1_MiB + 64, 16_KiB, 256);
    EXPECT_EQ(b->bytes().total(), 64_KiB + 16_KiB);
}

// ---- CXL ----------------------------------------------------------------

TEST(CxlNvm, PortBindsSequentialMediaBindsRandom)
{
    SimConfig cfg = mediaCfg("cxl");
    const auto b = makeMediaBackend(cfg);
    // Aligned-sequential: in-device 4-way media absorbs at 50 GB/s,
    // the 26 GB/s port is the bottleneck.
    const NvmTierBytes seq{64_MiB, 0, 0};
    EXPECT_EQ(b->writeTime(seq),
              transferNs(64_MiB, cfg.media.cxl_port_gbps));
    // Random: media is far slower than the port even 4-way.
    const NvmTierBytes rnd{0, 0, 64_MiB};
    EXPECT_EQ(b->writeTime(rnd),
              transferNs(64_MiB, cfg.nvm_random_gbps * 4));
}

TEST(CxlNvm, ReadsPayTheFarMemoryHop)
{
    SimConfig cfg = mediaCfg("cxl");
    const auto b = makeMediaBackend(cfg);
    SimConfig plain_cfg;
    NvmModel plain(plain_cfg);
    EXPECT_GT(b->readTime(4096), plain.readTime(4096) -
                                     transferNs(4096,
                                                plain_cfg.nvm_read_gbps));
    EXPECT_EQ(b->readTime(0), 0.0);
}

// ---- hybrid DRAM cache --------------------------------------------------

std::uint64_t
counter(const MediaBackend &b, const std::string &name)
{
    std::vector<MediaCounter> cs;
    b.appendCounters(cs);
    for (const MediaCounter &c : cs) {
        if (c.name == name)
            return c.value;
    }
    ADD_FAILURE() << "no counter " << name;
    return 0;
}

TEST(HybridDram, RepeatedWorkingSetHitsInDram)
{
    // 1 MiB working set rewritten 8 times under a 4 MiB cache: the
    // first pass misses, every later pass hits, and nothing reaches
    // the NVM behind.
    SimConfig cfg = mediaCfg("hybrid:4");
    const auto b = makeMediaBackend(cfg);
    for (int round = 0; round < 8; ++round) {
        for (std::uint64_t off = 0; off < 1_MiB; off += 256)
            b->recordWrite(off / 65536, off, 256);
        b->closeRuns();
    }
    EXPECT_EQ(counter(*b, "dram_miss_bytes"), 1_MiB);
    EXPECT_EQ(counter(*b, "dram_hit_bytes"), 7u * 1_MiB);
    EXPECT_EQ(counter(*b, "dram_writeback_bytes"), 0u);
    EXPECT_EQ(b->bytes().total(), 0u);
}

TEST(HybridDram, CapacityEvictionMigratesFifoLinesToNvm)
{
    // Stream 8 MiB sequentially through a 1 MiB cache: the first
    // 1 MiB stays resident, the earlier 7 MiB is evicted in FIFO
    // (= address) order, so the migration stream forms sequential
    // aligned runs on the NVM behind.
    SimConfig cfg = mediaCfg("hybrid:1");
    const auto b = makeMediaBackend(cfg);
    for (std::uint64_t off = 0; off < 8_MiB; off += 256)
        b->recordWrite(1, off, 256);
    b->closeRuns();
    EXPECT_EQ(counter(*b, "dram_miss_bytes"), 8_MiB);
    EXPECT_EQ(counter(*b, "dram_writeback_bytes"), 7u * 1_MiB);
    EXPECT_EQ(counter(*b, "dram_resident_lines"), 1_MiB / 256);
    EXPECT_EQ(b->bytes().seq_aligned, 7u * 1_MiB);
    EXPECT_EQ(b->bytes().random, 0u);
}

TEST(HybridDram, HitPlusMissEqualsOfferedBytes)
{
    SimConfig cfg = mediaCfg("hybrid:2");
    const auto b = makeMediaBackend(cfg);
    Rng rng(321);
    std::uint64_t offered = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t size = 64 * (1 + rng.below(8));
        b->recordWrite(rng.below(8), rng.below(1_MiB) * 64, size);
        offered += size;
    }
    b->closeRuns();
    EXPECT_EQ(counter(*b, "dram_hit_bytes") +
                  counter(*b, "dram_miss_bytes"),
              offered);
    EXPECT_EQ(b->writeTxns(), 5000u);
}

TEST(HybridDram, ScatteredTrafficBypassesTheCache)
{
    SimConfig cfg = mediaCfg("hybrid");
    const auto b = makeMediaBackend(cfg);
    b->recordScattered(4096, 64);
    EXPECT_EQ(b->bytes().random, 4096u);
    EXPECT_EQ(counter(*b, "dram_hit_bytes"), 0u);
    EXPECT_EQ(b->writeTxns(), 64u);
}

TEST(HybridDram, ResetRestoresAnEmptyCache)
{
    SimConfig cfg = mediaCfg("hybrid:1");
    const auto b = makeMediaBackend(cfg);
    for (std::uint64_t off = 0; off < 2_MiB; off += 256)
        b->recordWrite(1, off, 256);
    b->reset();
    EXPECT_EQ(counter(*b, "dram_resident_lines"), 0u);
    EXPECT_EQ(counter(*b, "dram_hit_bytes"), 0u);
    EXPECT_EQ(b->bytes().total(), 0u);
    EXPECT_EQ(b->writeTxns(), 0u);
}

// ---- read-op accounting (satellite: read_ops_ exposure) -----------------

TEST(MediaBackend, ReadOpsAreCountedOnEveryBackend)
{
    for (const char *k : {"nvm", "interleaved:4", "cxl", "hybrid"}) {
        SimConfig cfg = mediaCfg(k);
        const auto b = makeMediaBackend(cfg);
        b->recordRead(100);
        b->recordRead(28);
        EXPECT_EQ(b->readBytes(), 128u) << k;
        EXPECT_EQ(b->readOps(), 2u) << k;
    }
}

} // namespace
} // namespace gpm
