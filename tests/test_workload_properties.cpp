/**
 * @file
 * Property sweeps over workload geometry: odd sizes, non-warp-multiple
 * thread counts, degenerate grids, zero-checkpoint schedules — every
 * configuration must stay functionally correct on the GPM platform.
 */
#include <gtest/gtest.h>

#include "workloads/bfs.hpp"
#include "workloads/cfd.hpp"
#include "workloads/db.hpp"
#include "workloads/dnn.hpp"
#include "workloads/kvs.hpp"
#include "workloads/prefix_sum.hpp"
#include "workloads/srad.hpp"

namespace gpm {
namespace {

class KvsGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(KvsGeometry, VerifiesOnGpm)
{
    const auto [sets_log2, batch_ops, get_ratio] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpKvsParams p;
    p.n_sets = 1u << sets_log2;
    p.batch_ops = static_cast<std::uint32_t>(batch_ops);
    p.batches = 2;
    p.get_ratio = get_ratio;
    GpKvs kvs(m, p);
    const WorkloadResult r = kvs.run();
    EXPECT_TRUE(r.verified)
        << "sets=2^" << sets_log2 << " ops=" << batch_ops;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KvsGeometry,
    ::testing::Combine(::testing::Values(6, 10, 13),
                       // 31: not a multiple of the 8-thread group or
                       // the warp; 257: one past a block boundary.
                       ::testing::Values(31, 257, 1024),
                       ::testing::Values(0.0, 0.5, 0.95)));

class DbGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(DbGeometry, VerifiesOnGpm)
{
    const auto [initial, inserts, updates] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpDbParams p;
    p.initial_rows = static_cast<std::uint32_t>(initial);
    p.insert_rows = static_cast<std::uint32_t>(inserts);
    p.update_rows = static_cast<std::uint32_t>(updates);
    p.insert_batches = 2;
    p.update_batches = 2;
    p.cap_chunk_bytes = 16_KiB;
    GpDb db(m, p);
    EXPECT_TRUE(db.run().verified)
        << initial << "/" << inserts << "/" << updates;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbGeometry,
    ::testing::Values(std::make_tuple(1000, 33, 17),     // odd sizes
                      std::make_tuple(4096, 1, 1),       // single row
                      std::make_tuple(10001, 255, 100),  // prime-ish
                      std::make_tuple(512, 512, 512)));  // updates==rows

class BfsGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BfsGeometry, MatchesReferenceOnGpm)
{
    const auto [w, h, shortcuts] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    BfsParams p;
    p.grid_w = static_cast<std::uint32_t>(w);
    p.grid_h = static_cast<std::uint32_t>(h);
    p.shortcuts = static_cast<std::uint32_t>(shortcuts);
    GpBfs bfs(m, p);
    EXPECT_TRUE(bfs.run().verified)
        << w << "x" << h << "+" << shortcuts;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsGeometry,
    ::testing::Values(std::make_tuple(1, 64, 0),   // a path graph
                      std::make_tuple(2, 2, 0),    // 4 nodes
                      std::make_tuple(7, 13, 50),  // shortcut-heavy
                      std::make_tuple(64, 16, 8)));

class SradGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SradGeometry, MatchesReferenceOnGpm)
{
    const auto [w, h, iters] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    SradParams p;
    p.width = static_cast<std::uint32_t>(w);
    p.height = static_cast<std::uint32_t>(h);
    p.iterations = static_cast<std::uint32_t>(iters);
    GpSrad srad(m, p);
    EXPECT_TRUE(srad.run().verified) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SradGeometry,
    ::testing::Values(std::make_tuple(4, 4, 1),    // minimum image
                      std::make_tuple(37, 19, 2),  // odd dims
                      std::make_tuple(128, 5, 3),  // extreme aspect
                      std::make_tuple(64, 64, 8)));

class PsGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PsGeometry, MatchesReferenceOnGpm)
{
    const auto [blocks, tpb, elems] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    PsParams p;
    p.blocks = static_cast<std::uint32_t>(blocks);
    p.block_threads = static_cast<std::uint32_t>(tpb);
    p.elems_per_thread = static_cast<std::uint32_t>(elems);
    GpPrefixSum ps(m, p);
    ASSERT_TRUE(ps.run().verified);
    // Exhaustive check against the host scan.
    const std::vector<std::uint64_t> ref = ps.referencePrefix();
    for (std::uint64_t i = 0; i < ref.size(); i += 7)
        ASSERT_EQ(m.pool().load<std::uint64_t>(
                      m.pool().region("ps.out").offset + i * 8),
                  ref[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsGeometry,
    ::testing::Values(std::make_tuple(1, 32, 1),    // single warp
                      std::make_tuple(3, 64, 5),    // odd everything
                      std::make_tuple(16, 128, 2),
                      std::make_tuple(2, 256, 16)));

TEST(IterativeEdge, ScheduleWithoutAnyCheckpointRestartsFromZero)
{
    // Crash before the first checkpoint: recovery must re-init and
    // recompute everything, still converging to the baseline.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 3);
    CfdApp app{CfdParams{}};
    IterativeParams sched;
    sched.iterations = 6;
    sched.checkpoint_every = 100;  // never fires before the crash
    const WorkloadResult r =
        app.runWithCrashRestore(m, sched, /*crash_iter=*/4, false,
                                0.2);
    EXPECT_TRUE(r.verified);
}

TEST(IterativeEdge, CheckpointEveryIteration)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 4);
    DnnApp app{DnnParams{}};
    IterativeParams sched;
    sched.iterations = 6;
    sched.checkpoint_every = 1;
    const WorkloadResult r =
        app.runWithCrashRestore(m, sched, 5, true, 0.5);
    EXPECT_TRUE(r.verified);
}

TEST(KvsEdge, CrashInFirstAndLastBatch)
{
    SimConfig cfg;
    GpKvsParams p;
    p.n_sets = 1u << 10;
    p.batch_ops = 512;
    p.batches = 3;
    for (const std::uint32_t crash_batch : {0u, 2u}) {
        Machine m(cfg, PlatformKind::Gpm, 64_MiB, crash_batch + 5);
        GpKvs kvs(m, p);
        EXPECT_TRUE(kvs.runWithCrash(crash_batch, 0.7, 0.4).verified)
            << "crash batch " << crash_batch;
    }
}

TEST(KvsEdge, EadrPlatformRecoversToo)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::GpmEadr, 64_MiB, 6);
    GpKvsParams p;
    p.n_sets = 1u << 10;
    p.batch_ops = 512;
    p.batches = 2;
    GpKvs kvs(m, p);
    // Under eADR nothing unpersisted is lost, but a torn batch must
    // still be rolled back by the log.
    EXPECT_TRUE(kvs.runWithCrash(1, 0.5, 0.0).verified);
}

} // namespace
} // namespace gpm
