/**
 * @file
 * Deeper tests of the CPU PM KVS engines' internals: LSM memtable
 * spills, WAL truncation, recovery-by-replay after losing the
 * memtable, and the media traffic each design generates (the
 * structural terms behind Fig 1a).
 */
#include <gtest/gtest.h>

#include "cpubaseline/cpu_kvs.hpp"

namespace gpm {
namespace {

CpuKvsParams
tiny(std::uint32_t memtable_ops)
{
    CpuKvsParams p;
    p.n_sets = 1u << 10;
    p.batch_ops = 512;
    p.batches = 2;
    p.memtable_ops = memtable_ops;
    return p;
}

TEST(CpuKvsInternals, LsmSpillsAndStillServesLookups)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    // Spill threshold far below the op count: multiple spills happen.
    CpuPmKvs kvs(m, CpuKvsDesign::LsmWal, tiny(128));
    const WorkloadResult r = kvs.run();
    EXPECT_TRUE(r.verified);
    // All committed keys are found whether they sit in the memtable
    // or in spilled runs (crashAndRecover checks every key).
    EXPECT_TRUE(kvs.crashAndRecover(0.0));
}

TEST(CpuKvsInternals, WalReplayRebuildsTheMemtable)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB, 17);
    // Huge threshold: nothing spills, recovery rests on WAL replay.
    CpuPmKvs kvs(m, CpuKvsDesign::LsmWal, tiny(1u << 20));
    ASSERT_TRUE(kvs.run().verified);
    for (const double survive : {0.0, 0.5, 1.0})
        EXPECT_TRUE(kvs.crashAndRecover(survive)) << survive;
}

TEST(CpuKvsInternals, HashDesignIsPerOpDurable)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    CpuPmKvs kvs(m, CpuKvsDesign::HashDirect, tiny(64));
    ASSERT_TRUE(kvs.run().verified);
    // Every SET flushed + fenced: nothing pending to lose.
    EXPECT_EQ(m.pool().pendingExtents(), 0u);
    EXPECT_TRUE(kvs.crashAndRecover(0.0));
}

TEST(CpuKvsInternals, MatrixDesignWritesLessThanLsm)
{
    // MatrixKV's raison d'etre: lower compaction write amplification.
    SimConfig cfg;
    Machine lsm_m(cfg, PlatformKind::CpuOnly, 64_MiB);
    Machine mtx_m(cfg, PlatformKind::CpuOnly, 64_MiB);
    CpuPmKvs lsm(lsm_m, CpuKvsDesign::LsmWal, tiny(128));
    CpuPmKvs mtx(mtx_m, CpuKvsDesign::MatrixLsm, tiny(128));
    const WorkloadResult rl = lsm.run();
    const WorkloadResult rm = mtx.run();
    EXPECT_GT(rl.op_ns, rm.op_ns);  // compaction costs time
}

TEST(CpuKvsInternals, RejectsNonCpuPlatforms)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    EXPECT_THROW(CpuPmKvs(m, CpuKvsDesign::HashDirect, tiny(64)),
                 FatalError);
}

} // namespace
} // namespace gpm
