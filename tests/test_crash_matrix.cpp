/**
 * @file
 * Crash-matrix torture tests: a bounded deterministic sweep of crash
 * points x eviction seeds x persist domains over every registered
 * workload invariant, byte-identical reproducibility of same-seed
 * sweeps, the crash-point grammar, and the exact persist-boundary
 * instants of GpmLog::insert's tail bump and GpmCheckpoint's
 * copy-then-flip protocol.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crashtest/torture_runner.hpp"
#include "gpm/gpm_checkpoint.hpp"
#include "gpm/gpm_log.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"

namespace gpm {
namespace {

// ---- scheduler ---------------------------------------------------------

TEST(CrashScheduler, DefaultGridMixesFractionsAndBoundaries)
{
    const std::vector<CrashSpec> specs =
        CrashScheduler::enumerate(CrashGrid::defaults());
    EXPECT_EQ(specs.size(), 8u);

    std::set<std::string> labels;
    bool frac = false, before = false, after = false, store = false;
    for (const CrashSpec &s : specs) {
        EXPECT_TRUE(labels.insert(s.label()).second)
            << "duplicate spec " << s.label();
        frac |= s.kind == CrashSpec::Kind::Fraction;
        before |= s.kind == CrashSpec::Kind::BeforeFence;
        after |= s.kind == CrashSpec::Kind::AfterFence;
        store |= s.kind == CrashSpec::Kind::AfterStore;
    }
    EXPECT_TRUE(frac && before && after && store);
}

TEST(CrashScheduler, ParseRoundTripsTheGrammar)
{
    for (const char *tok : {"frac:0.50", "before-fence:3",
                            "after-fence:12", "after-store:7"}) {
        EXPECT_EQ(CrashScheduler::parse(tok).label(), tok);
    }
    EXPECT_EQ(CrashScheduler::parseList("frac:0.25,after-store:1")
                  .size(),
              2u);

    for (const char *bad : {"frac", "frac:1.5", "frac:x",
                            "before-fence:0", "after-fence:",
                            "mid-kernel:3", ""}) {
        EXPECT_THROW(CrashScheduler::parse(bad), FatalError)
            << "accepted '" << bad << "'";
    }
}

TEST(CrashScheduler, MaterializeResolvesFractionsAgainstTheKernel)
{
    CrashSpec s{CrashSpec::Kind::Fraction, 0.5, 0};
    const CrashPoint p = s.materialize(1000);
    EXPECT_EQ(p.trigger, CrashPoint::Trigger::ThreadPhases);
    EXPECT_EQ(p.count, 500u);

    CrashSpec f{CrashSpec::Kind::BeforeFence, 0.0, 3};
    EXPECT_EQ(f.materialize(1000).trigger,
              CrashPoint::Trigger::BeforeFence);
    EXPECT_EQ(f.materialize(1000).count, 3u);
}

// ---- the bounded CI matrix ---------------------------------------------

TortureConfig
boundedConfig()
{
    TortureConfig cfg;
    // All five registered workloads, all three persist domains.
    cfg.specs = CrashScheduler::parseList(
        "frac:0.25,frac:0.75,before-fence:1,after-store:2");
    cfg.seeds = {1, 2, 3, 4, 5};
    cfg.survive_probs = {0.5};
    return cfg;
}

TEST(CrashMatrix, BoundedMatrixHasNoViolations)
{
    TortureConfig cfg = boundedConfig();
    const TortureReport report = TortureRunner::run(cfg);

    // >= 4 workloads x 3 domains x (fraction + boundary points) x
    // >= 5 eviction seeds, and at least 200 scenarios total.
    cfg.applyDefaults();
    EXPECT_GE(cfg.workloads.size(), 4u);
    EXPECT_EQ(cfg.domains.size(), 3u);
    EXPECT_GE(cfg.seeds.size(), 5u);
    ASSERT_EQ(report.results.size(), cfg.scenarioCount());
    EXPECT_GE(report.results.size(), 200u);

    for (const TortureResult &r : report.results) {
        EXPECT_NE(r.cls, OutcomeClass::Violation)
            << r.key() << ": " << r.detail;
    }
    EXPECT_EQ(report.violations(), 0u);

    // The sweep must actually exercise the machinery: crashes fire,
    // partial line survival happens, and the DDIO trap shows up under
    // llc-volatile (and only there).
    std::size_t fired = 0, survivors = 0;
    for (const TortureResult &r : report.results) {
        fired += r.outcome.fired;
        survivors += r.outcome.crash_survivors > 0;
        if (r.cls == OutcomeClass::DdioTrap) {
            EXPECT_EQ(r.scenario.domain, PersistDomain::LlcVolatile);
        }
    }
    EXPECT_GT(fired, 0u);
    EXPECT_GT(survivors, 0u);
    EXPECT_GT(report.countOf(OutcomeClass::DdioTrap), 0u);
    EXPECT_GT(report.countOf(OutcomeClass::StrictOk), 0u);
}

TEST(CrashMatrix, SameConfigReproducesByteIdenticalOutcomes)
{
    TortureConfig cfg;
    cfg.workloads = {"kvs", "prefix-sum"};
    cfg.specs = CrashScheduler::parseList("frac:0.50,after-fence:1");
    cfg.seeds = {7, 8};
    cfg.survive_probs = {0.5};

    const TortureReport a = TortureRunner::run(cfg);
    const TortureReport b = TortureRunner::run(cfg);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].key(), b.results[i].key());
        EXPECT_EQ(a.results[i].outcome.state_hash,
                  b.results[i].outcome.state_hash)
            << a.results[i].key();
        EXPECT_EQ(a.results[i].cls, b.results[i].cls);
    }
    EXPECT_EQ(a.signature(), b.signature());
}

TEST(CrashMatrix, RandomOrdinalsMatchAcrossExecutorWidths)
{
    // Property test for the parallel crash-armed engine (DESIGN.md
    // decision #8): randomized (seeded) crash ordinals swept over the
    // bounded matrix shape at in-scenario width 4 must reproduce the
    // width-1 classification, outcome and signature bit for bit.
    Rng rng(909);
    TortureConfig cfg;
    for (int i = 0; i < 4; ++i) {
        CrashSpec s;
        switch (i) {
          case 0:
            s.kind = CrashSpec::Kind::Fraction;
            // Two-decimal fractions, matching the label grammar.
            s.fraction =
                static_cast<double>(1 + rng.next() % 99) / 100.0;
            break;
          case 1:
            s.kind = CrashSpec::Kind::BeforeFence;
            s.count = 1 + rng.next() % 64;
            break;
          case 2:
            s.kind = CrashSpec::Kind::AfterFence;
            s.count = 1 + rng.next() % 64;
            break;
          default:
            s.kind = CrashSpec::Kind::AfterStore;
            s.count = 1 + rng.next() % 256;
            break;
        }
        cfg.specs.push_back(s);
    }
    cfg.seeds = {21, 22, 23, 24, 25};
    cfg.survive_probs = {0.5};

    TortureConfig seq = cfg;
    seq.exec_workers = 1;
    TortureConfig par = cfg;
    par.exec_workers = 4;

    const TortureReport a = TortureRunner::run(seq);
    const TortureReport b = TortureRunner::run(par);
    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_GE(a.results.size(), 300u);
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].key(), b.results[i].key());
        EXPECT_EQ(a.results[i].cls, b.results[i].cls)
            << a.results[i].key();
        EXPECT_EQ(a.results[i].outcome.fired,
                  b.results[i].outcome.fired)
            << a.results[i].key();
        EXPECT_EQ(a.results[i].outcome.state_hash,
                  b.results[i].outcome.state_hash)
            << a.results[i].key();
        EXPECT_NE(a.results[i].cls, OutcomeClass::Violation)
            << a.results[i].key() << ": " << a.results[i].detail;
    }
    EXPECT_EQ(a.signature(), b.signature());
}

TEST(CrashMatrix, ScaleGridIsTheDocumentedShape)
{
    // gpmtorture --scale sweeps CrashGrid::fine() x 12 seeds: 30
    // specs x 5 workloads x 3 domains x 12 seeds x 2 survival
    // probabilities = 10800 scenarios, the 10k+ standing oracle.
    const std::vector<CrashSpec> specs =
        CrashScheduler::enumerate(CrashGrid::fine());
    EXPECT_EQ(specs.size(), 30u);
    std::set<std::string> labels;
    for (const CrashSpec &s : specs)
        EXPECT_TRUE(labels.insert(s.label()).second)
            << "duplicate spec " << s.label();

    TortureConfig cfg;
    cfg.specs = specs;
    for (std::uint64_t s = 1; s <= 12; ++s)
        cfg.seeds.push_back(s);
    cfg.applyDefaults();
    EXPECT_EQ(cfg.scenarioCount(), 10800u);
}

TEST(CrashMatrix, EvictionSeedsChangeSurvivalNotCorrectness)
{
    // Sweep eviction seeds in both Gpm-platform domains. Under
    // mc-durable every store is fenced durable, so recovery must be
    // strict whatever survives; under llc-volatile everything since
    // the last drain is pending, so the per-128 B survival coin flips
    // actually differ from seed to seed (the axis is live).
    TortureConfig cfg;
    cfg.workloads = {"kvs"};
    cfg.domains = {PersistDomain::McDurable,
                   PersistDomain::LlcVolatile};
    cfg.specs = CrashScheduler::parseList("frac:0.50");
    cfg.seeds = {11, 12, 13, 14, 15, 16, 17, 18};
    cfg.survive_probs = {0.5};
    const TortureReport report = TortureRunner::run(cfg);
    EXPECT_EQ(report.violations(), 0u);

    std::set<std::uint64_t> survivor_counts;
    for (const TortureResult &r : report.results) {
        if (r.scenario.domain == PersistDomain::McDurable)
            EXPECT_TRUE(r.outcome.strict_ok) << r.key();
        else
            survivor_counts.insert(r.outcome.crash_survivors);
    }
    // The seed axis is live: survival patterns differ across seeds.
    EXPECT_GT(survivor_counts.size(), 1u);
}

TEST(CrashMatrix, SimperfCellsAreBitIdenticalAcrossSweepWidths)
{
    // simperf's fig9-cells stage asserts exact ops equality across
    // widths; this is the same contract on every modelled field, on
    // the two cheapest cells.
    using namespace gpm::bench;
    const std::vector<BenchCell> cells = {
        {Bench::PrefixSum, PlatformKind::Gpm, 1},
        {Bench::Srad, PlatformKind::Gpm, 1},
    };
    SimConfig cfg;
    const std::vector<WorkloadResult> a = runBenchCells(cells, cfg, 1);
    const std::vector<WorkloadResult> b = runBenchCells(cells, cfg, 4);
    ASSERT_EQ(a.size(), cells.size());
    ASSERT_EQ(b.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(a[i].supported, b[i].supported) << i;
        EXPECT_EQ(a[i].op_ns, b[i].op_ns) << i;
        EXPECT_EQ(a[i].persist_ns, b[i].persist_ns) << i;
        EXPECT_EQ(a[i].recovery_ns, b[i].recovery_ns) << i;
        EXPECT_EQ(a[i].persisted_payload, b[i].persisted_payload) << i;
        EXPECT_EQ(a[i].pcie_write_bytes, b[i].pcie_write_bytes) << i;
        EXPECT_EQ(a[i].ops_done, b[i].ops_done) << i;
        EXPECT_EQ(a[i].verified, b[i].verified) << i;
    }
}

TEST(CrashMatrix, BoundaryEventsFireAndRecover)
{
    const DomainSetup setup =
        domainSetupFor(PersistDomain::McDurable);
    const auto inv = makeInvariant("kvs");
    for (const char *tok :
         {"before-fence:1", "after-fence:1", "after-store:1"}) {
        const CrashPoint p = CrashScheduler::parse(tok).materialize(
            inv->doomedThreadPhases());
        const TortureOutcome o = inv->run(setup, p, 3, 0.0);
        EXPECT_TRUE(o.error.empty()) << tok << ": " << o.error;
        EXPECT_TRUE(o.fired) << tok;
        EXPECT_TRUE(o.strict_ok) << tok;
        EXPECT_EQ(o.crashes, 1u) << tok;
    }
}

// ---- GpmLog::insert tail-bump boundary ---------------------------------

struct LogEntry {
    std::uint64_t a = 0, b = 0;
};

/** Run one 32-thread insert kernel armed with @p point. */
GpmLog
crashInsert(Machine &m, const CrashPoint &point)
{
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "log", sizeof(LogEntry), 2, 1,
                                   32);
    KernelDesc k;
    k.name = "crashing_insert";
    k.blocks = 1;
    k.block_threads = 32;
    k.crash = point;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const LogEntry e{ctx.globalId() + 1, ~ctx.globalId()};
        log.insert(ctx, &e, sizeof(e));
    });
    EXPECT_THROW(m.runKernel(k), KernelCrashed);
    m.pool().crash(/*survive_prob=*/0.0);
    return GpmLog::open(m, "log");
}

TEST(GpmLogBoundary, MidTailBumpCrashLeavesSentinelUnset)
{
    // insert = chunk stores, fence, tail store, fence. Dying just
    // before the second fence is the mid-tail-bump instant: the tail
    // store is issued but never persisted, so recovery must see an
    // empty per-thread log.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 5);
    GpmLog log = crashInsert(m, CrashPoint::beforeFence(2));
    for (std::uint64_t t = 0; t < 32; ++t)
        EXPECT_EQ(log.tailOf(t), 0u) << "thread " << t;
}

TEST(GpmLogBoundary, CrashAfterTailFencePreservesEntry)
{
    // Just after the second fence the tail is durable — and HCL's
    // ordering guarantees the entry behind it is complete.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 5);
    GpmLog log = crashInsert(m, CrashPoint::afterFence(2));
    EXPECT_EQ(log.tailOf(0), 1u);
    LogEntry e;
    log.readEntryHost(0, 0, &e, sizeof(e));
    EXPECT_EQ(e.a, 1u);
    EXPECT_EQ(e.b, ~std::uint64_t(0));
    for (std::uint64_t t = 1; t < 32; ++t)
        EXPECT_EQ(log.tailOf(t), 0u) << "thread " << t;
}

// ---- GpmCheckpoint copy/flip boundary ----------------------------------

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t salt)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i * 31 + salt);
    return v;
}

TEST(CheckpointBoundary, CrashBetweenCopyAndFlipKeepsOldCopy)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 9);
    gpmPersistBegin(m);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 4096, 4, 1);
    std::vector<std::uint8_t> data = pattern(4000, 1);
    cp.registerData(0, data.data(), data.size());
    cp.checkpoint(0);
    const std::uint32_t valid_before = cp.validIndex(0);
    const std::uint32_t seq_before = cp.sequence(0);

    // The copy completed and persisted; the flip never started.
    // (Refill in place: the registration pins data.data().)
    const std::vector<std::uint8_t> next = pattern(4000, 2);
    std::copy(next.begin(), next.end(), data.begin());
    cp.armCrashNextCheckpoint(CrashPoint::afterThreadPhases(0),
                              /*in_flip=*/true);
    EXPECT_THROW(cp.checkpoint(0), KernelCrashed);
    m.pool().crash(/*survive_prob=*/0.5);

    GpmCheckpoint reopened = GpmCheckpoint::open(m, "cp");
    EXPECT_EQ(reopened.validIndex(0), valid_before);
    EXPECT_EQ(reopened.sequence(0), seq_before);
    std::vector<std::uint8_t> out(4000, 0);
    reopened.registerData(0, out.data(), out.size());
    reopened.restore(0);
    EXPECT_EQ(out, pattern(4000, 1));
}

TEST(CheckpointBoundary, FlipStoreWithoutPersistDoesNotCommit)
{
    // Die after the flip kernel's first PM store but before its
    // fence: the new valid index is issued yet not durable, so with
    // zero line survival the old copy must still win.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 9);
    gpmPersistBegin(m);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 4096, 4, 1);
    std::vector<std::uint8_t> data = pattern(4000, 1);
    cp.registerData(0, data.data(), data.size());
    cp.checkpoint(0);
    const std::uint32_t valid_before = cp.validIndex(0);

    const std::vector<std::uint8_t> next = pattern(4000, 2);
    std::copy(next.begin(), next.end(), data.begin());
    cp.armCrashNextCheckpoint(CrashPoint::afterPmStore(1),
                              /*in_flip=*/true);
    EXPECT_THROW(cp.checkpoint(0), KernelCrashed);
    m.pool().crash(/*survive_prob=*/0.0);

    GpmCheckpoint reopened = GpmCheckpoint::open(m, "cp");
    EXPECT_EQ(reopened.validIndex(0), valid_before);
    std::vector<std::uint8_t> out(4000, 0);
    reopened.registerData(0, out.data(), out.size());
    reopened.restore(0);
    EXPECT_EQ(out, pattern(4000, 1));
}

} // namespace
} // namespace gpm
