/**
 * @file
 * gpmcheck analyzer tests: each rule proved on a hand-built event
 * stream, plus the determinism contract — the clean-grid report is
 * bit-identical at any sweep worker count and with telemetry on or
 * off, and attaching a recorder never changes workload behavior.
 */
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "analysis/check_runner.hpp"
#include "crashtest/recovery_invariant.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {
namespace {

constexpr PersistDomain kMc = PersistDomain::McDurable;

const Finding *
findRule(const AnalysisReport &rep, RuleId rule)
{
    for (const Finding &f : rep.findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

TEST(Analyzer, UnpersistedStoreLostAtCrash)
{
    PmEventRecorder rec;
    rec.declareRange("r.data", 0, 256, 0, PmRangeKind::Data);
    rec.launchBegin("k", 1, 32, /*armed=*/true);
    rec.store(kMc, 7, 0, 64);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::UnpersistedStore);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "r.data");
    EXPECT_EQ(f->kernel, "k");
    EXPECT_EQ(f->witness_spec, "after-store:1");
    EXPECT_NE(f->detail.find("lost at crash"), std::string::npos);
}

TEST(Analyzer, UnpersistedStoreIsInfoUnderLlcVolatile)
{
    PmEventRecorder rec;
    rec.declareRange("r.data", 0, 256, 0, PmRangeKind::Data);
    rec.launchBegin("k", 1, 32, true);
    rec.store(PersistDomain::LlcVolatile, 7, 0, 64);
    // The DDIO trap: the fence orders but persists nothing.
    rec.fence(PersistDomain::LlcVolatile, 7, 0);
    rec.launchEnd();
    rec.crash(PersistDomain::LlcVolatile, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::UnpersistedStore);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Info);
    EXPECT_EQ(rep.countAtLeast(Severity::Warn), 0u);
}

TEST(Analyzer, EpochOrderOutOfOrderCommit)
{
    PmEventRecorder rec;
    rec.declareRange("r.data", 0, 128, 0, PmRangeKind::Data);
    rec.declareRange("r.meta", 128, 8, 0, PmRangeKind::Commit);
    rec.declareOrder("r.data", "r.meta", /*strict=*/false);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 1, 0, 64);    // data, pending
    rec.store(kMc, 2, 128, 8);   // commit record
    rec.fence(kMc, 2, 8);        // commit durable first (epoch 1)
    rec.fence(kMc, 1, 64);       // data second (epoch 2)
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "r.meta");
    EXPECT_NE(f->detail.find("out-of-order"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "after-fence:1");
    EXPECT_EQ(f->witness_survive, 0.0);
}

TEST(Analyzer, EpochOrderStrictFlagsSameEpochSeal)
{
    PmEventRecorder rec;
    rec.declareRange("r.entry", 0, 512, 0, PmRangeKind::Data);
    rec.declareRange("r.tail", 512, 8, 0, PmRangeKind::Commit);
    rec.declareOrder("r.entry", "r.tail", /*strict=*/true);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 1, 0, 512);
    rec.store(kMc, 1, 512, 8);
    rec.fence(kMc, 1, 520);  // one fence seals entry + tail
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->detail.find("same-epoch"), std::string::npos);
    // Witness: tear the merged epoch just before the sealing fence.
    EXPECT_EQ(f->witness_spec, "before-fence:1");
    EXPECT_EQ(f->witness_survive, 0.5);
}

TEST(Analyzer, EpochOrderWeakRuleAllowsSameEpoch)
{
    PmEventRecorder rec;
    rec.declareRange("r.entry", 0, 512, 0, PmRangeKind::Data);
    rec.declareRange("r.tail", 512, 8, 0, PmRangeKind::Commit);
    rec.declareOrder("r.entry", "r.tail", /*strict=*/false);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 1, 0, 512);
    rec.store(kMc, 1, 512, 8);
    rec.fence(kMc, 1, 520);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    EXPECT_EQ(findRule(analyzePmTrace(rec), RuleId::EpochOrder),
              nullptr);
}

TEST(Analyzer, EpochOrderCommitBeforeData)
{
    PmEventRecorder rec;
    rec.declareRange("r.data", 0, 128, 0, PmRangeKind::Data);
    rec.declareRange("r.meta", 128, 8, 0, PmRangeKind::Commit);
    rec.declareOrder("r.data", "r.meta", /*strict=*/true);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 5, 128, 8);  // the flip, first
    rec.fence(kMc, 5, 8);       // durable before its data exists
    rec.store(kMc, 5, 0, 64);   // the data it claims
    rec.fence(kMc, 5, 64);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::EpochOrder);
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->detail.find("commit-before-data"), std::string::npos);
    EXPECT_EQ(f->witness_spec, "after-fence:1");
}

TEST(Analyzer, EpochOrderHoldsUnderEadr)
{
    // Same stream shape as the same-epoch seal, but under eADR every
    // store is durable on arrival in its own epoch — program order
    // is persist order, so even the strict rule passes.
    PmEventRecorder rec;
    rec.declareRange("r.entry", 0, 512, 0, PmRangeKind::Data);
    rec.declareRange("r.tail", 512, 8, 0, PmRangeKind::Commit);
    rec.declareOrder("r.entry", "r.tail", /*strict=*/true);
    rec.launchBegin("k", 1, 32, true);
    rec.store(PersistDomain::LlcDurable, 1, 0, 512);
    rec.store(PersistDomain::LlcDurable, 1, 512, 8);
    rec.launchEnd();
    rec.crash(PersistDomain::LlcDurable, 0.0, 520);

    const AnalysisReport rep = analyzePmTrace(rec);
    EXPECT_EQ(findRule(rep, RuleId::EpochOrder), nullptr);
    EXPECT_EQ(findRule(rep, RuleId::UnpersistedStore), nullptr);
}

TEST(Analyzer, TornUpdateAcrossEpochs)
{
    PmEventRecorder rec;
    rec.declareRange("r.slots", 0, 64, /*atomic_unit=*/16,
                     PmRangeKind::Data);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 3, 0, 8);  // key half of cell 0
    rec.fence(kMc, 3, 8);
    rec.store(kMc, 3, 8, 8);  // value half, later epoch
    rec.fence(kMc, 3, 8);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::TornUpdate);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Error);
    EXPECT_EQ(f->range, "r.slots");
    EXPECT_EQ(f->witness_spec, "after-fence:1");
}

TEST(Analyzer, TornUpdateQuietWhenCellSealsAtomically)
{
    PmEventRecorder rec;
    rec.declareRange("r.slots", 0, 64, 16, PmRangeKind::Data);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 3, 0, 8);
    rec.store(kMc, 3, 8, 8);
    rec.fence(kMc, 3, 16);  // both halves in one epoch
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    EXPECT_EQ(findRule(analyzePmTrace(rec), RuleId::TornUpdate),
              nullptr);
}

TEST(Analyzer, RedundantFenceAndFlushLints)
{
    PmEventRecorder rec;
    rec.launchBegin("k", 1, 32, false);
    rec.store(kMc, 2, 0, 64);
    rec.fence(kMc, 2, 64);  // useful
    rec.fence(kMc, 2, 0);   // drains nothing: lint
    rec.launchEnd();
    rec.flushRange(kMc, 0, 64, 0);  // already durable: lint

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *fence = findRule(rep, RuleId::RedundantFence);
    ASSERT_NE(fence, nullptr);
    EXPECT_EQ(fence->severity, Severity::Info);
    EXPECT_EQ(fence->count, 1u);
    const Finding *flush = findRule(rep, RuleId::RedundantFlush);
    ASSERT_NE(flush, nullptr);
    EXPECT_EQ(flush->severity, Severity::Warn);
}

TEST(Analyzer, RedundantFlushNotFlaggedUnderEadr)
{
    // Under eADR every flush is a no-op by design; flagging them
    // would indict the platform, not the workload.
    PmEventRecorder rec;
    rec.flushRange(PersistDomain::LlcDurable, 0, 64, 0);
    EXPECT_EQ(findRule(analyzePmTrace(rec), RuleId::RedundantFlush),
              nullptr);
}

TEST(Analyzer, CrashUnreachableRange)
{
    PmEventRecorder rec;
    rec.declareRange("r.shadow", 0, 128, 0, PmRangeKind::Commit);
    // Host writes it durably, but no crash-armed launch ever does.
    rec.store(kMc, OwnerId(1) << 62, 0, 8);
    rec.flushRange(kMc, 0, 8, 8);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 1, 512, 8);
    rec.fence(kMc, 1, 8);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::CrashUnreachable);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Info);
    EXPECT_EQ(f->range, "r.shadow");
}

TEST(Analyzer, FindingsAggregatePerRuleRangeKernel)
{
    PmEventRecorder rec;
    rec.declareRange("r.data", 0, 256, 0, PmRangeKind::Data);
    rec.launchBegin("k", 1, 32, true);
    rec.store(kMc, 1, 0, 8);
    rec.store(kMc, 2, 8, 8);
    rec.store(kMc, 3, 16, 8);
    rec.launchEnd();
    rec.crash(kMc, 0.0, 0);

    const AnalysisReport rep = analyzePmTrace(rec);
    const Finding *f = findRule(rep, RuleId::UnpersistedStore);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->count, 3u);
    // One row, not three.
    std::size_t rows = 0;
    for (const Finding &x : rep.findings)
        if (x.rule == RuleId::UnpersistedStore)
            ++rows;
    EXPECT_EQ(rows, 1u);
}

// ---- determinism contract ---------------------------------------------

TEST(CheckRunner, ReportIsIdenticalAtAnyJobCount)
{
    std::uint64_t ref = 0;
    for (const int jobs : {1, 2, 4, 8}) {
        CheckConfig cfg;
        cfg.jobs = jobs;
        const CheckReport rep = runCheck(cfg);
        ASSERT_EQ(rep.cells.size(), 15u) << "5 workloads x 3 domains";
        for (const CheckCell &c : rep.cells)
            EXPECT_EQ(c.error, "") << c.scenario.key();
        if (jobs == 1)
            ref = rep.signature();
        else
            EXPECT_EQ(rep.signature(), ref) << "--jobs " << jobs;
    }
}

TEST(CheckRunner, ReportIsIdenticalWithTelemetryAttached)
{
    CheckConfig cfg;
    cfg.workloads = {"kvs", "prefix-sum"};
    cfg.jobs = 2;
    const std::uint64_t bare = runCheck(cfg).signature();
    telemetry::ScopedSession session;
    EXPECT_EQ(runCheck(cfg).signature(), bare);
}

TEST(CheckRunner, AttachedRecorderDoesNotChangeOutcomes)
{
    // The hooks must be pure observation: same strict verdict and
    // durable-state hash with and without a recorder attached.
    for (const std::string &name : registeredInvariants()) {
        const CrashPoint never = CrashPoint::afterThreadPhases(
            std::numeric_limits<std::uint64_t>::max());
        DomainSetup plain = domainSetupFor(kMc);
        const TortureOutcome a =
            makeInvariant(name)->run(plain, never, 1, 0.0);

        PmEventRecorder rec;
        DomainSetup hooked = domainSetupFor(kMc);
        hooked.recorder = &rec;
        const TortureOutcome b =
            makeInvariant(name)->run(hooked, never, 1, 0.0);

        EXPECT_EQ(a.error, b.error) << name;
        EXPECT_EQ(a.strict_ok, b.strict_ok) << name;
        EXPECT_EQ(a.state_hash, b.state_hash) << name;
        EXPECT_FALSE(rec.events().empty()) << name;
    }
}

TEST(CheckRunner, CleanGridHasNoWarnOrErrorFindings)
{
    // The acceptance bar: every clean workload x domain cell analyzes
    // to zero findings at or above warn. Info-class notes (DDIO-trap
    // hazards under llc-volatile, host-only ranges) are expected.
    CheckConfig cfg;
    cfg.jobs = 4;
    const CheckReport rep = runCheck(cfg);
    for (const CheckCell &c : rep.cells) {
        EXPECT_EQ(c.error, "") << c.scenario.key();
        EXPECT_EQ(c.report.countAtLeast(Severity::Warn), 0u)
            << c.scenario.key();
    }
}

} // namespace
} // namespace gpm
