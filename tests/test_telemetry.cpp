/**
 * @file
 * Telemetry subsystem suite: JSON emission/validation, the metrics
 * registry, the trace timeline, and — most importantly — the
 * observer contract against the simulator itself:
 *
 *  - accounting identities: the counters a session collects must
 *    agree with the model's own observations (pm_line_bytes ==
 *    pm_line_txns * granule; per-launch NVM tier deltas sum to the
 *    media model's whole-run totals),
 *  - parallel equality: every modelled metric is bit-identical at
 *    1/4/8 executor workers (telemetry observes, never perturbs),
 *  - crash/recovery paths land on the timeline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"
#include "platform/machine.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {
namespace {

namespace tm = gpm::telemetry;

// ---- JSON writer / validator -------------------------------------------

TEST(TelemetryJson, WriterProducesValidNestedDocument)
{
    std::ostringstream os;
    {
        tm::JsonWriter w(os);
        w.beginObject();
        w.field("name", "quote\"back\\slash\nnewline");
        w.field("count", std::uint64_t(42));
        w.field("neg", -7);
        w.field("ratio", 0.25);
        w.field("on", true);
        w.key("list");
        w.beginArray();
        w.value(1);
        w.value("two");
        w.beginObject();
        w.field("nested", false);
        w.endObject();
        w.endArray();
        w.endObject();
        EXPECT_TRUE(w.complete());
    }
    std::string error;
    EXPECT_TRUE(tm::validateJson(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\\\"back\\\\slash\\n"), std::string::npos);
}

TEST(TelemetryJson, NumberPolicyDegradesNonFinite)
{
    EXPECT_EQ(tm::JsonWriter::number(0.0), "0");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(tm::validateJson(
        tm::JsonWriter::number(std::nan(""))));
    EXPECT_TRUE(tm::validateJson(tm::JsonWriter::number(inf)));
    EXPECT_TRUE(tm::validateJson(tm::JsonWriter::number(-inf)));
}

TEST(TelemetryJson, ValidatorRejectsMalformedDocuments)
{
    EXPECT_TRUE(tm::validateJson("{\"a\": [1, 2.5e3, true, null]}"));
    EXPECT_TRUE(tm::validateJson("  [ ]  "));
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{} trailing", "{'a': 1}",
          "01", "+1", "\"unterminated", "{\"a\" 1}", "nul"}) {
        std::string error;
        EXPECT_FALSE(tm::validateJson(bad, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(TelemetryJson, FileValidationProbesTopLevelKeys)
{
    const std::string path = "test_telemetry_probe.json";
    {
        std::ofstream os(path);
        os << "{\"schema\": \"gpm-metrics-v1\", \"counters\": {}}";
    }
    std::string error;
    EXPECT_TRUE(tm::validateJsonFile(path, {"schema", "counters"},
                                     &error))
        << error;
    EXPECT_FALSE(
        tm::validateJsonFile(path, {"schema", "traceEvents"}, &error));
    EXPECT_NE(error.find("traceEvents"), std::string::npos);
    EXPECT_FALSE(tm::validateJsonFile("does_not_exist.json", {}, &error));
    std::remove(path.c_str());
}

// ---- metrics registry ---------------------------------------------------

TEST(TelemetryMetrics, CountersGaugesHistograms)
{
    tm::Registry r;
    const auto id = r.counterId("exec.blocks");
    r.add(id, 5);
    r.add("exec.blocks", 2);          // same slot via name
    r.add("other.counter", 1);
    r.gaugeSet("g.set", 2.5);
    r.gaugeAdd("g.set", 0.5);
    r.gaugeAdd("g.sum", 1.25);
    r.observe("h.lat", 3.0);
    r.observe("h.lat", 900.0);
    r.observe("h.lat", 0.1);

    const tm::MetricsSnapshot s = r.snapshot();
    EXPECT_EQ(s.counter("exec.blocks"), 7u);
    EXPECT_EQ(s.counter("other.counter"), 1u);
    EXPECT_EQ(s.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(s.gauge("g.set"), 3.0);
    EXPECT_DOUBLE_EQ(s.gauge("g.sum"), 1.25);
    const auto &h = s.histograms.at("h.lat");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 903.1);
    EXPECT_DOUBLE_EQ(h.min, 0.1);
    EXPECT_DOUBLE_EQ(h.max, 900.0);

    std::ostringstream os;
    tm::JsonWriter w(os);
    s.writeJson(w);
    std::string error;
    EXPECT_TRUE(tm::validateJson(os.str(), &error)) << error;
}

TEST(TelemetryMetrics, HistogramBinsAreLog2)
{
    EXPECT_EQ(tm::HistogramData::binOf(-3.0), 0u);
    EXPECT_EQ(tm::HistogramData::binOf(0.5), 0u);
    EXPECT_EQ(tm::HistogramData::binOf(1.0), 1u);
    EXPECT_EQ(tm::HistogramData::binOf(1.9), 1u);
    EXPECT_EQ(tm::HistogramData::binOf(2.0), 2u);
    EXPECT_EQ(tm::HistogramData::binOf(3.9), 2u);
    EXPECT_EQ(tm::HistogramData::binOf(4.0), 3u);
    EXPECT_EQ(tm::HistogramData::binOf(1e300), 63u);
}

TEST(TelemetryMetrics, HistogramQuantilesDegenerateCases)
{
    tm::HistogramData empty;
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // One sample: every quantile is that sample.
    tm::HistogramData one;
    one.observe(37.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(one.p50(), 37.0);
    EXPECT_DOUBLE_EQ(one.p999(), 37.0);
    EXPECT_DOUBLE_EQ(one.quantile(1.0), 37.0);

    // Identical samples: ditto, regardless of count.
    tm::HistogramData same;
    for (int i = 0; i < 1000; ++i)
        same.observe(12.0);
    EXPECT_DOUBLE_EQ(same.p50(), 12.0);
    EXPECT_DOUBLE_EQ(same.p99(), 12.0);
}

TEST(TelemetryMetrics, HistogramQuantilesClampHostileInputs)
{
    // Empty histogram: every accessor, including the tails, is 0.
    tm::HistogramData empty;
    EXPECT_DOUBLE_EQ(empty.p50(), 0.0);
    EXPECT_DOUBLE_EQ(empty.p999(), 0.0);
    EXPECT_DOUBLE_EQ(empty.quantile(2.0), 0.0);

    // p999 of a one-bucket distribution: all 5000 samples land in
    // [4, 8); the tail estimate must stay inside the observed range,
    // not read past the populated bin.
    tm::HistogramData bucket;
    for (int i = 0; i < 5000; ++i)
        bucket.observe(5.0 + (i % 3));  // 5, 6, 7 share log2 bin 3
    EXPECT_GE(bucket.p999(), bucket.min);
    EXPECT_LE(bucket.p999(), bucket.max);
    EXPECT_GE(bucket.quantile(1.0), bucket.quantile(0.999));

    // Out-of-range and NaN q clamp instead of producing garbage.
    tm::HistogramData h;
    h.observe(10.0);
    h.observe(20.0);
    EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(42.0), h.quantile(1.0));
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(h.quantile(nan), h.quantile(0.0));
}

TEST(TelemetryMetrics, HistogramQuantilesInterpolateWithinOneBin)
{
    // Uniform 1..1000: the log2-histogram contract is within one bin
    // width (a factor of two) of the exact quantile, clamped to the
    // observed range.
    tm::HistogramData h;
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i));
    const struct {
        double q;
        double exact;
    } cases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
    for (const auto &c : cases) {
        const double est = h.quantile(c.q);
        EXPECT_GE(est, c.exact / 2.0) << "q " << c.q;
        EXPECT_LE(est, std::min(c.exact * 2.0, h.max)) << "q " << c.q;
    }
    // Quantiles are monotone in q and bounded by the observed range.
    EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
    EXPECT_LE(h.p50(), h.p90());
    EXPECT_LE(h.p90(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
    EXPECT_GE(h.quantile(0.0), h.min);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max);

    // Out-of-range q clamps rather than misbehaving.
    EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(1.5), h.max);
}

TEST(TelemetryMetrics, HotShardMergesAndClears)
{
    tm::Registry r;
    tm::HotShard shard;
    shard.add(tm::HotCounter::BlocksExecuted, 3);
    shard.add(tm::HotCounter::WarpFlushes, 2);
    shard.mergeInto(r);
    EXPECT_EQ(r.counter("exec.blocks_executed"), 3u);
    EXPECT_EQ(r.counter("exec.warp_flushes"), 2u);
    // mergeInto zeroed the shard: merging again adds nothing.
    shard.mergeInto(r);
    EXPECT_EQ(r.counter("exec.blocks_executed"), 3u);
    shard.add(tm::HotCounter::BlocksExecuted, 1);
    shard.clear();
    shard.mergeInto(r);
    EXPECT_EQ(r.counter("exec.blocks_executed"), 3u);
}

TEST(TelemetryMetrics, RegistryIsThreadSafe)
{
    tm::Registry r;
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&r, t] {
            for (int i = 0; i < 1000; ++i) {
                r.add("shared.counter", 1);
                r.add("t" + std::to_string(t), 1);
                r.observe("shared.hist", i);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    const tm::MetricsSnapshot s = r.snapshot();
    EXPECT_EQ(s.counter("shared.counter"), 4000u);
    EXPECT_EQ(s.counter("t0"), 1000u);
    EXPECT_EQ(s.histograms.at("shared.hist").count, 4000u);
}

// ---- trace timeline -----------------------------------------------------

TEST(TelemetryTrace, SpansAreInertWithoutSession)
{
    ASSERT_EQ(tm::Session::current(), nullptr);
    {
        tm::Span span("launch", "no-session");
        span.arg("k", std::uint64_t(1));
        EXPECT_FALSE(span.armed());
    }
    tm::count("nobody.home");
    tm::instant("launch", "nothing");
    // Nothing to observe: the calls must simply not crash or leak.
}

TEST(TelemetryTrace, RecordsSpansAndInstantsAcrossThreads)
{
    tm::ScopedSession session;
    {
        tm::Span span("scenario", "outer");
        span.arg("answer", std::uint64_t(42));
        span.arg("label", "va\"lue");
        std::vector<std::thread> pool;
        for (int t = 0; t < 3; ++t) {
            pool.emplace_back([] {
                tm::Span inner("block", "worker-span");
                tm::instant("log", "worker-marker");
            });
        }
        for (std::thread &t : pool)
            t.join();
    }
    const auto events = session->trace.collect();
    ASSERT_EQ(events.size(), 7u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);

    bool saw_outer = false;
    for (const auto &ev : events) {
        if (ev.name == "outer") {
            saw_outer = true;
            EXPECT_EQ(ev.ph, 'X');
            std::string error;
            EXPECT_TRUE(tm::validateJson(ev.args, &error)) << error;
            EXPECT_NE(ev.args.find("\"answer\""), std::string::npos);
        }
    }
    EXPECT_TRUE(saw_outer);

    // The span's wall time also lands in the <cat>.wall_us histogram.
    const tm::MetricsSnapshot s = session->metrics.snapshot();
    EXPECT_EQ(s.histograms.at("scenario.wall_us").count, 1u);
    EXPECT_EQ(s.histograms.at("block.wall_us").count, 3u);

    std::ostringstream os;
    tm::JsonWriter w(os);
    session->trace.writeJson(w);
    std::string error;
    EXPECT_TRUE(tm::validateJson(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

// ---- the observer contract against the simulator ------------------------

/** A small block-independent kernel: every thread stores 16 B to its
 *  own slot and fences; one warp's worth of threads per block. */
KernelDesc
storeKernel(std::uint32_t blocks, std::uint32_t threads)
{
    KernelDesc k;
    k.name = "telemetry_store";
    k.blocks = blocks;
    k.block_threads = threads;
    k.block_independent = true;
    k.phases.push_back([](ThreadCtx &ctx) {
        const std::uint64_t slot = ctx.globalId() * 64;
        std::uint8_t payload[16];
        std::memset(payload, 0xab, sizeof payload);
        ctx.pmWrite(slot, payload, sizeof payload);
        ctx.threadfenceSystem();
        ctx.work(10.0);
    });
    return k;
}

TEST(TelemetryObserver, LaunchCountersMatchStatsAndModelTotals)
{
    tm::ScopedSession session;
    LaunchStats stats;
    SimConfig cfg;
    {
        Machine m(cfg, PlatformKind::Gpm, 1_MiB);
        stats = m.runKernel(storeKernel(8, 32));
    }  // ~Machine records the observed NVM totals

    const tm::MetricsSnapshot s = session->metrics.snapshot();
    EXPECT_EQ(s.counter("sim.launches"), 1u);
    EXPECT_EQ(s.counter("sim.blocks"), stats.blocks);
    EXPECT_EQ(s.counter("sim.threads"), stats.threads);
    EXPECT_EQ(s.counter("sim.pm_payload_bytes"), stats.pm_payload_bytes);
    EXPECT_EQ(s.counter("sim.pm_line_txns"), stats.pm_line_txns);
    EXPECT_EQ(s.counter("sim.pm_line_bytes"), stats.pm_line_bytes);
    EXPECT_EQ(s.counter("sim.fences"), stats.fences);
    EXPECT_EQ(s.counter("exec.blocks_executed"), stats.blocks);

    // Identity 1: every coalesced line transaction moves exactly one
    // coalesce granule.
    EXPECT_EQ(s.counter("sim.pm_line_bytes"),
              s.counter("sim.pm_line_txns") * cfg.coalesce_bytes);
    EXPECT_EQ(s.counter("exec.coalesced_line_txns"),
              s.counter("sim.pm_line_txns"));

    // Identity 2: per-launch NVM tier deltas sum to the media model's
    // whole-run observation (all traffic flowed through launches).
    EXPECT_EQ(s.counter("nvm.launch_seq_aligned_bytes") +
                  s.counter("nvm.launch_seq_unaligned_bytes") +
                  s.counter("nvm.launch_random_bytes"),
              s.counter("nvm.observed_seq_aligned_bytes") +
                  s.counter("nvm.observed_seq_unaligned_bytes") +
                  s.counter("nvm.observed_random_bytes"));
}

/** Counters+gauges snapshot of one canonical bench cell at @p workers
 *  lanes, with host-dependent entries (wall-time histograms, replay
 *  bookkeeping) removed so widths can be compared exactly. */
std::pair<std::map<std::string, std::uint64_t>,
          std::map<std::string, double>>
modelledMetricsAt(int workers)
{
    tm::ScopedSession session;
    SimConfig cfg;
    cfg.exec_workers = workers;
    const WorkloadResult r =
        bench::runBench(bench::Bench::PrefixSum, PlatformKind::Gpm, cfg);
    EXPECT_TRUE(r.supported);
    EXPECT_TRUE(r.verified);
    tm::MetricsSnapshot s = session->metrics.snapshot();
    // Replay happens only on the parallel path; it duplicates block
    // bookkeeping, not modelled state.
    s.counters.erase("exec.blocks_replayed");
    return {s.counters, s.gauges};
}

TEST(TelemetryObserver, ModelledMetricsEqualAcrossWorkerWidths)
{
    const auto seq = modelledMetricsAt(1);
    for (const int workers : {4, 8}) {
        const auto par = modelledMetricsAt(workers);
        EXPECT_EQ(par.first, seq.first) << workers << " workers";
        EXPECT_EQ(par.second, seq.second) << workers << " workers";
    }
}

TEST(TelemetryObserver, CrashRecoveryLandsOnTimeline)
{
    tm::ScopedSession session;
    SimConfig cfg;
    const WorkloadResult r =
        bench::runBenchWithCrash(bench::Bench::Kvs, cfg);
    EXPECT_TRUE(r.verified);

    const tm::MetricsSnapshot s = session->metrics.snapshot();
    EXPECT_GE(s.counter("pool.crash_events"), 1u);
    EXPECT_GE(s.counter("recovery.invocations"), 1u);
    EXPECT_GT(s.counter("log.hcl_appends"), 0u);

    bool saw_crash = false, saw_recovery = false, saw_launch = false,
         saw_flush = false, saw_commit = false;
    for (const auto &ev : session->trace.collect()) {
        saw_crash |= std::strcmp(ev.cat, "crash") == 0;
        saw_recovery |= std::strcmp(ev.cat, "recovery") == 0;
        saw_launch |= std::strcmp(ev.cat, "launch") == 0;
        saw_flush |= std::strcmp(ev.cat, "flush") == 0;
        saw_commit |= std::strcmp(ev.cat, "line-commit") == 0;
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_recovery);
    EXPECT_TRUE(saw_launch);
    EXPECT_TRUE(saw_flush);
    EXPECT_TRUE(saw_commit);

    // A crashed launch must never reach the per-launch counters, so
    // the line identity survives the crash pass.
    EXPECT_EQ(s.counter("sim.pm_line_bytes"),
              s.counter("sim.pm_line_txns") * cfg.coalesce_bytes);
}

} // namespace
} // namespace gpm
