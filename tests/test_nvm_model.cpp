/**
 * @file
 * Unit + property tests for the Optane model: run formation, tier
 * classification (the three bandwidths of section 6.1), the multi-run
 * write-combining buffer, and timing math.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "memsim/nvm_model.hpp"

namespace gpm {
namespace {

SimConfig cfg;

TEST(NvmModel, AlignedSequentialRunIsFastTier)
{
    NvmModel nvm(cfg);
    for (int i = 0; i < 64; ++i)
        nvm.recordWrite(1, i * 256, 256);
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 64u * 256);
    EXPECT_EQ(nvm.bytes().seq_unaligned, 0u);
    EXPECT_EQ(nvm.bytes().random, 0u);
}

TEST(NvmModel, UnalignedStartDemotesWholeRun)
{
    NvmModel nvm(cfg);
    for (int i = 0; i < 64; ++i)
        nvm.recordWrite(1, 64 + i * 256, 256);
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 0u);
    EXPECT_EQ(nvm.bytes().seq_unaligned, 64u * 256);
}

TEST(NvmModel, IsolatedWritesAreRandomAndRoundUpToXpline)
{
    NvmModel nvm(cfg);
    nvm.recordWrite(1, 0, 128);
    nvm.recordWrite(1, 1_MiB, 128);      // far away: new run
    nvm.recordWrite(1, 2_MiB, 16);
    nvm.recordWrite(1, 3_MiB, 300);      // spans two lines
    nvm.recordWrite(1, 4_MiB, 64);
    nvm.closeRuns();
    // Each isolated access costs whole 256 B internal lines.
    EXPECT_EQ(nvm.bytes().random, 256u + 256 + 256 + 512 + 256);
}

TEST(NvmModel, SubTwoLineRunsCountAsRandom)
{
    NvmModel nvm(cfg);
    nvm.recordWrite(1, 0, 128);
    nvm.recordWrite(1, 128, 128);  // contiguous, but only 256 B total
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().random, 256u);
    EXPECT_EQ(nvm.bytes().seq_aligned, 0u);
}

TEST(NvmModel, PartialTailLineIsUnalignedBytes)
{
    NvmModel nvm(cfg);
    for (int i = 0; i < 4; ++i)
        nvm.recordWrite(1, i * 128, 128);
    nvm.recordWrite(1, 512, 64);  // 576-byte aligned-start run
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 512u);
    EXPECT_EQ(nvm.bytes().seq_unaligned, 64u);
}

TEST(NvmModel, StreamsDoNotMergeAcrossWriters)
{
    NvmModel nvm(cfg);
    // Two writers covering one contiguous region half-and-half:
    // temporal interleaving defeats the XPLine buffer.
    for (int i = 0; i < 8; ++i) {
        nvm.recordWrite(1, i * 512, 256);
        nvm.recordWrite(2, i * 512 + 256, 256);
    }
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 0u);
    EXPECT_EQ(nvm.bytes().random, 16u * 256);
}

TEST(NvmModel, MultipleOpenRunsPerStream)
{
    NvmModel nvm(cfg);
    // One warp alternating between two destination arrays (SRAD's
    // image + coefficients): both runs must stay open and merge.
    for (int i = 0; i < 32; ++i) {
        nvm.recordWrite(7, 0 + i * 128, 128);
        nvm.recordWrite(7, 1_MiB + i * 128, 128);
    }
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 2u * 32 * 128);
    EXPECT_EQ(nvm.bytes().random, 0u);
}

TEST(NvmModel, OverlappingRewriteMergesIntoOpenRun)
{
    NvmModel nvm(cfg);
    // Appends that keep landing in the still-open line (conventional
    // log partitions).
    nvm.recordWrite(3, 0, 128);
    nvm.recordWrite(3, 0, 128);    // same line again
    nvm.recordWrite(3, 128, 128);
    nvm.recordWrite(3, 128, 128);
    nvm.recordWrite(3, 256, 128);
    nvm.recordWrite(3, 384, 128);
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().seq_aligned, 512u);
    EXPECT_EQ(nvm.bytes().random, 0u);
}

TEST(NvmModel, RecordRunClassifiesImmediately)
{
    NvmModel nvm(cfg);
    nvm.recordRun(0, 1_MiB, 1_MiB / 64);
    EXPECT_EQ(nvm.bytes().seq_aligned, 1_MiB);
    nvm.recordRun(64, 1024, 16);  // unaligned start
    EXPECT_EQ(nvm.bytes().seq_unaligned, 1024u);
}

TEST(NvmModel, RecordScatteredIsRandomTier)
{
    NvmModel nvm(cfg);
    nvm.recordScattered(4096, 64);
    EXPECT_EQ(nvm.bytes().random, 4096u);
    EXPECT_EQ(nvm.writeTxns(), 64u);
}

TEST(NvmModel, WriteTimeMatchesPaperBandwidths)
{
    NvmModel nvm(cfg);
    const NvmTierBytes b{1250, 313, 72};  // bytes chosen per tier
    // 1250 B at 12.5 B/ns + 313 at 3.13 + 72 at 0.72 = 300 ns.
    EXPECT_NEAR(nvm.writeTime(b), 300.0, 1e-6);
}

TEST(NvmModel, RandomBoostOnlyRelievesRandomTier)
{
    NvmModel nvm(cfg);
    const NvmTierBytes b{0, 0, 7200};
    EXPECT_NEAR(nvm.writeTime(b, 2.0), nvm.writeTime(b) / 2.0, 1e-9);
    const NvmTierBytes seq{12500, 0, 0};
    EXPECT_DOUBLE_EQ(nvm.writeTime(seq, 2.0), nvm.writeTime(seq));
}

TEST(NvmModel, ReadTimeHasLatencyAndBandwidthTerms)
{
    NvmModel nvm(cfg);
    EXPECT_DOUBLE_EQ(nvm.readTime(0), 0.0);
    EXPECT_NEAR(nvm.readTime(6600), cfg.nvm_read_latency_ns + 1000.0,
                1e-6);
}

TEST(NvmModel, ResetClearsEverything)
{
    NvmModel nvm(cfg);
    nvm.recordWrite(1, 0, 256);
    nvm.recordRead(100);
    nvm.reset();
    nvm.closeRuns();
    EXPECT_EQ(nvm.bytes().total(), 0u);
    EXPECT_EQ(nvm.readBytes(), 0u);
    EXPECT_EQ(nvm.writeTxns(), 0u);
}

/** Property: classification is exhaustive — every recorded byte lands
 *  in exactly one tier (at >= the payload, given RMW rounding). */
class NvmSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(NvmSweep, AllBytesClassified)
{
    Rng rng(1000 + GetParam());
    NvmModel nvm(cfg);
    std::uint64_t payload = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t stream = rng.below(8);
        const std::uint64_t addr = rng.below(1_MiB) * 64;
        const std::uint64_t size = 64 * (1 + rng.below(8));
        nvm.recordWrite(stream, addr, size);
        payload += size;
    }
    nvm.closeRuns();
    EXPECT_GE(nvm.bytes().total(), payload);
    EXPECT_EQ(nvm.writeTxns(), 2000u);
    // Monotonicity: more bytes => more time.
    EXPECT_GT(nvm.writeTime(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NvmSweep, ::testing::Range(0, 8));

} // namespace
} // namespace gpm
