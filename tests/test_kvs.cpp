/**
 * @file
 * gpKVS workload tests: functional correctness on every platform,
 * transactional crash recovery across eviction seeds and crash points.
 */
#include <gtest/gtest.h>

#include "workloads/kvs.hpp"

namespace gpm {
namespace {

GpKvsParams
smallParams()
{
    GpKvsParams p;
    p.n_sets = 1u << 10;
    p.batch_ops = 2048;
    p.batches = 3;
    return p;
}

TEST(GpKvs, GpmRunVerifies)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpKvs kvs(m, smallParams());
    const WorkloadResult r = kvs.run();
    EXPECT_TRUE(r.supported);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.op_ns, 0.0);
    EXPECT_GT(r.persisted_payload, 0u);
    EXPECT_EQ(r.ops_done, 3 * 2048);
}

TEST(GpKvs, LookupFindsInsertedKeys)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpKvsParams p = smallParams();
    GpKvs kvs(m, p);
    ASSERT_TRUE(kvs.run().verified);

    // Rebuild the expected final state and check lookups against it.
    std::vector<KvPair> mirror(std::uint64_t(p.n_sets) *
                               GpKvsParams::kWays);
    for (std::uint32_t b = 0; b < p.batches; ++b)
        kvs.applyBatchReference(mirror, b);
    std::uint64_t checked = 0;
    for (const KvPair &pair : mirror) {
        if (pair.key == 0)
            continue;
        std::uint64_t v = 0;
        EXPECT_TRUE(kvs.lookup(pair.key, v));
        EXPECT_EQ(v, pair.value);
        if (++checked == 64)
            break;
    }
    EXPECT_GT(checked, 0u);
}

TEST(GpKvs, GetsReturnCommittedValues)
{
    SimConfig cfg;
    GpKvsParams p = smallParams();
    p.get_ratio = 0.5;
    p.batches = 3;
    for (PlatformKind kind : {PlatformKind::Gpm, PlatformKind::CapMm}) {
        Machine m(cfg, kind, 64_MiB);
        GpKvs kvs(m, p);
        const WorkloadResult r = kvs.run();
        // verified covers the GET results against the in-order
        // reference execution (hits on batch-0 keys, misses on
        // random ones).
        EXPECT_TRUE(r.verified) << platformName(kind);
    }
}

TEST(GpKvs, GetResultHitsAndMisses)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpKvsParams p = smallParams();
    p.get_ratio = 0.4;
    p.batches = 2;
    GpKvs kvs(m, p);
    ASSERT_TRUE(kvs.run().verified);
    // With half the GETs aimed at batch-0 keys, some must hit...
    std::uint32_t hits = 0, total = 0;
    for (std::uint32_t i = 0; i < p.batch_ops; ++i) {
        ++total;
        hits += kvs.getResult(i) != 0;
    }
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, total);  // ...and the random ones must miss
}

TEST(GpKvs, CapPlatformsVerify)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::CapEadr}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpKvs kvs(m, smallParams());
        const WorkloadResult r = kvs.run();
        EXPECT_TRUE(r.verified) << platformName(kind);
        EXPECT_GT(r.op_ns, 0.0) << platformName(kind);
    }
}

TEST(GpKvs, GpufsUnsupported)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpufs, 64_MiB);
    GpKvs kvs(m, smallParams());
    EXPECT_FALSE(kvs.run().supported);
}

TEST(GpKvs, NdpVerifiesAndIsDurableAfterFlush)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::GpmNdp, 64_MiB);
    GpKvsParams p = smallParams();
    GpKvs kvs(m, p);
    EXPECT_TRUE(kvs.run().verified);
    // After the CPU flush pass everything pending must be durable.
    EXPECT_EQ(m.pool().pendingExtents(), 0u);
}

/** Params where the store dwarfs per-batch updates, as in Table 1. */
GpKvsParams
sparseParams()
{
    GpKvsParams p;
    p.n_sets = 1u << 14;  // 2 MiB store
    p.batch_ops = 4096;
    p.batches = 2;
    return p;
}

TEST(GpKvs, WriteAmplificationShapeCapVsGpm)
{
    SimConfig cfg;
    Machine gpm_m(cfg, PlatformKind::Gpm, 64_MiB);
    Machine cap_m(cfg, PlatformKind::CapMm, 64_MiB);
    GpKvsParams p = sparseParams();
    GpKvs a(gpm_m, p), b(cap_m, p);
    const WorkloadResult rg = a.run(), rc = b.run();
    ASSERT_GT(rg.persisted_payload, 0u);
    // CAP persists the whole store per batch; GPM only the updates.
    EXPECT_GT(rc.persisted_payload, 5 * rg.persisted_payload);
}

TEST(GpKvs, GpmFasterThanCap)
{
    SimConfig cfg;
    Machine gpm_m(cfg, PlatformKind::Gpm, 64_MiB);
    Machine capfs_m(cfg, PlatformKind::CapFs, 64_MiB);
    GpKvsParams p = sparseParams();
    GpKvs a(gpm_m, p), b(capfs_m, p);
    EXPECT_LT(a.run().op_ns, b.run().op_ns);
}

class GpKvsCrash : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GpKvsCrash, RecoversToPreBatchState)
{
    const auto [frac_step, seed] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(seed));
    GpKvsParams p = smallParams();
    p.seed = 1000 + static_cast<std::uint64_t>(seed);
    GpKvs kvs(m, p);
    const double frac = 0.1 + 0.2 * frac_step;
    const double survive = (seed % 3) * 0.4;  // 0, 0.4, 0.8
    const WorkloadResult r =
        kvs.runWithCrash(/*crash_batch=*/1, frac, survive);
    EXPECT_TRUE(r.verified)
        << "frac=" << frac << " survive=" << survive;
    EXPECT_GT(r.recovery_ns, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpKvsCrash,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 6)));

TEST(GpKvsCrashMixed, RecoversWithGetsInTheBatch)
{
    // Regression: a crashed batch containing GETs (the 95:5 config of
    // Table 5) must recover like a pure-SET one.
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 13);
    GpKvsParams p = smallParams();
    p.get_ratio = 0.95;
    GpKvs kvs(m, p);
    const WorkloadResult r = kvs.runWithCrash(1, 0.6, 0.4);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.recovery_ns, 0.0);
}

} // namespace
} // namespace gpm
