/**
 * @file
 * Equivalence suite for the parallel block-scheduled executor.
 *
 * The contract under test: for a block_independent kernel, a launch
 * fanned out across N host workers is observationally *bit-identical*
 * to the sequential reference — same LaunchStats (including the FP
 * work_ops sum and the NVM tier classification), byte-identical
 * visible and durable images, identical pending-extent accounting,
 * and identical crash-time RNG consumption (verified by crashing the
 * pool after the launch and comparing the resulting durable images).
 *
 * Checks that run inside kernel phases use atomic counters rather
 * than gtest assertions: phases execute on scheduler worker threads,
 * where EXPECT_* is not safe.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/gpu_executor.hpp"
#include "gpusim/kernel.hpp"
#include "harness/experiments.hpp"
#include "memsim/nvm_model.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {
namespace {

constexpr std::size_t kCap = 1_MiB;

/** Everything observable about a (launch, optional crash) episode. */
struct Snapshot {
    LaunchStats stats;
    std::vector<std::uint8_t> visible;
    std::vector<std::uint8_t> durable;
    std::size_t pending_extents = 0;
    std::uint64_t pending_bytes = 0;
    std::uint64_t extents_merged = 0;
    std::vector<std::uint8_t> post_crash_durable;

    bool
    operator==(const Snapshot &o) const = default;
};

/**
 * Build a fresh machine with @p workers lanes, run the kernel that
 * @p make fills in, and capture every observable. The pool is then
 * crashed (survive_prob 0.5, fixed seed) so the per-line RNG
 * enumeration order of pending extents becomes visible in the final
 * durable image.
 */
Snapshot
runWith(int workers, PersistDomain domain,
        const std::function<void(KernelDesc &)> &make)
{
    SimConfig cfg;
    cfg.exec_workers = workers;
    PmPool pool(kCap, domain, /*seed=*/7);
    NvmModel nvm(cfg);
    GpuExecutor gpu(cfg, pool, nvm);

    KernelDesc k;
    make(k);

    Snapshot s;
    s.stats = gpu.launch(k);
    s.visible.assign(pool.visible(), pool.visible() + kCap);
    s.durable.assign(pool.durable(), pool.durable() + kCap);
    s.pending_extents = pool.pendingExtents();
    s.pending_bytes = pool.pendingBytes();
    s.extents_merged = pool.stats().extents_merged;
    pool.crash(/*survive_prob=*/0.5);
    s.post_crash_durable.assign(pool.durable(), pool.durable() + kCap);
    return s;
}

constexpr PersistDomain kDomains[] = {
    PersistDomain::McDurable,
    PersistDomain::LlcVolatile,
    PersistDomain::LlcDurable,
};

constexpr int kWorkerCounts[] = {2, 4, 8};

/** Mix a few ints into a deterministic pseudo-random 64-bit value. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t h = a * 0x9e3779b97f4a7c15ull + b;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return h + c;
}

TEST(ParallelExecutor, MixedTrafficMatchesSequential)
{
    // Multiple call sites, loop occurrences, a shared-stream append,
    // fences mid-kernel, RAW readbacks, and stores left pending at
    // launch end — the full data path, per domain and worker count.
    std::atomic<std::uint64_t> raw_errors{0};
    std::atomic<std::uint64_t> fence_persisted{0};
    auto make = [&](KernelDesc &k) {
        k.name = "mixed";
        k.blocks = 7;
        k.block_threads = 96;
        k.block_independent = true;
        k.phases.push_back([&](ThreadCtx &ctx) {
            const std::uint64_t base = ctx.globalId() * 96;
            ctx.pmStore(base, ctx.globalId());
            for (std::uint32_t i = 0; i < 4; ++i)
                ctx.pmStore(base + 8 + i * 8,
                            mix(ctx.globalId(), i, 1));
            // Shared tail stream (conventional-log pattern).
            const std::uint64_t rec = ~ctx.globalId();
            ctx.pmWriteStream(1ull << 50,
                              768 * 1024 + ctx.globalId() * 8, &rec, 8);
            ctx.work(1.25);
            ctx.hbmTraffic(48);
        });
        k.phases.push_back([&](ThreadCtx &ctx) {
            const std::uint64_t base = ctx.globalId() * 96;
            if (ctx.pmLoad<std::uint64_t>(base) != ctx.globalId())
                ++raw_errors;
            if (ctx.pmLoad<std::uint64_t>(base + 8 + 2 * 8) !=
                mix(ctx.globalId(), 2, 1))
                ++raw_errors;
            if (ctx.threadfenceSystem())
                ++fence_persisted;
            // Left pending (no fence follows) under McDurable.
            ctx.pmStore(base + 48, ctx.globalId() + 1);
        });
    };

    for (const PersistDomain domain : kDomains) {
        raw_errors = 0;
        const Snapshot ref = runWith(1, domain, make);
        EXPECT_EQ(raw_errors, 0u);
        for (const int workers : kWorkerCounts) {
            raw_errors = 0;
            const Snapshot got = runWith(workers, domain, make);
            EXPECT_EQ(raw_errors, 0u)
                << "RAW readback failed at " << workers << " workers";
            EXPECT_TRUE(got == ref)
                << "divergence at " << workers << " workers, domain "
                << static_cast<int>(domain);
        }
    }
}

TEST(ParallelExecutor, RandomGeometriesMatchSequential)
{
    // Random grid shapes and per-thread store patterns; every thread
    // owns a disjoint region so blocks are genuinely independent.
    Rng rng(2026);
    for (int trial = 0; trial < 10; ++trial) {
        const auto blocks =
            static_cast<std::uint32_t>(rng.between(1, 17));
        constexpr std::uint32_t kTpb[] = {32, 64, 96, 128, 256};
        const std::uint32_t tpb = kTpb[rng.below(5)];
        const auto phases = static_cast<int>(rng.between(1, 3));
        const std::uint64_t salt = rng.next();
        const std::uint64_t stride =
            (kCap - 4096) / (std::uint64_t(blocks) * tpb);

        auto make = [&](KernelDesc &k) {
            k.name = "random-geometry";
            k.blocks = blocks;
            k.block_threads = tpb;
            k.block_independent = true;
            for (int p = 0; p < phases; ++p) {
                k.phases.push_back([&, p](ThreadCtx &ctx) {
                    const std::uint64_t base = ctx.globalId() * stride;
                    const std::uint64_t n =
                        1 + mix(salt, ctx.globalId(), p) % 5;
                    for (std::uint64_t i = 0; i < n; ++i) {
                        const std::uint64_t off =
                            mix(salt, ctx.globalId() * 31 + p, i) %
                            (stride - 8);
                        ctx.pmStore(base + off,
                                    mix(salt, ctx.globalId(), i));
                    }
                    if (mix(salt, p, ctx.globalId()) % 3 == 0)
                        ctx.threadfenceSystem();
                    ctx.work(0.5 + p);
                });
            }
        };

        const Snapshot ref = runWith(1, PersistDomain::McDurable, make);
        const Snapshot got = runWith(8, PersistDomain::McDurable, make);
        EXPECT_TRUE(got == ref)
            << "trial " << trial << ": " << blocks << "x" << tpb << "x"
            << phases;
    }
}

TEST(ParallelExecutor, ParallelRunsAreDeterministic)
{
    // Two parallel runs at the same width must agree with each other
    // (no dependence on OS scheduling of the worker pool).
    auto make = [](KernelDesc &k) {
        k.name = "repeat";
        k.blocks = 13;
        k.block_threads = 128;
        k.block_independent = true;
        k.phases.push_back([](ThreadCtx &ctx) {
            const std::uint64_t base = ctx.globalId() * 32;
            ctx.pmStore(base, mix(3, ctx.globalId(), 0));
            ctx.pmStore(base + 8, mix(3, ctx.globalId(), 1));
            ctx.work(2.0);
            if (ctx.globalId() % 2 == 0)
                ctx.threadfenceSystem();
        });
    };
    const Snapshot a = runWith(4, PersistDomain::McDurable, make);
    const Snapshot b = runWith(4, PersistDomain::McDurable, make);
    EXPECT_TRUE(a == b);
}

/**
 * Everything observable about a crash-armed (launch, crash) episode:
 * whether / where the armed point fired, the partial LaunchStats of
 * the unwound launch, both pool images, pending-extent accounting,
 * the NVM tier classification, and the post-crash durable image
 * (which exposes the per-line crash-RNG consumption order).
 */
struct CrashSnapshot {
    bool fired = false;
    std::uint64_t fired_at = ~0ull;  ///< KernelCrashed payload
    LaunchStats stats;               ///< partial when fired
    std::vector<std::uint8_t> visible;
    std::vector<std::uint8_t> durable;
    std::size_t pending_extents = 0;
    std::uint64_t pending_bytes = 0;
    NvmTierBytes tier;
    std::vector<std::uint8_t> post_crash_durable;

    bool
    operator==(const CrashSnapshot &o) const = default;
};

CrashSnapshot
runCrashArmed(int workers, PersistDomain domain, const CrashPoint &point,
              const std::function<void(KernelDesc &)> &make)
{
    SimConfig cfg;
    cfg.exec_workers = workers;
    PmPool pool(kCap, domain, /*seed=*/7);
    NvmModel nvm(cfg);
    GpuExecutor gpu(cfg, pool, nvm);

    KernelDesc k;
    make(k);
    k.crash = point;

    CrashSnapshot s;
    try {
        s.stats = gpu.launch(k);
    } catch (const KernelCrashed &c) {
        s.fired = true;
        s.fired_at = c.executed_thread_phases;
        s.stats = gpu.lastLaunchStats();
    }
    s.visible.assign(pool.visible(), pool.visible() + kCap);
    s.durable.assign(pool.durable(), pool.durable() + kCap);
    s.pending_extents = pool.pendingExtents();
    s.pending_bytes = pool.pendingBytes();
    nvm.closeRuns();
    s.tier = nvm.bytes();
    pool.crash(/*survive_prob=*/0.5);
    s.post_crash_durable.assign(pool.durable(), pool.durable() + kCap);
    return s;
}

TEST(ParallelExecutor, CrashArmedMatchesSequentialAcrossTriggers)
{
    // Every trigger kind at ordinals that land early, mid-grid
    // (exercising prefix replay + the direct crash-block re-run), on
    // a block boundary, and beyond the launch (the not-fired full
    // replay). The kernel mixes stores, fences and pending tails so
    // each trigger's instant leaves distinctive partial state.
    auto make = [](KernelDesc &k) {
        k.name = "crash-armed";
        k.blocks = 6;
        k.block_threads = 64;
        k.block_independent = true;
        k.phases.push_back([](ThreadCtx &ctx) {
            const std::uint64_t base = ctx.globalId() * 64;
            ctx.pmStore(base, ctx.globalId());
            ctx.pmStore(base + 8, mix(11, ctx.globalId(), 0));
            if (ctx.globalId() % 3 == 0)
                ctx.threadfenceSystem();
            ctx.work(1.5);
        });
        k.phases.push_back([](ThreadCtx &ctx) {
            const std::uint64_t base = ctx.globalId() * 64;
            ctx.pmStore(base + 16, mix(12, ctx.globalId(), 1));
            ctx.threadfenceSystem();
            // Left pending: no fence follows.
            ctx.pmStore(base + 24, ~ctx.globalId());
        });
    };
    // 6 blocks x 64 threads x 2 phases = 768 thread phases; each block
    // issues 192 stores and ~86 fences.
    const CrashPoint points[] = {
        CrashPoint::afterThreadPhases(1),
        CrashPoint::afterThreadPhases(200),
        CrashPoint::afterThreadPhases(128),  // exact block boundary
        CrashPoint::afterThreadPhases(767),
        CrashPoint::afterThreadPhases(768),  // never fires
        CrashPoint::beforeFence(1),
        CrashPoint::beforeFence(150),
        CrashPoint::afterFence(1),
        CrashPoint::afterFence(99),
        CrashPoint::afterFence(100000),      // never fires
        CrashPoint::afterPmStore(1),
        CrashPoint::afterPmStore(500),
        CrashPoint::afterPmStore(1152),      // the very last store
    };

    for (const PersistDomain domain : kDomains) {
        for (const CrashPoint &point : points) {
            const CrashSnapshot ref =
                runCrashArmed(1, domain, point, make);
            for (const int workers : kWorkerCounts) {
                const CrashSnapshot got =
                    runCrashArmed(workers, domain, point, make);
                EXPECT_TRUE(got == ref)
                    << "divergence at " << workers
                    << " workers, domain " << static_cast<int>(domain)
                    << ", point " << point.describe()
                    << " (fired " << got.fired << "/" << ref.fired
                    << " at " << got.fired_at << "/" << ref.fired_at
                    << ")";
            }
        }
    }
}

TEST(ParallelExecutor, CrashArmedRandomGeometriesMatchSequential)
{
    // Random grids x random ordinals: the mapping from a global
    // ordinal to (crash block, intra-block offset) must hold for any
    // geometry, including single-block grids (sequential path) and
    // ordinals past the end.
    Rng rng(77);
    for (int trial = 0; trial < 12; ++trial) {
        const auto blocks =
            static_cast<std::uint32_t>(rng.between(2, 11));
        constexpr std::uint32_t kTpb[] = {32, 64, 96, 128};
        const std::uint32_t tpb = kTpb[rng.below(4)];
        const std::uint64_t salt = rng.next();
        const std::uint64_t stride =
            (kCap - 4096) / (std::uint64_t(blocks) * tpb);

        auto make = [&](KernelDesc &k) {
            k.name = "crash-random";
            k.blocks = blocks;
            k.block_threads = tpb;
            k.block_independent = true;
            k.phases.push_back([&](ThreadCtx &ctx) {
                const std::uint64_t base = ctx.globalId() * stride;
                const std::uint64_t n =
                    1 + mix(salt, ctx.globalId(), 0) % 4;
                for (std::uint64_t i = 0; i < n; ++i)
                    ctx.pmStore(base + i * 8,
                                mix(salt, ctx.globalId(), i));
                if (mix(salt, 1, ctx.globalId()) % 2 == 0)
                    ctx.threadfenceSystem();
            });
        };

        const std::uint64_t total = std::uint64_t(blocks) * tpb;
        const CrashPoint point = [&]() -> CrashPoint {
            switch (trial % 4) {
              case 0:
                return CrashPoint::afterThreadPhases(
                    1 + rng.next() % total);
              case 1:
                return CrashPoint::beforeFence(1 + rng.next() %
                                               (total / 2));
              case 2:
                return CrashPoint::afterFence(1 + rng.next() %
                                              (total / 2));
              default:
                return CrashPoint::afterPmStore(1 + rng.next() %
                                                (2 * total));
            }
        }();

        const CrashSnapshot ref =
            runCrashArmed(1, PersistDomain::McDurable, point, make);
        for (const int workers : kWorkerCounts) {
            const CrashSnapshot got = runCrashArmed(
                workers, PersistDomain::McDurable, point, make);
            EXPECT_TRUE(got == ref)
                << "trial " << trial << " (" << blocks << "x" << tpb
                << ", " << point.describe() << ") at " << workers
                << " workers";
        }
    }
}

TEST(ParallelExecutor, CrashArmedParallelRunsAreDeterministic)
{
    // Two armed runs at the same width must agree with each other:
    // the early-cancel race may stop the shadow dispatch at different
    // points, but nothing observable may depend on it.
    auto make = [](KernelDesc &k) {
        k.name = "crash-repeat";
        k.blocks = 9;
        k.block_threads = 128;
        k.block_independent = true;
        k.phases.push_back([](ThreadCtx &ctx) {
            ctx.pmStore(ctx.globalId() * 16, mix(5, ctx.globalId(), 0));
            if (ctx.globalId() % 4 == 0)
                ctx.threadfenceSystem();
        });
    };
    const CrashPoint point = CrashPoint::afterPmStore(300);
    const CrashSnapshot a =
        runCrashArmed(4, PersistDomain::McDurable, point, make);
    const CrashSnapshot b =
        runCrashArmed(4, PersistDomain::McDurable, point, make);
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a.fired);
}

TEST(ParallelExecutor, DependentKernelsStaySequential)
{
    // Without the block_independent marking, cross-block dependences
    // must keep working at any configured width: block b reads what
    // block b-1 wrote (legal only under in-order block execution).
    SimConfig cfg;
    cfg.exec_workers = 8;
    PmPool pool(kCap, PersistDomain::McDurable, 7);
    NvmModel nvm(cfg);
    GpuExecutor gpu(cfg, pool, nvm);

    std::atomic<std::uint64_t> chain_errors{0};
    KernelDesc k;
    k.name = "chained";
    k.blocks = 8;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        if (ctx.threadIdx() != 0)
            return;
        const std::uint64_t prev =
            ctx.blockIdx() == 0
                ? 0
                : ctx.pmLoad<std::uint64_t>((ctx.blockIdx() - 1) * 8);
        if (prev != std::uint64_t(ctx.blockIdx()))
            ++chain_errors;
        ctx.pmStore(std::uint64_t(ctx.blockIdx()) * 8,
                    std::uint64_t(ctx.blockIdx()) + 1);
    });
    gpu.launch(k);
    EXPECT_EQ(chain_errors, 0u);
}

TEST(ParallelExecutor, ResolvedWorkersFollowsConfig)
{
    PmPool pool(kCap, PersistDomain::McDurable);
    SimConfig one;
    NvmModel nvm1(one);
    EXPECT_EQ(GpuExecutor(one, pool, nvm1).resolvedWorkers(), 1u);

    SimConfig four;
    four.exec_workers = 4;
    NvmModel nvm4(four);
    EXPECT_EQ(GpuExecutor(four, pool, nvm4).resolvedWorkers(), 4u);

    SimConfig hw;
    hw.exec_workers = 0;
    NvmModel nvmh(hw);
    EXPECT_GE(GpuExecutor(hw, pool, nvmh).resolvedWorkers(), 1u);
}

TEST(ParallelExecutor, WorkloadResultsMatchSequential)
{
    // End-to-end: canonical Fig 9 cells whose kernels carry the
    // block_independent marking must report bit-identical results at
    // any worker width (the modelled numbers never depend on the host
    // execution strategy).
    for (const bench::Bench b :
         {bench::Bench::PrefixSum, bench::Bench::Srad}) {
        SimConfig seq;
        seq.exec_workers = 1;
        const WorkloadResult r1 =
            bench::runBench(b, PlatformKind::Gpm, seq);

        SimConfig par;
        par.exec_workers = 8;
        const WorkloadResult r8 =
            bench::runBench(b, PlatformKind::Gpm, par);

        EXPECT_TRUE(r1.verified);
        EXPECT_TRUE(r8.verified);
        EXPECT_EQ(r1.op_ns, r8.op_ns) << bench::benchName(b);
        EXPECT_EQ(r1.persist_ns, r8.persist_ns);
        EXPECT_EQ(r1.recovery_ns, r8.recovery_ns);
        EXPECT_EQ(r1.persisted_payload, r8.persisted_payload);
        EXPECT_EQ(r1.pcie_write_bytes, r8.pcie_write_bytes);
        EXPECT_DOUBLE_EQ(r1.ops_done, r8.ops_done);
    }
}

} // namespace
} // namespace gpm
