/**
 * @file
 * Unit tests for the common substrate: units, alignment helpers,
 * deterministic RNG, error reporting, and the report-table printer.
 */
#include <gtest/gtest.h>

#include <sstream>

#include <cstdlib>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace gpm {
namespace {

TEST(Units, LiteralsAndConversions)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
    EXPECT_DOUBLE_EQ(1_us, 1000.0);
    EXPECT_DOUBLE_EQ(3_ms, 3e6);
    EXPECT_DOUBLE_EQ(toMs(2.5e6), 2.5);
    EXPECT_DOUBLE_EQ(toUs(1500.0), 1.5);
    EXPECT_DOUBLE_EQ(toSec(2e9), 2.0);
}

TEST(Units, TransferTime)
{
    // 13 GB/s == 13 bytes/ns.
    EXPECT_DOUBLE_EQ(transferNs(13, 13.0), 1.0);
    EXPECT_DOUBLE_EQ(transferNs(0, 5.0), 0.0);
    EXPECT_DOUBLE_EQ(transferNs(100, 0.0), 0.0);  // "infinitely fast"
}

TEST(Units, Alignment)
{
    EXPECT_EQ(alignDown(257, 256), 256u);
    EXPECT_EQ(alignDown(256, 256), 256u);
    EXPECT_EQ(alignUp(1, 256), 256u);
    EXPECT_EQ(alignUp(256, 256), 256u);
    EXPECT_TRUE(isAligned(512, 256));
    EXPECT_FALSE(isAligned(260, 256));
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo && saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams)
{
    Rng base(42);
    Rng a = base.split(1), b = base.split(2), a2 = base.split(1);
    EXPECT_NE(a.next(), b.next());
    Rng a3 = base.split(1);
    EXPECT_EQ(a2.next(), a3.next());
}

TEST(Status, PanicAndFatalThrowTypedErrors)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
    try {
        fatal("value was ", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(Status, Macros)
{
    EXPECT_NO_THROW(GPM_ASSERT(1 + 1 == 2));
    EXPECT_THROW(GPM_ASSERT(false, "ctx"), PanicError);
    EXPECT_NO_THROW(GPM_REQUIRE(true, "fine"));
    EXPECT_THROW(GPM_REQUIRE(false, "nope"), FatalError);
}

TEST(Table, AlignedAndTsvOutput)
{
    Table t({"A", "Bee"});
    t.addRow({"1", "2"});
    t.addRow({"longer", "x"});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream tsv;
    t.printTsv(tsv);
    EXPECT_EQ(tsv.str(), "A\tBee\n1\t2\nlonger\tx\n");

    std::ostringstream pretty;
    t.print(pretty);
    EXPECT_NE(pretty.str().find("longer"), std::string::npos);
}

TEST(Table, RejectsArityMismatch)
{
    Table t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159), "3.14");
    EXPECT_EQ(Table::num(3.14159, 1), "3.1");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(ExecWorkers, AcceptsPlainDecimalInRange)
{
    EXPECT_EQ(parseExecWorkers("0"), 0);
    EXPECT_EQ(parseExecWorkers("1"), 1);
    EXPECT_EQ(parseExecWorkers("8"), 8);
    EXPECT_EQ(parseExecWorkers("1024"), 1024);
    EXPECT_EQ(parseExecWorkers("007"), 7);  // leading zeros are digits
}

TEST(ExecWorkers, RejectsMalformedInput)
{
    EXPECT_EQ(parseExecWorkers(nullptr), std::nullopt);
    EXPECT_EQ(parseExecWorkers(""), std::nullopt);
    EXPECT_EQ(parseExecWorkers(" 4"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("4 "), std::nullopt);
    EXPECT_EQ(parseExecWorkers("+4"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("-1"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("4x"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("x4"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("4.0"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("0x10"), std::nullopt);
}

TEST(ExecWorkers, RejectsOutOfRange)
{
    EXPECT_EQ(parseExecWorkers("1025"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("99999"), std::nullopt);
    EXPECT_EQ(parseExecWorkers("123456"), std::nullopt);  // > 5 digits
}

TEST(ExecWorkers, EnvFallsBackOnUnsetOrInvalid)
{
    ::unsetenv("GPM_EXEC_WORKERS");
    EXPECT_EQ(execWorkersFromEnv(3), 3);

    ::setenv("GPM_EXEC_WORKERS", "6", 1);
    EXPECT_EQ(execWorkersFromEnv(3), 6);

    ::setenv("GPM_EXEC_WORKERS", "bogus", 1);
    EXPECT_EQ(execWorkersFromEnv(3), 3);

    ::setenv("GPM_EXEC_WORKERS", "-2", 1);
    EXPECT_EQ(execWorkersFromEnv(), 1);

    ::unsetenv("GPM_EXEC_WORKERS");
}

} // namespace
} // namespace gpm
