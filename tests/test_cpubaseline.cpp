/**
 * @file
 * CPU baseline tests: the three PM KVS designs (Fig 1a comparators)
 * and the CPU PM applications (Fig 1b / section 6.1 comparators).
 */
#include <gtest/gtest.h>

#include "cpubaseline/cpu_apps.hpp"
#include "cpubaseline/cpu_kvs.hpp"

namespace gpm {
namespace {

CpuKvsParams
kvsParams()
{
    CpuKvsParams p;
    p.n_sets = 1u << 12;
    p.batch_ops = 2048;
    p.batches = 2;
    return p;
}

class CpuKvsAll : public ::testing::TestWithParam<int>
{
  protected:
    CpuKvsDesign
    design() const
    {
        return static_cast<CpuKvsDesign>(GetParam());
    }
};

TEST_P(CpuKvsAll, RunsAndLookupsWork)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    CpuPmKvs kvs(m, design(), kvsParams());
    const WorkloadResult r = kvs.run();
    EXPECT_TRUE(r.verified) << cpuKvsName(design());
    EXPECT_GT(r.mops(), 0.0);
}

TEST_P(CpuKvsAll, SurvivesCrashAndRecovers)
{
    for (const double survive : {0.0, 0.5}) {
        SimConfig cfg;
        Machine m(cfg, PlatformKind::CpuOnly, 64_MiB, 11);
        CpuPmKvs kvs(m, design(), kvsParams());
        ASSERT_TRUE(kvs.run().verified);
        EXPECT_TRUE(kvs.crashAndRecover(survive))
            << cpuKvsName(design()) << " survive=" << survive;
    }
}

INSTANTIATE_TEST_SUITE_P(Designs, CpuKvsAll, ::testing::Range(0, 3));

TEST(CpuKvs, ThroughputOrderingMatchesFig1a)
{
    // pmemKV slowest, RocksDB middle, MatrixKV fastest (Fig 1a).
    double mops[3] = {};
    for (int d = 0; d < 3; ++d) {
        SimConfig cfg;
        Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
        CpuPmKvs kvs(m, static_cast<CpuKvsDesign>(d), kvsParams());
        mops[d] = kvs.run().mops();
    }
    EXPECT_LT(mops[0], mops[1]);
    EXPECT_LT(mops[1], mops[2]);
}

// ---- CPU applications ----------------------------------------------------

TEST(CpuApps, BfsMatchesReference)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    BfsParams p;
    p.grid_w = 24;
    p.grid_h = 96;
    p.shortcuts = 32;
    EXPECT_TRUE(runCpuBfs(m, p).verified);
}

TEST(CpuApps, SradMatchesReference)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    SradParams p;
    p.width = 96;
    p.height = 64;
    p.iterations = 3;
    EXPECT_TRUE(runCpuSrad(m, p).verified);
}

TEST(CpuApps, PrefixSumRuns)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
    PsParams p;
    p.blocks = 32;
    p.block_threads = 128;
    p.elems_per_thread = 8;
    EXPECT_TRUE(runCpuPrefixSum(m, p).verified);
}

TEST(CpuApps, DbRunsBothTxnKinds)
{
    SimConfig cfg;
    GpDbParams p;
    p.initial_rows = 1u << 13;
    p.insert_rows = 1024;
    p.update_rows = 512;
    for (const auto kind :
         {GpDb::TxnKind::Insert, GpDb::TxnKind::Update}) {
        Machine m(cfg, PlatformKind::CpuOnly, 64_MiB);
        const WorkloadResult r = runCpuDb(m, p, kind);
        EXPECT_TRUE(r.verified);
        EXPECT_GT(r.op_ns, 0.0);
    }
}

TEST(CpuApps, GpmBeatsCpuOnNativeApps)
{
    // Fig 1b's direction: the GPU+PM version outruns CPU+PM.
    SimConfig cfg;
    BfsParams bp;
    bp.grid_w = 24;
    bp.grid_h = 96;
    bp.shortcuts = 32;
    Machine mc(cfg, PlatformKind::CpuOnly, 64_MiB);
    Machine mg(cfg, PlatformKind::Gpm, 64_MiB);
    const WorkloadResult rc = runCpuBfs(mc, bp);
    GpBfs bfs(mg, bp);
    const WorkloadResult rg = bfs.run();
    EXPECT_LT(rg.op_ns, rc.op_ns);
}

} // namespace
} // namespace gpm
