/**
 * @file
 * Unit + property tests for libGPM checkpointing: creation, group
 * registration, checkpoint/restore round trips, double-buffer flip
 * atomicity under injected crashes, and platform routing.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "gpm/gpm_checkpoint.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"

namespace gpm {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t salt)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i * 31 + salt);
    return v;
}

TEST(GpmCheckpoint, CreateOpenAndGeometry)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 1000, 4, 3);
    EXPECT_EQ(cp.header().groups, 3u);
    EXPECT_EQ(cp.header().group_capacity, alignUp(1000, 256));
    EXPECT_TRUE(isAligned(cp.bufferAddr(0, 0), 256));
    EXPECT_TRUE(isAligned(cp.bufferAddr(2, 1), 256));

    GpmCheckpoint reopened = GpmCheckpoint::open(m, "cp");
    EXPECT_EQ(reopened.header().group_capacity,
              cp.header().group_capacity);
    EXPECT_THROW(GpmCheckpoint::open(m, "absent"), FatalError);
}

TEST(GpmCheckpoint, RegistrationLimits)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 512, 2, 1);
    std::vector<std::uint8_t> a(100), b(100), c(100);
    cp.registerData(0, a.data(), a.size());
    cp.registerData(0, b.data(), b.size());
    EXPECT_THROW(cp.registerData(0, c.data(), c.size()), FatalError);
    EXPECT_THROW(cp.registerData(5, a.data(), 1), FatalError);

    GpmCheckpoint big = GpmCheckpoint::create(m, "cp2", 256, 8, 1);
    std::vector<std::uint8_t> huge(600);
    EXPECT_THROW(big.registerData(0, huge.data(), huge.size()),
                 FatalError);
}

TEST(GpmCheckpoint, CheckpointRestoreRoundTrip)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 4096, 4, 1);
    std::vector<std::uint8_t> a = pattern(1000, 1);
    std::vector<std::uint8_t> b = pattern(500, 2);
    cp.registerData(0, a.data(), a.size());
    cp.registerData(0, b.data(), b.size());
    cp.checkpoint(0);
    EXPECT_EQ(cp.sequence(0), 1u);

    // Clobber the volatile state, restore, verify both structures.
    std::fill(a.begin(), a.end(), 0);
    std::fill(b.begin(), b.end(), 0);
    cp.restore(0);
    EXPECT_EQ(a, pattern(1000, 1));
    EXPECT_EQ(b, pattern(500, 2));
}

TEST(GpmCheckpoint, ReopenAfterFlipReportsLatestCheckpoint)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    std::vector<std::uint8_t> data = pattern(3000, 1);
    {
        GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 4096, 4, 2);
        cp.registerData(0, data.data(), data.size());
        cp.checkpoint(0);
        const std::uint32_t first_valid = cp.validIndex(0);

        // A second checkpoint flips to the other buffer. Refill in
        // place: the registration pins data.data().
        const std::vector<std::uint8_t> next = pattern(3000, 2);
        std::copy(next.begin(), next.end(), data.begin());
        cp.checkpoint(0);
        EXPECT_NE(cp.validIndex(0), first_valid);
    }

    // A fresh handle (reboot) sees the flipped index, the advanced
    // sequence, and restores the *second* checkpoint's contents;
    // group 1, never checkpointed, is still at sequence 0.
    GpmCheckpoint reopened = GpmCheckpoint::open(m, "cp");
    EXPECT_EQ(reopened.sequence(0), 2u);
    EXPECT_EQ(reopened.sequence(1), 0u);
    std::vector<std::uint8_t> out(3000, 0);
    reopened.registerData(0, out.data(), out.size());
    reopened.restore(0);
    EXPECT_EQ(out, pattern(3000, 2));
}

TEST(GpmCheckpoint, GroupsAreIndependent)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 2048, 2, 2);
    std::vector<std::uint8_t> g0 = pattern(512, 3);
    std::vector<std::uint8_t> g1 = pattern(512, 4);
    cp.registerData(0, g0.data(), g0.size());
    cp.registerData(1, g1.data(), g1.size());

    cp.checkpoint(0);
    cp.checkpoint(0);
    cp.checkpoint(1);
    EXPECT_EQ(cp.sequence(0), 2u);
    EXPECT_EQ(cp.sequence(1), 1u);

    std::fill(g0.begin(), g0.end(), 0);
    cp.restore(0);
    EXPECT_EQ(g0, pattern(512, 3));
    std::fill(g1.begin(), g1.end(), 0);
    cp.restore(1);
    EXPECT_EQ(g1, pattern(512, 4));
}

TEST(GpmCheckpoint, DoubleBufferFlipAlternates)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 256, 1, 1);
    std::vector<std::uint8_t> data = pattern(256, 5);
    cp.registerData(0, data.data(), data.size());
    const std::uint32_t v0 = cp.validIndex(0);
    cp.checkpoint(0);
    EXPECT_EQ(cp.validIndex(0), v0 ^ 1u);
    cp.checkpoint(0);
    EXPECT_EQ(cp.validIndex(0), v0);
}

TEST(GpmCheckpoint, EmptyGroupOperationsAreUserErrors)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 256, 1, 1);
    EXPECT_THROW(cp.checkpoint(0), FatalError);
    EXPECT_THROW(cp.restore(0), FatalError);
}

class CheckpointCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(CheckpointCrash, MidCheckpointCrashKeepsPreviousCopy)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB,
              static_cast<std::uint64_t>(GetParam()) + 1);
    GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 64_KiB, 2, 1);
    std::vector<std::uint8_t> data = pattern(60000, 6);
    cp.registerData(0, data.data(), data.size());
    cp.checkpoint(0);  // consistent copy: pattern(6)
    const std::uint32_t valid_before = cp.validIndex(0);

    // New volatile state (refilled in place — the registration pins
    // data.data(); a vector move-assign would free the registered
    // buffer under the copy kernel); die mid-copy at a swept fraction.
    const std::vector<std::uint8_t> next = pattern(60000, 7);
    std::copy(next.begin(), next.end(), data.begin());
    cp.armCrashNextCheckpoint(0.1 * GetParam());
    try {
        cp.checkpoint(0);
        FAIL() << "crash did not fire";
    } catch (const KernelCrashed &) {
    }
    m.pool().crash(/*survive_prob=*/(GetParam() % 3) * 0.4);

    // Reboot: the flip never happened; restore yields the old copy.
    GpmCheckpoint reopened = GpmCheckpoint::open(m, "cp");
    EXPECT_EQ(reopened.validIndex(0), valid_before);
    std::vector<std::uint8_t> out(60000, 0);
    reopened.registerData(0, out.data(), out.size());
    reopened.restore(0);
    EXPECT_EQ(out, pattern(60000, 6));
}

INSTANTIATE_TEST_SUITE_P(Fracs, CheckpointCrash,
                         ::testing::Range(0, 9));

TEST(GpmCheckpoint, WorksOnEveryPlatform)
{
    for (PlatformKind kind :
         {PlatformKind::Gpm, PlatformKind::GpmNdp, PlatformKind::GpmEadr,
          PlatformKind::CapFs, PlatformKind::CapMm,
          PlatformKind::CapEadr, PlatformKind::Gpufs,
          PlatformKind::CpuOnly}) {
        SimConfig cfg;
        Machine m(cfg, kind, 64_MiB);
        GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", 8192, 1, 1);
        std::vector<std::uint8_t> data = pattern(8000, 8);
        cp.registerData(0, data.data(), data.size());
        cp.checkpoint(0);
        std::fill(data.begin(), data.end(), 0);
        cp.restore(0);
        EXPECT_EQ(data, pattern(8000, 8)) << platformName(kind);
        // Whatever the platform, a crash after the checkpoint must
        // preserve the data (it was reported persistent).
        m.pool().crash();
        std::fill(data.begin(), data.end(), 0);
        cp.restore(0);
        EXPECT_EQ(data, pattern(8000, 8)) << platformName(kind);
    }
}

TEST(GpmCheckpoint, ChargesLessTimeOnGpmThanCapFs)
{
    SimConfig cfg;
    Machine a(cfg, PlatformKind::Gpm, 64_MiB);
    Machine b(cfg, PlatformKind::CapFs, 64_MiB);
    std::vector<std::uint8_t> data = pattern(1 << 20, 9);
    auto run = [&](Machine &m) {
        GpmCheckpoint cp = GpmCheckpoint::create(m, "cp", data.size(),
                                                 1, 1);
        cp.registerData(0, data.data(), data.size());
        const SimNs t0 = m.now();
        cp.checkpoint(0);
        return m.now() - t0;
    };
    EXPECT_LT(run(a), run(b));
}

} // namespace
} // namespace gpm
