/**
 * @file
 * Unit tests for the pmheap layer: GpmHeap handle encoding, the
 * volatile-alloc / durable-tx split, redo-record round trips, the
 * recover() reconciliation matrix (Commit forward, Intent discard,
 * Intent forced forward), payload staging, and GpmMap's put/get/del
 * semantics with an in-flight-record replay. The crash *grid* lives
 * in the pmheap torture invariant; these tests pin the API contract
 * at deterministic single points.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/units.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmheap/gpm_map.hpp"

namespace gpm {
namespace {

GpmHeapParams
smallHeap()
{
    GpmHeapParams p;
    p.name = "theap";
    p.class_sizes = {16, 32, 64, 128};
    p.slots_per_class = 8;
    p.max_tx_ops = 16;
    p.max_tx_blob = 64;
    return p;
}

struct HeapFixture {
    SimConfig cfg;
    Machine m{cfg, PlatformKind::Gpm, 1_MiB, 42};
    GpmHeap heap;

    explicit HeapFixture(const GpmHeapParams &p = smallHeap())
        : heap(m, p)
    {
        gpmPersistBegin(m);
        heap.setup(true);
    }
};

TEST(GpmHeap, HandleEncodesLengthAndOffset)
{
    const std::uint64_t h = (std::uint64_t(100) << 40) | 0x12345;
    EXPECT_EQ(GpmHeap::lenOf(h), 100u);
    EXPECT_EQ(GpmHeap::offOf(h), 0x12345u);
}

TEST(GpmHeap, GeometryAddsUp)
{
    const GpmHeapParams p = smallHeap();
    EXPECT_EQ(p.slabBytes(), (16u + 32 + 64 + 128) * 8);
    EXPECT_GE(p.poolBytes(),
              p.slabBytes() + p.bitmapBytes() + p.redoBytes());
}

TEST(GpmHeap, AllocPicksSmallestFittingClassAndCancelRestores)
{
    HeapFixture f;
    EXPECT_EQ(f.heap.freeSlotsFor(20), 8u);
    const std::uint64_t h = f.heap.alloc(20);  // -> 32 B class
    EXPECT_EQ(GpmHeap::lenOf(h), 20u);
    EXPECT_EQ(f.heap.freeSlotsFor(20), 7u);
    EXPECT_EQ(f.heap.freeSlotsFor(16), 8u);  // other classes untouched
    f.heap.cancel(h);
    EXPECT_EQ(f.heap.freeSlotsFor(20), 8u);
    // Nothing durable moved: alloc/cancel is purely volatile.
    EXPECT_TRUE(f.heap.durableAllocatedOffsets().empty());
    EXPECT_THROW(f.heap.alloc(0), FatalError);
    EXPECT_THROW(f.heap.alloc(4096), FatalError);  // no such class
}

TEST(GpmHeap, TxCommitPublishesBitmapAndFreeRecycles)
{
    HeapFixture f;
    std::vector<std::uint64_t> allocs = {f.heap.alloc(16),
                                         f.heap.alloc(64)};
    f.heap.txBegin(GpmHeap::TxMode::Commit, 1, allocs, {});
    f.heap.txCommit();
    std::vector<std::uint64_t> want = {GpmHeap::offOf(allocs[0]),
                                       GpmHeap::offOf(allocs[1])};
    std::sort(want.begin(), want.end());
    EXPECT_EQ(f.heap.durableAllocatedOffsets(), want);

    f.heap.txBegin(GpmHeap::TxMode::Commit, 2, {}, allocs);
    f.heap.txCommit();
    EXPECT_TRUE(f.heap.durableAllocatedOffsets().empty());
    EXPECT_EQ(f.heap.freeSlotsFor(16), 8u);
    EXPECT_EQ(f.heap.freeSlotsFor(64), 8u);
}

TEST(GpmHeap, InFlightRecordRoundTrips)
{
    HeapFixture f;
    GpmHeap::InFlight rec;
    EXPECT_FALSE(f.heap.inFlight(rec));

    const std::vector<std::uint64_t> allocs = {f.heap.alloc(16)};
    const std::vector<std::uint64_t> frees = {};
    const std::uint8_t blob[5] = {1, 2, 3, 4, 5};
    f.heap.txBegin(GpmHeap::TxMode::Commit, 7, allocs, frees, blob, 5);
    ASSERT_TRUE(f.heap.inFlight(rec));
    EXPECT_EQ(rec.mode, GpmHeap::TxMode::Commit);
    EXPECT_EQ(rec.batch_id, 7u);
    EXPECT_EQ(rec.allocs, allocs);
    EXPECT_TRUE(rec.frees.empty());
    EXPECT_EQ(rec.blob, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
    // Only one record may be in flight.
    EXPECT_THROW(
        f.heap.txBegin(GpmHeap::TxMode::Commit, 8, allocs, {}),
        FatalError);
    f.heap.txCommit();
    EXPECT_FALSE(f.heap.inFlight(rec));
}

TEST(GpmHeap, RecoverRollsCommitForward)
{
    HeapFixture f;
    const std::uint64_t h = f.heap.alloc(64);
    f.heap.txBegin(GpmHeap::TxMode::Commit, 1, {h}, {});
    // Power failure between the commit point and txCommit: the record
    // is durable (txBegin persisted it), the bitmap untouched.
    f.m.pool().crash(0.0);
    EXPECT_TRUE(f.heap.durableAllocatedOffsets().empty());
    EXPECT_TRUE(f.heap.recover());
    EXPECT_EQ(f.heap.durableAllocatedOffsets(),
              std::vector<std::uint64_t>{GpmHeap::offOf(h)});
    // Free lists were rebuilt from the bitmap: the slot is taken.
    EXPECT_EQ(f.heap.freeSlotsFor(64), 7u);
    GpmHeap::InFlight rec;
    EXPECT_FALSE(f.heap.inFlight(rec));  // record retired
    EXPECT_FALSE(f.heap.recover());      // idempotent: nothing left
}

TEST(GpmHeap, RecoverDiscardsIntentUnlessClientCommitted)
{
    // Intent records belong to undo-logging clients: by default the
    // crash discards them (the bitmap was never touched)...
    {
        HeapFixture f;
        const std::uint64_t h = f.heap.alloc(64);
        f.heap.txBegin(GpmHeap::TxMode::Intent, 1, {h}, {});
        f.m.pool().crash(0.0);
        EXPECT_TRUE(f.heap.recover());
        EXPECT_TRUE(f.heap.durableAllocatedOffsets().empty());
        EXPECT_EQ(f.heap.freeSlotsFor(64), 8u);
    }
    // ...unless the client's own commit point says the batch went
    // through (GpKvs: txn flag cleared before the crash), in which
    // case apply_intent forces the record forward.
    {
        HeapFixture f;
        const std::uint64_t h = f.heap.alloc(64);
        f.heap.txBegin(GpmHeap::TxMode::Intent, 1, {h}, {});
        f.m.pool().crash(0.0);
        EXPECT_TRUE(f.heap.recover(/*apply_intent=*/true));
        EXPECT_EQ(f.heap.durableAllocatedOffsets(),
                  std::vector<std::uint64_t>{GpmHeap::offOf(h)});
    }
}

TEST(GpmHeap, StagedPayloadHashesMatchTheOracle)
{
    HeapFixture f;
    const std::uint64_t h = f.heap.alloc(100);
    const std::uint64_t seed = 0xfeedu;
    std::uint64_t read_hash = 0;
    KernelDesc k;
    k.name = "stage_payload";
    k.blocks = 1;
    k.block_threads = 1;
    k.phases.push_back([&](ThreadCtx &ctx) {
        f.heap.stagePayload(ctx, h, seed);
        gpmPersist(ctx);
        read_hash = f.heap.readPayloadHash(ctx, h);
    });
    f.m.runKernel(k);
    EXPECT_EQ(read_hash, GpmHeap::payloadHash(seed, 100));
    EXPECT_EQ(f.heap.durablePayloadHash(h),
              GpmHeap::payloadHash(seed, 100));
}

GpmMapParams
smallMap()
{
    GpmMapParams p;
    p.name = "tmap";
    p.n_groups = 16;
    p.heap = smallHeap();
    p.heap.name = "tmap";
    p.heap.slots_per_class = 32;
    p.heap.max_tx_blob = 24 * 16;
    return p;
}

struct MapFixture {
    SimConfig cfg;
    Machine m{cfg, PlatformKind::Gpm, 2_MiB, 42};
    GpmMap map;

    MapFixture() : map(m, smallMap())
    {
        gpmPersistBegin(m);
        map.setup(true);
    }
};

TEST(GpmMap, PutGetDeleteRoundTrip)
{
    MapFixture f;
    std::vector<MapOp> ops;
    for (std::uint64_t k = 1; k <= 6; ++k)
        ops.push_back({MapOp::Verb::Put, k, 24, 0x100 + k});
    auto res = f.map.runBatch(ops);
    EXPECT_EQ(res, std::vector<std::uint8_t>(6, 1));

    MapEntry e;
    ASSERT_TRUE(f.map.get(3, e));
    EXPECT_EQ(e.key, 3u);
    EXPECT_EQ(GpmHeap::lenOf(e.handle), 24u);
    EXPECT_EQ(f.map.heap().durablePayloadHash(e.handle),
              GpmHeap::payloadHash(0x103, 24));
    EXPECT_FALSE(f.map.get(99, e));

    // Overwrite swaps the handle; delete releases it.
    res = f.map.runBatch({{MapOp::Verb::Put, 3, 80, 0x999},
                          {MapOp::Verb::Del, 5, 0, 0}});
    EXPECT_EQ(res, (std::vector<std::uint8_t>{1, 1}));
    ASSERT_TRUE(f.map.get(3, e));
    EXPECT_EQ(GpmHeap::lenOf(e.handle), 80u);
    EXPECT_FALSE(f.map.get(5, e));
    // Deleting an absent key is a rejected no-op.
    res = f.map.runBatch({{MapOp::Verb::Del, 5, 0, 0}});
    EXPECT_EQ(res, (std::vector<std::uint8_t>{0}));

    std::vector<std::pair<std::uint64_t, MapOracleValue>> oracle;
    for (std::uint64_t k = 1; k <= 6; ++k) {
        if (k == 5)
            continue;
        oracle.push_back(
            {k, k == 3 ? MapOracleValue{80, 0x999}
                       : MapOracleValue{24, 0x100 + k}});
    }
    EXPECT_TRUE(f.map.durableEqualsOracle(oracle));
}

TEST(GpmMap, PutIntoFullGroupIsRejected)
{
    MapFixture f;
    // Collect 9 distinct keys landing in one directory group.
    std::vector<std::uint64_t> keys;
    const std::uint64_t g0 = f.map.groupOf(1);
    for (std::uint64_t k = 1; keys.size() < 9; ++k)
        if (f.map.groupOf(k) == g0)
            keys.push_back(k);
    std::vector<MapOp> ops;
    for (std::size_t i = 0; i < 8; ++i)
        ops.push_back({MapOp::Verb::Put, keys[i], 16, i});
    EXPECT_EQ(f.map.runBatch(ops), std::vector<std::uint8_t>(8, 1));
    // The ninth way does not exist; the plan rejects, nothing leaks.
    EXPECT_EQ(f.map.runBatch({{MapOp::Verb::Put, keys[8], 16, 9}}),
              (std::vector<std::uint8_t>{0}));
    MapEntry e;
    EXPECT_FALSE(f.map.get(keys[8], e));
}

TEST(GpmMap, RecoverReplaysAnInFlightCommitRecord)
{
    MapFixture f;
    EXPECT_EQ(f.map.runBatch({{MapOp::Verb::Put, 1, 24, 7}}),
              (std::vector<std::uint8_t>{1}));

    // Doom the publication launch after one thread-phase: the redo
    // record is durable (txBegin ran), the directory stores are torn
    // mid-batch, and the power failure wipes everything pending.
    const std::vector<MapOp> doomed = {{MapOp::Verb::Put, 2, 60, 8},
                                       {MapOp::Verb::Put, 3, 16, 9}};
    EXPECT_THROW(f.map.runBatch(doomed, {},
                                CrashPoint::afterThreadPhases(1)),
                 KernelCrashed);
    f.m.pool().crash(0.0);
    EXPECT_TRUE(f.map.recover());

    // Roll-forward semantics: the whole doomed batch is in.
    const std::vector<std::pair<std::uint64_t, MapOracleValue>> oracle =
        {{1, {24, 7}}, {2, {60, 8}}, {3, {16, 9}}};
    EXPECT_TRUE(f.map.durableEqualsOracle(oracle));

    // The rebuilt map keeps serving.
    EXPECT_EQ(f.map.runBatch({{MapOp::Verb::Del, 2, 0, 0}}),
              (std::vector<std::uint8_t>{1}));
    EXPECT_TRUE(f.map.durableEqualsOracle(
        {{1, {24, 7}}, {3, {16, 9}}}));
}

} // namespace
} // namespace gpm
