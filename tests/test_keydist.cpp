/**
 * @file
 * Unit tests for the seeded key-distribution generators (zipfian and
 * uniform) behind the serving engine's load generator.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/keydist.hpp"

namespace gpm {
namespace {

TEST(KeyDist, NamesRoundTrip)
{
    EXPECT_EQ(keyDistKindFromName("uniform"), KeyDistKind::Uniform);
    EXPECT_EQ(keyDistKindFromName("zipfian"), KeyDistKind::Zipfian);
    EXPECT_STREQ(keyDistKindName(KeyDistKind::Uniform), "uniform");
    EXPECT_STREQ(keyDistKindName(KeyDistKind::Zipfian), "zipfian");
}

TEST(KeyDist, DeterministicFromSeed)
{
    for (const KeyDistKind kind :
         {KeyDistKind::Uniform, KeyDistKind::Zipfian}) {
        KeyDist a(kind, 1 << 16, 7);
        KeyDist b(kind, 1 << 16, 7);
        KeyDist c(kind, 1 << 16, 8);
        bool any_diff = false;
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t ra = a.nextRank();
            EXPECT_EQ(ra, b.nextRank());
            any_diff = any_diff || ra != c.nextRank();
        }
        EXPECT_TRUE(any_diff) << "seed does not influence the stream";
    }
}

TEST(KeyDist, RanksStayInRange)
{
    for (const KeyDistKind kind :
         {KeyDistKind::Uniform, KeyDistKind::Zipfian}) {
        for (const std::uint64_t n : {1ull, 2ull, 3ull, 1000ull}) {
            KeyDist d(kind, n, 11);
            for (int i = 0; i < 2000; ++i)
                EXPECT_LT(d.nextRank(), n);
        }
    }
}

TEST(KeyDist, KeysAreScrambledAndNonZero)
{
    EXPECT_NE(KeyDist::keyForRank(0), 0u);
    // Adjacent ranks must not be adjacent keys (no artificial spatial
    // locality for hot keys).
    for (std::uint64_t r = 0; r < 64; ++r) {
        const std::uint64_t k0 = KeyDist::keyForRank(r);
        const std::uint64_t k1 = KeyDist::keyForRank(r + 1);
        EXPECT_NE(k0, 0u);
        EXPECT_GT(std::max(k0, k1) - std::min(k0, k1), 1u);
    }
}

/** Zipfian skew: hot ranks dominate, with frequencies ordered by rank
 *  and the head close to its theoretical share. */
TEST(KeyDist, ZipfianSkewStatistics)
{
    const std::uint64_t n = 1 << 12;
    const int draws = 200000;
    KeyDist d(KeyDistKind::Zipfian, n, 42);
    std::vector<std::uint64_t> freq(n, 0);
    for (int i = 0; i < draws; ++i)
        ++freq[d.nextRank()];

    // Rank popularity must be (statistically) ordered.
    EXPECT_GT(freq[0], freq[10]);
    EXPECT_GT(freq[10], freq[100]);
    EXPECT_GT(freq[100], freq[1000]);

    // Theoretical head share: p(0) = 1/zeta(n, theta). For n = 4096,
    // theta = 0.99, zeta ~ 8.47 -> p(0) ~ 11.8%. Allow a loose band.
    const double p0 = static_cast<double>(freq[0]) / draws;
    EXPECT_GT(p0, 0.08);
    EXPECT_LT(p0, 0.16);

    // The head of the distribution carries a hugely outsized share:
    // the top 1% of ranks covers just under half the draws at
    // theta 0.99, n = 4096 (a uniform head would get 1%).
    std::uint64_t head = 0;
    for (std::uint64_t r = 0; r < n / 100; ++r)
        head += freq[r];
    EXPECT_GT(static_cast<double>(head) / draws, 0.4);
}

/** Uniform: every decile gets its fair share. */
TEST(KeyDist, UniformSpread)
{
    const std::uint64_t n = 1000;
    const int draws = 100000;
    KeyDist d(KeyDistKind::Uniform, n, 42);
    std::vector<std::uint64_t> decile(10, 0);
    for (int i = 0; i < draws; ++i)
        ++decile[d.nextRank() * 10 / n];
    for (int i = 0; i < 10; ++i) {
        EXPECT_GT(decile[i], draws / 10 * 0.9);
        EXPECT_LT(decile[i], draws / 10 * 1.1);
    }
}

/** Degenerate single-rank distribution still works (and is hot). */
TEST(KeyDist, SingleRank)
{
    KeyDist z(KeyDistKind::Zipfian, 1, 3);
    KeyDist u(KeyDistKind::Uniform, 1, 3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(z.nextRank(), 0u);
        EXPECT_EQ(u.nextRank(), 0u);
    }
}

} // namespace
} // namespace gpm
