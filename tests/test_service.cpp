/**
 * @file
 * Serving-path tests: GpKvs serve transactions (get/put/delete batches
 * against the host oracle), the ServiceEngine's determinism and
 * backpressure contracts, and mid-traffic crash recovery with zero
 * acknowledged-write loss.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/status.hpp"
#include "gpm/gpm_runtime.hpp"
#include "service/serve_engine.hpp"
#include "workloads/kvs.hpp"

namespace gpm {
namespace {

GpKvsParams
serveParams()
{
    GpKvsParams p;
    p.n_sets = 1u << 8;
    p.batch_ops = 64;
    p.batches = 1;
    return p;
}

/** First @p n keys mapping to pairwise-distinct sets. */
std::vector<std::uint64_t>
distinctSetKeys(const GpKvs &kvs, std::size_t n,
                std::uint64_t start = 1)
{
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> sets;
    for (std::uint64_t k = start; keys.size() < n; ++k) {
        const std::uint32_t s = kvs.setOf(k);
        bool clash = false;
        for (const std::uint32_t t : sets)
            clash = clash || t == s;
        if (!clash) {
            keys.push_back(k);
            sets.push_back(s);
        }
    }
    return keys;
}

KvRequest
req(KvVerb v, std::uint64_t key, std::uint64_t value = 0)
{
    KvRequest r;
    r.verb = v;
    r.key = key;
    r.value = value;
    return r;
}

TEST(ServeBatch, VerbSemanticsAgainstOracle)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 8_MiB);
    GpKvs kvs(m, serveParams());
    kvs.serveSetup(64);
    gpmPersistBegin(m);

    const std::vector<std::uint64_t> keys = distinctSetKeys(kvs, 4);
    std::vector<std::uint64_t> out;

    // Miss before any write; first PUTs apply.
    kvs.serveBatch({req(KvVerb::Get, keys[0]),
                    req(KvVerb::Put, keys[1], 101),
                    req(KvVerb::Put, keys[2], 202)},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 1}));

    // GET hits, overwrite, DEL of a present key.
    kvs.serveBatch({req(KvVerb::Get, keys[1]),
                    req(KvVerb::Put, keys[2], 203),
                    req(KvVerb::Put, keys[0], 300)},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{101, 1, 1}));

    kvs.serveBatch({req(KvVerb::Get, keys[2]),
                    req(KvVerb::Del, keys[1]),
                    req(KvVerb::Get, keys[0])},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{203, 1, 300}));

    // Delete-then-get misses; deleting an absent key reports 0.
    kvs.serveBatch({req(KvVerb::Get, keys[1]),
                    req(KvVerb::Del, keys[3])},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 0}));
    gpmPersistEnd(m);
}

TEST(ServeBatch, MatchesReferenceOnRandomStreams)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 8_MiB);
    const GpKvsParams p = serveParams();
    GpKvs kvs(m, p);
    kvs.serveSetup(64);
    gpmPersistBegin(m);

    std::vector<KvPair> mirror(std::uint64_t(p.n_sets) *
                               GpKvsParams::kWays);
    Rng rng(99);
    for (int batch = 0; batch < 30; ++batch) {
        // Greedy per-batch set dedup, exactly the engine's contract.
        std::vector<KvRequest> reqs;
        std::vector<std::uint32_t> sets;
        while (reqs.size() < 48) {
            const std::uint64_t key = 1 + rng.below(512);
            const std::uint32_t s = kvs.setOf(key);
            bool clash = false;
            for (const std::uint32_t t : sets)
                clash = clash || t == s;
            if (clash)
                continue;
            sets.push_back(s);
            const double u = rng.uniform();
            if (u < 0.4)
                reqs.push_back(req(KvVerb::Get, key));
            else if (u < 0.55)
                reqs.push_back(req(KvVerb::Del, key));
            else
                reqs.push_back(req(KvVerb::Put, key, rng.next() | 1));
        }
        std::vector<std::uint64_t> out;
        kvs.serveBatch(reqs, out);
        ASSERT_EQ(out.size(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const std::uint64_t expected = GpKvs::serveReference(
                &mirror[std::uint64_t(kvs.setOf(reqs[i].key)) *
                        GpKvsParams::kWays],
                reqs[i]);
            EXPECT_EQ(out[i], expected)
                << "batch " << batch << " op " << i;
        }
    }
    EXPECT_TRUE(kvs.durableEquals(mirror));
    gpmPersistEnd(m);
}

TEST(ServeBatch, BoundarySetsAddressTheStoreEdges)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 8_MiB);
    const GpKvsParams p = serveParams();
    GpKvs kvs(m, p);
    kvs.serveSetup(64);
    gpmPersistBegin(m);

    // One key on the first set and one on the last: PUT + GET round
    // trips must address the first and last 128 B lines of the store.
    std::uint64_t first_key = 0, last_key = 0;
    for (std::uint64_t k = 1; first_key == 0 || last_key == 0; ++k) {
        if (kvs.setOf(k) == 0 && first_key == 0)
            first_key = k;
        if (kvs.setOf(k) == p.n_sets - 1 && last_key == 0)
            last_key = k;
    }
    std::vector<std::uint64_t> out;
    kvs.serveBatch({req(KvVerb::Put, first_key, 111),
                    req(KvVerb::Put, last_key, 222)},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 1}));
    kvs.serveBatch({req(KvVerb::Get, first_key),
                    req(KvVerb::Get, last_key)},
                   out);
    EXPECT_EQ(out, (std::vector<std::uint64_t>{111, 222}));
    gpmPersistEnd(m);
}

TEST(ServeBatch, RejectsTwoOpsOnOneSet)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 8_MiB);
    GpKvs kvs(m, serveParams());
    kvs.serveSetup(64);
    gpmPersistBegin(m);

    // Two distinct keys on the same set violate the batcher contract.
    const std::uint64_t k1 = 1;
    std::uint64_t k2 = 2;
    while (kvs.setOf(k2) != kvs.setOf(k1))
        ++k2;
    std::vector<std::uint64_t> out;
    EXPECT_THROW(kvs.serveBatch({req(KvVerb::Put, k1, 1),
                                 req(KvVerb::Put, k2, 2)},
                                out),
                 FatalError);
    gpmPersistEnd(m);
}

ServeConfig
smallEngineConfig()
{
    ServeConfig sc;
    sc.shards = 2;
    sc.n_sets = 1u << 10;
    sc.clients = 96;
    sc.requests = 3000;
    sc.batch_max = 48;
    sc.batch_deadline_ns = 20000;
    sc.queue_depth = 128;
    sc.think_ns = 1500;
    sc.key_space = 1u << 14;
    sc.seed = 7;
    return sc;
}

TEST(ServiceEngine, CleanRunServesEverythingOracleChecked)
{
    const ServeConfig sc = smallEngineConfig();
    const ServeReport r = ServiceEngine(sc).run();
    EXPECT_EQ(r.ops_issued, sc.requests);
    EXPECT_EQ(r.ops_acked, sc.requests);
    EXPECT_EQ(r.oracle_failures, 0u);
    EXPECT_GT(r.batches, 0u);
    EXPECT_EQ(r.batches, r.size_closes + r.deadline_closes);
    EXPECT_EQ(r.latency.count, sc.requests);
    EXPECT_GT(r.makespan_ns, 0.0);
    EXPECT_GT(r.throughput_mops, 0.0);
    EXPECT_FALSE(r.crash_armed);
}

TEST(ServiceEngine, BitIdenticalAcrossWorkerWidths)
{
    ServeConfig sc = smallEngineConfig();
    ServeReport base;
    for (const int w : {1, 2, 4, 8}) {
        sc.jobs = w;
        sc.exec_workers = w;
        const ServeReport r = ServiceEngine(sc).run();
        if (w == 1) {
            base = r;
            continue;
        }
        EXPECT_EQ(r.ack_signature, base.ack_signature) << "width " << w;
        EXPECT_EQ(r.signature(), base.signature()) << "width " << w;
    }
    // And the seed must actually matter.
    sc.jobs = 1;
    sc.exec_workers = 1;
    sc.seed = 8;
    EXPECT_NE(ServiceEngine(sc).run().ack_signature,
              base.ack_signature);
}

TEST(ServiceEngine, BackpressureBlocksAndRecovers)
{
    ServeConfig sc = smallEngineConfig();
    sc.clients = 256;
    sc.queue_depth = 16;
    sc.requests = 2000;
    sc.think_ns = 0.0;
    const ServeReport r = ServiceEngine(sc).run();
    EXPECT_GT(r.blocked_admissions, 0u);
    EXPECT_EQ(r.ops_acked, sc.requests);  // stalls delay, never drop
    EXPECT_EQ(r.oracle_failures, 0u);
}

TEST(ServiceEngine, ZipfianTrafficDefersSameSetConflicts)
{
    ServeConfig sc = smallEngineConfig();
    sc.dist = KeyDistKind::Zipfian;
    sc.key_space = 1u << 10;
    sc.clients = 192;
    sc.think_ns = 0.0;
    const ServeReport r = ServiceEngine(sc).run();
    EXPECT_GT(r.deferred_conflicts, 0u);
    EXPECT_EQ(r.ops_acked, sc.requests);
    EXPECT_EQ(r.oracle_failures, 0u);
}

TEST(ServiceEngine, MidTrafficCrashLosesNoAcknowledgedWrite)
{
    int fired = 0;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        for (const double survive : {0.0, 0.5}) {
            ServeConfig sc;
            sc.shards = 2;
            sc.n_sets = 1u << 9;
            sc.clients = 256;
            sc.requests = 2048;
            sc.batch_max = 32;
            sc.batch_deadline_ns = 1e6;
            sc.queue_depth = 128;
            sc.think_ns = 0.0;
            sc.get_ratio = 0.3;
            sc.del_ratio = 0.1;
            sc.key_space = 1u << 12;
            sc.seed = seed;
            sc.crash_at_launch = 5;
            sc.crash_point = CrashPoint::afterThreadPhases(
                sc.batch_max * GpKvsParams::kGroup / 2);
            sc.survive_prob = survive;
            const ServeReport r = ServiceEngine(sc).run();
            EXPECT_TRUE(r.crash_armed);
            fired += r.crash_fired ? 1 : 0;
            EXPECT_TRUE(r.recovery_ran) << "seed " << seed;
            EXPECT_TRUE(r.durable_ok)
                << "acked writes lost, seed " << seed << " survive "
                << survive;
            EXPECT_EQ(r.oracle_failures, 0u);
            EXPECT_EQ(r.pool_crashes, 2u);
        }
    }
    EXPECT_GT(fired, 0);
}

TEST(ServiceEngine, DdioTrapLosesAckedWritesUnderCrash)
{
    // The GPM-NDP trap: persist window closed, fences order but
    // nothing persists. The engine must *detect* the acked-write
    // loss, not paper over it.
    ServeConfig sc;
    sc.shards = 2;
    sc.n_sets = 1u << 9;
    sc.clients = 256;
    sc.requests = 2048;
    sc.batch_max = 32;
    sc.batch_deadline_ns = 1e6;
    sc.queue_depth = 128;
    sc.think_ns = 0.0;
    sc.get_ratio = 0.3;
    sc.del_ratio = 0.1;
    sc.key_space = 1u << 12;
    sc.seed = 3;
    sc.open_persist_window = false;
    sc.crash_at_launch = 5;
    sc.crash_point = CrashPoint::afterThreadPhases(
        sc.batch_max * GpKvsParams::kGroup / 2);
    sc.survive_prob = 0.0;
    const ServeReport r = ServiceEngine(sc).run();
    EXPECT_FALSE(r.durable_ok);
}

} // namespace
} // namespace gpm
