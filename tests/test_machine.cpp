/**
 * @file
 * Unit tests for the Machine platform layer: clock accounting, the
 * per-platform persist paths, fence-latency selection, DDIO toggling,
 * counters for Table 4 / Fig 12, and timing monotonicity properties.
 */
#include <gtest/gtest.h>

#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "platform/machine.hpp"

namespace gpm {
namespace {

KernelDesc
storeKernel(std::uint64_t threads, std::uint64_t stride,
            bool fence = true)
{
    KernelDesc k;
    k.name = "stores";
    k.blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, threads / 128));
    k.block_threads = 128;
    k.phases.push_back([stride, fence](ThreadCtx &ctx) {
        const std::uint64_t v = ctx.globalId();
        ctx.pmStore(ctx.globalId() * stride, v);
        if (fence)
            ctx.threadfenceSystem();
    });
    return k;
}

TEST(Machine, ClockAdvancesMonotonically)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    EXPECT_DOUBLE_EQ(m.now(), 0.0);
    m.cpuCompute(1000, 4);
    const SimNs t1 = m.now();
    EXPECT_GT(t1, 0.0);
    m.dmaDeviceToHost(1_MiB);
    EXPECT_GT(m.now(), t1);
}

TEST(Machine, DdioToggleOnlyMovesDomainOnGpm)
{
    SimConfig cfg;
    Machine gpm(cfg, PlatformKind::Gpm, 1_MiB);
    EXPECT_EQ(gpm.pool().domain(), PersistDomain::LlcVolatile);
    gpm.ddioOff();
    EXPECT_EQ(gpm.pool().domain(), PersistDomain::McDurable);
    gpm.ddioOn();
    EXPECT_EQ(gpm.pool().domain(), PersistDomain::LlcVolatile);

    Machine ndp(cfg, PlatformKind::GpmNdp, 1_MiB);
    ndp.ddioOff();
    EXPECT_EQ(ndp.pool().domain(), PersistDomain::LlcVolatile);

    Machine eadr(cfg, PlatformKind::GpmEadr, 1_MiB);
    eadr.ddioOff();
    EXPECT_EQ(eadr.pool().domain(), PersistDomain::LlcDurable);
}

TEST(Machine, FenceHeavyKernelSlowerUnderMcDomain)
{
    SimConfig cfg;
    // Same kernel: fences at the memory controller (GPM) cost more
    // than fences completing at the LLC (eADR).
    Machine a(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(a);
    a.runKernel(storeKernel(4096, 4096));
    Machine b(cfg, PlatformKind::GpmEadr, 64_MiB);
    b.runKernel(storeKernel(4096, 4096));
    EXPECT_GT(a.now(), b.now());
}

TEST(Machine, KernelTimeMonotonicInThreads)
{
    SimConfig cfg;
    SimNs prev = 0;
    for (const std::uint64_t threads : {1024u, 4096u, 16384u}) {
        Machine m(cfg, PlatformKind::Gpm, 256_MiB);
        gpmPersistBegin(m);
        const SimNs t0 = m.now();
        m.runKernel(storeKernel(threads, 4096));
        const SimNs dt = m.now() - t0;
        EXPECT_GT(dt, prev);
        prev = dt;
    }
}

TEST(Machine, PersistentKernelSkipsLaunchOverhead)
{
    SimConfig cfg;
    Machine a(cfg, PlatformKind::GpmEadr, 16_MiB);
    Machine b(cfg, PlatformKind::GpmEadr, 16_MiB);
    KernelDesc k = storeKernel(128, 64, false);
    a.runKernel(k);
    k.no_launch_overhead = true;
    b.runKernel(k);
    EXPECT_NEAR(a.now() - b.now(), cfg.kernel_launch_ns, 1e-6);
}

TEST(Machine, CapMmPersistIsFunctionalAndCharged)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CapMm, 16_MiB);
    const PmRegion r = m.pool().map("buf", 1_MiB, true);
    std::vector<std::uint8_t> src(1_MiB, 0x7e);
    const SimNs t0 = m.now();
    m.capMmPersist(r.offset, src.data(), src.size(), 16);
    EXPECT_GT(m.now(), t0);
    EXPECT_EQ(m.pool().loadDurable<std::uint8_t>(r.offset + 12345),
              0x7e);
    EXPECT_EQ(m.persistPayloadBytes(), 1_MiB);
    EXPECT_EQ(m.pcieWriteBytes(), 1_MiB);  // the DMA leg
}

TEST(Machine, CapFsSlowerThanCapMmForSamePayload)
{
    SimConfig cfg;
    Machine fs(cfg, PlatformKind::CapFs, 16_MiB);
    Machine mm(cfg, PlatformKind::CapMm, 16_MiB);
    const PmRegion rf = fs.pool().map("buf", 1_MiB, true);
    const PmRegion rm = mm.pool().map("buf", 1_MiB, true);
    std::vector<std::uint8_t> src(1_MiB, 1);
    fs.capFsPersist(rf.offset, src.data(), src.size(), 1);
    mm.capMmPersist(rm.offset, src.data(), src.size(), 16);
    EXPECT_GT(fs.now(), mm.now());
}

TEST(Machine, CapPersistChunksOnlyMovesDirtyChunks)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::CapMm, 16_MiB);
    const PmRegion r = m.pool().map("buf", 64_KiB, true);
    std::vector<std::uint8_t> host(64_KiB, 0x11);
    m.capPersistChunks(r.offset, host.data(), {1, 3}, 4096, 8, false);
    EXPECT_EQ(m.persistPayloadBytes(), 2u * 4096);
    // Chunk 1 durable, chunk 0 untouched.
    EXPECT_EQ(m.pool().loadDurable<std::uint8_t>(r.offset + 4096),
              0x11);
    EXPECT_EQ(m.pool().loadDurable<std::uint8_t>(r.offset), 0x00);
    // No chunks: free and silent.
    const SimNs t = m.now();
    m.capPersistChunks(r.offset, host.data(), {}, 4096, 8, false);
    EXPECT_DOUBLE_EQ(m.now(), t);
}

TEST(Machine, CpuPersistScatteredDrainsEverything)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::GpmNdp, 16_MiB);
    m.runKernel(storeKernel(256, 512, false));
    EXPECT_GT(m.pool().pendingExtents(), 0u);
    m.cpuPersistScattered(256 * 64, 8);
    EXPECT_EQ(m.pool().pendingExtents(), 0u);
}

TEST(Machine, GpufsWriteRequiresGpufsPlatform)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    const PmRegion r = m.pool().map("f", 4096, true);
    std::uint8_t b[16] = {};
    EXPECT_THROW(m.gpufsWrite(r.offset, b, 16, 1), FatalError);

    Machine g(cfg, PlatformKind::Gpufs, 16_MiB);
    EXPECT_TRUE(g.gpufsSupported(1_GiB));
    EXPECT_FALSE(g.gpufsSupported(3_GiB));
    const PmRegion rg = g.pool().map("f", 4096, true);
    g.gpufsWrite(rg.offset, b, 16, 1);
    EXPECT_EQ(g.pool().pendingExtents(), 0u);  // OS persisted it
}

TEST(Machine, EadrKernelFasterThanGpmOnRandomWrites)
{
    SimConfig cfg;
    // Random-tier media time leaves the critical path under eADR.
    Machine a(cfg, PlatformKind::Gpm, 256_MiB);
    gpmPersistBegin(a);
    Machine b(cfg, PlatformKind::GpmEadr, 256_MiB);
    a.runKernel(storeKernel(16384, 8192));
    b.runKernel(storeKernel(16384, 8192));
    EXPECT_GT(a.now(), 2.0 * b.now());
}

TEST(Machine, CpuFlushScalingMatchesFig3a)
{
    SimConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.cpuFlushScaling(1), 1.0);
    EXPECT_NEAR(cfg.cpuFlushScaling(64), 1.46, 0.02);
    EXPECT_GT(cfg.cpuFlushScaling(16), cfg.cpuFlushScaling(4));
    EXPECT_LT(cfg.cpuFlushScaling(1000), cfg.cpu_flush_plateau);
}

TEST(Machine, WpqAbsorbsSmallBursts)
{
    SimConfig cfg;
    // A burst under the WPQ capacity costs (almost) no media time.
    Machine small(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(small);
    const SimNs t0 = small.now();
    small.runKernel(storeKernel(64, 8192, false));  // 8 KiB random
    const SimNs small_dt = small.now() - t0;

    Machine big(cfg, PlatformKind::Gpm, 256_MiB);
    gpmPersistBegin(big);
    const SimNs t1 = big.now();
    big.runKernel(storeKernel(8192, 8192, false));  // 1 MiB random
    const SimNs big_dt = big.now() - t1;
    EXPECT_GT(big_dt, 20.0 * small_dt / 128.0 * 1.0);
    EXPECT_GT(big_dt / 128.0, small_dt / 4.0);  // superlinear: media
}

} // namespace
} // namespace gpm
