/**
 * @file
 * Unit + property tests for the SIMT executor: thread identity, phase
 * (barrier) semantics, warp coalescing, divergence handling, fence
 * accounting, crash points, and launch statistics.
 */
#include <gtest/gtest.h>

#include <set>

#include "gpusim/gpu_executor.hpp"
#include "gpusim/kernel.hpp"
#include "memsim/nvm_model.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {
namespace {

struct Rig {
    SimConfig cfg;
    PmPool pool{16_MiB, PersistDomain::McDurable};
    NvmModel nvm{cfg};
    GpuExecutor gpu{cfg, pool, nvm};
};

TEST(GpuExecutor, ThreadIdentity)
{
    Rig rig;
    KernelDesc k;
    k.name = "ids";
    k.blocks = 3;
    k.block_threads = 96;
    std::set<std::uint64_t> gids;
    k.phases.push_back([&](ThreadCtx &ctx) {
        gids.insert(ctx.globalId());
        EXPECT_EQ(ctx.globalId(),
                  std::uint64_t(ctx.blockIdx()) * ctx.blockDim() +
                      ctx.threadIdx());
        EXPECT_EQ(ctx.lane(), ctx.threadIdx() % 32);
        EXPECT_EQ(ctx.warpInBlock(), ctx.threadIdx() / 32);
        EXPECT_EQ(ctx.globalWarp(),
                  std::uint64_t(ctx.blockIdx()) * 3 +
                      ctx.warpInBlock());
        EXPECT_EQ(ctx.gridDim(), 3u);
        EXPECT_EQ(ctx.blockDim(), 96u);
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_EQ(gids.size(), 288u);
    EXPECT_EQ(s.threads, 288u);
    EXPECT_EQ(s.blocks, 3u);
}

TEST(GpuExecutor, PhasesActAsBlockBarriers)
{
    Rig rig;
    // Phase 0 writes per-thread values; phase 1 reads a *different*
    // thread's value — only correct if the barrier semantics hold.
    std::vector<std::uint32_t> shared(128, 0);
    bool ok = true;
    KernelDesc k;
    k.name = "barrier";
    k.blocks = 1;
    k.block_threads = 128;
    k.phases.push_back([&](ThreadCtx &ctx) {
        shared[ctx.threadIdx()] = ctx.threadIdx() + 1;
    });
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint32_t peer = 127 - ctx.threadIdx();
        ok = ok && shared[peer] == peer + 1;
    });
    rig.gpu.launch(k);
    EXPECT_TRUE(ok);
}

TEST(GpuExecutor, WarpLaneStoresCoalesceToOneLine)
{
    Rig rig;
    KernelDesc k;
    k.name = "coalesce";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint32_t v = ctx.lane();
        ctx.pmStore(std::uint64_t(ctx.lane()) * 4, v);
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_EQ(s.pm_line_txns, 1u);        // 32 x 4 B -> one 128 B txn
    EXPECT_EQ(s.pm_line_bytes, 128u);
    EXPECT_EQ(s.pm_payload_bytes, 128u);
}

TEST(GpuExecutor, ScatteredStoresDoNotCoalesce)
{
    Rig rig;
    KernelDesc k;
    k.name = "scattered";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint32_t v = 1;
        ctx.pmStore(std::uint64_t(ctx.lane()) * 4096, v);
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_EQ(s.pm_line_txns, 32u);
}

TEST(GpuExecutor, LoopIterationsCoalescePerOccurrence)
{
    Rig rig;
    KernelDesc k;
    k.name = "loop";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        for (std::uint32_t i = 0; i < 4; ++i) {
            const std::uint32_t v = i;
            // Iteration i of all lanes shares a 128 B line.
            ctx.pmStore((std::uint64_t(i) * 32 + ctx.lane()) * 4, v);
        }
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_EQ(s.pm_line_txns, 4u);
}

TEST(GpuExecutor, DivergentThreadsDoNotMergeAcrossSites)
{
    Rig rig;
    KernelDesc k;
    k.name = "divergent";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint32_t v = 1;
        if (ctx.lane() % 2 == 0)
            ctx.pmStore(std::uint64_t(ctx.lane()) * 4, v);
        else
            ctx.pmStore(4096 + std::uint64_t(ctx.lane()) * 4, v);
    });
    const LaunchStats s = rig.gpu.launch(k);
    // Two separate program points -> two coalesced transactions.
    EXPECT_EQ(s.pm_line_txns, 2u);
}

TEST(GpuExecutor, FenceCountsAndPersists)
{
    Rig rig;
    KernelDesc k;
    k.name = "fence";
    k.blocks = 2;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t v = ctx.globalId();
        ctx.pmStore(ctx.globalId() * 8, v);
        EXPECT_TRUE(ctx.threadfenceSystem());
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_EQ(s.fences, 64u);
    EXPECT_EQ(rig.pool.pendingExtents(), 0u);
    EXPECT_EQ(rig.pool.loadDurable<std::uint64_t>(63 * 8), 63u);
}

TEST(GpuExecutor, WorkAndHbmAccumulate)
{
    Rig rig;
    KernelDesc k;
    k.name = "work";
    k.blocks = 1;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &ctx) {
        ctx.work(2.5);
        ctx.hbmTraffic(100);
    });
    const LaunchStats s = rig.gpu.launch(k);
    EXPECT_DOUBLE_EQ(s.work_ops, 160.0);
    EXPECT_EQ(s.hbm_bytes, 6400u);
}

TEST(GpuExecutor, RejectsEmptyKernels)
{
    Rig rig;
    KernelDesc k;
    k.name = "empty";
    EXPECT_THROW(rig.gpu.launch(k), FatalError);
    k.phases.push_back([](ThreadCtx &) {});
    k.blocks = 0;
    EXPECT_THROW(rig.gpu.launch(k), FatalError);
}

class CrashPointSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CrashPointSweep, ExecutesExactlyNThreadPhases)
{
    Rig rig;
    const std::uint64_t crash_at = GetParam() * 37;
    std::uint64_t executed = 0;
    KernelDesc k;
    k.name = "crash";
    k.blocks = 4;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &) { ++executed; });
    k.phases.push_back([&](ThreadCtx &) { ++executed; });
    k.crash = CrashPoint{crash_at};
    try {
        rig.gpu.launch(k);
        FAIL() << "crash point did not fire";
    } catch (const KernelCrashed &c) {
        EXPECT_EQ(c.executed_thread_phases, crash_at);
        EXPECT_EQ(executed, crash_at);
    }
}

INSTANTIATE_TEST_SUITE_P(Points, CrashPointSweep,
                         ::testing::Range(0, 13));

TEST(GpuExecutor, StreamOverrideUnifiesCrossWarpAppends)
{
    // Two warps appending 8 B records to one shared tail region (the
    // conventional-log pattern): per-warp stream identity sees two
    // short, random-tier runs; the explicit stream override lets the
    // media merge them into one sequential run.
    auto run = [&](bool with_override) {
        Rig rig;
        KernelDesc k;
        k.name = "appends";
        k.blocks = 1;
        k.block_threads = 64;  // two warps cover 512 B back-to-back
        k.phases.push_back([with_override](ThreadCtx &ctx) {
            const std::uint64_t addr = ctx.globalId() * 8;
            const std::uint64_t rec = ctx.globalId();
            if (with_override)
                ctx.pmWriteStream(1ull << 50, addr, &rec, 8);
            else
                ctx.pmWrite(addr, &rec, 8);
        });
        const LaunchStats s = rig.gpu.launch(k);
        return s.nvm;
    };
    const NvmTierBytes merged = run(true);
    const NvmTierBytes split = run(false);
    EXPECT_EQ(merged.seq_aligned, 512u);  // one 512 B aligned run
    EXPECT_EQ(merged.random, 0u);
    EXPECT_EQ(split.random, 512u);        // two sub-2-line runs
    EXPECT_EQ(split.seq_aligned, 0u);
}

TEST(GpuExecutor, NvmTierDeltaIsPerLaunch)
{
    Rig rig;
    KernelDesc k;
    k.name = "delta";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint32_t v = 0;
        for (std::uint32_t i = 0; i < 16; ++i)
            ctx.pmStore((std::uint64_t(i) * 32 + ctx.lane()) * 4, v);
    });
    const LaunchStats s1 = rig.gpu.launch(k);
    const LaunchStats s2 = rig.gpu.launch(k);
    // Each launch writes one aligned 2 KiB run.
    EXPECT_EQ(s1.nvm.total(), 2048u);
    EXPECT_EQ(s2.nvm.total(), 2048u);
}

} // namespace
} // namespace gpm
