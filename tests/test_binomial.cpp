/**
 * @file
 * Binomial-options tests: CRR pricing correctness (convergence to the
 * Black–Scholes closed form), platform coverage, and the section 4.3
 * claim that GPM gains almost nothing without persist parallelism.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "workloads/binomial.hpp"
#include "workloads/blackscholes.hpp"

namespace gpm {
namespace {

TEST(Binomial, ConvergesToBlackScholes)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    BinomialParams p;
    p.options = 16;
    p.steps = 512;  // deep tree: tight convergence
    GpBinomial app(m, p);
    app.setup();

    // Closed-form European call with the same r = 2 %.
    auto bs_call = [](float s, float k, float v, float t) {
        const float sqrt_t = std::sqrt(t);
        const float d1 =
            (std::log(s / k) + (0.02f + 0.5f * v * v) * t) /
            (v * sqrt_t);
        const float d2 = d1 - v * sqrt_t;
        auto cdf = [](float x) {
            return 0.5f * std::erfc(-x * 0.70710678f);
        };
        return s * cdf(d1) - k * std::exp(-0.02f * t) * cdf(d2);
    };

    for (std::uint32_t i = 0; i < p.options; ++i) {
        float s, k, v, t;
        app.option(i, s, k, v, t);
        const float tree = app.referencePrice(i);
        const float closed = bs_call(s, k, v, t);
        EXPECT_NEAR(tree, closed, 0.01f * s + 0.05f)
            << "option " << i;
    }
}

TEST(Binomial, RunsAndPersistsOnGpm)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 16_MiB);
    BinomialParams p;
    p.options = 64;
    p.steps = 64;
    GpBinomial app(m, p);
    const WorkloadResult r = app.run();
    EXPECT_TRUE(r.verified);
    // Results are durable after the in-kernel persists.
    m.pool().crash();
    EXPECT_EQ(app.durablePrice(7), app.referencePrice(7));
}

TEST(Binomial, RunsOnCapPlatforms)
{
    for (PlatformKind kind : {PlatformKind::CapFs, PlatformKind::CapMm,
                              PlatformKind::GpmNdp,
                              PlatformKind::GpmEadr}) {
        SimConfig cfg;
        Machine m(cfg, kind, 16_MiB);
        BinomialParams p;
        p.options = 32;
        p.steps = 32;
        GpBinomial app(m, p);
        EXPECT_TRUE(app.run().supported) << platformName(kind);
    }
}

TEST(Binomial, GpmGainsLittleWithoutPersistParallelism)
{
    // The section 4.3 claim, as a regression test: GPM's advantage
    // over CAP-fs is at most ~2x here, far under the GPMbench range.
    SimConfig cfg;
    Machine fs(cfg, PlatformKind::CapFs, 16_MiB);
    Machine gp(cfg, PlatformKind::Gpm, 16_MiB);
    BinomialParams p;
    GpBinomial a(fs, p), b(gp, p);
    const SimNs cap_ns = a.run().op_ns;
    const SimNs gpm_ns = b.run().op_ns;
    EXPECT_LT(cap_ns / gpm_ns, 2.0);
}

} // namespace
} // namespace gpm
