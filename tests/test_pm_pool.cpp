/**
 * @file
 * Unit + property tests for the crash-consistent PM device: region
 * mapping, the visible/durable split per persistence domain, fences,
 * range flushes, partial-eviction crashes, and file backing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "pmem/pm_pool.hpp"

namespace gpm {
namespace {

TEST(PmPool, RegionMappingAndReopen)
{
    PmPool pool(1_MiB, PersistDomain::McDurable);
    const PmRegion a = pool.map("a", 1000, true);
    const PmRegion b = pool.map("b", 2000, true);
    EXPECT_TRUE(isAligned(a.offset, 256));
    EXPECT_TRUE(isAligned(b.offset, 256));
    EXPECT_GE(b.offset, a.offset + a.size);

    const PmRegion a2 = pool.map("a", 0, false);  // reopen
    EXPECT_EQ(a2.offset, a.offset);
    EXPECT_THROW(pool.map("a", 123, true), FatalError);  // wrong size
    EXPECT_THROW(pool.map("missing", 0, false), FatalError);
    EXPECT_TRUE(pool.hasRegion("a"));
    EXPECT_FALSE(pool.hasRegion("c"));
}

TEST(PmPool, PoolExhaustionIsUserError)
{
    PmPool pool(4096, PersistDomain::McDurable);
    EXPECT_THROW(pool.map("big", 8192, true), FatalError);
}

TEST(PmPool, OutOfRangeAccessIsUserError)
{
    PmPool pool(4096, PersistDomain::McDurable);
    std::uint64_t v = 1;
    EXPECT_THROW(pool.deviceWrite(0, 4090, &v, 8), FatalError);
    EXPECT_THROW(pool.read(4096, &v, 1), FatalError);
}

TEST(PmPool, WritesVisibleImmediatelyButNotDurable)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t v = 0xdeadbeef;
    pool.deviceWrite(1, 0, &v, 8);
    EXPECT_EQ(pool.load<std::uint64_t>(0), v);
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 0u);
    EXPECT_EQ(pool.pendingExtents(), 1u);
}

TEST(PmPool, FencePersistsOnlyOwnersWrites)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t a = 1, b = 2;
    pool.deviceWrite(10, 0, &a, 8);
    pool.deviceWrite(11, 8, &b, 8);
    EXPECT_TRUE(pool.persistOwner(10));
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 1u);
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(8), 0u);
    pool.crash();
    EXPECT_EQ(pool.load<std::uint64_t>(8), 0u);  // b was lost
}

TEST(PmPool, LlcVolatileFenceDoesNotPersist)
{
    PmPool pool(4096, PersistDomain::LlcVolatile);
    const std::uint64_t v = 7;
    pool.deviceWrite(1, 0, &v, 8);
    EXPECT_FALSE(pool.persistOwner(1));  // DDIO trap
    pool.crash();
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 0u);
}

TEST(PmPool, LlcDurableIsDurableOnArrival)
{
    PmPool pool(4096, PersistDomain::LlcDurable);
    const std::uint64_t v = 9;
    pool.deviceWrite(1, 0, &v, 8);
    EXPECT_EQ(pool.pendingExtents(), 0u);
    EXPECT_TRUE(pool.persistOwner(1));
    pool.crash();
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 9u);
}

TEST(PmPool, PersistRangeDrainsAnyOwnerByAddress)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t a = 1, b = 2, c = 3;
    pool.deviceWrite(1, 0, &a, 8);
    pool.deviceWrite(2, 300, &b, 8);
    pool.cpuWrite(3, 600, &c, 8);
    pool.persistRange(0, 128);  // covers a and nothing else
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 1u);
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(600), 0u);
    EXPECT_EQ(pool.pendingExtents(), 2u);
    pool.persistAll();
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(300), 2u);
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(600), 3u);
}

TEST(PmPool, CrashResetsVisibleToDurable)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t a = 1, b = 2;
    pool.deviceWrite(1, 0, &a, 8);
    pool.persistOwner(1);
    pool.deviceWrite(1, 0, &b, 8);  // overwrite, unpersisted
    EXPECT_EQ(pool.load<std::uint64_t>(0), 2u);
    pool.crash();
    EXPECT_EQ(pool.load<std::uint64_t>(0), 1u);
    EXPECT_EQ(pool.pendingExtents(), 0u);
}

class PmPoolEviction : public ::testing::TestWithParam<int>
{
};

TEST_P(PmPoolEviction, PartialSurvivalIsPerExtentAndBounded)
{
    PmPool pool(64_KiB, PersistDomain::McDurable,
                static_cast<std::uint64_t>(GetParam()) + 1);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t v = 0x1000 + i;
        pool.deviceWrite(i, i * 64, &v, 8);
    }
    pool.crash(/*survive_prob=*/0.5);
    int survived = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t d =
            pool.loadDurable<std::uint64_t>(i * 64);
        if (d != 0) {
            EXPECT_EQ(d, 0x1000u + i);  // survivors are intact
            ++survived;
        }
    }
    // Loose binomial bounds around p = 0.5.
    EXPECT_GT(survived, n / 4);
    EXPECT_LT(survived, 3 * n / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmPoolEviction, ::testing::Range(0, 6));

TEST(PmPool, SurviveProbabilityExtremes)
{
    PmPool lose(4096, PersistDomain::McDurable, 1);
    PmPool keep(4096, PersistDomain::McDurable, 1);
    const std::uint64_t v = 5;
    lose.deviceWrite(0, 0, &v, 8);
    keep.deviceWrite(0, 0, &v, 8);
    lose.crash(0.0);
    keep.crash(1.0);
    EXPECT_EQ(lose.loadDurable<std::uint64_t>(0), 0u);
    EXPECT_EQ(keep.loadDurable<std::uint64_t>(0), 5u);
}

TEST(PmPool, SaveAndLoadDurableRoundTrip)
{
    const char *path = "/tmp/gpm_test_pool.img";
    {
        PmPool pool(8192, PersistDomain::McDurable);
        pool.map("data", 512, true);
        const std::uint64_t v = 0xabcdef;
        pool.deviceWrite(0, pool.region("data").offset, &v, 8);
        pool.persistOwner(0);
        pool.saveDurable(path);
    }
    PmPool loaded =
        PmPool::loadDurable(path, PersistDomain::McDurable);
    EXPECT_EQ(loaded.capacity(), 8192u);
    const PmRegion data = loaded.region("data");
    EXPECT_EQ(data.size, 512u);
    EXPECT_EQ(loaded.load<std::uint64_t>(data.offset), 0xabcdefu);
    // Allocation cursor restored: a new region does not overlap.
    const PmRegion more = loaded.map("more", 256, true);
    EXPECT_GE(more.offset, data.offset + data.size);
    std::remove(path);
}

TEST(PmPool, ContiguousAppendsCoalesceIntoOneExtent)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t v = 1;
    for (std::uint64_t i = 0; i < 16; ++i)
        pool.deviceWrite(0, i * 8, &v, 8);
    // An append stream is one pending extent, not sixteen.
    EXPECT_EQ(pool.pendingExtents(), 1u);
    EXPECT_EQ(pool.pendingBytes(), 128u);
    EXPECT_EQ(pool.stats().extents_merged, 15u);
}

TEST(PmPool, RewritesDoNotDoubleCountPendingBytes)
{
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t v = 2;
    for (int i = 0; i < 10; ++i)
        pool.deviceWrite(0, 64, &v, 8);
    // Rewriting the same word overlaps the owner's last extent; the
    // dirty range stays 8 bytes.
    EXPECT_EQ(pool.pendingExtents(), 1u);
    EXPECT_EQ(pool.pendingBytes(), 8u);

    // Overlapping-but-growing writes track the union of the range.
    pool.deviceWrite(0, 60, &v, 8);   // extends left
    pool.deviceWrite(0, 68, &v, 8);   // extends right
    EXPECT_EQ(pool.pendingExtents(), 1u);
    EXPECT_EQ(pool.pendingBytes(), 16u);
}

TEST(PmPool, OnlyLastExtentIsMergeEligible)
{
    // Touching an *older* extent again does not merge (insertion
    // order — hence crash-time line enumeration — is preserved), so
    // the two extents persist and drain independently.
    PmPool pool(4096, PersistDomain::McDurable);
    const std::uint64_t v = 3;
    pool.deviceWrite(0, 0, &v, 8);     // extent A
    pool.deviceWrite(0, 1024, &v, 8);  // extent B (not adjacent)
    pool.deviceWrite(0, 8, &v, 8);     // abuts A, but A is not last
    EXPECT_EQ(pool.pendingExtents(), 3u);
    EXPECT_EQ(pool.pendingBytes(), 24u);
    EXPECT_EQ(pool.stats().extents_merged, 0u);
    EXPECT_TRUE(pool.persistOwner(0));
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(8), 3u);
}

TEST(PmPool, MergedExtentsPersistAndCrashCorrectly)
{
    PmPool a(4096, PersistDomain::McDurable, 11);
    PmPool b(4096, PersistDomain::McDurable, 11);
    // Same bytes, written as one contiguous stream (merges in `a`)
    // vs. strided then back-filled (no merges in `b`).
    std::uint8_t buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = static_cast<std::uint8_t>(i + 1);
    for (std::uint64_t i = 0; i < 8; ++i)
        a.deviceWrite(0, i * 32, buf, 32);
    for (std::uint64_t i = 0; i < 8; i += 2)
        b.deviceWrite(0, i * 32, buf, 32);
    for (std::uint64_t i = 1; i < 8; i += 2)
        b.deviceWrite(0, i * 32, buf, 32);
    EXPECT_GT(a.stats().extents_merged, 0u);
    EXPECT_EQ(a.pendingBytes(), b.pendingBytes());
    a.persistOwner(0);
    b.persistOwner(0);
    EXPECT_EQ(std::memcmp(a.durable(), b.durable(), 4096), 0);
}

TEST(PmPool, ExtentCoalescingResetsAcrossCrashAndReopen)
{
    // GpmHeap's recovery path: crash, reopen the heap's regions by
    // name, and append again. The pending-extent machinery must start
    // clean — no stale merge-eligible extent may survive the failure —
    // and a fresh append stream coalesces exactly as the first did.
    PmPool pool(8_KiB, PersistDomain::McDurable, 7);
    const PmRegion slabs = pool.map("heap.slabs", 1024, true);
    std::uint64_t v = 0x11;
    for (std::uint64_t i = 0; i < 16; ++i)
        pool.deviceWrite(0, slabs.offset + i * 8, &v, 8);
    EXPECT_EQ(pool.pendingExtents(), 1u);
    EXPECT_EQ(pool.stats().extents_merged, 15u);

    pool.crash(/*survive_prob=*/0.0);
    EXPECT_EQ(pool.pendingExtents(), 0u);
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(slabs.offset), 0u);

    const PmRegion again = pool.map("heap.slabs", 0, false);
    EXPECT_EQ(again.offset, slabs.offset);
    v = 0x22;
    for (std::uint64_t i = 0; i < 16; ++i)
        pool.deviceWrite(0, again.offset + i * 8, &v, 8);
    EXPECT_EQ(pool.pendingExtents(), 1u);
    EXPECT_EQ(pool.pendingBytes(), 128u);
    EXPECT_EQ(pool.stats().extents_merged, 30u);
    EXPECT_TRUE(pool.persistOwner(0));
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(pool.loadDurable<std::uint64_t>(again.offset + i * 8),
                  0x22u);
}

TEST(PmPool, SubExtentTearingRespectsHeapHeaderBoundaries)
{
    // One contiguous write covers a 128 B heap header plus four slab
    // lines (GpmHeap's host-written redo area has this shape). The
    // merged extent must tear at 128 B line granularity: the header
    // line survives or dies independently of every slab line, and
    // whatever survives is byte-intact — never a half-written line.
    constexpr std::uint64_t kLine = 128;
    constexpr std::uint64_t kLines = 5;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        PmPool pool(8_KiB, PersistDomain::McDurable, seed);
        const PmRegion heap = pool.map("heap", kLines * kLine, true);
        ASSERT_TRUE(isAligned(heap.offset, kLine));
        std::uint8_t img[kLines * kLine];
        for (std::uint64_t i = 0; i < sizeof img; ++i)
            img[i] = static_cast<std::uint8_t>(i % 251 + 1);
        pool.deviceWrite(0, heap.offset, img, sizeof img);
        EXPECT_EQ(pool.pendingExtents(), 1u);

        pool.crash(/*survive_prob=*/0.5);
        EXPECT_EQ(pool.stats().crash_sub_extents, kLines);
        std::uint64_t survived = 0;
        for (std::uint64_t l = 0; l < kLines; ++l) {
            bool any = false, all = true;
            for (std::uint64_t i = 0; i < kLine; ++i) {
                const std::uint8_t d = pool.loadDurable<std::uint8_t>(
                    heap.offset + l * kLine + i);
                if (d == img[l * kLine + i])
                    any = true;
                else
                    all = false;
            }
            EXPECT_EQ(any, all) << "torn inside line " << l
                                << " at seed " << seed;
            survived += all ? 1 : 0;
        }
        EXPECT_EQ(pool.stats().crash_survivors, survived);
    }
}

TEST(PmPool, DomainSwitchMidstream)
{
    PmPool pool(4096, PersistDomain::LlcVolatile);
    const std::uint64_t v = 3;
    pool.deviceWrite(1, 0, &v, 8);
    EXPECT_FALSE(pool.persistOwner(1));
    pool.setDomain(PersistDomain::McDurable);  // gpm_persist_begin
    pool.deviceWrite(1, 8, &v, 8);
    EXPECT_TRUE(pool.persistOwner(1));
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(8), 3u);
    // The pre-switch write was drained by the same fence (it was
    // still pending under this owner).
    EXPECT_EQ(pool.loadDurable<std::uint64_t>(0), 3u);
}

} // namespace
} // namespace gpm
