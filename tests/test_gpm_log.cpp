/**
 * @file
 * Unit + property tests for libGPM logging: HCL geometry (Figures 4
 * and 5), lock-free per-thread offsets, striping, the tail sentinel's
 * failure atomicity, the conventional partitioned log, and its
 * serialization accounting.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "gpm/gpm_log.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"

namespace gpm {
namespace {

struct Entry24 {
    std::uint64_t a = 0, b = 0, c = 0;
};

TEST(GpmLogHcl, StripeAddressingMatchesFigure5)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmLog log = GpmLog::createHcl(m, "log", 12, 4, 2, 64);

    // Lane l, chunk k: stripes are 128 B apart, lanes 4 B apart.
    const std::uint64_t base = log.chunkAddr(0, 0, 0);
    EXPECT_EQ(log.chunkAddr(1, 0, 0), base + 4);     // next lane
    EXPECT_EQ(log.chunkAddr(0, 0, 1), base + 128);   // next stripe
    EXPECT_EQ(log.chunkAddr(0, 1, 0), base + 3 * 128);  // next row
    // Thread 32 is warp 1 of block 0: its own warp region.
    EXPECT_EQ(log.chunkAddr(32, 0, 0), base + 4 * 3 * 128);
    // Thread 64 is block 1: after block 0's two warp regions.
    EXPECT_EQ(log.chunkAddr(64, 0, 0), base + 2 * 4 * 3 * 128);
}

class HclGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(HclGeometry, ChunkAddressesAreUniqueAndInBounds)
{
    const auto [blocks, tpb, entry_bytes, rows] = GetParam();
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 256_MiB);
    GpmLog log = GpmLog::createHcl(
        m, "log", static_cast<std::uint32_t>(entry_bytes),
        static_cast<std::uint32_t>(rows),
        static_cast<std::uint32_t>(blocks),
        static_cast<std::uint32_t>(tpb));

    const std::uint32_t chunks =
        static_cast<std::uint32_t>(alignUp(entry_bytes, 4)) / 4;
    std::set<std::uint64_t> seen;
    const std::uint64_t lo = log.region().offset;
    const std::uint64_t hi = lo + log.region().size;
    for (std::uint64_t t = 0;
         t < std::uint64_t(blocks) * tpb; ++t) {
        for (int r = 0; r < rows; ++r) {
            for (std::uint32_t k = 0; k < chunks; ++k) {
                const std::uint64_t addr = log.chunkAddr(
                    t, static_cast<std::uint32_t>(r), k);
                EXPECT_TRUE(seen.insert(addr).second)
                    << "duplicate offset for t=" << t;
                ASSERT_GE(addr, lo + 256);
                ASSERT_LT(addr + 4, hi);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HclGeometry,
    ::testing::Values(std::make_tuple(1, 32, 4, 1),
                      std::make_tuple(2, 64, 12, 3),
                      std::make_tuple(3, 96, 24, 2),
                      std::make_tuple(2, 48, 7, 2),   // padded entry
                      std::make_tuple(4, 256, 60, 1)));

TEST(GpmLogHcl, InsertReadRemoveRoundTrip)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "log", sizeof(Entry24), 3, 2,
                                   64);

    KernelDesc k;
    k.name = "insert";
    k.blocks = 2;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &ctx) {
        Entry24 e{ctx.globalId(), ~ctx.globalId(), 42};
        log.insert(ctx, &e, sizeof(e));
        e.c = 43;
        log.insert(ctx, &e, sizeof(e));
    });
    m.runKernel(k);
    EXPECT_EQ(log.entryCount(), 256u);
    EXPECT_EQ(log.tailOf(5), 2u);

    // Host-side inspection de-stripes correctly.
    Entry24 got;
    log.readEntryHost(77, 1, &got, sizeof(got));
    EXPECT_EQ(got.a, 77u);
    EXPECT_EQ(got.c, 43u);

    // Device read returns the most recent entry; remove pops it.
    KernelDesc r;
    r.name = "read_remove";
    r.blocks = 2;
    r.block_threads = 64;
    bool ok = true;
    r.phases.push_back([&](ThreadCtx &ctx) {
        Entry24 e;
        ok = ok && log.read(ctx, &e, sizeof(e));
        ok = ok && e.c == 43 && e.a == ctx.globalId();
        log.remove(ctx, sizeof(e));
        ok = ok && log.read(ctx, &e, sizeof(e)) && e.c == 42;
    });
    m.runKernel(r);
    EXPECT_TRUE(ok);
    EXPECT_EQ(log.entryCount(), 128u);
}

TEST(GpmLogHcl, EmptyThreadLogReadsFalse)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmLog log = GpmLog::createHcl(m, "log", 8, 2, 1, 32);
    KernelDesc k;
    k.name = "read_empty";
    k.blocks = 1;
    k.block_threads = 32;
    bool any = false;
    k.phases.push_back([&](ThreadCtx &ctx) {
        std::uint64_t e;
        any = any || log.read(ctx, &e, sizeof(e));
    });
    m.runKernel(k);
    EXPECT_FALSE(any);
}

TEST(GpmLogHcl, WarpInsertCoalescesIntoStripeTransactions)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "log", sizeof(Entry24), 1, 1,
                                   32);
    KernelDesc k;
    k.name = "stripes";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const Entry24 e{1, 2, 3};
        log.insert(ctx, &e, sizeof(e));
    });
    const LaunchStats s = m.runKernel(k);
    // 24 B = 6 chunks -> 6 stripe lines, + 1 tail line; reading the
    // tail costs nothing. This IS the HCL coalescing win: 32 entries,
    // 7 transactions.
    EXPECT_EQ(s.pm_line_txns, 7u);
}

TEST(GpmLogHcl, TailIsACrashSentinel)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB, 33);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "log", sizeof(Entry24), 2, 1,
                                   32);
    // Crash mid-warp: some threads inserted, some did not.
    KernelDesc k;
    k.name = "crashing_insert";
    k.blocks = 1;
    k.block_threads = 32;
    k.crash = CrashPoint{17};
    k.phases.push_back([&](ThreadCtx &ctx) {
        const Entry24 e{ctx.globalId() + 1, 0, 0};
        log.insert(ctx, &e, sizeof(e));
    });
    EXPECT_THROW(m.runKernel(k), KernelCrashed);
    m.pool().crash(/*survive_prob=*/0.5);

    // Invariant: whenever the durable tail says an entry exists, the
    // durable entry content is complete.
    GpmLog reopened = GpmLog::open(m, "log");
    for (std::uint64_t t = 0; t < 32; ++t) {
        if (reopened.tailOf(t) == 0)
            continue;
        Entry24 e;
        reopened.readEntryHost(t, 0, &e, sizeof(e));
        EXPECT_EQ(e.a, t + 1) << "torn entry behind a set sentinel";
    }
}

TEST(GpmLogHcl, FullThreadLogIsUserError)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    GpmLog log = GpmLog::createHcl(m, "log", 8, 1, 1, 32);
    KernelDesc k;
    k.name = "overflow";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t e = 1;
        log.insert(ctx, &e, sizeof(e));
        log.insert(ctx, &e, sizeof(e));  // second row does not exist
    });
    EXPECT_THROW(m.runKernel(k), FatalError);
}

TEST(GpmLogConv, AppendAndSerializationAccounting)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createConv(m, "clog", 16_KiB, 4);

    KernelDesc k;
    k.name = "conv_insert";
    k.blocks = 1;
    k.block_threads = 64;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t e = ctx.globalId();
        log.insert(ctx, &e, sizeof(e));  // partition = gtid % 4
    });
    m.runKernel(k);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(log.partitionBytesUsed(p), 16u * 8);

    // 16 serialized inserts on the busiest partition.
    EXPECT_DOUBLE_EQ(log.consumeSerializationNs(),
                     16 * cfg.conv_log_lock_ns);
    EXPECT_DOUBLE_EQ(log.consumeSerializationNs(), 0.0);  // consumed
}

TEST(GpmLogConv, ReadAndRemoveLifo)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createConv(m, "clog", 4096, 1);
    KernelDesc k;
    k.name = "conv_rw";
    k.blocks = 1;
    k.block_threads = 1;
    bool ok = true;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t a = 111, b = 222;
        log.insert(ctx, &a, 8, 0);
        log.insert(ctx, &b, 8, 0);
        std::uint64_t got = 0;
        ok = ok && log.read(ctx, &got, 8, 0) && got == 222;
        log.remove(ctx, 8, 0);
        ok = ok && log.read(ctx, &got, 8, 0) && got == 111;
    });
    m.runKernel(k);
    EXPECT_TRUE(ok);
}

TEST(GpmLog, OpenRejectsNonLogRegions)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    m.pool().map("not_a_log", 4096, true);
    EXPECT_THROW(GpmLog::open(m, "not_a_log"), FatalError);
    EXPECT_THROW(GpmLog::open(m, "absent"), FatalError);
}

TEST(GpmLog, ClearAllResetsTails)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    GpmLog log = GpmLog::createHcl(m, "log", 8, 4, 1, 32);
    KernelDesc k;
    k.name = "fill";
    k.blocks = 1;
    k.block_threads = 32;
    k.phases.push_back([&](ThreadCtx &ctx) {
        const std::uint64_t e = 9;
        log.insert(ctx, &e, 8);
    });
    m.runKernel(k);
    EXPECT_EQ(log.entryCount(), 32u);
    log.clearAll();
    EXPECT_EQ(log.entryCount(), 0u);
}

TEST(GpmLog, RegionSizingFormula)
{
    // 2 blocks x 64 threads, 12 B entries (3 chunks), 4 rows:
    // data = 2 blocks * 2 warps * 4 rows * 3 stripes * 128 B.
    EXPECT_EQ(GpmLog::hclRegionBytes(12, 4, 2, 64, 32),
              256u + 2 * 2 * 4 * 3 * 128 + 2 * 64 * 4);
}

TEST(GpmLogHcl, RandomGeometriesStripeWithoutOverlap)
{
    // Property sweep over random (entry_bytes, blocks, block_threads,
    // rows) shapes: every 4 B chunk slot of every thread must be
    // unique, inside the data area of hclRegionBytes, and clear of
    // the tail array.
    Rng rng(0xc0ffee);
    for (int trial = 0; trial < 24; ++trial) {
        const auto blocks =
            static_cast<std::uint32_t>(rng.between(1, 5));
        const auto tpb =
            static_cast<std::uint32_t>(rng.between(1, 6) * 32 -
                                       (rng.chance(0.3) ? 16 : 0));
        const auto entry_bytes =
            static_cast<std::uint32_t>(rng.between(1, 48));
        const auto rows = static_cast<std::uint32_t>(rng.between(1, 4));

        SimConfig cfg;
        Machine m(cfg, PlatformKind::Gpm, 64_MiB);
        GpmLog log =
            GpmLog::createHcl(m, "log", entry_bytes, rows, blocks, tpb);
        const std::string shape =
            "b" + std::to_string(blocks) + " t" + std::to_string(tpb) +
            " e" + std::to_string(entry_bytes) + " r" +
            std::to_string(rows);

        ASSERT_EQ(log.region().size,
                  GpmLog::hclRegionBytes(
                      entry_bytes, rows, blocks, tpb,
                      static_cast<std::uint32_t>(cfg.warp_size)))
            << shape;

        const std::uint32_t chunks =
            static_cast<std::uint32_t>(alignUp(entry_bytes, 4)) / 4;
        const std::uint64_t threads = std::uint64_t(blocks) * tpb;
        // Tails live at the end of the region, one u32 per thread.
        const std::uint64_t tails_lo =
            log.region().offset + log.region().size - threads * 4;
        std::set<std::uint64_t> seen;
        for (std::uint64_t t = 0; t < threads; ++t) {
            for (std::uint32_t r = 0; r < rows; ++r) {
                for (std::uint32_t k = 0; k < chunks; ++k) {
                    const std::uint64_t addr = log.chunkAddr(t, r, k);
                    ASSERT_TRUE(seen.insert(addr).second)
                        << shape << ": duplicate slot, thread " << t;
                    ASSERT_GE(addr, log.region().offset + 256) << shape;
                    ASSERT_LE(addr + 4, tails_lo) << shape;
                }
            }
        }
    }
}

TEST(GpmLogHcl, ReopenRoundTripsHeaderAndTails)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    {
        GpmLog log = GpmLog::createHcl(m, "log", sizeof(Entry24), 3,
                                       2, 64);
        KernelDesc k;
        k.name = "fill";
        k.blocks = 2;
        k.block_threads = 64;
        k.phases.push_back([&](ThreadCtx &ctx) {
            const Entry24 e{ctx.globalId(), ctx.globalId() * 3, 77};
            log.insert(ctx, &e, sizeof(e));
            if (ctx.globalId() % 2 == 0)
                log.insert(ctx, &e, sizeof(e));
        });
        m.runKernel(k);
        log.close();
    }

    GpmLog reopened = GpmLog::open(m, "log");
    EXPECT_EQ(reopened.header().magic, GpmLog::kMagic);
    EXPECT_EQ(reopened.header().type, GpmLog::Hcl);
    EXPECT_EQ(reopened.header().entry_bytes, 24u);
    EXPECT_EQ(reopened.header().max_entries, 3u);
    EXPECT_EQ(reopened.header().blocks, 2u);
    EXPECT_EQ(reopened.header().block_threads, 64u);
    EXPECT_EQ(reopened.entryCount(), 128u + 64u);
    for (std::uint64_t t = 0; t < 128; ++t)
        EXPECT_EQ(reopened.tailOf(t), t % 2 == 0 ? 2u : 1u);
    Entry24 got;
    reopened.readEntryHost(6, 1, &got, sizeof(got));
    EXPECT_EQ(got.a, 6u);
    EXPECT_EQ(got.b, 18u);
    EXPECT_EQ(got.c, 77u);
}

TEST(GpmLogConv, ReopenRoundTripsPartitions)
{
    SimConfig cfg;
    Machine m(cfg, PlatformKind::Gpm, 64_MiB);
    gpmPersistBegin(m);
    {
        GpmLog log = GpmLog::createConv(m, "clog", 16_KiB, 4);
        KernelDesc k;
        k.name = "fill";
        k.blocks = 1;
        k.block_threads = 64;
        k.phases.push_back([&](ThreadCtx &ctx) {
            const std::uint64_t e = ctx.globalId();
            log.insert(ctx, &e, sizeof(e));
        });
        m.runKernel(k);
        log.close();
    }

    GpmLog reopened = GpmLog::open(m, "clog");
    EXPECT_EQ(reopened.header().type, GpmLog::Conventional);
    EXPECT_EQ(reopened.header().n_partitions, 4u);
    EXPECT_EQ(reopened.header().partition_bytes, 16_KiB);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(reopened.partitionBytesUsed(p), 16u * 8);
}

} // namespace
} // namespace gpm
