#include "workloads/prefix_sum.hpp"

#include <algorithm>
#include <cstring>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmem/pm_events.hpp"

namespace gpm {

GpPrefixSum::GpPrefixSum(Machine &m, const PsParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.blocks > 0 && p_.block_threads >= 32,
                "bad prefix-sum geometry");
}

std::uint64_t
GpPrefixSum::psumAddr(std::uint64_t thread) const
{
    return psums_.offset + thread * 8;
}

std::uint64_t
GpPrefixSum::outAddr(std::uint64_t i) const
{
    return out_.offset + i * 8;
}

void
GpPrefixSum::setup()
{
    const std::uint64_t threads =
        std::uint64_t(p_.blocks) * p_.block_threads;
    psums_ = gpmMap(*m_, "ps.psums", threads * 8, true);
    out_ = gpmMap(*m_, "ps.out", p_.elements() * 8, true);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // Recovery is recompute-with-skip: no commit record, no order
        // rule. Each 8 B sum is atomic (a torn sentinel would fake a
        // completed block).
        rec->declareRange("ps.psums", psums_.offset, threads * 8, 8,
                          PmRangeKind::Data);
        rec->declareRange("ps.out", out_.offset, p_.elements() * 8, 8,
                          PmRangeKind::Data);
    }

    Rng rng(p_.seed);
    input_.resize(p_.elements());
    for (std::uint32_t &v : input_)
        v = static_cast<std::uint32_t>(rng.between(1, 100));
    blocks_skipped_ = 0;
}

void
GpPrefixSum::partialSumsKernel(const std::optional<CrashPoint> &crash)
{
    const bool in_kernel = inKernelPersistence(m_->kind());
    const bool gpu_direct =
        in_kernel || m_->kind() == PlatformKind::GpmNdp;
    const std::uint64_t total_threads =
        std::uint64_t(p_.blocks) * p_.block_threads;

    // Cross-phase scratch: each thread's chunk sum, plus a per-block
    // skip flag decided in phase 0 (Figure 8, line 3).
    std::vector<std::uint64_t> sums(total_threads, 0);
    std::vector<std::uint8_t> skip(p_.blocks, 0);

    KernelDesc k;
    k.name = "ps_partial_sums";
    // sums/skip slots are block-disjoint and blocks_skipped_ is
    // atomic; the sentinel pmLoad reads the block's own region.
    k.block_independent = true;
    k.blocks = p_.blocks;
    k.block_threads = p_.block_threads;
    k.crash = crash;
    // Phase 0: all but the last thread compute and persist.
    k.phases.push_back([this, &sums, &skip, gpu_direct,
                        in_kernel](ThreadCtx &ctx) {
        const std::uint32_t blk = ctx.blockIdx();
        const std::uint64_t sentinel_thread =
            std::uint64_t(blk + 1) * p_.block_threads - 1;
        if (ctx.threadIdx() == 0) {
            // Partial sum of the block's last thread already durable?
            skip[blk] = ctx.pmLoad<std::uint64_t>(
                            psumAddr(sentinel_thread)) != kEmpty;
            if (skip[blk])
                ++blocks_skipped_;
        }
        if (ctx.pmLoad<std::uint64_t>(psumAddr(sentinel_thread)) !=
            kEmpty)
            return;

        const std::uint64_t gtid = ctx.globalId();
        const std::uint64_t base =
            gtid * p_.elems_per_thread;
        std::uint64_t sum = 0;
        for (std::uint32_t i = 0; i < p_.elems_per_thread; ++i)
            sum += input_[base + i];
        sums[gtid] = sum;
        ctx.work(p_.elems_per_thread * 2);
        ctx.hbmTraffic(std::uint64_t(p_.elems_per_thread) * 4);

        if (ctx.threadIdx() != p_.block_threads - 1 && gpu_direct) {
            ctx.pmStore(psumAddr(gtid), sum);
            if (in_kernel)
                ctx.threadfenceSystem();
        }
    });
    // Phase 1 (after the __syncthreads barrier): the last thread of
    // the block persists its sum — the recovery sentinel.
    k.phases.push_back([this, &sums, &skip, gpu_direct,
                        in_kernel](ThreadCtx &ctx) {
        if (skip[ctx.blockIdx()])
            return;
        if (ctx.threadIdx() != p_.block_threads - 1)
            return;
        if (gpu_direct) {
            ctx.pmStore(psumAddr(ctx.globalId()),
                        sums[ctx.globalId()]);
            if (in_kernel)
                ctx.threadfenceSystem();
        }
    });
    m_->runKernel(k);

    if (!gpu_direct) {
        // CAP: partial sums leave the device in bulk after the kernel.
        switch (m_->kind()) {
          case PlatformKind::CapFs:
            m_->capFsPersist(psums_.offset, sums.data(),
                             total_threads * 8, 1);
            break;
          default:
            m_->capMmPersist(psums_.offset, sums.data(),
                             total_threads * 8, p_.cap_threads);
            break;
        }
    } else if (m_->kind() == PlatformKind::GpmNdp) {
        m_->cpuPersistRange(psums_.offset, total_threads * 8,
                            p_.cap_threads);
    }
}

void
GpPrefixSum::finalKernel()
{
    const bool in_kernel = inKernelPersistence(m_->kind());
    const bool gpu_direct =
        in_kernel || m_->kind() == PlatformKind::GpmNdp;
    const std::uint64_t total_threads =
        std::uint64_t(p_.blocks) * p_.block_threads;
    const std::uint64_t n = p_.elements();

    // Thread offsets from the durable partial sums (a small scan; on
    // the GPU this is the inter-block scan kernel).
    std::vector<std::uint64_t> psums(total_threads);
    m_->pool().read(psums_.offset, psums.data(), total_threads * 8);
    std::vector<std::uint64_t> offsets(total_threads, 0);
    std::uint64_t running = 0;
    for (std::uint64_t t = 0; t < total_threads; ++t) {
        offsets[t] = running;
        running += psums[t];
    }
    chargeGpuCompute(*m_, static_cast<double>(total_threads) * 2,
                     total_threads * 16);

    // Final values (inclusive prefix), computed per thread chunk.
    std::vector<std::uint64_t> final_vals(n);
    for (std::uint64_t t = 0; t < total_threads; ++t) {
        std::uint64_t acc = offsets[t];
        const std::uint64_t base = t * p_.elems_per_thread;
        for (std::uint32_t i = 0; i < p_.elems_per_thread; ++i) {
            acc += input_[base + i];
            final_vals[base + i] = acc;
        }
    }

    // Persist the output: warp-interleaved streaming copy (aligned
    // sequential runs — PS's high PM bandwidth in Fig 12).
    const std::uint32_t tpb = 256;
    const std::uint32_t words_per_thread = 16;
    const std::uint32_t warp =
        static_cast<std::uint32_t>(m_->config().warp_size);
    KernelDesc k;
    k.name = "ps_final";
    k.block_independent = true;
    k.blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1,
            ceilDiv(n, std::uint64_t(tpb) * words_per_thread)));
    k.block_threads = tpb;
    k.phases.push_back([this, &final_vals, n, warp, words_per_thread,
                        gpu_direct, in_kernel](ThreadCtx &ctx) {
        const std::uint64_t chunk =
            std::uint64_t(warp) * words_per_thread;
        const std::uint64_t base = ctx.globalWarp() * chunk;
        ctx.work(words_per_thread * 3);
        ctx.hbmTraffic(std::uint64_t(words_per_thread) * 12);
        bool wrote = false;
        for (std::uint32_t i = 0; i < words_per_thread; ++i) {
            const std::uint64_t w =
                base + std::uint64_t(i) * warp + ctx.lane();
            if (w >= n)
                break;
            if (gpu_direct) {
                ctx.pmStore(outAddr(w), final_vals[w]);
                wrote = true;
            }
        }
        if (wrote && in_kernel)
            ctx.threadfenceSystem();
    });
    m_->runKernel(k);

    if (!gpu_direct) {
        switch (m_->kind()) {
          case PlatformKind::CapFs:
            m_->capFsPersist(out_.offset, final_vals.data(), n * 8, 1);
            break;
          default:
            m_->capMmPersist(out_.offset, final_vals.data(), n * 8,
                             p_.cap_threads);
            break;
        }
    } else if (m_->kind() == PlatformKind::GpmNdp) {
        m_->cpuPersistRange(out_.offset, n * 8, p_.cap_threads);
    }
}

WorkloadResult
GpPrefixSum::run()
{
    WorkloadResult r;
    if (m_->kind() == PlatformKind::Gpufs) {
        r.supported = false;  // per-thread writes deadlock GPUfs
        return r;
    }
    setup();

    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);
    const SimNs t0 = m_->now();
    const std::uint64_t pcie0 = m_->pcieWriteBytes();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    partialSumsKernel(std::nullopt);
    finalKernel();

    r.op_ns = m_->now() - t0;
    r.pcie_write_bytes = m_->pcieWriteBytes() - pcie0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistEnd(*m_);

    const std::vector<std::uint64_t> ref = referencePrefix();
    r.verified = true;
    for (std::uint64_t i = 0; i < ref.size(); i += 997) {
        if (m_->pool().load<std::uint64_t>(outAddr(i)) != ref[i] &&
            inKernelPersistence(m_->kind())) {
            r.verified = false;
            break;
        }
    }
    r.ops_done = static_cast<double>(p_.elements());
    return r;
}

WorkloadResult
GpPrefixSum::runWithCrash(double frac, double survive_prob)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "prefix-sum resume needs in-kernel persistence");
    setup();
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);

    const std::uint64_t total_threads =
        std::uint64_t(p_.blocks) * p_.block_threads;
    try {
        partialSumsKernel(CrashPoint::afterThreadPhases(
            static_cast<std::uint64_t>(
                frac * 2.0 * static_cast<double>(total_threads))));
        GPM_ASSERT(false, "prefix-sum crash point did not fire");
    } catch (const KernelCrashed &) {
    }
    m_->pool().crash(survive_prob);

    // Resume: re-run the kernel; the sentinel check skips completed
    // blocks (the recovery logic is native to the kernel, section
    // 5.4). Then finish.
    WorkloadResult r;
    const SimNs r0 = m_->now();
    {
        PmRecoveryScope rscope(m_->pool().recorder());
        blocks_skipped_ = 0;
        partialSumsKernel(std::nullopt);
        finalKernel();
    }
    r.recovery_ns = m_->now() - r0;
    r.op_ns = r.recovery_ns;

    const std::vector<std::uint64_t> ref = referencePrefix();
    r.verified = true;
    for (std::uint64_t i = 0; i < ref.size(); ++i) {
        if (durablePrefix(i) != ref[i]) {
            r.verified = false;
            break;
        }
    }
    r.ops_done = static_cast<double>(blocks_skipped_);
    return r;
}

CrashOutcome
GpPrefixSum::runCrashPoint(const CrashPoint &point, double survive_prob,
                           bool open_persist_window)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "prefix-sum resume needs in-kernel persistence");
    setup();
    CrashOutcome o;
    const bool window =
        open_persist_window && m_->kind() == PlatformKind::Gpm;
    if (window)
        gpmPersistBegin(*m_);

    try {
        partialSumsKernel(point);
    } catch (const KernelCrashed &) {
        o.fired = true;
    }
    m_->pool().crash(survive_prob);

    // Resume under a fresh persist window (reboot-time recovery gets
    // DDIO right even when the crashed run never did): the sentinel
    // check skips completed blocks, everything else recomputes.
    if (!window && m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);
    {
        PmRecoveryScope rscope(m_->pool().recorder());
        blocks_skipped_ = 0;
        partialSumsKernel(std::nullopt);
        finalKernel();
    }
    o.recovery_ran = true;

    const std::vector<std::uint64_t> ref = referencePrefix();
    o.strict_ok = true;
    for (std::uint64_t i = 0; i < ref.size(); ++i) {
        if (durablePrefix(i) != ref[i]) {
            o.strict_ok = false;
            break;
        }
    }
    o.state_hash = fnv1a(m_->pool().durable() + out_.offset,
                         p_.elements() * 8);
    if (!window && m_->kind() == PlatformKind::Gpm)
        gpmPersistEnd(*m_);
    return o;
}

std::vector<std::uint64_t>
GpPrefixSum::referencePrefix() const
{
    std::vector<std::uint64_t> out(p_.elements());
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < out.size(); ++i) {
        acc += input_[i];
        out[i] = acc;
    }
    return out;
}

std::uint64_t
GpPrefixSum::durablePrefix(std::uint64_t i) const
{
    return m_->pool().loadDurable<std::uint64_t>(outAddr(i));
}

} // namespace gpm
