#include "workloads/bfs.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"

namespace gpm {

namespace {
constexpr std::uint64_t kLevelOff = 0;  ///< u32 last durable level
constexpr std::uint64_t kSizeOff = 4;   ///< u32 frontier size
constexpr std::uint64_t kQueueOff = 8;  ///< u32 nodes[]
} // namespace

GpBfs::GpBfs(Machine &m, const BfsParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.nodes() > 0 && p_.source < p_.nodes(),
                "bad BFS configuration");
}

std::uint64_t
GpBfs::costAddr(std::uint32_t v) const
{
    return cost_.offset + std::uint64_t(v) * 4;
}

CsrGraph
makeRoadGraph(const BfsParams &p)
{
    // Lattice + shortcut edges, undirected, deduplicated via sort.
    const std::uint32_t n = p.nodes();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    auto id = [&](std::uint32_t x, std::uint32_t y) {
        return y * p.grid_w + x;
    };
    for (std::uint32_t y = 0; y < p.grid_h; ++y) {
        for (std::uint32_t x = 0; x < p.grid_w; ++x) {
            if (x + 1 < p.grid_w)
                edges.emplace_back(id(x, y), id(x + 1, y));
            if (y + 1 < p.grid_h)
                edges.emplace_back(id(x, y), id(x, y + 1));
        }
    }
    Rng rng(p.seed);
    for (std::uint32_t s = 0; s < p.shortcuts; ++s) {
        const auto a = static_cast<std::uint32_t>(rng.below(n));
        const auto b = static_cast<std::uint32_t>(rng.below(n));
        if (a != b)
            edges.emplace_back(std::min(a, b), std::max(a, b));
    }

    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const auto &[a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    CsrGraph g;
    g.row_off.assign(n + 1, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::sort(adj[v].begin(), adj[v].end());
        adj[v].erase(std::unique(adj[v].begin(), adj[v].end()),
                     adj[v].end());
        g.row_off[v + 1] = g.row_off[v] +
            static_cast<std::uint32_t>(adj[v].size());
        g.col.insert(g.col.end(), adj[v].begin(), adj[v].end());
    }
    return g;
}

std::vector<std::uint32_t>
bfsReference(const CsrGraph &g, std::uint32_t source)
{
    std::vector<std::uint32_t> dist(g.nodes(), GpBfs::kInf);
    std::deque<std::uint32_t> q{source};
    dist[source] = 0;
    while (!q.empty()) {
        const std::uint32_t u = q.front();
        q.pop_front();
        for (std::uint32_t e = g.row_off[u]; e < g.row_off[u + 1];
             ++e) {
            const std::uint32_t v = g.col[e];
            if (dist[v] == GpBfs::kInf) {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    return dist;
}

void
GpBfs::setup()
{
    const std::uint32_t n = p_.nodes();
    graph_ = makeRoadGraph(p_);

    cost_ = gpmMap(*m_, "bfs.cost", std::uint64_t(n) * 4, true);
    frontier_ = gpmMap(*m_, "bfs.frontier", 8 + std::uint64_t(n) * 4,
                       true);

    // Initialize costs to INF durably (setup, CPU-persisted), source
    // to 0, and the frontier to {source} at level 0.
    std::vector<std::uint32_t> inf(n, kInf);
    inf[p_.source] = 0;
    m_->cpuWritePersist(cost_.offset, inf.data(),
                        std::uint64_t(n) * 4, p_.cap_threads);
    const std::uint32_t head[3] = {0u, 1u, p_.source};
    m_->cpuWritePersist(frontier_.offset, head, 12, 1);
    host_cost_ = std::move(inf);

    if (!inKernelPersistence(m_->kind())) {
        // CAP persists a compact per-level update record (new costs +
        // queue) into a staging area rather than scattering into the
        // cost array — the CPU cannot address the scattered updates.
        cap_stage_ = gpmMap(*m_, "bfs.capstage",
                            std::uint64_t(n) * 8 + 64, true);
    }
}

std::vector<std::uint32_t>
GpBfs::runLevel(const std::vector<std::uint32_t> &frontier,
                std::uint32_t level, bool first_level)
{
    const bool gpu_direct = inKernelPersistence(m_->kind()) ||
                            m_->kind() == PlatformKind::GpmNdp;
    const bool in_kernel = inKernelPersistence(m_->kind());
    const std::uint32_t tpb = 128;

    std::uint64_t marked = 0;
    KernelDesc k;
    k.name = "bfs_level";
    k.blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, ceilDiv(frontier.size(), tpb)));
    k.block_threads = tpb;
    // GPM runs BFS as a persistent kernel: only the first level pays
    // the launch; CAP relaunches (and DMAs) every level.
    k.no_launch_overhead = in_kernel && !first_level;
    k.phases.push_back([this, &frontier, level, gpu_direct, in_kernel,
                        &marked](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= frontier.size())
            return;
        const std::uint32_t u = frontier[i];
        const std::uint32_t begin = graph_.row_off[u];
        const std::uint32_t end = graph_.row_off[u + 1];
        ctx.hbmTraffic((end - begin + 2) * 4);
        ctx.work(4 * (end - begin) + 8);
        bool wrote = false;
        for (std::uint32_t e = begin; e < end; ++e) {
            const std::uint32_t v = graph_.col[e];
            if (host_cost_[v] != kInf)
                continue;
            host_cost_[v] = level + 1;
            ++marked;
            if (gpu_direct) {
                ctx.pmStore(costAddr(v), level + 1);
                wrote = true;
            }
        }
        if (wrote && in_kernel)
            ctx.threadfenceSystem();
    });
    m_->runKernel(k);
    ++levels_executed_;

    // Next frontier: every node at distance level+1 (idempotent under
    // re-execution; see header comment). The scan runs on-device.
    std::vector<std::uint32_t> next;
    for (std::uint32_t v = 0; v < p_.nodes(); ++v) {
        if (host_cost_[v] == level + 1)
            next.push_back(v);
    }
    chargeGpuCompute(*m_, static_cast<double>(p_.nodes()),
                     std::uint64_t(p_.nodes()) * 4,
                     /*charge_launch=*/!in_kernel);

    // Persist the frontier + level sentinel.
    if (in_kernel) {
        KernelDesc q;
        q.name = "bfs_persist_frontier";
        // Disjoint queue slots + thread-0 sentinel at a distinct
        // offset; next is read-only.
        q.block_independent = true;
        q.blocks = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, ceilDiv(next.size(), tpb)));
        q.block_threads = tpb;
        q.no_launch_overhead = true;
        const std::uint32_t next_level = level + 1;
        q.phases.push_back([this, &next, next_level](ThreadCtx &ctx) {
            const std::uint64_t i = ctx.globalId();
            if (i < next.size()) {
                ctx.pmStore(frontier_.offset + kQueueOff + i * 4,
                            next[i]);
                ctx.threadfenceSystem();
            }
            if (i == 0) {
                // Sentinel after the queue entries of *this* thread;
                // cross-thread ordering is given by the level scan
                // being idempotent.
                const std::uint32_t meta[2] = {
                    next_level,
                    static_cast<std::uint32_t>(next.size())};
                ctx.pmWrite(frontier_.offset + kLevelOff, meta, 8);
                ctx.threadfenceSystem();
            }
        });
        m_->runKernel(q);
    } else {
        // CAP / NDP: the compact updates leave the device in bulk —
        // the level record is {level, size, queue[], new_costs[]}.
        std::vector<std::uint32_t> record;
        record.reserve(2 + 2 * next.size());
        record.push_back(level + 1);
        record.push_back(static_cast<std::uint32_t>(next.size()));
        record.insert(record.end(), next.begin(), next.end());
        record.insert(record.end(), next.size(), level + 1);
        switch (m_->kind()) {
          case PlatformKind::GpmNdp: {
            // Sweep the scattered cost lines + the queue.
            m_->cpuPersistScattered(marked * m_->config().cache_line +
                                        next.size() * 4, p_.cap_threads);
            std::vector<std::uint32_t> meta_and_queue;
            meta_and_queue.push_back(level + 1);
            meta_and_queue.push_back(
                static_cast<std::uint32_t>(next.size()));
            meta_and_queue.insert(meta_and_queue.end(), next.begin(),
                                  next.end());
            m_->cpuWritePersist(frontier_.offset,
                                meta_and_queue.data(),
                                meta_and_queue.size() * 4,
                                p_.cap_threads);
            break;
          }
          case PlatformKind::CapFs:
            // Two files: the queue and the cost record (2 fsyncs).
            m_->capFsPersist(cap_stage_.offset, record.data(),
                             (2 + next.size()) * 4, 1);
            if (!next.empty()) {
                m_->capFsPersist(
                    cap_stage_.offset + (2 + next.size()) * 4,
                    record.data() + 2 + next.size(), next.size() * 4,
                    1);
            }
            break;
          default:
            m_->capMmPersist(cap_stage_.offset, record.data(),
                             (2 + next.size()) * 4, p_.cap_threads);
            if (!next.empty()) {
                m_->capMmPersist(
                    cap_stage_.offset + (2 + next.size()) * 4,
                    record.data() + 2 + next.size(), next.size() * 4,
                    p_.cap_threads);
            }
            break;
        }
    }
    return next;
}

void
GpBfs::traverse(std::vector<std::uint32_t> frontier,
                std::uint32_t level)
{
    bool first = true;
    while (!frontier.empty()) {
        frontier = runLevel(frontier, level, first);
        first = false;
        ++level;
    }
}

WorkloadResult
GpBfs::run()
{
    WorkloadResult r;
    if (m_->kind() == PlatformKind::Gpufs) {
        r.supported = false;  // fine-grain writes deadlock GPUfs
        return r;
    }
    setup();
    levels_executed_ = 0;

    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);
    const SimNs t0 = m_->now();
    const std::uint64_t pcie0 = m_->pcieWriteBytes();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    traverse({p_.source}, 0);

    r.op_ns = m_->now() - t0;
    r.pcie_write_bytes = m_->pcieWriteBytes() - pcie0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistEnd(*m_);

    const std::vector<std::uint32_t> ref = referenceCosts();
    r.verified = host_cost_ == ref;
    r.ops_done = static_cast<double>(p_.nodes());
    return r;
}

WorkloadResult
GpBfs::runWithCrash(double progress_frac, double survive_prob)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "BFS resume needs in-kernel persistence");
    setup();
    levels_executed_ = 0;
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);

    // Run the clean prefix of the traversal.
    const std::vector<std::uint32_t> ref = referenceCosts();
    const std::uint32_t diameter =
        *std::max_element(ref.begin(), ref.end());
    const auto crash_level = static_cast<std::uint32_t>(
        progress_frac * diameter);

    std::vector<std::uint32_t> frontier{p_.source};
    std::uint32_t level = 0;
    bool first = true;
    while (!frontier.empty() && level < crash_level) {
        frontier = runLevel(frontier, level, first);
        first = false;
        ++level;
    }

    // Crash half-way through the next level's marking kernel: run it
    // armed, then power-fail.
    if (!frontier.empty()) {
        const std::uint32_t tpb = 128;
        KernelDesc k;
        k.name = "bfs_level_crashing";
        k.blocks = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, ceilDiv(frontier.size(), tpb)));
        k.block_threads = tpb;
        k.crash = CrashPoint{std::uint64_t(k.blocks) * tpb / 2};
        k.phases.push_back([this, &frontier, level](ThreadCtx &ctx) {
            const std::uint64_t i = ctx.globalId();
            if (i >= frontier.size())
                return;
            const std::uint32_t u = frontier[i];
            for (std::uint32_t e = graph_.row_off[u];
                 e < graph_.row_off[u + 1]; ++e) {
                const std::uint32_t v = graph_.col[e];
                if (host_cost_[v] != kInf)
                    continue;
                host_cost_[v] = level + 1;
                ctx.pmStore(costAddr(v), level + 1);
            }
            ctx.threadfenceSystem();
        });
        try {
            m_->runKernel(k);
        } catch (const KernelCrashed &) {
        }
    }
    m_->pool().crash(survive_prob);

    // Reboot: reload the durable state and resume from the persisted
    // frontier/level (no separate recovery kernel — the resumption IS
    // the recovery, section 5.4).
    const SimNs r0 = m_->now();
    host_cost_.assign(p_.nodes(), 0);
    m_->pool().read(cost_.offset, host_cost_.data(),
                    std::uint64_t(p_.nodes()) * 4);
    m_->cpuPmRead(std::uint64_t(p_.nodes()) * 4, p_.cap_threads);
    const auto durable_level =
        m_->pool().load<std::uint32_t>(frontier_.offset + kLevelOff);
    const auto durable_size =
        m_->pool().load<std::uint32_t>(frontier_.offset + kSizeOff);
    std::vector<std::uint32_t> resume(durable_size);
    m_->pool().read(frontier_.offset + kQueueOff, resume.data(),
                    std::uint64_t(durable_size) * 4);

    // Scrub any half-marked nodes of the crashed level: idempotent
    // re-execution of the level re-derives them.
    WorkloadResult r;
    r.recovery_ns = m_->now() - r0;

    const std::uint32_t resumed_at = levels_executed_;
    traverse(std::move(resume), durable_level);
    r.ops_done = levels_executed_ - resumed_at;

    r.verified = host_cost_ == ref && durable_level >= crash_level;
    r.op_ns = m_->now() - r0;
    return r;
}

std::vector<std::uint32_t>
GpBfs::referenceCosts() const
{
    return bfsReference(graph_, p_.source);
}

std::uint32_t
GpBfs::durableCost(std::uint32_t v) const
{
    return m_->pool().loadDurable<std::uint32_t>(costAddr(v));
}

} // namespace gpm
