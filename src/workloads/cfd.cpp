#include "workloads/cfd.hpp"

#include <cmath>
#include <cstring>

#include "common/rng.hpp"

namespace gpm {

void
CfdApp::init()
{
    const std::size_t n = std::size_t(p_.nx) * p_.ny;
    density_.assign(n, 1.0f);
    mom_x_.assign(n, 0.0f);
    mom_y_.assign(n, 0.0f);
    energy_.assign(n, 2.5f);
    scratch_.assign(n, 0.0f);

    // A dense, fast-moving pocket in the middle of the domain.
    for (std::uint32_t y = p_.ny / 3; y < 2 * p_.ny / 3; ++y) {
        for (std::uint32_t x = p_.nx / 3; x < 2 * p_.nx / 3; ++x) {
            density_[at(x, y)] = 2.0f;
            mom_x_[at(x, y)] = 0.6f;
            mom_y_[at(x, y)] = 0.2f;
            energy_[at(x, y)] = 4.0f;
        }
    }
}

void
CfdApp::computeIteration(Machine &m, std::uint32_t iter)
{
    (void)iter;
    const float lambda = 0.2f;  // dt/dx, stability-safe
    auto step = [&](std::vector<float> &field) {
        // Lax-Friedrichs: average of neighbours minus flux divergence
        // approximated with the local velocity field.
        for (std::uint32_t y = 1; y + 1 < p_.ny; ++y) {
            for (std::uint32_t x = 1; x + 1 < p_.nx; ++x) {
                const std::size_t c = at(x, y);
                const float rho = std::max(density_[c], 1e-3f);
                const float u = mom_x_[c] / rho;
                const float v = mom_y_[c] / rho;
                scratch_[c] =
                    0.25f * (field[at(x - 1, y)] + field[at(x + 1, y)] +
                             field[at(x, y - 1)] + field[at(x, y + 1)]) -
                    0.5f * lambda *
                        (u * (field[at(x + 1, y)] - field[at(x - 1, y)]) +
                         v * (field[at(x, y + 1)] - field[at(x, y - 1)]));
            }
        }
        for (std::uint32_t y = 1; y + 1 < p_.ny; ++y) {
            std::memcpy(&field[at(1, y)], &scratch_[at(1, y)],
                        (p_.nx - 2) * sizeof(float));
        }
    };
    step(density_);
    step(mom_x_);
    step(mom_y_);
    step(energy_);

    const double cells = static_cast<double>(p_.nx) * p_.ny;
    chargeGpuCompute(m, cells * 4 * 14,
                     static_cast<std::uint64_t>(cells) * 4 * 4 * 5);
}

void
CfdApp::registerState(GpmCheckpoint &cp)
{
    cp.registerData(0, density_.data(),
                    density_.size() * sizeof(float));
    cp.registerData(0, mom_x_.data(), mom_x_.size() * sizeof(float));
    cp.registerData(0, mom_y_.data(), mom_y_.size() * sizeof(float));
    cp.registerData(0, energy_.data(), energy_.size() * sizeof(float));
}

std::vector<std::uint8_t>
CfdApp::snapshot() const
{
    std::vector<std::uint8_t> out(stateBytes());
    std::uint8_t *dst = out.data();
    for (const std::vector<float> *v :
         {&density_, &mom_x_, &mom_y_, &energy_}) {
        std::memcpy(dst, v->data(), v->size() * sizeof(float));
        dst += v->size() * sizeof(float);
    }
    return out;
}

double
CfdApp::totalDensity() const
{
    double sum = 0.0;
    for (const float v : density_)
        sum += v;
    return sum;
}

} // namespace gpm
