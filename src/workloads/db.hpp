/**
 * @file
 * gpDB: transactional GPU-accelerated relational database of GPMbench
 * (Table 1; derived from the Virginian GPU database in the paper).
 *
 * The table is a PM-resident row store of fixed 60 B rows (Table 1's
 * 3 GB / 50 M rows). Two transaction types are exercised, matching the
 * gpDB (I) and gpDB (U) bars of Figures 9-12:
 *
 *  - INSERT: threads append rows past the current row count. New rows
 *    are contiguous but start warp-by-warp at unaligned offsets, which
 *    puts them on Optane's 3.13 GB/s tier (Fig 12's discussion). Only
 *    the table size needs logging: the durable row count advances in a
 *    single persisted store after all rows are durable, so a crash
 *    simply leaves the partial rows invisible (Table 5's 0.01 %
 *    restoration latency).
 *
 *  - UPDATE: threads overwrite rows scattered across the table,
 *    undo-logging each old row first (HCL's heavyweight user: 68 B
 *    entries, the 6.1x of Fig 11a). Batch targets are distinct rows —
 *    the standard same-slot rule any order-insensitive per-thread undo
 *    needs (cf. kvs.cpp).
 *
 * On CAP platforms UPDATE transfers and persists the whole table
 * (write amplification ~20x, Table 4) while INSERT transfers just the
 * appended region rounded up to the DMA chunk (~1.27x).
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "gpm/gpm_log.hpp"
#include "gpusim/kernel.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** gpDB sizing. */
struct GpDbParams {
    std::uint32_t initial_rows = 1u << 18;   ///< pre-loaded rows (~15 MiB)
    std::uint32_t insert_rows = 32768;       ///< rows per INSERT batch
    std::uint32_t update_rows = 8192;        ///< rows per UPDATE batch
    std::uint32_t insert_batches = 2;
    std::uint32_t update_batches = 2;
    std::uint64_t seed = 7;
    bool use_hcl = true;
    std::uint32_t conv_partitions = 16;
    int cap_threads = 32;
    std::uint64_t cap_chunk_bytes = 1_MiB;   ///< CAP transfer granularity

    static constexpr std::uint32_t kRowBytes = 60;

    std::uint64_t
    maxRows() const
    {
        return std::uint64_t(initial_rows) +
               std::uint64_t(insert_batches) * insert_rows;
    }

    std::uint64_t tableBytes() const { return maxRows() * kRowBytes; }
};

/** One 60 B row (deliberately not a power-of-two, like Table 1's). */
struct DbRow {
    std::uint32_t id = 0;
    std::uint8_t payload[GpDbParams::kRowBytes - 4] = {};
};
static_assert(sizeof(DbRow) == GpDbParams::kRowBytes);

/** gpDB instance bound to one Machine. */
class GpDb
{
  public:
    enum class TxnKind { Insert, Update };

    GpDb(Machine &m, const GpDbParams &p);

    /** Map regions, create logs, bulk-load the initial rows (setup
     *  cost excluded from operation time). */
    void setup();

    /** Run all INSERT batches, then all UPDATE batches. */
    WorkloadResult run();

    /** Run only one kind of transaction (the split gpDB (I) / (U)
     *  bars of Figures 9-11). */
    WorkloadResult run(TxnKind kind);

    /**
     * SELECT scan — the query class GPU databases already excel at
     * (section 4.1: Virginian/OmniSci execute "primarily SELECT
     * queries"; GPM adds the mutating transactions). Counts rows
     * whose id hashes below @p selectivity and sums their first
     * payload word; the table is read from the HBM-cached copy, so
     * no PM traffic is generated. Returns (count, sum) and charges
     * the scan to the timing model.
     */
    std::pair<std::uint64_t, std::uint64_t>
    runSelect(double selectivity);

    /**
     * Crash mid-batch and recover. For Update, the undo log restores
     * the old rows; for Insert, the durable row count never advanced.
     */
    WorkloadResult runWithCrash(TxnKind kind, std::uint32_t crash_batch,
                                double frac, double survive_prob);

    /**
     * Descriptor-armed crash run (see GpKvs::runCrashPoint for the
     * contract). strict_ok accepts either the pre-batch reference or,
     * when @p point never fired, the committed post-batch state.
     */
    CrashOutcome runCrashPoint(TxnKind kind, std::uint32_t crash_batch,
                               const CrashPoint &point,
                               double survive_prob,
                               bool open_persist_window = true,
                               WorkloadResult *result_out = nullptr);

    /** Durable row count (what a reboot would see). */
    std::uint64_t durableRowCount() const;

    /** Build the expected row for (row index, version). */
    DbRow makeRow(std::uint64_t idx, std::uint32_t version) const;

    /** Distinct target rows of update batch @p batch over a table of
     *  @p row_count rows (deterministic, no duplicates — see kvs.cpp
     *  on why per-thread undo requires one writer per location). */
    std::vector<std::uint64_t>
    makeUpdateTargets(std::uint32_t batch,
                      std::uint64_t row_count) const;

    /** Compare the durable table prefix against @p mirror. */
    bool durableEquals(const std::vector<DbRow> &mirror) const;

  private:
    std::uint64_t rowAddr(std::uint64_t idx) const;

    void runInsertGpm(std::uint32_t batch, bool ndp);
    void runUpdateGpm(std::uint32_t batch, bool ndp);
    void runInsertCap(std::uint32_t batch);
    void runUpdateCap(std::uint32_t batch);
    void recoverUpdate();

    /** Host mirror bookkeeping shared by every platform. */
    void mirrorInsert(std::uint32_t batch);
    void mirrorUpdate(std::uint32_t batch);

    Machine *m_;
    GpDbParams p_;
    PmRegion table_;
    PmRegion meta_;  ///< u64 row_count; u32 txn_active; u32 batch_id
    std::vector<GpmLog> log_;
    std::vector<DbRow> mirror_;        ///< expected visible state;
                                       ///< doubles as CAP's volatile copy
};

} // namespace gpm
