/**
 * @file
 * Driver for GPMbench's iterative long-running workloads (Table 1,
 * middle class: DNN, CFD, BLK, HS).
 *
 * All four share the same structure the paper describes: a kernel is
 * invoked iteratively and every N iterations the intermediate state is
 * checkpointed to PM through libGPM's gpmcp API (Figure 7's flow). The
 * compute step executes functionally in C++ (real math, deterministic)
 * and charges the timing model; persistence goes through the real
 * checkpoint machinery on whatever platform the Machine models.
 *
 * Recovery: crash anywhere, reopen the checkpoint, re-register in the
 * same order, gpmcp_restore, and resume from the last checkpointed
 * iteration — the driver verifies the resumed run converges to the
 * same final state as an uninterrupted one.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpm/gpm_checkpoint.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** Iteration/checkpoint schedule. */
struct IterativeParams {
    std::uint32_t iterations = 40;
    std::uint32_t checkpoint_every = 10;  ///< paper: e.g. every 10th pass
};

/** Base class for the checkpointing workloads. */
class IterativeApp
{
  public:
    virtual ~IterativeApp() = default;

    /** Short name; also the PM path of the checkpoint file. */
    virtual std::string name() const = 0;

    /** (Re)initialize the volatile state to iteration zero. */
    virtual void init() = 0;

    /** One compute iteration: real math plus a GPU timing charge. */
    virtual void computeIteration(Machine &m, std::uint32_t iter) = 0;

    /** Register every checkpointable structure, in a fixed order. */
    virtual void registerState(GpmCheckpoint &cp) = 0;

    /** Bytes of checkpointable state. */
    virtual std::uint64_t stateBytes() const = 0;

    /** Checkpoint size at the paper's unscaled inputs — used for the
     *  GPUfs 2 GB file-limit check (BLK and HS fail there, Fig 9). */
    virtual std::uint64_t paperStateBytes() const = 0;

    /** Serialize the checkpointable state (verification only). */
    virtual std::vector<std::uint8_t> snapshot() const = 0;

    /**
     * Execute the full schedule on @p m.
     *
     * @param p  Iteration/checkpoint schedule.
     */
    WorkloadResult run(Machine &m, const IterativeParams &p);

    /**
     * Fault-tolerance flow: run to @p crash_iter, crash (optionally
     * mid-checkpoint when @p crash_in_checkpoint), restore from the
     * last checkpoint, resume, and verify the final snapshot matches
     * an uninterrupted run.
     *
     * recovery_ns covers checkpoint open + restore (Table 5).
     */
    WorkloadResult runWithCrashRestore(Machine &m,
                                       const IterativeParams &p,
                                       std::uint32_t crash_iter,
                                       bool crash_in_checkpoint,
                                       double survive_prob);
};

} // namespace gpm
