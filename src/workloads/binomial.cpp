#include "workloads/binomial.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"

namespace gpm {

namespace {
constexpr float kRiskFree = 0.02f;
} // namespace

GpBinomial::GpBinomial(Machine &m, const BinomialParams &p)
    : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.options > 0 && p_.steps >= 2,
                "bad binomial configuration");
}

void
GpBinomial::setup()
{
    out_ = gpmMap(*m_, "binomial.prices",
                  std::uint64_t(p_.options) * 4, true);
    Rng rng(p_.seed);
    spot_.resize(p_.options);
    strike_.resize(p_.options);
    vol_.resize(p_.options);
    years_.resize(p_.options);
    for (std::uint32_t i = 0; i < p_.options; ++i) {
        spot_[i] = 30.0f + 80.0f * static_cast<float>(rng.uniform());
        strike_[i] = 30.0f + 80.0f * static_cast<float>(rng.uniform());
        vol_[i] = 0.15f + 0.4f * static_cast<float>(rng.uniform());
        years_[i] = 0.5f + 1.5f * static_cast<float>(rng.uniform());
    }
}

void
GpBinomial::option(std::uint32_t i, float &spot, float &strike,
                   float &vol, float &years) const
{
    GPM_REQUIRE(i < p_.options, "option index out of range");
    spot = spot_[i];
    strike = strike_[i];
    vol = vol_[i];
    years = years_[i];
}

float
GpBinomial::referencePrice(std::uint32_t i) const
{
    // Cox–Ross–Rubinstein European call.
    const float s = spot_[i], k = strike_[i], v = vol_[i];
    const float dt = years_[i] / static_cast<float>(p_.steps);
    const float u = std::exp(v * std::sqrt(dt));
    const float d = 1.0f / u;
    const float disc = std::exp(-kRiskFree * dt);
    const float pu = (std::exp(kRiskFree * dt) - d) / (u - d);

    std::vector<float> values(p_.steps + 1);
    for (std::uint32_t j = 0; j <= p_.steps; ++j) {
        const float price =
            s * std::pow(u, static_cast<float>(j)) *
            std::pow(d, static_cast<float>(p_.steps - j));
        values[j] = std::max(price - k, 0.0f);
    }
    for (std::uint32_t level = p_.steps; level > 0; --level) {
        for (std::uint32_t j = 0; j < level; ++j)
            values[j] =
                disc * (pu * values[j + 1] + (1.0f - pu) * values[j]);
    }
    return values[0];
}

WorkloadResult
GpBinomial::run()
{
    WorkloadResult r;
    if (m_->kind() == PlatformKind::Gpufs) {
        r.supported = false;
        return r;
    }
    setup();

    // Precompute all prices host-side (the per-thread tree work is
    // charged in the kernel below).
    std::vector<float> prices(p_.options);
    for (std::uint32_t i = 0; i < p_.options; ++i)
        prices[i] = referencePrice(i);

    const bool in_kernel = inKernelPersistence(m_->kind());
    const bool gpu_direct =
        in_kernel || m_->kind() == PlatformKind::GpmNdp;

    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);
    const SimNs t0 = m_->now();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    const std::uint32_t tpb = 128;
    KernelDesc k;
    k.name = "binomial";
    // One disjoint price store per block; prices is read-only here.
    k.block_independent = true;
    k.blocks = p_.options;
    k.block_threads = tpb;
    // Phase 0: the block's threads share the tree levels.
    k.phases.push_back([this, tpb](ThreadCtx &ctx) {
        const double level_work =
            static_cast<double>(p_.steps) * p_.steps / 2.0;
        ctx.work(level_work / tpb + 4);
        ctx.hbmTraffic(4 * p_.steps / tpb + 16);
    });
    // Phase 1 (after the block barrier): ONE thread writes + persists
    // the option's price — the whole block's PM parallelism.
    const std::uint64_t out_base = out_.offset;
    k.phases.push_back([this, out_base, &prices, gpu_direct,
                        in_kernel](ThreadCtx &ctx) {
        if (ctx.threadIdx() != 0)
            return;
        if (gpu_direct) {
            ctx.pmStore(out_base +
                            std::uint64_t(ctx.blockIdx()) * 4,
                        prices[ctx.blockIdx()]);
            if (in_kernel)
                ctx.threadfenceSystem();
        }
    });
    m_->runKernel(k);

    if (!gpu_direct) {
        switch (m_->kind()) {
          case PlatformKind::CapFs:
            m_->capFsPersist(out_.offset, prices.data(),
                             prices.size() * 4, 1);
            break;
          default:
            m_->capMmPersist(out_.offset, prices.data(),
                             prices.size() * 4, p_.cap_threads);
            break;
        }
    } else if (m_->kind() == PlatformKind::GpmNdp) {
        m_->cpuPersistRange(out_.offset, prices.size() * 4,
                            p_.cap_threads);
    }

    r.op_ns = m_->now() - t0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;
    r.ops_done = p_.options;
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistEnd(*m_);

    r.verified = true;
    if (gpu_direct) {
        for (std::uint32_t i = 0; i < p_.options; ++i) {
            if (m_->pool().load<float>(out_.offset + i * 4) !=
                prices[i]) {
                r.verified = false;
                break;
            }
        }
    }
    return r;
}

float
GpBinomial::durablePrice(std::uint32_t i) const
{
    return m_->pool().loadDurable<float>(out_.offset + i * 4);
}

} // namespace gpm
