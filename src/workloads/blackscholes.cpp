#include "workloads/blackscholes.hpp"

#include <cmath>
#include <cstring>

#include "common/rng.hpp"

namespace gpm {

namespace {
constexpr float kRiskFree = 0.02f;
constexpr float kInitialYears = 2.0f;
constexpr float kYearsPerIter = 0.05f;
} // namespace

float
BlackScholesApp::normCdf(float x)
{
    return 0.5f * std::erfc(-x * 0.70710678f);
}

void
BlackScholesApp::init()
{
    Rng rng(p_.seed);
    spot_.resize(p_.options);
    strike_.resize(p_.options);
    vol_.resize(p_.options);
    for (std::uint32_t i = 0; i < p_.options; ++i) {
        spot_[i] = 20.0f + 100.0f * static_cast<float>(rng.uniform());
        strike_[i] = 20.0f + 100.0f * static_cast<float>(rng.uniform());
        vol_[i] = 0.1f + 0.5f * static_cast<float>(rng.uniform());
    }
    calls_.assign(p_.options, 0.0f);
    puts_.assign(p_.options, 0.0f);
}

void
BlackScholesApp::price(std::uint32_t i, float years, float &call,
                       float &put) const
{
    const float s = spot_[i], k = strike_[i], v = vol_[i];
    const float sqrt_t = std::sqrt(years);
    const float d1 =
        (std::log(s / k) + (kRiskFree + 0.5f * v * v) * years) /
        (v * sqrt_t);
    const float d2 = d1 - v * sqrt_t;
    const float discount = std::exp(-kRiskFree * years);
    call = s * normCdf(d1) - k * discount * normCdf(d2);
    put = k * discount * normCdf(-d2) - s * normCdf(-d1);
}

void
BlackScholesApp::computeIteration(Machine &m, std::uint32_t iter)
{
    const float years =
        std::max(kInitialYears - kYearsPerIter * iter, 0.05f);
    for (std::uint32_t i = 0; i < p_.options; ++i)
        price(i, years, calls_[i], puts_[i]);

    chargeGpuCompute(m, static_cast<double>(p_.options) * 60.0,
                     std::uint64_t(p_.options) * 5 * sizeof(float));
}

float
BlackScholesApp::referenceCall(std::uint32_t i, std::uint32_t iter) const
{
    const float years =
        std::max(kInitialYears - kYearsPerIter * iter, 0.05f);
    float c = 0, p = 0;
    price(i, years, c, p);
    return c;
}

void
BlackScholesApp::registerState(GpmCheckpoint &cp)
{
    cp.registerData(0, calls_.data(), calls_.size() * sizeof(float));
    cp.registerData(0, puts_.data(), puts_.size() * sizeof(float));
}

std::vector<std::uint8_t>
BlackScholesApp::snapshot() const
{
    std::vector<std::uint8_t> out(stateBytes());
    std::memcpy(out.data(), calls_.data(),
                calls_.size() * sizeof(float));
    std::memcpy(out.data() + calls_.size() * sizeof(float),
                puts_.data(), puts_.size() * sizeof(float));
    return out;
}

} // namespace gpm
