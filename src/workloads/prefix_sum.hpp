/**
 * @file
 * PS workload (Table 1: prefix sum over 1K x 1M integer arrays,
 * natively persisting partial and final sums).
 *
 * This is the paper's flagship native-persistence example: Figure 8's
 * kernel is reproduced phase for phase. The input array is split into
 * per-threadblock subarrays; each thread computes the sum of its
 * chunk and persists it into the pm_p_sums array — every thread but
 * the block's last persists first, a __syncthreads barrier follows,
 * and only then does the last thread persist its own sum. That last
 * slot doubles as the block's recovery sentinel: if it is non-EMPTY
 * after a crash, the whole block's partial sums are known-durable and
 * the block is skipped on resume (the kernel's first line).
 *
 * A second stage turns partial sums into block offsets and persists
 * the final prefix array with aligned streaming writes (PS's high PM
 * bandwidth in Fig 12).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "gpusim/kernel.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** Array sizing. */
struct PsParams {
    std::uint32_t block_threads = 256;
    std::uint32_t elems_per_thread = 16;
    std::uint32_t blocks = 192;   ///< subarrays (one per threadblock)
    std::uint64_t seed = 31;
    int cap_threads = 32;

    std::uint64_t
    elements() const
    {
        return std::uint64_t(blocks) * block_threads * elems_per_thread;
    }
};

/** The prefix-sum app. */
class GpPrefixSum
{
  public:
    static constexpr std::uint32_t kEmpty = 0;  ///< inputs are >= 1

    GpPrefixSum(Machine &m, const PsParams &p);

    /** Map regions, generate the input (values in [1, 100]). */
    void setup();

    /** Full prefix-sum computation. */
    WorkloadResult run();

    /**
     * Crash during the partial-sum kernel, resume, finish. Verifies
     * the output and reports how many blocks the sentinel check let
     * the resumed kernel skip (observable recovery win, section 5.4).
     */
    WorkloadResult runWithCrash(double frac, double survive_prob);

    /**
     * Descriptor-armed crash run: crash the partial-sum kernel at
     * @p point, reboot, resume (sentinel-skip re-run) and finish.
     * strict_ok means the full durable output equals the reference —
     * the kernel's native recovery is a recompute, so there is a
     * single legal final state regardless of where the crash landed.
     */
    CrashOutcome runCrashPoint(const CrashPoint &point,
                               double survive_prob,
                               bool open_persist_window = true);

    /** Host reference prefix sums. */
    std::vector<std::uint64_t> referencePrefix() const;

    /** Blocks skipped by the sentinel check in the last kernel run. */
    std::uint64_t blocksSkipped() const { return blocks_skipped_; }

    /** Final durable prefix value at index @p i. */
    std::uint64_t durablePrefix(std::uint64_t i) const;

  private:
    /** Figure 8's kernel (partial sums with sentinel ordering). */
    void partialSumsKernel(const std::optional<CrashPoint> &crash);
    /** Offsets + final output stage. */
    void finalKernel();

    std::uint64_t psumAddr(std::uint64_t thread) const;
    std::uint64_t outAddr(std::uint64_t i) const;

    Machine *m_;
    PsParams p_;
    PmRegion psums_;  ///< u64 per thread (partial sums)
    PmRegion out_;    ///< u64 per element (final prefix)
    std::vector<std::uint32_t> input_;  ///< HBM-resident input
    // Atomic: thread 0 of every block bumps it, and the partial-sums
    // kernel is block_independent, so blocks may run on different
    // host workers.
    std::atomic<std::uint64_t> blocks_skipped_{0};
};

} // namespace gpm
