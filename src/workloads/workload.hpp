/**
 * @file
 * Common result type and helpers for the GPMbench workloads (Table 1).
 *
 * Every workload exposes a Params struct with paper-shaped defaults
 * (scaled ~10-50x down from Table 1 so the functional simulation runs
 * in seconds; see DESIGN.md) and a run() entry point that executes the
 * workload on whatever platform the given Machine models.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "platform/machine.hpp"

namespace gpm {

/**
 * Outcome of one descriptor-armed crash run (the torture-matrix unit
 * of work). Each crash-capable workload exposes a runCrashPoint()
 * returning one of these after crash + reboot + recovery.
 *
 * strict_ok is the failure-atomicity invariant: the durable state
 * equals a committed-prefix state (either the pre-batch reference or,
 * when the armed point never fired and the batch committed, the
 * post-batch state). Under PersistDomain::LlcVolatile it is *expected*
 * to fail for transactional workloads — that observable failure is the
 * DDIO trap of section 6.1, and the torture runner records rather than
 * asserts it there.
 */
struct CrashOutcome {
    bool fired = false;        ///< the armed crash point triggered
    bool recovery_ran = false; ///< a recovery path executed post-reboot
    bool strict_ok = false;    ///< committed-prefix durability held
    std::uint64_t state_hash = 0;  ///< FNV of recovered durable state
};

/** Outcome of one workload execution on one platform. */
struct WorkloadResult {
    bool supported = true;     ///< false: platform cannot run it (GPUfs)
    SimNs op_ns = 0;           ///< operation time (compute + persistence)
    SimNs persist_ns = 0;      ///< persistence-only time where separable
                               ///< (checkpoint operations; 0 otherwise)
    SimNs recovery_ns = 0;     ///< restoration latency (Table 5); 0 if n/a
    std::uint64_t persisted_payload = 0;  ///< Table 4 numerator/denominator
    std::uint64_t pcie_write_bytes = 0;   ///< Fig 12 numerator
    double ops_done = 0;       ///< workload-specific operation count
    bool verified = true;      ///< functional output check passed

    /** Throughput in Mops/s over the operation time. */
    double
    mops() const
    {
        return op_ns > 0 ? ops_done * 1e3 / op_ns : 0.0;
    }
};

/**
 * Charge the simulated clock for GPU computation performed host-side.
 *
 * Compute-heavy phases (DNN math, stencils) execute functionally in
 * plain C++ for speed; their GPU cost is the max of ALU time and HBM
 * traffic time, plus one launch (the same composition Machine uses
 * for recorded kernels).
 */
inline void
chargeGpuCompute(Machine &m, double ops, std::uint64_t hbm_bytes,
                 bool charge_launch = true)
{
    const SimConfig &cfg = m.config();
    const SimNs compute = ops / cfg.gpu_ops_per_ns;
    const SimNs mem = transferNs(hbm_bytes, cfg.hbm_gbps);
    m.advance((charge_launch ? cfg.kernel_launch_ns : 0.0) +
              std::max(compute, mem));
}

/** Charge CPU computation executed functionally host-side. */
inline void
chargeCpuCompute(Machine &m, double ops, int threads)
{
    m.cpuCompute(ops, threads);
}

} // namespace gpm
