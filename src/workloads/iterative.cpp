#include "workloads/iterative.hpp"

#include "gpusim/kernel.hpp"

namespace gpm {

WorkloadResult
IterativeApp::run(Machine &m, const IterativeParams &p)
{
    WorkloadResult r;
    if (m.kind() == PlatformKind::Gpufs &&
        !m.gpufsSupported(paperStateBytes())) {
        // BLK and HS exceed GPUfs's 2 GB file limit (section 6.1).
        r.supported = false;
        return r;
    }
    init();
    GpmCheckpoint cp = GpmCheckpoint::create(m, name() + ".cp",
                                             stateBytes(),
                                             /*elements=*/16,
                                             /*groups=*/1);
    registerState(cp);

    const SimNs t0 = m.now();
    const std::uint64_t pcie0 = m.pcieWriteBytes();
    const std::uint64_t pay0 = m.persistPayloadBytes();

    for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
        computeIteration(m, iter);
        if ((iter + 1) % p.checkpoint_every == 0) {
            const SimNs c0 = m.now();
            cp.checkpoint(0);
            r.persist_ns += m.now() - c0;
        }
    }

    r.op_ns = m.now() - t0;
    r.pcie_write_bytes = m.pcieWriteBytes() - pcie0;
    r.persisted_payload = m.persistPayloadBytes() - pay0;
    r.ops_done = p.iterations;
    return r;
}

WorkloadResult
IterativeApp::runWithCrashRestore(Machine &m, const IterativeParams &p,
                                  std::uint32_t crash_iter,
                                  bool crash_in_checkpoint,
                                  double survive_prob)
{
    GPM_REQUIRE(crash_iter < p.iterations, "crash iteration too late");
    GPM_REQUIRE(!crash_in_checkpoint || inKernelPersistence(m.kind()),
                "mid-checkpoint crashes need the GPM copy kernel");

    // Uninterrupted baseline (compute is machine-independent).
    std::vector<std::uint8_t> baseline;
    {
        Machine scratch(m.config(), m.kind(), 1_MiB);
        init();
        for (std::uint32_t iter = 0; iter < p.iterations; ++iter)
            computeIteration(scratch, iter);
        baseline = snapshot();
    }

    WorkloadResult r;
    init();
    GpmCheckpoint cp = GpmCheckpoint::create(m, name() + ".cp",
                                             stateBytes(), 16, 1);
    registerState(cp);

    const SimNs t0 = m.now();
    for (std::uint32_t iter = 0; iter < crash_iter; ++iter) {
        computeIteration(m, iter);
        if ((iter + 1) % p.checkpoint_every == 0)
            cp.checkpoint(0);
    }
    r.op_ns = m.now() - t0;

    if (crash_in_checkpoint) {
        // Kill the next checkpoint's copy kernel half-way: the flip
        // must not have happened.
        computeIteration(m, crash_iter);
        cp.armCrashNextCheckpoint(0.5);
        bool crashed = false;
        try {
            cp.checkpoint(0);
        } catch (const KernelCrashed &) {
            crashed = true;
        }
        GPM_ASSERT(crashed, "checkpoint crash point did not fire");
    }
    m.pool().crash(survive_prob);

    // Reboot: reopen, re-register in the same order, restore, resume.
    const SimNs r0 = m.now();
    GpmCheckpoint reopened = GpmCheckpoint::open(m, name() + ".cp");
    init();
    registerState(reopened);
    const std::uint32_t seq = reopened.sequence(0);
    if (seq > 0)
        reopened.restore(0);
    r.recovery_ns = m.now() - r0;

    const std::uint32_t resume_iter = seq * p.checkpoint_every;
    GPM_ASSERT(resume_iter <= crash_iter + 1,
               "checkpoint claims more progress than executed");
    for (std::uint32_t iter = resume_iter; iter < p.iterations;
         ++iter) {
        computeIteration(m, iter);
        if ((iter + 1) % p.checkpoint_every == 0)
            reopened.checkpoint(0);
    }

    r.ops_done = p.iterations;
    r.verified = snapshot() == baseline;
    return r;
}

} // namespace gpm
