/**
 * @file
 * BFS workload (Table 1: GPU breadth-first search over the USA road
 * network, natively persisting the per-node cost and the search
 * frontier each iteration).
 *
 * The graph is a synthetic road-network analog: a long 2D grid lattice
 * (high diameter, like a road network) with a sprinkling of shortcut
 * edges, held read-only in device memory as CSR — the paper keeps the
 * input graph in HBM for exactly this reason. What persists to PM is
 * the cost array (scattered 4 B writes: the random-address PM traffic
 * Fig 12 shows for BFS) and the frontier queue plus its level, which
 * together let a crashed traversal *resume* instead of restarting.
 *
 * Levels are idempotent: a level marks unvisited neighbours of the
 * persisted frontier with level+1 and then recomputes the next
 * frontier as "every node with cost level+1", so re-running a
 * partially executed level after a crash converges to the same state.
 *
 * Under GPM the traversal runs as a persistent kernel (one launch,
 * on-device looping); CAP pays a launch + DMA + persist round trip
 * per level — the gap behind the paper's 85x.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace gpm {

/** Graph/traversal sizing. */
struct BfsParams {
    std::uint32_t grid_w = 64;    ///< lattice width
    std::uint32_t grid_h = 512;   ///< lattice height (sets diameter)
    std::uint32_t shortcuts = 256;  ///< extra random edges
    std::uint32_t source = 0;
    std::uint64_t seed = 23;
    int cap_threads = 16;

    std::uint32_t
    nodes() const
    {
        return grid_w * grid_h;
    }
};

/** CSR graph (read-only, device-resident). */
struct CsrGraph {
    std::vector<std::uint32_t> row_off;
    std::vector<std::uint32_t> col;

    std::uint32_t nodes() const
    {
        return static_cast<std::uint32_t>(row_off.size() - 1);
    }
};

/** Build the synthetic road-network graph (lattice + shortcuts). */
CsrGraph makeRoadGraph(const BfsParams &p);

/** Host BFS over @p g from @p source (shared reference). */
std::vector<std::uint32_t> bfsReference(const CsrGraph &g,
                                        std::uint32_t source);

/** The BFS app. */
class GpBfs
{
  public:
    static constexpr std::uint32_t kInf = 0xffffffffu;

    GpBfs(Machine &m, const BfsParams &p);

    /** Build the graph and map the PM regions (setup). */
    void setup();

    /** Full traversal from the source. */
    WorkloadResult run();

    /**
     * Crash mid-traversal (during level processing), then resume from
     * the durable cost/frontier state and finish; verifies against a
     * host reference BFS. Counts how many levels were *not* redone.
     */
    WorkloadResult runWithCrash(double progress_frac,
                                double survive_prob);

    /** Host reference BFS distances. */
    std::vector<std::uint32_t> referenceCosts() const;

    /** Durable cost of node @p v. */
    std::uint32_t durableCost(std::uint32_t v) const;

    const CsrGraph &graph() const { return graph_; }

    /** Levels executed by the last run()/resume (test observability). */
    std::uint32_t levelsExecuted() const { return levels_executed_; }

  private:
    /** One BFS level; returns the next frontier. Persistence follows
     *  the machine's platform. @p first_level charges the single
     *  launch of the persistent kernel. */
    std::vector<std::uint32_t> runLevel(
        const std::vector<std::uint32_t> &frontier, std::uint32_t level,
        bool first_level);

    /** Run levels until the frontier empties, starting from the given
     *  state. */
    void traverse(std::vector<std::uint32_t> frontier,
                  std::uint32_t level);

    std::uint64_t costAddr(std::uint32_t v) const;

    Machine *m_;
    BfsParams p_;
    CsrGraph graph_;
    PmRegion cost_;      ///< u32 per node
    PmRegion frontier_;  ///< u32 level; u32 size; u32 nodes[]
    PmRegion cap_stage_; ///< CAP's per-level compact update record
    std::vector<std::uint32_t> host_cost_;  ///< HBM mirror
    std::uint32_t levels_executed_ = 0;
};

} // namespace gpm
