/**
 * @file
 * DNN training workload (Table 1: cuDNN LeNet on MNIST, checkpointing
 * weights and biases every N passes).
 *
 * Scaled substitution: a two-layer MLP (input-hidden-softmax) trained
 * by SGD on a deterministic synthetic digit dataset — same structure
 * (weights + biases checkpointed as one group, loss must decrease),
 * ~50x smaller than the paper's 3.2 MB LeNet state so the functional
 * simulation stays fast. paperStateBytes() reports the unscaled size
 * for the GPUfs file-limit check.
 */
#pragma once

#include "workloads/iterative.hpp"

namespace gpm {

/** MLP geometry and training hyperparameters. */
struct DnnParams {
    std::uint32_t input = 196;    ///< 14x14 synthetic digits
    std::uint32_t hidden = 256;   ///< ~0.8 MiB of weights
    std::uint32_t classes = 10;
    std::uint32_t train_samples = 256;
    std::uint32_t minibatch = 32;
    float lr = 0.15f;
    std::uint64_t seed = 5;
};

/** The DNN training app. */
class DnnApp final : public IterativeApp
{
  public:
    explicit DnnApp(const DnnParams &p);

    std::string name() const override { return "dnn"; }
    void init() override;
    void computeIteration(Machine &m, std::uint32_t iter) override;
    void registerState(GpmCheckpoint &cp) override;
    std::uint64_t stateBytes() const override;
    std::uint64_t
    paperStateBytes() const override
    {
        return std::uint64_t(3.2 * 1024 * 1024);  // Table 1
    }
    std::vector<std::uint8_t> snapshot() const override;

    /** Cross-entropy loss of the most recent minibatch. */
    double lastLoss() const { return last_loss_; }

    /** Classification accuracy over the training set. */
    double accuracy() const;

  private:
    void forward(const float *x, std::vector<float> &h,
                 std::vector<float> &probs) const;

    DnnParams p_;
    std::vector<float> w1_, b1_, w2_, b2_;    ///< checkpointed state
    std::vector<float> data_;                 ///< samples * input
    std::vector<std::uint8_t> labels_;
    double last_loss_ = 0.0;
};

} // namespace gpm
