#include "workloads/kvs.hpp"

#include <algorithm>
#include <cstring>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

const char *
kvVerbName(KvVerb v)
{
    switch (v) {
      case KvVerb::Get: return "get";
      case KvVerb::Put: return "put";
      case KvVerb::Del: return "del";
    }
    return "?";
}

namespace {

/** Meta region layout. */
constexpr std::uint64_t kTxnFlagOff = 0;   ///< u32: transaction active
constexpr std::uint64_t kBatchIdOff = 4;   ///< u32: batch in flight

/** Undo record with its batch epoch (see recover()). */
struct EpochEntry {
    KvLogEntry e;
    std::uint32_t batch = 0;
};

} // namespace

GpKvs::GpKvs(Machine &m, const GpKvsParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.n_sets > 0 && p_.batch_ops > 0 && p_.batches > 0,
                "empty gpKVS configuration");
}

std::uint64_t
GpKvs::hashKey(std::uint64_t key)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint32_t
GpKvs::chooseWay(const KvPair *set_base, std::uint64_t key)
{
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        if (set_base[w].key == key)
            return w;  // update in place
    }
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        if (set_base[w].key == 0)
            return w;  // first free way
    }
    // Set full: the SET fails. Evicting here would allow two ops of
    // one batch to write the same slot, and the order-insensitive
    // per-thread undo of Figure 6(b) cannot restore that correctly —
    // MegaKV-style batching likewise resolves way conflicts among the
    // thread group before logging. Eviction happens out of band.
    return kNoWay;
}

std::uint64_t
GpKvs::pairAddr(std::uint32_t set, std::uint32_t way) const
{
    return store_.offset +
           (std::uint64_t(set) * GpKvsParams::kWays + way) *
               sizeof(KvPair);
}

void
GpKvs::fillBatch(std::uint32_t batch, std::vector<Op> &out) const
{
    Rng rng = Rng(p_.seed).split(batch);
    out.resize(p_.batch_ops);
    for (Op &op : out) {
        op.key = rng.next() | 1;  // never the empty-slot marker
        op.value = rng.next() | 1;
        op.is_get = rng.chance(p_.get_ratio);
    }
}

const std::vector<GpKvs::Op> &
GpKvs::makeBatch(std::uint32_t batch) const
{
    fillBatch(batch, ops_buf_);
    if (batch > 0 && p_.get_ratio > 0.0) {
        // Make GETs meaningful: target keys the first batch SET (a
        // read-mostly store serving its own population), falling back
        // to random (miss) keys for every second GET. Batch 0 is
        // cached so steady-state assembly touches no allocator.
        if (first_ops_.empty())
            fillBatch(0, first_ops_);
        for (std::uint32_t i = 0; i < ops_buf_.size(); ++i) {
            if (ops_buf_[i].is_get && i % 2 == 0)
                ops_buf_[i].key = first_ops_[i].key;
        }
    }
    return ops_buf_;
}

void
GpKvs::setup()
{
    store_ = gpmMap(*m_, "gpkvs.data", p_.storeBytes(), /*create=*/true);
    meta_ = gpmMap(*m_, "gpkvs.meta", 256, /*create=*/true);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // Each KvPair is the atomic unit: a torn half-slot (key
        // without value) is exactly what the per-thread undo protects
        // against, so gpmcheck may assume slot-granular recovery.
        rec->declareRange("gpkvs.data", store_.offset, p_.storeBytes(),
                          sizeof(KvPair), PmRangeKind::Data);
        rec->declareRange("gpkvs.meta", meta_.offset, 8, 0,
                          PmRangeKind::Commit);
        rec->declareOrder("gpkvs.data", "gpkvs.meta", /*strict=*/false);
    }

    const std::uint64_t threads =
        std::uint64_t(p_.batch_ops) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;
    const std::uint32_t blocks =
        static_cast<std::uint32_t>(ceilDiv(threads, tpb));

    if (inKernelPersistence(m_->kind()) ||
        m_->kind() == PlatformKind::GpmNdp) {
        if (p_.use_hcl) {
            log_.push_back(GpmLog::createHcl(
                *m_, "gpkvs.log", sizeof(EpochEntry),
                /*max_entries=*/p_.batches + 1, blocks, tpb));
        } else {
            // Size each partition for every batch's worst case. The
            // gtid%P placement is heavily skewed (way-0 leaders
            // cluster on every eighth partition), so leave 8x slack.
            const std::uint64_t part_bytes =
                8 * ceilDiv(std::uint64_t(p_.batch_ops) *
                                (p_.batches + 1) * sizeof(EpochEntry),
                            p_.conv_partitions) + 4096;
            log_.push_back(GpmLog::createConv(*m_, "gpkvs.log",
                                              part_bytes,
                                              p_.conv_partitions));
        }
    } else {
        host_copy_.assign(std::uint64_t(p_.n_sets) * GpKvsParams::kWays,
                          KvPair{});
    }
}

void
GpKvs::runBatchGpm(const std::vector<Op> &ops, bool ndp)
{
    get_results_.assign(ops.size(), 0);
    const std::uint32_t batch_id =
        m_->pool().load<std::uint32_t>(meta_.offset + kBatchIdOff);

    // Transaction prologue: flag the in-flight batch (persisted from
    // the CPU; a CPU flush is always available regardless of DDIO).
    const std::uint32_t flag_and_batch[2] = {1u, batch_id};
    m_->cpuWritePersist(meta_.offset, flag_and_batch, 8, 1);

    const std::uint64_t threads =
        std::uint64_t(ops.size()) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;

    std::uint64_t sets_written = 0;
    KernelDesc k;
    k.name = "gpkvs_batch";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &ops, batch_id,
                        &sets_written](ThreadCtx &ctx) {
        const std::uint64_t gtid = ctx.globalId();
        const std::uint64_t op_idx = gtid / GpKvsParams::kGroup;
        if (op_idx >= ops.size())
            return;
        const Op &op = ops[op_idx];
        ctx.work(40);  // hashing + probe arithmetic

        if (op.is_get) {
            if (gtid % GpKvsParams::kGroup == 0) {
                // Served from the HBM-cached copy of the store.
                ctx.hbmTraffic(GpKvsParams::kWays * sizeof(KvPair));
                ctx.work(20);
                const std::uint32_t gset = static_cast<std::uint32_t>(
                    hashKey(op.key) % p_.n_sets);
                KvPair gways[GpKvsParams::kWays];
                m_->pool().read(pairAddr(gset, 0), gways,
                                sizeof(gways));
                get_results_[op_idx] = 0;
                for (const KvPair &pair : gways) {
                    if (pair.key == op.key)
                        get_results_[op_idx] = pair.value;
                }
            }
            return;
        }

        const std::uint32_t set = static_cast<std::uint32_t>(
            hashKey(op.key) % p_.n_sets);
        KvPair ways[GpKvsParams::kWays];
        m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
        ctx.hbmTraffic(sizeof(KvPair));  // this thread probes one way

        const std::uint32_t way = chooseWay(ways, op.key);
        if (gtid % GpKvsParams::kGroup != way)
            return;  // not the leader for this op

        // GPM-NDP runs the very same kernel (logging included); only
        // the persistence guarantee moves to the CPU — the fences
        // below complete at the volatile LLC and order without
        // persisting (section 6.1).
        EpochEntry entry;
        entry.e = KvLogEntry{set, way, ways[way].key, ways[way].value};
        entry.batch = batch_id;
        // Conventional logs spread ops, not thread ids, over the
        // partitions (leader thread ids cluster on way 0).
        log_.front().insert(ctx, &entry, sizeof(entry),
                            p_.use_hcl ? -1
                                       : static_cast<int>(
                                             op_idx %
                                             p_.conv_partitions));
        ctx.pmStore(pairAddr(set, way), KvPair{op.key, op.value});
        gpmPersist(ctx);
        ++sets_written;
    });
    m_->runKernel(k);
    m_->advance(log_.front().consumeSerializationNs());

    if (ndp) {
        // The CPU sweeps the updated lines: KVS slot, log stripes and
        // tail for each SET.
        m_->cpuPersistScattered(sets_written * 3 *
                                    m_->config().cache_line,
                                p_.cap_threads);
    }

    // Transaction epilogue: batch committed.
    const std::uint32_t done_and_next[2] = {0u, batch_id + 1};
    m_->cpuWritePersist(meta_.offset, done_and_next, 8, 1);
}

void
GpKvs::runBatchCap(const std::vector<Op> &ops)
{
    get_results_.assign(ops.size(), 0);
    const std::uint64_t threads =
        std::uint64_t(ops.size()) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;

    // The kernel reports dirty transfer chunks so CAP can moderate
    // the extraneous movement (section 3.2) — a chunk is still
    // dirtied by a single 16 B update, hence Table 4's amplification.
    std::vector<bool> dirty(
        ceilDiv(p_.storeBytes(), p_.cap_chunk_bytes), false);

    KernelDesc k;
    k.name = "gpkvs_batch_volatile";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &ops, &dirty](ThreadCtx &ctx) {
        const std::uint64_t gtid = ctx.globalId();
        const std::uint64_t op_idx = gtid / GpKvsParams::kGroup;
        if (op_idx >= ops.size())
            return;
        const Op &op = ops[op_idx];
        ctx.work(40);
        if (op.is_get) {
            if (gtid % GpKvsParams::kGroup == 0) {
                ctx.hbmTraffic(GpKvsParams::kWays * sizeof(KvPair));
                ctx.work(20);
                const std::uint32_t gset = static_cast<std::uint32_t>(
                    hashKey(op.key) % p_.n_sets);
                get_results_[op_idx] = 0;
                for (std::uint32_t w = 0; w < GpKvsParams::kWays;
                     ++w) {
                    const KvPair &pair =
                        host_copy_[std::uint64_t(gset) *
                                   GpKvsParams::kWays + w];
                    if (pair.key == op.key)
                        get_results_[op_idx] = pair.value;
                }
            }
            return;
        }
        const std::uint32_t set = static_cast<std::uint32_t>(
            hashKey(op.key) % p_.n_sets);
        KvPair *base = &host_copy_[std::uint64_t(set) *
                                   GpKvsParams::kWays];
        ctx.hbmTraffic(sizeof(KvPair));
        const std::uint32_t way = chooseWay(base, op.key);
        if (gtid % GpKvsParams::kGroup != way)
            return;
        base[way] = KvPair{op.key, op.value};
        ctx.hbmTraffic(sizeof(KvPair));
        const std::uint64_t byte_off =
            (std::uint64_t(set) * GpKvsParams::kWays + way) *
            sizeof(KvPair);
        dirty[byte_off / p_.cap_chunk_bytes] = true;
    });
    m_->runKernel(k);

    // The updated indices are only known at chunk granularity; every
    // dirty chunk is transferred and persisted in full.
    std::vector<std::uint64_t> chunks;
    for (std::uint64_t c = 0; c < dirty.size(); ++c) {
        if (dirty[c])
            chunks.push_back(c);
    }
    switch (m_->kind()) {
      case PlatformKind::CapFs:
        m_->capPersistChunks(store_.offset, host_copy_.data(), chunks,
                             p_.cap_chunk_bytes, p_.cap_threads,
                             /*via_fs=*/true);
        break;
      case PlatformKind::CapMm:
      case PlatformKind::CapEadr:
        m_->capPersistChunks(store_.offset, host_copy_.data(), chunks,
                             p_.cap_chunk_bytes, p_.cap_threads,
                             /*via_fs=*/false);
        break;
      default:
        panic("runBatchCap on ", platformName(m_->kind()));
    }
}

WorkloadResult
GpKvs::run()
{
    WorkloadResult r;
    if (m_->kind() == PlatformKind::Gpufs) {
        // Fine-grain per-thread writes deadlock GPUfs (section 6.1).
        r.supported = false;
        return r;
    }
    setup();

    const SimNs t0 = m_->now();
    const std::uint64_t pcie0 = m_->pcieWriteBytes();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    for (std::uint32_t b = 0; b < p_.batches; ++b) {
        const std::vector<Op> &ops = makeBatch(b);
        switch (m_->kind()) {
          case PlatformKind::Gpm:
            gpmPersistBegin(*m_);
            runBatchGpm(ops, /*ndp=*/false);
            gpmPersistEnd(*m_);
            break;
          case PlatformKind::GpmEadr:
            runBatchGpm(ops, /*ndp=*/false);
            break;
          case PlatformKind::GpmNdp:
            runBatchGpm(ops, /*ndp=*/true);
            break;
          default:
            runBatchCap(ops);
            break;
        }
        r.ops_done += static_cast<double>(ops.size());
    }

    r.op_ns = m_->now() - t0;
    r.pcie_write_bytes = m_->pcieWriteBytes() - pcie0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;

    // Functional check: the visible store holds each batch's writes,
    // and the last batch's GETs returned what an in-order reference
    // execution would have observed.
    std::vector<KvPair> mirror(std::uint64_t(p_.n_sets) *
                               GpKvsParams::kWays);
    for (std::uint32_t b = 0; b + 1 < p_.batches; ++b)
        applyBatchReference(mirror, b);
    bool gets_ok = true;
    {
        const std::vector<Op> &last = makeBatch(p_.batches - 1);
        for (std::uint32_t i = 0; i < last.size(); ++i) {
            const Op &op = last[i];
            if (op.is_get) {
                std::uint64_t expected = 0;
                const std::uint32_t set = static_cast<std::uint32_t>(
                    hashKey(op.key) % p_.n_sets);
                for (std::uint32_t w = 0; w < GpKvsParams::kWays;
                     ++w) {
                    const KvPair &pair =
                        mirror[std::uint64_t(set) *
                               GpKvsParams::kWays + w];
                    if (pair.key == op.key)
                        expected = pair.value;
                }
                gets_ok = gets_ok && get_results_[i] == expected;
                continue;
            }
            KvPair *base = &mirror[std::uint64_t(hashKey(op.key) %
                                                 p_.n_sets) *
                                   GpKvsParams::kWays];
            const std::uint32_t way = chooseWay(base, op.key);
            if (way != kNoWay)
                base[way] = KvPair{op.key, op.value};
        }
    }
    if (inKernelPersistence(m_->kind()) ||
        m_->kind() == PlatformKind::GpmNdp) {
        r.verified = std::memcmp(m_->pool().visible() + store_.offset,
                                 mirror.data(), p_.storeBytes()) == 0;
    } else {
        r.verified = std::memcmp(host_copy_.data(), mirror.data(),
                                 p_.storeBytes()) == 0;
    }
    r.verified = r.verified && gets_ok;
    return r;
}

void
GpKvs::recover()
{
    telemetry::Span span("recovery", "gpkvs_recover");
    telemetry::count("recovery.invocations");
    PmRecoveryScope rscope(m_->pool().recorder());
    const std::uint32_t crashed_batch =
        m_->pool().load<std::uint32_t>(meta_.offset + kBatchIdOff);

    const std::uint64_t threads =
        std::uint64_t(p_.batch_ops) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;

    GpmLog log = GpmLog::open(*m_, "gpkvs.log");
    KernelDesc k;
    k.name = "gpkvs_recover";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &log, crashed_batch](ThreadCtx &ctx) {
        EpochEntry entry;
        if (!log.read(ctx, &entry, sizeof(entry)))
            return;
        // Entries from earlier, committed batches must not be undone.
        if (entry.batch != crashed_batch)
            return;
        ctx.pmStore(pairAddr(entry.e.set, entry.e.way),
                    KvPair{entry.e.old_key, entry.e.old_value});
        gpmPersist(ctx);
        // Only drop the log entry once the undo itself is durable —
        // recovery must stay recoverable (section 5.2).
        log.remove(ctx, sizeof(entry));
    });
    m_->runKernel(k);
    m_->advance(log.consumeSerializationNs());

    const std::uint32_t zero = 0;
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, &zero, 4, 1);
}

WorkloadResult
GpKvs::runWithCrash(std::uint32_t crash_batch, double frac,
                    double survive_prob)
{
    GPM_REQUIRE(frac >= 0.0 && frac <= 1.0, "bad crash fraction");
    const std::uint64_t threads =
        std::uint64_t(p_.batch_ops) * GpKvsParams::kGroup;
    WorkloadResult r;
    const CrashOutcome o = runCrashPoint(
        crash_batch,
        CrashPoint::afterThreadPhases(static_cast<std::uint64_t>(
            frac * static_cast<double>(threads))),
        survive_prob, /*open_persist_window=*/true, &r);
    GPM_ASSERT(o.fired || frac >= 1.0, "crash point did not fire");
    return r;
}

CrashOutcome
GpKvs::runCrashPoint(std::uint32_t crash_batch, const CrashPoint &point,
                     double survive_prob, bool open_persist_window,
                     WorkloadResult *result_out)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "crash recovery needs in-kernel persistence");
    GPM_REQUIRE(p_.use_hcl,
                "per-thread undo recovery requires the HCL log");
    GPM_REQUIRE(crash_batch < p_.batches, "crash batch out of range");

    setup();
    WorkloadResult r;
    CrashOutcome o;
    // Only PlatformKind::Gpm has a DDIO toggle; eADR needs no window.
    const bool window =
        open_persist_window && m_->kind() == PlatformKind::Gpm;

    // Reference states: every batch before the crashed one applied,
    // and additionally the doomed batch on top — the durable image
    // must equal one of the two (atomicity: all or nothing).
    std::vector<KvPair> reference(std::uint64_t(p_.n_sets) *
                                  GpKvsParams::kWays);
    for (std::uint32_t b = 0; b < crash_batch; ++b)
        applyBatchReference(reference, b);
    std::vector<KvPair> committed = reference;
    applyBatchReference(committed, crash_batch);

    const SimNs t0 = m_->now();
    for (std::uint32_t b = 0; b < crash_batch; ++b) {
        if (window)
            gpmPersistBegin(*m_);
        runBatchGpm(makeBatch(b), /*ndp=*/false);
        if (window)
            gpmPersistEnd(*m_);
        r.ops_done += p_.batch_ops;
    }
    const SimNs clean_ns = m_->now() - t0;

    // The doomed batch: arm the crash point mid-kernel.
    {
        const std::vector<Op> &ops = makeBatch(crash_batch);
        const std::uint32_t batch_id = crash_batch;
        const std::uint32_t flag_and_batch[2] = {1u, batch_id};
        m_->cpuWritePersist(meta_.offset, flag_and_batch, 8, 1);
        if (window)
            gpmPersistBegin(*m_);

        const std::uint64_t threads =
            std::uint64_t(ops.size()) * GpKvsParams::kGroup;
        const std::uint32_t tpb = 256;
        KernelDesc k;
        k.name = "gpkvs_batch_crashing";
        k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
        k.block_threads = tpb;
        k.crash = point;
        k.phases.push_back([this, &ops, batch_id](ThreadCtx &ctx) {
            const std::uint64_t gtid = ctx.globalId();
            const std::uint64_t op_idx = gtid / GpKvsParams::kGroup;
            if (op_idx >= ops.size())
                return;
            const Op &op = ops[op_idx];
            if (op.is_get)
                return;
            const std::uint32_t set = static_cast<std::uint32_t>(
                hashKey(op.key) % p_.n_sets);
            KvPair ways[GpKvsParams::kWays];
            m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
            const std::uint32_t way = chooseWay(ways, op.key);
            if (gtid % GpKvsParams::kGroup != way)
                return;
            EpochEntry entry;
            entry.e = KvLogEntry{set, way, ways[way].key,
                                 ways[way].value};
            entry.batch = batch_id;
            log_.front().insert(ctx, &entry, sizeof(entry));
            ctx.pmStore(pairAddr(set, way),
                        KvPair{op.key, op.value});
            gpmPersist(ctx);
        });
        try {
            m_->runKernel(k);
        } catch (const KernelCrashed &) {
            o.fired = true;
        }
        m_->pool().crash(survive_prob);
    }

    // Reboot: recover if the durable flag says a batch was in flight.
    // Recovery always runs inside a persist window — after a reboot
    // the recovery procedure gets to configure DDIO correctly even if
    // the crashed application never did.
    const SimNs r0 = m_->now();
    if (m_->pool().load<std::uint32_t>(meta_.offset + kTxnFlagOff) ==
        1) {
        if (!window && m_->kind() == PlatformKind::Gpm)
            gpmPersistBegin(*m_);
        recover();
        if (!window && m_->kind() == PlatformKind::Gpm)
            gpmPersistEnd(*m_);
        o.recovery_ran = true;
    }
    r.recovery_ns = m_->now() - r0;
    r.op_ns = clean_ns;

    o.strict_ok = durableEquals(reference) ||
                  (!o.fired && durableEquals(committed));
    o.state_hash = fnv1a(m_->pool().durable() + store_.offset,
                         p_.storeBytes());
    r.verified = o.strict_ok;
    if (result_out)
        *result_out = r;
    return o;
}

bool
GpKvs::durableEquals(const std::vector<KvPair> &reference) const
{
    return std::memcmp(m_->pool().durable() + store_.offset,
                       reference.data(),
                       reference.size() * sizeof(KvPair)) == 0;
}

std::uint64_t
GpKvs::durableStoreHash() const
{
    std::uint64_t h =
        fnv1a(m_->pool().durable() + store_.offset, p_.storeBytes());
    // Variable-size serving: fold the heap's durable allocation state
    // so two runs differing only in slot accounting can't collide.
    if (serve_heap_)
        h = fnv1aU64(serve_heap_->durableBitmapHash(), h);
    return h;
}

bool
GpKvs::lookup(std::uint64_t key, std::uint64_t &value_out) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(hashKey(key) % p_.n_sets);
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        const KvPair pair =
            m_->pool().load<KvPair>(pairAddr(set, w));
        if (pair.key == key) {
            value_out = pair.value;
            return true;
        }
    }
    return false;
}

void
GpKvs::serveSetup(std::uint32_t max_batch_ops)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "serving requires in-kernel persistence (GPM/eADR)");
    GPM_REQUIRE(p_.use_hcl, "the serving path logs through HCL");
    GPM_REQUIRE(max_batch_ops > 0, "empty serve batch capacity");

    serve_max_ops_ = max_batch_ops;
    // The recovery kernel's grid spans p_.batch_ops ops; keep it in
    // sync with the serve log geometry.
    p_.batch_ops = max_batch_ops;

    store_ = gpmMap(*m_, "gpkvs.data", p_.storeBytes(), /*create=*/true);
    meta_ = gpmMap(*m_, "gpkvs.meta", 256, /*create=*/true);
    if (PmEventRecorder *rec = m_->pool().recorder()) {
        rec->declareRange("gpkvs.data", store_.offset, p_.storeBytes(),
                          sizeof(KvPair), PmRangeKind::Data);
        rec->declareRange("gpkvs.meta", meta_.offset, 8, 0,
                          PmRangeKind::Commit);
        rec->declareOrder("gpkvs.data", "gpkvs.meta", /*strict=*/false);
    }

    const std::uint64_t threads =
        std::uint64_t(max_batch_ops) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;
    const std::uint32_t blocks =
        static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    // At most one undo entry per leader thread per in-flight batch,
    // and serveBatch truncates after every commit — 2 rows per thread
    // is already headroom.
    log_.push_back(GpmLog::createHcl(*m_, "gpkvs.log",
                                     sizeof(EpochEntry),
                                     /*max_entries=*/2, blocks, tpb));
}

void
GpKvs::serveBatch(const std::vector<KvRequest> &reqs,
                  std::vector<std::uint64_t> &results,
                  const CrashPoint *crash)
{
    GPM_REQUIRE(serve_max_ops_ > 0, "serveSetup() was not called");
    GPM_REQUIRE(!reqs.empty() && reqs.size() <= serve_max_ops_,
                "serve batch of ", reqs.size(), " ops outside [1, ",
                serve_max_ops_, "]");

    // The dynamic batcher's dedup contract: at most one request per
    // set index. Distinct sets are disjoint 128 B lines, which is
    // what lets the kernel run block-independent and makes batch
    // results independent of intra-batch order.
    set_scratch_.clear();
    for (const KvRequest &rq : reqs)
        set_scratch_.push_back(setOf(rq.key));
    std::sort(set_scratch_.begin(), set_scratch_.end());
    GPM_REQUIRE(std::adjacent_find(set_scratch_.begin(),
                                   set_scratch_.end()) ==
                    set_scratch_.end(),
                "serve batch carries two requests on one set");

    results.assign(reqs.size(), 0);
    if (serve_heap_) {
        serveBatchVar(reqs, results, crash);
        return;
    }
    const std::uint32_t batch_id =
        m_->pool().load<std::uint32_t>(meta_.offset + kBatchIdOff);
    const std::uint32_t flag_and_batch[2] = {1u, batch_id};
    m_->cpuWritePersist(meta_.offset, flag_and_batch, 8, 1);

    const std::uint64_t threads =
        std::uint64_t(reqs.size()) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpkvs_serve";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    k.block_threads = tpb;
    k.block_independent = true;
    if (crash)
        k.crash = *crash;
    k.phases.push_back([this, &reqs, &results, batch_id](ThreadCtx &ctx) {
        const std::uint64_t gtid = ctx.globalId();
        const std::uint64_t op_idx = gtid / GpKvsParams::kGroup;
        if (op_idx >= reqs.size())
            return;
        const KvRequest &rq = reqs[op_idx];
        ctx.work(40);  // hashing + probe arithmetic
        const std::uint32_t set = setOf(rq.key);

        if (rq.verb == KvVerb::Get) {
            if (gtid % GpKvsParams::kGroup == 0) {
                // Served from the HBM-cached copy of the store.
                ctx.hbmTraffic(GpKvsParams::kWays * sizeof(KvPair));
                ctx.work(20);
                KvPair ways[GpKvsParams::kWays];
                m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
                for (const KvPair &pair : ways) {
                    if (pair.key == rq.key)
                        results[op_idx] = pair.value;
                }
            }
            return;
        }

        KvPair ways[GpKvsParams::kWays];
        m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
        ctx.hbmTraffic(sizeof(KvPair));  // this thread probes one way

        std::uint32_t way = kNoWay;
        if (rq.verb == KvVerb::Put) {
            way = chooseWay(ways, rq.key);
        } else {
            // DEL: only an exact key match has a leader.
            for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
                if (ways[w].key == rq.key)
                    way = w;
            }
        }
        if (way == kNoWay || gtid % GpKvsParams::kGroup != way)
            return;  // not the leader (PUT on full set / DEL miss)

        EpochEntry entry;
        entry.e = KvLogEntry{set, way, ways[way].key, ways[way].value};
        entry.batch = batch_id;
        log_.front().insert(ctx, &entry, sizeof(entry));
        const KvPair next = rq.verb == KvVerb::Put
                                ? KvPair{rq.key, rq.value}
                                : KvPair{};
        ctx.pmStore(pairAddr(set, way), next);
        gpmPersist(ctx);
        results[op_idx] = 1;
    });
    m_->runKernel(k);  // KernelCrashed propagates to the caller
    m_->advance(log_.front().consumeSerializationNs());

    // Transaction epilogue, then truncate the per-thread undo tails
    // so a long-running service never outgrows the log.
    const std::uint32_t done_and_next[2] = {0u, batch_id + 1};
    m_->cpuWritePersist(meta_.offset, done_and_next, 8, 1);
    log_.front().clearAll();
}

void
GpKvs::serveSetupVar(std::uint32_t max_batch_ops, GpmHeapParams heap)
{
    serveSetup(max_batch_ops);
    heap.name = "gpkvs.heap";
    // One record covers a whole batch: each op allocates at most one
    // slot (PUT) and frees at most one (overwrite or DEL).
    heap.max_tx_ops =
        std::max<std::uint32_t>(heap.max_tx_ops, 2u * max_batch_ops);
    heap.max_tx_blob = 0;
    serve_heap_ = std::make_unique<GpmHeap>(*m_, heap);
    serve_heap_->setup(/*create=*/true);
    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // The Intent record is durable before the serve kernel
        // publishes any handle into the directory.
        rec->declareOrder(serve_heap_->redoLabel(), "gpkvs.data",
                          /*strict=*/false);
    }
}

void
GpKvs::serveBatchVar(const std::vector<KvRequest> &reqs,
                     std::vector<std::uint64_t> &results,
                     const CrashPoint *crash)
{
    // ---- host plan: predict each PUT's way and every handle this
    // batch replaces or deletes. One op per set (checked by the
    // caller) means the kernel probes exactly the state the plan saw,
    // so the prediction is exact.
    plan_handles_.assign(reqs.size(), 0);
    std::vector<std::uint64_t> allocs, frees;
    struct StagedVal {
        std::uint64_t handle;
        std::uint64_t seed;
    };
    std::vector<StagedVal> staged;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const KvRequest &rq = reqs[i];
        if (rq.verb == KvVerb::Get)
            continue;
        const std::uint32_t set = setOf(rq.key);
        KvPair ways[GpKvsParams::kWays];
        m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
        if (rq.verb == KvVerb::Put) {
            GPM_REQUIRE(rq.value_len > 0,
                        "variable-size PUT carries no length");
            const std::uint32_t way = chooseWay(ways, rq.key);
            if (way == kNoWay)
                continue;  // set full: the PUT is rejected
            if (ways[way].key == rq.key)
                frees.push_back(ways[way].value);
            const std::uint64_t h = serve_heap_->alloc(rq.value_len);
            allocs.push_back(h);
            staged.push_back({h, rq.value});
            plan_handles_[i] = h;
        } else {
            for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
                if (ways[w].key == rq.key)
                    frees.push_back(ways[w].value);
            }
        }
    }

    // ---- stage payloads into the still-unreachable slots. A crash
    // from here on is reconciled by serveRecover(); the popped free
    // slots come back with the heap's bitmap rebuild.
    if (!staged.empty()) {
        KernelDesc k;
        k.name = "gpkvs_serve_stage";
        k.blocks = static_cast<std::uint32_t>(staged.size());
        k.block_threads = GpKvsParams::kGroup;
        k.block_independent = true;
        k.phases.push_back([this, &staged](ThreadCtx &ctx) {
            const std::uint64_t b =
                ctx.globalId() / GpKvsParams::kGroup;
            if (ctx.globalId() % GpKvsParams::kGroup != 0) {
                ctx.work(1);
                return;
            }
            serve_heap_->stagePayload(ctx, staged[b].handle,
                                      staged[b].seed);
            gpmPersist(ctx);
        });
        m_->runKernel(k);
    }

    // ---- Intent record: the slot deltas this batch will make real.
    // The record never self-commits — the kvs txn flag below is the
    // composite commit point serveRecover() consults.
    const std::uint32_t batch_id =
        m_->pool().load<std::uint32_t>(meta_.offset + kBatchIdOff);
    serve_heap_->txBegin(GpmHeap::TxMode::Intent, batch_id, allocs,
                         frees);

    const std::uint32_t flag_and_batch[2] = {1u, batch_id};
    m_->cpuWritePersist(meta_.offset, flag_and_batch, 8, 1);

    const std::uint64_t threads =
        std::uint64_t(reqs.size()) * GpKvsParams::kGroup;
    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpkvs_serve";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(threads, tpb));
    k.block_threads = tpb;
    k.block_independent = true;
    if (crash)
        k.crash = *crash;
    k.phases.push_back([this, &reqs, &results, batch_id](ThreadCtx &ctx) {
        const std::uint64_t gtid = ctx.globalId();
        const std::uint64_t op_idx = gtid / GpKvsParams::kGroup;
        if (op_idx >= reqs.size())
            return;
        const KvRequest &rq = reqs[op_idx];
        ctx.work(40);  // hashing + probe arithmetic
        const std::uint32_t set = setOf(rq.key);

        if (rq.verb == KvVerb::Get) {
            if (gtid % GpKvsParams::kGroup == 0) {
                ctx.hbmTraffic(GpKvsParams::kWays * sizeof(KvPair));
                ctx.work(20);
                KvPair ways[GpKvsParams::kWays];
                m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
                for (const KvPair &pair : ways) {
                    if (pair.key == rq.key)
                        results[op_idx] = serve_heap_->readPayloadHash(
                            ctx, pair.value);
                }
            }
            return;
        }

        KvPair ways[GpKvsParams::kWays];
        m_->pool().read(pairAddr(set, 0), ways, sizeof(ways));
        ctx.hbmTraffic(sizeof(KvPair));

        std::uint32_t way = kNoWay;
        if (rq.verb == KvVerb::Put) {
            way = chooseWay(ways, rq.key);
        } else {
            for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
                if (ways[w].key == rq.key)
                    way = w;
            }
        }
        if (way == kNoWay || gtid % GpKvsParams::kGroup != way)
            return;  // not the leader (PUT on full set / DEL miss)

        EpochEntry entry;
        entry.e = KvLogEntry{set, way, ways[way].key, ways[way].value};
        entry.batch = batch_id;
        log_.front().insert(ctx, &entry, sizeof(entry));
        KvPair next{};
        if (rq.verb == KvVerb::Put) {
            GPM_ASSERT(plan_handles_[op_idx] != 0,
                       "kernel way diverged from the host plan");
            next = KvPair{rq.key, plan_handles_[op_idx]};
        }
        ctx.pmStore(pairAddr(set, way), next);
        gpmPersist(ctx);
        results[op_idx] = 1;
    });
    m_->runKernel(k);  // KernelCrashed propagates; record + flag stay
    m_->advance(log_.front().consumeSerializationNs());

    // Transaction epilogue — THE commit point: after this store is
    // durable the batch is acknowledgeable and serveRecover() rolls
    // the Intent record forward instead of discarding it.
    const std::uint32_t done_and_next[2] = {0u, batch_id + 1};
    m_->cpuWritePersist(meta_.offset, done_and_next, 8, 1);

    serve_heap_->txCommit();
    log_.front().clearAll();
}

bool
GpKvs::serveRecover()
{
    GPM_REQUIRE(serve_max_ops_ > 0, "serveSetup() was not called");
    bool ran = false;
    const std::uint32_t flag =
        m_->pool().load<std::uint32_t>(meta_.offset + kTxnFlagOff);
    if (flag == 1) {
        // Recovery opens its own persist window: a reboot-time
        // procedure gets to configure DDIO even if the crashed
        // service left it in either state.
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistBegin(*m_);
        recover();
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistEnd(*m_);
        ran = true;
    }
    if (serve_heap_) {
        // Composite commit decision. The record is Intent-mode, so
        // the heap alone would discard it; it rolls forward exactly
        // when the epilogue ran before the crash — txn flag clear AND
        // the batch counter advanced past the record's batch. flag==1
        // means the undo above just restored the old references, and
        // a record whose prologue never ran (flag clear, counter not
        // advanced) published nothing — both discard.
        GpmHeap::InFlight rec;
        const bool in_flight = serve_heap_->inFlight(rec);
        const bool committed =
            in_flight && flag == 0 &&
            m_->pool().load<std::uint32_t>(meta_.offset +
                                           kBatchIdOff) ==
                rec.batch_id + 1;
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistBegin(*m_);
        {
            PmRecoveryScope scope(m_->pool().recorder());
            ran = serve_heap_->recover(committed) || ran;
        }
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistEnd(*m_);
    }
    log_.front().clearAll();
    return ran;
}

std::uint64_t
GpKvs::serveReference(KvPair *set_base, const KvRequest &rq)
{
    if (rq.verb == KvVerb::Get) {
        for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
            if (set_base[w].key == rq.key)
                return set_base[w].value;
        }
        return 0;
    }
    if (rq.verb == KvVerb::Put) {
        const std::uint32_t way = chooseWay(set_base, rq.key);
        if (way == kNoWay)
            return 0;
        set_base[way] = KvPair{rq.key, rq.value};
        return 1;
    }
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        if (set_base[w].key == rq.key) {
            set_base[w] = KvPair{};
            return 1;
        }
    }
    return 0;
}

std::uint64_t
GpKvs::serveReferenceVar(KvPair *set_base, const KvRequest &rq)
{
    if (rq.verb == KvVerb::Get) {
        for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
            if (set_base[w].key == rq.key)
                return set_base[w].value;  // the expected payload hash
        }
        return 0;
    }
    if (rq.verb == KvVerb::Put) {
        const std::uint32_t way = chooseWay(set_base, rq.key);
        if (way == kNoWay)
            return 0;
        set_base[way] = KvPair{
            rq.key, GpmHeap::payloadHash(rq.value, rq.value_len)};
        return 1;
    }
    for (std::uint32_t w = 0; w < GpKvsParams::kWays; ++w) {
        if (set_base[w].key == rq.key) {
            set_base[w] = KvPair{};
            return 1;
        }
    }
    return 0;
}

bool
GpKvs::durableEqualsVar(const std::vector<KvPair> &reference) const
{
    GPM_REQUIRE(serve_heap_ != nullptr,
                "durableEqualsVar without serveSetupVar");
    const std::uint64_t n =
        std::uint64_t(p_.n_sets) * GpKvsParams::kWays;
    GPM_REQUIRE(reference.size() == n, "reference mirror of ",
                reference.size(), " slots, store has ", n);
    const std::uint8_t *img = m_->pool().durable();
    std::vector<std::uint64_t> live;
    for (std::uint64_t i = 0; i < n; ++i) {
        KvPair d;
        std::memcpy(&d, img + store_.offset + i * sizeof(KvPair),
                    sizeof(d));
        const KvPair &r = reference[i];
        if (d.key != r.key)
            return false;
        if (d.key == 0) {
            if (d.value != 0)
                return false;
            continue;
        }
        // The mirror stores the expected payload hash where the
        // directory stores a handle.
        if (serve_heap_->durablePayloadHash(d.value) != r.value)
            return false;
        live.push_back(GpmHeap::offOf(d.value));
    }
    // Leak / double-allocation check: live handles and durable bitmap
    // bits must be the same set.
    std::sort(live.begin(), live.end());
    return live == serve_heap_->durableAllocatedOffsets();
}

void
GpKvs::applyBatchReference(std::vector<KvPair> &mirror,
                           std::uint32_t batch) const
{
    for (const Op &op : makeBatch(batch)) {
        if (op.is_get)
            continue;
        const std::uint32_t set = static_cast<std::uint32_t>(
            hashKey(op.key) % p_.n_sets);
        KvPair *base = &mirror[std::uint64_t(set) * GpKvsParams::kWays];
        const std::uint32_t way = chooseWay(base, op.key);
        if (way == kNoWay)
            continue;  // SET failed: the set is full
        base[way] = KvPair{op.key, op.value};
    }
}

} // namespace gpm
