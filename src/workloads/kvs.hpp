/**
 * @file
 * gpKVS: the GPU-accelerated persistent key-value store of GPMbench
 * (Table 1, transactional class; derived from MegaKV in the paper).
 *
 * The store is an 8-way set-associative array of (key, value) pairs
 * living on PM. A batch of SETs runs as a GPU kernel where groups of
 * THRD_GRP_SZ = 8 threads cooperate per operation: each thread probes
 * one way of the hashed set, and the thread owning the selected way
 * becomes the leader that (a) undo-logs the pair being replaced via
 * gpmlog_insert, (b) stores the new pair, and (c) persists it — the
 * exact flow of Figure 6(a). Recovery (Figure 6(b)) undoes the last
 * partially executed batch from the log.
 *
 * On CAP platforms the kernel updates a volatile device-resident copy
 * and the whole store is transferred and persisted afterwards — the
 * source of Table 4's ~39x write amplification.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpm/gpm_log.hpp"
#include "gpusim/kernel.hpp"
#include "pmheap/gpm_heap.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** One stored pair; 8 B keys and values per the paper's Figure 1a. */
struct KvPair {
    std::uint64_t key = 0;
    std::uint64_t value = 0;

    bool
    operator==(const KvPair &o) const
    {
        return key == o.key && value == o.value;
    }
};

/** gpKVS sizing and batch mix. */
struct GpKvsParams {
    std::uint32_t n_sets = 1u << 17;  ///< 131072 sets x 8 ways = 16 MiB
    std::uint32_t batch_ops = 32768;  ///< operations per batch
    std::uint32_t batches = 4;        ///< number of batches
    double get_ratio = 0.0;           ///< fraction of GETs per batch
    std::uint64_t seed = 42;          ///< key/value stream seed
    bool use_hcl = true;              ///< HCL vs conventional log
    std::uint32_t conv_partitions = 16;  ///< conventional-log partitions
    int cap_threads = 32;             ///< CPU persist threads under CAP
    std::uint64_t cap_chunk_bytes = 4096;  ///< CAP dirty-chunk granule

    static constexpr std::uint32_t kWays = 8;
    static constexpr std::uint32_t kGroup = 8;  ///< THRD_GRP_SZ

    std::uint64_t
    storeBytes() const
    {
        return std::uint64_t(n_sets) * kWays * sizeof(KvPair);
    }
};

/** Undo-log record for one SET (Figure 6a's log_entry). */
struct KvLogEntry {
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    std::uint64_t old_key = 0;
    std::uint64_t old_value = 0;
};

/** Request verbs of the serving path (src/service, tools/gpmserve). */
enum class KvVerb : std::uint8_t { Get = 0, Put = 1, Del = 2 };

/** Canonical lower-case name of @p v ("get" / "put" / "del"). */
const char *kvVerbName(KvVerb v);

/** One client request as admitted by the serving engine. */
struct KvRequest {
    KvVerb verb = KvVerb::Get;
    std::uint64_t key = 0;
    /** Inline 8 B value; in variable-size mode the payload seed. */
    std::uint64_t value = 0;
    /** Variable-size mode only: payload bytes (> 0 for every PUT). */
    std::uint32_t value_len = 0;
};

/** gpKVS instance bound to one Machine. */
class GpKvs
{
  public:
    GpKvs(Machine &m, const GpKvsParams &p);

    /** Map PM regions, create the log, zero the store. Charged as
     *  one-time setup (excluded from operation time). */
    void setup();

    /** Run every batch; returns operation-time results. */
    WorkloadResult run();

    /**
     * Run batches, crash during batch @p crash_batch after a fraction
     * @p frac of its thread-phase executions, let unpersisted lines
     * survive with probability @p survive_prob, recover, then verify
     * the durable store equals the pre-batch reference.
     *
     * Only meaningful on platforms with in-kernel persistence.
     */
    WorkloadResult runWithCrash(std::uint32_t crash_batch, double frac,
                                double survive_prob);

    /**
     * Descriptor-armed crash run (the torture-matrix entry point):
     * run batches up to @p crash_batch cleanly, arm @p point on the
     * doomed batch's kernel, crash the pool with @p survive_prob
     * line survival, reboot, recover, and report the outcome.
     *
     * @p open_persist_window false leaves DDIO on for the doomed run
     * (PersistDomain::LlcVolatile — the GPM-NDP trap); recovery then
     * still runs inside its own persist window, modelling a correct
     * reboot-time recovery procedure on top of crash-time data loss.
     */
    CrashOutcome runCrashPoint(std::uint32_t crash_batch,
                               const CrashPoint &point,
                               double survive_prob,
                               bool open_persist_window = true,
                               WorkloadResult *result_out = nullptr);

    /** The durable store equals @p reference? */
    bool durableEquals(const std::vector<KvPair> &reference) const;

    /** FNV-1a fingerprint of the durable store image. */
    std::uint64_t durableStoreHash() const;

    /** Visible-store lookup (functional checks). */
    bool lookup(std::uint64_t key, std::uint64_t &value_out) const;

    /** Result of GET op @p i of the most recent batch (0 = miss). */
    std::uint64_t
    getResult(std::uint32_t i) const
    {
        GPM_REQUIRE(i < get_results_.size(), "GET index out of range");
        return get_results_[i];
    }

    /** Reference model: apply one batch to a host-side mirror using
     *  exactly the kernel's placement policy. */
    void applyBatchReference(std::vector<KvPair> &mirror,
                             std::uint32_t batch) const;

    static std::uint64_t hashKey(std::uint64_t key);

    /** chooseWay result when the target set is full (the SET fails). */
    static constexpr std::uint32_t kNoWay = 0xffffffffu;

    // ---- serving path (src/service) ----------------------------------

    /**
     * Map PM regions and create a serve-sized HCL log for transaction
     * batches of up to @p max_batch_ops get/put/delete requests.
     * Requires an in-kernel-persistence platform and the HCL log.
     */
    void serveSetup(std::uint32_t max_batch_ops);

    /**
     * Variable-size serving: serveSetup plus a GpmHeap for
     * out-of-line values (docs/pmheap.md). KvPair.value holds a heap
     * handle; a PUT carries (value = payload seed, value_len = bytes)
     * and a GET answers with the FNV hash of the stored payload.
     * @p heap is the slot geometry; name/tx sizing are forced here.
     */
    void serveSetupVar(std::uint32_t max_batch_ops, GpmHeapParams heap);

    /** Non-null after serveSetupVar(): the value heap. */
    const GpmHeap *serveHeap() const { return serve_heap_.get(); }

    /** Set index of @p key under this instance's geometry. */
    std::uint32_t
    setOf(std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(hashKey(key) % p_.n_sets);
    }

    /**
     * Execute one serving batch as a single logged+persisted kernel
     * launch (the Figure 6a flow, extended with GET and DELETE verbs).
     *
     * Precondition (checked): every request targets a distinct set
     * index — the dynamic batcher dedups on setOf() — so the kernel
     * is block-independent (disjoint 128 B set lines) and batch
     * results are order-free.
     *
     * @p results gets one result per request: GET -> value or 0 on
     * miss; PUT -> 1 applied / 0 rejected (set full); DEL -> 1
     * deleted / 0 absent.
     *
     * @p crash optionally arms a crash descriptor on the batch kernel;
     * the KernelCrashed exception propagates to the caller, leaving
     * the in-flight transaction for serveRecover().
     */
    void serveBatch(const std::vector<KvRequest> &reqs,
                    std::vector<std::uint64_t> &results,
                    const CrashPoint *crash = nullptr);

    /**
     * Reboot-time recovery entry point for the serving path: undo the
     * in-flight batch if the durable txn flag says one was open, then
     * truncate the log. @return true when recovery actually ran.
     */
    bool serveRecover();

    /**
     * Reference model of one serve request against a host-mirror set
     * (exactly the kernel's placement/visibility policy). Mutates
     * @p set_base for PUT/DEL. @return the expected result.
     */
    static std::uint64_t serveReference(KvPair *set_base,
                                        const KvRequest &rq);

    /**
     * Variable-size twin of serveReference: the mirror stores the
     * expected payload hash where the kernel stores a heap handle, so
     * GET results compare directly. Mutates @p set_base for PUT/DEL.
     */
    static std::uint64_t serveReferenceVar(KvPair *set_base,
                                           const KvRequest &rq);

    /**
     * Variable-size durable check: every durable (key, handle) slot
     * must match @p reference positionally, each handle's durable
     * payload must hash to the mirror's expected value, and the set
     * of live handles must be exactly the heap's durably allocated
     * slots (no leaks, no double allocations).
     */
    bool durableEqualsVar(const std::vector<KvPair> &reference) const;

    struct Op {
        std::uint64_t key;
        std::uint64_t value;
        bool is_get;
    };

    /**
     * Assemble batch @p batch into a reused member buffer (and a
     * cached batch-0 buffer for GET retargeting), so steady-state
     * batch assembly allocates nothing. The reference is valid until
     * the next makeBatch call on this instance. Public so the
     * allocation-churn microbench can drive assembly in isolation.
     */
    const std::vector<Op> &makeBatch(std::uint32_t batch) const;
    void fillBatch(std::uint32_t batch, std::vector<Op> &out) const;

  private:
    static std::uint32_t chooseWay(const KvPair *set_base,
                                   std::uint64_t key);

    /** GPM-family batch: in-kernel logging + persistence. */
    void runBatchGpm(const std::vector<Op> &ops, bool ndp);
    /** CAP-family batch: volatile update + bulk transfer + persist. */
    void runBatchCap(const std::vector<Op> &ops);
    /** Launch the recovery kernel of Figure 6(b). */
    void recover();

    /** Variable-size serveBatch body (dispatched when a heap exists):
     *  host plan -> stage kernel -> Intent record -> txn flag ->
     *  serve kernel -> epilogue -> heap txCommit. */
    void serveBatchVar(const std::vector<KvRequest> &reqs,
                       std::vector<std::uint64_t> &results,
                       const CrashPoint *crash);

    std::uint64_t pairAddr(std::uint32_t set, std::uint32_t way) const;

    Machine *m_;
    GpKvsParams p_;
    PmRegion store_;
    PmRegion meta_;   ///< [0]: txn_active flag
    std::vector<GpmLog> log_;          ///< one log (vector for lazy init)
    std::vector<KvPair> host_copy_;    ///< CAP's volatile device copy
    std::vector<std::uint64_t> get_results_;  ///< last batch's GETs
    mutable std::vector<Op> ops_buf_;   ///< makeBatch's reused buffer
    mutable std::vector<Op> first_ops_; ///< cached batch 0 (GET targets)
    mutable std::vector<std::uint32_t> set_scratch_;  ///< dedup check
    std::uint32_t serve_max_ops_ = 0;   ///< serveSetup grid capacity
    std::unique_ptr<GpmHeap> serve_heap_;  ///< variable-size value heap
    std::vector<std::uint64_t> plan_handles_;  ///< per-op PUT handle
};

} // namespace gpm
