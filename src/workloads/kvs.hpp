/**
 * @file
 * gpKVS: the GPU-accelerated persistent key-value store of GPMbench
 * (Table 1, transactional class; derived from MegaKV in the paper).
 *
 * The store is an 8-way set-associative array of (key, value) pairs
 * living on PM. A batch of SETs runs as a GPU kernel where groups of
 * THRD_GRP_SZ = 8 threads cooperate per operation: each thread probes
 * one way of the hashed set, and the thread owning the selected way
 * becomes the leader that (a) undo-logs the pair being replaced via
 * gpmlog_insert, (b) stores the new pair, and (c) persists it — the
 * exact flow of Figure 6(a). Recovery (Figure 6(b)) undoes the last
 * partially executed batch from the log.
 *
 * On CAP platforms the kernel updates a volatile device-resident copy
 * and the whole store is transferred and persisted afterwards — the
 * source of Table 4's ~39x write amplification.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gpm/gpm_log.hpp"
#include "gpusim/kernel.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** One stored pair; 8 B keys and values per the paper's Figure 1a. */
struct KvPair {
    std::uint64_t key = 0;
    std::uint64_t value = 0;

    bool
    operator==(const KvPair &o) const
    {
        return key == o.key && value == o.value;
    }
};

/** gpKVS sizing and batch mix. */
struct GpKvsParams {
    std::uint32_t n_sets = 1u << 17;  ///< 131072 sets x 8 ways = 16 MiB
    std::uint32_t batch_ops = 32768;  ///< operations per batch
    std::uint32_t batches = 4;        ///< number of batches
    double get_ratio = 0.0;           ///< fraction of GETs per batch
    std::uint64_t seed = 42;          ///< key/value stream seed
    bool use_hcl = true;              ///< HCL vs conventional log
    std::uint32_t conv_partitions = 16;  ///< conventional-log partitions
    int cap_threads = 32;             ///< CPU persist threads under CAP
    std::uint64_t cap_chunk_bytes = 4096;  ///< CAP dirty-chunk granule

    static constexpr std::uint32_t kWays = 8;
    static constexpr std::uint32_t kGroup = 8;  ///< THRD_GRP_SZ

    std::uint64_t
    storeBytes() const
    {
        return std::uint64_t(n_sets) * kWays * sizeof(KvPair);
    }
};

/** Undo-log record for one SET (Figure 6a's log_entry). */
struct KvLogEntry {
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    std::uint64_t old_key = 0;
    std::uint64_t old_value = 0;
};

/** gpKVS instance bound to one Machine. */
class GpKvs
{
  public:
    GpKvs(Machine &m, const GpKvsParams &p);

    /** Map PM regions, create the log, zero the store. Charged as
     *  one-time setup (excluded from operation time). */
    void setup();

    /** Run every batch; returns operation-time results. */
    WorkloadResult run();

    /**
     * Run batches, crash during batch @p crash_batch after a fraction
     * @p frac of its thread-phase executions, let unpersisted lines
     * survive with probability @p survive_prob, recover, then verify
     * the durable store equals the pre-batch reference.
     *
     * Only meaningful on platforms with in-kernel persistence.
     */
    WorkloadResult runWithCrash(std::uint32_t crash_batch, double frac,
                                double survive_prob);

    /**
     * Descriptor-armed crash run (the torture-matrix entry point):
     * run batches up to @p crash_batch cleanly, arm @p point on the
     * doomed batch's kernel, crash the pool with @p survive_prob
     * line survival, reboot, recover, and report the outcome.
     *
     * @p open_persist_window false leaves DDIO on for the doomed run
     * (PersistDomain::LlcVolatile — the GPM-NDP trap); recovery then
     * still runs inside its own persist window, modelling a correct
     * reboot-time recovery procedure on top of crash-time data loss.
     */
    CrashOutcome runCrashPoint(std::uint32_t crash_batch,
                               const CrashPoint &point,
                               double survive_prob,
                               bool open_persist_window = true,
                               WorkloadResult *result_out = nullptr);

    /** The durable store equals @p reference? */
    bool durableEquals(const std::vector<KvPair> &reference) const;

    /** Visible-store lookup (functional checks). */
    bool lookup(std::uint64_t key, std::uint64_t &value_out) const;

    /** Result of GET op @p i of the most recent batch (0 = miss). */
    std::uint64_t
    getResult(std::uint32_t i) const
    {
        GPM_REQUIRE(i < get_results_.size(), "GET index out of range");
        return get_results_[i];
    }

    /** Reference model: apply one batch to a host-side mirror using
     *  exactly the kernel's placement policy. */
    void applyBatchReference(std::vector<KvPair> &mirror,
                             std::uint32_t batch) const;

    static std::uint64_t hashKey(std::uint64_t key);

    /** chooseWay result when the target set is full (the SET fails). */
    static constexpr std::uint32_t kNoWay = 0xffffffffu;

  private:
    struct Op {
        std::uint64_t key;
        std::uint64_t value;
        bool is_get;
    };

    std::vector<Op> makeBatch(std::uint32_t batch) const;
    static std::uint32_t chooseWay(const KvPair *set_base,
                                   std::uint64_t key);

    /** GPM-family batch: in-kernel logging + persistence. */
    void runBatchGpm(const std::vector<Op> &ops, bool ndp);
    /** CAP-family batch: volatile update + bulk transfer + persist. */
    void runBatchCap(const std::vector<Op> &ops);
    /** Launch the recovery kernel of Figure 6(b). */
    void recover();

    std::uint64_t pairAddr(std::uint32_t set, std::uint32_t way) const;

    Machine *m_;
    GpKvsParams p_;
    PmRegion store_;
    PmRegion meta_;   ///< [0]: txn_active flag
    std::vector<GpmLog> log_;          ///< one log (vector for lazy init)
    std::vector<KvPair> host_copy_;    ///< CAP's volatile device copy
    std::vector<std::uint64_t> get_results_;  ///< last batch's GETs
};

} // namespace gpm
