#include "workloads/srad.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmem/pm_events.hpp"

namespace gpm {

GpSrad::GpSrad(Machine &m, const SradParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.width >= 4 && p_.height >= 4, "image too small");
}

std::uint64_t
GpSrad::imgAddr(std::uint32_t buf, std::uint64_t pix) const
{
    // +4: keep the streaming stores off the 256 B alignment.
    return img_.offset + 4 + (std::uint64_t(buf) * p_.pixels() + pix) * 4;
}

std::uint64_t
GpSrad::coefAddr(std::uint64_t pix) const
{
    return coef_.offset + 4 + pix * 4;
}

std::vector<float>
sradMakeInput(const SradParams &p)
{
    // Speckled input: smooth ramp with multiplicative noise.
    Rng rng(p.seed);
    std::vector<float> img(p.pixels());
    for (std::uint32_t y = 0; y < p.height; ++y) {
        for (std::uint32_t x = 0; x < p.width; ++x) {
            const float base =
                0.4f + 0.4f * std::sin(0.05f * x) * std::cos(0.07f * y);
            const float speckle =
                0.7f + 0.6f * static_cast<float>(rng.uniform());
            img[std::size_t(y) * p.width + x] = base * speckle;
        }
    }
    return img;
}

void
GpSrad::setup()
{
    const std::uint64_t n = p_.pixels();
    img_ = gpmMap(*m_, "srad.img", 8 + n * 8, true);
    coef_ = gpmMap(*m_, "srad.coef", 8 + n * 4, true);
    meta_ = gpmMap(*m_, "srad.meta", 64, true);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // The iteration counter is the commit record: once it says
        // pass N committed, both buffers N touched must be durable —
        // strictly earlier, since the flip is a separate 1x1 launch.
        rec->declareRange("srad.img", img_.offset, 8 + n * 8, 4,
                          PmRangeKind::Data);
        rec->declareRange("srad.coef", coef_.offset, 8 + n * 4, 4,
                          PmRangeKind::Data);
        rec->declareRange("srad.meta", meta_.offset, 4, 0,
                          PmRangeKind::Commit);
        rec->declareOrder("srad.img", "srad.meta", /*strict=*/true);
        rec->declareOrder("srad.coef", "srad.meta", /*strict=*/true);
    }

    host_img_ = sradMakeInput(p_);
    host_coef_.assign(n, 0.0f);

    // Bulk-load the input into image buffer 0 (setup).
    m_->cpuWritePersist(imgAddr(0, 0), host_img_.data(), n * 4,
                        p_.cap_threads);
    const std::uint32_t zero = 0;
    m_->cpuWritePersist(meta_.offset, &zero, 4, 1);
}

void
sradDiffuse(const SradParams &p, const std::vector<float> &src,
            std::vector<float> &dst, std::vector<float> &coef)
{
    const std::uint32_t w = p.width, h = p.height;
    double mean = 0.0, sq = 0.0;
    for (const float v : src) {
        mean += v;
        sq += double(v) * v;
    }
    mean /= static_cast<double>(src.size());
    const double var = sq / static_cast<double>(src.size()) -
                       mean * mean;
    const float q0 = static_cast<float>(var / (mean * mean));

    auto at = [&](std::uint32_t x, std::uint32_t y) {
        return src[std::size_t(std::min(y, h - 1)) * w +
                   std::min(x, w - 1)];
    };
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const std::size_t i = std::size_t(y) * w + x;
            const float c = src[i];
            const float dn = at(x, y ? y - 1 : 0) - c;
            const float ds = at(x, y + 1) - c;
            const float dw = at(x ? x - 1 : 0, y) - c;
            const float de = at(x + 1, y) - c;
            const float g2 =
                (dn * dn + ds * ds + dw * dw + de * de) / (c * c + 1e-6f);
            const float l = (dn + ds + dw + de) / (c + 1e-6f);
            const float num = 0.5f * g2 - 0.0625f * l * l;
            const float den = 1.0f + 0.25f * l;
            const float q = num / (den * den + 1e-6f);
            coef[i] = std::clamp(
                1.0f / (1.0f + (q - q0) / (q0 * (1.0f + q0) + 1e-6f)),
                0.0f, 1.0f);
        }
    }
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const std::size_t i = std::size_t(y) * w + x;
            auto cf = [&](std::uint32_t xx, std::uint32_t yy) {
                return coef[std::size_t(std::min(yy, h - 1)) * w +
                            std::min(xx, w - 1)];
            };
            const float div =
                cf(x, y + 1) * (at(x, y + 1) - src[i]) +
                cf(x, y) * (at(x, y ? y - 1 : 0) - src[i]) +
                cf(x + 1, y) * (at(x + 1, y) - src[i]) +
                cf(x, y) * (at(x ? x - 1 : 0, y) - src[i]);
            dst[i] = src[i] + 0.25f * p.lambda * div;
        }
    }
}

void
GpSrad::runIteration(std::uint32_t iter,
                     const std::optional<CrashPoint> &crash)
{
    const bool in_kernel = inKernelPersistence(m_->kind());
    const bool gpu_direct =
        in_kernel || m_->kind() == PlatformKind::GpmNdp;
    const std::uint64_t n = p_.pixels();
    const std::uint32_t dst_buf = 1 - iter % 2;

    std::vector<float> next(n), coef(n);
    sradDiffuse(p_, host_img_, next, coef);

    // The kernel: each thread owns a contiguous run of pixels per
    // warp chunk so the PM stores stream warp-contiguously (then land
    // unaligned because of the +4 layout pad).
    const std::uint32_t tpb = 256;
    // 15 words per thread: the per-warp chunk (15 x 128 B) is not a
    // multiple of the 256 B XPLine, so half the streaming runs start
    // mid-line — the "streaming but not necessarily aligned" PM
    // traffic section 6.1 describes for SRAD.
    const std::uint32_t words_per_thread = 15;
    const std::uint32_t warp =
        static_cast<std::uint32_t>(m_->config().warp_size);
    KernelDesc k;
    k.name = "srad_iteration";
    // Blocks write disjoint coef/img strips and read only host-side
    // buffers: safe to fan out (crash-armed launches still run
    // sequentially).
    k.block_independent = true;
    k.blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1,
            ceilDiv(n, std::uint64_t(tpb) * words_per_thread)));
    k.block_threads = tpb;
    k.crash = crash;
    k.phases.push_back([this, &next, &coef, n, dst_buf, gpu_direct,
                        in_kernel, warp,
                        words_per_thread](ThreadCtx &ctx) {
        const std::uint64_t chunk =
            std::uint64_t(warp) * words_per_thread;
        const std::uint64_t base = ctx.globalWarp() * chunk;
        ctx.work(words_per_thread * 30);
        ctx.hbmTraffic(words_per_thread * 5 * 4);
        bool wrote = false;
        for (std::uint32_t i = 0; i < words_per_thread; ++i) {
            const std::uint64_t pix =
                base + std::uint64_t(i) * warp + ctx.lane();
            if (pix >= n)
                break;
            if (gpu_direct) {
                ctx.pmStore(coefAddr(pix), coef[pix]);
                ctx.pmStore(imgAddr(dst_buf, pix), next[pix]);
                wrote = true;
            }
        }
        if (wrote && in_kernel)
            ctx.threadfenceSystem();
    });
    m_->runKernel(k);
    host_img_ = std::move(next);
    host_coef_ = std::move(coef);

    if (crash)
        return;  // a doomed iteration never commits, fired or not

    // Commit the iteration counter.
    if (in_kernel) {
        const std::uint64_t meta_addr = meta_.offset;
        const std::uint32_t done = iter + 1;
        KernelDesc commit;
        commit.name = "srad_commit";
        commit.blocks = 1;
        commit.block_threads = 1;
        commit.phases.push_back([meta_addr, done](ThreadCtx &ctx) {
            ctx.pmStore(meta_addr, done);
            ctx.threadfenceSystem();
        });
        m_->runKernel(commit);
    } else {
        switch (m_->kind()) {
          case PlatformKind::GpmNdp:
            m_->cpuPersistScattered(n * 8, p_.cap_threads);
            break;
          case PlatformKind::CapFs:
            m_->capFsPersist(imgAddr(dst_buf, 0), host_img_.data(),
                             n * 4, 1);
            m_->capFsPersist(coefAddr(0), host_coef_.data(), n * 4, 1);
            break;
          case PlatformKind::Gpufs: {
            const std::uint64_t calls =
                std::max<std::uint64_t>(1, ceilDiv(n * 4, 1_MiB));
            m_->gpufsWrite(imgAddr(dst_buf, 0), host_img_.data(),
                           n * 4, calls);
            m_->gpufsWrite(coefAddr(0), host_coef_.data(), n * 4,
                           calls);
            break;
          }
          default:
            m_->capMmPersist(imgAddr(dst_buf, 0), host_img_.data(),
                             n * 4, p_.cap_threads);
            m_->capMmPersist(coefAddr(0), host_coef_.data(), n * 4,
                             p_.cap_threads);
            break;
        }
        const std::uint32_t done = iter + 1;
        m_->cpuWritePersist(meta_.offset, &done, 4, 1);
    }
}

WorkloadResult
GpSrad::run()
{
    WorkloadResult r;
    setup();

    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);
    const SimNs t0 = m_->now();
    const std::uint64_t pcie0 = m_->pcieWriteBytes();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    for (std::uint32_t iter = 0; iter < p_.iterations; ++iter)
        runIteration(iter, std::nullopt);

    r.op_ns = m_->now() - t0;
    r.pcie_write_bytes = m_->pcieWriteBytes() - pcie0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistEnd(*m_);

    const std::vector<float> ref = referenceImage();
    r.verified = host_img_ == ref;
    r.ops_done = static_cast<double>(p_.pixels()) * p_.iterations;
    return r;
}

WorkloadResult
GpSrad::runWithCrash(std::uint32_t crash_iter, double survive_prob)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "SRAD resume needs in-kernel persistence");
    GPM_REQUIRE(crash_iter < p_.iterations, "crash iteration too late");
    setup();
    if (m_->kind() == PlatformKind::Gpm)
        gpmPersistBegin(*m_);

    for (std::uint32_t iter = 0; iter < crash_iter; ++iter)
        runIteration(iter, std::nullopt);

    // Same mid-kernel point the fixed-fraction harness always used:
    // half the launch's thread phases.
    const std::uint64_t blocks = std::max<std::uint64_t>(
        1, ceilDiv(p_.pixels(), std::uint64_t(256) * 15));
    try {
        runIteration(crash_iter,
                     CrashPoint::afterThreadPhases(blocks * 256 / 2));
        GPM_ASSERT(false, "SRAD crash point did not fire");
    } catch (const KernelCrashed &) {
    }
    m_->pool().crash(survive_prob);

    // Reboot: the durable iteration counter says how many passes
    // committed; reload that pass's durable image and resume.
    WorkloadResult r;
    const SimNs r0 = m_->now();
    const std::uint64_t n = p_.pixels();
    std::uint32_t done = 0;
    {
        PmRecoveryScope rscope(m_->pool().recorder());
        done = m_->pool().load<std::uint32_t>(meta_.offset);
        host_img_.assign(n, 0.0f);
        m_->pool().read(imgAddr(done % 2, 0), host_img_.data(), n * 4);
    }
    m_->cpuPmRead(n * 4, p_.cap_threads);
    r.recovery_ns = m_->now() - r0;

    for (std::uint32_t iter = done; iter < p_.iterations; ++iter)
        runIteration(iter, std::nullopt);

    r.verified = host_img_ == referenceImage() && done == crash_iter;
    r.op_ns = m_->now() - r0;
    r.ops_done = p_.iterations - done;
    return r;
}

CrashOutcome
GpSrad::runCrashPoint(std::uint32_t crash_iter, const CrashPoint &point,
                      double survive_prob, bool open_persist_window)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "SRAD resume needs in-kernel persistence");
    GPM_REQUIRE(crash_iter < p_.iterations, "crash iteration too late");
    setup();

    const bool window =
        open_persist_window && m_->kind() == PlatformKind::Gpm;
    if (window)
        gpmPersistBegin(*m_);

    for (std::uint32_t iter = 0; iter < crash_iter; ++iter)
        runIteration(iter, std::nullopt);

    CrashOutcome o;
    try {
        runIteration(crash_iter, point);
    } catch (const KernelCrashed &) {
        o.fired = true;
    }
    m_->pool().crash(survive_prob);

    // Reboot. Recovery always opens a persist window of its own: the
    // restarted process configures DDIO correctly even if the crashed
    // one never did.
    const bool reopen = !window && m_->kind() == PlatformKind::Gpm;
    if (reopen)
        gpmPersistBegin(*m_);
    const std::uint64_t n = p_.pixels();
    std::uint32_t done = 0;
    {
        PmRecoveryScope rscope(m_->pool().recorder());
        done = m_->pool().load<std::uint32_t>(meta_.offset);
        host_img_.assign(n, 0.0f);
        m_->pool().read(imgAddr(done % 2, 0), host_img_.data(), n * 4);
    }
    m_->cpuPmRead(n * 4, p_.cap_threads);
    for (std::uint32_t iter = done; iter < p_.iterations; ++iter)
        runIteration(iter, std::nullopt);
    o.recovery_ran = true;
    if (reopen)
        gpmPersistEnd(*m_);
    if (window)
        gpmPersistEnd(*m_);

    // Recompute recovery: one legal final state regardless of where
    // (or whether) the crash landed.
    o.strict_ok = host_img_ == referenceImage();
    std::vector<float> durable_img(n, 0.0f);
    m_->pool().read(imgAddr(p_.iterations % 2, 0), durable_img.data(),
                    n * 4);
    o.state_hash = fnv1aU64(
        m_->pool().load<std::uint32_t>(meta_.offset),
        fnv1a(durable_img.data(), n * 4));
    return o;
}

std::vector<float>
GpSrad::referenceImage() const
{
    const std::uint64_t n = p_.pixels();
    std::vector<float> img = sradMakeInput(p_);
    std::vector<float> coef(n);
    for (std::uint32_t iter = 0; iter < p_.iterations; ++iter) {
        std::vector<float> tmp(n);
        sradDiffuse(p_, img, tmp, coef);
        img = std::move(tmp);
    }
    return img;
}

double
GpSrad::imageVariance() const
{
    double mean = 0.0, sq = 0.0;
    for (const float v : host_img_) {
        mean += v;
        sq += double(v) * v;
    }
    const double inv = 1.0 / static_cast<double>(host_img_.size());
    mean *= inv;
    return sq * inv - mean * mean;
}

} // namespace gpm
