#include "workloads/hotspot.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"

namespace gpm {

void
HotspotApp::init()
{
    const std::size_t n = std::size_t(p_.n) * p_.n;
    temp_.assign(n, 45.0f);   // ambient + idle
    power_.assign(n, 0.0f);
    scratch_.assign(n, 0.0f);

    // A few hot functional units scattered deterministically.
    Rng rng(p_.seed);
    for (int blobs = 0; blobs < 6; ++blobs) {
        const std::uint32_t cx =
            static_cast<std::uint32_t>(rng.below(p_.n - 16)) + 8;
        const std::uint32_t cy =
            static_cast<std::uint32_t>(rng.below(p_.n - 16)) + 8;
        for (std::uint32_t y = cy - 6; y < cy + 6; ++y)
            for (std::uint32_t x = cx - 6; x < cx + 6; ++x)
                power_[std::size_t(y) * p_.n + x] = 4.0f;
    }
}

void
HotspotApp::computeIteration(Machine &m, std::uint32_t iter)
{
    (void)iter;
    const float alpha = 0.18f;  // lateral conduction
    const float beta = 0.5f;    // power injection
    const float kappa = 0.02f;  // sink to ambient
    for (std::uint32_t y = 1; y + 1 < p_.n; ++y) {
        for (std::uint32_t x = 1; x + 1 < p_.n; ++x) {
            const std::size_t c = std::size_t(y) * p_.n + x;
            const float lap = temp_[c - 1] + temp_[c + 1] +
                              temp_[c - p_.n] + temp_[c + p_.n] -
                              4.0f * temp_[c];
            scratch_[c] = temp_[c] + alpha * lap + beta * power_[c] -
                          kappa * (temp_[c] - 45.0f);
        }
    }
    for (std::uint32_t y = 1; y + 1 < p_.n; ++y) {
        std::memcpy(&temp_[std::size_t(y) * p_.n + 1],
                    &scratch_[std::size_t(y) * p_.n + 1],
                    (p_.n - 2) * sizeof(float));
    }

    const double cells = static_cast<double>(p_.n) * p_.n;
    chargeGpuCompute(m, cells * 10,
                     static_cast<std::uint64_t>(cells) * 4 * 3);
}

void
HotspotApp::registerState(GpmCheckpoint &cp)
{
    cp.registerData(0, temp_.data(), temp_.size() * sizeof(float));
}

std::vector<std::uint8_t>
HotspotApp::snapshot() const
{
    std::vector<std::uint8_t> out(stateBytes());
    std::memcpy(out.data(), temp_.data(), out.size());
    return out;
}

float
HotspotApp::maxTemp() const
{
    return *std::max_element(temp_.begin(), temp_.end());
}

} // namespace gpm
