/**
 * @file
 * CFD workload (Table 1: Rodinia's Euler grid solver; checkpointing
 * flux, momentum and density over many timesteps).
 *
 * Scaled substitution: a structured-grid 2D compressible-flow step in
 * Lax-Friedrichs form over density, x/y momentum and energy fields —
 * the same four conserved quantities the Rodinia kernel checkpoints,
 * on a grid sized so one iteration is sub-millisecond host-side.
 */
#pragma once

#include "workloads/iterative.hpp"

namespace gpm {

/** Grid geometry. */
struct CfdParams {
    std::uint32_t nx = 256;
    std::uint32_t ny = 256;   // 1 MiB of checkpointed fields
    std::uint64_t seed = 11;
};

/** The CFD app. */
class CfdApp final : public IterativeApp
{
  public:
    explicit CfdApp(const CfdParams &p) : p_(p) {}

    std::string name() const override { return "cfd"; }
    void init() override;
    void computeIteration(Machine &m, std::uint32_t iter) override;
    void registerState(GpmCheckpoint &cp) override;
    std::uint64_t
    stateBytes() const override
    {
        return std::uint64_t(4) * p_.nx * p_.ny * sizeof(float);
    }
    std::uint64_t
    paperStateBytes() const override
    {
        return std::uint64_t(8.9 * 1024 * 1024);  // Table 1
    }
    std::vector<std::uint8_t> snapshot() const override;

    /** Total mass (conserved up to boundary flux; tests check it
     *  stays finite and the field evolves). */
    double totalDensity() const;

  private:
    std::size_t
    at(std::uint32_t x, std::uint32_t y) const
    {
        return std::size_t(y) * p_.nx + x;
    }

    CfdParams p_;
    std::vector<float> density_, mom_x_, mom_y_, energy_;
    std::vector<float> scratch_;
};

} // namespace gpm
