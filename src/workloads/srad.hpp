/**
 * @file
 * SRAD workload (Table 1: speckle-reducing anisotropic diffusion over
 * a 128K x 1K image, natively persisting the diffusion-coefficient
 * matrix and the output image per iteration).
 *
 * SRAD is ultrasound-image despeckling: each iteration computes a
 * per-pixel diffusion coefficient from local gradient statistics and
 * then diffuses the image with it. Both the coefficient matrix and
 * the updated image persist in-place on PM from within the kernel —
 * streaming (warp-contiguous) but deliberately *unaligned* stores, the
 * pattern section 6.1 calls out for SRAD's mid-range PM bandwidth:
 * the PM layout offsets both matrices by 4 bytes from the 256 B line.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpusim/kernel.hpp"
#include "workloads/workload.hpp"

namespace gpm {

/** Image geometry. */
struct SradParams {
    std::uint32_t width = 256;
    std::uint32_t height = 128;
    std::uint32_t iterations = 6;
    float lambda = 0.125f;
    std::uint64_t seed = 29;
    int cap_threads = 32;

    std::uint64_t
    pixels() const
    {
        return std::uint64_t(width) * height;
    }
};

/** Deterministic speckled input image (shared with CPU baseline). */
std::vector<float> sradMakeInput(const SradParams &p);

/** One SRAD diffusion pass over @p src into @p dst + coefficients. */
void sradDiffuse(const SradParams &p, const std::vector<float> &src,
                 std::vector<float> &dst, std::vector<float> &coef);

/** The SRAD app. */
class GpSrad
{
  public:
    GpSrad(Machine &m, const SradParams &p);

    /** Map regions and load the speckled input image. */
    void setup();

    /** Run all diffusion iterations. */
    WorkloadResult run();

    /**
     * Crash mid-iteration and resume: the iteration counter persisted
     * after each full pass tells recovery where to restart; a
     * partially diffused iteration is simply re-run from the durable
     * image of the previous pass (kept via double buffering).
     */
    WorkloadResult runWithCrash(std::uint32_t crash_iter,
                                double survive_prob);

    /**
     * Descriptor-armed crash run: crash iteration @p crash_iter at
     * @p point, reboot from the durable iteration counter + image
     * buffer, resume to completion. strict_ok means the final image
     * matches the full-run reference (recompute recovery: one legal
     * final state).
     */
    CrashOutcome runCrashPoint(std::uint32_t crash_iter,
                               const CrashPoint &point,
                               double survive_prob,
                               bool open_persist_window = true);

    /** Host reference: the full diffusion run in plain C++. */
    std::vector<float> referenceImage() const;

    /** Image variance — must fall monotonically (despeckling). */
    double imageVariance() const;

  private:
    void runIteration(std::uint32_t iter,
                      const std::optional<CrashPoint> &crash);
    std::uint64_t imgAddr(std::uint32_t buf, std::uint64_t pix) const;
    std::uint64_t coefAddr(std::uint64_t pix) const;

    Machine *m_;
    SradParams p_;
    PmRegion img_;   ///< 4 B pad + two pixel buffers (double buffered)
    PmRegion coef_;  ///< 4 B pad + coefficient matrix
    PmRegion meta_;  ///< u32 completed iterations
    std::vector<float> host_img_;   ///< current image (HBM mirror)
    std::vector<float> host_coef_;
};

} // namespace gpm
