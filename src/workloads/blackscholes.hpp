/**
 * @file
 * BLK workload (Table 1: CUDA-SDK Black-Scholes over 256 M options,
 * checkpointing the predicted prices).
 *
 * The closed-form Black-Scholes valuation is computed for a scaled
 * option book; each iteration re-prices the book as time-to-maturity
 * decays (a realistic revaluation sweep), and the call/put price
 * arrays are the checkpointed state.
 */
#pragma once

#include "workloads/iterative.hpp"

namespace gpm {

/** Option book size. */
struct BlkParams {
    std::uint32_t options = 3u << 16;  ///< 196608 options, 1.5 MiB state
    std::uint64_t seed = 13;
};

/** The Black-Scholes app. */
class BlackScholesApp final : public IterativeApp
{
  public:
    explicit BlackScholesApp(const BlkParams &p) : p_(p) {}

    std::string name() const override { return "blk"; }
    void init() override;
    void computeIteration(Machine &m, std::uint32_t iter) override;
    void registerState(GpmCheckpoint &cp) override;
    std::uint64_t
    stateBytes() const override
    {
        return std::uint64_t(2) * p_.options * sizeof(float);
    }
    std::uint64_t
    paperStateBytes() const override
    {
        return std::uint64_t(4) << 30;  // Table 1: 4 GB (fails GPUfs)
    }
    std::vector<std::uint8_t> snapshot() const override;

    /** Reference price of option @p i at iteration @p iter (tests). */
    float referenceCall(std::uint32_t i, std::uint32_t iter) const;

    float call(std::uint32_t i) const { return calls_[i]; }
    float put(std::uint32_t i) const { return puts_[i]; }

  private:
    static float normCdf(float x);
    void price(std::uint32_t i, float years, float &call,
               float &put) const;

    BlkParams p_;
    std::vector<float> spot_, strike_, vol_;  ///< inputs (HBM-resident)
    std::vector<float> calls_, puts_;         ///< checkpointed outputs
};

} // namespace gpm
