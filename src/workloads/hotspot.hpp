/**
 * @file
 * HS workload (Table 1: Rodinia Hotspot — chip thermal simulation
 * over 16K x 16K power/temperature matrices, checkpointing the
 * estimated temperatures).
 *
 * Scaled substitution: the same 5-point relaxation toward the local
 * power-injected steady state on a smaller grid; the temperature
 * matrix is the checkpointed state.
 */
#pragma once

#include "workloads/iterative.hpp"

namespace gpm {

/** Die grid geometry. */
struct HotspotParams {
    std::uint32_t n = 384;   ///< grid side; ~0.6 MiB temperature state
    std::uint64_t seed = 17;
};

/** The Hotspot app. */
class HotspotApp final : public IterativeApp
{
  public:
    explicit HotspotApp(const HotspotParams &p) : p_(p) {}

    std::string name() const override { return "hotspot"; }
    void init() override;
    void computeIteration(Machine &m, std::uint32_t iter) override;
    void registerState(GpmCheckpoint &cp) override;
    std::uint64_t
    stateBytes() const override
    {
        return std::uint64_t(p_.n) * p_.n * sizeof(float);
    }
    std::uint64_t
    paperStateBytes() const override
    {
        // Table 1: 2 GB of power+temperature state; with the
        // checkpoint file's double buffer and metadata it exceeds
        // GPUfs's 2 GB per-file limit (the "*" in Fig 9).
        return (std::uint64_t(2) << 30) + 64_MiB;
    }
    std::vector<std::uint8_t> snapshot() const override;

    float maxTemp() const;
    float
    tempAt(std::uint32_t x, std::uint32_t y) const
    {
        return temp_[std::size_t(y) * p_.n + x];
    }

  private:
    HotspotParams p_;
    std::vector<float> temp_, power_, scratch_;
};

} // namespace gpm
