#include "workloads/db.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

constexpr std::uint64_t kRowCountOff = 0;   ///< u64
constexpr std::uint64_t kTxnFlagOff = 8;    ///< u32
constexpr std::uint64_t kBatchIdOff = 12;   ///< u32

/** Undo record for one UPDATE: the whole old row + its index. */
struct RowLogEntry {
    std::uint64_t row_idx = 0;
    DbRow old_row;
    std::uint32_t batch = 0;
};

/** Row-content versions: initial load, INSERT batch b, UPDATE batch b. */
constexpr std::uint32_t kInitialVersion = 0;
constexpr std::uint32_t
insertVersion(std::uint32_t batch)
{
    return 1 + batch;
}
constexpr std::uint32_t
updateVersion(std::uint32_t batch)
{
    return 1000 + batch;
}

} // namespace

GpDb::GpDb(Machine &m, const GpDbParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(p_.initial_rows > 0, "gpDB needs initial rows");
    GPM_REQUIRE(p_.update_rows <= p_.initial_rows,
                "more updates than rows");
}

std::uint64_t
GpDb::rowAddr(std::uint64_t idx) const
{
    return table_.offset + idx * GpDbParams::kRowBytes;
}

DbRow
GpDb::makeRow(std::uint64_t idx, std::uint32_t version) const
{
    Rng rng = Rng(p_.seed).split(idx * 4099 + version);
    DbRow row;
    row.id = static_cast<std::uint32_t>(idx + 1);
    for (std::size_t i = 0; i < sizeof(row.payload); i += 8) {
        const std::uint64_t v = rng.next();
        std::memcpy(row.payload + i, &v,
                    std::min<std::size_t>(8, sizeof(row.payload) - i));
    }
    return row;
}

std::vector<std::uint64_t>
GpDb::makeUpdateTargets(std::uint32_t batch,
                        std::uint64_t row_count) const
{
    Rng rng = Rng(p_.seed ^ 0xdbdbdbdbull).split(batch);
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> targets;
    targets.reserve(p_.update_rows);
    while (targets.size() < p_.update_rows) {
        const std::uint64_t t = rng.below(row_count);
        if (seen.insert(t).second)
            targets.push_back(t);
    }
    return targets;
}

void
GpDb::setup()
{
    // Slack past the table end lets CAP's chunk-rounded transfers of
    // appended rows stay in bounds.
    table_ = gpmMap(*m_, "gpdb.table",
                    p_.tableBytes() + p_.cap_chunk_bytes, true);
    meta_ = gpmMap(*m_, "gpdb.meta", 256, true);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // A row is the atomic unit; the durable row count (and, for
        // UPDATE batches, the txn flag) is the commit record that must
        // trail the rows it covers.
        rec->declareRange("gpdb.table", table_.offset,
                          p_.tableBytes() + p_.cap_chunk_bytes,
                          GpDbParams::kRowBytes, PmRangeKind::Data);
        rec->declareRange("gpdb.meta", meta_.offset, 16, 0,
                          PmRangeKind::Commit);
        rec->declareOrder("gpdb.table", "gpdb.meta", /*strict=*/false);
    }

    // Bulk-load the initial rows (setup; persisted from the CPU).
    mirror_.assign(p_.maxRows(), DbRow{});
    for (std::uint64_t i = 0; i < p_.initial_rows; ++i)
        mirror_[i] = makeRow(i, kInitialVersion);
    m_->cpuWritePersist(table_.offset, mirror_.data(),
                        std::uint64_t(p_.initial_rows) *
                            GpDbParams::kRowBytes, p_.cap_threads);
    const std::uint64_t count = p_.initial_rows;
    m_->cpuWritePersist(meta_.offset + kRowCountOff, &count, 8, 1);

    if (inKernelPersistence(m_->kind()) ||
        m_->kind() == PlatformKind::GpmNdp) {
        const std::uint32_t tpb = 256;
        const std::uint32_t blocks = static_cast<std::uint32_t>(
            ceilDiv(std::max(p_.insert_rows, p_.update_rows), tpb));
        if (p_.use_hcl) {
            log_.push_back(GpmLog::createHcl(
                *m_, "gpdb.log", sizeof(RowLogEntry),
                p_.update_batches + 1, blocks, tpb));
        } else {
            const std::uint64_t part_bytes =
                ceilDiv(std::uint64_t(p_.update_rows) *
                            (p_.update_batches + 1) *
                            sizeof(RowLogEntry),
                        p_.conv_partitions) + 4096;
            log_.push_back(GpmLog::createConv(*m_, "gpdb.log",
                                              part_bytes,
                                              p_.conv_partitions));
        }
    }
}

std::uint64_t
GpDb::durableRowCount() const
{
    return m_->pool().loadDurable<std::uint64_t>(meta_.offset +
                                                 kRowCountOff);
}

void
GpDb::mirrorInsert(std::uint32_t batch)
{
    std::uint64_t count = 0;
    for (const DbRow &row : mirror_) {
        if (row.id == 0)
            break;
        ++count;
    }
    for (std::uint32_t i = 0; i < p_.insert_rows; ++i)
        mirror_[count + i] = makeRow(count + i, insertVersion(batch));
}

void
GpDb::mirrorUpdate(std::uint32_t batch)
{
    std::uint64_t count = 0;
    for (const DbRow &row : mirror_) {
        if (row.id == 0)
            break;
        ++count;
    }
    for (const std::uint64_t t : makeUpdateTargets(batch, count))
        mirror_[t] = makeRow(t, updateVersion(batch));
}

void
GpDb::runInsertGpm(std::uint32_t batch, bool ndp)
{
    const std::uint64_t old_count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);

    const std::uint32_t flag_and_batch[2] = {1u, batch};
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, flag_and_batch, 8,
                        1);

    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpdb_insert";
    // Each thread writes its own fresh row (makeRow is pure): blocks
    // never share PM or host state within the launch.
    k.block_independent = true;
    k.blocks = static_cast<std::uint32_t>(ceilDiv(p_.insert_rows, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, old_count, batch, ndp](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= p_.insert_rows)
            return;
        const DbRow row = makeRow(old_count + i, insertVersion(batch));
        ctx.work(30);
        ctx.pmWrite(rowAddr(old_count + i), &row, sizeof(row));
        if (!ndp)
            gpmPersist(ctx);
    });
    m_->runKernel(k);

    if (ndp) {
        m_->cpuPersistRange(rowAddr(old_count),
                            std::uint64_t(p_.insert_rows) *
                                GpDbParams::kRowBytes, p_.cap_threads);
    }

    // Commit: the durable row count advances only after the rows are.
    const std::uint64_t new_count = old_count + p_.insert_rows;
    if (!ndp) {
        const std::uint64_t count_addr = meta_.offset + kRowCountOff;
        KernelDesc commit;
        commit.name = "gpdb_insert_commit";
        commit.blocks = 1;
        commit.block_threads = 1;
        commit.phases.push_back([count_addr, new_count](ThreadCtx &ctx) {
            ctx.pmStore(count_addr, new_count);
            ctx.threadfenceSystem();
        });
        m_->runKernel(commit);
    } else {
        m_->cpuWritePersist(meta_.offset + kRowCountOff, &new_count, 8,
                            1);
    }

    const std::uint32_t zero = 0;
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, &zero, 4, 1);
}

void
GpDb::runUpdateGpm(std::uint32_t batch, bool ndp)
{
    const std::uint64_t count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);
    const std::vector<std::uint64_t> targets =
        makeUpdateTargets(batch, count);

    const std::uint32_t flag_and_batch[2] = {1u, batch};
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, flag_and_batch, 8,
                        1);

    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpdb_update";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(p_.update_rows, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &targets, batch](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= targets.size())
            return;
        const std::uint64_t row_idx = targets[i];
        ctx.work(40);
        // Same kernel under GPM and GPM-NDP (see kvs.cpp).
        RowLogEntry entry;
        entry.row_idx = row_idx;
        m_->pool().read(rowAddr(row_idx), &entry.old_row,
                        sizeof(DbRow));
        entry.batch = batch;
        log_.front().insert(ctx, &entry, sizeof(entry));
        const DbRow row = makeRow(row_idx, updateVersion(batch));
        ctx.pmWrite(rowAddr(row_idx), &row, sizeof(row));
        gpmPersist(ctx);
    });
    m_->runKernel(k);
    m_->advance(log_.front().consumeSerializationNs());
    if (ndp) {
        m_->cpuPersistScattered(std::uint64_t(p_.update_rows) * 4 *
                                    m_->config().cache_line,
                                p_.cap_threads);
    }

    const std::uint32_t zero = 0;
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, &zero, 4, 1);
}

void
GpDb::runInsertCap(std::uint32_t batch)
{
    const std::uint64_t old_count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);

    // The kernel generates the rows into device-volatile memory.
    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpdb_insert_volatile";
    k.block_independent = true;
    k.blocks = static_cast<std::uint32_t>(ceilDiv(p_.insert_rows, tpb));
    k.block_threads = tpb;
    std::vector<DbRow> rows(p_.insert_rows);
    k.phases.push_back([this, old_count, batch, &rows](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= p_.insert_rows)
            return;
        rows[i] = makeRow(old_count + i, insertVersion(batch));
        ctx.work(30);
        ctx.hbmTraffic(sizeof(DbRow));
    });
    m_->runKernel(k);

    // Transfer the appended region rounded to the DMA chunk — the
    // modest write amplification of Table 4's gpDB (I).
    const std::uint64_t bytes = std::uint64_t(p_.insert_rows) *
                                GpDbParams::kRowBytes;
    const std::uint64_t chunked = alignUp(bytes, p_.cap_chunk_bytes);
    std::vector<std::uint8_t> staged(chunked, 0);
    std::memcpy(staged.data(), rows.data(), bytes);
    if (m_->kind() == PlatformKind::CapFs) {
        m_->capFsPersist(rowAddr(old_count), staged.data(), chunked, 1);
    } else {
        m_->capMmPersist(rowAddr(old_count), staged.data(), chunked,
                         p_.cap_threads);
    }
    const std::uint64_t new_count = old_count + p_.insert_rows;
    m_->cpuWritePersist(meta_.offset + kRowCountOff, &new_count, 8, 1);
}

void
GpDb::runUpdateCap(std::uint32_t batch)
{
    const std::uint64_t count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);
    const std::vector<std::uint64_t> targets =
        makeUpdateTargets(batch, count);

    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpdb_update_volatile";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(p_.update_rows, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &targets, batch](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= targets.size())
            return;
        mirror_[targets[i]] = makeRow(targets[i], updateVersion(batch));
        ctx.work(40);
        ctx.hbmTraffic(2 * sizeof(DbRow));
    });
    m_->runKernel(k);

    // Updated rows are scattered and unknown to the host: the whole
    // live table is transferred and persisted (Table 4's ~20x).
    const std::uint64_t bytes = count * GpDbParams::kRowBytes;
    if (m_->kind() == PlatformKind::CapFs) {
        m_->capFsPersist(table_.offset, mirror_.data(), bytes, 1);
    } else {
        m_->capMmPersist(table_.offset, mirror_.data(), bytes,
                         p_.cap_threads);
    }
}

WorkloadResult
GpDb::run(TxnKind kind)
{
    WorkloadResult r;
    if (m_->kind() == PlatformKind::Gpufs) {
        r.supported = false;
        return r;
    }
    setup();

    const SimNs t0 = m_->now();
    const std::uint64_t pcie0 = m_->pcieWriteBytes();
    const std::uint64_t pay0 = m_->persistPayloadBytes();

    const std::uint32_t batches = kind == TxnKind::Insert
        ? p_.insert_batches : p_.update_batches;
    for (std::uint32_t b = 0; b < batches; ++b) {
        const bool gpu_direct = inKernelPersistence(m_->kind()) ||
                                m_->kind() == PlatformKind::GpmNdp;
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistBegin(*m_);
        if (kind == TxnKind::Insert) {
            mirrorInsert(b);
            if (gpu_direct)
                runInsertGpm(b, m_->kind() == PlatformKind::GpmNdp);
            else
                runInsertCap(b);
            r.ops_done += p_.insert_rows;
        } else {
            mirrorUpdate(b);
            if (gpu_direct)
                runUpdateGpm(b, m_->kind() == PlatformKind::GpmNdp);
            else
                runUpdateCap(b);
            r.ops_done += p_.update_rows;
        }
        if (m_->kind() == PlatformKind::Gpm)
            gpmPersistEnd(*m_);
    }

    r.op_ns = m_->now() - t0;
    r.pcie_write_bytes = m_->pcieWriteBytes() - pcie0;
    r.persisted_payload = m_->persistPayloadBytes() - pay0;

    // Functional check against the mirror.
    const std::uint64_t live =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);
    if (inKernelPersistence(m_->kind()) ||
        m_->kind() == PlatformKind::GpmNdp) {
        r.verified = std::memcmp(m_->pool().visible() + table_.offset,
                                 mirror_.data(),
                                 live * GpDbParams::kRowBytes) == 0;
    } else {
        r.verified = true;  // mirror *is* the volatile table under CAP
    }
    return r;
}

std::pair<std::uint64_t, std::uint64_t>
GpDb::runSelect(double selectivity)
{
    GPM_REQUIRE(selectivity >= 0.0 && selectivity <= 1.0,
                "selectivity out of [0,1]");
    GPM_REQUIRE(!mirror_.empty(), "runSelect before setup/run");
    const std::uint64_t count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);
    // 2^64 is not representable in uint64: clamp full selectivity.
    const std::uint64_t threshold = selectivity >= 1.0
        ? ~std::uint64_t(0)
        : static_cast<std::uint64_t>(selectivity * 0x1p64);

    std::uint64_t hits = 0, sum = 0;
    const std::uint32_t tpb = 256;
    KernelDesc k;
    k.name = "gpdb_select";
    k.blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, ceilDiv(count, tpb)));
    k.block_threads = tpb;
    k.phases.push_back([this, count, threshold, &hits,
                        &sum](ThreadCtx &ctx) {
        const std::uint64_t i = ctx.globalId();
        if (i >= count)
            return;
        ctx.work(12);
        ctx.hbmTraffic(sizeof(DbRow));
        const DbRow &row = mirror_[i];
        // splitmix-style predicate hash over the row id.
        std::uint64_t z = row.id + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        if (z <= threshold) {
            ++hits;
            std::uint64_t word = 0;
            std::memcpy(&word, row.payload, sizeof(word));
            sum += word;
        }
    });
    m_->runKernel(k);
    return {hits, sum};
}

WorkloadResult
GpDb::run()
{
    WorkloadResult insert = run(TxnKind::Insert);
    if (!insert.supported)
        return insert;
    WorkloadResult update = run(TxnKind::Update);
    insert.op_ns += update.op_ns;
    insert.ops_done += update.ops_done;
    insert.pcie_write_bytes += update.pcie_write_bytes;
    insert.persisted_payload += update.persisted_payload;
    insert.verified = insert.verified && update.verified;
    return insert;
}

void
GpDb::recoverUpdate()
{
    telemetry::Span span("recovery", "gpdb_recover");
    telemetry::count("recovery.invocations");
    PmRecoveryScope rscope(m_->pool().recorder());
    const std::uint32_t crashed_batch =
        m_->pool().load<std::uint32_t>(meta_.offset + kBatchIdOff);
    const std::uint32_t tpb = 256;

    GpmLog log = GpmLog::open(*m_, "gpdb.log");
    KernelDesc k;
    k.name = "gpdb_recover";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(p_.update_rows, tpb));
    k.block_threads = tpb;
    k.phases.push_back([this, &log, crashed_batch](ThreadCtx &ctx) {
        RowLogEntry entry;
        if (!log.read(ctx, &entry, sizeof(entry)))
            return;
        if (entry.batch != crashed_batch)
            return;
        ctx.pmWrite(rowAddr(entry.row_idx), &entry.old_row,
                    sizeof(DbRow));
        gpmPersist(ctx);
        log.remove(ctx, sizeof(entry));
    });
    m_->runKernel(k);

    const std::uint32_t zero = 0;
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, &zero, 4, 1);
}

WorkloadResult
GpDb::runWithCrash(TxnKind kind, std::uint32_t crash_batch, double frac,
                   double survive_prob)
{
    const std::uint32_t tpb = 256;
    const std::uint32_t n = kind == TxnKind::Insert ? p_.insert_rows
                                                    : p_.update_rows;
    const std::uint64_t threads = ceilDiv(n, tpb) * tpb;
    WorkloadResult r;
    const CrashOutcome o = runCrashPoint(
        kind, crash_batch,
        CrashPoint::afterThreadPhases(static_cast<std::uint64_t>(
            frac * static_cast<double>(threads))),
        survive_prob, /*open_persist_window=*/true, &r);
    GPM_ASSERT(o.fired || frac >= 1.0, "crash point did not fire");
    return r;
}

CrashOutcome
GpDb::runCrashPoint(TxnKind kind, std::uint32_t crash_batch,
                    const CrashPoint &point, double survive_prob,
                    bool open_persist_window, WorkloadResult *result_out)
{
    GPM_REQUIRE(inKernelPersistence(m_->kind()),
                "crash recovery needs in-kernel persistence");
    GPM_REQUIRE(p_.use_hcl || kind == TxnKind::Insert,
                "per-thread undo recovery requires the HCL log");

    setup();
    WorkloadResult r;
    CrashOutcome o;
    const bool window =
        open_persist_window && m_->kind() == PlatformKind::Gpm;

    // Persistence window stays open through crash and recovery.
    if (window)
        gpmPersistBegin(*m_);

    const SimNs t0 = m_->now();
    for (std::uint32_t b = 0; b < crash_batch; ++b) {
        if (kind == TxnKind::Insert) {
            mirrorInsert(b);
            runInsertGpm(b, false);
        } else {
            mirrorUpdate(b);
            runUpdateGpm(b, false);
        }
    }
    const SimNs clean_ns = m_->now() - t0;

    // Reference durable state: everything before the crashed batch —
    // and the batch applied on top, the other legal atomic outcome
    // when the armed point never fires.
    std::vector<DbRow> reference = mirror_;
    const std::uint64_t ref_count =
        m_->pool().load<std::uint64_t>(meta_.offset + kRowCountOff);
    std::vector<DbRow> committed = mirror_;
    {
        std::vector<DbRow> saved = std::move(mirror_);
        mirror_ = committed;
        if (kind == TxnKind::Insert)
            mirrorInsert(crash_batch);
        else
            mirrorUpdate(crash_batch);
        committed = std::move(mirror_);
        mirror_ = std::move(saved);
    }

    // Arm and run the doomed batch.
    const std::uint32_t batch = crash_batch;
    const std::uint32_t flag_and_batch[2] = {1u, batch};
    m_->cpuWritePersist(meta_.offset + kTxnFlagOff, flag_and_batch, 8,
                        1);

    const std::uint32_t tpb = 256;
    const std::uint32_t n = kind == TxnKind::Insert ? p_.insert_rows
                                                    : p_.update_rows;
    const std::vector<std::uint64_t> targets =
        kind == TxnKind::Update ? makeUpdateTargets(batch, ref_count)
                                : std::vector<std::uint64_t>{};
    KernelDesc k;
    k.name = "gpdb_crashing";
    k.blocks = static_cast<std::uint32_t>(ceilDiv(n, tpb));
    k.block_threads = tpb;
    k.crash = point;
    // Block-independent in both variants: inserts write disjoint
    // per-thread rows; updates hit unique targets (makeUpdateTargets)
    // and read only pre-launch row values, and the HCL log insert is
    // ctx-mediated per thread. Crash-armed launches may therefore fan
    // out (DESIGN.md decision #8).
    k.block_independent = true;
    if (kind == TxnKind::Insert) {
        k.phases.push_back([this, ref_count, batch](ThreadCtx &ctx) {
            const std::uint64_t i = ctx.globalId();
            if (i >= p_.insert_rows)
                return;
            const DbRow row =
                makeRow(ref_count + i, insertVersion(batch));
            ctx.pmWrite(rowAddr(ref_count + i), &row, sizeof(row));
            gpmPersist(ctx);
        });
    } else {
        k.phases.push_back([this, &targets, batch](ThreadCtx &ctx) {
            const std::uint64_t i = ctx.globalId();
            if (i >= targets.size())
                return;
            RowLogEntry entry;
            entry.row_idx = targets[i];
            m_->pool().read(rowAddr(targets[i]), &entry.old_row,
                            sizeof(DbRow));
            entry.batch = batch;
            log_.front().insert(ctx, &entry, sizeof(entry));
            const DbRow row = makeRow(targets[i], updateVersion(batch));
            ctx.pmWrite(rowAddr(targets[i]), &row, sizeof(row));
            gpmPersist(ctx);
        });
    }
    try {
        m_->runKernel(k);
    } catch (const KernelCrashed &) {
        o.fired = true;
    }
    m_->pool().crash(survive_prob);

    const SimNs r0 = m_->now();
    if (m_->pool().load<std::uint32_t>(meta_.offset + kTxnFlagOff) ==
        1) {
        if (!window && m_->kind() == PlatformKind::Gpm)
            gpmPersistBegin(*m_);  // reboot-time recovery persists
        if (kind == TxnKind::Update) {
            recoverUpdate();
        } else {
            // The durable row count never advanced: partial rows are
            // invisible; just clear the flag (Table 5's gpDB (I)).
            const std::uint32_t zero = 0;
            m_->cpuWritePersist(meta_.offset + kTxnFlagOff, &zero, 4,
                                1);
        }
        if (!window && m_->kind() == PlatformKind::Gpm)
            gpmPersistEnd(*m_);
        o.recovery_ran = true;
    }
    r.recovery_ns = m_->now() - r0;
    r.op_ns = clean_ns;
    r.ops_done = static_cast<double>(crash_batch) * n;

    const std::uint64_t count = durableRowCount();
    o.strict_ok =
        (count == ref_count && durableEquals(reference)) ||
        (!o.fired && count == ref_count + (kind == TxnKind::Insert
                                               ? p_.insert_rows
                                               : 0) &&
         durableEquals(committed));
    o.state_hash = fnv1aU64(
        count, fnv1a(m_->pool().durable() + table_.offset,
                     count * GpDbParams::kRowBytes));
    r.verified = o.strict_ok;
    if (result_out)
        *result_out = r;
    return o;
}

bool
GpDb::durableEquals(const std::vector<DbRow> &mirror) const
{
    const std::uint64_t count = durableRowCount();
    return std::memcmp(m_->pool().durable() + table_.offset,
                       mirror.data(),
                       count * GpDbParams::kRowBytes) == 0;
}

} // namespace gpm
