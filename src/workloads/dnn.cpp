#include "workloads/dnn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.hpp"

namespace gpm {

DnnApp::DnnApp(const DnnParams &p) : p_(p)
{
    GPM_REQUIRE(p_.minibatch > 0 && p_.minibatch <= p_.train_samples,
                "bad minibatch size");
}

void
DnnApp::init()
{
    Rng rng(p_.seed);
    auto xavier = [&](std::vector<float> &w, std::uint32_t fan_in,
                      std::size_t n) {
        w.resize(n);
        const float scale =
            std::sqrt(2.0f / static_cast<float>(fan_in));
        for (float &v : w) {
            v = (static_cast<float>(rng.uniform()) - 0.5f) * 2.0f *
                scale;
        }
    };
    xavier(w1_, p_.input, std::size_t(p_.hidden) * p_.input);
    b1_.assign(p_.hidden, 0.0f);
    xavier(w2_, p_.hidden, std::size_t(p_.classes) * p_.hidden);
    b2_.assign(p_.classes, 0.0f);

    // Synthetic digits: a Gaussian blob whose center encodes the
    // class, plus deterministic noise — linearly separable enough for
    // the loss to fall, which the tests assert.
    const std::uint32_t side = static_cast<std::uint32_t>(
        std::lround(std::sqrt(static_cast<double>(p_.input))));
    data_.resize(std::size_t(p_.train_samples) * p_.input);
    labels_.resize(p_.train_samples);
    Rng noise(p_.seed ^ 0xdadaull);
    for (std::uint32_t s = 0; s < p_.train_samples; ++s) {
        const std::uint8_t k =
            static_cast<std::uint8_t>(s % p_.classes);
        labels_[s] = k;
        const float cx = 2.0f + (k % 5) * (side - 4.0f) / 4.0f;
        const float cy = 2.0f + (k / 5) * (side - 4.0f) / 1.0f /
                                    ((p_.classes + 4) / 5);
        for (std::uint32_t p = 0; p < p_.input; ++p) {
            const float x = static_cast<float>(p % side);
            const float y = static_cast<float>(p / side);
            const float d2 =
                (x - cx) * (x - cx) + (y - cy) * (y - cy);
            data_[std::size_t(s) * p_.input + p] =
                std::exp(-d2 / 6.0f) +
                0.05f * static_cast<float>(noise.uniform());
        }
    }
    last_loss_ = 0.0;
}

void
DnnApp::forward(const float *x, std::vector<float> &h,
                std::vector<float> &probs) const
{
    h.assign(p_.hidden, 0.0f);
    for (std::uint32_t j = 0; j < p_.hidden; ++j) {
        float acc = b1_[j];
        const float *row = &w1_[std::size_t(j) * p_.input];
        for (std::uint32_t i = 0; i < p_.input; ++i)
            acc += row[i] * x[i];
        h[j] = acc > 0.0f ? acc : 0.0f;  // ReLU
    }
    probs.assign(p_.classes, 0.0f);
    float maxlogit = -1e30f;
    for (std::uint32_t c = 0; c < p_.classes; ++c) {
        float acc = b2_[c];
        const float *row = &w2_[std::size_t(c) * p_.hidden];
        for (std::uint32_t j = 0; j < p_.hidden; ++j)
            acc += row[j] * h[j];
        probs[c] = acc;
        maxlogit = std::max(maxlogit, acc);
    }
    float denom = 0.0f;
    for (float &v : probs) {
        v = std::exp(v - maxlogit);
        denom += v;
    }
    for (float &v : probs)
        v /= denom;
}

void
DnnApp::computeIteration(Machine &m, std::uint32_t iter)
{
    std::vector<float> h, probs;
    std::vector<float> dh(p_.hidden);
    double loss = 0.0;

    for (std::uint32_t b = 0; b < p_.minibatch; ++b) {
        const std::uint32_t s =
            (iter * p_.minibatch + b) % p_.train_samples;
        const float *x = &data_[std::size_t(s) * p_.input];
        forward(x, h, probs);
        const std::uint8_t label = labels_[s];
        loss -= std::log(std::max(probs[label], 1e-12f));

        // Backward: softmax cross-entropy then ReLU.
        std::fill(dh.begin(), dh.end(), 0.0f);
        for (std::uint32_t c = 0; c < p_.classes; ++c) {
            const float dlogit =
                (probs[c] - (c == label ? 1.0f : 0.0f)) /
                static_cast<float>(p_.minibatch);
            float *row = &w2_[std::size_t(c) * p_.hidden];
            for (std::uint32_t j = 0; j < p_.hidden; ++j) {
                dh[j] += dlogit * row[j];
                row[j] -= p_.lr * dlogit * h[j];
            }
            b2_[c] -= p_.lr * dlogit;
        }
        for (std::uint32_t j = 0; j < p_.hidden; ++j) {
            if (h[j] <= 0.0f)
                continue;
            float *row = &w1_[std::size_t(j) * p_.input];
            for (std::uint32_t i = 0; i < p_.input; ++i)
                row[i] -= p_.lr * dh[j] * x[i];
            b1_[j] -= p_.lr * dh[j];
        }
    }
    last_loss_ = loss / p_.minibatch;

    // Timing: forward + backward is ~6 flops per weight per sample.
    const double weights = static_cast<double>(w1_.size() + w2_.size());
    chargeGpuCompute(m, 6.0 * weights * p_.minibatch,
                     static_cast<std::uint64_t>(weights) * 4 * 3);
}

double
DnnApp::accuracy() const
{
    std::vector<float> h, probs;
    std::uint32_t hits = 0;
    for (std::uint32_t s = 0; s < p_.train_samples; ++s) {
        forward(&data_[std::size_t(s) * p_.input], h, probs);
        const auto best = static_cast<std::uint8_t>(
            std::max_element(probs.begin(), probs.end()) -
            probs.begin());
        hits += best == labels_[s];
    }
    return static_cast<double>(hits) / p_.train_samples;
}

void
DnnApp::registerState(GpmCheckpoint &cp)
{
    cp.registerData(0, w1_.data(), w1_.size() * sizeof(float));
    cp.registerData(0, b1_.data(), b1_.size() * sizeof(float));
    cp.registerData(0, w2_.data(), w2_.size() * sizeof(float));
    cp.registerData(0, b2_.data(), b2_.size() * sizeof(float));
}

std::uint64_t
DnnApp::stateBytes() const
{
    return (std::uint64_t(p_.hidden) * p_.input + p_.hidden +
            std::uint64_t(p_.classes) * p_.hidden + p_.classes) *
           sizeof(float);
}

std::vector<std::uint8_t>
DnnApp::snapshot() const
{
    std::vector<std::uint8_t> out(stateBytes());
    std::uint8_t *dst = out.data();
    for (const std::vector<float> *v : {&w1_, &b1_, &w2_, &b2_}) {
        std::memcpy(dst, v->data(), v->size() * sizeof(float));
        dst += v->size() * sizeof(float);
    }
    return out;
}

} // namespace gpm
