/**
 * @file
 * Binomial options pricing — the paper's *counter-example* (§4.3).
 *
 * "Threads in a threadblock coordinate to compute a single value which
 * is written by a single thread of a threadblock. That leaves little
 * parallelism to exploit in writing and persisting data to PM. GPM's
 * fine-grained persistence brings fine-grained recoverability.
 * However, GPM needs parallelism for good performance."
 *
 * One threadblock prices one option by backward induction over a
 * CRR binomial tree; the block's threads share the per-level work,
 * and only thread 0 stores + persists the final price: a single 4 B
 * PM write per block. The ablation bench shows GPM's advantage over
 * CAP nearly vanishing here, in contrast to every GPMbench workload.
 *
 * The tree price converges to the Black–Scholes closed form for
 * European calls, which the tests exploit as a cross-check against
 * the BLK workload.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace gpm {

/** Option book and tree depth. */
struct BinomialParams {
    std::uint32_t options = 512;   ///< one threadblock each
    std::uint32_t steps = 128;     ///< tree depth
    std::uint64_t seed = 37;
    int cap_threads = 16;
};

/** The binomial-options app. */
class GpBinomial
{
  public:
    explicit GpBinomial(Machine &m, const BinomialParams &p);

    /** Map the PM result region and generate the book. */
    void setup();

    /** Price the whole book, persisting each result. */
    WorkloadResult run();

    /** CRR tree price of option @p i (host reference). */
    float referencePrice(std::uint32_t i) const;

    /** Inputs of option @p i (for the Black–Scholes cross-check). */
    void option(std::uint32_t i, float &spot, float &strike,
                float &vol, float &years) const;

    /** Priced result of option @p i as persisted on PM. */
    float durablePrice(std::uint32_t i) const;

  private:
    Machine *m_;
    BinomialParams p_;
    PmRegion out_;
    std::vector<float> spot_, strike_, vol_, years_;
};

} // namespace gpm
