/**
 * @file
 * GpmHeap: a persistent size-class allocator over PmPool.
 *
 * Every workload used to hand-roll its persistence layout; GpmHeap is
 * the reusable bottom half of the transactional layer (docs/pmheap.md,
 * DESIGN.md decision #10). It carves three PM regions out of the pool:
 *
 *   <name>.slabs    fixed-size object slots, segregated by size class
 *   <name>.bitmap   one bit per slot: durably allocated or free
 *   <name>.redo     a single small redo/intent record (the tx area)
 *
 * Allocation is a two-phase protocol designed around the commit-
 * before-publication rule gpmcheck enforces:
 *
 *   1. alloc() hands out a slot from a volatile free list. Nothing
 *      durable changes: the slot is unreachable garbage until its
 *      owner publishes a reference, so a crash leaks nothing.
 *   2. The client stages payload bytes into the slot (device writes,
 *      fenced) while the slot is still unreferenced.
 *   3. txBegin() writes the record body — the batch's alloc and free
 *      handles plus an opaque client blob — persists it, and only
 *      then persists the record flag. The flag is the commit point.
 *   4. The client publishes references (its own data structure).
 *   5. txCommit() applies the bitmap deltas (set alloc bits, clear
 *      free bits), recycles freed slots, and clears the flag.
 *
 * Crash anywhere in between and recover() reconciles deterministically
 * from the redo area: a Commit-mode record rolls the bitmap forward
 * (the client re-publishes from the blob first); an Intent-mode record
 * — used by undo-logging clients such as the GpKvs serving path, whose
 * own log rolls the references back — is simply discarded, because the
 * bitmap was never touched. Either way the volatile free lists are
 * rebuilt by a full bitmap scan, so allocation order after recovery is
 * a deterministic function of durable state alone.
 *
 * Handles encode (length << 40) | slab byte offset, so a reference is
 * one 64-bit word that names the object and its size — small enough to
 * live in a fixed-size directory entry or KVS value slot.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/machine.hpp"

namespace gpm {

class ThreadCtx;

/** Heap geometry. Classes must be ascending, multiples of 8. */
struct GpmHeapParams {
    std::string name = "gpmheap";
    std::vector<std::uint32_t> class_sizes = {16,  32,   64,   128, 256,
                                              512, 1024, 2048, 4096};
    std::uint32_t slots_per_class = 256;
    std::uint32_t max_tx_ops = 512;   ///< alloc + free handles per record
    std::uint32_t max_tx_blob = 0;    ///< client payload bytes per record

    std::uint64_t slabBytes() const;
    std::uint64_t bitmapBytes() const;
    std::uint64_t redoBytes() const;
    /** Pool bytes the three regions need (256 B alignment slack incl). */
    std::uint64_t poolBytes() const;
};

/** GpmHeap instance bound to one Machine+PmPool. */
class GpmHeap
{
  public:
    /** Redo-record mode: which way recovery reconciles. */
    enum class TxMode : std::uint32_t {
        None = 0,
        Intent = 1,  ///< undo client: crash discards the record
        Commit = 2,  ///< redo client: crash rolls the record forward
    };

    /** Durable in-flight record, decoded (see inFlight()). */
    struct InFlight {
        TxMode mode = TxMode::None;
        std::uint32_t batch_id = 0;
        std::vector<std::uint64_t> allocs;
        std::vector<std::uint64_t> frees;
        std::vector<std::uint8_t> blob;
    };

    GpmHeap(Machine &m, const GpmHeapParams &p);

    /** Map the three regions, declare analyzer ranges/orders, and
     *  build the free lists with a recovery-grade bitmap scan. */
    void setup(bool create);

    // ---- volatile allocation ------------------------------------------

    /** Take a free slot of the smallest class holding @p len bytes.
     *  Purely volatile until the surrounding tx commits. */
    std::uint64_t alloc(std::uint32_t len);

    /** Return an uncommitted alloc() to its free list. */
    void cancel(std::uint64_t handle);

    /** Free slots remaining in the class serving @p len. */
    std::uint64_t freeSlotsFor(std::uint32_t len) const;

    // ---- transaction protocol -----------------------------------------

    /** Write + persist the record body, then the mode flag (the commit
     *  point). At most one record may be in flight. */
    void txBegin(TxMode mode, std::uint32_t batch_id,
                 const std::vector<std::uint64_t> &allocs,
                 const std::vector<std::uint64_t> &frees,
                 const void *blob = nullptr, std::uint32_t blob_bytes = 0);

    /** Apply the bitmap deltas durably, recycle the freed slots, and
     *  clear the record flag. */
    void txCommit();

    /** Decode the durable redo record; false when none is in flight. */
    bool inFlight(InFlight &out) const;

    /**
     * Reboot-time reconciliation: roll a Commit record's bitmap deltas
     * forward (idempotent), discard an Intent record, rebuild the free
     * lists from the bitmap. The caller re-publishes references from
     * the blob *before* calling this (and wraps the whole sequence in
     * a PmRecoveryScope). @return true when a record was reconciled.
     *
     * @p apply_intent lets an undo-logging client whose *own* commit
     * point says the batch went through (GpKvs: the txn flag cleared
     * before the crash) force its Intent record forward instead of
     * discarding it — the composite commit decision lives with the
     * client, not the heap.
     */
    bool recover(bool apply_intent = false);

    // ---- handles + payloads -------------------------------------------

    static std::uint32_t
    lenOf(std::uint64_t handle)
    {
        return static_cast<std::uint32_t>(handle >> 40);
    }

    static std::uint64_t
    offOf(std::uint64_t handle)
    {
        return handle & ((1ull << 40) - 1);
    }

    /** Absolute PM address of @p handle's slot. */
    std::uint64_t slotAddr(std::uint64_t handle) const;

    /** Deterministic payload stream: word @p w of an object seeded
     *  with @p seed. Clients and host oracles share it. */
    static std::uint64_t payloadWord(std::uint64_t seed, std::uint64_t w);

    /** FNV-1a over the first @p len bytes of the @p seed stream — the
     *  expected readPayloadHash() of a correctly stored object. */
    static std::uint64_t payloadHash(std::uint64_t seed,
                                     std::uint32_t len);

    /** Device write of the seeded payload into the slot (one store;
     *  the caller fences). */
    void stagePayload(ThreadCtx &ctx, std::uint64_t handle,
                      std::uint64_t seed);

    /** Device read of the slot, hashed (GET-style verification). */
    std::uint64_t readPayloadHash(ThreadCtx &ctx,
                                  std::uint64_t handle) const;

    /** Host-side hash of the slot's durable bytes (crash oracles). */
    std::uint64_t durablePayloadHash(std::uint64_t handle) const;

    // ---- oracle / introspection ---------------------------------------

    /** Slab offsets of every durably allocated slot, ascending. */
    std::vector<std::uint64_t> durableAllocatedOffsets() const;

    /** FNV over the durable bitmap region. */
    std::uint64_t durableBitmapHash() const;

    const GpmHeapParams &params() const { return p_; }

    /** Analyzer label of the redo region ("<name>.redo"), so clients
     *  can declare their publication order against it. */
    std::string redoLabel() const { return p_.name + ".redo"; }

  private:
    std::uint32_t classOf(std::uint32_t len) const;
    std::uint32_t classOfOffset(std::uint64_t off) const;
    void rebuildFreeLists();
    void writeBitDurable(std::uint64_t handle, bool set);
    bool bitOf(const std::uint8_t *image, std::uint64_t off) const;

    Machine *m_;
    GpmHeapParams p_;
    PmRegion slabs_, bitmap_, redo_;
    std::vector<std::uint64_t> class_off_;     ///< slab base per class
    std::vector<std::uint64_t> class_bm_off_;  ///< bitmap byte base
    std::vector<std::vector<std::uint32_t>> free_;  ///< slot idx, desc
    bool tx_open_ = false;
};

} // namespace gpm
