#include "pmheap/gpm_heap.hpp"

#include <algorithm>
#include <cstring>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/thread_ctx.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

/** Redo-record header: flag first (the commit point), body after. */
constexpr std::uint64_t kFlagOff = 0;
constexpr std::uint64_t kBatchOff = 4;
constexpr std::uint64_t kNAllocsOff = 8;
constexpr std::uint64_t kNFreesOff = 12;
constexpr std::uint64_t kBlobBytesOff = 16;
constexpr std::uint64_t kBodyOff = 24; ///< handles then blob, 8-aligned

constexpr std::uint64_t
align256(std::uint64_t v)
{
    return (v + 255) & ~std::uint64_t(255);
}

} // namespace

std::uint64_t
GpmHeapParams::slabBytes() const
{
    std::uint64_t total = 0;
    for (std::uint32_t cs : class_sizes)
        total += std::uint64_t(cs) * slots_per_class;
    return total;
}

std::uint64_t
GpmHeapParams::bitmapBytes() const
{
    // One byte-aligned, 8-byte-padded bit run per class.
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < class_sizes.size(); ++c)
        total += (slots_per_class + 63) / 64 * 8;
    return total;
}

std::uint64_t
GpmHeapParams::redoBytes() const
{
    return kBodyOff + 8ull * max_tx_ops + max_tx_blob;
}

std::uint64_t
GpmHeapParams::poolBytes() const
{
    return align256(slabBytes()) + align256(bitmapBytes()) +
           align256(redoBytes()) + 3 * 256;
}

GpmHeap::GpmHeap(Machine &m, const GpmHeapParams &p) : m_(&m), p_(p)
{
    GPM_REQUIRE(!p_.class_sizes.empty(), "GpmHeap needs size classes");
    for (std::size_t c = 0; c < p_.class_sizes.size(); ++c) {
        GPM_REQUIRE(p_.class_sizes[c] % 8 == 0 && p_.class_sizes[c] > 0,
                    "size class ", p_.class_sizes[c],
                    " is not a positive multiple of 8");
        GPM_REQUIRE(c == 0 || p_.class_sizes[c] > p_.class_sizes[c - 1],
                    "size classes must be strictly ascending");
    }
    GPM_REQUIRE(p_.slots_per_class > 0, "GpmHeap needs slots");

    std::uint64_t off = 0, bm = 0;
    for (std::uint32_t cs : p_.class_sizes) {
        class_off_.push_back(off);
        class_bm_off_.push_back(bm);
        off += std::uint64_t(cs) * p_.slots_per_class;
        bm += (p_.slots_per_class + 63) / 64 * 8;
    }
    free_.resize(p_.class_sizes.size());
}

void
GpmHeap::setup(bool create)
{
    slabs_ = gpmMap(*m_, p_.name + ".slabs", p_.slabBytes(), create);
    bitmap_ = gpmMap(*m_, p_.name + ".bitmap", p_.bitmapBytes(), create);
    redo_ = gpmMap(*m_, p_.name + ".redo", p_.redoBytes(), create);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // Slab payloads are staged while unreachable, so no atomic
        // granule; the redo record's commit point is the ordering of
        // its flag store, not a granule, so none there either.
        rec->declareRange(p_.name + ".slabs", slabs_.offset, slabs_.size,
                          0, PmRangeKind::Data);
        rec->declareRange(p_.name + ".bitmap", bitmap_.offset,
                          bitmap_.size, 0, PmRangeKind::Data);
        rec->declareRange(redoLabel(), redo_.offset, redo_.size, 0,
                          PmRangeKind::Commit);
        // Protocol: payload durable before the record commits, record
        // durable before the bitmap deltas apply.
        rec->declareOrder(p_.name + ".slabs", redoLabel(), false);
        rec->declareOrder(redoLabel(), p_.name + ".bitmap", false);
    }

    rebuildFreeLists();
    tx_open_ = false;
}

std::uint32_t
GpmHeap::classOf(std::uint32_t len) const
{
    for (std::size_t c = 0; c < p_.class_sizes.size(); ++c)
        if (len <= p_.class_sizes[c])
            return static_cast<std::uint32_t>(c);
    fatal("GpmHeap '", p_.name, "': no size class holds ", len, " bytes");
}

std::uint32_t
GpmHeap::classOfOffset(std::uint64_t off) const
{
    for (std::size_t c = 0; c < p_.class_sizes.size(); ++c) {
        std::uint64_t span =
            std::uint64_t(p_.class_sizes[c]) * p_.slots_per_class;
        if (off >= class_off_[c] && off < class_off_[c] + span)
            return static_cast<std::uint32_t>(c);
    }
    fatal("GpmHeap '", p_.name, "': offset ", off, " is not a slot");
}

std::uint64_t
GpmHeap::alloc(std::uint32_t len)
{
    GPM_REQUIRE(len > 0, "GpmHeap::alloc of zero bytes");
    std::uint32_t c = classOf(len);
    GPM_REQUIRE(!free_[c].empty(), "GpmHeap '", p_.name,
                "': size class ", p_.class_sizes[c], " exhausted");
    std::uint32_t idx = free_[c].back();
    free_[c].pop_back();
    telemetry::count("pmheap.alloc");
    std::uint64_t off =
        class_off_[c] + std::uint64_t(idx) * p_.class_sizes[c];
    return (std::uint64_t(len) << 40) | off;
}

void
GpmHeap::cancel(std::uint64_t handle)
{
    std::uint64_t off = offOf(handle);
    std::uint32_t c = classOfOffset(off);
    free_[c].push_back(static_cast<std::uint32_t>(
        (off - class_off_[c]) / p_.class_sizes[c]));
    telemetry::count("pmheap.cancel");
}

std::uint64_t
GpmHeap::freeSlotsFor(std::uint32_t len) const
{
    return free_[classOf(len)].size();
}

void
GpmHeap::txBegin(TxMode mode, std::uint32_t batch_id,
                 const std::vector<std::uint64_t> &allocs,
                 const std::vector<std::uint64_t> &frees,
                 const void *blob, std::uint32_t blob_bytes)
{
    GPM_REQUIRE(!tx_open_, "GpmHeap '", p_.name,
                "': txBegin with a record already in flight");
    GPM_REQUIRE(mode != TxMode::None, "txBegin needs Intent or Commit");
    GPM_REQUIRE(allocs.size() + frees.size() <= p_.max_tx_ops,
                "GpmHeap '", p_.name, "': record overflow (",
                allocs.size() + frees.size(), " handles > ",
                p_.max_tx_ops, ")");
    GPM_REQUIRE(blob_bytes <= p_.max_tx_blob, "GpmHeap '", p_.name,
                "': blob overflow (", blob_bytes, " > ", p_.max_tx_blob,
                ")");
    telemetry::Span span("pmheap", "tx_begin");

    // Body first: counts + handles + blob in one persisted store...
    std::vector<std::uint8_t> body(
        (kBodyOff - kBatchOff) + 8 * (allocs.size() + frees.size()) +
        blob_bytes);
    const std::uint32_t n_allocs = static_cast<std::uint32_t>(
        allocs.size());
    const std::uint32_t n_frees = static_cast<std::uint32_t>(
        frees.size());
    std::memcpy(body.data() + (kBatchOff - kBatchOff), &batch_id, 4);
    std::memcpy(body.data() + (kNAllocsOff - kBatchOff), &n_allocs, 4);
    std::memcpy(body.data() + (kNFreesOff - kBatchOff), &n_frees, 4);
    std::memcpy(body.data() + (kBlobBytesOff - kBatchOff), &blob_bytes,
                4);
    std::uint8_t *w = body.data() + (kBodyOff - kBatchOff);
    if (n_allocs) {
        std::memcpy(w, allocs.data(), 8ull * n_allocs);
        w += 8ull * n_allocs;
    }
    if (n_frees) {
        std::memcpy(w, frees.data(), 8ull * n_frees);
        w += 8ull * n_frees;
    }
    if (blob_bytes)
        std::memcpy(w, blob, blob_bytes);
    m_->cpuWritePersist(redo_.offset + kBatchOff, body.data(),
                        body.size(), 1);

    // ...then the mode flag. This store is the commit point: until it
    // is durable the record decodes as TxMode::None and recovery
    // ignores everything staged so far.
    const std::uint32_t flag = static_cast<std::uint32_t>(mode);
    m_->cpuWritePersist(redo_.offset + kFlagOff, &flag, 4, 1);

    telemetry::count("pmheap.tx_begin");
    tx_open_ = true;
}

void
GpmHeap::writeBitDurable(std::uint64_t handle, bool set)
{
    std::uint64_t off = offOf(handle);
    std::uint32_t c = classOfOffset(off);
    std::uint64_t idx = (off - class_off_[c]) / p_.class_sizes[c];
    std::uint64_t addr = bitmap_.offset + class_bm_off_[c] + idx / 8;
    std::uint8_t byte = m_->pool().load<std::uint8_t>(addr);
    const std::uint8_t mask = std::uint8_t(1u << (idx % 8));
    byte = set ? std::uint8_t(byte | mask) : std::uint8_t(byte & ~mask);
    m_->cpuWritePersist(addr, &byte, 1, 1);
}

void
GpmHeap::txCommit()
{
    GPM_REQUIRE(tx_open_, "GpmHeap '", p_.name,
                "': txCommit without txBegin");
    telemetry::Span span("pmheap", "tx_commit");

    InFlight rec;
    GPM_REQUIRE(inFlight(rec), "GpmHeap '", p_.name,
                "': in-flight record vanished before txCommit");
    for (std::uint64_t h : rec.allocs)
        writeBitDurable(h, true);
    for (std::uint64_t h : rec.frees) {
        writeBitDurable(h, false);
        // The slot only becomes reusable here, after the record that
        // frees it is durable — a same-batch alloc can never land on
        // a slot whose old contents are still live.
        std::uint64_t off = offOf(h);
        std::uint32_t c = classOfOffset(off);
        free_[c].push_back(static_cast<std::uint32_t>(
            (off - class_off_[c]) / p_.class_sizes[c]));
        telemetry::count("pmheap.free");
    }

    const std::uint32_t none = 0;
    m_->cpuWritePersist(redo_.offset + kFlagOff, &none, 4, 1);
    telemetry::count("pmheap.tx_commit");
    tx_open_ = false;
}

bool
GpmHeap::inFlight(InFlight &out) const
{
    const PmPool &pool = m_->pool();
    auto mode = static_cast<TxMode>(
        pool.load<std::uint32_t>(redo_.offset + kFlagOff));
    if (mode != TxMode::Intent && mode != TxMode::Commit)
        return false;
    out.mode = mode;
    out.batch_id = pool.load<std::uint32_t>(redo_.offset + kBatchOff);
    auto n_allocs =
        pool.load<std::uint32_t>(redo_.offset + kNAllocsOff);
    auto n_frees = pool.load<std::uint32_t>(redo_.offset + kNFreesOff);
    auto blob_bytes =
        pool.load<std::uint32_t>(redo_.offset + kBlobBytesOff);
    GPM_REQUIRE(n_allocs + n_frees <= p_.max_tx_ops &&
                    blob_bytes <= p_.max_tx_blob,
                "GpmHeap '", p_.name, "': corrupt redo record");
    out.allocs.resize(n_allocs);
    out.frees.resize(n_frees);
    out.blob.resize(blob_bytes);
    std::uint64_t at = redo_.offset + kBodyOff;
    if (n_allocs) {
        pool.read(at, out.allocs.data(), 8ull * n_allocs);
        at += 8ull * n_allocs;
    }
    if (n_frees) {
        pool.read(at, out.frees.data(), 8ull * n_frees);
        at += 8ull * n_frees;
    }
    if (blob_bytes)
        pool.read(at, out.blob.data(), blob_bytes);
    return true;
}

bool
GpmHeap::recover(bool apply_intent)
{
    telemetry::Span span("recovery", "gpmheap_recover");
    telemetry::count("pmheap.recover");

    InFlight rec;
    const bool had = inFlight(rec);
    if (had) {
        if (rec.mode == TxMode::Commit ||
            (rec.mode == TxMode::Intent && apply_intent)) {
            // Roll the record forward; the bit writes are idempotent
            // so a crash inside an earlier recovery replays cleanly.
            for (std::uint64_t h : rec.allocs)
                writeBitDurable(h, true);
            for (std::uint64_t h : rec.frees)
                writeBitDurable(h, false);
            telemetry::count("pmheap.recover_rolled_forward");
        } else {
            // Intent: the bitmap was never touched and the client's
            // own log rolls its references back — just discard.
            telemetry::count("pmheap.recover_discarded");
        }
        const std::uint32_t none = 0;
        m_->cpuWritePersist(redo_.offset + kFlagOff, &none, 4, 1);
    }
    rebuildFreeLists();
    tx_open_ = false;
    return had;
}

bool
GpmHeap::bitOf(const std::uint8_t *image, std::uint64_t off) const
{
    std::uint32_t c = classOfOffset(off);
    std::uint64_t idx = (off - class_off_[c]) / p_.class_sizes[c];
    std::uint64_t addr = bitmap_.offset + class_bm_off_[c] + idx / 8;
    return (image[addr] >> (idx % 8)) & 1u;
}

void
GpmHeap::rebuildFreeLists()
{
    const std::uint8_t *img = m_->pool().visible();
    for (std::size_t c = 0; c < p_.class_sizes.size(); ++c) {
        free_[c].clear();
        // Descending, so pop_back() allocates ascending slot order —
        // a deterministic function of the bitmap alone.
        for (std::uint32_t i = p_.slots_per_class; i-- > 0;) {
            std::uint64_t addr =
                bitmap_.offset + class_bm_off_[c] + i / 8;
            if (!((img[addr] >> (i % 8)) & 1u))
                free_[c].push_back(i);
        }
    }
}

std::uint64_t
GpmHeap::slotAddr(std::uint64_t handle) const
{
    std::uint64_t off = offOf(handle);
    std::uint32_t c = classOfOffset(off);
    GPM_REQUIRE(lenOf(handle) <= p_.class_sizes[c],
                "handle length exceeds its slot class");
    return slabs_.offset + off;
}

std::uint64_t
GpmHeap::payloadWord(std::uint64_t seed, std::uint64_t w)
{
    return fnv1aU64(w, fnv1aU64(seed));
}

namespace {

std::vector<std::uint8_t>
payloadBytes(std::uint64_t seed, std::uint32_t len)
{
    std::vector<std::uint8_t> buf(len);
    for (std::uint32_t at = 0; at < len; at += 8) {
        std::uint64_t word = GpmHeap::payloadWord(seed, at / 8);
        std::memcpy(buf.data() + at,  &word,
                    std::min<std::uint32_t>(8, len - at));
    }
    return buf;
}

} // namespace

std::uint64_t
GpmHeap::payloadHash(std::uint64_t seed, std::uint32_t len)
{
    std::vector<std::uint8_t> buf = payloadBytes(seed, len);
    return fnv1a(buf.data(), buf.size());
}

void
GpmHeap::stagePayload(ThreadCtx &ctx, std::uint64_t handle,
                      std::uint64_t seed)
{
    std::uint32_t len = lenOf(handle);
    std::vector<std::uint8_t> buf = payloadBytes(seed, len);
    ctx.pmWrite(slotAddr(handle), buf.data(), len);
}

std::uint64_t
GpmHeap::readPayloadHash(ThreadCtx &ctx, std::uint64_t handle) const
{
    std::uint32_t len = lenOf(handle);
    std::vector<std::uint8_t> buf(len);
    ctx.pmRead(slotAddr(handle), buf.data(), len);
    return fnv1a(buf.data(), buf.size());
}

std::uint64_t
GpmHeap::durablePayloadHash(std::uint64_t handle) const
{
    std::uint32_t len = lenOf(handle);
    return fnv1a(m_->pool().durable() + slotAddr(handle), len);
}

std::vector<std::uint64_t>
GpmHeap::durableAllocatedOffsets() const
{
    std::vector<std::uint64_t> out;
    const std::uint8_t *img = m_->pool().durable();
    for (std::size_t c = 0; c < p_.class_sizes.size(); ++c)
        for (std::uint32_t i = 0; i < p_.slots_per_class; ++i) {
            std::uint64_t off =
                class_off_[c] + std::uint64_t(i) * p_.class_sizes[c];
            if (bitOf(img, off))
                out.push_back(off);
        }
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
GpmHeap::durableBitmapHash() const
{
    return fnv1a(m_->pool().durable() + bitmap_.offset, bitmap_.size);
}

} // namespace gpm
