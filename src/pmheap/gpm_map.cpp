#include "pmheap/gpm_map.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "gpm/gpm_runtime.hpp"
#include "gpusim/thread_ctx.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

/** Blob slot per planned directory write. */
struct PlannedWrite {
    std::uint64_t key;     ///< 0 for a Del clear
    std::uint64_t handle;  ///< 0 for a Del clear
    std::uint32_t group;
    std::uint32_t way;
};

constexpr std::uint32_t kBlobPerWrite = 24;

void
encodeWrite(std::uint8_t *dst, const PlannedWrite &w)
{
    std::memcpy(dst, &w.key, 8);
    std::memcpy(dst + 8, &w.handle, 8);
    std::memcpy(dst + 16, &w.group, 4);
    std::memcpy(dst + 20, &w.way, 4);
}

PlannedWrite
decodeWrite(const std::uint8_t *src)
{
    PlannedWrite w{};
    std::memcpy(&w.key, src, 8);
    std::memcpy(&w.handle, src + 8, 8);
    std::memcpy(&w.group, src + 16, 4);
    std::memcpy(&w.way, src + 20, 4);
    return w;
}

} // namespace

GpmMap::GpmMap(Machine &m, const GpmMapParams &p)
    : m_(&m), p_(p),
      heap_(m, [&p] {
          GpmHeapParams hp = p.heap;
          hp.name = p.name + ".heap";
          return hp;
      }())
{
    GPM_REQUIRE(p_.n_groups > 0, "GpmMap needs groups");
}

void
GpmMap::setup(bool create)
{
    heap_.setup(create);
    dir_ = gpmMap(*m_, p_.name + ".dir", p_.dirBytes(), create);

    if (PmEventRecorder *rec = m_->pool().recorder()) {
        // Entries are published by single 16 B leader stores; the
        // heap's commit record must be durable before any of them.
        rec->declareRange(p_.name + ".dir", dir_.offset, dir_.size,
                          sizeof(MapEntry), PmRangeKind::Data);
        rec->declareOrder(heap_.redoLabel(), p_.name + ".dir", false);
    }
}

std::uint64_t
GpmMap::groupOf(std::uint64_t key) const
{
    return fnv1aU64(key) % p_.n_groups;
}

std::uint64_t
GpmMap::entryAddr(std::uint32_t group, std::uint32_t way) const
{
    return dir_.offset +
           (std::uint64_t(group) * GpmMapParams::kWays + way) *
               sizeof(MapEntry);
}

std::vector<std::uint8_t>
GpmMap::runBatch(const std::vector<MapOp> &ops,
                 const std::optional<CrashPoint> &crash_stage,
                 const std::optional<CrashPoint> &crash_publish)
{
    telemetry::Span span("pmheap", "map_batch");
    std::vector<std::uint8_t> results(ops.size(), 0);

    // ---- plan (host): probe against a scratch view so ops later in
    // the batch see earlier ops' planned effects, and every planned
    // write gets a distinct (group, way).
    std::unordered_map<std::uint64_t, std::array<MapEntry, 8>> scratch;
    auto groupView = [&](std::uint64_t g) -> std::array<MapEntry, 8> & {
        auto it = scratch.find(g);
        if (it == scratch.end()) {
            std::array<MapEntry, 8> v;
            m_->pool().read(entryAddr(static_cast<std::uint32_t>(g), 0),
                            v.data(), sizeof(v));
            it = scratch.emplace(g, v).first;
        }
        return it->second;
    };

    std::vector<PlannedWrite> plan;
    struct Staged {
        std::uint64_t handle;
        std::uint64_t seed;
    };
    std::vector<Staged> staged;
    std::vector<std::uint64_t> allocs, frees;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const MapOp &op = ops[i];
        GPM_REQUIRE(op.key != 0, "GpmMap key 0 is reserved");
        for (std::size_t j = 0; j < i; ++j)
            GPM_REQUIRE(ops[j].key != op.key,
                        "duplicate key in GpmMap batch");
        const auto g = static_cast<std::uint32_t>(groupOf(op.key));
        std::array<MapEntry, 8> &view = groupView(g);
        std::uint32_t hit = GpmMapParams::kWays;
        std::uint32_t empty = GpmMapParams::kWays;
        for (std::uint32_t w = 0; w < GpmMapParams::kWays; ++w) {
            if (view[w].key == op.key)
                hit = w;
            else if (view[w].key == 0 && empty == GpmMapParams::kWays)
                empty = w;
        }
        if (op.verb == MapOp::Verb::Del) {
            if (hit == GpmMapParams::kWays)
                continue; // absent: reject
            frees.push_back(view[hit].handle);
            plan.push_back({0, 0, g, hit});
            view[hit] = MapEntry{};
            results[i] = 1;
            continue;
        }
        const std::uint32_t w =
            hit != GpmMapParams::kWays ? hit : empty;
        if (w == GpmMapParams::kWays)
            continue; // full group: reject
        if (hit != GpmMapParams::kWays)
            frees.push_back(view[hit].handle);
        const std::uint64_t h = heap_.alloc(op.len);
        allocs.push_back(h);
        staged.push_back({h, op.seed});
        plan.push_back({op.key, h, g, w});
        view[w] = MapEntry{op.key, h};
        results[i] = 1;
    }

    if (plan.empty()) {
        ++batch_seq_;
        return results;
    }

    // Collapse the plan to the final value per (group, way): a Del
    // whose way is reused by a later Put in the same batch would
    // otherwise publish two stores into one 16 B atomic cell in one
    // launch — a genuine torn-update hazard the analyzer flags. One
    // store per cell keeps every entry update single-epoch.
    {
        std::vector<PlannedWrite> collapsed;
        for (std::size_t i = 0; i < plan.size(); ++i) {
            bool superseded = false;
            for (std::size_t j = i + 1; j < plan.size() && !superseded;
                 ++j)
                superseded = plan[j].group == plan[i].group &&
                             plan[j].way == plan[i].way;
            if (!superseded)
                collapsed.push_back(plan[i]);
        }
        plan = std::move(collapsed);
    }

    // ---- stage (device): payloads into still-unreachable slots.
    // A crash from here on is reconciled by recover(); the volatile
    // free lists are rebuilt there, so popped-but-uncommitted slots
    // are never lost.
    if (!staged.empty()) {
        KernelDesc k;
        k.name = "gpmmap_stage";
        k.blocks = static_cast<std::uint32_t>(staged.size());
        k.block_threads = GpmMapParams::kWays;
        k.block_independent = true;
        k.crash = crash_stage;
        k.phases = {[this, &staged](ThreadCtx &ctx) {
            const std::uint64_t b =
                ctx.globalId() / GpmMapParams::kWays;
            if (ctx.globalId() % GpmMapParams::kWays != 0) {
                ctx.work(1);
                return;
            }
            heap_.stagePayload(ctx, staged[b].handle, staged[b].seed);
            gpmPersist(ctx);
        }};
        m_->runKernel(k);
    }

    // ---- commit record before any publication (commit-before-data).
    std::vector<std::uint8_t> blob(plan.size() * kBlobPerWrite);
    for (std::size_t i = 0; i < plan.size(); ++i)
        encodeWrite(blob.data() + i * kBlobPerWrite, plan[i]);
    heap_.txBegin(GpmHeap::TxMode::Commit, batch_seq_, allocs, frees,
                  blob.data(), static_cast<std::uint32_t>(blob.size()));

    // ---- publish (device): one leader store per entry, all
    // (group, way) targets distinct by construction.
    {
        KernelDesc k;
        k.name = "gpmmap_publish";
        k.blocks = static_cast<std::uint32_t>(plan.size());
        k.block_threads = GpmMapParams::kWays;
        k.block_independent = true;
        k.crash = crash_publish;
        k.phases = {[this, &plan](ThreadCtx &ctx) {
            const std::uint64_t b =
                ctx.globalId() / GpmMapParams::kWays;
            if (ctx.globalId() % GpmMapParams::kWays != 0) {
                ctx.work(1);
                return;
            }
            const PlannedWrite &w = plan[b];
            const MapEntry e{w.key, w.handle};
            ctx.pmWrite(entryAddr(w.group, w.way), &e, sizeof(e));
            gpmPersist(ctx);
        }};
        m_->runKernel(k);
    }

    heap_.txCommit();
    ++batch_seq_;
    telemetry::count("pmheap.map_batches");
    return results;
}

bool
GpmMap::recover()
{
    PmRecoveryScope scope(m_->pool().recorder());
    telemetry::Span span("recovery", "gpmmap_recover");

    GpmHeap::InFlight rec;
    const bool had = heap_.inFlight(rec);
    if (had && rec.mode == GpmHeap::TxMode::Commit) {
        // Replay every planned directory write from the blob — the
        // record is the truth, whether the publish kernel got to a
        // given entry or not. Idempotent under repeated crashes.
        GPM_REQUIRE(rec.blob.size() % kBlobPerWrite == 0,
                    "GpmMap '", p_.name, "': corrupt record blob");
        for (std::size_t at = 0; at < rec.blob.size();
             at += kBlobPerWrite) {
            const PlannedWrite w = decodeWrite(rec.blob.data() + at);
            const MapEntry e{w.key, w.handle};
            m_->cpuWritePersist(entryAddr(w.group, w.way), &e,
                                sizeof(e), 1);
        }
        telemetry::count("pmheap.map_replayed_writes",
                         rec.blob.size() / kBlobPerWrite);
    }
    heap_.recover();
    if (had)
        batch_seq_ = rec.batch_id + 1;
    return had;
}

bool
GpmMap::get(std::uint64_t key, MapEntry &out) const
{
    const auto g = static_cast<std::uint32_t>(groupOf(key));
    for (std::uint32_t w = 0; w < GpmMapParams::kWays; ++w) {
        auto e = m_->pool().load<MapEntry>(entryAddr(g, w));
        if (e.key == key) {
            out = e;
            return true;
        }
    }
    return false;
}

std::uint64_t
GpmMap::readValueHash(ThreadCtx &ctx, std::uint64_t handle) const
{
    return heap_.readPayloadHash(ctx, handle);
}

bool
GpmMap::durableEqualsOracle(
    const std::vector<std::pair<std::uint64_t, MapOracleValue>> &oracle)
    const
{
    std::unordered_map<std::uint64_t, MapOracleValue> want;
    for (const auto &kv : oracle)
        want.emplace(kv.first, kv.second);

    const std::uint8_t *img = m_->pool().durable();
    std::vector<std::uint64_t> dir_offsets;
    std::size_t found = 0;
    for (std::uint32_t g = 0; g < p_.n_groups; ++g)
        for (std::uint32_t w = 0; w < GpmMapParams::kWays; ++w) {
            MapEntry e;
            std::memcpy(&e, img + entryAddr(g, w), sizeof(e));
            if (e.key == 0)
                continue;
            auto it = want.find(e.key);
            if (it == want.end())
                return false; // entry the oracle never stored
            if (groupOf(e.key) != g)
                return false; // entry outside its home group
            if (GpmHeap::lenOf(e.handle) != it->second.len)
                return false;
            if (heap_.durablePayloadHash(e.handle) !=
                GpmHeap::payloadHash(it->second.seed, it->second.len))
                return false;
            dir_offsets.push_back(GpmHeap::offOf(e.handle));
            ++found;
        }
    if (found != want.size())
        return false; // a key the oracle has is missing

    // Leak / double-allocation check: directory handles and bitmap
    // bits must be the same set (duplicates break sorted equality
    // against the duplicate-free bitmap scan).
    std::sort(dir_offsets.begin(), dir_offsets.end());
    return dir_offsets == heap_.durableAllocatedOffsets();
}

std::uint64_t
GpmMap::durableStateHash() const
{
    std::uint64_t h =
        fnv1a(m_->pool().durable() + dir_.offset, dir_.size);
    return fnv1aU64(heap_.durableBitmapHash(), h);
}

} // namespace gpm
