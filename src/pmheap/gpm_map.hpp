/**
 * @file
 * GpmMap: a crash-consistent hash map of variable-size objects,
 * the first container built on GpmHeap.
 *
 * Layout: a PM directory of groups, 8 ways per group, one 16-byte
 * entry {key, handle} per way — a group is exactly one 128 B crash
 * line, mirroring the GpKvs set shape. A key hashes to one group and
 * lives in one of its ways; values are GpmHeap objects named by the
 * entry's handle.
 *
 * A batch commits with atomic multi-word semantics using the heap's
 * redo record (Commit mode):
 *
 *   plan (host)      probe the directory, allocate slots, pick the
 *                    exact (group, way) every entry write will hit
 *   stage (device)   write payloads into still-unreachable slots,
 *                    fence
 *   txBegin          redo record body = the planned directory writes;
 *                    record flag durable BEFORE any publication —
 *                    the commit-before-data rule gpmcheck enforces
 *   publish (device) leader threads store the 16 B entries, fence
 *   txCommit         bitmap deltas + record retired
 *
 * Crash at any point and recover() is deterministic: a Commit record
 * replays every planned entry write from the blob (idempotent), then
 * GpmHeap::recover() rolls the bitmap forward; no record means no
 * publication happened and the staged slots were never reachable.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/kernel.hpp"
#include "pmheap/gpm_heap.hpp"

namespace gpm {

/** One 16-byte directory entry; key 0 = empty way. */
struct MapEntry {
    std::uint64_t key = 0;
    std::uint64_t handle = 0;
};

/** One mutation in a GpmMap batch. */
struct MapOp {
    enum class Verb : std::uint8_t { Put, Del };
    Verb verb = Verb::Put;
    std::uint64_t key = 0;       ///< nonzero
    std::uint32_t len = 0;       ///< value bytes (Put)
    std::uint64_t seed = 0;      ///< value payload seed (Put)
};

/** Host-side oracle value for one key. */
struct MapOracleValue {
    std::uint32_t len = 0;
    std::uint64_t seed = 0;
};

struct GpmMapParams {
    std::string name = "gpmmap";
    std::uint32_t n_groups = 64;
    GpmHeapParams heap;

    static constexpr std::uint32_t kWays = 8;

    std::uint64_t dirBytes() const
    {
        return std::uint64_t(n_groups) * kWays * sizeof(MapEntry);
    }
};

class GpmMap
{
  public:
    GpmMap(Machine &m, const GpmMapParams &p);

    /** Map directory + heap regions, declare analyzer intent
     *  (dir is Data with a 16 B atomic granule; the heap's redo
     *  record must be durable before any dir publication). */
    void setup(bool create);

    /**
     * Apply one batch of mutations crash-atomically.
     *
     * Keys must be nonzero and distinct within the batch. Results are
     * 1 per applied op, 0 per rejected op (Put into a full group, Del
     * of an absent key). Ops rejected at plan time cost nothing
     * durable.
     *
     * @p crash_stage / @p crash_publish arm a fault-injection point on
     * the staging or publication launch (torture harness); an armed
     * launch throws KernelCrashed through, leaving recover() to
     * reconcile.
     */
    std::vector<std::uint8_t>
    runBatch(const std::vector<MapOp> &ops,
             const std::optional<CrashPoint> &crash_stage = {},
             const std::optional<CrashPoint> &crash_publish = {});

    /** Reboot path: replay an in-flight Commit record's directory
     *  writes, reconcile the heap, reopen for traffic.
     *  @return true when an in-flight record was reconciled. */
    bool recover();

    /** Visible-image lookup; false when absent. */
    bool get(std::uint64_t key, MapEntry &out) const;

    /** Device-side value check: hash of the stored payload bytes. */
    std::uint64_t readValueHash(ThreadCtx &ctx,
                                std::uint64_t handle) const;

    // ---- crash oracle ---------------------------------------------------

    /**
     * Compare durable state against a host oracle: every oracle key
     * present exactly once with matching length and payload hash, no
     * extra entries, and the set of directory handles in bijection
     * with the heap's allocation bitmap (leaks and double-allocations
     * both break the bijection).
     */
    bool durableEqualsOracle(
        const std::vector<std::pair<std::uint64_t, MapOracleValue>>
            &oracle) const;

    /** FNV over durable directory + allocation bitmap. */
    std::uint64_t durableStateHash() const;

    GpmHeap &heap() { return heap_; }
    const GpmMapParams &params() const { return p_; }
    std::uint32_t batchSeq() const { return batch_seq_; }

    std::uint64_t groupOf(std::uint64_t key) const;

  private:
    std::uint64_t entryAddr(std::uint32_t group, std::uint32_t way) const;

    Machine *m_;
    GpmMapParams p_;
    GpmHeap heap_;
    PmRegion dir_;
    std::uint32_t batch_seq_ = 0;
};

} // namespace gpm
