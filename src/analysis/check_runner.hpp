/**
 * @file
 * gpmcheck grid driver: run every workload x persist-domain cell
 * under an attached PmEventRecorder, analyze each captured trace, and
 * (optionally) feed finding witnesses back to the torture machinery
 * to confirm them dynamically.
 *
 * A cell runs the workload's descriptor-armed crash entry point with
 * a crash point that never fires: the full clean execution streams
 * through the recorder, the pool still crashes once at the end (so
 * the trace carries a Crash event and the epoch model knows what was
 * pending), and recovery runs as it would after a real failure. The
 * analyzer then proves or refutes the persistency-ordering rules
 * over that single trace — no crash-point enumeration needed.
 *
 * Witness confirmation closes the loop: a finding's CrashSpec is
 * materialized exactly like a torture scenario (same classification
 * policy via classifyScenario), swept over a handful of seeds, and
 * marked Confirmed when any seed produces a VIOLATION — or, in the
 * llc-volatile domain, the DdioTrap class that domain maps
 * violations to.
 *
 * Cells are swept with the harness engine; results land in canonical
 * slots, so reports and signatures are bit-identical at any --jobs.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/table.hpp"
#include "crashtest/recovery_invariant.hpp"

namespace gpm {

/** One grid cell: a workload under one persist domain. */
struct CheckScenario {
    std::string workload;
    PersistDomain domain = PersistDomain::McDurable;

    /** "workload/domain" row key. */
    std::string key() const;
};

struct CheckConfig {
    std::vector<std::string> workloads;   ///< default: all registered
    std::vector<PersistDomain> domains;   ///< default: all three
    int jobs = 1;                         ///< sweep workers (0 = auto)

    /** In-scenario executor width for every cell's Machine (and for
     *  witness-replay scenarios). The recorder stream, findings and
     *  signature are bit-identical at any width (DESIGN.md decisions
     *  #7/#8) — the corpus cross-check pins this. */
    int exec_workers = 1;

    std::uint64_t seed = 1;               ///< trace-capture seed
    bool confirm_witnesses = false;       ///< replay witnesses
    Severity confirm_floor = Severity::Warn;  ///< replay at/above

    /** Invariant factory; defaults to the torture registry
     *  (makeInvariant). The persistency-bug corpus plugs its own
     *  registry in here. */
    std::function<std::unique_ptr<RecoveryInvariant>(
        const std::string &)> factory;

    void applyDefaults();
};

/** One analyzed cell. */
struct CheckCell {
    CheckScenario scenario;
    AnalysisReport report;
    std::string error;  ///< nonempty: the cell threw

    /** Confirmation seeds witness replay sweeps, by survive prob. */
    static std::vector<std::uint64_t> witnessSeeds(double survive);
};

/** The whole grid's analysis. */
struct CheckReport {
    std::vector<CheckCell> cells;

    /** Findings at or above @p floor, across all cells. */
    std::size_t findingsAtLeast(Severity floor) const;

    /** Confirmed-witness count across all cells. */
    std::size_t confirmed() const;

    /** FNV over every cell's stream hash + findings hash: the
     *  determinism fingerprint (bit-identical at any --jobs). */
    std::uint64_t signature() const;

    /** Per-finding rows at or above @p floor. */
    Table table(Severity floor) const;

    /** Per-cell rollup: events, stores, epochs, findings by class. */
    Table summary() const;
};

/** Run the grid described by @p cfg. */
CheckReport runCheck(const CheckConfig &cfg);

/**
 * Replay one finding's witness against the torture classification
 * policy. Returns Confirmed / NotReproduced; `finding` must carry a
 * witness spec. Exposed for the corpus tests.
 */
WitnessStatus confirmWitness(
    const Finding &finding, const CheckScenario &scenario,
    const std::function<std::unique_ptr<RecoveryInvariant>(
        const std::string &)> &factory,
    int exec_workers = 1);

} // namespace gpm
