/**
 * @file
 * gpmcheck: the persistency-ordering analyzer.
 *
 * Input: one PmEventRecorder trace — the deterministic event stream a
 * scenario's PmPool captured (stores, fences with drained bytes,
 * range flushes, domain toggles, the crash) plus the workload's
 * declarations of durable intent (ranges, atomic units, order rules).
 *
 * The analyzer replays the stream through an epoch model of the
 * memory-controller persist order:
 *
 *  - a store is *pending* until something drains it; a system-scope
 *    fence in a fence-persisting domain drains its owner's pending
 *    stores, a CPU range flush drains overlapping pending stores in
 *    any domain, and under eADR every store is durable on arrival;
 *  - every draining event opens a fresh *epoch* — an equivalence
 *    class of "became durable at the same instant". Epochs are
 *    totally ordered by stream position; the crash model can cut the
 *    history between any two epochs, and can tear *within* one epoch
 *    at 128 B granularity (PmPool::crash's sub-extent loop);
 *  - a store still pending when the Crash event arrives was lost.
 *
 * Rules proved or refuted over that model:
 *
 *   unpersisted-store   a declared range holds stores that never
 *                       became durable (epoch 0 at crash/trace end)
 *   epoch-order         a declared "first persists before then" rule
 *                       is violated: the commit record's epoch is not
 *                       strictly (or weakly) after the data's
 *   torn-update         one atomic_unit cell written by several
 *                       stores of one launch landing in different
 *                       epochs — a crash between them tears the cell
 *   redundant-fence     fences that drained nothing (perf lint)
 *   redundant-flush     CPU flushes that drained nothing (perf lint)
 *   crash-unreachable   a declared range no crash-armed launch ever
 *                       stores to — dead torture coverage
 *
 * Each correctness finding carries a *witness*: the minimal CrashSpec
 * (crash_scheduler.hpp grammar) plus survive probability that should
 * expose the bug dynamically. check_runner.hpp feeds witnesses back
 * to the torture machinery to confirm them as real VIOLATIONs.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/pm_events.hpp"

namespace gpm {

enum class Severity : std::uint8_t { Info = 0, Warn = 1, Error = 2 };

const char *severityName(Severity s);

/** Parse "info" / "warn" / "error"; throws FatalError otherwise. */
Severity parseSeverity(const std::string &name);

enum class RuleId : std::uint8_t {
    UnpersistedStore,
    EpochOrder,
    TornUpdate,
    RedundantFence,
    RedundantFlush,
    CrashUnreachable,
};

/** Stable rule identifier, e.g. "unpersisted-store". */
const char *ruleIdName(RuleId r);

/** How a finding's dynamic witness fared (set by check_runner). */
enum class WitnessStatus : std::uint8_t {
    None,          ///< rule has no dynamic witness (lints)
    Unconfirmed,   ///< witness proposed, replay not attempted
    Confirmed,     ///< torture replay reproduced a VIOLATION
    NotReproduced, ///< replay ran but stayed consistent
};

const char *witnessStatusName(WitnessStatus s);

/** One analyzer finding, aggregated per (rule, range, kernel). */
struct Finding {
    RuleId rule = RuleId::UnpersistedStore;
    Severity severity = Severity::Info;
    std::string range;       ///< declared range label ("" if none)
    std::string kernel;      ///< kernel provenance ("host" for CPU)
    std::size_t count = 0;   ///< aggregated instance count
    std::string detail;      ///< human-readable specifics

    /** Dynamic witness: CrashSpec grammar + survival probability.
     *  Empty witness_spec = not dynamically witnessable (the
     *  offending event is outside the crash-armed launch, or the
     *  rule is a lint). */
    std::string witness_spec;
    double witness_survive = 0.0;
    WitnessStatus witness = WitnessStatus::None;
};

/** Everything the analyzer concluded about one trace. */
struct AnalysisReport {
    std::vector<Finding> findings;
    std::uint64_t stream_hash = 0;  ///< recorder fingerprint analyzed
    std::size_t events = 0;         ///< events in the trace
    std::size_t stores = 0;         ///< Store events seen
    std::size_t epochs = 0;         ///< persist epochs assigned

    /** Findings at or above @p floor. */
    std::size_t countAtLeast(Severity floor) const;

    /** FNV fingerprint over every finding field the determinism
     *  tests compare (witness status excluded: it depends on
     *  whether confirmation ran, not on the trace). */
    std::uint64_t findingsHash() const;
};

/** Run every rule over @p rec's trace and declarations. */
AnalysisReport analyzePmTrace(const PmEventRecorder &rec);

} // namespace gpm
