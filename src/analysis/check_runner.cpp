#include "analysis/check_runner.hpp"

#include <exception>
#include <limits>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "crashtest/torture_runner.hpp"
#include "harness/sweep.hpp"
#include "pmem/pm_events.hpp"

namespace gpm {

std::string
CheckScenario::key() const
{
    return workload + "/" + persistDomainName(domain);
}

void
CheckConfig::applyDefaults()
{
    if (workloads.empty())
        workloads = registeredInvariants();
    if (domains.empty())
        domains = {PersistDomain::LlcVolatile, PersistDomain::McDurable,
                   PersistDomain::LlcDurable};
    if (!factory)
        factory = [](const std::string &name) {
            return makeInvariant(name);
        };
}

std::vector<std::uint64_t>
CheckCell::witnessSeeds(double survive)
{
    // Deterministic crashes (survive 0) need few seeds; tearing
    // witnesses (survive 0.5) flip a coin per 128 B line, so sweep
    // wider to keep the miss probability negligible.
    if (survive > 0.0)
        return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    return {1, 2, 3, 4, 5};
}

std::size_t
CheckReport::findingsAtLeast(Severity floor) const
{
    std::size_t n = 0;
    for (const CheckCell &c : cells)
        n += c.report.countAtLeast(floor);
    return n;
}

std::size_t
CheckReport::confirmed() const
{
    std::size_t n = 0;
    for (const CheckCell &c : cells)
        for (const Finding &f : c.report.findings)
            if (f.witness == WitnessStatus::Confirmed)
                ++n;
    return n;
}

std::uint64_t
CheckReport::signature() const
{
    std::uint64_t h = kFnvOffset;
    for (const CheckCell &c : cells) {
        h = fnv1aStr(c.scenario.key(), h);
        h = fnv1aU64(c.report.stream_hash, h);
        h = fnv1aU64(c.report.findingsHash(), h);
        h = fnv1aStr(c.error, h);
    }
    return h;
}

Table
CheckReport::table(Severity floor) const
{
    Table t({"workload", "domain", "severity", "rule", "range",
             "kernel", "count", "witness", "confirmed", "detail"});
    for (const CheckCell &c : cells) {
        for (const Finding &f : c.report.findings) {
            if (f.severity < floor)
                continue;
            t.addRow({c.scenario.workload,
                      persistDomainName(c.scenario.domain),
                      severityName(f.severity), ruleIdName(f.rule),
                      f.range.empty() ? "-" : f.range,
                      f.kernel.empty() ? "-" : f.kernel,
                      std::to_string(f.count),
                      f.witness_spec.empty() ? "-" : f.witness_spec,
                      witnessStatusName(f.witness), f.detail});
        }
    }
    return t;
}

Table
CheckReport::summary() const
{
    Table t({"workload", "domain", "events", "stores", "epochs",
             "error", "warn", "info", "status"});
    for (const CheckCell &c : cells) {
        std::size_t by[3] = {0, 0, 0};
        for (const Finding &f : c.report.findings)
            ++by[static_cast<std::size_t>(f.severity)];
        const char *status =
            !c.error.empty() ? "ERROR"
            : (by[1] + by[2]) != 0 ? "FINDINGS"
                                   : "clean";
        t.addRow({c.scenario.workload,
                  persistDomainName(c.scenario.domain),
                  std::to_string(c.report.events),
                  std::to_string(c.report.stores),
                  std::to_string(c.report.epochs),
                  std::to_string(by[2]), std::to_string(by[1]),
                  std::to_string(by[0]), status});
    }
    return t;
}

WitnessStatus
confirmWitness(
    const Finding &finding, const CheckScenario &scenario,
    const std::function<std::unique_ptr<RecoveryInvariant>(
        const std::string &)> &factory,
    int exec_workers)
{
    GPM_REQUIRE(!finding.witness_spec.empty(),
                "finding has no witness to confirm");
    const CrashSpec spec = CrashScheduler::parse(finding.witness_spec);
    for (const std::uint64_t seed :
         CheckCell::witnessSeeds(finding.witness_survive)) {
        TortureResult r;
        r.scenario = {scenario.workload, scenario.domain, spec, seed,
                      finding.witness_survive, exec_workers};
        const std::unique_ptr<RecoveryInvariant> inv =
            factory(scenario.workload);
        DomainSetup setup = domainSetupFor(scenario.domain);
        setup.exec_workers = exec_workers;
        const CrashPoint point =
            spec.materialize(inv->doomedThreadPhases());
        r.outcome = inv->run(setup, point, seed,
                             finding.witness_survive);
        classifyScenario(r);
        // llc-volatile maps data loss to DdioTrap, not Violation —
        // that class *is* the dynamic confirmation there.
        if (r.cls == OutcomeClass::Violation ||
            (scenario.domain == PersistDomain::LlcVolatile &&
             r.cls == OutcomeClass::DdioTrap))
            return WitnessStatus::Confirmed;
    }
    return WitnessStatus::NotReproduced;
}

namespace {

CheckCell
runCell(SweepLane &lane, const CheckScenario &sc, const CheckConfig &cfg)
{
    CheckCell cell;
    cell.scenario = sc;
    try {
        PmEventRecorder rec;
        const std::unique_ptr<RecoveryInvariant> inv =
            cfg.factory(sc.workload);
        DomainSetup setup = domainSetupFor(sc.domain);
        setup.recorder = &rec;
        setup.exec_workers = cfg.exec_workers;
        // A crash point past any reachable thread-phase count: the
        // workload runs clean end to end, the pool still crashes
        // exactly once afterwards (survive 0, so the trace shows
        // precisely what durability the fences actually bought), and
        // recovery runs inside the recorded window.
        const CrashPoint never = CrashPoint::afterThreadPhases(
            std::numeric_limits<std::uint64_t>::max());
        const TortureOutcome o =
            inv->run(setup, never, cfg.seed, /*survive_prob=*/0.0);
        if (!o.error.empty()) {
            cell.error = o.error;
            return cell;
        }
        cell.report = analyzePmTrace(rec);
        if (cfg.confirm_witnesses) {
            for (Finding &f : cell.report.findings) {
                if (f.witness == WitnessStatus::Unconfirmed &&
                    f.severity >= cfg.confirm_floor) {
                    f.witness = confirmWitness(f, sc, cfg.factory,
                                               cfg.exec_workers);
                    lane.count("gpmcheck.witness_replays");
                }
            }
        }
    } catch (const std::exception &e) {
        cell.error = e.what();
    }
    lane.count("gpmcheck.cells");
    if (cell.report.countAtLeast(Severity::Warn) != 0)
        lane.count("gpmcheck.cells_with_findings");
    return cell;
}

} // namespace

CheckReport
runCheck(const CheckConfig &cfg_in)
{
    CheckConfig cfg = cfg_in;
    cfg.applyDefaults();

    std::vector<CheckScenario> scenarios;
    scenarios.reserve(cfg.workloads.size() * cfg.domains.size());
    for (const std::string &w : cfg.workloads)
        for (const PersistDomain d : cfg.domains)
            scenarios.push_back({w, d});

    SweepOptions opt;
    opt.workers = cfg.jobs;
    CheckReport report;
    report.cells = sweep(
        scenarios,
        [&cfg](SweepLane &lane, const CheckScenario &sc) {
            return runCell(lane, sc, cfg);
        },
        opt);
    return report;
}

} // namespace gpm
