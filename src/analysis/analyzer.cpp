#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "common/status.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warn:
        return "warn";
      case Severity::Error:
        return "error";
    }
    return "?";
}

Severity
parseSeverity(const std::string &name)
{
    if (name == "info")
        return Severity::Info;
    if (name == "warn")
        return Severity::Warn;
    if (name == "error")
        return Severity::Error;
    fatal("unknown severity '", name, "' (info | warn | error)");
}

const char *
ruleIdName(RuleId r)
{
    switch (r) {
      case RuleId::UnpersistedStore:
        return "unpersisted-store";
      case RuleId::EpochOrder:
        return "epoch-order";
      case RuleId::TornUpdate:
        return "torn-update";
      case RuleId::RedundantFence:
        return "redundant-fence";
      case RuleId::RedundantFlush:
        return "redundant-flush";
      case RuleId::CrashUnreachable:
        return "crash-unreachable";
    }
    return "?";
}

const char *
witnessStatusName(WitnessStatus s)
{
    switch (s) {
      case WitnessStatus::None:
        return "-";
      case WitnessStatus::Unconfirmed:
        return "unconfirmed";
      case WitnessStatus::Confirmed:
        return "CONFIRMED";
      case WitnessStatus::NotReproduced:
        return "not-reproduced";
    }
    return "?";
}

std::size_t
AnalysisReport::countAtLeast(Severity floor) const
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        if (f.severity >= floor)
            ++n;
    return n;
}

std::uint64_t
AnalysisReport::findingsHash() const
{
    std::uint64_t h = kFnvOffset;
    for (const Finding &f : findings) {
        h = fnv1aU64(static_cast<std::uint64_t>(f.rule), h);
        h = fnv1aU64(static_cast<std::uint64_t>(f.severity), h);
        h = fnv1aStr(f.range, h);
        h = fnv1aStr(f.kernel, h);
        h = fnv1aU64(f.count, h);
        h = fnv1aStr(f.detail, h);
        h = fnv1aStr(f.witness_spec, h);
        h = fnv1aU64(
            static_cast<std::uint64_t>(f.witness_survive * 1e6), h);
    }
    return h;
}

namespace {

constexpr std::uint64_t kNeverDurable =
    std::numeric_limits<std::uint64_t>::max();

/** Epoch-model state of one Store event. */
struct StoreState {
    std::size_t ev = 0;        ///< index into events()
    std::uint64_t epoch = 0;   ///< 0 = never durable
    bool lost = false;         ///< pending when the Crash event hit
    std::size_t drain_ev = 0;  ///< event that drained it (valid iff epoch)
    std::uint32_t era = 0;     ///< Crash events before this store
};

/** Ordering epoch of a store for rule checks: 0 -> +inf. */
std::uint64_t
orderEpoch(const StoreState &s)
{
    return s.epoch == 0 ? kNeverDurable : s.epoch;
}

bool
overlaps(const PmEvent &e, const PmDeclaredRange &r)
{
    return e.addr < r.addr + r.size && r.addr < e.addr + e.size;
}

/** The epoch simulation: replay the stream, assign persist epochs. */
struct EpochSim {
    std::vector<StoreState> stores;       ///< one per Store event
    std::vector<std::size_t> store_of_ev; ///< event idx -> store idx
    std::uint64_t next_epoch = 1;

    explicit EpochSim(const std::vector<PmEvent> &events)
    {
        std::uint32_t era = 0;
        store_of_ev.assign(events.size(), SIZE_MAX);
        // owner -> indices into stores still pending.
        std::map<OwnerId, std::vector<std::size_t>> pending;

        const auto drainInto = [&](std::vector<std::size_t> &list,
                                   std::size_t drain_ev, bool &any) {
            for (const std::size_t si : list) {
                stores[si].epoch = next_epoch;
                stores[si].drain_ev = drain_ev;
                any = true;
            }
            list.clear();
        };

        for (std::size_t i = 0; i < events.size(); ++i) {
            const PmEvent &e = events[i];
            switch (e.kind) {
              case PmEventKind::Store: {
                store_of_ev[i] = stores.size();
                StoreState s;
                s.ev = i;
                s.era = era;
                if (e.domain == PersistDomain::LlcDurable) {
                    s.epoch = next_epoch++;  // durable on arrival
                    s.drain_ev = i;
                } else {
                    pending[e.owner].push_back(stores.size());
                }
                stores.push_back(s);
                break;
              }
              case PmEventKind::Fence: {
                // Fences persist only in the fence-persisting domain
                // (PmPool::persistOwner); elsewhere they order only.
                if (e.domain != PersistDomain::McDurable)
                    break;
                bool any = false;
                auto it = pending.find(e.owner);
                if (it != pending.end())
                    drainInto(it->second, i, any);
                if (any)
                    ++next_epoch;
                break;
              }
              case PmEventKind::FlushRange: {
                // CPU flushes drain overlapping pending stores of
                // every owner, in any domain (PmPool::persistRange).
                bool any = false;
                for (auto &[owner, list] : pending) {
                    std::vector<std::size_t> keep;
                    for (const std::size_t si : list) {
                        const PmEvent &se = events[stores[si].ev];
                        if (se.addr < e.addr + e.size &&
                            e.addr < se.addr + se.size) {
                            stores[si].epoch = next_epoch;
                            stores[si].drain_ev = i;
                            any = true;
                        } else {
                            keep.push_back(si);
                        }
                    }
                    list = std::move(keep);
                }
                if (any)
                    ++next_epoch;
                break;
              }
              case PmEventKind::PersistAll: {
                bool any = false;
                for (auto &[owner, list] : pending)
                    drainInto(list, i, any);
                if (any)
                    ++next_epoch;
                break;
              }
              case PmEventKind::Crash: {
                // Everything still pending was lost to the failure.
                for (auto &[owner, list] : pending) {
                    for (const std::size_t si : list)
                        stores[si].lost = true;
                    list.clear();
                }
                ++era;
                break;
              }
              default:
                break;
            }
        }
    }
};

/** Aggregation key: one finding row per (rule, range, kernel). */
using FindingKey = std::tuple<int, std::string, std::string>;

class FindingSet
{
  public:
    /** Add an instance; the first one fixes severity/detail/witness. */
    void
    add(RuleId rule, Severity sev, const std::string &range,
        const std::string &kernel, const std::string &detail,
        const std::string &witness_spec = "", double survive = 0.0)
    {
        const FindingKey key{static_cast<int>(rule), range, kernel};
        auto it = map_.find(key);
        if (it == map_.end()) {
            Finding f;
            f.rule = rule;
            f.severity = sev;
            f.range = range;
            f.kernel = kernel;
            f.count = 1;
            f.detail = detail;
            f.witness_spec = witness_spec;
            f.witness_survive = survive;
            f.witness = witness_spec.empty()
                            ? WitnessStatus::None
                            : WitnessStatus::Unconfirmed;
            map_.emplace(key, std::move(f));
            return;
        }
        ++it->second.count;
        it->second.severity = std::max(it->second.severity, sev);
        // Prefer a witnessed instance as the representative.
        if (it->second.witness_spec.empty() && !witness_spec.empty()) {
            it->second.detail = detail;
            it->second.witness_spec = witness_spec;
            it->second.witness_survive = survive;
            it->second.witness = WitnessStatus::Unconfirmed;
        }
    }

    std::vector<Finding>
    sorted() &&
    {
        std::vector<Finding> out;
        out.reserve(map_.size());
        for (auto &[key, f] : map_)
            out.push_back(std::move(f));
        std::sort(out.begin(), out.end(),
                  [](const Finding &a, const Finding &b) {
                      if (a.severity != b.severity)
                          return a.severity > b.severity;
                      if (a.rule != b.rule)
                          return a.rule < b.rule;
                      if (a.range != b.range)
                          return a.range < b.range;
                      return a.kernel < b.kernel;
                  });
        return out;
    }

  private:
    std::map<FindingKey, Finding> map_;
};

Severity
storeSeverity(const PmEvent &store)
{
    // A store the platform never promised to persist (the DDIO trap)
    // is the domain's known hazard, not the workload's bug.
    return store.domain == PersistDomain::LlcVolatile ? Severity::Info
                                                      : Severity::Error;
}

std::string
specOf(const char *kind, std::uint32_t ordinal)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s:%u", kind, ordinal);
    return buf;
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

AnalysisReport
analyzePmTrace(const PmEventRecorder &rec)
{
    const std::vector<PmEvent> &events = rec.events();
    const std::vector<PmDeclaredRange> &ranges = rec.ranges();
    EpochSim sim(events);
    FindingSet out;

    AnalysisReport report;
    report.stream_hash = rec.streamHash();
    report.events = events.size();
    report.stores = sim.stores.size();
    report.epochs = sim.next_epoch - 1;

    // ---- unpersisted-store --------------------------------------------
    // A store inside a declared range that never reached durability:
    // lost at the crash, or still pending when the trace ended.
    for (const StoreState &s : sim.stores) {
        if (s.epoch != 0)
            continue;
        const PmEvent &se = events[s.ev];
        for (const PmDeclaredRange &r : ranges) {
            if (!overlaps(se, r))
                continue;
            std::string witness;
            if (se.armed)
                witness = specOf("after-store", se.ordinal);
            out.add(RuleId::UnpersistedStore, storeSeverity(se), r.label,
                    rec.kernelName(se.kernel),
                    std::string(s.lost ? "lost at crash" :
                                         "pending at trace end") +
                        ": store " + hex(se.addr) + "+" +
                        std::to_string(se.size) + " never drained",
                    witness, 0.0);
        }
    }

    // ---- epoch-order ---------------------------------------------------
    // For each declared rule, scan stores in stream order keeping the
    // worst (latest / never) persist epoch seen over the `first`
    // range; any later `then` store durable at or before that epoch
    // violates the rule. O(stores) per rule.
    for (const PmOrderRule &rule : rec.orders()) {
        const PmDeclaredRange *first = nullptr, *then = nullptr;
        for (const PmDeclaredRange &r : ranges) {
            if (r.label == rule.first)
                first = &r;
            if (r.label == rule.then)
                then = &r;
        }
        if (first == nullptr || then == nullptr)
            continue;
        std::uint64_t worst_first = 0;  // max orderEpoch so far
        std::size_t worst_idx = SIZE_MAX;
        // (launch, owner) -> first durable `then` store: data the
        // same thread writes *after* its commit record within one
        // launch is the reordered-flip bug — the sentinel cannot
        // cover stores its own thread has not issued yet. Host
        // context (launch 0) spans the whole trace and is exempt: a
        // later transaction's data legitimately follows an earlier
        // host-side commit.
        std::map<std::pair<std::uint32_t, OwnerId>, std::size_t>
            commit_seen;
        std::uint32_t era = 0;
        for (const StoreState &s : sim.stores) {
            const PmEvent &se = events[s.ev];
            if (s.era != era) {
                // A crash resets the persist-order obligations: data
                // the failure destroyed cannot indict commit records
                // recovery writes afterwards — reconciling the two is
                // exactly what the recovery invariant checks.
                era = s.era;
                worst_first = 0;
                worst_idx = SIZE_MAX;
                commit_seen.clear();
            }
            if (overlaps(se, *first)) {
                if (se.launch != 0) {
                    const auto it =
                        commit_seen.find({se.launch, se.owner});
                    if (it != commit_seen.end()) {
                        const StoreState &ts = sim.stores[it->second];
                        const PmEvent &te = events[ts.ev];
                        const PmEvent &de = events[ts.drain_ev];
                        std::string witness;
                        if (de.kind == PmEventKind::Fence && de.armed)
                            witness = specOf("after-fence", de.ordinal);
                        else if (de.kind == PmEventKind::Store &&
                                 de.armed)
                            witness = specOf("after-store", de.ordinal);
                        out.add(RuleId::EpochOrder,
                                std::min(storeSeverity(se),
                                         storeSeverity(te)),
                                rule.then, rec.kernelName(se.kernel),
                                "commit-before-data: " + rule.then +
                                    " store " + hex(te.addr) +
                                    " persisted at epoch " +
                                    std::to_string(ts.epoch) +
                                    " before same-thread " +
                                    rule.first + " store " +
                                    hex(se.addr),
                                witness, 0.0);
                    }
                }
                const std::uint64_t oe = orderEpoch(s);
                if (oe > worst_first) {
                    worst_first = oe;
                    worst_idx = s.ev;
                }
            }
            if (overlaps(se, *then) && s.epoch != 0 && se.launch != 0)
                commit_seen.emplace(
                    std::pair<std::uint32_t, OwnerId>{se.launch,
                                                      se.owner},
                    static_cast<std::size_t>(&s - sim.stores.data()));
            if (!overlaps(se, *then) || s.epoch == 0)
                continue;
            const bool late = worst_first > s.epoch;
            const bool tied = rule.strict && worst_first == s.epoch;
            if (!late && !tied)
                continue;
            const PmEvent &fe = events[worst_idx];
            std::string witness;
            double survive = 0.0;
            const PmEvent &de = events[s.drain_ev];
            if (tied) {
                // Same fence drained data and commit record: a crash
                // just before it tears at 128 B granularity, so the
                // sentinel can survive without its entry.
                if (de.kind == PmEventKind::Fence && de.armed) {
                    witness = specOf("before-fence", de.ordinal);
                    survive = 0.5;
                }
            } else if (de.kind == PmEventKind::Fence && de.armed) {
                // Crash after the fence that persisted the commit
                // record, while the data it covers is still pending.
                witness = specOf("after-fence", de.ordinal);
            }
            // The DDIO trap (llc-volatile data that never persisted
            // under a durable commit) is the domain's known hazard,
            // not the workload's: severity follows the milder of the
            // two stores' domains.
            out.add(
                RuleId::EpochOrder,
                std::min(storeSeverity(se), storeSeverity(fe)),
                rule.then, rec.kernelName(se.kernel),
                std::string(tied ? "same-epoch" : "out-of-order") +
                    ": " + rule.then + " store " + hex(se.addr) +
                    " persisted at epoch " + std::to_string(s.epoch) +
                    " while " + rule.first + " store " + hex(fe.addr) +
                    (worst_first == kNeverDurable
                         ? " never persisted"
                         : " persisted at epoch " +
                               std::to_string(worst_first)),
                witness, survive);
        }
    }

    // ---- torn-update ---------------------------------------------------
    // Several stores of one launch into one atomic_unit cell that
    // became durable at different instants: a crash between the
    // epochs leaves the cell half old, half new.
    for (const PmDeclaredRange &r : ranges) {
        if (r.atomic_unit == 0)
            continue;
        // (launch, cell) -> store indices, in stream order.
        std::map<std::pair<std::uint32_t, std::uint64_t>,
                 std::vector<std::size_t>>
            cells;
        for (std::size_t si = 0; si < sim.stores.size(); ++si) {
            const PmEvent &se = events[sim.stores[si].ev];
            if (se.launch == 0 || !overlaps(se, r))
                continue;
            const std::uint64_t cell = (se.addr - r.addr) / r.atomic_unit;
            cells[{se.launch, cell}].push_back(si);
        }
        for (const auto &[key, list] : cells) {
            if (list.size() < 2)
                continue;
            bool torn = false;
            for (const std::size_t si : list)
                if (orderEpoch(sim.stores[si]) !=
                    orderEpoch(sim.stores[list[0]]))
                    torn = true;
            if (!torn)
                continue;
            const StoreState &s0 = sim.stores[list[0]];
            const PmEvent &se0 = events[s0.ev];
            std::string witness;
            if (s0.epoch != 0) {
                const PmEvent &de = events[s0.drain_ev];
                if (de.kind == PmEventKind::Fence && de.armed)
                    witness = specOf("after-fence", de.ordinal);
                else if (de.kind == PmEventKind::Store && de.armed)
                    witness = specOf("after-store", de.ordinal);
            }
            out.add(RuleId::TornUpdate, storeSeverity(se0), r.label,
                    rec.kernelName(se0.kernel),
                    std::to_string(list.size()) + " stores to " +
                        std::to_string(r.atomic_unit) + " B cell " +
                        std::to_string(key.second) +
                        " persist in different epochs",
                    witness, 0.0);
        }
    }

    // ---- redundant-fence / redundant-flush (perf lints) ---------------
    for (const PmEvent &e : events) {
        if (e.kind == PmEventKind::Fence &&
            e.domain == PersistDomain::McDurable && e.drained == 0 &&
            e.owner < kCpuOwnerBase) {
            out.add(RuleId::RedundantFence, Severity::Info, "",
                    rec.kernelName(e.kernel),
                    "system-scope fence drained nothing");
        }
        if (e.kind == PmEventKind::FlushRange &&
            e.domain != PersistDomain::LlcDurable && e.drained == 0) {
            out.add(RuleId::RedundantFlush, Severity::Warn, "",
                    rec.kernelName(e.kernel),
                    "flush of " + hex(e.addr) + "+" +
                        std::to_string(e.size) + " drained nothing");
        }
    }

    // ---- crash-unreachable --------------------------------------------
    // Declared ranges no crash-armed launch ever stores to: the
    // torture matrix cannot catch ordering bugs there.
    for (const PmDeclaredRange &r : ranges) {
        bool reachable = false;
        for (const StoreState &s : sim.stores) {
            const PmEvent &se = events[s.ev];
            if (se.armed && overlaps(se, r)) {
                reachable = true;
                break;
            }
        }
        if (!reachable)
            out.add(RuleId::CrashUnreachable, Severity::Info, r.label,
                    "",
                    "no crash-armed launch stores to this range "
                    "(dead torture coverage)");
    }

    report.findings = std::move(out).sorted();
    return report;
}

} // namespace gpm
