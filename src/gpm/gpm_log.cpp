#include "gpm/gpm_log.hpp"

#include <algorithm>
#include <cstring>

#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

namespace {

/**
 * Per-append accounting. Individual spans would swamp the timeline
 * (canonical workloads append tens of thousands of times), so every
 * append bumps a counter and only every 256th — per calling thread,
 * so parallel lanes never race on the sample cursor — drops an
 * instant marker.
 */
void
noteAppend(const char *name)
{
    telemetry::count(name);
    if (telemetry::enabled()) {
        static thread_local std::uint64_t n = 0;
        if ((n++ & 255u) == 0)
            telemetry::instant("log", name);
    }
}

} // namespace

namespace {

/** Pad an entry size to whole 4 B chunks (HCL's striping grain). */
std::uint32_t
padChunks(std::uint32_t entry_bytes)
{
    return static_cast<std::uint32_t>(alignUp(entry_bytes, 4));
}

} // namespace

GpmLog::GpmLog(Machine &m, PmRegion region, GpmLogHeader hdr)
    : m_(&m), region_(region), hdr_(hdr)
{
    if (hdr_.type == Conventional)
        conv_inserts_.assign(hdr_.n_partitions, 0);
}

std::uint32_t
GpmLog::warpsPerBlock() const
{
    return (hdr_.block_threads + hdr_.warp_size - 1) / hdr_.warp_size;
}

std::uint64_t
GpmLog::warpRegionBytes() const
{
    return std::uint64_t(hdr_.max_entries) * chunksPerEntry() *
           stripeBytes();
}

std::uint64_t
GpmLog::tailsOffset() const
{
    if (hdr_.type == Hcl) {
        return dataOffset() +
               std::uint64_t(hdr_.blocks) * warpsPerBlock() *
                   warpRegionBytes();
    }
    return dataOffset() +
           std::uint64_t(hdr_.n_partitions) * hdr_.partition_bytes;
}

std::uint64_t
GpmLog::tailAddr(std::uint64_t gtid) const
{
    return tailsOffset() + gtid * 4;
}

std::uint64_t
GpmLog::hclRegionBytes(std::uint32_t entry_bytes,
                       std::uint32_t max_entries, std::uint32_t blocks,
                       std::uint32_t block_threads,
                       std::uint32_t warp_size)
{
    const std::uint64_t chunks = padChunks(entry_bytes) / 4;
    const std::uint64_t warps_per_block =
        (block_threads + warp_size - 1) / warp_size;
    const std::uint64_t data = std::uint64_t(blocks) * warps_per_block *
                               max_entries * chunks * (warp_size * 4ull);
    const std::uint64_t tails =
        std::uint64_t(blocks) * block_threads * 4;
    return 256 + data + tails;
}

void
GpmLog::writeHeader(Machine &m)
{
    m.cpuWritePersist(region_.offset, &hdr_, sizeof(hdr_), 1);
}

/**
 * Tell an attached gpmcheck recorder what this log means for
 * durability: entries are data, tails are the commit sentinels, and
 * insert()'s protocol requires every entry chunk to be *strictly*
 * durable before the tail bump that publishes it — the same epoch
 * would let a crash tear the entry while the bumped tail survives.
 */
void
GpmLog::declareDurableIntent(const std::string &path) const
{
    PmEventRecorder *rec = m_->pool().recorder();
    if (!rec)
        return;
    const std::uint64_t tails = tailsOffset();
    const std::uint64_t tails_bytes =
        hdr_.type == Hcl
            ? std::uint64_t(hdr_.blocks) * hdr_.block_threads * 4
            : std::uint64_t(hdr_.n_partitions) * 4;
    rec->declareRange(path + ".entries", dataOffset(),
                      tails - dataOffset(), 0, PmRangeKind::Data);
    rec->declareRange(path + ".tails", tails, tails_bytes, 0,
                      PmRangeKind::Commit);
    rec->declareOrder(path + ".entries", path + ".tails",
                      /*strict=*/true);
}

GpmLog
GpmLog::createHcl(Machine &m, const std::string &path,
                  std::uint32_t entry_bytes,
                  std::uint32_t max_entries_per_thread,
                  std::uint32_t blocks, std::uint32_t block_threads)
{
    GPM_REQUIRE(entry_bytes > 0 && entry_bytes <= 1024,
                "HCL entry size ", entry_bytes, " out of range");
    GPM_REQUIRE(max_entries_per_thread > 0, "HCL needs capacity");

    const std::uint32_t warp_size =
        static_cast<std::uint32_t>(m.config().warp_size);
    GpmLogHeader hdr;
    hdr.magic = kMagic;
    hdr.type = Hcl;
    hdr.entry_bytes = padChunks(entry_bytes);
    hdr.max_entries = max_entries_per_thread;
    hdr.blocks = blocks;
    hdr.block_threads = block_threads;
    hdr.warp_size = warp_size;

    const std::uint64_t bytes =
        hclRegionBytes(entry_bytes, max_entries_per_thread, blocks,
                       block_threads, warp_size);
    PmRegion region = m.pool().map(path, bytes, /*create=*/true);
    GpmLog log(m, region, hdr);
    log.writeHeader(m);
    log.declareDurableIntent(path);
    return log;
}

GpmLog
GpmLog::createConv(Machine &m, const std::string &path,
                   std::uint64_t partition_bytes,
                   std::uint32_t n_partitions)
{
    GPM_REQUIRE(n_partitions > 0 && partition_bytes > 0,
                "conventional log needs partitions");
    GpmLogHeader hdr;
    hdr.magic = kMagic;
    hdr.type = Conventional;
    hdr.warp_size = static_cast<std::uint32_t>(m.config().warp_size);
    hdr.n_partitions = n_partitions;
    hdr.partition_bytes = partition_bytes;

    const std::uint64_t bytes =
        256 + n_partitions * partition_bytes + n_partitions * 4ull;
    PmRegion region = m.pool().map(path, bytes, /*create=*/true);
    GpmLog log(m, region, hdr);
    log.writeHeader(m);
    log.declareDurableIntent(path);
    return log;
}

GpmLog
GpmLog::open(Machine &m, const std::string &path)
{
    PmRegion region = m.pool().region(path);
    GpmLogHeader hdr;
    m.pool().read(region.offset, &hdr, sizeof(hdr));
    GPM_REQUIRE(hdr.magic == kMagic, "'", path, "' is not a gpmlog");
    m.advance(m.config().syscall_ns);
    GpmLog log(m, region, hdr);
    log.declareDurableIntent(path);
    return log;
}

void
GpmLog::close()
{
    m_->advance(m_->config().syscall_ns);
}

std::uint64_t
GpmLog::chunkAddr(std::uint64_t gtid, std::uint32_t row,
                  std::uint32_t k) const
{
    GPM_ASSERT(hdr_.type == Hcl);
    const std::uint64_t block = gtid / hdr_.block_threads;
    const std::uint64_t thread = gtid % hdr_.block_threads;
    const std::uint64_t warp =
        block * warpsPerBlock() + thread / hdr_.warp_size;
    const std::uint64_t lane = thread % hdr_.warp_size;
    return dataOffset() + warp * warpRegionBytes() +
           (std::uint64_t(row) * chunksPerEntry() + k) * stripeBytes() +
           lane * 4;
}

void
GpmLog::insert(ThreadCtx &ctx, const void *entry, std::uint32_t size,
               int partition)
{
    if (hdr_.type == Hcl) {
        noteAppend("log.hcl_appends");
        GPM_REQUIRE(size <= hdr_.entry_bytes, "entry of ", size,
                    " bytes exceeds HCL entry size ", hdr_.entry_bytes);
        const std::uint64_t gtid = ctx.globalId();
        const std::uint32_t tail = ctx.pmLoad<std::uint32_t>(
            tailAddr(gtid));
        GPM_REQUIRE(tail < hdr_.max_entries,
                    "HCL log full for thread ", gtid);

        // Stripe the entry: chunk k goes to stripe k at this lane's
        // 4 B slot (Fig 5). All lanes' chunk-k stores share one
        // coalesced 128 B transaction.
        const std::uint32_t chunks = chunksPerEntry();
        for (std::uint32_t k = 0; k < chunks; ++k) {
            std::uint32_t word = 0;
            const std::uint32_t off = k * 4;
            if (off < size) {
                std::memcpy(&word,
                            static_cast<const std::uint8_t *>(entry) + off,
                            std::min<std::uint32_t>(4, size - off));
            }
            ctx.pmStore(chunkAddr(gtid, tail, k), word);
        }
        ctx.threadfenceSystem();           // entry durable first...
        ctx.pmStore(tailAddr(gtid), tail + 1);
        ctx.threadfenceSystem();           // ...then the sentinel
        return;
    }

    // Conventional: append under the partition lock.
    noteAppend("log.conv_appends");
    const std::uint32_t p = partition >= 0
        ? static_cast<std::uint32_t>(partition)
        : static_cast<std::uint32_t>(ctx.globalId() % hdr_.n_partitions);
    GPM_REQUIRE(p < hdr_.n_partitions, "partition ", p, " out of range");

    const std::uint32_t tail =
        ctx.pmLoad<std::uint32_t>(tailAddr(p));
    GPM_REQUIRE(tail + size <= hdr_.partition_bytes,
                "conventional log partition ", p, " full");
    // The partition's tail region is one contiguous media stream no
    // matter which warp holds the append lock.
    ctx.pmWriteStream((std::uint64_t(1) << 48) | p,
                      dataOffset() +
                          std::uint64_t(p) * hdr_.partition_bytes +
                          tail, entry, size);
    ctx.threadfenceSystem();
    ctx.pmStore(tailAddr(p), tail + size);
    ctx.threadfenceSystem();
    ++conv_inserts_[p];
}

bool
GpmLog::read(ThreadCtx &ctx, void *out, std::uint32_t size,
             int partition)
{
    if (hdr_.type == Hcl) {
        const std::uint64_t gtid = ctx.globalId();
        const std::uint32_t tail =
            ctx.pmLoad<std::uint32_t>(tailAddr(gtid));
        if (tail == 0)
            return false;
        const std::uint32_t row = tail - 1;
        const std::uint32_t chunks = chunksPerEntry();
        for (std::uint32_t k = 0; k < chunks && k * 4 < size; ++k) {
            const std::uint32_t word =
                ctx.pmLoad<std::uint32_t>(chunkAddr(gtid, row, k));
            std::memcpy(static_cast<std::uint8_t *>(out) + k * 4, &word,
                        std::min<std::uint32_t>(4, size - k * 4));
        }
        return true;
    }

    const std::uint32_t p = partition >= 0
        ? static_cast<std::uint32_t>(partition)
        : static_cast<std::uint32_t>(ctx.globalId() % hdr_.n_partitions);
    const std::uint32_t tail = ctx.pmLoad<std::uint32_t>(tailAddr(p));
    if (tail < size)
        return false;
    ctx.pmRead(dataOffset() + std::uint64_t(p) * hdr_.partition_bytes +
                   tail - size, out, size);
    return true;
}

void
GpmLog::remove(ThreadCtx &ctx, std::uint32_t size, int partition)
{
    if (hdr_.type == Hcl) {
        (void)size;  // entries are fixed-size rows
        const std::uint64_t gtid = ctx.globalId();
        const std::uint32_t tail =
            ctx.pmLoad<std::uint32_t>(tailAddr(gtid));
        GPM_REQUIRE(tail > 0, "gpmlog_remove on empty thread log");
        ctx.pmStore(tailAddr(gtid), tail - 1);
        ctx.threadfenceSystem();
        return;
    }

    const std::uint32_t p = partition >= 0
        ? static_cast<std::uint32_t>(partition)
        : static_cast<std::uint32_t>(ctx.globalId() % hdr_.n_partitions);
    const std::uint32_t tail = ctx.pmLoad<std::uint32_t>(tailAddr(p));
    GPM_REQUIRE(tail >= size, "gpmlog_remove of ", size,
                " bytes from partition holding ", tail);
    ctx.pmStore(tailAddr(p), tail - size);
    ctx.threadfenceSystem();
}

void
GpmLog::clearAll()
{
    const std::uint64_t n = hdr_.type == Hcl
        ? std::uint64_t(hdr_.blocks) * hdr_.block_threads
        : hdr_.n_partitions;
    std::vector<std::uint32_t> zeros(n, 0);
    m_->cpuWritePersist(tailsOffset(), zeros.data(), n * 4, 1);
}

std::uint32_t
GpmLog::tailOf(std::uint64_t gtid) const
{
    GPM_ASSERT(hdr_.type == Hcl);
    return m_->pool().load<std::uint32_t>(tailAddr(gtid));
}

std::uint64_t
GpmLog::entryCount() const
{
    GPM_ASSERT(hdr_.type == Hcl);
    std::uint64_t total = 0;
    const std::uint64_t n =
        std::uint64_t(hdr_.blocks) * hdr_.block_threads;
    for (std::uint64_t t = 0; t < n; ++t)
        total += tailOf(t);
    return total;
}

void
GpmLog::readEntryHost(std::uint64_t gtid, std::uint32_t row, void *out,
                      std::uint32_t size) const
{
    GPM_ASSERT(hdr_.type == Hcl);
    const std::uint32_t chunks = chunksPerEntry();
    for (std::uint32_t k = 0; k < chunks && k * 4 < size; ++k) {
        const std::uint32_t word =
            m_->pool().load<std::uint32_t>(chunkAddr(gtid, row, k));
        std::memcpy(static_cast<std::uint8_t *>(out) + k * 4, &word,
                    std::min<std::uint32_t>(4, size - k * 4));
    }
}

std::uint64_t
GpmLog::partitionBytesUsed(std::uint32_t p) const
{
    GPM_ASSERT(hdr_.type == Conventional);
    GPM_REQUIRE(p < hdr_.n_partitions, "partition out of range");
    return m_->pool().load<std::uint32_t>(tailAddr(p));
}

SimNs
GpmLog::consumeSerializationNs()
{
    if (hdr_.type != Conventional)
        return 0.0;
    std::uint64_t worst = 0;
    for (auto &count : conv_inserts_) {
        worst = std::max(worst, count);
        count = 0;
    }
    return static_cast<SimNs>(worst) * m_->config().conv_log_lock_ns;
}

} // namespace gpm
