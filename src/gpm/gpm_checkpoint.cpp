#include "gpm/gpm_checkpoint.hpp"

#include <algorithm>
#include <cstring>

#include "gpm/gpm_runtime.hpp"
#include "gpusim/kernel.hpp"
#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

GpmCheckpoint::GpmCheckpoint(Machine &m, PmRegion region, GpmCpHeader hdr)
    : m_(&m), region_(region), hdr_(hdr),
      regs_(hdr.groups), used_(hdr.groups, 0)
{
}

std::uint64_t
GpmCheckpoint::dataOffset() const
{
    return metaOffset() + alignUp(hdr_.groups * sizeof(GpmCpGroupMeta),
                                  256);
}

std::uint64_t
GpmCheckpoint::metaAddr(std::uint32_t group) const
{
    return metaOffset() + group * sizeof(GpmCpGroupMeta);
}

GpmCpGroupMeta
GpmCheckpoint::meta(std::uint32_t group) const
{
    GPM_REQUIRE(group < hdr_.groups, "group ", group, " out of range");
    return m_->pool().load<GpmCpGroupMeta>(metaAddr(group));
}

std::uint64_t
GpmCheckpoint::bufferAddr(std::uint32_t group, std::uint32_t buf) const
{
    GPM_REQUIRE(group < hdr_.groups && buf < 2, "bad buffer address");
    return dataOffset() +
           (std::uint64_t(group) * 2 + buf) * hdr_.group_capacity;
}

GpmCheckpoint
GpmCheckpoint::create(Machine &m, const std::string &path,
                      std::uint64_t size, std::uint32_t elements,
                      std::uint32_t groups)
{
    GPM_REQUIRE(size > 0 && groups > 0 && elements > 0,
                "gpmcp_create with empty geometry");
    GpmCpHeader hdr;
    hdr.magic = kMagic;
    hdr.groups = groups;
    hdr.elements_per_group = elements;
    // 256 B alignment keeps every buffer on the Optane fast path
    // (the paper's "checkpoint structures are 128-byte aligned",
    // tightened to the media's internal line).
    hdr.group_capacity = alignUp(size, 256);

    const std::uint64_t bytes = 256 +
        alignUp(groups * sizeof(GpmCpGroupMeta), 256) +
        std::uint64_t(groups) * 2 * hdr.group_capacity;
    PmRegion region = m.pool().map(path, bytes, /*create=*/true);

    GpmCheckpoint cp(m, region, hdr);
    m.cpuWritePersist(region.offset, &hdr, sizeof(hdr), 1);
    cp.declareDurableIntent(path);
    return cp;
}

GpmCheckpoint
GpmCheckpoint::open(Machine &m, const std::string &path)
{
    PmRegion region = m.pool().region(path);
    GpmCpHeader hdr;
    m.pool().read(region.offset, &hdr, sizeof(hdr));
    GPM_REQUIRE(hdr.magic == kMagic, "'", path, "' is not a gpmcp file");
    m.advance(m.config().syscall_ns);
    GpmCheckpoint cp(m, region, hdr);
    cp.declareDurableIntent(path);
    return cp;
}

/**
 * gpmcheck intent: the double buffers hold data, the per-group meta
 * records (valid index + sequence) are the commit points, and a
 * checkpointed buffer must be strictly durable before the flip that
 * publishes it — flip and copy sharing an epoch would let a crash
 * publish a torn buffer.
 */
void
GpmCheckpoint::declareDurableIntent(const std::string &path) const
{
    PmEventRecorder *rec = m_->pool().recorder();
    if (!rec)
        return;
    rec->declareRange(path + ".bufs", dataOffset(),
                      std::uint64_t(hdr_.groups) * 2 *
                          hdr_.group_capacity,
                      0, PmRangeKind::Data);
    rec->declareRange(path + ".meta", metaOffset(),
                      std::uint64_t(hdr_.groups) *
                          sizeof(GpmCpGroupMeta),
                      0, PmRangeKind::Commit);
    rec->declareOrder(path + ".bufs", path + ".meta", /*strict=*/true);
}

void
GpmCheckpoint::close()
{
    m_->advance(m_->config().syscall_ns);
}

void
GpmCheckpoint::registerData(std::uint32_t group, void *data,
                            std::uint64_t size)
{
    GPM_REQUIRE(group < hdr_.groups, "group ", group, " out of range");
    GPM_REQUIRE(regs_[group].size() < hdr_.elements_per_group,
                "group ", group, " already holds ",
                hdr_.elements_per_group, " elements");
    GPM_REQUIRE(used_[group] + size <= hdr_.group_capacity,
                "group ", group, " capacity exceeded");
    regs_[group].push_back(Registration{data, size, used_[group]});
    used_[group] += size;
}

std::uint64_t
GpmCheckpoint::groupBytes(std::uint32_t group) const
{
    GPM_REQUIRE(group < hdr_.groups, "group out of range");
    return used_[group];
}

std::uint32_t
GpmCheckpoint::sequence(std::uint32_t group) const
{
    return meta(group).seq;
}

std::uint32_t
GpmCheckpoint::validIndex(std::uint32_t group) const
{
    return meta(group).valid_idx;
}

void
GpmCheckpoint::flipHost(std::uint32_t group)
{
    GpmCpGroupMeta mt = meta(group);
    mt.valid_idx ^= 1u;
    mt.seq += 1;
    m_->cpuWritePersist(metaAddr(group), &mt, sizeof(mt), 1);
}

void
GpmCheckpoint::checkpointGpm(std::uint32_t group, std::uint64_t dst,
                             std::uint64_t bytes)
{
    // Copy kernel: each warp streams one contiguous, aligned 4 KiB
    // chunk (lane l writes words l, l+32, ...), so every warp's store
    // stream coalesces into back-to-back 128 B transactions and the
    // media sees aligned sequential runs.
    const std::uint64_t words = ceilDiv(bytes, 4);
    const std::uint32_t warp = m_->config().warp_size;
    const std::uint32_t words_per_thread = 32;
    const std::uint64_t threads_needed =
        ceilDiv(words, words_per_thread);
    const std::uint32_t tpb = 256;
    const std::uint32_t blocks = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, ceilDiv(threads_needed, tpb)));

    const std::uint8_t *src = staging_.data();
    KernelDesc copy;
    copy.name = "gpmcp_checkpoint";
    copy.blocks = blocks;
    copy.block_threads = tpb;
    // Disjoint warp-interleaved stores from host staging: blocks are
    // independent, so the copy fans out across exec workers.
    copy.block_independent = true;
    if (crash_point_ && !crash_in_flip_) {
        copy.crash = *crash_point_;
        crash_point_.reset();
    } else if (crash_frac_ >= 0.0) {
        copy.crash = CrashPoint{static_cast<std::uint64_t>(
            crash_frac_ * static_cast<double>(std::uint64_t(blocks) *
                                              tpb))};
        crash_frac_ = -1.0;
    }
    copy.phases.push_back([=, this](ThreadCtx &ctx) {
        const std::uint64_t chunk_words =
            std::uint64_t(warp) * words_per_thread;
        const std::uint64_t base = ctx.globalWarp() * chunk_words;
        bool wrote = false;
        for (std::uint32_t i = 0; i < words_per_thread; ++i) {
            const std::uint64_t w = base + std::uint64_t(i) * warp +
                                    ctx.lane();
            if (w >= words)
                break;
            std::uint32_t v = 0;
            std::memcpy(&v, src + w * 4,
                        std::min<std::uint64_t>(4, staging_.size() -
                                                       w * 4));
            ctx.pmStore(dst + w * 4, v);
            ctx.hbmTraffic(4);
            wrote = true;
        }
        if (wrote)
            ctx.threadfenceSystem();
    });
    m_->runKernel(copy);

    // Atomic flip: one thread persists the new valid index + sequence.
    GpmCpGroupMeta mt = meta(group);
    mt.valid_idx ^= 1u;
    mt.seq += 1;
    const std::uint64_t meta_addr = metaAddr(group);
    KernelDesc flip;
    flip.name = "gpmcp_flip";
    flip.blocks = 1;
    flip.block_threads = 1;
    if (crash_point_ && crash_in_flip_) {
        flip.crash = *crash_point_;
        crash_point_.reset();
        crash_in_flip_ = false;
    }
    flip.phases.push_back([=](ThreadCtx &ctx) {
        ctx.pmStore(meta_addr, mt);
        ctx.threadfenceSystem();
    });
    m_->runKernel(flip);
}

void
GpmCheckpoint::checkpoint(std::uint32_t group)
{
    GPM_REQUIRE(group < hdr_.groups, "group ", group, " out of range");
    const std::uint64_t bytes = used_[group];
    GPM_REQUIRE(bytes > 0, "checkpoint of empty group ", group);

    telemetry::Span span("checkpoint", "gpmcp_checkpoint");
    if (span.armed()) {
        span.arg("group", std::uint64_t(group));
        span.arg("bytes", bytes);
    }
    telemetry::count("checkpoint.epochs");
    telemetry::count("checkpoint.bytes", bytes);

    // Gather the registered structures into the HBM-side staging
    // buffer (they are contiguous per registration order).
    staging_.assign(alignUp(bytes, 4), 0);
    for (const Registration &r : regs_[group])
        std::memcpy(staging_.data() + r.offset, r.data, r.size);

    const std::uint32_t working = meta(group).valid_idx ^ 1u;
    const std::uint64_t dst = bufferAddr(group, working);

    switch (m_->kind()) {
      case PlatformKind::Gpm:
        // Only toggle DDIO if the caller has not already opened a
        // persistence window around the training loop.
        if (m_->pool().domain() == PersistDomain::McDurable) {
            checkpointGpm(group, dst, bytes);
        } else {
            gpmPersistBegin(*m_);
            checkpointGpm(group, dst, bytes);
            gpmPersistEnd(*m_);
        }
        break;
      case PlatformKind::GpmEadr:
        checkpointGpm(group, dst, bytes);
        break;
      case PlatformKind::GpmNdp: {
        // The kernel stores directly to PM but cannot persist; the
        // CPU flushes afterwards and flips.
        const std::uint64_t words = ceilDiv(bytes, 4);
        const std::uint8_t *src = staging_.data();
        KernelDesc copy;
        copy.name = "gpmcp_checkpoint_ndp";
        copy.blocks = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, ceilDiv(words, 256 * 32)));
        copy.block_threads = 256;
        copy.block_independent = true;
        const std::uint32_t warp = m_->config().warp_size;
        copy.phases.push_back([=, this](ThreadCtx &ctx) {
            const std::uint64_t chunk = std::uint64_t(warp) * 32;
            const std::uint64_t base = ctx.globalWarp() * chunk;
            for (std::uint32_t i = 0; i < 32; ++i) {
                const std::uint64_t w =
                    base + std::uint64_t(i) * warp + ctx.lane();
                if (w >= words)
                    break;
                std::uint32_t v = 0;
                std::memcpy(&v, src + w * 4,
                            std::min<std::uint64_t>(
                                4, staging_.size() - w * 4));
                ctx.pmStore(dst + w * 4, v);
                ctx.hbmTraffic(4);
            }
        });
        m_->runKernel(copy);
        m_->cpuPersistRange(dst, alignUp(bytes, 4), 32);
        flipHost(group);
        break;
      }
      case PlatformKind::CapFs:
        m_->capFsPersist(dst, staging_.data(), bytes, 1);
        flipHost(group);
        break;
      case PlatformKind::CapMm:
      case PlatformKind::CapEadr:
        m_->capMmPersist(dst, staging_.data(), bytes, 32);
        flipHost(group);
        break;
      case PlatformKind::Gpufs: {
        GPM_REQUIRE(m_->gpufsSupported(bytes),
                    "GPUfs cannot hold files of ", bytes, " bytes");
        const std::uint64_t calls =
            std::max<std::uint64_t>(1, ceilDiv(bytes, 1_MiB));
        m_->gpufsWrite(dst, staging_.data(), bytes, calls);
        flipHost(group);
        break;
      }
      case PlatformKind::CpuOnly:
        m_->cpuWritePersist(dst, staging_.data(), bytes, 32);
        flipHost(group);
        break;
    }
}

void
GpmCheckpoint::restore(std::uint32_t group)
{
    GPM_REQUIRE(group < hdr_.groups, "group ", group, " out of range");
    const std::uint64_t bytes = used_[group];
    GPM_REQUIRE(bytes > 0,
                "restore of group ", group,
                " with no registered structures");

    telemetry::Span span("recovery", "gpmcp_restore");
    if (span.armed()) {
        span.arg("group", std::uint64_t(group));
        span.arg("bytes", bytes);
    }
    telemetry::count("recovery.restores");
    telemetry::count("recovery.bytes", bytes);

    const std::uint64_t src = bufferAddr(group, meta(group).valid_idx);
    for (const Registration &r : regs_[group])
        m_->pool().read(src + r.offset, r.data, r.size);

    if (usesGpu(m_->kind())) {
        // A reader kernel pulls the checkpoint straight into HBM.
        m_->nvm().recordRead(bytes);
        m_->advance(m_->config().kernel_launch_ns +
                    std::max(m_->nvm().readTime(bytes),
                             m_->pcie().bulkTime(bytes)));
    } else {
        m_->cpuPmRead(bytes, 4);
    }
}

} // namespace gpm
