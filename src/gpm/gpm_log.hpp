/**
 * @file
 * libGPM logging: Hierarchical Coalesced Logging (HCL) and the
 * conventional distributed (partitioned, lock-based) log it is
 * evaluated against (Table 2, middle block; sections 5.2 and 6.1).
 *
 * HCL (Figures 4 and 5 of the paper):
 *
 *  - The log mirrors the GPU execution hierarchy: the file is divided
 *    into per-threadblock regions, those into per-warp regions, and a
 *    warp's region into 128 B *stripes* of 32 x 4 B lane slots.
 *  - A log entry of E bytes is split into S = ceil(E/4) 4 B chunks;
 *    lane l stores chunk k at stripe k, offset 4*l. When all lanes of
 *    a warp insert together, each chunk-k store coalesces into exactly
 *    one 128 B transaction — S transactions for 32 entries, instead
 *    of one uncoalesced store stream per thread.
 *  - Every thread owns a row index (tail) into its warp's region, so
 *    insertion needs no locks at all. For failure atomicity the entry
 *    is persisted first, then the tail is bumped and persisted; the
 *    tail is the recovery sentinel.
 *
 * The conventional log keeps N partitions; inserting into a partition
 * appends under a lock, so concurrent inserts to one partition
 * serialize — the behaviour Fig 11(b) measures. The serialization
 * penalty is accounted via consumeSerializationNs(), which workload
 * drivers add to the simulated clock after each launch.
 *
 * API deviation from Table 2: where the paper sizes logs with a raw
 * byte count, createHcl takes (entry_bytes, entries-per-thread) and
 * derives the byte size — the same information, made explicit.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/thread_ctx.hpp"
#include "platform/machine.hpp"

namespace gpm {

/** On-PM header of a gpmlog file. */
struct GpmLogHeader {
    std::uint32_t magic = 0;
    std::uint32_t type = 0;           ///< 0 = conventional, 1 = HCL
    std::uint32_t entry_bytes = 0;    ///< HCL: fixed entry size (4 B padded)
    std::uint32_t max_entries = 0;    ///< HCL: per-thread row capacity
    std::uint32_t blocks = 0;         ///< HCL: grid geometry at creation
    std::uint32_t block_threads = 0;
    std::uint32_t warp_size = 0;
    std::uint32_t n_partitions = 0;   ///< conventional: partition count
    std::uint64_t partition_bytes = 0;///< conventional: partition capacity
};

/** Host handle to a PM-resident GPU log (HCL or conventional). */
class GpmLog
{
  public:
    static constexpr std::uint32_t kMagic = 0x47504d4c;  // 'GPML'
    enum Type : std::uint32_t { Conventional = 0, Hcl = 1 };

    /**
     * Create an HCL log for a grid of @p blocks x @p block_threads
     * threads, each able to hold @p max_entries_per_thread entries of
     * @p entry_bytes bytes (gpmlog_create_hcl).
     */
    static GpmLog createHcl(Machine &m, const std::string &path,
                            std::uint32_t entry_bytes,
                            std::uint32_t max_entries_per_thread,
                            std::uint32_t blocks,
                            std::uint32_t block_threads);

    /** Create a conventional distributed log (gpmlog_create_conv). */
    static GpmLog createConv(Machine &m, const std::string &path,
                             std::uint64_t partition_bytes,
                             std::uint32_t n_partitions);

    /** Open an existing log by path (gpmlog_open). */
    static GpmLog open(Machine &m, const std::string &path);

    /** Close the handle (gpmlog_close; bookkeeping time only). */
    void close();

    // ---- device-side operations (call from kernel phases) ---------------

    /**
     * Insert a log entry for the calling thread (gpmlog_insert).
     * Persists the entry, then bumps and persists the tail sentinel.
     *
     * @param partition  Conventional logs only: target partition, or
     *                   -1 to pick thread-id modulo partition count.
     */
    void insert(ThreadCtx &ctx, const void *entry, std::uint32_t size,
                int partition = -1);

    /**
     * Read the calling thread's most recent entry (gpmlog_read).
     * @return false when the thread's log is empty.
     */
    bool read(ThreadCtx &ctx, void *out, std::uint32_t size,
              int partition = -1);

    /** Pop the calling thread's most recent entry (gpmlog_remove);
     *  persists the updated tail. */
    void remove(ThreadCtx &ctx, std::uint32_t size, int partition = -1);

    // ---- host-side operations ----------------------------------------------

    /** Truncate every partition / per-thread tail (gpmlog_clear). */
    void clearAll();

    /** HCL: current tail (entry count) of global thread @p gtid. */
    std::uint32_t tailOf(std::uint64_t gtid) const;

    /** HCL: total entries across all threads. */
    std::uint64_t entryCount() const;

    /** HCL: de-stripe entry @p row of thread @p gtid into @p out
     *  (host-side recovery inspection). */
    void readEntryHost(std::uint64_t gtid, std::uint32_t row, void *out,
                       std::uint32_t size) const;

    /** Conventional: bytes currently used in partition @p p. */
    std::uint64_t partitionBytesUsed(std::uint32_t p) const;

    /**
     * Conventional-log serialization charge accumulated since the last
     * call: max-over-partitions(inserts) * lock cost. Workload drivers
     * advance the machine clock by this after each launch; zero for
     * HCL logs.
     */
    SimNs consumeSerializationNs();

    const GpmLogHeader &header() const { return hdr_; }
    const PmRegion &region() const { return region_; }

    /** HCL address of chunk @p k of entry row @p row for @p gtid —
     *  exposed so tests can verify the striping math of Fig 5. */
    std::uint64_t chunkAddr(std::uint64_t gtid, std::uint32_t row,
                            std::uint32_t k) const;

    /** Total PM bytes an HCL/conventional log of this shape occupies. */
    static std::uint64_t hclRegionBytes(std::uint32_t entry_bytes,
                                        std::uint32_t max_entries,
                                        std::uint32_t blocks,
                                        std::uint32_t block_threads,
                                        std::uint32_t warp_size);

  private:
    GpmLog(Machine &m, PmRegion region, GpmLogHeader hdr);

    // Geometry helpers (HCL).
    std::uint32_t chunksPerEntry() const { return hdr_.entry_bytes / 4; }
    std::uint64_t stripeBytes() const { return hdr_.warp_size * 4ull; }
    std::uint64_t warpRegionBytes() const;
    std::uint32_t warpsPerBlock() const;
    std::uint64_t dataOffset() const { return region_.offset + 256; }
    std::uint64_t tailsOffset() const;
    std::uint64_t tailAddr(std::uint64_t gtid) const;

    void writeHeader(Machine &m);
    void declareDurableIntent(const std::string &path) const;

    Machine *m_;
    PmRegion region_;
    GpmLogHeader hdr_;
    std::vector<std::uint64_t> conv_inserts_;  ///< per-partition counts
};

} // namespace gpm
