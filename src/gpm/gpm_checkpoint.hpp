/**
 * @file
 * libGPM checkpointing (Table 2, bottom block; section 5.3).
 *
 * A checkpoint file holds *groups* of semantically related data
 * structures. The library keeps two copies of each group's data on PM
 * (double buffering): a *consistent* copy and a *working* copy. A
 * checkpoint writes the working copy with a GPU kernel whose warps
 * copy contiguous, 256 B-aligned chunks (maximizing PCIe and Optane
 * bandwidth — the reason checkpointing tops Fig 12), persists it, and
 * then atomically flips a per-group valid index. A crash mid-
 * checkpoint therefore always leaves the previous consistent copy
 * recoverable.
 *
 * Restore copies the consistent buffer back into the registered
 * volatile structures; as in the paper, the mapping is positional, so
 * structures must be re-registered in creation order before restoring
 * (pointer-based structures cannot be checkpointed).
 *
 * On non-GPM platforms the same API routes through the corresponding
 * CAP persist path, which is how the checkpointing rows of Figures 9
 * and 10 compare platforms over identical workload code.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/kernel.hpp"
#include "platform/machine.hpp"

namespace gpm {

/** On-PM header of a gpmcp file. */
struct GpmCpHeader {
    std::uint32_t magic = 0;
    std::uint32_t groups = 0;
    std::uint32_t elements_per_group = 0;  ///< registration slots
    std::uint32_t pad = 0;
    std::uint64_t group_capacity = 0;      ///< bytes per group per buffer
};

/** Per-group metadata persisted next to the header. */
struct GpmCpGroupMeta {
    std::uint32_t valid_idx = 0;  ///< which buffer is consistent (0/1)
    std::uint32_t seq = 0;        ///< checkpoint sequence number
};

/** Host handle to a PM-resident checkpoint (gpmcp_*). */
class GpmCheckpoint
{
  public:
    static constexpr std::uint32_t kMagic = 0x47504d43;  // 'GPMC'

    /**
     * Create a checkpoint file able to hold @p size bytes per group
     * across @p groups groups, each accepting up to @p elements
     * registered structures (gpmcp_create).
     */
    static GpmCheckpoint create(Machine &m, const std::string &path,
                                std::uint64_t size,
                                std::uint32_t elements,
                                std::uint32_t groups);

    /** Open an existing checkpoint file (gpmcp_open). */
    static GpmCheckpoint open(Machine &m, const std::string &path);

    /** Close the handle (gpmcp_close). */
    void close();

    /**
     * Register a volatile data structure with @p group (gpmcp_register).
     * Layout within the group is positional: registration order at
     * restore time must match the order used when checkpointing.
     */
    void registerData(std::uint32_t group, void *data,
                      std::uint64_t size);

    /**
     * Checkpoint every structure registered with @p group
     * (gpmcp_checkpoint): copy to the working buffer, persist, flip.
     */
    void checkpoint(std::uint32_t group);

    /** Restore @p group's structures from the consistent buffer
     *  (gpmcp_restore). */
    void restore(std::uint32_t group);

    /**
     * Fault injection: make the next checkpoint's copy kernel crash
     * after @p frac of its thread executions (GPM platforms only).
     * The KernelCrashed exception propagates to the caller, which
     * should then invoke PmPool::crash(); the flip never happens, so
     * the previous consistent copy must survive.
     */
    void
    armCrashNextCheckpoint(double frac)
    {
        GPM_REQUIRE(frac >= 0.0 && frac <= 1.0, "bad crash fraction");
        crash_frac_ = frac;
    }

    /**
     * Fault injection with a full crash-point descriptor. With
     * @p in_flip false the descriptor arms the next checkpoint's copy
     * kernel; with @p in_flip true it arms the flip kernel instead —
     * CrashPoint::afterThreadPhases(0) there dies *between* copy and
     * flip (data fully persisted, valid index never advanced), the
     * classic double-buffering boundary.
     */
    void
    armCrashNextCheckpoint(const CrashPoint &point, bool in_flip = false)
    {
        crash_point_ = point;
        crash_in_flip_ = in_flip;
    }

    /** Sequence number of the last completed checkpoint of @p group. */
    std::uint32_t sequence(std::uint32_t group) const;

    /** Which buffer index is currently consistent for @p group. */
    std::uint32_t validIndex(std::uint32_t group) const;

    /** Bytes registered so far in @p group. */
    std::uint64_t groupBytes(std::uint32_t group) const;

    const GpmCpHeader &header() const { return hdr_; }

    /** PM address of buffer @p buf (0/1) of @p group (test hook). */
    std::uint64_t bufferAddr(std::uint32_t group,
                             std::uint32_t buf) const;

  private:
    struct Registration {
        void *data;
        std::uint64_t size;
        std::uint64_t offset;  ///< within the group buffer
    };

    GpmCheckpoint(Machine &m, PmRegion region, GpmCpHeader hdr);

    std::uint64_t metaOffset() const { return region_.offset + 256; }
    std::uint64_t dataOffset() const;
    std::uint64_t metaAddr(std::uint32_t group) const;
    GpmCpGroupMeta meta(std::uint32_t group) const;

    /** GPU copy kernel + in-kernel persistence + GPU flip. */
    void checkpointGpm(std::uint32_t group, std::uint64_t dst,
                       std::uint64_t bytes);
    /** Host-side flip of the valid index (CAP paths). */
    void flipHost(std::uint32_t group);
    /** Declare ranges + order to an attached gpmcheck recorder. */
    void declareDurableIntent(const std::string &path) const;

    Machine *m_;
    PmRegion region_;
    GpmCpHeader hdr_;
    std::vector<std::vector<Registration>> regs_;  ///< per group
    std::vector<std::uint64_t> used_;              ///< bytes per group
    std::vector<std::uint8_t> staging_;            ///< HBM-side gather
    double crash_frac_ = -1.0;  ///< armed fault-injection point (<0: off)
    std::optional<CrashPoint> crash_point_;  ///< descriptor-armed point
    bool crash_in_flip_ = false;  ///< aim crash_point_ at the flip kernel
};

} // namespace gpm
