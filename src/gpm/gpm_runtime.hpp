/**
 * @file
 * libGPM persistency primitives (Table 2, first block).
 *
 * These are the CPU- and GPU-side entry points the paper's libGPM
 * exposes for mapping PM into the GPU's address space and for
 * guaranteeing persistence:
 *
 *   CPU:  gpm_map / gpm_unmap / gpm_persist_begin / gpm_persist_end
 *   GPU:  gpm_persist
 *
 * gpm_map memory-maps a PM-resident file (PMDK libpmem in the real
 * system) and registers it with CUDA's UVA so kernels can load/store
 * it directly; here that is a named-region allocation in the PmPool.
 * gpm_persist_begin/_end bracket the window where DDIO is disabled so
 * that a system-scope fence implies durability; gpm_persist is that
 * fence (__threadfence_system).
 */
#pragma once

#include <string>

#include "gpusim/thread_ctx.hpp"
#include "platform/machine.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

/**
 * Map (create or open) the PM-resident file @p path of @p size bytes
 * into the GPU-visible address space.
 *
 * @return the mapped region; its offset is the base "device pointer".
 */
inline PmRegion
gpmMap(Machine &m, const std::string &path, std::uint64_t size,
       bool create)
{
    // mmap + cudaHostRegister-style UVA setup: two syscalls' worth.
    m.advance(2 * m.config().syscall_ns);
    return m.pool().map(path, size, create);
}

/** Unmap a region previously mapped with gpmMap (bookkeeping only —
 *  contents stay durable on the simulated PM, as with a real file). */
inline void
gpmUnmap(Machine &m, const std::string &path)
{
    GPM_REQUIRE(m.pool().hasRegion(path),
                "gpm_unmap of unknown region '", path, "'");
    m.advance(m.config().syscall_ns);
}

/**
 * Enter a persistence region: disable DDIO for the GPU so that
 * gpm_persist (system-scope fence) completes only at the ADR-protected
 * memory controller. Typically called right before a kernel launch.
 */
inline void
gpmPersistBegin(Machine &m)
{
    m.ddioOff();
}

/** Leave the persistence region: re-enable DDIO. */
inline void
gpmPersistEnd(Machine &m)
{
    m.ddioOn();
}

/**
 * Device-side persist: guarantee every prior PM store of this thread
 * is durable (system-scope fence; Listing/Fig 6 uses this after each
 * KVS update).
 *
 * @return true when durability was actually achieved — false in a
 *         DDIO-enabled configuration, where the fence only ordered.
 */
inline bool
gpmPersist(ThreadCtx &ctx)
{
    return ctx.threadfenceSystem();
}

} // namespace gpm
