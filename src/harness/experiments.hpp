/**
 * @file
 * Named experiment configurations shared by the benchmark binaries.
 *
 * Each GPMbench workload gets one canonical parameter set (Table 1,
 * scaled as documented in DESIGN.md), and runBench() executes any
 * (workload, platform) cell of Figures 9/10/12 and Tables 4/5 —
 * benches differ only in which cells they print and how.
 */
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cpubaseline/cpu_apps.hpp"
#include "cpubaseline/cpu_kvs.hpp"
#include "memsim/sim_config.hpp"
#include "platform/platform_kind.hpp"
#include "workloads/bfs.hpp"
#include "workloads/blackscholes.hpp"
#include "workloads/cfd.hpp"
#include "workloads/db.hpp"
#include "workloads/dnn.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/kvs.hpp"
#include "workloads/prefix_sum.hpp"
#include "workloads/srad.hpp"

namespace gpm::bench {

/** The evaluation's workload axis (Fig 9's x-axis, split gpKVS/gpDB). */
enum class Bench {
    Kvs,     ///< gpKVS, 100 % SETs
    Kvs95,   ///< gpKVS, 95:5 GET:SET
    DbInsert,
    DbUpdate,
    Dnn,
    Cfd,
    Blk,
    Hotspot,
    Bfs,
    Srad,
    PrefixSum,
};

constexpr Bench kAllBenches[] = {
    Bench::Kvs,  Bench::Kvs95,   Bench::DbInsert, Bench::DbUpdate,
    Bench::Dnn,  Bench::Cfd,     Bench::Blk,      Bench::Hotspot,
    Bench::Bfs,  Bench::Srad,    Bench::PrefixSum,
};

/** Paper-style label ("gpKVS (95:5)", "gpDB (I)", ...). */
std::string benchName(Bench b);

/** Workload class (Fig 9's cluster labels). */
std::string benchClass(Bench b);

// ---- CLI keys (shared by gpmbench and gpmtrace) -------------------------

/** One workload's short command-line key. */
struct BenchKey {
    const char *key;
    Bench bench;
};

/** One platform's short command-line key. */
struct PlatformKey {
    const char *key;
    PlatformKind kind;
};

/** Every workload key, in the canonical listing order. */
std::span<const BenchKey> benchKeys();

/** Every platform key, in the canonical listing order. */
std::span<const PlatformKey> platformKeys();

/** Workload for CLI key @p key ("kvs", "dbi", ...), if any. */
std::optional<Bench> benchFromKey(std::string_view key);

/** Platform for CLI key @p key ("gpm", "capfs", ...), if any. */
std::optional<PlatformKind> platformFromKey(std::string_view key);

/** The CLI key naming @p b (inverse of benchFromKey). */
const char *benchKey(Bench b);

/** The CLI key naming @p kind (inverse of platformFromKey). */
const char *platformKey(PlatformKind kind);

/**
 * The time Figures 9/10 compare for this workload: total operation
 * time, except for the checkpointing class, whose bars measure the
 * checkpoint operation itself ("Checkpointing speeds up on GPM by
 * 11-18x" — the 19-122 % total-time numbers are quoted separately).
 */
inline SimNs
comparableNs(Bench b, const WorkloadResult &r)
{
    return benchClass(b) == "Checkpointing" && r.persist_ns > 0
        ? r.persist_ns
        : r.op_ns;
}

// ---- canonical parameter sets (scaled Table 1) --------------------------

GpKvsParams kvsParams();
GpKvsParams kvs95Params();
GpDbParams dbParams();
IterativeParams iterSchedule();
DnnParams dnnParams();
CfdParams cfdParams();
BlkParams blkParams();
HotspotParams hotspotParams();
BfsParams bfsParams();
SradParams sradParams();
PsParams psParams();
CpuKvsParams cpuKvsParams();

/** PM pool size for the canonical runs. */
std::size_t pmCapacity();

/**
 * Canonical SimConfig for bench drivers: testbed defaults with the
 * executor worker count taken from the GPM_EXEC_WORKERS environment
 * variable (unset or invalid -> 1, the sequential reference; 0 ->
 * one worker per hardware thread). Worker count never changes any
 * modelled result — only host wall-clock — so reading it from the
 * environment is safe for every driver.
 */
SimConfig benchConfig();

/**
 * Execute one (workload, platform) cell with the canonical params.
 * Unsupported combinations (GPUfs x fine-grain) come back with
 * supported == false.
 */
WorkloadResult runBench(Bench b, PlatformKind kind, const SimConfig &cfg,
                        std::uint64_t seed = 1);

/** One cell of a figure grid. */
struct BenchCell {
    Bench b = Bench::Kvs;
    PlatformKind kind = PlatformKind::Gpm;
    std::uint64_t seed = 1;
};

/**
 * Sweep a figure's (workload, platform) cells across @p jobs host
 * workers (0 = one per hardware thread). Every cell constructs its
 * own Machine, so cells are independent; results land in cell order
 * and every modelled number is bit-identical at any @p jobs — only
 * host wall-clock changes. The canonical fig9/fig10 grid loops and
 * gpmbench's matrix command all funnel through here.
 */
std::vector<WorkloadResult> runBenchCells(
    const std::vector<BenchCell> &cells, const SimConfig &cfg,
    int jobs);

/**
 * Crash-and-recover run for Table 5 (transactional + checkpointing
 * workloads; native ones recover in-place and are skipped, as in the
 * paper). recovery_ns and op_ns fill the restoration-latency ratio.
 */
WorkloadResult runBenchWithCrash(Bench b, const SimConfig &cfg,
                                 std::uint64_t seed = 1);

} // namespace gpm::bench
