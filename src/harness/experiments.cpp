#include "harness/experiments.hpp"

#include <cstdlib>

#include "common/env.hpp"
#include "harness/sweep.hpp"
#include "memsim/media_backend.hpp"
#include "workloads/iterative.hpp"

namespace gpm::bench {

namespace {

constexpr BenchKey kBenchKeys[] = {
    {"kvs", Bench::Kvs},        {"kvs95", Bench::Kvs95},
    {"dbi", Bench::DbInsert},   {"dbu", Bench::DbUpdate},
    {"dnn", Bench::Dnn},        {"cfd", Bench::Cfd},
    {"blk", Bench::Blk},        {"hs", Bench::Hotspot},
    {"bfs", Bench::Bfs},        {"srad", Bench::Srad},
    {"ps", Bench::PrefixSum},
};

constexpr PlatformKey kPlatformKeys[] = {
    {"gpm", PlatformKind::Gpm},
    {"ndp", PlatformKind::GpmNdp},
    {"eadr", PlatformKind::GpmEadr},
    {"capfs", PlatformKind::CapFs},
    {"capmm", PlatformKind::CapMm},
    {"capeadr", PlatformKind::CapEadr},
    {"gpufs", PlatformKind::Gpufs},
};

} // namespace

std::span<const BenchKey>
benchKeys()
{
    return kBenchKeys;
}

std::span<const PlatformKey>
platformKeys()
{
    return kPlatformKeys;
}

std::optional<Bench>
benchFromKey(std::string_view key)
{
    for (const BenchKey &n : kBenchKeys) {
        if (key == n.key)
            return n.bench;
    }
    return std::nullopt;
}

std::optional<PlatformKind>
platformFromKey(std::string_view key)
{
    for (const PlatformKey &n : kPlatformKeys) {
        if (key == n.key)
            return n.kind;
    }
    return std::nullopt;
}

const char *
benchKey(Bench b)
{
    for (const BenchKey &n : kBenchKeys) {
        if (n.bench == b)
            return n.key;
    }
    return "?";
}

const char *
platformKey(PlatformKind kind)
{
    for (const PlatformKey &n : kPlatformKeys) {
        if (n.kind == kind)
            return n.key;
    }
    return "?";
}

std::string
benchName(Bench b)
{
    switch (b) {
      case Bench::Kvs: return "gpKVS";
      case Bench::Kvs95: return "gpKVS (95:5)";
      case Bench::DbInsert: return "gpDB (I)";
      case Bench::DbUpdate: return "gpDB (U)";
      case Bench::Dnn: return "DNN";
      case Bench::Cfd: return "CFD";
      case Bench::Blk: return "BLK";
      case Bench::Hotspot: return "HS";
      case Bench::Bfs: return "BFS";
      case Bench::Srad: return "SRAD";
      case Bench::PrefixSum: return "PS";
    }
    return "?";
}

std::string
benchClass(Bench b)
{
    switch (b) {
      case Bench::Kvs:
      case Bench::Kvs95:
      case Bench::DbInsert:
      case Bench::DbUpdate:
        return "Transactional";
      case Bench::Dnn:
      case Bench::Cfd:
      case Bench::Blk:
      case Bench::Hotspot:
        return "Checkpointing";
      default:
        return "Native";
    }
}

GpKvsParams
kvsParams()
{
    GpKvsParams p;
    p.n_sets = 1u << 18;   // 32 MiB store
    p.batch_ops = 16384;
    p.batches = 5;
    return p;
}

GpKvsParams
kvs95Params()
{
    GpKvsParams p = kvsParams();
    p.get_ratio = 0.95;
    return p;
}

GpDbParams
dbParams()
{
    GpDbParams p;
    p.initial_rows = 1u << 18;  // ~15 MiB table
    p.insert_rows = 16384;
    p.update_rows = 8192;
    p.insert_batches = 4;
    p.update_batches = 4;
    return p;
}

IterativeParams
iterSchedule()
{
    IterativeParams p;
    p.iterations = 20;
    p.checkpoint_every = 5;
    return p;
}

DnnParams
dnnParams()
{
    return DnnParams{};
}

CfdParams
cfdParams()
{
    return CfdParams{};
}

BlkParams
blkParams()
{
    return BlkParams{};
}

HotspotParams
hotspotParams()
{
    return HotspotParams{};
}

BfsParams
bfsParams()
{
    BfsParams p;
    p.grid_w = 48;
    p.grid_h = 512;   // pure lattice: hop diameter ~558, matching a
    p.shortcuts = 0;  // road network's thousands of BFS iterations
    return p;
}

SradParams
sradParams()
{
    SradParams p;
    p.width = 192;
    p.height = 96;
    p.iterations = 6;
    return p;
}

PsParams
psParams()
{
    PsParams p;
    p.blocks = 128;
    p.block_threads = 256;
    p.elems_per_thread = 16;
    return p;
}

CpuKvsParams
cpuKvsParams()
{
    CpuKvsParams p;
    p.n_sets = 1u << 17;
    p.batch_ops = 16384;
    p.batches = 5;
    return p;
}

std::size_t
pmCapacity()
{
    return 192_MiB;
}

SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.exec_workers = execWorkersFromEnv(cfg.exec_workers);
    applyMediaConfig(cfg, mediaFromEnv(cfg.media));
    return cfg;
}

WorkloadResult
runBench(Bench b, PlatformKind kind, const SimConfig &cfg,
         std::uint64_t seed)
{
    Machine m(cfg, kind, pmCapacity(), seed);
    switch (b) {
      case Bench::Kvs: {
        GpKvs w(m, kvsParams());
        return w.run();
      }
      case Bench::Kvs95: {
        GpKvs w(m, kvs95Params());
        return w.run();
      }
      case Bench::DbInsert: {
        GpDb w(m, dbParams());
        return w.run(GpDb::TxnKind::Insert);
      }
      case Bench::DbUpdate: {
        GpDb w(m, dbParams());
        return w.run(GpDb::TxnKind::Update);
      }
      case Bench::Dnn: {
        DnnApp a(dnnParams());
        return a.run(m, iterSchedule());
      }
      case Bench::Cfd: {
        CfdApp a(cfdParams());
        return a.run(m, iterSchedule());
      }
      case Bench::Blk: {
        BlackScholesApp a(blkParams());
        return a.run(m, iterSchedule());
      }
      case Bench::Hotspot: {
        HotspotApp a(hotspotParams());
        return a.run(m, iterSchedule());
      }
      case Bench::Bfs: {
        GpBfs w(m, bfsParams());
        return w.run();
      }
      case Bench::Srad: {
        GpSrad w(m, sradParams());
        return w.run();
      }
      case Bench::PrefixSum: {
        GpPrefixSum w(m, psParams());
        return w.run();
      }
    }
    panic("unknown bench");
}

std::vector<WorkloadResult>
runBenchCells(const std::vector<BenchCell> &cells, const SimConfig &cfg,
              int jobs)
{
    SweepOptions opt;
    opt.workers = jobs;
    return sweep(
        cells,
        [&](SweepLane &lane, const BenchCell &cell) {
            lane.count("bench.cells");
            return runBench(cell.b, cell.kind, cfg, cell.seed);
        },
        opt);
}

WorkloadResult
runBenchWithCrash(Bench b, const SimConfig &cfg, std::uint64_t seed)
{
    Machine m(cfg, PlatformKind::Gpm, pmCapacity(), seed);
    switch (b) {
      case Bench::Kvs: {
        GpKvs w(m, kvsParams());
        // Worst case: crash just before the batch commits (paper's
        // Table 5 methodology).
        return w.runWithCrash(/*crash_batch=*/1, /*frac=*/0.98, 0.0);
      }
      case Bench::Kvs95: {
        GpKvs w(m, kvs95Params());
        return w.runWithCrash(1, 0.98, 0.0);
      }
      case Bench::DbInsert: {
        GpDb w(m, dbParams());
        return w.runWithCrash(GpDb::TxnKind::Insert, 1, 0.98, 0.0);
      }
      case Bench::DbUpdate: {
        GpDb w(m, dbParams());
        return w.runWithCrash(GpDb::TxnKind::Update, 1, 0.98, 0.0);
      }
      case Bench::Dnn: {
        DnnApp a(dnnParams());
        return a.runWithCrashRestore(m, iterSchedule(), 14, false, 0.0);
      }
      case Bench::Cfd: {
        CfdApp a(cfdParams());
        return a.runWithCrashRestore(m, iterSchedule(), 14, false, 0.0);
      }
      case Bench::Blk: {
        BlackScholesApp a(blkParams());
        return a.runWithCrashRestore(m, iterSchedule(), 14, false, 0.0);
      }
      case Bench::Hotspot: {
        HotspotApp a(hotspotParams());
        return a.runWithCrashRestore(m, iterSchedule(), 14, false, 0.0);
      }
      default:
        // Native workloads embed recovery in the app itself and have
        // no separate recovery kernel (Table 5 skips them).
        return WorkloadResult{};
    }
}

} // namespace gpm::bench
