/**
 * @file
 * Deterministic scenario-parallel sweep engine.
 *
 * The paper's central lever is parallelism that hides persist latency
 * (section 4); the reproduction's own dominant wall-clock paths are
 * one level up — thousand-cell sweeps (the crash-torture matrix, the
 * Figure 9/10 grids, simperf's stages) where every cell constructs a
 * private Machine + PmPool world and shares nothing. This engine
 * farms those cells across host threads while keeping every report
 * bit-identical to the sequential sweep:
 *
 *  - a persistent worker pool shared by every sweep() in the process
 *    (workers park between sweeps; the pool grows to the widest
 *    request and is joined at exit),
 *  - an atomic index queue: workers claim the next unclaimed item, so
 *    load balance is dynamic and no item is ever run twice,
 *  - canonical-order result slots: item i's result lands in
 *    results[i] whatever thread ran it and whenever it finished, so a
 *    downstream reduction (report rows, FNV signatures, float sums)
 *    visits results in the same order at any worker count,
 *  - per-worker telemetry shards: SweepLane::count() accumulates into
 *    a plain per-worker buffer, folded into the installed telemetry
 *    session once at the sweep boundary — no registry contention on
 *    the sweep hot path,
 *  - two error policies: FailFast (first exception aborts remaining
 *    claims and rethrows on the caller) and CollectAll (exceptions
 *    are recorded per item, index-ordered, and the sweep finishes).
 *
 * Determinism argument: a sweep item must own its world (construct
 * its own Machine/PmPool/workload, touch no shared mutable state
 * beyond the engine's own slots). Then any assignment of items to
 * threads produces the same per-item results, and canonical-order
 * slots make every reduction order-independent of the schedule.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpm {

/** How a sweep reacts to an item throwing. */
struct SweepOptions {
    /** Worker threads including the caller; 0 = one per hardware
     *  thread, 1 = run inline on the caller (the sequential
     *  reference). Clamped to the item count. */
    int workers = 1;

    enum class OnError {
        FailFast,   ///< abort remaining claims, rethrow first error
        CollectAll, ///< record errors per item, finish the sweep
    };
    OnError on_error = OnError::FailFast;
};

/** One item's failure under SweepOptions::OnError::CollectAll. */
struct SweepError {
    std::size_t index = 0;  ///< the item that threw
    std::string what;       ///< exception message
};

namespace detail {
struct SweepAccess;
} // namespace detail

/**
 * Per-worker context handed to every item. Counter bumps accumulate
 * in a worker-private shard and fold into the installed telemetry
 * session (if any) exactly once, at the sweep boundary.
 */
class SweepLane
{
  public:
    /** Worker index in [0, workers); 0 is the calling thread. */
    unsigned worker() const { return worker_; }

    /** Shard-buffered counter bump (no-op when telemetry is off). */
    void count(std::string_view name, std::uint64_t n = 1);

  private:
    friend struct detail::SweepAccess;

    explicit SweepLane(unsigned worker, bool telemetry_on)
        : worker_(worker), telemetry_on_(telemetry_on)
    {
    }

    /** Fold the shard into the session registry and clear it. */
    void fold();

    unsigned worker_;
    bool telemetry_on_;
    std::vector<std::pair<std::string, std::uint64_t>> counts_;
};

namespace detail {

/**
 * Type-erased driver: run fn(lane, i) for every i in [0, n) across
 * the process-wide worker pool. Returns the index-ordered error list
 * (CollectAll) or throws the first error (FailFast).
 */
std::vector<SweepError> sweepIndices(
    std::size_t n, const std::function<void(SweepLane &, std::size_t)> &fn,
    const SweepOptions &opt);

} // namespace detail

/**
 * Sweep [0, n): results[i] = fn(lane, i), canonical order.
 *
 * Under CollectAll a failed item leaves a default-constructed R in
 * its slot and an entry in @p errors (index-ordered); pass nullptr
 * to drop the list (slots still default-construct).
 */
template <typename Fn>
auto
sweep(std::size_t n, Fn &&fn, const SweepOptions &opt = {},
      std::vector<SweepError> *errors = nullptr)
    -> std::vector<decltype(fn(std::declval<SweepLane &>(),
                               std::size_t(0)))>
{
    using R = decltype(fn(std::declval<SweepLane &>(), std::size_t(0)));
    std::vector<R> results(n);
    std::vector<SweepError> errs = detail::sweepIndices(
        n,
        [&](SweepLane &lane, std::size_t i) { results[i] = fn(lane, i); },
        opt);
    if (errors != nullptr)
        *errors = std::move(errs);
    return results;
}

/**
 * Sweep a pre-enumerated item vector: results[i] = fn(lane, items[i]).
 * The canonical result order is the item order, regardless of which
 * worker ran which item or in what order they completed.
 */
template <typename T, typename Fn>
auto
sweep(const std::vector<T> &items, Fn &&fn, const SweepOptions &opt = {},
      std::vector<SweepError> *errors = nullptr)
    -> std::vector<decltype(fn(std::declval<SweepLane &>(), items[0]))>
{
    return sweep(
        items.size(),
        [&](SweepLane &lane, std::size_t i) { return fn(lane, items[i]); },
        opt, errors);
}

} // namespace gpm
