#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "telemetry/telemetry.hpp"

namespace gpm {

void
SweepLane::count(std::string_view name, std::uint64_t n)
{
    if (!telemetry_on_)
        return;
    for (auto &[key, value] : counts_) {
        if (key == name) {
            value += n;
            return;
        }
    }
    counts_.emplace_back(std::string(name), n);
}

void
SweepLane::fold()
{
    if (counts_.empty())
        return;
    if (telemetry::Session *s = telemetry::Session::current()) {
        for (const auto &[key, value] : counts_)
            s->metrics.add(key, value);
    }
    counts_.clear();
}

namespace detail {

/** The engine's backdoor into SweepLane's private lifecycle. */
struct SweepAccess {
    static SweepLane
    make(unsigned worker, bool telemetry_on)
    {
        return SweepLane(worker, telemetry_on);
    }

    static void fold(SweepLane &lane) { lane.fold(); }
};

} // namespace detail

namespace {

/** Set while a thread is inside a sweep's claim loop; a nested
 *  sweep() from within an item must run inline (a pool worker waiting
 *  on the pool would deadlock). */
thread_local bool t_in_sweep = false;

using SweepFn = std::function<void(SweepLane &, std::size_t)>;

/**
 * The process-wide pool. Workers park on a condition variable between
 * sweeps; run() grows the pool to the requested width, publishes the
 * work, participates in the claim loop itself, and returns once every
 * participating lane has drained. Sweeps are serialized: the pool has
 * one generation of work at a time.
 */
class SweepPool
{
  public:
    static SweepPool &
    instance()
    {
        static SweepPool pool;
        return pool;
    }

    ~SweepPool()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    std::vector<SweepError>
    run(std::size_t n, const SweepFn &fn, const SweepOptions &opt)
    {
        unsigned workers =
            opt.workers == 0
                ? std::max(1u, std::thread::hardware_concurrency())
                : static_cast<unsigned>(std::max(opt.workers, 1));
        workers = static_cast<unsigned>(
            std::min<std::size_t>(workers, std::max<std::size_t>(n, 1)));

        if (workers <= 1 || t_in_sweep)
            return runInline(n, fn, opt);

        std::lock_guard<std::mutex> run_lock(run_m_);
        {
            std::unique_lock<std::mutex> lock(m_);
            while (workers_.size() + 1 < workers) {
                const unsigned lane =
                    static_cast<unsigned>(workers_.size()) + 1;
                workers_.emplace_back(
                    [this, lane] { workerLoop(lane); });
            }
            fn_ = &fn;
            items_ = n;
            on_error_ = opt.on_error;
            telemetry_on_ = telemetry::enabled();
            next_.store(0, std::memory_order_relaxed);
            abort_.store(false, std::memory_order_relaxed);
            first_error_ = nullptr;
            errors_.clear();
            participants_ = workers;
            active_ = workers;
            ++generation_;
        }
        wake_cv_.notify_all();

        claimLoop(0);
        {
            std::unique_lock<std::mutex> lock(m_);
            --active_;
            done_cv_.wait(lock, [this] { return active_ == 0; });
            fn_ = nullptr;
        }

        if (first_error_)
            std::rethrow_exception(first_error_);
        // Completion order is scheduling noise; the error list is part
        // of the sweep's deterministic output, so index-order it.
        std::sort(errors_.begin(), errors_.end(),
                  [](const SweepError &a, const SweepError &b) {
                      return a.index < b.index;
                  });
        return std::move(errors_);
    }

  private:
    std::vector<SweepError>
    runInline(std::size_t n, const SweepFn &fn, const SweepOptions &opt)
    {
        SweepLane lane = detail::SweepAccess::make(0, telemetry::enabled());
        std::vector<SweepError> errors;
        std::exception_ptr first;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(lane, i);
            } catch (...) {
                if (opt.on_error == SweepOptions::OnError::FailFast) {
                    first = std::current_exception();
                    break;
                }
                errors.emplace_back(i, describeCurrentException());
            }
        }
        detail::SweepAccess::fold(lane);
        if (first)
            std::rethrow_exception(first);
        return errors;
    }

    static std::string
    describeCurrentException()
    {
        try {
            throw;
        } catch (const std::exception &e) {
            return e.what();
        } catch (...) {
            return "unknown exception";
        }
    }

    void
    claimLoop(unsigned worker)
    {
        t_in_sweep = true;
        SweepLane lane = detail::SweepAccess::make(worker, telemetry_on_);
        std::size_t i;
        while (!abort_.load(std::memory_order_relaxed) &&
               (i = next_.fetch_add(1, std::memory_order_relaxed)) <
                   items_) {
            try {
                (*fn_)(lane, i);
            } catch (...) {
                if (on_error_ == SweepOptions::OnError::FailFast) {
                    std::lock_guard<std::mutex> lock(m_);
                    if (!first_error_)
                        first_error_ = std::current_exception();
                    abort_.store(true, std::memory_order_relaxed);
                } else {
                    std::string what = describeCurrentException();
                    std::lock_guard<std::mutex> lock(m_);
                    errors_.emplace_back(i, std::move(what));
                }
            }
        }
        // Fold this worker's telemetry shard exactly once, at the
        // sweep boundary (the registry's adds are thread-safe and
        // commutative, so fold order never shows in a snapshot).
        detail::SweepAccess::fold(lane);
        t_in_sweep = false;
    }

    void
    workerLoop(unsigned lane)
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(m_);
        for (;;) {
            wake_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (lane >= participants_)
                continue;  // parked pool width > this sweep's width
            lock.unlock();
            claimLoop(lane);
            lock.lock();
            if (--active_ == 0)
                done_cv_.notify_all();
        }
    }

    std::mutex run_m_;  ///< serializes whole sweeps

    std::mutex m_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    unsigned active_ = 0;
    unsigned participants_ = 0;

    const SweepFn *fn_ = nullptr;
    std::size_t items_ = 0;
    SweepOptions::OnError on_error_ = SweepOptions::OnError::FailFast;
    bool telemetry_on_ = false;
    std::atomic<std::size_t> next_{0};
    std::atomic<bool> abort_{false};
    std::exception_ptr first_error_;
    std::vector<SweepError> errors_;

    std::vector<std::thread> workers_;
};

} // namespace

namespace detail {

std::vector<SweepError>
sweepIndices(std::size_t n, const SweepFn &fn, const SweepOptions &opt)
{
    if (n == 0)
        return {};
    return SweepPool::instance().run(n, fn, opt);
}

} // namespace detail

} // namespace gpm
