/**
 * @file
 * Seeded key-distribution generators for load generation.
 *
 * Two shapes cover the serving benchmarks:
 *
 *  - Uniform: every rank in [0, n) equally likely.
 *  - Zipfian: rank r drawn with probability proportional to
 *    1 / (r+1)^theta (theta defaults to the YCSB-standard 0.99),
 *    using the Gray et al. rejection-free inversion ("Quickly
 *    generating billion-record synthetic databases", SIGMOD '94) with
 *    the generalized harmonic number zeta(n, theta) precomputed once
 *    at construction.
 *
 * Ranks are *popularity ranks*: rank 0 is the hottest key. A serving
 * workload must not store hot keys adjacently (that would turn skew
 * into artificial spatial locality), so keyForRank() scrambles ranks
 * through a splitmix64 finalizer into a sparse 64-bit key space,
 * pinned non-zero because GpKvs reserves key 0 as the empty-slot
 * sentinel. The scramble is a fixed bijection-ish map (collisions are
 * astronomically unlikely for the rank counts used here and harmless
 * to oracle correctness either way: two ranks mapping to one key
 * simply alias one logical key).
 *
 * Determinism contract: a KeyDist owns no hidden state beyond its Rng,
 * so one generator drawn from sequentially is bit-reproducible from
 * its seed — the property the serving engine's ack-stream signature
 * relies on.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace gpm {

/** Key-popularity shape. */
enum class KeyDistKind { Uniform, Zipfian };

/** Parse "uniform" / "zipfian"; fatal() on anything else. */
KeyDistKind keyDistKindFromName(const char *name);

/** Canonical name of @p k. */
const char *keyDistKindName(KeyDistKind k);

/** Seeded rank generator over [0, n) with uniform or zipfian shape. */
class KeyDist
{
  public:
    /** YCSB-standard zipfian skew. */
    static constexpr double kDefaultTheta = 0.99;

    /**
     * @param kind   Popularity shape.
     * @param n      Number of distinct ranks (keys), >= 1.
     * @param seed   Rng seed (the caller typically splits a stream id).
     * @param theta  Zipfian exponent in (0, 1); ignored for Uniform.
     */
    KeyDist(KeyDistKind kind, std::uint64_t n, std::uint64_t seed,
            double theta = kDefaultTheta);

    /** Draw the next popularity rank in [0, n). */
    std::uint64_t nextRank();

    /** Draw the next key (scrambled rank, never 0). */
    std::uint64_t next() { return keyForRank(nextRank()); }

    /**
     * The sparse non-zero 64-bit key of popularity rank @p rank —
     * a pure function, usable by oracles without a generator.
     */
    static std::uint64_t keyForRank(std::uint64_t rank);

    std::uint64_t n() const { return n_; }
    KeyDistKind kind() const { return kind_; }

  private:
    KeyDistKind kind_;
    std::uint64_t n_;
    Rng rng_;
    // Zipfian (Gray et al.) precomputed constants.
    double theta_ = 0.0;
    double zetan_ = 0.0;   ///< zeta(n, theta)
    double alpha_ = 0.0;   ///< 1 / (1 - theta)
    double eta_ = 0.0;     ///< (1 - (2/n)^(1-theta)) / (1 - zeta(2)/zetan)
};

} // namespace gpm
