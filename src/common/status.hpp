/**
 * @file
 * Error-reporting helpers in the gem5 fatal()/panic() tradition.
 *
 * - panic():  an internal invariant of the simulator broke (a bug here).
 * - fatal():  the caller supplied an impossible configuration or misused
 *             an API in a way a user of the library could trigger.
 *
 * Both throw typed exceptions so tests can assert on misuse, unlike the
 * abort()-based originals; nothing in the simulator catches them.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpm {

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): user-triggerable misconfiguration or API misuse. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Report an internal simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Report a user-caused error (bad config, API misuse). Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Check an internal invariant; panics with context when it fails. */
#define GPM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gpm::panic("assertion failed: " #cond " at ", __FILE__, ":",  \
                         __LINE__, " ", ##__VA_ARGS__);                     \
        }                                                                   \
    } while (0)

/** Validate a user-supplied condition; fatal()s when it fails. */
#define GPM_REQUIRE(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gpm::fatal("requirement failed: " #cond " ", ##__VA_ARGS__);  \
        }                                                                   \
    } while (0)

} // namespace gpm
