/**
 * @file
 * Units and unit helpers shared across the GPM simulator.
 *
 * Simulated time is carried as a double count of nanoseconds (SimNs).
 * An analytic timing model composes times from bandwidths and latencies,
 * so floating point is the natural representation; all producers of
 * simulated time live in src/memsim and src/platform.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace gpm {

/** Simulated time in nanoseconds. */
using SimNs = double;

/** Bandwidth in bytes per simulated nanosecond (equals GB/s numerically). */
using GBps = double;

constexpr std::size_t operator""_KiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 10;
}

constexpr std::size_t operator""_MiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 20;
}

constexpr std::size_t operator""_GiB(unsigned long long v)
{
    return static_cast<std::size_t>(v) << 30;
}

constexpr SimNs operator""_ns(unsigned long long v)
{
    return static_cast<SimNs>(v);
}

constexpr SimNs operator""_us(unsigned long long v)
{
    return static_cast<SimNs>(v) * 1e3;
}

constexpr SimNs operator""_ms(unsigned long long v)
{
    return static_cast<SimNs>(v) * 1e6;
}

/** Convert simulated nanoseconds to milliseconds. */
constexpr double toMs(SimNs ns) { return ns / 1e6; }

/** Convert simulated nanoseconds to microseconds. */
constexpr double toUs(SimNs ns) { return ns / 1e3; }

/** Convert simulated nanoseconds to seconds. */
constexpr double toSec(SimNs ns) { return ns / 1e9; }

/**
 * Time to move @p bytes at @p gbps (GB/s == bytes/ns).
 *
 * A bandwidth of zero yields zero time; model code treats that as
 * "infinitely fast", which only configuration errors would produce.
 */
constexpr SimNs transferNs(std::size_t bytes, GBps gbps)
{
    return gbps > 0.0 ? static_cast<SimNs>(bytes) / gbps : 0.0;
}

/** Round @p v down to a multiple of @p align (align must be a power of 2). */
constexpr std::uint64_t alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (align must be a power of 2). */
constexpr std::uint64_t alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True when @p v is a multiple of @p align (align must be a power of 2). */
constexpr bool isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Ceiling division for non-negative integers. */
constexpr std::uint64_t ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace gpm
