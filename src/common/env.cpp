#include "common/env.hpp"

#include <cstdlib>
#include <string>

namespace gpm {

std::optional<int>
parseExecWorkers(std::string_view s)
{
    if (s.empty() || s.size() > 5)
        return std::nullopt;
    long v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;  // rejects sign, space, trailing junk
        v = v * 10 + (c - '0');
    }
    if (v > kMaxExecWorkers)
        return std::nullopt;
    return static_cast<int>(v);
}

std::optional<int>
parseExecWorkers(const char *s)
{
    if (s == nullptr)
        return std::nullopt;
    return parseExecWorkers(std::string_view(s));
}

int
execWorkersFromEnv(int fallback)
{
    return parseExecWorkers(std::getenv("GPM_EXEC_WORKERS"))
        .value_or(fallback);
}

} // namespace gpm
