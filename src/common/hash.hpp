/**
 * @file
 * Small deterministic hashing helpers.
 *
 * FNV-1a is used to fingerprint durable PM state and torture-matrix
 * outcomes: two runs with identical seeds must produce bit-identical
 * fingerprints, which is how the crash-matrix suite proves the whole
 * simulation (executor interleaving, eviction rolls, recovery) is
 * reproducible.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpm {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** FNV-1a over a byte range, continuing from @p h. */
inline std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t h = kFnvOffset)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a over an integral value (hashes its bytes). */
inline std::uint64_t
fnv1aU64(std::uint64_t v, std::uint64_t h = kFnvOffset)
{
    return fnv1a(&v, sizeof(v), h);
}

/** FNV-1a over a string's characters. */
inline std::uint64_t
fnv1aStr(const std::string &s, std::uint64_t h = kFnvOffset)
{
    return fnv1a(s.data(), s.size(), h);
}

} // namespace gpm
