/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Everything random in this repository — workload key streams, crash
 * injection points, partial cache-eviction decisions — flows through Rng
 * so that every experiment and every test is reproducible from a seed.
 * The generator is splitmix64: tiny state, good statistical quality for
 * workload generation, and trivially splittable for derived streams.
 */
#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace gpm {

/** Deterministic splitmix64 generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GPM_ASSERT(bound != 0);
        // Multiply-shift reduction; bias is negligible for bound << 2^64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        GPM_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Derive an independent child stream.
     *
     * Used to give each GPU thread / workload component its own
     * deterministic stream regardless of execution order.
     */
    Rng
    split(std::uint64_t stream_id) const
    {
        Rng child(state ^ (0x94d049bb133111ebull * (stream_id + 1)));
        child.next();
        return child;
    }

  private:
    std::uint64_t state;
};

} // namespace gpm
