/**
 * @file
 * Report-table printer used by the benchmark harnesses.
 *
 * The paper's artifact emits tab-separated rows per figure/table; benches
 * here do the same, with an additional aligned pretty-print so the output
 * is directly readable in a terminal.
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpm {

/** A simple column-aligned table with tab-separated emission. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed @p precision digits after the point. */
    static std::string num(double v, int precision = 2);

    /** Print the aligned table to @p os. */
    void print(std::ostream &os) const;

    /** Print tab-separated rows (artifact-style) to @p os. */
    void printTsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace gpm
