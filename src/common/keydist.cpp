#include "common/keydist.hpp"

#include <cmath>
#include <cstring>

#include "common/status.hpp"

namespace gpm {

namespace {

/** Generalized harmonic number sum_{i=1..n} 1/i^theta. */
double
zeta(std::uint64_t n, double theta)
{
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta);
    return z;
}

/** splitmix64 finalizer (same mix as Rng's stream, used statelessly). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

KeyDistKind
keyDistKindFromName(const char *name)
{
    if (std::strcmp(name, "uniform") == 0)
        return KeyDistKind::Uniform;
    if (std::strcmp(name, "zipfian") == 0)
        return KeyDistKind::Zipfian;
    fatal("unknown key distribution '", name,
          "' (expected uniform or zipfian)");
}

const char *
keyDistKindName(KeyDistKind k)
{
    return k == KeyDistKind::Uniform ? "uniform" : "zipfian";
}

KeyDist::KeyDist(KeyDistKind kind, std::uint64_t n, std::uint64_t seed,
                 double theta)
    : kind_(kind), n_(n), rng_(seed)
{
    GPM_REQUIRE(n >= 1, "KeyDist needs at least one rank");
    if (kind_ == KeyDistKind::Zipfian) {
        GPM_REQUIRE(theta > 0.0 && theta < 1.0,
                    "zipfian theta must be in (0, 1), got ", theta);
        theta_ = theta;
        zetan_ = zeta(n_, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        const double zeta2 = zeta(n_ < 2 ? n_ : 2, theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
    }
}

std::uint64_t
KeyDist::nextRank()
{
    if (kind_ == KeyDistKind::Uniform)
        return rng_.below(n_);
    // Gray et al. inversion: map u in [0,1) through the zipfian CDF's
    // closed-form approximation.
    const double u = rng_.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double r =
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t rank = static_cast<std::uint64_t>(r);
    if (rank >= n_)
        rank = n_ - 1;
    return rank;
}

std::uint64_t
KeyDist::keyForRank(std::uint64_t rank)
{
    const std::uint64_t k = mix64(rank + 1);
    return k ? k : 1;  // GpKvs reserves key 0 as the empty sentinel
}

} // namespace gpm
