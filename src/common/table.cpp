#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/status.hpp"

namespace gpm {

Table::Table(std::vector<std::string> headers) : head(std::move(headers))
{
    GPM_REQUIRE(!head.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    GPM_REQUIRE(cells.size() == head.size(),
                "row arity ", cells.size(), " != header arity ", head.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    emit(head);
    std::string rule;
    for (std::size_t c = 0; c < head.size(); ++c)
        rule += std::string(width[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : body)
        emit(row);
}

void
Table::printTsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? '\n' : '\t');
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
}

} // namespace gpm
