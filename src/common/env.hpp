/**
 * @file
 * Shared parsing of the executor worker-count knob.
 *
 * SimConfig::exec_workers is settable from two places — the
 * GPM_EXEC_WORKERS environment variable (every bench driver) and the
 * --jobs flag (gpmbench, gpmtrace). Both funnel through
 * parseExecWorkers() so the accepted grammar is defined exactly once:
 * a decimal integer in [0, 1024], no trailing junk, no empty string
 * (0 means one worker per hardware thread; see SimConfig).
 */
#pragma once

#include <optional>
#include <string_view>

namespace gpm {

/** Upper bound on an explicit worker count. */
constexpr int kMaxExecWorkers = 1024;

/**
 * Strictly parse a worker count.
 *
 * @return The value for well-formed input in [0, kMaxExecWorkers];
 *         std::nullopt for null/empty/non-numeric/out-of-range input
 *         (including any trailing non-digit characters).
 */
std::optional<int> parseExecWorkers(const char *s);

/** string_view convenience overload. */
std::optional<int> parseExecWorkers(std::string_view s);

/**
 * Worker count from the GPM_EXEC_WORKERS environment variable.
 *
 * @return The parsed value, or @p fallback when the variable is unset
 *         or rejected by parseExecWorkers (invalid input degrades to
 *         the sequential reference rather than erroring, so a stray
 *         environment never breaks a bench run).
 */
int execWorkersFromEnv(int fallback = 1);

} // namespace gpm
