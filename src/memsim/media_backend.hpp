/**
 * @file
 * Pluggable PM media backends.
 *
 * The paper models one logical Optane region (nvm_model.hpp); real
 * GPM deployments interleave across many DIMMs, sit behind a CXL
 * expander, or front the NVM with a DRAM cache. MediaBackend is the
 * interface every model implements and Machine/GpuExecutor drive:
 * a write-transaction classifier plus a bytes -> simulated-time
 * converter. Selection rides in SimConfig::media (see docs/memsim.md
 * for the backend matrix).
 *
 * The contract that keeps the crash matrix meaningful: backends are
 * *functional-state-free*. They observe the transaction stream the
 * executor and host paths emit and only classify/price it, so the
 * durable image, recovery outcomes and torture signatures are
 * bit-identical on every medium — the media axis changes modelled
 * time and tier accounting, never results.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/** Byte totals per Optane access tier. */
struct NvmTierBytes {
    std::uint64_t seq_aligned = 0;   ///< 256 B-aligned sequential bytes
    std::uint64_t seq_unaligned = 0; ///< sequential but unaligned bytes
    std::uint64_t random = 0;        ///< isolated / random bytes

    std::uint64_t
    total() const
    {
        return seq_aligned + seq_unaligned + random;
    }

    NvmTierBytes
    operator-(const NvmTierBytes &o) const
    {
        return {seq_aligned - o.seq_aligned,
                seq_unaligned - o.seq_unaligned, random - o.random};
    }

    NvmTierBytes &
    operator+=(const NvmTierBytes &o)
    {
        seq_aligned += o.seq_aligned;
        seq_unaligned += o.seq_unaligned;
        random += o.random;
        return *this;
    }

    /** Per-tier equality (the determinism suite's comparison). */
    bool operator==(const NvmTierBytes &o) const = default;
};

/** One backend-specific observed total (telemetry fold). */
struct MediaCounter {
    std::string name;     ///< registry-relative, e.g. "dimm0.random_bytes"
    std::uint64_t value;
};

/**
 * Interface of a PM media model: classifies the write-transaction
 * stream into Optane-style tiers and converts classified bytes into
 * simulated media time.
 */
class MediaBackend
{
  public:
    MediaBackend() = default;
    virtual ~MediaBackend() = default;
    MediaBackend(const MediaBackend &) = delete;
    MediaBackend &operator=(const MediaBackend &) = delete;

    /** Which model this is (mirrors SimConfig::media.kind). */
    virtual MediaKind kind() const = 0;

    /**
     * Record one write transaction.
     *
     * @param stream  Identity of the writer (warp id, CPU thread id...).
     *                Transactions only merge into runs within a stream.
     * @param addr    PM byte address of the transaction.
     * @param size    Transaction size in bytes (must be non-zero).
     */
    virtual void recordWrite(std::uint64_t stream, std::uint64_t addr,
                             std::uint64_t size) = 0;

    /**
     * Record an already-formed run of @p txns transactions covering
     * [addr, addr+size) contiguously — the bulk path used by CPU flush
     * loops and DMA-style writers, classified immediately without
     * going through the per-stream open-run machinery.
     */
    virtual void recordRun(std::uint64_t addr, std::uint64_t size,
                           std::uint64_t txns) = 0;

    /** Record scattered line-granular writes (CPU flush of sparse
     *  lines): all bytes land on the random tier. */
    virtual void recordScattered(std::uint64_t bytes,
                                 std::uint64_t txns) = 0;

    /** Record a read of @p bytes from PM. */
    virtual void recordRead(std::uint64_t bytes) = 0;

    /**
     * Close all open runs and classify their bytes.
     *
     * Call at an execution boundary (kernel end, persist batch end);
     * classified byte counters are only complete after this.
     */
    virtual void closeRuns() = 0;

    /** Classified write bytes so far (closeRuns() first for totals). */
    virtual const NvmTierBytes &bytes() const = 0;

    /** Total write transactions recorded. */
    virtual std::uint64_t writeTxns() const = 0;

    /** Total read bytes recorded. */
    virtual std::uint64_t readBytes() const = 0;

    /** Total read operations recorded. */
    virtual std::uint64_t readOps() const = 0;

    /**
     * Media time to absorb the classified writes in @p b.
     *
     * @param random_boost  Concurrency relief for the random tier
     *                      (>= 1; see SimConfig::nvm_gpu_random_boost).
     */
    SimNs
    writeTime(const NvmTierBytes &b, double random_boost = 1.0) const
    {
        return writeTimeImpl(b, random_boost);
    }

    /** Media time for all writes recorded so far. */
    SimNs
    writeTime() const
    {
        return writeTimeImpl(bytes(), 1.0);
    }

    /** Media time for @p bytes of reads. */
    virtual SimNs readTime(std::uint64_t bytes) const = 0;

    /** Forget all recorded traffic and open runs. */
    virtual void reset() = 0;

    /** Backend-specific observed totals (per-DIMM tier bytes, DRAM
     *  cache hit/miss/migration counters...), appended for the
     *  telemetry fold under the "media." prefix. */
    virtual void
    appendCounters(std::vector<MediaCounter> &out) const
    {
        (void)out;
    }

  protected:
    virtual SimNs writeTimeImpl(const NvmTierBytes &b,
                                double random_boost) const = 0;
};

// ---- selection (CLI keys, environment, factory) -------------------------

/**
 * Parse a media-backend key: "nvm", "interleaved[:dimms]" (power of
 * two in [1, 64], default 4), "cxl", or "hybrid[:cache_mib]" (in
 * [1, 4096], default 4). Returns std::nullopt for anything else —
 * callers print mediaUsage() in their error.
 */
std::optional<MediaConfig> parseMediaConfig(std::string_view key);

/** Canonical key for @p m (inverse of parseMediaConfig). */
std::string mediaKey(const MediaConfig &m);

/** The accepted keys, for unknown-backend errors and --help text. */
const char *mediaUsage();

/**
 * Install @p m into @p cfg. Selecting the CXL expander also overlays
 * the SimConfig::cxlAttachedPm() interconnect projection (the
 * expander sits on a CXL fabric, not PCIe 3.0), so one knob moves
 * both the media model and the link it hangs off.
 */
void applyMediaConfig(SimConfig &cfg, const MediaConfig &m);

/**
 * Media selection from the GPM_MEDIA environment variable; unset or
 * unparsable input degrades to @p fallback so a stray environment
 * never breaks a bench run (the execWorkersFromEnv convention).
 */
MediaConfig mediaFromEnv(const MediaConfig &fallback = MediaConfig{});

/** Construct the backend cfg.media selects. @p cfg must outlive it. */
std::unique_ptr<MediaBackend> makeMediaBackend(const SimConfig &cfg);

} // namespace gpm
