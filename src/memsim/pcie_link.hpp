/**
 * @file
 * PCIe 3.0 x16 interconnect model.
 *
 * Two behaviours matter for GPM (section 3.2):
 *
 *  1. Bulk transfers (DMA, streaming kernel writes) move at the link's
 *     achievable bandwidth (~13 GB/s, the "Max PCIe BW" line of Fig 12).
 *  2. Small persist operations — a write followed by a system-scope
 *     fence that must round-trip to the host — are latency-bound, and
 *     the GPU can only keep a limited number of non-posted operations
 *     in flight. That bound is why Fig 3(b)'s persist scaling plateaus
 *     around 1-2 K threads instead of scaling with all 100 K+ threads.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/** Latency/bandwidth/concurrency model of the host<->GPU interconnect. */
class PcieLink
{
  public:
    explicit PcieLink(const SimConfig &cfg) : cfg_(&cfg) {}

    /** Time for one bulk transfer of @p bytes (no DMA setup cost). */
    SimNs
    bulkTime(std::uint64_t bytes) const
    {
        return transferNs(bytes, cfg_->pcie_gbps);
    }

    /** Time for a driver-initiated DMA of @p bytes, incl. engine setup. */
    SimNs
    dmaTime(std::uint64_t bytes) const
    {
        return cfg_->dma_init_ns + bulkTime(bytes);
    }

    /**
     * Time for @p ops latency-bound persist operations issued by
     * @p issuing_threads GPU threads.
     *
     * Each operation occupies a non-posted slot for one round trip
     * (@ref SimConfig::pcie_persist_op_ns when the fence completes at
     * the memory controller, @p op_ns otherwise); at most
     * min(issuing_threads, pcie_concurrency) proceed in parallel.
     */
    SimNs
    persistOpsTime(std::uint64_t ops, std::uint64_t issuing_threads,
                   SimNs op_ns) const
    {
        if (ops == 0)
            return 0.0;
        const std::uint64_t lanes =
            std::max<std::uint64_t>(1,
                std::min<std::uint64_t>(issuing_threads,
                    static_cast<std::uint64_t>(cfg_->pcie_concurrency)));
        const double waves =
            static_cast<double>(ops) / static_cast<double>(lanes);
        return std::max(1.0, waves) * op_ns;
    }

  private:
    const SimConfig *cfg_;
};

} // namespace gpm
