#include "memsim/media_backend.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <deque>
#include <unordered_set>

#include "common/status.hpp"
#include "memsim/nvm_model.hpp"

namespace gpm {

namespace {

/**
 * Addresses striped across N DIMMs at a fixed granule; every DIMM is
 * a private single-DIMM NvmModel observing its de-interleaved local
 * address space, so per-DIMM run formation matches what each real
 * DIMM's write-combining buffer would see: a globally sequential
 * stream is locally sequential on every DIMM (granule-sized pieces
 * from stripes k, k+N, k+2N... are adjacent in local space), while
 * short runs straddling a stripe boundary split into per-DIMM
 * fragments too small to combine — interleaving really does defeat
 * the XPLine buffer at boundaries.
 *
 * recordWrite is the simulator's hottest call, so transactions are
 * not classified inline: they append to a per-DIMM pending buffer
 * (one streaming store) and drain in arrival order at any observation
 * point (closeRuns/bytes/bulk paths) or when a buffer fills. Draining
 * one DIMM's batch walks only that DIMM's StreamRuns table — a table
 * holding ~1/N of the streams, hot in cache for the whole batch —
 * which is where the N>=4 recordWrite-path speedup comes from
 * (BM_NvmModelInterleaved, simperf's media stage). Replay order per
 * DIMM equals arrival order, so at N=1 the single inner model sees
 * exactly the legacy call sequence: totals are bit-identical to
 * NvmModel by construction (the property suite pins this).
 */
class InterleavedNvm final : public MediaBackend
{
  public:
    InterleavedNvm(const SimConfig &cfg, int dimms, std::size_t granule)
        : cfg_(&cfg), n_(static_cast<unsigned>(dimms)),
          granule_(granule)
    {
        GPM_REQUIRE(dimms >= 1 && dimms <= 64 &&
                        std::has_single_bit(n_),
                    "interleave width must be a power of two in "
                    "[1, 64], got ", dimms);
        GPM_REQUIRE(std::has_single_bit(granule_) &&
                        granule_ >= cfg.xpline_bytes,
                    "interleave granule must be a power of two >= the "
                    "XPLine size, got ", granule_);
        gshift_ = static_cast<unsigned>(std::countr_zero(granule_));
        nshift_ = static_cast<unsigned>(std::countr_zero(n_));
        for (unsigned d = 0; d < n_; ++d)
            dimms_.emplace_back(cfg);
        pending_.resize(n_);
    }

    MediaKind kind() const override { return MediaKind::Interleaved; }

    void
    recordWrite(std::uint64_t stream, std::uint64_t addr,
                std::uint64_t size) override
    {
        GPM_REQUIRE(size > 0, "zero-size NVM write");
        ++write_txns_;
        if (n_ == 1) {
            push(0, stream, addr, size);
            return;
        }
        // Common case: the transaction sits inside one stripe.
        const std::uint64_t mask = granule_ - 1;
        if (((addr ^ (addr + size - 1)) >> gshift_) == 0) {
            push(dimmOf(addr), stream, localAddr(addr), size);
            return;
        }
        std::uint64_t a = addr;
        std::uint64_t left = size;
        while (left > 0) {
            const std::uint64_t piece =
                std::min(left, granule_ - (a & mask));
            push(dimmOf(a), stream, localAddr(a), piece);
            a += piece;
            left -= piece;
        }
    }

    void
    recordRun(std::uint64_t addr, std::uint64_t size,
              std::uint64_t txns) override
    {
        GPM_REQUIRE(size > 0 && txns > 0, "empty NVM run");
        drainAll();  // keep bulk writes ordered after buffered ones
        write_txns_ += txns;
        if (n_ == 1) {
            dimms_[0].recordRun(addr, size, txns);
            return;
        }
        // A contiguous global range covers, on each DIMM, a contiguous
        // local range (full stripes of one DIMM are locally adjacent,
        // and a partial edge stripe abuts its neighbour), so the run
        // splits into at most one local run per DIMM with transactions
        // shared out by byte coverage.
        struct Cover {
            std::uint64_t start = 0, end = 0;
            bool any = false;
        };
        std::array<Cover, 64> cover{};
        const std::uint64_t mask = granule_ - 1;
        std::uint64_t a = addr;
        std::uint64_t left = size;
        while (left > 0) {
            const std::uint64_t piece =
                std::min(left, granule_ - (a & mask));
            Cover &c = cover[dimmOf(a)];
            const std::uint64_t local = localAddr(a);
            if (!c.any) {
                c = {local, local + piece, true};
            } else {
                GPM_ASSERT(local == c.end);
                c.end = local + piece;
            }
            a += piece;
            left -= piece;
        }
        for (unsigned d = 0; d < n_; ++d) {
            if (!cover[d].any)
                continue;
            const std::uint64_t bytes = cover[d].end - cover[d].start;
            dimms_[d].recordRun(
                cover[d].start, bytes,
                std::max<std::uint64_t>(1, txns * bytes / size));
        }
    }

    void
    recordScattered(std::uint64_t bytes, std::uint64_t txns) override
    {
        // Addressless sparse-line traffic: account it at the aggregate
        // level (it never interacts with run formation). Ordering
        // still matters for nothing but the totals, which are
        // commutative adds — but drain anyway so bytes() observers
        // at this instant match the legacy model's view.
        drainAll();
        scattered_random_ += bytes;
        write_txns_ += txns;
    }

    void
    recordRead(std::uint64_t bytes) override
    {
        read_bytes_ += bytes;
        ++read_ops_;
    }

    void
    closeRuns() override
    {
        drainAll();
        for (NvmModel &d : dimms_)
            d.closeRuns();
    }

    const NvmTierBytes &
    bytes() const override
    {
        drainAll();
        agg_ = NvmTierBytes{0, 0, scattered_random_};
        for (const NvmModel &d : dimms_)
            agg_ += d.bytes();
        return agg_;
    }

    std::uint64_t writeTxns() const override { return write_txns_; }
    std::uint64_t readBytes() const override { return read_bytes_; }
    std::uint64_t readOps() const override { return read_ops_; }

    SimNs
    readTime(std::uint64_t bytes) const override
    {
        if (bytes == 0)
            return 0.0;
        return cfg_->nvm_read_latency_ns +
               transferNs(bytes, cfg_->nvm_read_gbps * scale());
    }

    void
    reset() override
    {
        for (auto &p : pending_)
            p.clear();
        for (NvmModel &d : dimms_)
            d.reset();
        agg_ = NvmTierBytes{};
        scattered_random_ = 0;
        write_txns_ = 0;
        read_bytes_ = 0;
        read_ops_ = 0;
    }

    void
    appendCounters(std::vector<MediaCounter> &out) const override
    {
        drainAll();
        out.push_back({"dimms", n_});
        for (unsigned d = 0; d < n_; ++d) {
            const std::string p = "dimm" + std::to_string(d) + ".";
            const NvmTierBytes &b = dimms_[d].bytes();
            out.push_back({p + "seq_aligned_bytes", b.seq_aligned});
            out.push_back({p + "seq_unaligned_bytes", b.seq_unaligned});
            out.push_back({p + "random_bytes", b.random});
        }
    }

  protected:
    SimNs
    writeTimeImpl(const NvmTierBytes &b,
                  double random_boost) const override
    {
        GPM_ASSERT(random_boost >= 1.0);
        // Ideal striping: every tier's rate scales with the DIMM
        // count (the real testbed's 8-DIMM interleave is what the
        // single-DIMM model's nvm_gpu_random_boost approximated).
        // scale() == 1.0 multiplies exactly, so N=1 reproduces the
        // legacy envelope bit for bit.
        return transferNs(b.seq_aligned,
                          cfg_->nvm_seq_aligned_gbps * scale()) +
               transferNs(b.seq_unaligned,
                          cfg_->nvm_seq_unaligned_gbps * scale()) +
               transferNs(b.random,
                          cfg_->nvm_random_gbps * random_boost *
                              scale());
    }

  private:
    struct Txn {
        std::uint64_t stream;
        std::uint64_t addr;  ///< DIMM-local (de-interleaved) address
        std::uint64_t size;
    };

    /** Buffered transactions per DIMM before a batch drain. */
    static constexpr std::size_t kDrainBatch = 8192;

    unsigned dimmOf(std::uint64_t addr) const
    {
        return static_cast<unsigned>((addr >> gshift_) & (n_ - 1));
    }

    /** Global address -> this DIMM's local byte offset. */
    std::uint64_t localAddr(std::uint64_t addr) const
    {
        const std::uint64_t stripe = addr >> gshift_;
        return ((stripe >> nshift_) << gshift_) |
               (addr & (granule_ - 1));
    }

    double scale() const { return static_cast<double>(n_); }

    void
    push(unsigned d, std::uint64_t stream, std::uint64_t local,
         std::uint64_t size)
    {
        pending_[d].push_back({stream, local, size});
        if (pending_[d].size() >= kDrainBatch)
            drainDimm(d);
    }

    void
    drainDimm(unsigned d) const
    {
        std::vector<Txn> &q = pending_[d];
        NvmModel &m = dimms_[d];
        for (const Txn &t : q)
            m.recordWrite(t.stream, t.addr, t.size);
        q.clear();
    }

    void
    drainAll() const
    {
        for (unsigned d = 0; d < n_; ++d) {
            if (!pending_[d].empty())
                drainDimm(d);
        }
    }

    const SimConfig *cfg_;
    unsigned n_;
    std::uint64_t granule_;
    unsigned gshift_ = 0;
    unsigned nshift_ = 0;
    // Logically-const maintenance: draining replays buffered calls a
    // strict (immediate-mode) implementation would already have made.
    // (deque: NvmModel is a non-movable MediaBackend.)
    mutable std::deque<NvmModel> dimms_;
    mutable std::vector<std::vector<Txn>> pending_;
    mutable NvmTierBytes agg_;
    std::uint64_t scattered_random_ = 0;
    std::uint64_t write_txns_ = 0;
    std::uint64_t read_bytes_ = 0;
    std::uint64_t read_ops_ = 0;
};

/**
 * CXL memory expander: cxl_dev_dimms PM channels interleaved inside
 * the device behind a fixed-bandwidth port. Aligned-sequential bursts
 * saturate the port (the aggregate media rate exceeds it), random
 * traffic stays media-bound, and every read pays the far-memory hop —
 * the envelope bench/ablation_cxl_projection.cpp projected as a
 * one-off, now a selectable backend. applyMediaConfig() pairs it with
 * the cxlAttachedPm() interconnect preset.
 */
class CxlNvm final : public MediaBackend
{
  public:
    explicit CxlNvm(const SimConfig &cfg)
        : cfg_(&cfg),
          media_(cfg, cfg.media.cxl_dev_dimms,
                 cfg.media.interleave_bytes)
    {
    }

    MediaKind kind() const override { return MediaKind::Cxl; }

    void
    recordWrite(std::uint64_t stream, std::uint64_t addr,
                std::uint64_t size) override
    {
        media_.recordWrite(stream, addr, size);
    }

    void
    recordRun(std::uint64_t addr, std::uint64_t size,
              std::uint64_t txns) override
    {
        media_.recordRun(addr, size, txns);
    }

    void
    recordScattered(std::uint64_t bytes, std::uint64_t txns) override
    {
        media_.recordScattered(bytes, txns);
    }

    void recordRead(std::uint64_t bytes) override
    {
        media_.recordRead(bytes);
    }

    void closeRuns() override { media_.closeRuns(); }
    const NvmTierBytes &bytes() const override { return media_.bytes(); }
    std::uint64_t writeTxns() const override { return media_.writeTxns(); }
    std::uint64_t readBytes() const override { return media_.readBytes(); }
    std::uint64_t readOps() const override { return media_.readOps(); }

    SimNs
    readTime(std::uint64_t bytes) const override
    {
        if (bytes == 0)
            return 0.0;
        return cfg_->media.cxl_read_extra_ns + media_.readTime(bytes);
    }

    void reset() override { media_.reset(); }

    void
    appendCounters(std::vector<MediaCounter> &out) const override
    {
        out.push_back({"cxl_dev_dimms",
                       static_cast<std::uint64_t>(
                           cfg_->media.cxl_dev_dimms)});
        media_.appendCounters(out);
    }

  protected:
    SimNs
    writeTimeImpl(const NvmTierBytes &b,
                  double random_boost) const override
    {
        // The slower of the in-device media and the port: the port is
        // a serial pipe every classified byte crosses.
        return std::max(media_.writeTime(b, random_boost),
                        transferNs(b.total(),
                                   cfg_->media.cxl_port_gbps));
    }

  private:
    const SimConfig *cfg_;
    InterleavedNvm media_;
};

/**
 * Battery-backed DRAM cache in front of the NVM (the NUMA-emulated
 * hybrid-memory shape of arXiv 1808.00064, with the front tier inside
 * the persistence domain so functional durability is untouched).
 * Write traffic is filtered at XPLine granularity through a
 * capacity-bounded FIFO directory; only capacity-evicted lines
 * migrate to the NVM model behind, fed through a dedicated migration
 * stream so spatially adjacent evictions still merge into sequential
 * runs. DRAM absorb time (80 GB/s) always hides under PCIe delivery
 * (13 GB/s), so cache hits cost no media time at all — the speedup a
 * reuse-heavy workload sees is the hit rate.
 */
class HybridDramNvm final : public MediaBackend
{
  public:
    explicit HybridDramNvm(const SimConfig &cfg)
        : cfg_(&cfg), nvm_(cfg), line_(cfg.xpline_bytes),
          lshift_(static_cast<unsigned>(std::countr_zero(line_))),
          capacity_lines_(
              std::max<std::size_t>(1, cfg.media.dram_cache_bytes /
                                           cfg.xpline_bytes))
    {
        GPM_REQUIRE(std::has_single_bit(line_),
                    "XPLine size must be a power of two");
    }

    MediaKind kind() const override { return MediaKind::Hybrid; }

    void
    recordWrite(std::uint64_t stream, std::uint64_t addr,
                std::uint64_t size) override
    {
        GPM_REQUIRE(size > 0, "zero-size NVM write");
        ++write_txns_;
        touchRange(addr, size);
    }

    void
    recordRun(std::uint64_t addr, std::uint64_t size,
              std::uint64_t txns) override
    {
        GPM_REQUIRE(size > 0 && txns > 0, "empty NVM run");
        write_txns_ += txns;
        touchRange(addr, size);
    }

    void
    recordScattered(std::uint64_t bytes, std::uint64_t txns) override
    {
        // Addressless sparse flushes can't be cached by line; they
        // bypass the DRAM tier and hit the media directly.
        nvm_.recordScattered(bytes, txns);
        write_txns_ += txns;
    }

    void
    recordRead(std::uint64_t bytes) override
    {
        nvm_.recordRead(bytes);
    }

    void closeRuns() override { nvm_.closeRuns(); }

    const NvmTierBytes &bytes() const override { return nvm_.bytes(); }

    std::uint64_t writeTxns() const override { return write_txns_; }
    std::uint64_t readBytes() const override { return nvm_.readBytes(); }
    std::uint64_t readOps() const override { return nvm_.readOps(); }

    SimNs
    readTime(std::uint64_t bytes) const override
    {
        return nvm_.readTime(bytes);
    }

    void
    reset() override
    {
        nvm_.reset();
        resident_.clear();
        fifo_.clear();
        hit_bytes_ = 0;
        miss_bytes_ = 0;
        writeback_bytes_ = 0;
        write_txns_ = 0;
    }

    void
    appendCounters(std::vector<MediaCounter> &out) const override
    {
        out.push_back({"dram_hit_bytes", hit_bytes_});
        out.push_back({"dram_miss_bytes", miss_bytes_});
        out.push_back({"dram_writeback_bytes", writeback_bytes_});
        out.push_back({"dram_resident_lines", fifo_.size()});
        out.push_back({"dram_capacity_lines", capacity_lines_});
    }

  protected:
    SimNs
    writeTimeImpl(const NvmTierBytes &b,
                  double random_boost) const override
    {
        // b is a delta of bytes(), i.e. writeback/bypass traffic that
        // actually reached the media; DRAM absorb is never the
        // bottleneck (it out-runs PCIe delivery), so hits are free.
        return nvm_.writeTime(b, random_boost);
    }

  private:
    /** Writer identity for capacity-evicted lines: FIFO order keeps
     *  insertion locality, so sequential working sets migrate as
     *  sequential runs on this stream. */
    static constexpr std::uint64_t kMigrationStream =
        0xFFFFFFFFFFFFFFF0ull;

    void
    touchRange(std::uint64_t addr, std::uint64_t size)
    {
        const std::uint64_t first = addr >> lshift_;
        const std::uint64_t last = (addr + size - 1) >> lshift_;
        for (std::uint64_t l = first; l <= last; ++l) {
            const std::uint64_t lo =
                std::max(addr, l << lshift_);
            const std::uint64_t hi =
                std::min(addr + size, (l + 1) << lshift_);
            if (resident_.contains(l)) {
                hit_bytes_ += hi - lo;
                continue;
            }
            miss_bytes_ += hi - lo;
            resident_.insert(l);
            fifo_.push_back(l);
            if (fifo_.size() > capacity_lines_) {
                const std::uint64_t victim = fifo_.front();
                fifo_.pop_front();
                resident_.erase(victim);
                nvm_.recordWrite(kMigrationStream, victim << lshift_,
                                 line_);
                writeback_bytes_ += line_;
            }
        }
    }

    const SimConfig *cfg_;
    NvmModel nvm_;
    std::uint64_t line_;
    unsigned lshift_;
    std::size_t capacity_lines_;
    std::unordered_set<std::uint64_t> resident_;
    std::deque<std::uint64_t> fifo_;  ///< resident lines, insert order
    std::uint64_t hit_bytes_ = 0;
    std::uint64_t miss_bytes_ = 0;
    std::uint64_t writeback_bytes_ = 0;
    std::uint64_t write_txns_ = 0;
};

/** Strict bounded decimal (the parseExecWorkers grammar). */
std::optional<long>
parseBounded(std::string_view s, long lo, long hi)
{
    if (s.empty() || s.size() > 5)
        return std::nullopt;
    long v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;
        v = v * 10 + (c - '0');
    }
    if (v < lo || v > hi)
        return std::nullopt;
    return v;
}

} // namespace

std::optional<MediaConfig>
parseMediaConfig(std::string_view key)
{
    MediaConfig m;
    if (key == "nvm")
        return m;
    if (key == "cxl") {
        m.kind = MediaKind::Cxl;
        return m;
    }
    constexpr std::string_view kInter = "interleaved";
    constexpr std::string_view kHybrid = "hybrid";
    if (key.substr(0, kInter.size()) == kInter) {
        m.kind = MediaKind::Interleaved;
        std::string_view rest = key.substr(kInter.size());
        if (rest.empty())
            return m;
        if (rest.front() != ':')
            return std::nullopt;
        const auto v = parseBounded(rest.substr(1), 1, 64);
        if (!v || (*v & (*v - 1)) != 0)
            return std::nullopt;
        m.dimms = static_cast<int>(*v);
        return m;
    }
    if (key.substr(0, kHybrid.size()) == kHybrid) {
        m.kind = MediaKind::Hybrid;
        std::string_view rest = key.substr(kHybrid.size());
        if (rest.empty())
            return m;
        if (rest.front() != ':')
            return std::nullopt;
        const auto v = parseBounded(rest.substr(1), 1, 4096);
        if (!v)
            return std::nullopt;
        m.dram_cache_bytes = static_cast<std::size_t>(*v) << 20;
        return m;
    }
    return std::nullopt;
}

std::string
mediaKey(const MediaConfig &m)
{
    switch (m.kind) {
      case MediaKind::Nvm:
        return "nvm";
      case MediaKind::Interleaved:
        return "interleaved:" + std::to_string(m.dimms);
      case MediaKind::Cxl:
        return "cxl";
      case MediaKind::Hybrid:
        return "hybrid:" +
               std::to_string(m.dram_cache_bytes >> 20);
    }
    return "?";
}

const char *
mediaUsage()
{
    return "nvm, interleaved[:dimms], cxl, hybrid[:cache_mib]";
}

void
applyMediaConfig(SimConfig &cfg, const MediaConfig &m)
{
    cfg.media = m;
    if (m.kind == MediaKind::Cxl) {
        const SimConfig cxl = SimConfig::cxlAttachedPm();
        cfg.pcie_gbps = cxl.pcie_gbps;
        cfg.pcie_persist_op_ns = cxl.pcie_persist_op_ns;
        cfg.pcie_concurrency = cxl.pcie_concurrency;
        cfg.fence_mc_ns = cxl.fence_mc_ns;
        cfg.dma_init_ns = cxl.dma_init_ns;
    }
}

MediaConfig
mediaFromEnv(const MediaConfig &fallback)
{
    const char *s = std::getenv("GPM_MEDIA");
    if (s == nullptr)
        return fallback;
    return parseMediaConfig(s).value_or(fallback);
}

std::unique_ptr<MediaBackend>
makeMediaBackend(const SimConfig &cfg)
{
    switch (cfg.media.kind) {
      case MediaKind::Nvm:
        return std::make_unique<NvmModel>(cfg);
      case MediaKind::Interleaved:
        return std::make_unique<InterleavedNvm>(
            cfg, cfg.media.dimms, cfg.media.interleave_bytes);
      case MediaKind::Cxl:
        return std::make_unique<CxlNvm>(cfg);
      case MediaKind::Hybrid:
        return std::make_unique<HybridDramNvm>(cfg);
    }
    GPM_REQUIRE(false, "unreachable media kind");
    return nullptr;
}

} // namespace gpm
