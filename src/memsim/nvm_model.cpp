#include "memsim/nvm_model.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace gpm {

void
NvmModel::recordWrite(std::uint64_t stream, std::uint64_t addr,
                      std::uint64_t size)
{
    GPM_REQUIRE(size > 0, "zero-size NVM write");
    ++write_txns_;

    std::vector<Run> &runs = open_[stream];
    for (Run &run : runs) {
        if (addr >= run.start && addr <= run.end) {
            // Contiguous continuation or a rewrite inside the open
            // window: the XPLine buffer merges both.
            run.end = std::max(run.end, addr + size);
            ++run.txns;
            run.last_use = write_txns_;
            return;
        }
    }
    if (runs.size() < kRunsPerStream) {
        runs.push_back(Run{addr, addr + size, 1, write_txns_});
        return;
    }
    // All buffer slots busy: evict the least recently extended run.
    Run *victim = &runs.front();
    for (Run &run : runs) {
        if (run.last_use < victim->last_use)
            victim = &run;
    }
    classify(*victim);
    *victim = Run{addr, addr + size, 1, write_txns_};
}

void
NvmModel::recordRun(std::uint64_t addr, std::uint64_t size,
                    std::uint64_t txns)
{
    GPM_REQUIRE(size > 0 && txns > 0, "empty NVM run");
    write_txns_ += txns;
    classify(Run{addr, addr + size, txns});
}

void
NvmModel::classify(const Run &run)
{
    const std::uint64_t len = run.end - run.start;
    const std::uint64_t line = cfg_->xpline_bytes;
    if (run.txns <= 1 || len < 2 * line) {
        // Isolated or sub-2-line accesses never benefit from write
        // combining; internally the media performs a full-XPLine
        // read-modify-write per touched line, so the cost rounds up.
        bytes_.random += alignUp(std::max<std::uint64_t>(len, 1), line);
        return;
    }
    if (isAligned(run.start, line)) {
        // Full lines stream at the aligned tier; a partial tail line is
        // a read-modify-write inside the media.
        const std::uint64_t full = alignDown(len, line);
        bytes_.seq_aligned += full;
        bytes_.seq_unaligned += len - full;
    } else {
        // Runs entering their first line mid-way never resynchronize
        // with the XPLine buffer's full-line fast path in practice
        // (interleaved writers evict partial lines), matching the
        // paper's measured 3.13 GB/s for unaligned sequential access.
        bytes_.seq_unaligned += len;
    }
}

void
NvmModel::closeRuns()
{
    for (const auto &[stream, runs] : open_)
        for (const Run &run : runs)
            classify(run);
    open_.clear();
}

SimNs
NvmModel::writeTime(const NvmTierBytes &b, double random_boost) const
{
    GPM_ASSERT(random_boost >= 1.0);
    return transferNs(b.seq_aligned, cfg_->nvm_seq_aligned_gbps) +
           transferNs(b.seq_unaligned, cfg_->nvm_seq_unaligned_gbps) +
           transferNs(b.random, cfg_->nvm_random_gbps * random_boost);
}

SimNs
NvmModel::readTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    return cfg_->nvm_read_latency_ns +
           transferNs(bytes, cfg_->nvm_read_gbps);
}

void
NvmModel::reset()
{
    open_.clear();
    bytes_ = NvmTierBytes{};
    write_txns_ = 0;
    read_bytes_ = 0;
    read_ops_ = 0;
}

} // namespace gpm
