#include "memsim/nvm_model.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace gpm {

namespace {

/** Fibonacci spread for warp/thread ids (dense small integers). */
inline std::size_t
hashStream(std::uint64_t stream)
{
    return static_cast<std::size_t>(stream * 0x9E3779B97F4A7C15ull);
}

constexpr std::size_t kInitialSlots = 64;

} // namespace

std::size_t
NvmModel::findSlot(std::uint64_t stream)
{
    if (table_.empty())
        table_.assign(kInitialSlots, StreamRuns{});
    // Grow at 3/4 load before probing so insertion always terminates.
    if ((active_.size() + 1) * 4 > table_.size() * 3)
        grow();
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hashStream(stream) & mask;
    while (table_[i].used && table_[i].stream != stream)
        i = (i + 1) & mask;
    if (!table_[i].used) {
        table_[i].used = true;
        table_[i].stream = stream;
        table_[i].count = 0;
        active_.push_back(static_cast<std::uint32_t>(i));
    }
    return i;
}

void
NvmModel::grow()
{
    std::vector<StreamRuns> old = std::move(table_);
    const std::vector<std::uint32_t> old_active = std::move(active_);
    table_.assign(old.empty() ? kInitialSlots : old.size() * 2,
                  StreamRuns{});
    active_.clear();
    const std::size_t mask = table_.size() - 1;
    for (const std::uint32_t idx : old_active) {
        std::size_t i = hashStream(old[idx].stream) & mask;
        while (table_[i].used)
            i = (i + 1) & mask;
        table_[i] = old[idx];
        active_.push_back(static_cast<std::uint32_t>(i));
    }
    last_slot_ = kNoSlot;
}

void
NvmModel::recordWrite(std::uint64_t stream, std::uint64_t addr,
                      std::uint64_t size)
{
    GPM_REQUIRE(size > 0, "zero-size NVM write");
    ++write_txns_;

    if (last_slot_ == kNoSlot || last_stream_ != stream) {
        last_slot_ = findSlot(stream);
        last_stream_ = stream;
    }
    StreamRuns &sr = table_[last_slot_];
    for (std::uint8_t k = 0; k < sr.count; ++k) {
        Run &run = sr.runs[k];
        if (addr >= run.start && addr <= run.end) {
            // Contiguous continuation or a rewrite inside the open
            // window: the XPLine buffer merges both.
            run.end = std::max(run.end, addr + size);
            ++run.txns;
            run.last_use = write_txns_;
            return;
        }
    }
    if (sr.count < kRunsPerStream) {
        sr.runs[sr.count++] = Run{addr, addr + size, 1, write_txns_};
        return;
    }
    // All buffer slots busy: evict the least recently extended run.
    Run *victim = &sr.runs.front();
    for (Run &run : sr.runs) {
        if (run.last_use < victim->last_use)
            victim = &run;
    }
    classify(*victim);
    *victim = Run{addr, addr + size, 1, write_txns_};
}

void
NvmModel::recordRun(std::uint64_t addr, std::uint64_t size,
                    std::uint64_t txns)
{
    GPM_REQUIRE(size > 0 && txns > 0, "empty NVM run");
    write_txns_ += txns;
    classify(Run{addr, addr + size, txns});
}

void
NvmModel::classify(const Run &run)
{
    const std::uint64_t len = run.end - run.start;
    const std::uint64_t line = cfg_->xpline_bytes;
    if (run.txns <= 1 || len < 2 * line) {
        // Isolated or sub-2-line accesses never benefit from write
        // combining; internally the media performs a full-XPLine
        // read-modify-write per touched line, so the cost rounds up.
        bytes_.random += alignUp(std::max<std::uint64_t>(len, 1), line);
        return;
    }
    if (isAligned(run.start, line)) {
        // Full lines stream at the aligned tier; a partial tail line is
        // a read-modify-write inside the media.
        const std::uint64_t full = alignDown(len, line);
        bytes_.seq_aligned += full;
        bytes_.seq_unaligned += len - full;
    } else {
        // Runs entering their first line mid-way never resynchronize
        // with the XPLine buffer's full-line fast path in practice
        // (interleaved writers evict partial lines), matching the
        // paper's measured 3.13 GB/s for unaligned sequential access.
        bytes_.seq_unaligned += len;
    }
}

void
NvmModel::closeRuns()
{
    // Insertion order (vs the old map's bucket order); every classify
    // is a commutative byte-count add, so the totals can't tell.
    for (const std::uint32_t idx : active_) {
        StreamRuns &sr = table_[idx];
        for (std::uint8_t k = 0; k < sr.count; ++k)
            classify(sr.runs[k]);
        sr.used = false;
        sr.count = 0;
    }
    active_.clear();
    last_slot_ = kNoSlot;
}

SimNs
NvmModel::writeTimeImpl(const NvmTierBytes &b, double random_boost) const
{
    GPM_ASSERT(random_boost >= 1.0);
    return transferNs(b.seq_aligned, cfg_->nvm_seq_aligned_gbps) +
           transferNs(b.seq_unaligned, cfg_->nvm_seq_unaligned_gbps) +
           transferNs(b.random, cfg_->nvm_random_gbps * random_boost);
}

SimNs
NvmModel::readTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    return cfg_->nvm_read_latency_ns +
           transferNs(bytes, cfg_->nvm_read_gbps);
}

void
NvmModel::reset()
{
    for (const std::uint32_t idx : active_) {
        table_[idx].used = false;
        table_[idx].count = 0;
    }
    active_.clear();
    last_slot_ = kNoSlot;
    bytes_ = NvmTierBytes{};
    write_txns_ = 0;
    read_bytes_ = 0;
    read_ops_ = 0;
}

} // namespace gpm
