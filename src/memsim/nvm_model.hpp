/**
 * @file
 * Optane DCPMM performance model.
 *
 * Section 6.1 of the paper attributes the measured PM bandwidth of every
 * workload to three access-pattern tiers of the Optane media, measured
 * with the authors' own microbenchmark:
 *
 *   - sequential runs starting at a 256 B boundary:   12.5  GB/s
 *   - sequential runs starting unaligned:              3.13 GB/s
 *   - isolated (random) writes:                        0.72 GB/s
 *
 * The model reconstructs those tiers from a transaction stream. Writes
 * are grouped into per-stream *runs*: a run is a maximal sequence of
 * transactions from one stream (one GPU warp or one CPU thread) that are
 * contiguous in the address space — exactly what Optane's 256 B XPLine
 * write-combining buffer can merge. A run is classified when it closes:
 *
 *   - single-transaction runs are random-tier bytes;
 *   - multi-transaction runs contribute full, from-the-start-covered
 *     256 B lines at the aligned tier when the run begins on a 256 B
 *     boundary, and everything else at the unaligned tier.
 *
 * Streams are keyed explicitly (warp id / CPU thread id) rather than by
 * address adjacency so that two different warps appending to adjacent
 * regions do not masquerade as one well-formed stream — mirroring how
 * temporally interleaved writers defeat the XPLine buffer on real
 * hardware (this is why the paper's gpDB INSERT, whose rows are
 * contiguous but written warp-by-warp from unaligned offsets, lands on
 * the 3.13 GB/s tier, Fig 12).
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/** Byte totals per Optane access tier. */
struct NvmTierBytes {
    std::uint64_t seq_aligned = 0;   ///< 256 B-aligned sequential bytes
    std::uint64_t seq_unaligned = 0; ///< sequential but unaligned bytes
    std::uint64_t random = 0;        ///< isolated / random bytes

    std::uint64_t
    total() const
    {
        return seq_aligned + seq_unaligned + random;
    }

    NvmTierBytes
    operator-(const NvmTierBytes &o) const
    {
        return {seq_aligned - o.seq_aligned,
                seq_unaligned - o.seq_unaligned, random - o.random};
    }

    NvmTierBytes &
    operator+=(const NvmTierBytes &o)
    {
        seq_aligned += o.seq_aligned;
        seq_unaligned += o.seq_unaligned;
        random += o.random;
        return *this;
    }

    /** Per-tier equality (the determinism suite's comparison). */
    bool operator==(const NvmTierBytes &o) const = default;
};

/**
 * Classifies a write-transaction stream into Optane tiers and converts
 * classified bytes into simulated media time.
 */
class NvmModel
{
  public:
    explicit NvmModel(const SimConfig &cfg) : cfg_(&cfg) {}

    /**
     * Record one write transaction.
     *
     * @param stream  Identity of the writer (warp id, CPU thread id...).
     *                Transactions only merge into runs within a stream.
     * @param addr    PM byte address of the transaction.
     * @param size    Transaction size in bytes (must be non-zero).
     */
    void recordWrite(std::uint64_t stream, std::uint64_t addr,
                     std::uint64_t size);

    /**
     * Record an already-formed run of @p txns transactions covering
     * [addr, addr+size) contiguously — the bulk path used by CPU flush
     * loops and DMA-style writers, classified immediately without
     * going through the per-stream open-run machinery.
     */
    void recordRun(std::uint64_t addr, std::uint64_t size,
                   std::uint64_t txns);

    /** Record a read of @p bytes from PM. */
    void
    recordRead(std::uint64_t bytes)
    {
        read_bytes_ += bytes;
        ++read_ops_;
    }

    /**
     * Close all open runs and classify their bytes.
     *
     * Call at an execution boundary (kernel end, persist batch end);
     * classified byte counters are only complete after this.
     */
    void closeRuns();

    /** Open runs tracked per stream (XPLine buffer slots). */
    static constexpr std::size_t kRunsPerStream = 4;

    /** Classified write bytes so far (closeRuns() first for totals). */
    const NvmTierBytes &bytes() const { return bytes_; }

    /** Total write transactions recorded. */
    std::uint64_t writeTxns() const { return write_txns_; }

    /** Total read bytes recorded. */
    std::uint64_t readBytes() const { return read_bytes_; }

    /** Record scattered line-granular writes (CPU flush of sparse
     *  lines): all bytes land on the random tier. */
    void
    recordScattered(std::uint64_t bytes, std::uint64_t txns)
    {
        bytes_.random += bytes;
        write_txns_ += txns;
    }

    /**
     * Media time to absorb the classified writes in @p b.
     *
     * @param random_boost  Concurrency relief for the random tier
     *                      (>= 1; see SimConfig::nvm_gpu_random_boost).
     */
    SimNs writeTime(const NvmTierBytes &b, double random_boost = 1.0) const;

    /** Media time for all writes recorded so far. */
    SimNs writeTime() const { return writeTime(bytes_); }

    /** Media time for @p bytes of reads. */
    SimNs readTime(std::uint64_t bytes) const;

    /** Forget all recorded traffic and open runs. */
    void reset();

  private:
    struct Run {
        std::uint64_t start = 0;  ///< first byte of the run
        std::uint64_t end = 0;    ///< one past the last byte written
        std::uint64_t txns = 0;   ///< transactions merged into the run
        std::uint64_t last_use = 0;  ///< txn counter at last extension
    };

    /** Classify and retire a completed run. */
    void classify(const Run &run);

    // A writer interleaving a few destination regions (e.g. SRAD's
    // image + coefficient matrices) keeps several XPLine buffer
    // slots open at once; model a small fixed number per stream.
    struct StreamRuns {
        std::uint64_t stream = 0;
        bool used = false;
        std::uint8_t count = 0;  ///< open runs in runs[0..count)
        std::array<Run, kRunsPerStream> runs{};
    };

    static constexpr std::size_t kNoSlot = ~std::size_t(0);

    /** Slot for @p stream in the flat table, inserting if absent. */
    std::size_t findSlot(std::uint64_t stream);

    /** Double the table and rehash the active slots. */
    void grow();

    const SimConfig *cfg_;
    // recordWrite is the simulator's hottest call (every persist
    // transaction of every warp lands here), so the per-stream state
    // lives in an open-addressed flat table probed with a Fibonacci
    // hash, fronted by a last-stream cache — warps issue bursts, so
    // consecutive writes almost always hit the same stream. active_
    // lists used slots in insertion order; classification adds are
    // commutative, so close order never shows in the tier totals.
    std::vector<StreamRuns> table_;      ///< power-of-two capacity
    std::vector<std::uint32_t> active_;  ///< used slots, insertion order
    std::size_t last_slot_ = kNoSlot;    ///< last-stream cache
    std::uint64_t last_stream_ = 0;
    NvmTierBytes bytes_;
    std::uint64_t write_txns_ = 0;
    std::uint64_t read_bytes_ = 0;
    std::uint64_t read_ops_ = 0;
};

} // namespace gpm
