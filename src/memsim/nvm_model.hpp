/**
 * @file
 * Optane DCPMM performance model.
 *
 * Section 6.1 of the paper attributes the measured PM bandwidth of every
 * workload to three access-pattern tiers of the Optane media, measured
 * with the authors' own microbenchmark:
 *
 *   - sequential runs starting at a 256 B boundary:   12.5  GB/s
 *   - sequential runs starting unaligned:              3.13 GB/s
 *   - isolated (random) writes:                        0.72 GB/s
 *
 * The model reconstructs those tiers from a transaction stream. Writes
 * are grouped into per-stream *runs*: a run is a maximal sequence of
 * transactions from one stream (one GPU warp or one CPU thread) that are
 * contiguous in the address space — exactly what Optane's 256 B XPLine
 * write-combining buffer can merge. A run is classified when it closes:
 *
 *   - single-transaction runs are random-tier bytes;
 *   - multi-transaction runs contribute full, from-the-start-covered
 *     256 B lines at the aligned tier when the run begins on a 256 B
 *     boundary, and everything else at the unaligned tier.
 *
 * Streams are keyed explicitly (warp id / CPU thread id) rather than by
 * address adjacency so that two different warps appending to adjacent
 * regions do not masquerade as one well-formed stream — mirroring how
 * temporally interleaved writers defeat the XPLine buffer on real
 * hardware (this is why the paper's gpDB INSERT, whose rows are
 * contiguous but written warp-by-warp from unaligned offsets, lands on
 * the 3.13 GB/s tier, Fig 12).
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "memsim/media_backend.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/**
 * Classifies a write-transaction stream into Optane tiers and converts
 * classified bytes into simulated media time. This is the paper's
 * single-DIMM model and the reference MediaBackend: the interleaved,
 * CXL and hybrid backends (media_backend.cpp) all build on it.
 */
class NvmModel final : public MediaBackend
{
  public:
    explicit NvmModel(const SimConfig &cfg) : cfg_(&cfg) {}

    MediaKind kind() const override { return MediaKind::Nvm; }

    /**
     * Record one write transaction.
     *
     * @param stream  Identity of the writer (warp id, CPU thread id...).
     *                Transactions only merge into runs within a stream.
     * @param addr    PM byte address of the transaction.
     * @param size    Transaction size in bytes (must be non-zero).
     */
    void recordWrite(std::uint64_t stream, std::uint64_t addr,
                     std::uint64_t size) override;

    /**
     * Record an already-formed run of @p txns transactions covering
     * [addr, addr+size) contiguously — the bulk path used by CPU flush
     * loops and DMA-style writers, classified immediately without
     * going through the per-stream open-run machinery.
     */
    void recordRun(std::uint64_t addr, std::uint64_t size,
                   std::uint64_t txns) override;

    /** Record a read of @p bytes from PM. */
    void
    recordRead(std::uint64_t bytes) override
    {
        read_bytes_ += bytes;
        ++read_ops_;
    }

    /**
     * Close all open runs and classify their bytes.
     *
     * Call at an execution boundary (kernel end, persist batch end);
     * classified byte counters are only complete after this.
     */
    void closeRuns() override;

    /** Open runs tracked per stream (XPLine buffer slots). */
    static constexpr std::size_t kRunsPerStream = 4;

    /** Classified write bytes so far (closeRuns() first for totals). */
    const NvmTierBytes &bytes() const override { return bytes_; }

    /** Total write transactions recorded. */
    std::uint64_t writeTxns() const override { return write_txns_; }

    /** Total read bytes recorded. */
    std::uint64_t readBytes() const override { return read_bytes_; }

    /** Total read operations recorded. */
    std::uint64_t readOps() const override { return read_ops_; }

    /** Record scattered line-granular writes (CPU flush of sparse
     *  lines): all bytes land on the random tier. */
    void
    recordScattered(std::uint64_t bytes, std::uint64_t txns) override
    {
        bytes_.random += bytes;
        write_txns_ += txns;
    }

    /** Media time for @p bytes of reads. */
    SimNs readTime(std::uint64_t bytes) const override;

    /** Forget all recorded traffic and open runs. */
    void reset() override;

  protected:
    SimNs writeTimeImpl(const NvmTierBytes &b,
                        double random_boost) const override;

  private:
    struct Run {
        std::uint64_t start = 0;  ///< first byte of the run
        std::uint64_t end = 0;    ///< one past the last byte written
        std::uint64_t txns = 0;   ///< transactions merged into the run
        std::uint64_t last_use = 0;  ///< txn counter at last extension
    };

    /** Classify and retire a completed run. */
    void classify(const Run &run);

    // A writer interleaving a few destination regions (e.g. SRAD's
    // image + coefficient matrices) keeps several XPLine buffer
    // slots open at once; model a small fixed number per stream.
    struct StreamRuns {
        std::uint64_t stream = 0;
        bool used = false;
        std::uint8_t count = 0;  ///< open runs in runs[0..count)
        std::array<Run, kRunsPerStream> runs{};
    };

    static constexpr std::size_t kNoSlot = ~std::size_t(0);

    /** Slot for @p stream in the flat table, inserting if absent. */
    std::size_t findSlot(std::uint64_t stream);

    /** Double the table and rehash the active slots. */
    void grow();

    const SimConfig *cfg_;
    // recordWrite is the simulator's hottest call (every persist
    // transaction of every warp lands here), so the per-stream state
    // lives in an open-addressed flat table probed with a Fibonacci
    // hash, fronted by a last-stream cache — warps issue bursts, so
    // consecutive writes almost always hit the same stream. active_
    // lists used slots in insertion order; classification adds are
    // commutative, so close order never shows in the tier totals.
    std::vector<StreamRuns> table_;      ///< power-of-two capacity
    std::vector<std::uint32_t> active_;  ///< used slots, insertion order
    std::size_t last_slot_ = kNoSlot;    ///< last-stream cache
    std::uint64_t last_stream_ = 0;
    NvmTierBytes bytes_;
    std::uint64_t write_txns_ = 0;
    std::uint64_t read_bytes_ = 0;
    std::uint64_t read_ops_ = 0;
};

} // namespace gpm
