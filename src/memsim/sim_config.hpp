/**
 * @file
 * Simulated machine configuration.
 *
 * Mirrors Table 3 of the paper (4x Xeon Gold 6242, NVIDIA Titan RTX,
 * 8x128 GB Optane NVDIMM, PCIe 3.0 x16) plus the cost constants the
 * evaluation section reports from the authors' own microbenchmarks:
 *
 *  - Optane write tiers: 12.5 / 3.13 / 0.72 GB/s for 256 B-aligned
 *    sequential / unaligned sequential / random accesses (section 6.1).
 *  - PCIe 3.0 usable bandwidth ~13 GB/s (Fig 12's "Max PCIe BW" line).
 *  - CPU flush-thread scaling plateau of 1.47x (Fig 3a).
 *  - GPU persist scaling plateau ~4x at 1-2 K threads (Fig 3b), which
 *    calibrates the PCIe non-posted concurrency bound.
 *
 * Every bench and test takes a SimConfig so experiments are explicit
 * about the machine they model; defaults reproduce the paper's testbed.
 */
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace gpm {

/**
 * Where the persistence domain boundary sits for device (GPU) writes.
 *
 * This single knob is the paper's core systems insight: a system-scope
 * fence gives persistence if and only if everything the fence waits on
 * is inside the persistence domain.
 */
enum class PersistDomain {
    /**
     * DDIO enabled (server default): GPU writes land in the CPU's
     * volatile LLC; a system-scope fence completes there, so completion
     * does NOT imply durability. This is the broken-for-persistence
     * configuration GPM-NDP runs in.
     */
    LlcVolatile,
    /**
     * DDIO disabled for the GPU (gpm_persist_begin): writes bypass the
     * LLC and a system-scope fence completes only at the ADR-protected
     * memory-controller WPQ, which is durable. This is GPM.
     */
    McDurable,
    /**
     * eADR (future hardware): the LLC itself is drained on power
     * failure, so it is inside the persistence domain. Fences complete
     * at the LLC and writes are durable on arrival. GPM-eADR/CAP-eADR.
     */
    LlcDurable,
};

/** True when a system-scope fence completion implies durability. */
constexpr bool
fenceIsPersist(PersistDomain d)
{
    return d != PersistDomain::LlcVolatile;
}

/**
 * Which media model sits behind the PM address space.
 *
 * The paper's testbed is one logical Optane region; ROADMAP's
 * multi-backend item generalizes it into pluggable media. Selection
 * is functional-state-free: every backend observes the same
 * transaction stream and only classifies/prices it differently, so
 * recovery guarantees (torture signatures) are media-invariant.
 */
enum class MediaKind {
    Nvm,         ///< single-DIMM Optane three-tier model (the paper)
    Interleaved, ///< addresses striped across N DIMMs, per-DIMM tiers
    Cxl,         ///< CXL memory expander: interleaved PM behind a port
    Hybrid,      ///< DRAM front cache over NVM with writeback migration
};

/** Parameters of the selected media backend (see docs/memsim.md). */
struct MediaConfig {
    MediaKind kind = MediaKind::Nvm;

    // ---- interleaved multi-DIMM --------------------------------------
    /** DIMMs in the interleave set (power of two, 1..64). */
    int dimms = 4;
    /** Stripe granule: consecutive granules land on consecutive DIMMs
     *  (power of two, >= xpline_bytes). */
    std::size_t interleave_bytes = 4096;

    // ---- CXL memory expander -----------------------------------------
    /** Media channels interleaved inside the expander device. */
    int cxl_dev_dimms = 4;
    /** Device port bandwidth: caps the aggregate media rate, so
     *  aligned-sequential bursts become port-bound while random
     *  traffic stays media-bound. */
    GBps cxl_port_gbps = 26.0;
    /** Far-memory hop added to every read's idle latency. */
    SimNs cxl_read_extra_ns = 180;

    // ---- hybrid DRAM-cache-over-NVM ----------------------------------
    /** Capacity of the battery-backed DRAM front tier. */
    std::size_t dram_cache_bytes = std::size_t(4) << 20;

    bool operator==(const MediaConfig &) const = default;
};

/** Simulated machine parameters (defaults model the paper's testbed). */
struct SimConfig {
    // ---- simulator execution (host-side, not modelled time) -----------
    /**
     * Host worker threads for the parallel block-scheduled executor
     * (see gpusim/block_scheduler.hpp). 1 = sequential (default, the
     * reference order every parallel run must reproduce bit-for-bit);
     * 0 = one worker per hardware thread; N = exactly N workers, the
     * calling thread included. Launches whose KernelDesc sets
     * block_independent run parallel — crash-armed ones included,
     * with the armed ordinal mapped onto the block-ordered replay
     * (DESIGN.md decision #8) — and their merged stats, NVM tiers and
     * durable image are bit-identical to workers=1, so this knob
     * never changes results — only wall-clock.
     */
    int exec_workers = 1;

    // ---- GPU (NVIDIA Titan RTX class) ---------------------------------
    int num_sms = 72;              ///< streaming multiprocessors
    int warp_size = 32;            ///< threads per warp
    int max_resident_threads = 65536;  ///< concurrency ceiling on device
    std::size_t coalesce_bytes = 128;  ///< HW coalescing granularity
    double gpu_ops_per_ns = 1000.0;    ///< aggregate abstract ALU work rate
    GBps hbm_gbps = 250.0;         ///< device-memory bandwidth (Fig 12 text)
    SimNs kernel_launch_ns = 5000; ///< per-launch driver/runtime overhead

    // ---- CPU (Xeon Gold 6242 class) ------------------------------------
    int cpu_max_threads = 64;      ///< 4 sockets x 16 cores
    double cpu_ops_per_ns = 1.0;   ///< abstract work rate per CPU thread
                                   ///< (memory-bound kernels, all
                                   ///< sockets aggregated)
    SimNs cpu_fork_join_ns = 10000;  ///< parallel-region fork/join cost
    SimNs cpu_flush_line_ns = 25;  ///< CLFLUSHOPT issue cost per line
    SimNs cpu_pm_drain_ns = 300;   ///< SFENCE waiting on a PM-bound line
    GBps dram_gbps = 80.0;         ///< host DRAM bandwidth
    std::size_t cache_line = 64;   ///< CPU cache-line (flush) granularity
    /**
     * Single-thread flush+drain persist rate. Deliberately below the
     * media's sequential tiers: CAP's data arrives from the GPU into
     * the LLC, so non-temporal stores are not available (section 3)
     * and every line pays CLFLUSHOPT round trips.
     */
    GBps cpu_flush_gbps = 1.8;
    double cpu_flush_plateau = 1.47;  ///< Fig 3(a): multi-thread ceiling
    SimNs cpu_sfence_ns = 100;     ///< drain (SFENCE) latency

    // ---- PCIe 3.0 x16 ----------------------------------------------------
    GBps pcie_gbps = 13.0;         ///< achievable bandwidth (Fig 12)
    SimNs pcie_persist_op_ns = 1000;  ///< small write + system-fence RTT
    int pcie_concurrency = 1024;   ///< in-flight non-posted ops (Fig 3b)
    SimNs dma_init_ns = 10000;     ///< cudaMemcpy/DMA engine setup cost

    // ---- PM media backend (docs/memsim.md) ------------------------------
    /**
     * Which media model prices the PM transaction stream, and its
     * parameters. Functional durability lives in PmPool, so changing
     * the backend never changes recovery outcomes — only tier
     * classification and media timing. Overridable per process via the
     * GPM_MEDIA environment variable (mediaFromEnv) and per tool via
     * --media flags.
     */
    MediaConfig media;

    // ---- Optane DCPMM ---------------------------------------------------
    GBps nvm_seq_aligned_gbps = 12.5;   ///< 256 B-aligned sequential writes
    GBps nvm_seq_unaligned_gbps = 3.13; ///< sequential, unaligned
    GBps nvm_random_gbps = 0.72;        ///< random writes
    GBps nvm_read_gbps = 6.6;           ///< read bandwidth
    SimNs nvm_read_latency_ns = 300;    ///< idle read latency
    std::size_t xpline_bytes = 256;     ///< internal write-combining grain
    /**
     * Random-tier bandwidth relief for massively concurrent writers.
     * The testbed interleaves 8 DIMMs (Table 3), so thousands of GPU
     * threads writing random lines spread across media channels and
     * sustain more than the single-stream 0.72 GB/s (Fig 12 measures
     * ~1.5 GB/s for gpKVS). Applied only to device-issued traffic.
     */
    double nvm_gpu_random_boost = 1.6;

    /**
     * Bytes of a write burst the ADR-protected write-pending queues
     * absorb at full speed before the media tiering bites (~64
     * entries x 64 B per controller across 8 DIMMs). Small
     * per-iteration bursts — BFS's per-level cost updates — ride
     * entirely in the WPQ; megabyte-scale traffic does not notice.
     */
    std::uint64_t wpq_absorb_bytes = 32 * 1024;

    // ---- Fences (where a system-scope fence completes) -------------------
    SimNs fence_mc_ns = 500;       ///< completes at memory controller (GPM)
    SimNs fence_llc_ns = 200;      ///< completes at LLC (DDIO on / eADR)

    // ---- conventional (lock-based) logging ---------------------------------
    /**
     * Serialized cost of one conventional-log insert while holding
     * the partition lock: a PM atomic acquire, the ordered entry and
     * tail persists, and the release — several PCIe round trips.
     */
    SimNs conv_log_lock_ns = 4000;

    // ---- OS / filesystem (CAP-fs via ext4-DAX) ----------------------------
    SimNs syscall_ns = 4000;       ///< write()/lseek() entry cost
    SimNs fsync_ns = 60000;        ///< fsync latency (journal commit)
    double fs_journal_factor = 2.0;  ///< metadata/journal write expansion
    std::size_t fs_block_bytes = 4096;  ///< filesystem block granularity
    GBps fs_write_gbps = 1.8;      ///< kernel copy+flush path to DAX file

    // ---- GPUfs comparator -------------------------------------------------
    SimNs gpufs_call_ns = 40000;   ///< per GPU->CPU RPC (gwrite etc.)
    std::size_t gpufs_max_file_bytes = std::size_t(2) << 30;
                                   ///< paper: >2 GB files fail on GPUfs

    /**
     * CPU flush-thread scaling factor (Fig 3a).
     *
     * Saturating curve fitted through the paper's measured points
     * (1 thread = 1.00x ... 64 threads = 1.46x): s(t) = P*t / (t + P - 1)
     * with plateau P, so s(1) == 1 exactly and s(inf) == P.
     */
    double
    cpuFlushScaling(int threads) const
    {
        if (threads < 1)
            threads = 1;
        const double p = cpu_flush_plateau;
        const double t = static_cast<double>(threads);
        return p * t / (t + (p - 1.0));
    }

    /** Aggregate CPU persist bandwidth with @p threads flushing. */
    GBps
    cpuPersistGbps(int threads) const
    {
        return cpu_flush_gbps * cpuFlushScaling(threads);
    }

    /**
     * Projection preset: GPM over CXL-attached PM (section 3.3's
     * future-work direction). CXL 2.0 x16 offers more bandwidth and a
     * lower-latency coherent fabric than PCIe 3.0, and the device can
     * keep more persist operations in flight; the media itself is
     * unchanged. The paper argues GPM's design principles carry over
     * — the cxl projection bench quantifies how much of GPM's
     * advantage is interconnect-bound.
     */
    static SimConfig
    cxlAttachedPm()
    {
        SimConfig cfg;
        cfg.pcie_gbps = 50.0;          // CXL 2.0 x16 usable
        cfg.pcie_persist_op_ns = 400;  // coherent-fabric round trip
        cfg.pcie_concurrency = 4096;
        cfg.fence_mc_ns = 250;         // global persistent flush path
        cfg.dma_init_ns = 4000;        // lighter-weight transfers
        return cfg;
    }
};

} // namespace gpm
