/**
 * @file
 * Host-side cost models: CPU flush/drain persistence and the CAP-fs
 * filesystem path.
 *
 * These are the two ways a GPU application can reach PM durability
 * today (section 3 of the paper): CAP-mm persists with user-space
 * CLFLUSHOPT + SFENCE from a pool of CPU threads, CAP-fs writes to a
 * PM-resident ext4-DAX file and fsync()s.
 */
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/** CPU flush+drain persistence (the CAP-mm path, Fig 3a). */
class CpuPersistModel
{
  public:
    explicit CpuPersistModel(const SimConfig &cfg) : cfg_(&cfg) {}

    /**
     * Time for @p threads CPU threads to flush and drain @p bytes that
     * currently sit in the LLC (data arrived from the GPU, so
     * non-temporal stores are not applicable — section 3, CAP-mm).
     */
    SimNs
    persistTime(std::uint64_t bytes, int threads) const
    {
        if (bytes == 0)
            return 0.0;
        return transferNs(bytes, cfg_->cpuPersistGbps(threads)) +
               cfg_->cpu_sfence_ns;
    }

    /**
     * Time for the CPU to copy @p bytes from DRAM into the PM-mapped
     * region before flushing (the store half of CAP-mm's step 2).
     */
    SimNs
    copyTime(std::uint64_t bytes) const
    {
        return transferNs(bytes, cfg_->dram_gbps);
    }

  private:
    const SimConfig *cfg_;
};

/** ext4-DAX filesystem write+fsync path (CAP-fs). */
class FsModel
{
  public:
    explicit FsModel(const SimConfig &cfg) : cfg_(&cfg) {}

    /**
     * Time for write(2) of @p bytes into a DAX file followed by
     * fsync(2). Bytes are charged at filesystem-block granularity and
     * expanded by the journal factor; each call pays syscall entry.
     *
     * @param bytes  Payload size.
     * @param calls  Number of write() invocations used.
     */
    SimNs
    writeFsyncTime(std::uint64_t bytes, std::uint64_t calls) const
    {
        if (bytes == 0)
            return 0.0;
        const std::uint64_t blocked =
            alignUp(bytes, cfg_->fs_block_bytes);
        const double expanded =
            static_cast<double>(blocked) * cfg_->fs_journal_factor;
        return static_cast<double>(calls) * cfg_->syscall_ns +
               expanded / cfg_->fs_write_gbps + cfg_->fsync_ns;
    }

  private:
    const SimConfig *cfg_;
};

} // namespace gpm
