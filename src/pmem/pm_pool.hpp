/**
 * @file
 * Crash-consistent simulated persistent-memory device.
 *
 * PmPool is the functional heart of the reproduction: it holds two
 * images of the PM contents —
 *
 *   - the *visible* image: what loads observe while the system runs
 *     (writes are immediately visible, UVA-style, regardless of
 *     durability), and
 *   - the *durable* image: what survives a crash.
 *
 * A store moves from visible-only to durable according to the machine's
 * PersistDomain (see sim_config.hpp):
 *
 *   - McDurable (GPM, DDIO off): device stores are pending until the
 *     issuing owner executes a system-scope fence (persistOwner).
 *   - LlcVolatile (DDIO on): device stores are pending until a CPU
 *     thread flushes their address range (persistRange); a device
 *     fence orders but does NOT persist — exactly the trap GPM-NDP
 *     and naive UVA writes fall into.
 *   - LlcDurable (eADR): stores are durable on arrival.
 *
 * crash() models a power failure: every still-pending extent is either
 * dropped or — with a caller-chosen probability — retained, modelling
 * cache lines that happened to be evicted to the media before the
 * failure. Arbitrary subsets of unpersisted writes surviving is the
 * adversarial reordering that undo logging must tolerate; recovery
 * tests sweep many eviction seeds (the NVBitFI analog of section 6.2).
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

class PmEventRecorder;

/**
 * Zero-initialized byte image backed by calloc.
 *
 * Pools are allocated at full testbed capacity (hundreds of MB) per
 * Machine but most workloads touch a fraction of it; calloc leaves
 * untouched pages mapped to the kernel zero page, so construction is
 * O(1) in faulted memory where the previous std::vector(capacity, 0)
 * paid a memset over every page. Copy assignment (the crash-time
 * visible = durable reset) still touches everything, as it must.
 */
class PmImage
{
  public:
    explicit PmImage(std::size_t n)
        : data_(static_cast<std::uint8_t *>(std::calloc(n ? n : 1, 1))),
          size_(n)
    {
        GPM_REQUIRE(data_ != nullptr, "PM image allocation of ", n,
                    " bytes failed");
    }

    PmImage(const PmImage &o) : PmImage(o.size_)
    {
        std::memcpy(data_, o.data_, size_);
    }

    PmImage(PmImage &&o) noexcept : data_(o.data_), size_(o.size_)
    {
        o.data_ = nullptr;
        o.size_ = 0;
    }

    PmImage &
    operator=(const PmImage &o)
    {
        if (this != &o) {
            if (size_ != o.size_) {
                PmImage fresh(o.size_);
                std::swap(data_, fresh.data_);
                std::swap(size_, fresh.size_);
            }
            std::memcpy(data_, o.data_, size_);
        }
        return *this;
    }

    PmImage &
    operator=(PmImage &&o) noexcept
    {
        std::swap(data_, o.data_);
        std::swap(size_, o.size_);
        return *this;
    }

    ~PmImage() { std::free(data_); }

    std::uint8_t *data() { return data_; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    std::uint8_t *data_;
    std::size_t size_;
};

/** Identity of a writer for fence scoping (GPU thread / CPU thread). */
using OwnerId = std::uint64_t;

/** Owner namespace tag for CPU threads (GPU owners count from zero). */
constexpr OwnerId kCpuOwnerBase = OwnerId(1) << 62;

/** A named allocation inside the pool (the gpm_map unit). */
struct PmRegion {
    std::uint64_t offset = 0;  ///< byte offset of the region in the pool
    std::uint64_t size = 0;    ///< region size in bytes
};

/**
 * Lifetime counters for crash/persist activity. The torture runner
 * asserts on these after each scenario: exactly one crash happened,
 * zero-probability crashes produced zero survivors, and eADR crashes
 * never reached the probabilistic tearing path at all.
 */
struct PmPoolStats {
    std::uint64_t crashes = 0;           ///< crash() invocations
    std::uint64_t extents_drained = 0;   ///< extents copied to durable
    std::uint64_t crash_sub_extents = 0; ///< 128 B lines rolled at crash
    std::uint64_t crash_survivors = 0;   ///< lines that won the roll
    std::uint64_t extents_merged = 0;    ///< appends coalesced into the
                                         ///< owner's previous extent
};

/** Simulated byte-addressable persistent memory with crash semantics. */
class PmPool
{
  public:
    /**
     * @param capacity  Pool size in bytes.
     * @param domain    Where the persistence-domain boundary sits.
     * @param seed      Seed for crash-time partial-eviction decisions.
     */
    PmPool(std::size_t capacity, PersistDomain domain,
           std::uint64_t seed = 1);

    std::size_t capacity() const { return visible_.size(); }
    PersistDomain domain() const { return domain_; }

    /** Change the persistence domain (gpm_persist_begin/end toggling). */
    void setDomain(PersistDomain d);

    // ---- persistency event stream (gpmcheck) ---------------------------

    /**
     * Attach (or detach, with nullptr) a persistency event recorder.
     * Every durability-relevant pool action is then recorded with its
     * current-domain context; the default null pointer keeps the hot
     * paths at a single pointer test (telemetry-style disabled path).
     * The recorder must outlive the pool or be detached first.
     */
    void setRecorder(PmEventRecorder *rec);

    /** The attached recorder, or nullptr. */
    PmEventRecorder *recorder() const { return recorder_; }

    // ---- region registry (gpm_map substrate) ---------------------------

    /**
     * Map a named region, creating it when @p create is true.
     *
     * Creation bump-allocates @p size bytes at 256 B alignment; opening
     * an existing region returns its recorded placement and requires
     * @p size to be zero or to match.
     */
    PmRegion map(const std::string &name, std::uint64_t size, bool create);

    /** True when a region of this name exists. */
    bool hasRegion(const std::string &name) const;

    /** Look up an existing region; fatal() when absent. */
    PmRegion region(const std::string &name) const;

    // ---- data path -------------------------------------------------------

    /** Store from a device (GPU) context. Visible at once; durability
     *  follows the persistence domain. */
    void deviceWrite(OwnerId owner, std::uint64_t addr, const void *src,
                     std::uint64_t size);

    /** Store from a CPU context (CAP paths). Pending until flushed,
     *  or durable immediately under eADR. */
    void cpuWrite(OwnerId owner, std::uint64_t addr, const void *src,
                  std::uint64_t size);

    /** Load from the visible image. */
    void read(std::uint64_t addr, void *dst, std::uint64_t size) const;

    /** Validate [addr, addr+size) against the pool bounds (fatal on
     *  violation) without touching data. The parallel executor's
     *  buffered stores check bounds at execution time so errors
     *  surface at the faulting phase, not at replay. */
    void
    requireRange(std::uint64_t addr, std::uint64_t size) const
    {
        checkRange(addr, size);
    }

    /** Typed convenience load from the visible image. */
    template <typename T>
    T
    load(std::uint64_t addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed convenience device store. */
    template <typename T>
    void
    storeDevice(OwnerId owner, std::uint64_t addr, const T &v)
    {
        deviceWrite(owner, addr, &v, sizeof(T));
    }

    // ---- persistence ------------------------------------------------------

    /**
     * System-scope fence semantics for @p owner's pending stores.
     *
     * Under McDurable this is a persist (GPM's gpm_persist); under
     * LlcVolatile it only orders (returns false so callers can detect
     * that durability was NOT achieved); under LlcDurable stores were
     * already durable.
     *
     * @return true when the owner's stores are durable after the call.
     */
    bool persistOwner(OwnerId owner);

    /** CPU flush path: persist all pending stores overlapping
     *  [addr, addr+size), regardless of owner (CLFLUSHOPT semantics). */
    void persistRange(std::uint64_t addr, std::uint64_t size);

    /** Persist everything pending (e.g. an orderly shutdown). */
    void persistAll();

    // ---- crash ------------------------------------------------------------

    /**
     * Power failure: every pending extent is first split at 128 B
     * cache-line boundaries and each sub-extent independently survives
     * with probability @p survive_prob (natural eviction before the
     * crash); everything else is lost and the visible image is reset
     * to the durable image, i.e. the post-reboot state.
     *
     * Line granularity matters: a multi-chunk HCL entry or a 60 B row
     * straddling a line can be *torn* — partially durable — which is
     * precisely the adversarial state undo-log recovery must tolerate.
     * Per-extent survival could never produce it.
     *
     * Under LlcDurable (eADR) all pending extents drain — that is the
     * hardware guarantee.
     */
    void crash(double survive_prob = 0.0);

    /** Crash-granularity: survival is decided per this many bytes. */
    static constexpr std::uint64_t kCrashLineBytes = 128;

    /** Number of pending (visible but not durable) extents. */
    std::size_t pendingExtents() const;

    /** Pending bytes (sum of extent sizes). Stores that abut or
     *  overlap the owner's most recent extent coalesce on append, so
     *  a contiguous or repeatedly-rewritten stream never
     *  double-counts; only a re-touch of an *older* extent still can. */
    std::uint64_t pendingBytes() const;

    /** Lifetime crash/persist counters (see PmPoolStats). */
    const PmPoolStats &stats() const { return stats_; }

    // ---- inspection & file backing ------------------------------------

    /** Durable image base (tests inspect what a crash would preserve). */
    const std::uint8_t *durable() const { return durable_.data(); }

    /** Visible image base. */
    const std::uint8_t *visible() const { return visible_.data(); }

    /** Typed load from the durable image (test helper). */
    template <typename T>
    T
    loadDurable(std::uint64_t addr) const
    {
        GPM_REQUIRE(addr + sizeof(T) <= durable_.size(),
                    "durable load out of range");
        T v;
        std::memcpy(&v, durable_.data() + addr, sizeof(T));
        return v;
    }

    /** Serialize the durable image + region table to @p path. */
    void saveDurable(const std::string &path) const;

    /** Restore a pool previously saved with saveDurable. */
    static PmPool loadDurable(const std::string &path,
                              PersistDomain domain,
                              std::uint64_t seed = 1);

  private:
    struct Extent {
        std::uint64_t addr;
        std::uint64_t size;
    };

    void checkRange(std::uint64_t addr, std::uint64_t size) const;
    void writeCommon(OwnerId owner, std::uint64_t addr, const void *src,
                     std::uint64_t size);
    void drain(const Extent &e);

    PmImage visible_;
    PmImage durable_;
    PmEventRecorder *recorder_ = nullptr;
    // std::map for deterministic crash-survival iteration order.
    std::map<OwnerId, std::vector<Extent>> pending_;
    std::map<std::string, PmRegion> regions_;
    std::uint64_t alloc_cursor_ = 0;
    PersistDomain domain_;
    Rng rng_;
    PmPoolStats stats_;
};

} // namespace gpm
