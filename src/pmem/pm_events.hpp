/**
 * @file
 * Deterministic persistency event stream — the gpmcheck substrate.
 *
 * A PmEventRecorder, when attached to a PmPool, captures every
 * durability-relevant action as one flat event list: PM stores,
 * system-scope fences (with the bytes they actually drained), CPU
 * range flushes, domain toggles (gpm_persist_begin/end), the crash
 * itself, and loads issued inside a workload's recovery window. The
 * executor brackets the stream with launch begin/end markers carrying
 * kernel name, geometry, the crash-armed flag, and the running
 * thread-phase so every event has exact kernel/phase/owner
 * provenance.
 *
 * Determinism contract: stores and fences reach the pool in
 * block-major sequential order — the parallel executor buffers
 * shadow ops and replays them in exactly that order (see
 * block_scheduler.hpp) — so the captured stream is bit-identical at
 * any executor width and any sweep worker count. streamHash() is the
 * cheap fingerprint the determinism tests compare.
 *
 * The recorder is also where workloads declare *intent*: which PM
 * ranges hold recoverable data, which hold commit records (log
 * tails, checkpoint flips), what the atomic-update granule is, and
 * which ranges must persist before which. The analyzer
 * (analysis/analyzer.hpp) replays the event stream against these
 * declarations to prove or refute persist-ordering properties
 * without crashing anything.
 *
 * Disabled path: the pool holds a plain recorder pointer, null by
 * default; every hook is a single pointer test, the same
 * one-load-and-branch budget the telemetry layer spends.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "memsim/sim_config.hpp"

namespace gpm {

/** Same alias as pm_pool.hpp (redeclaration of an alias is legal). */
using OwnerId = std::uint64_t;

enum class PmEventKind : std::uint8_t {
    LaunchBegin,   ///< kernel launch starts (addr=blocks, size=threads)
    LaunchEnd,     ///< launch retired or crashed out
    Store,         ///< PM store, visible at once (device or CPU owner)
    Fence,         ///< system-scope fence by owner
    FlushRange,    ///< CPU flush of [addr, addr+size)
    PersistAll,    ///< orderly-shutdown persist of everything pending
    DomainSet,     ///< persist-domain toggle (addr = new domain)
    Crash,         ///< power failure (addr = survive_prob * 1e6)
    RecoveryBegin, ///< workload recovery window opens
    RecoveryEnd,   ///< recovery window closes
    RecoveryRead,  ///< PM load issued inside the recovery window
};

/** One durability-relevant action, with provenance. */
struct PmEvent {
    PmEventKind kind{};
    PersistDomain domain{};    ///< domain in effect when recorded
    bool armed = false;        ///< inside a crash-armed launch
    std::uint32_t kernel = 0;  ///< interned name index + 1; 0 = host
    std::uint32_t launch = 0;  ///< launch ordinal (1-based); 0 = host
    std::uint32_t phase = 0;   ///< executor phase within the launch
    std::uint32_t ordinal = 0; ///< per-launch store/fence ordinal, 1-based
    OwnerId owner = 0;         ///< store/fence owner (CPU bit preserved)
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
    std::uint64_t drained = 0; ///< bytes this event made durable
};

/** What a declared range holds. */
enum class PmRangeKind : std::uint8_t {
    Data,   ///< recoverable payload (rows, pairs, partial sums)
    Commit, ///< commit record: log tail, flag, checkpoint flip
};

/** A workload's declaration of durable intent for one PM range. */
struct PmDeclaredRange {
    std::string label;          ///< stable name, e.g. "gpkvs.data"
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
    std::uint32_t atomic_unit = 0; ///< torn-update granule; 0 = none
    PmRangeKind kind = PmRangeKind::Data;
};

/** "Stores to `first` must be durable no later than stores to `then`";
 *  strict additionally forbids persisting in the same epoch (the
 *  coalesced-sentinel hazard: one fence draining entry and tail
 *  together can tear at crash-line granularity). */
struct PmOrderRule {
    std::string first;
    std::string then;
    bool strict = false;
};

/** Captures the event stream and the declaration registry. */
class PmEventRecorder
{
  public:
    // ---- declarations (workload / gpm-runtime intent) -----------------

    void
    declareRange(const std::string &label, std::uint64_t addr,
                 std::uint64_t size, std::uint32_t atomic_unit = 0,
                 PmRangeKind kind = PmRangeKind::Data)
    {
        for (PmDeclaredRange &r : ranges_) {
            if (r.label == label) {
                r = {label, addr, size, atomic_unit, kind};
                return;
            }
        }
        ranges_.push_back({label, addr, size, atomic_unit, kind});
    }

    void
    declareOrder(const std::string &first, const std::string &then,
                 bool strict)
    {
        for (const PmOrderRule &o : orders_)
            if (o.first == first && o.then == then)
                return;
        orders_.push_back({first, then, strict});
    }

    // ---- executor context ---------------------------------------------

    void
    launchBegin(const std::string &kernel_name, std::uint32_t blocks,
                std::uint32_t block_threads, bool armed)
    {
        cur_kernel_ = internKernel(kernel_name);
        cur_launch_ = ++launch_count_;
        cur_armed_ = armed;
        phase_ = 0;
        store_ord_ = 0;
        fence_ord_ = 0;
        push(PmEventKind::LaunchBegin, domain_, 0, blocks,
             block_threads, 0, 0);
    }

    void
    launchEnd()
    {
        push(PmEventKind::LaunchEnd, domain_, 0, 0, 0, 0, 0);
        cur_kernel_ = 0;
        cur_launch_ = 0;
        cur_armed_ = false;
        phase_ = 0;
    }

    void setPhase(std::uint32_t p) { phase_ = p; }

    void
    recoveryBegin()
    {
        in_recovery_ = true;
        push(PmEventKind::RecoveryBegin, domain_, 0, 0, 0, 0, 0);
    }

    void
    recoveryEnd()
    {
        push(PmEventKind::RecoveryEnd, domain_, 0, 0, 0, 0, 0);
        in_recovery_ = false;
    }

    bool inRecovery() const { return in_recovery_; }

    // ---- pool events ---------------------------------------------------

    void
    store(PersistDomain d, OwnerId owner, std::uint64_t addr,
          std::uint64_t size)
    {
        domain_ = d;
        push(PmEventKind::Store, d, owner, addr, size, ++store_ord_, 0);
    }

    void
    fence(PersistDomain d, OwnerId owner, std::uint64_t drained)
    {
        domain_ = d;
        push(PmEventKind::Fence, d, owner, 0, 0, ++fence_ord_, drained);
    }

    void
    flushRange(PersistDomain d, std::uint64_t addr, std::uint64_t size,
               std::uint64_t drained)
    {
        domain_ = d;
        push(PmEventKind::FlushRange, d, 0, addr, size, 0, drained);
    }

    void
    persistAll(PersistDomain d, std::uint64_t drained)
    {
        domain_ = d;
        push(PmEventKind::PersistAll, d, 0, 0, 0, 0, drained);
    }

    void
    domainSet(PersistDomain d)
    {
        domain_ = d;
        push(PmEventKind::DomainSet, d, 0,
             static_cast<std::uint64_t>(d), 0, 0, 0);
    }

    void
    crash(PersistDomain d, double survive_prob, std::uint64_t drained)
    {
        push(PmEventKind::Crash, d, 0,
             static_cast<std::uint64_t>(survive_prob * 1e6), 0, 0,
             drained);
    }

    void
    recoveryRead(PersistDomain d, std::uint64_t addr, std::uint64_t size)
    {
        push(PmEventKind::RecoveryRead, d, 0, addr, size, 0, 0);
    }

    // ---- access --------------------------------------------------------

    const std::vector<PmEvent> &events() const { return events_; }
    const std::vector<PmDeclaredRange> &ranges() const { return ranges_; }
    const std::vector<PmOrderRule> &orders() const { return orders_; }

    /** Kernel name for PmEvent::kernel (0 = host context). */
    const std::string &
    kernelName(std::uint32_t idx) const
    {
        static const std::string host = "host";
        return idx == 0 ? host : kernels_[idx - 1];
    }

    /** FNV fingerprint of the whole stream, field by field (stable
     *  across struct layout/padding changes). */
    std::uint64_t
    streamHash() const
    {
        std::uint64_t h = kFnvOffset;
        for (const std::string &k : kernels_)
            h = fnv1aStr(k, h);
        for (const PmEvent &e : events_) {
            h = fnv1aU64(static_cast<std::uint64_t>(e.kind), h);
            h = fnv1aU64(static_cast<std::uint64_t>(e.domain), h);
            h = fnv1aU64(e.armed, h);
            h = fnv1aU64(e.kernel, h);
            h = fnv1aU64(e.launch, h);
            h = fnv1aU64(e.phase, h);
            h = fnv1aU64(e.ordinal, h);
            h = fnv1aU64(e.owner, h);
            h = fnv1aU64(e.addr, h);
            h = fnv1aU64(e.size, h);
            h = fnv1aU64(e.drained, h);
        }
        return h;
    }

    void
    clear()
    {
        events_.clear();
        kernels_.clear();
        ranges_.clear();
        orders_.clear();
        cur_kernel_ = 0;
        cur_launch_ = 0;
        launch_count_ = 0;
        cur_armed_ = false;
        phase_ = 0;
        store_ord_ = 0;
        fence_ord_ = 0;
        in_recovery_ = false;
    }

  private:
    std::uint32_t
    internKernel(const std::string &name)
    {
        for (std::size_t i = 0; i < kernels_.size(); ++i)
            if (kernels_[i] == name)
                return static_cast<std::uint32_t>(i + 1);
        kernels_.push_back(name);
        return static_cast<std::uint32_t>(kernels_.size());
    }

    void
    push(PmEventKind kind, PersistDomain d, OwnerId owner,
         std::uint64_t addr, std::uint64_t size, std::uint32_t ordinal,
         std::uint64_t drained)
    {
        PmEvent e;
        e.kind = kind;
        e.domain = d;
        e.armed = cur_armed_;
        e.kernel = cur_kernel_;
        e.launch = cur_launch_;
        e.phase = phase_;
        e.ordinal = ordinal;
        e.owner = owner;
        e.addr = addr;
        e.size = size;
        e.drained = drained;
        events_.push_back(e);
    }

    std::vector<PmEvent> events_;
    std::vector<std::string> kernels_;
    std::vector<PmDeclaredRange> ranges_;
    std::vector<PmOrderRule> orders_;
    PersistDomain domain_ = PersistDomain::McDurable;
    std::uint32_t cur_kernel_ = 0;
    std::uint32_t cur_launch_ = 0;
    std::uint32_t launch_count_ = 0;
    bool cur_armed_ = false;
    std::uint32_t phase_ = 0;
    std::uint32_t store_ord_ = 0;
    std::uint32_t fence_ord_ = 0;
    bool in_recovery_ = false;
};

/** RAII recovery window: workloads open it around their recovery
 *  entry points so PM loads inside are recorded as RecoveryRead. */
class PmRecoveryScope
{
  public:
    explicit PmRecoveryScope(PmEventRecorder *rec) : rec_(rec)
    {
        if (rec_)
            rec_->recoveryBegin();
    }

    ~PmRecoveryScope()
    {
        if (rec_)
            rec_->recoveryEnd();
    }

    PmRecoveryScope(const PmRecoveryScope &) = delete;
    PmRecoveryScope &operator=(const PmRecoveryScope &) = delete;

  private:
    PmEventRecorder *rec_;
};

} // namespace gpm
