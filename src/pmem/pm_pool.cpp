#include "pmem/pm_pool.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

void
PmPool::setDomain(PersistDomain d)
{
    domain_ = d;
    if (recorder_)
        recorder_->domainSet(d);
}

void
PmPool::setRecorder(PmEventRecorder *rec)
{
    recorder_ = rec;
    // Seed the stream with the domain in effect at attach time so the
    // analyzer never has to guess the initial state.
    if (recorder_)
        recorder_->domainSet(domain_);
}

PmPool::PmPool(std::size_t capacity, PersistDomain domain,
               std::uint64_t seed)
    : visible_(capacity), durable_(capacity), domain_(domain),
      rng_(seed)
{
    GPM_REQUIRE(capacity > 0, "PM pool capacity must be non-zero");
}

PmRegion
PmPool::map(const std::string &name, std::uint64_t size, bool create)
{
    auto it = regions_.find(name);
    if (it != regions_.end()) {
        GPM_REQUIRE(size == 0 || size == it->second.size,
                    "region '", name, "' exists with size ",
                    it->second.size, ", not ", size);
        return it->second;
    }
    GPM_REQUIRE(create, "region '", name, "' does not exist");
    GPM_REQUIRE(size > 0, "cannot create empty region '", name, "'");

    const std::uint64_t offset = alignUp(alloc_cursor_, 256);
    GPM_REQUIRE(offset + size <= visible_.size(),
                "PM pool exhausted allocating '", name, "' (", size,
                " bytes at ", offset, " of ", visible_.size(), ")");
    alloc_cursor_ = offset + size;
    PmRegion r{offset, size};
    regions_.emplace(name, r);
    return r;
}

bool
PmPool::hasRegion(const std::string &name) const
{
    return regions_.count(name) != 0;
}

PmRegion
PmPool::region(const std::string &name) const
{
    auto it = regions_.find(name);
    GPM_REQUIRE(it != regions_.end(), "no region named '", name, "'");
    return it->second;
}

void
PmPool::checkRange(std::uint64_t addr, std::uint64_t size) const
{
    GPM_REQUIRE(addr + size <= visible_.size() && addr + size >= addr,
                "PM access [", addr, ", ", addr + size,
                ") out of pool of ", visible_.size(), " bytes");
}

void
PmPool::writeCommon(OwnerId owner, std::uint64_t addr, const void *src,
                    std::uint64_t size)
{
    checkRange(addr, size);
    if (recorder_)
        recorder_->store(domain_, owner, addr, size);
    std::memcpy(visible_.data() + addr, src, size);
    if (domain_ == PersistDomain::LlcDurable) {
        // eADR: the LLC is inside the persistence domain.
        std::memcpy(durable_.data() + addr, src, size);
    } else {
        std::vector<Extent> &pend = pending_[owner];
        if (!pend.empty()) {
            // Coalesce with the owner's most recent extent when the
            // new store abuts or overlaps it: a contiguous append
            // stream (or a rewritten word) stays one extent, so
            // persistOwner/crash scale with distinct dirty ranges,
            // not raw store count. Only the *last* extent is eligible
            // — insertion order is preserved, so crash()'s per-line
            // RNG enumeration is unchanged for non-contiguous
            // streams.
            Extent &last = pend.back();
            if (addr <= last.addr + last.size &&
                addr + size >= last.addr) {
                const std::uint64_t lo = std::min(last.addr, addr);
                const std::uint64_t hi =
                    std::max(last.addr + last.size, addr + size);
                last.addr = lo;
                last.size = hi - lo;
                ++stats_.extents_merged;
                return;
            }
        }
        pend.push_back({addr, size});
    }
}

void
PmPool::deviceWrite(OwnerId owner, std::uint64_t addr, const void *src,
                    std::uint64_t size)
{
    writeCommon(owner, addr, src, size);
}

void
PmPool::cpuWrite(OwnerId owner, std::uint64_t addr, const void *src,
                 std::uint64_t size)
{
    writeCommon(kCpuOwnerBase | owner, addr, src, size);
}

void
PmPool::read(std::uint64_t addr, void *dst, std::uint64_t size) const
{
    checkRange(addr, size);
    if (recorder_ && recorder_->inRecovery())
        recorder_->recoveryRead(domain_, addr, size);
    std::memcpy(dst, visible_.data() + addr, size);
}

void
PmPool::drain(const Extent &e)
{
    std::memcpy(durable_.data() + e.addr, visible_.data() + e.addr,
                e.size);
    ++stats_.extents_drained;
}

bool
PmPool::persistOwner(OwnerId owner)
{
    switch (domain_) {
      case PersistDomain::LlcVolatile:
        // The fence completes at the volatile LLC: ordering only.
        if (recorder_)
            recorder_->fence(domain_, owner, 0);
        return false;
      case PersistDomain::LlcDurable:
        if (recorder_)
            recorder_->fence(domain_, owner, 0);
        return true;
      case PersistDomain::McDurable:
        break;
    }
    std::uint64_t drained = 0;
    auto it = pending_.find(owner);
    if (it != pending_.end()) {
        for (const Extent &e : it->second) {
            drain(e);
            drained += e.size;
        }
        pending_.erase(it);
    }
    if (recorder_)
        recorder_->fence(domain_, owner, drained);
    return true;
}

void
PmPool::persistRange(std::uint64_t addr, std::uint64_t size)
{
    checkRange(addr, size);
    const std::uint64_t lo = addr, hi = addr + size;
    std::uint64_t drained = 0;
    for (auto it = pending_.begin(); it != pending_.end();) {
        auto &extents = it->second;
        std::size_t kept = 0;
        for (Extent &e : extents) {
            if (e.addr < hi && e.addr + e.size > lo) {
                drain(e);
                drained += e.size;
            } else {
                extents[kept++] = e;
            }
        }
        extents.resize(kept);
        it = extents.empty() ? pending_.erase(it) : std::next(it);
    }
    if (recorder_)
        recorder_->flushRange(domain_, addr, size, drained);
}

void
PmPool::persistAll()
{
    std::uint64_t drained = 0;
    for (const auto &[owner, extents] : pending_) {
        for (const Extent &e : extents) {
            drain(e);
            drained += e.size;
        }
    }
    pending_.clear();
    if (recorder_)
        recorder_->persistAll(domain_, drained);
}

void
PmPool::crash(double survive_prob)
{
    telemetry::Span span("crash", "power-failure");
    if (span.armed()) {
        span.arg("pending_extents",
                 std::uint64_t(pendingExtents()));
        span.arg("survive_prob", survive_prob);
    }
    const std::uint64_t survivors_before = stats_.crash_survivors;
    ++stats_.crashes;
    if (domain_ == PersistDomain::LlcDurable) {
        // eADR drains caches on power failure.
        persistAll();
    } else {
        // Survival is decided per 128 B cache line, not per pending
        // extent: an extent spanning lines can be torn, with some of
        // its lines evicted to the media before the failure and the
        // rest lost. Line boundaries come from alignDown so tearing is
        // address-stable regardless of how stores were batched.
        for (const auto &[owner, extents] : pending_) {
            for (const Extent &e : extents) {
                const std::uint64_t end = e.addr + e.size;
                std::uint64_t lo = alignDown(e.addr, kCrashLineBytes);
                for (; lo < end; lo += kCrashLineBytes) {
                    const Extent sub{
                        std::max(lo, e.addr),
                        std::min(lo + kCrashLineBytes, end) -
                            std::max(lo, e.addr)};
                    ++stats_.crash_sub_extents;
                    if (survive_prob > 0.0 &&
                        rng_.chance(survive_prob)) {
                        drain(sub);
                        ++stats_.crash_survivors;
                    }
                }
            }
        }
        pending_.clear();
    }
    // Post-reboot: only durable contents remain visible.
    visible_ = durable_;
    if (recorder_)
        recorder_->crash(domain_, survive_prob,
                         stats_.crash_survivors - survivors_before);
    if (span.armed())
        span.arg("surviving_lines",
                 stats_.crash_survivors - survivors_before);
    telemetry::count("pool.crash_events");
}

std::size_t
PmPool::pendingExtents() const
{
    std::size_t n = 0;
    for (const auto &[owner, extents] : pending_)
        n += extents.size();
    return n;
}

std::uint64_t
PmPool::pendingBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[owner, extents] : pending_)
        for (const Extent &e : extents)
            n += e.size;
    return n;
}

void
PmPool::saveDurable(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    GPM_REQUIRE(os.good(), "cannot open '", path, "' for writing");

    const std::uint64_t cap = durable_.size();
    const std::uint64_t nregions = regions_.size();
    os.write(reinterpret_cast<const char *>(&cap), sizeof(cap));
    os.write(reinterpret_cast<const char *>(&alloc_cursor_),
             sizeof(alloc_cursor_));
    os.write(reinterpret_cast<const char *>(&nregions), sizeof(nregions));
    for (const auto &[name, r] : regions_) {
        const std::uint64_t len = name.size();
        os.write(reinterpret_cast<const char *>(&len), sizeof(len));
        os.write(name.data(), static_cast<std::streamsize>(len));
        os.write(reinterpret_cast<const char *>(&r), sizeof(r));
    }
    os.write(reinterpret_cast<const char *>(durable_.data()),
             static_cast<std::streamsize>(durable_.size()));
    GPM_REQUIRE(os.good(), "short write saving pool to '", path, "'");
}

PmPool
PmPool::loadDurable(const std::string &path, PersistDomain domain,
                    std::uint64_t seed)
{
    std::ifstream is(path, std::ios::binary);
    GPM_REQUIRE(is.good(), "cannot open '", path, "' for reading");

    std::uint64_t cap = 0, cursor = 0, nregions = 0;
    is.read(reinterpret_cast<char *>(&cap), sizeof(cap));
    is.read(reinterpret_cast<char *>(&cursor), sizeof(cursor));
    is.read(reinterpret_cast<char *>(&nregions), sizeof(nregions));
    GPM_REQUIRE(is.good() && cap > 0, "corrupt pool file '", path, "'");

    PmPool pool(cap, domain, seed);
    pool.alloc_cursor_ = cursor;
    for (std::uint64_t i = 0; i < nregions; ++i) {
        std::uint64_t len = 0;
        is.read(reinterpret_cast<char *>(&len), sizeof(len));
        std::string name(len, '\0');
        is.read(name.data(), static_cast<std::streamsize>(len));
        PmRegion r;
        is.read(reinterpret_cast<char *>(&r), sizeof(r));
        pool.regions_.emplace(std::move(name), r);
    }
    is.read(reinterpret_cast<char *>(pool.durable_.data()),
            static_cast<std::streamsize>(cap));
    GPM_REQUIRE(is.good(), "short read loading pool from '", path, "'");
    pool.visible_ = pool.durable_;
    return pool;
}

} // namespace gpm
