/**
 * @file
 * Kernel description for the SIMT execution model.
 *
 * A kernel is a sequence of *phases*. The simulator executes phase k
 * for every thread of a threadblock before any thread enters phase
 * k+1 — which is exactly the semantics of CUDA's __syncthreads(). A
 * CUDA kernel with no block-level barrier is a single phase; each
 * __syncthreads() in the original code becomes a phase boundary (see
 * the prefix-sum workload, which mirrors Figure 8 of the paper).
 *
 * Threads within a phase must not communicate through volatile shared
 * state (they conceptually run concurrently); communication happens
 * across phase boundaries, through PM, or through per-warp reductions
 * computed redundantly per lane.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace gpm {

class ThreadCtx;

/** One barrier-delimited section of a kernel, run per thread. */
using Phase = std::function<void(ThreadCtx &)>;

/**
 * Point at which a simulated crash (power failure) interrupts a
 * launch: execution stops after @ref after_thread_phases individual
 * (thread, phase) executions have completed. Sweeping this value over
 * [0, blocks * threads * phases) visits every interleaving boundary
 * the block-sequential executor can produce — the NVBitFI analog used
 * by the recovery experiments (section 6.2).
 */
struct CrashPoint {
    std::uint64_t after_thread_phases = 0;
};

/** A grid launch: geometry plus the phase list. */
struct KernelDesc {
    std::string name;               ///< for reports and diagnostics
    std::uint32_t blocks = 1;       ///< threadblocks in the grid
    std::uint32_t block_threads = 32;  ///< threads per block
    std::vector<Phase> phases;      ///< barrier-delimited stages
    std::optional<CrashPoint> crash;   ///< fault-injection point

    /**
     * True for iterations of a persistent kernel: the grid was
     * launched once and loops on-device (cooperative-groups style),
     * so per-iteration launch overhead is not charged. GPM's BFS runs
     * this way — the paper credits its 85x over CAP-fs to avoiding
     * exactly these per-iteration driver round trips.
     */
    bool no_launch_overhead = false;

    std::uint64_t
    totalThreads() const
    {
        return std::uint64_t(blocks) * block_threads;
    }
};

/** Thrown by the executor when a CrashPoint fires mid-launch. */
struct KernelCrashed {
    std::uint64_t executed_thread_phases = 0;
};

} // namespace gpm
