/**
 * @file
 * Kernel description for the SIMT execution model.
 *
 * A kernel is a sequence of *phases*. The simulator executes phase k
 * for every thread of a threadblock before any thread enters phase
 * k+1 — which is exactly the semantics of CUDA's __syncthreads(). A
 * CUDA kernel with no block-level barrier is a single phase; each
 * __syncthreads() in the original code becomes a phase boundary (see
 * the prefix-sum workload, which mirrors Figure 8 of the paper).
 *
 * Threads within a phase must not communicate through volatile shared
 * state (they conceptually run concurrently); communication happens
 * across phase boundaries, through PM, or through per-warp reductions
 * computed redundantly per lane.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace gpm {

class ThreadCtx;

/** One barrier-delimited section of a kernel, run per thread. */
using Phase = std::function<void(ThreadCtx &)>;

/**
 * Point at which a simulated crash (power failure) interrupts a
 * launch.
 *
 * The default trigger stops execution after @ref count individual
 * (thread, phase) executions have completed; sweeping that value over
 * [0, blocks * threads * phases) visits every interleaving boundary
 * the block-sequential executor can produce — the NVBitFI analog used
 * by the recovery experiments (section 6.2).
 *
 * The other triggers place the crash on *persistence-event* boundaries
 * instead, which is where failure-atomicity bugs hide (the fraction
 * grid almost never lands exactly between a store and its fence):
 *
 *  - BeforeFence: die just before the Nth system-scope fence of the
 *    launch executes — every store the fence was about to persist is
 *    still pending (just-before-persist).
 *  - AfterFence: die right after the Nth fence completes — that
 *    thread's stores are durable, everything later is lost
 *    (just-after-persist).
 *  - AfterPmStore: die immediately after the Nth PM store retires to
 *    the visible image. Swept over an insert's store sequence this
 *    crosses every intra-operation boundary, including mid-tail-bump
 *    in GpmLog::insert (tail stored, sentinel fence never reached).
 *
 * Event counts are global across the launch and deterministic under
 * the block-sequential execution order.
 */
struct CrashPoint {
    enum class Trigger : std::uint8_t {
        ThreadPhases,  ///< after @ref count (thread, phase) executions
        BeforeFence,   ///< just before the @ref count-th fence (1-based)
        AfterFence,    ///< right after the @ref count-th fence (1-based)
        AfterPmStore,  ///< right after the @ref count-th store (1-based)
    };

    std::uint64_t count = 0;
    Trigger trigger = Trigger::ThreadPhases;

    static CrashPoint
    afterThreadPhases(std::uint64_t n)
    {
        return {n, Trigger::ThreadPhases};
    }

    static CrashPoint
    beforeFence(std::uint64_t n)
    {
        return {n, Trigger::BeforeFence};
    }

    static CrashPoint
    afterFence(std::uint64_t n)
    {
        return {n, Trigger::AfterFence};
    }

    static CrashPoint
    afterPmStore(std::uint64_t n)
    {
        return {n, Trigger::AfterPmStore};
    }

    /** Human-readable form ("phase:120", "fence<3", ...). */
    std::string
    describe() const
    {
        switch (trigger) {
          case Trigger::ThreadPhases:
            return "phase:" + std::to_string(count);
          case Trigger::BeforeFence:
            return "fence<" + std::to_string(count);
          case Trigger::AfterFence:
            return "fence>" + std::to_string(count);
          case Trigger::AfterPmStore:
            return "store>" + std::to_string(count);
        }
        return "?";
    }
};

/** A grid launch: geometry plus the phase list. */
struct KernelDesc {
    std::string name;               ///< for reports and diagnostics
    std::uint32_t blocks = 1;       ///< threadblocks in the grid
    std::uint32_t block_threads = 32;  ///< threads per block
    std::vector<Phase> phases;      ///< barrier-delimited stages
    std::optional<CrashPoint> crash;   ///< fault-injection point

    /**
     * True for iterations of a persistent kernel: the grid was
     * launched once and loops on-device (cooperative-groups style),
     * so per-iteration launch overhead is not charged. GPM's BFS runs
     * this way — the paper credits its 85x over CAP-fs to avoiding
     * exactly these per-iteration driver round trips.
     */
    bool no_launch_overhead = false;

    /**
     * True when the kernel's threadblocks are independent: no block
     * reads PM written by another block within this launch, and no
     * phase mutates shared host state non-atomically. Such launches
     * are eligible for the parallel block-scheduled engine (see
     * block_scheduler.hpp); execution remains bit-identical to the
     * sequential order thanks to the block-ordered reduction, so the
     * flag is purely a performance opt-in for audited kernels.
     * Crash-armed launches fan out too: the armed ordinal is mapped
     * onto the block-ordered replay (DESIGN.md decision #8), so
     * CrashPoint ordinals keep their global block-sequential meaning
     * at any worker width.
     */
    bool block_independent = false;

    std::uint64_t
    totalThreads() const
    {
        return std::uint64_t(blocks) * block_threads;
    }
};

/** Thrown by the executor when a CrashPoint fires mid-launch. */
struct KernelCrashed {
    std::uint64_t executed_thread_phases = 0;
};

} // namespace gpm
