/**
 * @file
 * Parallel block-scheduling execution engine.
 *
 * The functional executor (gpu_executor.hpp) runs a grid's blocks in
 * sequence; every figure in the reproduction funnels through it, so
 * bench/torture sweeps are bounded by simulator wall-clock. This file
 * provides the machinery to run *independent* blocks concurrently on
 * host threads while keeping every observable — LaunchStats, NVM tier
 * classification, the pool's pending-extent order and the durable
 * image — bit-identical to the sequential order:
 *
 *  - BlockScheduler: a persistent pool of host workers plus the
 *    calling thread, claiming block indices from an atomic cursor
 *    (dynamic load balance; assignment order is free because results
 *    are merged by block index, not completion order).
 *
 *  - ExecLane: one worker's reusable execution context. In *direct*
 *    mode (sequential launches) the lane applies PM stores and NVM
 *    transactions straight to the shared models. In *buffered* mode
 *    (parallel launches) the lane records a shadow log instead:
 *    PmPool mutations as (op, payload) pairs, coalesced NVM line
 *    transactions as (stream, line) pairs, and per-block LaunchStats.
 *    Loads observe the block's own prior stores through a
 *    copy-on-write page overlay on the shared visible image — legal
 *    because a block_independent contract guarantees no cross-block
 *    read-after-write within the launch.
 *
 *  - Deterministic block-ordered reduction: after all workers join,
 *    the launch replays every block's shadow log into the real
 *    PmPool/NvmModel *in block index order*. Since blocks are
 *    independent, replaying block b's ops contiguously is a legal
 *    reordering of the sequential interleaving... and because the
 *    sequential executor also runs blocks whole-block-at-a-time, it
 *    is exactly the sequential order. Stats merge in block order too,
 *    so even floating-point sums (work_ops) associate identically.
 *
 *  - Crash-armed launches ride the same machinery (DESIGN.md decision
 *    #8): CrashPoint ordinals are defined over the block-sequential
 *    event order, and buffered blocks count their fence/store events
 *    in their shadow logs, so the armed ordinal maps to a
 *    deterministic (crash block, intra-block offset) position in the
 *    block-ordered replay. Blocks before the crash block replay
 *    fully, the crash block is re-executed *directly* with the event
 *    counters pre-wound to its block-start prefix sums (so the
 *    trigger fires at exactly the sequential instant, mid-phase flush
 *    state and recorder stream included), and later blocks' shadow
 *    state is discarded — cancel() stops handing them out early.
 *
 * The lane also owns the serial hot-path scratch shared by both
 * modes: an O(1) open-addressed per-thread site-occurrence table
 * (replacing ThreadCtx's per-construction linear scan) and the flat
 * warp-coalescing scratch (replacing two std::maps per warp flush).
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gpusim/launch_stats.hpp"
#include "pmem/pm_pool.hpp"
#include "telemetry/metrics.hpp"

namespace gpm {

/** One coalesced NVM line transaction (size is the coalesce granule). */
struct LineTxn {
    std::uint64_t stream;
    std::uint64_t addr;
};

/**
 * Per-thread occurrence counters for static access sites, O(1) per
 * lookup via open addressing. Epoch stamping makes beginThread() O(1):
 * slots from earlier threads are simply stale, never cleared.
 */
class SiteTable
{
  public:
    /** Start counting for a fresh (thread, phase) execution. */
    void
    beginThread()
    {
        ++epoch_;
        live_ = 0;
    }

    /** 0-based occurrence of @p site within the current thread. */
    std::uint32_t next(SiteId site);

  private:
    struct Slot {
        SiteId site = 0;
        std::uint64_t epoch = 0;
        std::uint32_t count = 0;
    };

    void grow();

    std::vector<Slot> slots_ = std::vector<Slot>(64);
    std::uint64_t epoch_ = 0;
    std::size_t live_ = 0;
};

/**
 * Reusable scratch for warp-flush coalescing: groups a warp's phase
 * accesses by (site, occurrence, stream) in first-appearance order and
 * dedups touched coalescing lines per group in ascending address
 * order — the exact grouping the old std::map pair produced, without
 * a node allocation per access.
 */
struct WarpFlushScratch {
    struct Slot {
        SiteId site = 0;
        std::uint64_t stream = 0;
        std::uint32_t occurrence = 0;
        std::uint32_t group = 0;
        std::uint64_t epoch = 0;
    };

    std::vector<Slot> slots = std::vector<Slot>(64);
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> group_of;    ///< access index -> group
    std::vector<std::uint32_t> group_start; ///< group -> first slot
    std::vector<std::uint32_t> cursor;      ///< scatter cursors
    std::vector<const WarpAccess *> grouped;
    std::vector<std::uint64_t> lines;

    /**
     * Coalesce @p warp's buffered accesses: append one LineTxn per
     * (group, touched line) to @p out and account pm_line_* in
     * @p stats. Clears the recorder for the next phase.
     */
    void coalesce(std::uint64_t granule, std::uint64_t global_warp,
                  WarpRecorder &warp, LaunchStats &stats,
                  std::vector<LineTxn> &out);

  private:
    std::uint32_t groupOf(SiteId site, std::uint32_t occurrence,
                          std::uint64_t stream, std::uint32_t ngroups);
};

/**
 * Copy-on-write page overlay over the shared visible image. A
 * buffered block's loads must observe its *own* earlier stores (e.g.
 * the HCL log tail read-modify-write) without mutating the shared
 * pool other workers are concurrently reading, so written pages are
 * privatized at kPageBytes granularity.
 */
class WriteOverlay
{
  public:
    /** Begin a block: forget all privatized pages. */
    void
    beginBlock(const PmPool *pool)
    {
        pool_ = pool;
        page_of_.clear();
        arena_.clear();
    }

    void apply(std::uint64_t addr, const void *src, std::uint64_t size);
    void read(std::uint64_t addr, void *dst, std::uint64_t size) const;

    static constexpr std::uint64_t kPageBytes = 256;

  private:
    std::uint8_t *pageFor(std::uint64_t page);

    const PmPool *pool_ = nullptr;
    std::unordered_map<std::uint64_t, std::uint32_t> page_of_;
    std::vector<std::uint8_t> arena_;
};

/** One buffered PmPool mutation, replayed in block order. */
struct ShadowOp {
    enum class Kind : std::uint8_t {
        Write,  ///< deviceWrite(owner, addr, payload, size)
        Fence,  ///< persistOwner(owner)
    };

    Kind kind;
    std::uint32_t phase;  ///< kernel phase that issued the op
    OwnerId owner;
    std::uint64_t addr;
    std::uint64_t size;
    std::size_t payload;  ///< offset into ExecLane::payload
};

/** One block's shadow log location and stats after a parallel launch. */
struct BlockSlice {
    LaunchStats stats;
    std::uint32_t lane = 0;
    std::size_t ops_begin = 0, ops_end = 0;
    std::size_t txns_begin = 0, txns_end = 0;

    /**
     * The block's hot-counter contribution, snapshotted around the
     * shadow execution. Only the crash-armed path fills this in: when
     * a crash point lands mid-grid, blocks past the crash block are
     * discarded and their telemetry must be subtracted back out so the
     * merged counts match the sequential crash (which never ran them).
     */
    telemetry::HotShard::Counts tshard_delta{};

    /** Fence events the block issued (== its Fence shadow ops). */
    std::uint64_t
    fenceEvents() const
    {
        return stats.fences;
    }

    /** PM-store events the block issued (== its Write shadow ops). */
    std::uint64_t
    storeEvents() const
    {
        return (ops_end - ops_begin) - stats.fences;
    }
};

/**
 * One worker's execution context: shadow buffers for buffered mode
 * plus the scratch both modes reuse across blocks and launches
 * (pooled WarpRecorder buffers, flush scratch, site table).
 */
struct ExecLane {
    // Shadow log (buffered mode only). Payload bytes are captured per
    // op at execution time — NOT from the overlay at the end — because
    // a fence between two stores to the same address must drain the
    // earlier value, exactly as the live pool would.
    std::vector<ShadowOp> ops;
    std::vector<std::uint8_t> payload;
    std::vector<LineTxn> txns;
    WriteOverlay overlay;

    // Reusable per-block scratch (both modes).
    std::vector<WarpRecorder> warps;
    WarpFlushScratch flush;
    SiteTable sites;

    LaunchStats stats;    ///< the running block's accounting
    bool buffered = false;
    std::uint32_t cur_phase = 0;  ///< phase tag for buffered shadow ops

    // Telemetry shard: plain per-lane counters bumped on the hot path
    // and folded into the session registry (or discarded) once per
    // launch, so instrumentation never contends between workers.
    telemetry::HotShard tshard;

    /** Drop shadow state from the previous launch, keep capacity. */
    void
    resetLaunch()
    {
        ops.clear();
        payload.clear();
        txns.clear();
    }
};

/**
 * Persistent host worker pool dispatching block indices. Workers park
 * on a condition variable between launches; dispatch() wakes them,
 * participates in the claim loop itself, and returns once every block
 * has executed. The first exception thrown by any block aborts the
 * remaining claims and is rethrown on the calling thread.
 */
class BlockScheduler
{
  public:
    /** @param extra_workers  Worker threads beyond the caller (>= 1). */
    explicit BlockScheduler(unsigned extra_workers);
    ~BlockScheduler();

    BlockScheduler(const BlockScheduler &) = delete;
    BlockScheduler &operator=(const BlockScheduler &) = delete;

    /** Total lanes: the worker threads plus the calling thread. */
    unsigned
    lanes() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run @p fn(lane, block) for every block in [0, blocks). Lane 0 is
     * the calling thread. Blocks are claimed dynamically; @p fn must
     * tolerate any assignment of blocks to lanes.
     */
    void dispatch(std::uint32_t blocks,
                  const std::function<void(unsigned, std::uint32_t)> &fn);

    /**
     * Stop handing out unclaimed blocks of the dispatch in flight;
     * blocks already claimed still run to completion and dispatch()
     * still joins every lane. Callable from inside @p fn on any lane.
     * The crash-armed executor uses this once the contiguous done-
     * prefix of blocks provably contains the armed crash ordinal:
     * every later block would only be discarded at replay.
     */
    void
    cancel()
    {
        abort_.store(true, std::memory_order_relaxed);
    }

  private:
    void workerLoop(unsigned lane);
    void claimLoop(unsigned lane);

    std::mutex m_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    unsigned active_ = 0;

    const std::function<void(unsigned, std::uint32_t)> *fn_ = nullptr;
    std::uint32_t blocks_ = 0;
    std::atomic<std::uint32_t> next_{0};
    std::atomic<bool> abort_{false};
    std::exception_ptr error_;

    std::vector<std::thread> workers_;
};

} // namespace gpm
