/**
 * @file
 * Launch accounting types shared by the executor and the block
 * scheduler: per-launch aggregate stats, the raw per-warp access
 * records that feed coalescing, and the site identity they key on.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/nvm_model.hpp"

namespace gpm {

/** Stable identifier of a static memory-access site. */
using SiteId = std::uint64_t;

/** Aggregate accounting for one kernel launch. */
struct LaunchStats {
    std::uint64_t blocks = 0;
    std::uint64_t threads = 0;
    std::uint64_t phases = 0;

    double work_ops = 0;             ///< abstract ALU work (ctx.work)
    std::uint64_t hbm_bytes = 0;     ///< device-memory traffic

    std::uint64_t pm_payload_bytes = 0;  ///< bytes the program stored to PM
    std::uint64_t pm_line_txns = 0;  ///< coalesced 128 B write transactions
    std::uint64_t pm_line_bytes = 0; ///< pm_line_txns * coalesce granule
    std::uint64_t pm_read_bytes = 0; ///< PM load payload

    std::uint64_t fences = 0;        ///< system-scope fences executed
    NvmTierBytes nvm;                ///< classified NVM write bytes

    LaunchStats &
    operator+=(const LaunchStats &o)
    {
        blocks += o.blocks;
        threads += o.threads;
        phases += o.phases;
        work_ops += o.work_ops;
        hbm_bytes += o.hbm_bytes;
        pm_payload_bytes += o.pm_payload_bytes;
        pm_line_txns += o.pm_line_txns;
        pm_line_bytes += o.pm_line_bytes;
        pm_read_bytes += o.pm_read_bytes;
        fences += o.fences;
        nvm += o.nvm;
        return *this;
    }

    /** Field-wise equality; the determinism suite compares work_ops
     *  bitwise, which only holds because sequential and parallel
     *  launches sum it in the same block order. */
    bool operator==(const LaunchStats &o) const = default;
};

/** One raw PM store recorded by a thread before coalescing. */
struct WarpAccess {
    SiteId site;
    std::uint32_t occurrence;
    std::uint64_t addr;
    std::uint32_t size;
    std::uint64_t stream = 0;  ///< media-stream override (0 = warp)
};

/** Per-warp access buffer for the running phase. */
struct WarpRecorder {
    std::vector<WarpAccess> accesses;
};

} // namespace gpm
