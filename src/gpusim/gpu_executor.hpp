/**
 * @file
 * Functional SIMT executor with warp-level write coalescing.
 *
 * Blocks execute in sequence and, within a block, each phase runs for
 * every thread before the next phase starts (the __syncthreads model,
 * see kernel.hpp). PM stores are buffered per warp during a phase and
 * coalesced at the phase boundary: all lane accesses sharing a (call
 * site, occurrence) are merged into one transaction per touched 128 B
 * line — the GPU hardware coalescer HCL leans on (section 5.2). The
 * resulting transaction stream feeds the Optane model keyed by warp,
 * so per-warp contiguity (or its absence) determines the media tier.
 */
#pragma once

#include <cstdint>

#include "gpusim/kernel.hpp"
#include "gpusim/thread_ctx.hpp"
#include "memsim/nvm_model.hpp"
#include "memsim/sim_config.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

/** Aggregate accounting for one kernel launch. */
struct LaunchStats {
    std::uint64_t blocks = 0;
    std::uint64_t threads = 0;
    std::uint64_t phases = 0;

    double work_ops = 0;             ///< abstract ALU work (ctx.work)
    std::uint64_t hbm_bytes = 0;     ///< device-memory traffic

    std::uint64_t pm_payload_bytes = 0;  ///< bytes the program stored to PM
    std::uint64_t pm_line_txns = 0;  ///< coalesced 128 B write transactions
    std::uint64_t pm_line_bytes = 0; ///< pm_line_txns * coalesce granule
    std::uint64_t pm_read_bytes = 0; ///< PM load payload

    std::uint64_t fences = 0;        ///< system-scope fences executed
    NvmTierBytes nvm;                ///< classified NVM write bytes

    LaunchStats &
    operator+=(const LaunchStats &o)
    {
        blocks += o.blocks;
        threads += o.threads;
        phases += o.phases;
        work_ops += o.work_ops;
        hbm_bytes += o.hbm_bytes;
        pm_payload_bytes += o.pm_payload_bytes;
        pm_line_txns += o.pm_line_txns;
        pm_line_bytes += o.pm_line_bytes;
        pm_read_bytes += o.pm_read_bytes;
        fences += o.fences;
        nvm += o.nvm;
        return *this;
    }
};

/** One raw PM store recorded by a thread before coalescing. */
struct WarpAccess {
    SiteId site;
    std::uint32_t occurrence;
    std::uint64_t addr;
    std::uint32_t size;
    std::uint64_t stream = 0;  ///< media-stream override (0 = warp)
};

/** Per-warp access buffer for the running phase. */
struct WarpRecorder {
    std::vector<WarpAccess> accesses;
};

/** The simulated GPU: executes kernels and accounts their traffic. */
class GpuExecutor
{
  public:
    /**
     * @param cfg   Machine parameters (warp size, coalescing granule).
     * @param pool  The PM device kernels load from / store to.
     * @param nvm   Optane model receiving the coalesced write stream.
     */
    GpuExecutor(const SimConfig &cfg, PmPool &pool, NvmModel &nvm)
        : cfg_(&cfg), pool_(&pool), nvm_(&nvm)
    {
    }

    /**
     * Run @p kernel to completion (or to its CrashPoint).
     *
     * @throws KernelCrashed when the kernel's crash point fires; PM
     *         state then reflects the partial execution and the caller
     *         decides when to invoke PmPool::crash().
     */
    LaunchStats launch(const KernelDesc &kernel);

    const SimConfig &config() const { return *cfg_; }
    PmPool &pool() { return *pool_; }

  private:
    friend class ThreadCtx;

    /** Coalesce and retire one warp's phase accesses. */
    void flushWarp(std::uint64_t global_warp, WarpRecorder &warp);

    /**
     * Crash-trigger bookkeeping, called from the ThreadCtx data path.
     * Event counters are per launch and 1-based, so e.g.
     * CrashPoint::beforeFence(1) dies before the first fence of the
     * launch ever persists anything.
     */
    void noteFenceBefore(std::uint64_t executed);
    void noteFenceAfter(std::uint64_t executed);
    void noteStore(std::uint64_t executed);

    const SimConfig *cfg_;
    PmPool *pool_;
    NvmModel *nvm_;
    LaunchStats cur_;

    std::optional<CrashPoint> armed_;  ///< active launch's crash point
    std::uint64_t executed_ = 0;       ///< (thread, phase) executions so far
    std::uint64_t fence_count_ = 0;    ///< fences started this launch
    std::uint64_t store_count_ = 0;    ///< PM stores retired this launch
};

} // namespace gpm
