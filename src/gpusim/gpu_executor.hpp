/**
 * @file
 * Functional SIMT executor with warp-level write coalescing.
 *
 * Within a block, each phase runs for every thread before the next
 * phase starts (the __syncthreads model, see kernel.hpp). PM stores
 * are buffered per warp during a phase and coalesced at the phase
 * boundary: all lane accesses sharing a (call site, occurrence) are
 * merged into one transaction per touched 128 B line — the GPU
 * hardware coalescer HCL leans on (section 5.2). The resulting
 * transaction stream feeds the Optane model keyed by warp, so
 * per-warp contiguity (or its absence) determines the media tier.
 *
 * Blocks execute in sequence by default. Launches whose KernelDesc
 * sets block_independent may instead be fanned out across the
 * persistent host worker pool in block_scheduler.hpp: each worker
 * records a buffered shadow log, and a block-ordered reduction
 * replays the logs into the shared pool and NVM model so every
 * observable is bit-identical to the sequential order. Crash-armed
 * launches fan out too: the armed ordinal is mapped onto the
 * block-ordered replay (blocks before the crash block replay fully,
 * the crash block re-executes directly with pre-wound event counters
 * so the trigger fires at the exact sequential instant, later blocks
 * are discarded — DESIGN.md decision #8). SimConfig::exec_workers
 * selects the width; 1 (the default) keeps the reference sequential
 * path.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "gpusim/block_scheduler.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/launch_stats.hpp"
#include "gpusim/thread_ctx.hpp"
#include "memsim/media_backend.hpp"
#include "memsim/sim_config.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

/** The simulated GPU: executes kernels and accounts their traffic. */
class GpuExecutor
{
  public:
    /**
     * @param cfg   Machine parameters (warp size, coalescing granule).
     * @param pool  The PM device kernels load from / store to.
     * @param nvm   Media model receiving the coalesced write stream.
     */
    GpuExecutor(const SimConfig &cfg, PmPool &pool, MediaBackend &nvm)
        : cfg_(&cfg), pool_(&pool), nvm_(&nvm)
    {
    }

    /**
     * Run @p kernel to completion (or to its CrashPoint).
     *
     * @throws KernelCrashed when the kernel's crash point fires; PM
     *         state then reflects the partial execution and the caller
     *         decides when to invoke PmPool::crash().
     */
    LaunchStats launch(const KernelDesc &kernel);

    const SimConfig &config() const { return *cfg_; }
    PmPool &pool() { return *pool_; }

    /**
     * Accounting of the most recent launch. After a KernelCrashed
     * unwind this holds the *partial* stats — exactly the blocks that
     * completed before the crash point, identical at any worker width
     * (the equivalence suite compares them against sequential).
     */
    const LaunchStats &lastLaunchStats() const { return cur_; }

    /**
     * Lanes a parallel-eligible launch would use: exec_workers, with 0
     * meaning one lane per hardware thread and anything below 1 lane
     * clamped to sequential.
     */
    unsigned resolvedWorkers() const;

  private:
    friend class ThreadCtx;

    /**
     * Execute one block (every phase, every thread) into @p lane. In
     * direct mode (lane.buffered == false) PM stores and NVM line
     * transactions retire immediately and crash triggers are armed;
     * in buffered mode everything lands in the lane's shadow log.
     * Either way lane.stats holds the block's accounting afterwards.
     */
    void runBlock(const KernelDesc &kernel, std::uint32_t block,
                  ExecLane &lane, std::uint64_t crash_at);

    void launchSequential(const KernelDesc &kernel,
                          std::uint64_t crash_at);
    void launchParallel(const KernelDesc &kernel, unsigned lanes);

    /**
     * Crash-armed parallel launch: shadow-execute, map the armed
     * ordinal to its (crash block, intra-block offset) position in
     * the block-sequential event order, replay the blocks before it,
     * then re-execute the crash block directly with pre-wound event
     * counters so the trigger fires at the exact sequential instant
     * (throws KernelCrashed). When the ordinal lies beyond the launch
     * the full grid replays and the launch completes normally.
     */
    void launchParallelArmed(const KernelDesc &kernel, unsigned lanes,
                             std::uint64_t crash_at);

    /** Replay one block's shadow log into the shared pool/NVM model. */
    void replayBlock(const BlockSlice &slice);

    void ensureScheduler(unsigned lanes);

    /**
     * Fold every lane's telemetry shard into the installed session's
     * registry — or discard the pending values when telemetry is off —
     * so shard counts never leak across sessions. Runs at every launch
     * boundary, including crash unwinds.
     */
    void mergeTelemetryShards();

    /**
     * Crash-trigger bookkeeping, called from the ThreadCtx data path
     * in direct mode only (buffered blocks count events in their
     * shadow logs instead). Event counters are per launch and
     * 1-based, so e.g. CrashPoint::beforeFence(1) dies before the
     * first fence of the launch ever persists anything. The ordinals
     * are defined over the block-sequential event order; the parallel
     * crash-armed path pre-winds these counters to the crash block's
     * prefix sums before re-executing it, so they keep their global
     * meaning at any worker width.
     */
    void noteFenceBefore(std::uint64_t executed);
    void noteFenceAfter(std::uint64_t executed);
    void noteStore(std::uint64_t executed);

    const SimConfig *cfg_;
    PmPool *pool_;
    MediaBackend *nvm_;
    LaunchStats cur_;

    std::optional<CrashPoint> armed_;  ///< active launch's crash point
    std::uint64_t executed_ = 0;       ///< (thread, phase) executions so far
    std::uint64_t fence_count_ = 0;    ///< fences started this launch
    std::uint64_t store_count_ = 0;    ///< PM stores retired this launch

    ExecLane seq_lane_;                ///< sequential-path scratch
    std::unique_ptr<BlockScheduler> sched_;  ///< lazily created pool
    std::vector<ExecLane> lanes_;      ///< parallel lanes (0 = caller)
    std::vector<BlockSlice> slices_;   ///< per-block logs of a launch
};

} // namespace gpm
