/**
 * @file
 * Per-thread execution context handed to kernel phases.
 *
 * ThreadCtx exposes the CUDA-visible identity of the thread
 * (blockIdx/threadIdx/lane/warp) and the memory operations the
 * simulator accounts:
 *
 *  - pmStore / pmLoad: loads and stores to the UVA-mapped PM region.
 *    Stores are functionally applied to the PmPool (visible at once,
 *    durable per the persistence domain) and recorded for warp-level
 *    coalescing, keyed by (call site, per-thread occurrence) so that
 *    divergent threads never coalesce across program points.
 *  - threadfenceSystem: the system-scope fence GPM builds persists
 *    from (__threadfence_system in CUDA).
 *  - work / hbmTraffic: abstract ALU work and device-memory traffic,
 *    used only by the timing model.
 */
#pragma once

#include <cstdint>
#include <source_location>
#include <vector>

#include "common/status.hpp"
#include "gpusim/launch_stats.hpp"
#include "pmem/pm_pool.hpp"

namespace gpm {

class GpuExecutor;
struct ExecLane;

/** Derive a SiteId from a source location (file pointer + line + col). */
inline SiteId
siteOf(const std::source_location &loc)
{
    return reinterpret_cast<std::uintptr_t>(loc.file_name()) * 1000003u +
           loc.line() * 97u + loc.column();
}

/** Execution context for one simulated GPU thread within one phase. */
class ThreadCtx
{
  public:
    // ---- identity ------------------------------------------------------
    std::uint32_t blockIdx() const { return block_; }
    std::uint32_t threadIdx() const { return thread_; }
    std::uint32_t blockDim() const { return block_dim_; }
    std::uint32_t gridDim() const { return grid_dim_; }

    /** Global linear thread id (blockIdx * blockDim + threadIdx). */
    std::uint64_t
    globalId() const
    {
        return std::uint64_t(block_) * block_dim_ + thread_;
    }

    /** Lane within the warp. */
    std::uint32_t lane() const { return thread_ % warp_size_; }

    /** Warp index within the block. */
    std::uint32_t warpInBlock() const { return thread_ / warp_size_; }

    /** Global warp index across the grid. */
    std::uint64_t
    globalWarp() const
    {
        const std::uint32_t warps_per_block =
            (block_dim_ + warp_size_ - 1) / warp_size_;
        return std::uint64_t(block_) * warps_per_block + warpInBlock();
    }

    std::uint32_t warpSize() const { return warp_size_; }

    // ---- persistent-memory data path ------------------------------------

    /** Store @p size bytes at PM offset @p addr. */
    void pmWrite(std::uint64_t addr, const void *src, std::uint64_t size,
                 std::source_location loc = std::source_location::current());

    /**
     * Store whose media-stream identity is @p stream instead of the
     * issuing warp. Used for appends to a shared, lock-serialized
     * structure (the conventional log's partitions): the partition's
     * tail region is one contiguous address stream no matter which
     * warp holds the lock, and Optane's write combining sees it so.
     */
    void pmWriteStream(std::uint64_t stream, std::uint64_t addr,
                       const void *src, std::uint64_t size,
                       std::source_location loc =
                           std::source_location::current());

    /** Load @p size bytes from PM offset @p addr. */
    void pmRead(std::uint64_t addr, void *dst, std::uint64_t size);

    /** Typed PM store. */
    template <typename T>
    void
    pmStore(std::uint64_t addr, const T &v,
            std::source_location loc = std::source_location::current())
    {
        pmWrite(addr, &v, sizeof(T), loc);
    }

    /** Typed PM load. */
    template <typename T>
    T
    pmLoad(std::uint64_t addr)
    {
        T v;
        pmRead(addr, &v, sizeof(T));
        return v;
    }

    /**
     * System-scope fence (__threadfence_system).
     *
     * Under GPM's persistence domain this persists every prior PM
     * store of this thread; under DDIO-enabled domains it only orders.
     *
     * @return true when the thread's prior stores are now durable.
     */
    bool threadfenceSystem();

    // ---- timing-model hooks -----------------------------------------------

    /** Account @p ops abstract ALU operations for this thread. */
    void work(double ops);

    /** Account @p bytes of device-memory (HBM) traffic. */
    void hbmTraffic(std::uint64_t bytes);

  private:
    friend class GpuExecutor;

    ThreadCtx(GpuExecutor &exec, ExecLane &lane, WarpRecorder &warp,
              std::uint32_t block, std::uint32_t thread,
              std::uint32_t block_dim, std::uint32_t grid_dim,
              std::uint32_t warp_size)
        : exec_(&exec), lane_(&lane), warp_(&warp), block_(block),
          thread_(thread), block_dim_(block_dim), grid_dim_(grid_dim),
          warp_size_(warp_size)
    {
    }

    GpuExecutor *exec_;
    // The executing lane: per-block stats, the O(1) site-occurrence
    // table (the caller begins a fresh thread epoch before each phase
    // invocation), and — on parallel launches — the buffered shadow
    // log this thread's PM traffic records into.
    ExecLane *lane_;
    WarpRecorder *warp_;
    std::uint32_t block_;
    std::uint32_t thread_;
    std::uint32_t block_dim_;
    std::uint32_t grid_dim_;
    std::uint32_t warp_size_;
};

} // namespace gpm
