#include "gpusim/gpu_executor.hpp"

#include <algorithm>
#include <map>

namespace gpm {

// ---- ThreadCtx data path ----------------------------------------------

std::uint32_t
ThreadCtx::nextOccurrence(SiteId site)
{
    for (auto &[s, count] : site_counts_) {
        if (s == site)
            return count++;
    }
    site_counts_.emplace_back(site, 1);
    return 0;
}

void
ThreadCtx::pmWrite(std::uint64_t addr, const void *src, std::uint64_t size,
                   std::source_location loc)
{
    pmWriteStream(0, addr, src, size, loc);
}

void
ThreadCtx::pmWriteStream(std::uint64_t stream, std::uint64_t addr,
                         const void *src, std::uint64_t size,
                         std::source_location loc)
{
    exec_->pool_->deviceWrite(globalId(), addr, src, size);
    exec_->cur_.pm_payload_bytes += size;
    const SiteId site = siteOf(loc);
    warp_->accesses.push_back(WarpAccess{site, nextOccurrence(site), addr,
                                         static_cast<std::uint32_t>(size),
                                         stream});
    exec_->noteStore(exec_->executed_);
}

void
ThreadCtx::pmRead(std::uint64_t addr, void *dst, std::uint64_t size)
{
    exec_->pool_->read(addr, dst, size);
    exec_->cur_.pm_read_bytes += size;
}

bool
ThreadCtx::threadfenceSystem()
{
    ++exec_->cur_.fences;
    exec_->noteFenceBefore(exec_->executed_);
    const bool persisted = exec_->pool_->persistOwner(globalId());
    exec_->noteFenceAfter(exec_->executed_);
    return persisted;
}

void
ThreadCtx::work(double ops)
{
    exec_->cur_.work_ops += ops;
}

void
ThreadCtx::hbmTraffic(std::uint64_t bytes)
{
    exec_->cur_.hbm_bytes += bytes;
}

// ---- executor ------------------------------------------------------------

void
GpuExecutor::noteFenceBefore(std::uint64_t executed)
{
    ++fence_count_;
    if (armed_ && armed_->trigger == CrashPoint::Trigger::BeforeFence &&
        fence_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::noteFenceAfter(std::uint64_t executed)
{
    if (armed_ && armed_->trigger == CrashPoint::Trigger::AfterFence &&
        fence_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::noteStore(std::uint64_t executed)
{
    ++store_count_;
    if (armed_ && armed_->trigger == CrashPoint::Trigger::AfterPmStore &&
        store_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::flushWarp(std::uint64_t global_warp, WarpRecorder &warp)
{
    if (warp.accesses.empty())
        return;

    const std::uint64_t granule = cfg_->coalesce_bytes;

    // Group lane accesses by (site, occurrence, stream) in
    // first-appearance order — the SIMT instruction stream of the
    // warp.
    std::map<std::tuple<SiteId, std::uint32_t, std::uint64_t>,
             std::uint32_t> group_of;
    std::vector<std::vector<const WarpAccess *>> groups;
    for (const WarpAccess &a : warp.accesses) {
        auto key = std::make_tuple(a.site, a.occurrence, a.stream);
        auto [it, inserted] = group_of.emplace(
            key, static_cast<std::uint32_t>(groups.size()));
        if (inserted)
            groups.emplace_back();
        groups[it->second].push_back(&a);
    }

    for (const auto &group : groups) {
        // One transaction per touched coalescing line, issued in
        // ascending address order (lane order on real hardware).
        const std::uint64_t stream = group.front()->stream != 0
            ? group.front()->stream
            : global_warp;
        std::map<std::uint64_t, bool> lines;
        for (const WarpAccess *a : group) {
            const std::uint64_t first = a->addr / granule;
            const std::uint64_t last = (a->addr + a->size - 1) / granule;
            for (std::uint64_t l = first; l <= last; ++l)
                lines[l] = true;
        }
        for (const auto &[line, unused] : lines) {
            nvm_->recordWrite(stream, line * granule, granule);
            ++cur_.pm_line_txns;
            cur_.pm_line_bytes += granule;
        }
    }
    warp.accesses.clear();
}

LaunchStats
GpuExecutor::launch(const KernelDesc &kernel)
{
    GPM_REQUIRE(kernel.blocks > 0 && kernel.block_threads > 0,
                "kernel '", kernel.name, "' has an empty grid");
    GPM_REQUIRE(!kernel.phases.empty(),
                "kernel '", kernel.name, "' has no phases");

    cur_ = LaunchStats{};
    cur_.blocks = kernel.blocks;
    cur_.threads = kernel.totalThreads();
    cur_.phases = kernel.phases.size();

    const std::uint32_t warp_size =
        static_cast<std::uint32_t>(cfg_->warp_size);
    const std::uint32_t warps_per_block =
        (kernel.block_threads + warp_size - 1) / warp_size;
    std::vector<WarpRecorder> warps(warps_per_block);

    const NvmTierBytes before = [&] {
        nvm_->closeRuns();
        return nvm_->bytes();
    }();

    armed_ = kernel.crash;
    executed_ = 0;
    fence_count_ = 0;
    store_count_ = 0;
    const std::uint64_t crash_at =
        (armed_ && armed_->trigger == CrashPoint::Trigger::ThreadPhases)
            ? armed_->count
            : ~std::uint64_t(0);

    for (std::uint32_t b = 0; b < kernel.blocks; ++b) {
        for (std::size_t p = 0; p < kernel.phases.size(); ++p) {
            for (std::uint32_t t = 0; t < kernel.block_threads; ++t) {
                if (executed_ == crash_at)
                    throw KernelCrashed{executed_};
                ThreadCtx ctx(*this, warps[t / warp_size], b, t,
                              kernel.block_threads, kernel.blocks,
                              warp_size);
                kernel.phases[p](ctx);
                ++executed_;
            }
            // Phase boundary: retire every warp's coalesced stores.
            for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                flushWarp(std::uint64_t(b) * warps_per_block + w,
                          warps[w]);
            }
        }
    }

    armed_.reset();
    nvm_->closeRuns();
    cur_.nvm = nvm_->bytes() - before;
    return cur_;
}

} // namespace gpm
