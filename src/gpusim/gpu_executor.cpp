#include "gpusim/gpu_executor.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

#include "pmem/pm_events.hpp"
#include "telemetry/telemetry.hpp"

namespace gpm {

// ---- ThreadCtx data path ----------------------------------------------

void
ThreadCtx::pmWrite(std::uint64_t addr, const void *src, std::uint64_t size,
                   std::source_location loc)
{
    pmWriteStream(0, addr, src, size, loc);
}

void
ThreadCtx::pmWriteStream(std::uint64_t stream, std::uint64_t addr,
                         const void *src, std::uint64_t size,
                         std::source_location loc)
{
    ExecLane &lane = *lane_;
    if (lane.buffered) {
        // Shadow the store: bounds errors must surface at the faulting
        // phase (not at replay), loads from this block must observe it
        // (overlay), and the replay needs the payload as stored *now* —
        // a later fence may have to drain exactly this value even if
        // the address is overwritten afterwards.
        exec_->pool_->requireRange(addr, size);
        lane.ops.push_back(ShadowOp{ShadowOp::Kind::Write,
                                    lane.cur_phase, globalId(), addr,
                                    size, lane.payload.size()});
        const auto *p = static_cast<const std::uint8_t *>(src);
        lane.payload.insert(lane.payload.end(), p, p + size);
        lane.overlay.apply(addr, src, size);
    } else {
        exec_->pool_->deviceWrite(globalId(), addr, src, size);
    }
    lane.stats.pm_payload_bytes += size;
    const SiteId site = siteOf(loc);
    warp_->accesses.push_back(WarpAccess{site, lane.sites.next(site), addr,
                                         static_cast<std::uint32_t>(size),
                                         stream});
    if (!lane.buffered)
        exec_->noteStore(exec_->executed_);
}

void
ThreadCtx::pmRead(std::uint64_t addr, void *dst, std::uint64_t size)
{
    ExecLane &lane = *lane_;
    if (lane.buffered) {
        exec_->pool_->requireRange(addr, size);
        lane.overlay.read(addr, dst, size);
    } else {
        exec_->pool_->read(addr, dst, size);
    }
    lane.stats.pm_read_bytes += size;
}

bool
ThreadCtx::threadfenceSystem()
{
    ExecLane &lane = *lane_;
    ++lane.stats.fences;
    if (lane.buffered) {
        // persistOwner's return value depends only on the persistence
        // domain (fixed for the launch), so the buffered fence can
        // answer now and drain at replay.
        lane.ops.push_back(ShadowOp{ShadowOp::Kind::Fence,
                                    lane.cur_phase, globalId(), 0, 0,
                                    0});
        return fenceIsPersist(exec_->pool_->domain());
    }
    exec_->noteFenceBefore(exec_->executed_);
    const bool persisted = exec_->pool_->persistOwner(globalId());
    exec_->noteFenceAfter(exec_->executed_);
    return persisted;
}

void
ThreadCtx::work(double ops)
{
    lane_->stats.work_ops += ops;
}

void
ThreadCtx::hbmTraffic(std::uint64_t bytes)
{
    lane_->stats.hbm_bytes += bytes;
}

// ---- executor ------------------------------------------------------------

void
GpuExecutor::noteFenceBefore(std::uint64_t executed)
{
    ++fence_count_;
    if (armed_ && armed_->trigger == CrashPoint::Trigger::BeforeFence &&
        fence_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::noteFenceAfter(std::uint64_t executed)
{
    if (armed_ && armed_->trigger == CrashPoint::Trigger::AfterFence &&
        fence_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::noteStore(std::uint64_t executed)
{
    ++store_count_;
    if (armed_ && armed_->trigger == CrashPoint::Trigger::AfterPmStore &&
        store_count_ == armed_->count)
        throw KernelCrashed{executed};
}

void
GpuExecutor::mergeTelemetryShards()
{
    if (telemetry::Session *s = telemetry::Session::current()) {
        seq_lane_.tshard.mergeInto(s->metrics);
        for (ExecLane &lane : lanes_)
            lane.tshard.mergeInto(s->metrics);
    } else {
        seq_lane_.tshard.clear();
        for (ExecLane &lane : lanes_)
            lane.tshard.clear();
    }
}

unsigned
GpuExecutor::resolvedWorkers() const
{
    const int w = cfg_->exec_workers;
    if (w > 0)
        return static_cast<unsigned>(w);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
GpuExecutor::runBlock(const KernelDesc &kernel, std::uint32_t block,
                      ExecLane &lane, std::uint64_t crash_at)
{
    const std::uint32_t warp_size =
        static_cast<std::uint32_t>(cfg_->warp_size);
    const std::uint32_t warps_per_block =
        (kernel.block_threads + warp_size - 1) / warp_size;
    if (lane.warps.size() < warps_per_block)
        lane.warps.resize(warps_per_block);

    lane.stats = LaunchStats{};

    // Emits even when the block throws KernelCrashed, so crash-armed
    // launches show their partial block on the timeline.
    telemetry::Span bspan("block", kernel.name);
    if (bspan.armed()) {
        bspan.arg("block", std::uint64_t(block));
        bspan.arg("mode", lane.buffered ? "shadow" : "direct");
    }

    for (std::size_t p = 0; p < kernel.phases.size(); ++p) {
        lane.cur_phase = static_cast<std::uint32_t>(p);
        // Direct mode mutates the pool as it goes, so the recorder's
        // phase context tracks the loop; buffered blocks tag their
        // shadow ops instead and the replay re-establishes the phase.
        if (!lane.buffered) {
            if (PmEventRecorder *rec = pool_->recorder())
                rec->setPhase(static_cast<std::uint32_t>(p));
        }
        for (std::uint32_t t = 0; t < kernel.block_threads; ++t) {
            if (!lane.buffered && executed_ == crash_at)
                throw KernelCrashed{executed_};
            lane.sites.beginThread();
            ThreadCtx ctx(*this, lane, lane.warps[t / warp_size], block,
                          t, kernel.block_threads, kernel.blocks,
                          warp_size);
            kernel.phases[p](ctx);
            if (!lane.buffered)
                ++executed_;
        }
        // Phase boundary: retire every warp's coalesced stores. In
        // direct mode the line transactions feed the NVM model right
        // away; in buffered mode they stay in the lane's log for the
        // block-ordered replay.
        for (std::uint32_t w = 0; w < warps_per_block; ++w) {
            const std::size_t n_acc = lane.warps[w].accesses.size();
            const std::size_t mark = lane.txns.size();
            {
                // Null category keeps empty warps off the timeline.
                telemetry::Span fspan(n_acc ? "flush" : nullptr,
                                      "warp-flush");
                lane.flush.coalesce(cfg_->coalesce_bytes,
                                    std::uint64_t(block) *
                                            warps_per_block +
                                        w,
                                    lane.warps[w], lane.stats,
                                    lane.txns);
                if (fspan.armed()) {
                    fspan.arg("warp", std::uint64_t(block) *
                                          warps_per_block + w);
                    fspan.arg("accesses", std::uint64_t(n_acc));
                    fspan.arg("line_txns",
                              std::uint64_t(lane.txns.size() - mark));
                }
            }
            if (n_acc) {
                lane.tshard.add(telemetry::HotCounter::WarpFlushes, 1);
                lane.tshard.add(telemetry::HotCounter::FlushedAccesses,
                                n_acc);
                lane.tshard.add(telemetry::HotCounter::CoalescedLineTxns,
                                lane.txns.size() - mark);
            }
            if (!lane.buffered) {
                const std::size_t n_txn = lane.txns.size() - mark;
                telemetry::Span cspan(n_txn ? "line-commit" : nullptr,
                                      "nvm-commit");
                for (std::size_t i = mark; i < lane.txns.size(); ++i)
                    nvm_->recordWrite(lane.txns[i].stream,
                                      lane.txns[i].addr,
                                      cfg_->coalesce_bytes);
                if (cspan.armed()) {
                    cspan.arg("txns", std::uint64_t(n_txn));
                    cspan.arg("bytes",
                              std::uint64_t(n_txn) * cfg_->coalesce_bytes);
                }
                lane.txns.resize(mark);
            }
        }
    }
    lane.tshard.add(telemetry::HotCounter::BlocksExecuted, 1);
}

void
GpuExecutor::launchSequential(const KernelDesc &kernel,
                              std::uint64_t crash_at)
{
    ExecLane &lane = seq_lane_;
    lane.buffered = false;
    lane.resetLaunch();
    // A previous crashed launch may have left stale phase accesses.
    for (WarpRecorder &w : lane.warps)
        w.accesses.clear();

    for (std::uint32_t b = 0; b < kernel.blocks; ++b) {
        runBlock(kernel, b, lane, crash_at);
        // Per-block accumulation in block order: the exact summation
        // the parallel reduction performs, so work_ops associates
        // identically on both paths.
        cur_ += lane.stats;
    }
}

void
GpuExecutor::ensureScheduler(unsigned lanes)
{
    if (sched_ && sched_->lanes() != lanes)
        sched_.reset();
    if (!sched_)
        sched_ = std::make_unique<BlockScheduler>(lanes - 1);
    if (lanes_.size() != lanes)
        lanes_.resize(lanes);
}

void
GpuExecutor::replayBlock(const BlockSlice &slice)
{
    ExecLane &lane = lanes_[slice.lane];
    telemetry::Span rspan("block", "replay");
    if (rspan.armed())
        rspan.arg("ops",
                  std::uint64_t(slice.ops_end - slice.ops_begin));
    PmEventRecorder *rec = pool_->recorder();
    for (std::size_t i = slice.ops_begin; i < slice.ops_end; ++i) {
        const ShadowOp &op = lane.ops[i];
        if (rec)
            rec->setPhase(op.phase);
        if (op.kind == ShadowOp::Kind::Write)
            pool_->deviceWrite(op.owner, op.addr,
                               lane.payload.data() + op.payload,
                               op.size);
        else
            pool_->persistOwner(op.owner);
    }
    {
        const std::size_t n_txn = slice.txns_end - slice.txns_begin;
        telemetry::Span cspan(n_txn ? "line-commit" : nullptr,
                              "nvm-commit-replay");
        for (std::size_t i = slice.txns_begin; i < slice.txns_end; ++i)
            nvm_->recordWrite(lane.txns[i].stream, lane.txns[i].addr,
                              cfg_->coalesce_bytes);
        if (cspan.armed()) {
            cspan.arg("txns", std::uint64_t(n_txn));
            cspan.arg("bytes", std::uint64_t(n_txn) * cfg_->coalesce_bytes);
        }
    }
    lane.tshard.add(telemetry::HotCounter::BlocksReplayed, 1);
}

void
GpuExecutor::launchParallel(const KernelDesc &kernel, unsigned lanes)
{
    ensureScheduler(lanes);
    for (ExecLane &lane : lanes_) {
        lane.buffered = true;
        lane.resetLaunch();
        for (WarpRecorder &w : lane.warps)
            w.accesses.clear();
    }
    slices_.assign(kernel.blocks, BlockSlice{});

    // Workers only read the shared pool (visible image, bounds,
    // domain); every mutation is buffered in the claiming lane. The
    // block -> lane assignment is scheduling-dependent and irrelevant:
    // slices_ is indexed by block.
    sched_->dispatch(kernel.blocks,
                     [&](unsigned lane_idx, std::uint32_t b) {
                         ExecLane &lane = lanes_[lane_idx];
                         lane.overlay.beginBlock(pool_);
                         BlockSlice s;
                         s.lane = lane_idx;
                         s.ops_begin = lane.ops.size();
                         s.txns_begin = lane.txns.size();
                         runBlock(kernel, b, lane, ~std::uint64_t(0));
                         s.ops_end = lane.ops.size();
                         s.txns_end = lane.txns.size();
                         s.stats = lane.stats;
                         slices_[b] = s;
                     });

    // Deterministic block-ordered reduction: replaying block b's ops
    // contiguously is exactly what the sequential executor does (it
    // runs blocks whole-block-at-a-time), so pending-extent order,
    // crash RNG enumeration, NVM run formation and the stats sums are
    // all bit-identical to workers=1.
    for (std::uint32_t b = 0; b < kernel.blocks; ++b) {
        replayBlock(slices_[b]);
        cur_ += slices_[b].stats;
    }
}

void
GpuExecutor::launchParallelArmed(const KernelDesc &kernel, unsigned lanes,
                                 std::uint64_t crash_at)
{
    // CrashPoint ordinals are 1-based counts over the block-sequential
    // event order, and every block's event totals are deterministic
    // functions of the kernel alone — so the ordinal names a unique
    // (crash block B, intra-block offset) no matter which lane runs
    // which block. Strategy (DESIGN.md decision #8): shadow-execute,
    // find B from the per-block event counts, replay blocks [0, B)
    // exactly as a clean parallel launch would, then re-execute block
    // B *directly* on the sequential lane with the event counters
    // pre-wound to the prefix sums. The direct run hits the armed
    // trigger at the precise sequential instant, reproducing mid-phase
    // flush state, recorder context and the KernelCrashed payload
    // bit-for-bit; blocks past B are discarded.
    const std::uint64_t tp_block =
        std::uint64_t(kernel.block_threads) * kernel.phases.size();
    const bool by_phase =
        armed_->trigger == CrashPoint::Trigger::ThreadPhases;
    const bool by_store =
        armed_->trigger == CrashPoint::Trigger::AfterPmStore;

    // ThreadPhases names its block upfront (the trigger checks
    // executed_ *before* each thread-phase, so crash_at landing on a
    // block boundary crashes at the start of that block). Fence/store
    // ordinals need the shadow counts, so all blocks dispatch and an
    // early-cancel kicks in once the done prefix provably contains
    // the ordinal.
    const std::uint32_t prefix_blocks =
        by_phase ? static_cast<std::uint32_t>(std::min<std::uint64_t>(
                       kernel.blocks, crash_at / tp_block))
                 : kernel.blocks;

    slices_.assign(kernel.blocks, BlockSlice{});
    if (prefix_blocks > 0) {
        ensureScheduler(lanes);
        for (ExecLane &lane : lanes_) {
            lane.buffered = true;
            lane.resetLaunch();
            for (WarpRecorder &w : lane.warps)
                w.accesses.clear();
        }

        // Early-cancel bookkeeping (event triggers only): a bitmap of
        // finished blocks and the cumulative event count over the
        // *contiguous* done prefix. Once that prefix's events reach
        // the armed ordinal, every unclaimed block could only be
        // discarded at replay — stop handing them out. Claimed blocks
        // still finish, so by the time dispatch() joins, every block
        // <= the crash block has a complete slice.
        std::mutex done_m;
        std::vector<std::uint8_t> done(prefix_blocks, 0);
        std::uint32_t done_prefix = 0;
        std::uint64_t done_events = 0;

        sched_->dispatch(
            prefix_blocks, [&](unsigned lane_idx, std::uint32_t b) {
                ExecLane &lane = lanes_[lane_idx];
                lane.overlay.beginBlock(pool_);
                BlockSlice s;
                s.lane = lane_idx;
                s.ops_begin = lane.ops.size();
                s.txns_begin = lane.txns.size();
                const telemetry::HotShard::Counts t0 =
                    lane.tshard.values();
                runBlock(kernel, b, lane, ~std::uint64_t(0));
                s.ops_end = lane.ops.size();
                s.txns_end = lane.txns.size();
                s.stats = lane.stats;
                s.tshard_delta =
                    telemetry::HotShard::diff(lane.tshard.values(), t0);
                slices_[b] = s;
                if (!by_phase) {
                    std::lock_guard<std::mutex> lk(done_m);
                    done[b] = 1;
                    while (done_prefix < prefix_blocks &&
                           done[done_prefix]) {
                        const BlockSlice &p = slices_[done_prefix];
                        done_events += by_store ? p.storeEvents()
                                                : p.fenceEvents();
                        ++done_prefix;
                        if (done_events >= armed_->count) {
                            sched_->cancel();
                            break;
                        }
                    }
                }
            });
    }

    // Map the ordinal onto the block-sequential order.
    std::uint32_t crash_block = kernel.blocks;  // sentinel: not fired
    if (by_phase) {
        if (crash_at / tp_block < kernel.blocks)
            crash_block = static_cast<std::uint32_t>(crash_at / tp_block);
    } else {
        std::uint64_t cum = 0;
        for (std::uint32_t b = 0; b < kernel.blocks; ++b) {
            cum += by_store ? slices_[b].storeEvents()
                            : slices_[b].fenceEvents();
            if (cum >= armed_->count) {
                crash_block = b;
                break;
            }
        }
    }

    if (crash_block >= kernel.blocks) {
        // The ordinal lies beyond the launch: the sequential executor
        // would run to completion, so replay the full grid and return.
        for (std::uint32_t b = 0; b < kernel.blocks; ++b) {
            replayBlock(slices_[b]);
            cur_ += slices_[b].stats;
        }
        return;
    }

    // Blocks > crash_block (and the crash block's own shadow run) are
    // discarded: drop their hot-counter contributions and re-fold only
    // the surviving prefix deltas, *before* replay so BlocksReplayed
    // adds land on clean shards. The sequential crash never executed
    // the discarded blocks, so merged telemetry must not count them.
    for (ExecLane &lane : lanes_)
        lane.tshard.clear();
    for (std::uint32_t b = 0; b < crash_block; ++b)
        seq_lane_.tshard.addValues(slices_[b].tshard_delta);

    for (std::uint32_t b = 0; b < crash_block; ++b) {
        replayBlock(slices_[b]);
        cur_ += slices_[b].stats;
    }

    // Pre-wind the event counters to the crash block's prefix sums and
    // re-execute it directly; the armed trigger fires mid-block at its
    // global ordinal exactly as it would have sequentially. The crash
    // block's partial stats are not folded into cur_ — runBlock throws
    // first — matching launchSequential.
    executed_ = std::uint64_t(crash_block) * tp_block;
    fence_count_ = 0;
    store_count_ = 0;
    for (std::uint32_t b = 0; b < crash_block; ++b) {
        fence_count_ += slices_[b].fenceEvents();
        store_count_ += slices_[b].storeEvents();
    }

    ExecLane &lane = seq_lane_;
    lane.buffered = false;
    lane.resetLaunch();
    for (WarpRecorder &w : lane.warps)
        w.accesses.clear();
    runBlock(kernel, crash_block, lane, crash_at);
    GPM_REQUIRE(false, "kernel '", kernel.name,
                "': armed crash ordinal mapped to block ", crash_block,
                " but the direct re-execution completed without firing");
}

LaunchStats
GpuExecutor::launch(const KernelDesc &kernel)
{
    GPM_REQUIRE(kernel.blocks > 0 && kernel.block_threads > 0,
                "kernel '", kernel.name, "' has an empty grid");
    GPM_REQUIRE(!kernel.phases.empty(),
                "kernel '", kernel.name, "' has no phases");

    cur_ = LaunchStats{};
    cur_.blocks = kernel.blocks;
    cur_.threads = kernel.totalThreads();
    cur_.phases = kernel.phases.size();

    const NvmTierBytes before = [&] {
        nvm_->closeRuns();
        return nvm_->bytes();
    }();

    armed_ = kernel.crash;
    executed_ = 0;
    fence_count_ = 0;
    store_count_ = 0;
    const std::uint64_t crash_at =
        (armed_ && armed_->trigger == CrashPoint::Trigger::ThreadPhases)
            ? armed_->count
            : ~std::uint64_t(0);

    // Merge (or discard) shard counts even when a crash point unwinds
    // the launch, so a crashed launch's partial work is still counted.
    struct ShardGuard {
        GpuExecutor *e;
        ~ShardGuard() { e->mergeTelemetryShards(); }
    } shard_guard{this};

    // Bracket the persistency event stream. The end marker rides a
    // guard so a crash-point unwind still closes the launch scope.
    PmEventRecorder *rec = pool_->recorder();
    if (rec)
        rec->launchBegin(kernel.name, kernel.blocks,
                         kernel.block_threads,
                         kernel.crash.has_value());
    struct LaunchMarkGuard {
        PmEventRecorder *rec;
        ~LaunchMarkGuard()
        {
            if (rec)
                rec->launchEnd();
        }
    } mark_guard{rec};

    // CrashPoint ordinals are defined over the block-sequential event
    // order; the armed parallel path maps the ordinal to its position
    // in the block-ordered replay, so crash-armed launches fan out
    // like clean ones (DESIGN.md decision #8).
    const unsigned lanes = resolvedWorkers();
    if (kernel.block_independent && kernel.blocks > 1 && lanes > 1) {
        if (armed_)
            launchParallelArmed(kernel, lanes, crash_at);
        else
            launchParallel(kernel, lanes);
    } else {
        launchSequential(kernel, crash_at);
    }

    armed_.reset();
    nvm_->closeRuns();
    cur_.nvm = nvm_->bytes() - before;
    return cur_;
}

} // namespace gpm
