#include "gpusim/block_scheduler.hpp"

#include <algorithm>
#include <cstring>

namespace gpm {

// ---- SiteTable -----------------------------------------------------------

std::uint32_t
SiteTable::next(SiteId site)
{
    if (live_ * 2 >= slots_.size())
        grow();
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t h = site * 0x9e3779b97f4a7c15ull;
    std::size_t i = (h ^ (h >> 32)) & mask;
    for (;;) {
        Slot &s = slots_[i];
        if (s.epoch != epoch_) {
            s.site = site;
            s.epoch = epoch_;
            s.count = 1;
            ++live_;
            return 0;
        }
        if (s.site == site)
            return s.count++;
        i = (i + 1) & mask;
    }
}

void
SiteTable::grow()
{
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    live_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (const Slot &s : old) {
        if (s.epoch != epoch_)
            continue;
        std::uint64_t h = s.site * 0x9e3779b97f4a7c15ull;
        std::size_t i = (h ^ (h >> 32)) & mask;
        while (slots_[i].epoch == epoch_)
            i = (i + 1) & mask;
        slots_[i] = s;
        ++live_;
    }
}

// ---- WarpFlushScratch ----------------------------------------------------

std::uint32_t
WarpFlushScratch::groupOf(SiteId site, std::uint32_t occurrence,
                          std::uint64_t stream, std::uint32_t ngroups)
{
    const std::size_t mask = slots.size() - 1;
    std::uint64_t h = site * 0x9e3779b97f4a7c15ull;
    h ^= (std::uint64_t(occurrence) + 1) * 0xff51afd7ed558ccdull;
    h ^= (stream + 1) * 0xc4ceb9fe1a85ec53ull;
    std::size_t i = (h ^ (h >> 32)) & mask;
    for (;;) {
        Slot &s = slots[i];
        if (s.epoch != epoch) {
            s.site = site;
            s.stream = stream;
            s.occurrence = occurrence;
            s.group = ngroups;
            s.epoch = epoch;
            return ngroups;
        }
        if (s.site == site && s.occurrence == occurrence &&
            s.stream == stream)
            return s.group;
        i = (i + 1) & mask;
    }
}

void
WarpFlushScratch::coalesce(std::uint64_t granule, std::uint64_t global_warp,
                           WarpRecorder &warp, LaunchStats &stats,
                           std::vector<LineTxn> &out)
{
    std::vector<WarpAccess> &acc = warp.accesses;
    if (acc.empty())
        return;

    // Keep the load factor under 1/2 so every probe terminates; the
    // group count is bounded by the access count.
    if (slots.size() < acc.size() * 2 + 2) {
        std::size_t n = slots.size();
        while (n < acc.size() * 2 + 2)
            n *= 2;
        slots.assign(n, Slot{});
    }
    ++epoch;

    // Pass 1: assign each access its (site, occurrence, stream) group
    // in first-appearance order — the SIMT instruction stream of the
    // warp, exactly the order the old std::map grouping produced.
    group_of.clear();
    std::uint32_t ngroups = 0;
    for (const WarpAccess &a : acc) {
        const std::uint32_t g =
            groupOf(a.site, a.occurrence, a.stream, ngroups);
        if (g == ngroups)
            ++ngroups;
        group_of.push_back(g);
    }

    // Pass 2: counting scatter so each group's accesses land
    // contiguously, preserving intra-group program order.
    cursor.assign(ngroups, 0);
    for (const std::uint32_t g : group_of)
        ++cursor[g];
    group_start.assign(ngroups + 1, 0);
    for (std::uint32_t g = 0; g < ngroups; ++g)
        group_start[g + 1] = group_start[g] + cursor[g];
    grouped.resize(acc.size());
    std::fill(cursor.begin(), cursor.end(), 0u);
    for (std::size_t i = 0; i < acc.size(); ++i) {
        const std::uint32_t g = group_of[i];
        grouped[group_start[g] + cursor[g]++] = &acc[i];
    }

    // Pass 3: per group, one transaction per touched coalescing line
    // in ascending address order (lane order on real hardware).
    for (std::uint32_t g = 0; g < ngroups; ++g) {
        const WarpAccess *first = grouped[group_start[g]];
        const std::uint64_t stream =
            first->stream != 0 ? first->stream : global_warp;
        lines.clear();
        for (std::uint32_t i = group_start[g]; i < group_start[g + 1];
             ++i) {
            const WarpAccess *a = grouped[i];
            const std::uint64_t lo = a->addr / granule;
            const std::uint64_t hi = (a->addr + a->size - 1) / granule;
            for (std::uint64_t l = lo; l <= hi; ++l)
                lines.push_back(l);
        }
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()),
                    lines.end());
        for (const std::uint64_t line : lines) {
            out.push_back(LineTxn{stream, line * granule});
            ++stats.pm_line_txns;
            stats.pm_line_bytes += granule;
        }
    }
    acc.clear();
}

// ---- WriteOverlay --------------------------------------------------------

std::uint8_t *
WriteOverlay::pageFor(std::uint64_t page)
{
    auto [it, inserted] = page_of_.try_emplace(
        page, static_cast<std::uint32_t>(page_of_.size()));
    std::uint8_t *slot = nullptr;
    if (inserted) {
        arena_.resize(arena_.size() + kPageBytes, 0);
        slot = arena_.data() + std::size_t(it->second) * kPageBytes;
        // Seed from the shared visible image (read-only to workers);
        // the pool tail may end mid-page.
        const std::uint64_t base = page * kPageBytes;
        const std::uint64_t cap = pool_->capacity();
        if (base < cap)
            std::memcpy(slot, pool_->visible() + base,
                        std::min<std::uint64_t>(kPageBytes, cap - base));
    } else {
        slot = arena_.data() + std::size_t(it->second) * kPageBytes;
    }
    return slot;
}

void
WriteOverlay::apply(std::uint64_t addr, const void *src, std::uint64_t size)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        const std::uint64_t page = addr / kPageBytes;
        const std::uint64_t off = addr % kPageBytes;
        const std::uint64_t n = std::min(kPageBytes - off, size);
        std::memcpy(pageFor(page) + off, p, n);
        addr += n;
        p += n;
        size -= n;
    }
}

void
WriteOverlay::read(std::uint64_t addr, void *dst, std::uint64_t size) const
{
    std::uint8_t *p = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        const std::uint64_t page = addr / kPageBytes;
        const std::uint64_t off = addr % kPageBytes;
        const std::uint64_t n = std::min(kPageBytes - off, size);
        const auto it = page_of_.find(page);
        if (it != page_of_.end())
            std::memcpy(p,
                        arena_.data() +
                            std::size_t(it->second) * kPageBytes + off,
                        n);
        else
            std::memcpy(p, pool_->visible() + addr, n);
        addr += n;
        p += n;
        size -= n;
    }
}

// ---- BlockScheduler ------------------------------------------------------

BlockScheduler::BlockScheduler(unsigned extra_workers)
{
    GPM_REQUIRE(extra_workers >= 1,
                "BlockScheduler needs at least one extra worker");
    workers_.reserve(extra_workers);
    for (unsigned i = 0; i < extra_workers; ++i)
        workers_.emplace_back(
            [this, lane = i + 1] { workerLoop(lane); });
}

BlockScheduler::~BlockScheduler()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
BlockScheduler::dispatch(
    std::uint32_t blocks,
    const std::function<void(unsigned, std::uint32_t)> &fn)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        fn_ = &fn;
        blocks_ = blocks;
        next_.store(0, std::memory_order_relaxed);
        abort_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        active_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    wake_cv_.notify_all();

    // The caller is lane 0: it claims blocks like any worker, then
    // waits for the stragglers.
    claimLoop(0);
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    fn_ = nullptr;
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

void
BlockScheduler::workerLoop(unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(m_);
            wake_cv_.wait(lk,
                          [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        claimLoop(lane);
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--active_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
BlockScheduler::claimLoop(unsigned lane)
{
    // fn_/blocks_ were published under m_ before this lane observed
    // the new generation (workers) or before notify (the caller), and
    // stay untouched until every lane is done.
    const auto *fn = fn_;
    const std::uint32_t blocks = blocks_;
    while (!abort_.load(std::memory_order_relaxed)) {
        const std::uint32_t b =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks)
            break;
        try {
            (*fn)(lane, b);
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!error_)
                error_ = std::current_exception();
            abort_.store(true, std::memory_order_relaxed);
        }
    }
}

} // namespace gpm
