#include "platform/gpufs_api.hpp"

namespace gpm {

GpufsFile::GpufsFile(Machine &m, const std::string &path,
                     std::uint64_t size)
    : m_(&m), path_(path)
{
    GPM_REQUIRE(m.kind() == PlatformKind::Gpufs,
                "GpufsFile requires the GPUfs platform");
    GPM_REQUIRE(m.gpufsSupported(size),
                "GPUfs cannot hold '", path, "' (", size,
                " bytes > 2 GB file limit)");
    region_ = m.pool().map(path, size, /*create=*/true);
    m.advance(m.config().syscall_ns);  // gopen RPC
}

void
GpufsFile::recordParticipant(ThreadCtx &ctx)
{
    GPM_REQUIRE(!closed_, "gwrite/gread on a closed GPUfs file");
    BlockUse &use = use_[ctx.blockIdx()];
    use.block_threads = ctx.blockDim();
    ++use.calls;
}

void
GpufsFile::gwrite(ThreadCtx &ctx, std::uint64_t file_off,
                  const void *src, std::uint64_t bytes)
{
    GPM_REQUIRE(file_off + bytes <= region_.size,
                "gwrite beyond EOF of '", path_, "'");
    recordParticipant(ctx);
    // The block's leader ships the data through the host RPC; the
    // other threads only participate in the internal barrier.
    if (ctx.threadIdx() == 0)
        m_->gpufsWrite(region_.offset + file_off, src, bytes, 1);
}

void
GpufsFile::gread(ThreadCtx &ctx, std::uint64_t file_off, void *dst,
                 std::uint64_t bytes)
{
    GPM_REQUIRE(file_off + bytes <= region_.size,
                "gread beyond EOF of '", path_, "'");
    recordParticipant(ctx);
    if (ctx.threadIdx() == 0) {
        m_->pool().read(region_.offset + file_off, dst, bytes);
        m_->nvm().recordRead(bytes);
        m_->advance(m_->config().gpufs_call_ns +
                    m_->nvm().readTime(bytes) +
                    m_->pcie().bulkTime(bytes));
    }
}

void
GpufsFile::close()
{
    closed_ = true;
    for (const auto &[block, use] : use_) {
        if (use.calls % use.block_threads != 0) {
            throw GpufsDeadlock(
                "fatal: GPUfs deadlock: block " +
                std::to_string(block) + " reached a file call with " +
                std::to_string(use.calls % use.block_threads) +
                " of " + std::to_string(use.block_threads) +
                " threads — all threads of a threadblock must invoke "
                "GPUfs calls together");
        }
    }
    m_->advance(m_->config().syscall_ns);  // gclose RPC
}

} // namespace gpm
