/**
 * @file
 * The persistence platforms the paper evaluates against each other.
 *
 * Section 3 defines CAP (CPU-Assisted Persistence) and its two
 * realizations; section 6 adds the ablations (GPM-NDP) and the eADR
 * projections, plus the GPUfs comparator.
 */
#pragma once

#include <string>

#include "memsim/sim_config.hpp"

namespace gpm {

/** A way for a GPU application to make its results durable on PM. */
enum class PlatformKind {
    /** GPM: UVA-mapped PM, in-kernel system-scope fences, DDIO off. */
    Gpm,
    /** GPM-NDP ablation: direct load/store to PM from the kernel, but
     *  durability still guaranteed by the CPU afterwards (DDIO on). */
    GpmNdp,
    /** GPM on future eADR hardware: LLC inside the persistence domain,
     *  DDIO stays on, fences complete at the LLC. */
    GpmEadr,
    /** CAP via filesystem: DMA to DRAM, write() to an ext4-DAX file,
     *  fsync(). */
    CapFs,
    /** CAP via mmap: DMA to DRAM, CPU stores to mapped PM, CLFLUSHOPT
     *  + SFENCE from a pool of CPU threads. */
    CapMm,
    /** CAP-mm on eADR hardware: no CPU cache flushes needed. */
    CapEadr,
    /** GPUfs comparator: file API (gwrite) from the GPU, persistence
     *  via CPU/OS; per-threadblock RPC; 2 GB file-size limit. */
    Gpufs,
    /** CPU-only: computation and persistence both on the CPU (Fig 1). */
    CpuOnly,
};

/** Display name matching the paper's figure legends. */
inline std::string
platformName(PlatformKind k)
{
    switch (k) {
      case PlatformKind::Gpm: return "GPM";
      case PlatformKind::GpmNdp: return "GPM-NDP";
      case PlatformKind::GpmEadr: return "GPM-eADR";
      case PlatformKind::CapFs: return "CAP-fs";
      case PlatformKind::CapMm: return "CAP-mm";
      case PlatformKind::CapEadr: return "CAP-eADR";
      case PlatformKind::Gpufs: return "GPUfs";
      case PlatformKind::CpuOnly: return "CPU";
    }
    return "?";
}

/** Initial persistence domain for device writes on this platform. */
inline PersistDomain
initialDomain(PlatformKind k)
{
    switch (k) {
      case PlatformKind::GpmEadr:
      case PlatformKind::CapEadr:
        return PersistDomain::LlcDurable;
      default:
        return PersistDomain::LlcVolatile;  // DDIO on is the default
    }
}

/** True for the platforms where kernels persist in-kernel via fences. */
inline bool
inKernelPersistence(PlatformKind k)
{
    return k == PlatformKind::Gpm || k == PlatformKind::GpmEadr;
}

/** True for platforms that run computation on the GPU. */
inline bool
usesGpu(PlatformKind k)
{
    return k != PlatformKind::CpuOnly;
}

} // namespace gpm
